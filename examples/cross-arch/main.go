// Cross-architecture validation: generate once, hold everywhere.
//
// The paper's central robustness claim (Figs. 1 and 3) is that a benchmark
// generated on one machine stays representative on machines with very
// different microarchitectures. This example generates a benchmark for the
// mem-fb target on Broadwell, then validates its IPC on the AMD Zen 2 and
// Intel Silvermont models — machines the search never saw — against the
// target and the public-dataset alternative.
//
// Run with:
//
//	go run ./examples/cross-arch
package main

import (
	"fmt"
	"log"

	"datamime"
)

func main() {
	st := datamime.QuickSettings()
	st.Iterations = 40
	runner := datamime.NewRunner(st)

	w, err := datamime.WorkloadByName("mem-fb")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("generating the mem-fb benchmark on broadwell...")
	fmt.Println()
	fmt.Println("IPC across microarchitectures (generated ONLY on broadwell):")
	fmt.Printf("%-12s %10s %10s %10s %10s\n",
		"machine", "target", "datamime", "public", "dm err")

	for _, machine := range datamime.Machines() {
		target, err := runner.TargetProfile(w, machine)
		if err != nil {
			log.Fatal(err)
		}
		dm, err := runner.DatamimeProfile(w, machine)
		if err != nil {
			log.Fatal(err)
		}
		pub, err := runner.PublicProfile(w, machine)
		if err != nil {
			log.Fatal(err)
		}
		tIPC := target.Mean(datamime.MetricIPC)
		dIPC := dm.Mean(datamime.MetricIPC)
		pIPC := pub.Mean(datamime.MetricIPC)
		fmt.Printf("%-12s %10.2f %10.2f %10.2f %9.1f%%\n",
			machine.Name, tIPC, dIPC, pIPC, 100*abs(tIPC-dIPC)/tIPC)
	}
	fmt.Println()
	fmt.Println("The datamime column should track the target on every machine,")
	fmt.Println("while the public dataset stays consistently off — the same shape")
	fmt.Println("as Fig. 3 of the paper.")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
