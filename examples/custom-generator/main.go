// Custom generator: bringing a NEW application to Datamime.
//
// This example follows the systematic parameterization procedure of §III-B
// for an application the library does not ship: a log-scanning service
// (think grep-as-a-service). The steps are:
//
//  1. Implement the application as a datamime.Server: a real program whose
//     operations emit their memory accesses, instruction blocks, and
//     data-dependent branches into a datamime.Collector.
//  2. Choose request parameters (QPS, pattern selectivity) and data
//     parameters (log-record size distribution, resident log size).
//  3. Wrap dataset construction in a datamime.Generator and search it.
//
// Here the "production target" is a hidden configuration of the same
// service, and we ask Datamime to recover a matching dataset from its
// profile alone.
//
// Run with:
//
//	go run ./examples/custom-generator
package main

import (
	"fmt"
	"log"

	"datamime"
)

// logScanner is a toy-but-real log-scanning service: it holds a resident
// buffer of length-varied records and each request scans a window of
// records for a pattern, emitting the scan's loads and the match branches.
type logScanner struct {
	records   []record
	scanCode  *datamime.CodeRegion
	matchCode *datamime.CodeRegion
	replyBuf  uint64
	window    int
	matchRate float64
	cursor    int
}

type record struct {
	addr uint64
	size int
	sig  uint64 // content fingerprint driving the match branches
}

// logScannerConfig is the dataset configuration.
type logScannerConfig struct {
	numRecords int
	recordSize datamime.Distribution
	window     int     // records scanned per request
	matchRate  float64 // fraction of records matching the pattern
}

// newLogScanner builds the resident log deterministically from seed.
func newLogScanner(cfg logScannerConfig, layout *datamime.CodeLayout, seed uint64) *logScanner {
	rng := datamime.NewRNG(seed)
	s := &logScanner{
		scanCode:  layout.Region("logscan.scan", 6<<10),
		matchCode: layout.Region("logscan.match", 3<<10),
		replyBuf:  0x0000000030000000,
		window:    cfg.window,
		matchRate: cfg.matchRate,
	}
	// Records get synthetic addresses laid out back to back from a fixed
	// base — the resident log file.
	next := uint64(0x0000000031000000)
	for i := 0; i < cfg.numRecords; i++ {
		size := int(cfg.recordSize.Sample(rng))
		if size < 16 {
			size = 16
		}
		s.records = append(s.records, record{addr: next, size: size, sig: rng.Uint64()})
		next += uint64((size + 63) &^ 63)
	}
	return s
}

// Name implements datamime.Server.
func (s *logScanner) Name() string { return "log-scanner" }

// Handle implements datamime.Server: scan the next window of records.
func (s *logScanner) Handle(col datamime.Collector, rng *datamime.RNG) {
	col.Exec(s.scanCode, 600)
	matches := 0
	for i := 0; i < s.window; i++ {
		r := s.records[s.cursor]
		s.cursor = (s.cursor + 1) % len(s.records)
		col.Load(r.addr, r.size)       // stream the record
		col.Ops(r.size / 8)            // pattern automaton work
		match := rng.Bool(s.matchRate) // content-dependent outcome
		col.Branch(s.matchCode.Base, match)
		if match {
			matches++
			col.Exec(s.matchCode, 200)
			col.Store(s.replyBuf, 64) // append a hit to the reply
		}
	}
	col.Exec(s.scanCode, 150+20*matches)
}

// generator wraps the dataset construction per §III-B: request parameters
// (qps, window, match rate) plus data parameters (record size, log size).
func generator() datamime.Generator {
	space, err := datamime.NewSpace(
		datamime.Param{Name: "qps", Lo: 500, Hi: 50_000, Log: true},
		datamime.Param{Name: "record_bytes", Lo: 64, Hi: 8_192, Log: true, Integer: true},
		datamime.Param{Name: "num_records", Lo: 2_000, Hi: 200_000, Log: true, Integer: true},
		datamime.Param{Name: "window", Lo: 4, Hi: 256, Log: true, Integer: true},
		datamime.Param{Name: "match_rate", Lo: 0, Hi: 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	return datamime.Generator{
		Name:  "log-scanner",
		Space: space,
		Benchmark: func(x []float64) datamime.Benchmark {
			cfg := logScannerConfig{
				numRecords: int(x[2]),
				recordSize: datamime.Normal{Mu: x[1], Sigma: x[1] / 6, Min: 16},
				window:     int(x[3]),
				matchRate:  x[4],
			}
			return datamime.Benchmark{
				Name: "log-scanner",
				QPS:  x[0],
				NewServer: func(layout *datamime.CodeLayout, seed uint64) datamime.Server {
					return newLogScanner(cfg, layout, seed)
				},
			}
		},
	}
}

func main() {
	gen := generator()

	// The hidden "production" target: a configuration the search only sees
	// through its profile (heavy-tailed record sizes the Gaussian generator
	// cannot express directly — as with mem-fb in the paper).
	hidden := datamime.Benchmark{
		Name: "log-scanner-production",
		QPS:  9_000,
		NewServer: func(layout *datamime.CodeLayout, seed uint64) datamime.Server {
			return newLogScanner(logScannerConfig{
				numRecords: 60_000,
				recordSize: datamime.GPareto{Loc: 96, Scale: 500, Shape: 0.2},
				window:     48,
				matchRate:  0.12,
			}, layout, seed)
		},
	}

	profiler := datamime.NewProfiler(datamime.Broadwell())
	st := datamime.QuickSettings()
	profiler.WindowCycles = st.WindowCycles
	profiler.Windows = st.Windows
	profiler.CurveWindows = st.CurveWindows
	profiler.CurvePoints = st.CurvePoints

	target, err := profiler.Profile(hidden, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden target: IPC %.2f, LLC MPKI %.2f, mem BW %.2f GB/s, util %.2f\n",
		target.Mean(datamime.MetricIPC), target.Mean(datamime.MetricLLC),
		target.Mean(datamime.MetricMemBW), target.Mean(datamime.MetricCPUUtil))

	res, err := datamime.Search(datamime.SearchConfig{
		Generator:  gen,
		Objective:  datamime.NewProfileObjective(target, datamime.NewErrorModel()),
		Profiler:   profiler,
		Iterations: 40,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovered dataset (total EMD %.3f):\n  %s\n\n",
		res.BestError, gen.Space.Values(res.BestParams))
	fmt.Println("metric          target   datamime")
	for _, m := range []datamime.MetricID{
		datamime.MetricIPC, datamime.MetricLLC, datamime.MetricL1D,
		datamime.MetricBranch, datamime.MetricCPUUtil, datamime.MetricMemBW,
	} {
		fmt.Printf("%-14s %8.3f   %8.3f\n", m, target.Mean(m), res.BestProfile.Mean(m))
	}
}
