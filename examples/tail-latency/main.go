// Time-varying behavior: why matching distributions matters.
//
// Black-box clones only match *average* statistics, so they cannot be used
// to study tail behavior: their activity is static over time (§II-B,
// Figs. 4 and 8). This example profiles the mem-fb target, a PerfProx-style
// clone, and a Datamime-generated benchmark, and compares the full
// *distributions* of CPU utilization and memory bandwidth — the metrics
// whose bursts shape tail latency.
//
// Run with:
//
//	go run ./examples/tail-latency
package main

import (
	"fmt"
	"log"

	"datamime"
)

func main() {
	st := datamime.QuickSettings()
	st.Iterations = 40
	runner := datamime.NewRunner(st)

	w, err := datamime.WorkloadByName("mem-fb")
	if err != nil {
		log.Fatal(err)
	}
	machine := datamime.Broadwell()
	target, err := runner.TargetProfile(w, machine)
	if err != nil {
		log.Fatal(err)
	}
	clone, err := runner.CloneProfile(w, machine)
	if err != nil {
		log.Fatal(err)
	}
	dm, err := runner.DatamimeProfile(w, machine)
	if err != nil {
		log.Fatal(err)
	}

	for _, metric := range []struct {
		id    datamime.MetricID
		label string
	}{
		{datamime.MetricCPUUtil, "CPU utilization"},
		{datamime.MetricMemBW, "memory bandwidth (GB/s)"},
	} {
		fmt.Printf("%s distribution:\n", metric.label)
		fmt.Printf("%-10s %8s %8s %8s %8s %8s %14s\n",
			"scheme", "p10", "p50", "p90", "p99", "max", "EMD vs target")
		tgtSamples := target.Samples[metric.id]
		for _, s := range []struct {
			name    string
			profile *datamime.Profile
		}{
			{"target", target}, {"perfprox", clone}, {"datamime", dm},
		} {
			e := s.profile.ECDF(metric.id)
			emd := "-"
			if s.name != "target" {
				emd = fmt.Sprintf("%.3f", datamime.NormalizedEMD(tgtSamples, s.profile.Samples[metric.id]))
			}
			fmt.Printf("%-10s %8.3f %8.3f %8.3f %8.3f %8.3f %14s\n",
				s.name, e.Quantile(0.10), e.Quantile(0.50), e.Quantile(0.90),
				e.Quantile(0.99), e.Max(), emd)
		}
		fmt.Println()
	}
	fmt.Println("The clone's distributions collapse to a point (static activity,")
	fmt.Println("utilization pegged at 1.0); Datamime reproduces the target's")
	fmt.Println("spread — the property that makes it usable for tail-latency and")
	fmt.Println("OS-interaction studies.")
}
