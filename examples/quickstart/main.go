// Quickstart: the smallest end-to-end Datamime run.
//
// We profile a "production" workload (memcached with a Facebook-like
// dataset whose configuration the search never sees), then search the
// memcached dataset generator's Table III parameter space until the
// generated benchmark's performance profiles match the target's, and
// finally compare the two side by side.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"datamime"
)

func main() {
	// 1. Profile the target workload on the generation machine (Broadwell).
	//    In production this is the only step the service operator performs.
	profiler := datamime.NewProfiler(datamime.Broadwell())
	// Reduced budgets so the quickstart finishes in ~a minute; drop these
	// four lines for paper-fidelity profiling.
	st := datamime.QuickSettings()
	profiler.WindowCycles = st.WindowCycles
	profiler.Windows = st.Windows
	profiler.CurveWindows = st.CurveWindows
	profiler.CurvePoints = st.CurvePoints

	target := datamime.MemFB()
	targetProfile, err := profiler.Profile(target, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target %q: IPC %.2f, LLC MPKI %.2f, ICache MPKI %.2f, CPU util %.2f\n\n",
		target.Name,
		targetProfile.Mean(datamime.MetricIPC),
		targetProfile.Mean(datamime.MetricLLC),
		targetProfile.Mean(datamime.MetricICache),
		targetProfile.Mean(datamime.MetricCPUUtil))

	// 2. Search the dataset generator's parameter space. The optimizer
	//    only ever sees profiles, never the target's dataset.
	gen := datamime.MemcachedGenerator()
	fmt.Printf("searching %d parameters: %v\n", gen.Space.Dim(), gen.Space.Names())
	result, err := datamime.Search(datamime.SearchConfig{
		Generator:  gen,
		Objective:  datamime.NewProfileObjective(targetProfile, datamime.NewErrorModel()),
		Profiler:   profiler,
		Iterations: 40, // the paper uses 200; 40 keeps the quickstart short
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The result is a representative benchmark: the public program plus
	//    the synthesized dataset parameters.
	fmt.Printf("\nbest dataset (total EMD %.3f):\n  %s\n\n",
		result.BestError, gen.Space.Values(result.BestParams))
	fmt.Println("metric          target   datamime")
	for _, m := range []datamime.MetricID{
		datamime.MetricIPC, datamime.MetricLLC, datamime.MetricICache,
		datamime.MetricBranch, datamime.MetricCPUUtil, datamime.MetricMemBW,
	} {
		fmt.Printf("%-14s %8.3f   %8.3f\n", m,
			targetProfile.Mean(m), result.BestProfile.Mean(m))
	}
}
