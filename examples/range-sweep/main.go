// Range sweep: how wide is a dataset generator's reach?
//
// A generator is only useful if it can span the behaviors production
// workloads exhibit (§V-E, Fig. 11). This example asks Datamime to hit a
// series of *arbitrary* IPC values with the memcached generator — not to
// match any particular workload — and reports asked-vs-achieved. Points on
// the diagonal are achievable; flat segments mark the generator's limits.
//
// Run with:
//
//	go run ./examples/range-sweep
package main

import (
	"fmt"
	"log"
)

import "datamime"

func main() {
	gen := datamime.MemcachedGenerator()
	profiler := datamime.NewProfiler(datamime.Broadwell())
	st := datamime.QuickSettings()
	profiler.WindowCycles = st.WindowCycles
	profiler.Windows = st.Windows
	profiler.WarmupWindows = st.WarmupWindows
	profiler.SkipCurves = true // single-metric targeting needs no curves

	fmt.Println("memcached generator: achievable IPC range (asked -> achieved)")
	fmt.Printf("%8s %10s %10s\n", "asked", "achieved", "rel. err")
	const points = 7
	lo, hi := 0.5, 3.5
	for i := 0; i < points; i++ {
		asked := lo + float64(i)*(hi-lo)/float64(points-1)
		res, err := datamime.Search(datamime.SearchConfig{
			Generator:  gen,
			Objective:  datamime.MetricObjective{Metric: datamime.MetricIPC, Value: asked},
			Profiler:   profiler,
			Iterations: 14,
			Parallel:   4,
			Seed:       uint64(100 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		achieved := res.BestProfile.Mean(datamime.MetricIPC)
		fmt.Printf("%8.2f %10.2f %9.1f%%\n", asked, achieved, 100*abs(asked-achieved)/asked)
	}
	fmt.Println()
	fmt.Println("Values the generator cannot reach saturate at its range limits —")
	fmt.Println("memcached's uniform request processing bounds its IPC span, exactly")
	fmt.Println("the behavior the paper reports in Fig. 11.")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
