package datamime

import (
	"datamime/internal/sim"
	"datamime/internal/stats"
	"datamime/internal/trace"
	"datamime/internal/workload"
)

// This file re-exports the extension surface: everything needed to bring a
// *new* application and dataset generator to Datamime, following the
// systematic parameterization procedure of §III-B — implement Server,
// emit execution events into a Collector, define a parameter Space, and
// wrap dataset construction in a Generator.

type (
	// Collector consumes execution events (data accesses, instruction
	// blocks, branches); the simulated machine implements it.
	Collector = trace.Collector
	// CodeRegion is a contiguous stretch of simulated instruction memory.
	CodeRegion = trace.CodeRegion
	// CodeLayout allocates code regions in a simulated text segment.
	CodeLayout = trace.CodeLayout
	// RNG is a seeded deterministic random number generator.
	RNG = stats.RNG
	// Distribution is a one-dimensional random-variate source.
	Distribution = stats.Distribution
	// Normal is a truncated Gaussian distribution.
	Normal = stats.Normal
	// LogNormal is a log-normal distribution.
	LogNormal = stats.LogNormal
	// GPareto is a generalized Pareto distribution.
	GPareto = stats.GPareto
	// Zipf samples Zipf-distributed ranks.
	Zipf = stats.Zipf
	// Machine is a simulated core plus memory hierarchy; it implements
	// Collector.
	Machine = sim.Machine
	// WindowSample is one performance-counter sampling window.
	WindowSample = sim.WindowSample
)

// NewCodeLayout returns an empty simulated text segment.
func NewCodeLayout() *CodeLayout { return trace.NewCodeLayout() }

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// NewZipf builds a Zipf sampler over [0, n) with skew s.
func NewZipf(n int, s float64) *Zipf { return stats.NewZipf(n, s) }

// NewMachine builds a simulated machine with the given counter-window
// length in cycles.
func NewMachine(cfg MachineConfig, windowCycles float64) *Machine {
	return sim.NewMachine(cfg, windowCycles)
}

// Run drives a benchmark on a machine until the requested number of
// counter windows close; see the workload package for semantics.
func Run(m *Machine, b Benchmark, srv Server, windows int, seed uint64, maxRequests int) RunResult {
	return workload.Run(m, b, srv, windows, seed, maxRequests)
}

// Optional server capabilities: implement these alongside Server to opt
// into richer profiling.
type (
	// Warmable servers pre-touch their dataset before measurement, so
	// profiles reflect a long-running service's steady state.
	Warmable = workload.Warmable
	// Compressible servers report their snapshot compression ratio (the
	// §III-D extension metric).
	Compressible = workload.Compressible
	// Sizer servers report request/response sizes for the networked
	// configuration's kernel-stack model.
	Sizer = workload.Sizer
)

// EMD is the Earth Mover's Distance between two 1-D sample sets.
func EMD(a, b []float64) float64 { return stats.EMD(a, b) }

// NormalizedEMD is the EMD over axis-normalized CDFs — the paper's
// per-metric error (Fig. 10's units).
func NormalizedEMD(a, b []float64) float64 { return stats.NormalizedEMD(a, b) }
