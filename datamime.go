// Package datamime is a full reproduction of Datamime (Lee & Sanchez,
// MICRO 2022): a profile-guided system that generates representative
// benchmarks by automatically synthesizing datasets.
//
// Datamime takes three inputs — performance profiles of a target workload,
// a program (the same as, or similar to, the target's), and a parameterized
// dataset generator — and searches the generator's parameter space with
// Bayesian optimization so that the program running the synthesized dataset
// reproduces the target's performance-profile *distributions* (Earth
// Mover's Distance over the ten Table I metrics, including cache-
// sensitivity curves).
//
// Because this reproduction runs without hardware counters or production
// data, workloads execute on a deterministic trace-driven microarchitecture
// simulator with three machine models (Broadwell, Zen 2, Silvermont) and
// application substrates implemented in this module (an in-memory KV store,
// an OLTP database, a search engine, a CNN inference engine). See DESIGN.md
// for the substitution inventory.
//
// The typical flow:
//
//	target := datamime.MemFB()                    // a hidden target workload
//	prof, _ := datamime.NewProfiler(datamime.Broadwell()).Profile(target, 1)
//	gen := datamime.MemcachedGenerator()          // Table III parameter space
//	res, _ := datamime.Search(datamime.SearchConfig{
//	    Generator:  gen,
//	    Objective:  datamime.NewProfileObjective(prof, datamime.NewErrorModel()),
//	    Profiler:   datamime.NewProfiler(datamime.Broadwell()),
//	    Iterations: 200,
//	})
//	bench := gen.Benchmark(res.BestParams)        // the representative benchmark
package datamime

import (
	"context"
	"io"

	"datamime/internal/cloning"
	"datamime/internal/core"
	"datamime/internal/datagen"
	"datamime/internal/harness"
	"datamime/internal/opt"
	"datamime/internal/profile"
	"datamime/internal/service"
	"datamime/internal/sim"
	"datamime/internal/telemetry"
	"datamime/internal/workload"
)

// Core types, re-exported from the implementation packages.
type (
	// Profile is a complete performance profile: per-metric sample
	// distributions plus cache-sensitivity curves.
	Profile = profile.Profile
	// MetricID names one profiled metric.
	MetricID = profile.MetricID
	// CurvePoint is one cache-allocation measurement.
	CurvePoint = profile.CurvePoint
	// Profiler collects profiles on a simulated machine.
	Profiler = profile.Profiler
	// Benchmark couples a server factory with its offered load.
	Benchmark = workload.Benchmark
	// Server is a request-driven application.
	Server = workload.Server
	// RunResult summarizes one driver run.
	RunResult = workload.RunResult
	// Generator is a dataset generator: a parameter space plus a factory.
	Generator = datagen.Generator
	// Param is one bounded generator parameter.
	Param = opt.Param
	// Space is a searchable parameter domain.
	Space = opt.Space
	// Optimizer proposes parameters and learns from observations.
	Optimizer = opt.Optimizer
	// SearchConfig drives one Datamime search.
	SearchConfig = core.SearchConfig
	// Result is a search outcome.
	Result = core.Result
	// IterationRecord is one step of a search trace.
	IterationRecord = core.IterationRecord
	// ErrorModel is the Eq. 1 profile error model.
	ErrorModel = core.ErrorModel
	// Component names one of the ten error components.
	Component = core.Component
	// Objective scores candidate profiles.
	Objective = core.Objective
	// ProfileObjective matches a full target profile.
	ProfileObjective = core.ProfileObjective
	// MetricObjective targets a single metric value.
	MetricObjective = core.MetricObjective
	// MachineConfig describes a simulated evaluation platform.
	MachineConfig = sim.MachineConfig
	// Workload is an evaluation target bundle (target + public dataset +
	// generator).
	Workload = harness.Workload
	// Runner executes and caches evaluation experiments.
	Runner = harness.Runner
	// Settings controls experiment budgets.
	Settings = harness.Settings
	// EvalCache is a content-addressed store of measured profiles shared
	// across searches (see NewEvalCache).
	EvalCache = core.EvalCache
	// Evaluator replaces where cache-missing candidate evaluations run
	// (SearchConfig.Evaluator) — e.g. internal/backend's dispatcher for
	// fleet execution. Results are bit-identical wherever they run.
	Evaluator = core.Evaluator
	// Checkpoint is the resumable state of a search (SearchConfig.Resume).
	Checkpoint = core.Checkpoint
	// CheckpointEntry is one recorded search iteration.
	CheckpointEntry = core.CheckpointEntry
	// EvalEvent describes one finished iteration to SearchConfig.OnEval.
	EvalEvent = core.EvalEvent
	// EvalErrorPolicy selects how a search reacts to profiling failures.
	EvalErrorPolicy = core.EvalErrorPolicy
	// Service is the datamimed job scheduler (see NewService).
	Service = service.Server
	// ServiceConfig configures a Service.
	ServiceConfig = service.Config
	// JobSpec describes one search job submitted to a Service.
	JobSpec = service.JobSpec
	// ProfilingSpec overrides profiler budgets per job.
	ProfilingSpec = service.ProfilingSpec
	// JobStatus is the JSON view of a Service job.
	JobStatus = service.JobStatus
	// JobResult summarizes a finished Service job.
	JobResult = service.JobResult
	// TelemetryRecorder collects phase spans and eval events from a search
	// (SearchConfig.Telemetry, Profiler.Telemetry). A nil recorder is valid
	// and disabled at the cost of one nil check per phase.
	TelemetryRecorder = telemetry.Recorder
	// TelemetryOptions configures a TelemetryRecorder (see NewTelemetry).
	TelemetryOptions = telemetry.Options
	// TelemetryEvent is one telemetry record: a span, an evaluation, or a
	// log line; events marshal one-per-line into JSONL run artifacts.
	TelemetryEvent = telemetry.Event
)

// Evaluation-failure policies (SearchConfig.OnEvalError).
const (
	// EvalFailFast aborts the search on the first profiling error.
	EvalFailFast = core.EvalFailFast
	// EvalRetrySkip retries once with a perturbed seed, then skips and
	// records the iteration.
	EvalRetrySkip = core.EvalRetrySkip
)

// Profiled metric identifiers (Table I).
const (
	MetricIPC     = profile.MetricIPC
	MetricL1D     = profile.MetricL1D
	MetricL2      = profile.MetricL2
	MetricLLC     = profile.MetricLLC
	MetricICache  = profile.MetricICache
	MetricITLB    = profile.MetricITLB
	MetricDTLB    = profile.MetricDTLB
	MetricBranch  = profile.MetricBranch
	MetricCPUUtil = profile.MetricCPUUtil
	MetricMemBW   = profile.MetricMemBW
	// MetricCompress is the optional snapshot-compression-ratio metric
	// (the §III-D extension).
	MetricCompress = profile.MetricCompress
)

// CompCompression is the optional error-model component matching snapshot
// compression ratios; weight it in with ErrorModel.WithWeight.
const CompCompression = core.CompCompression

// DistanceKind selects the distribution-distance statistic of the error
// model: DistEMD (the paper's choice) or DistKS (the Kolmogorov–Smirnov
// alternative it cites).
type DistanceKind = core.DistanceKind

// Distribution-distance statistics.
const (
	DistEMD = core.DistEMD
	DistKS  = core.DistKS
)

// Machine configurations mirroring Table II.
var (
	Broadwell  = sim.Broadwell
	Zen2       = sim.Zen2
	Silvermont = sim.Silvermont
	Machines   = sim.Machines
)

// NewProfiler returns a profiler with the evaluation defaults for the
// given machine.
func NewProfiler(m MachineConfig) *Profiler { return profile.New(m) }

// DecodeProfile parses a profile serialized with Profile.EncodeJSON — the
// artifact a service operator shares with a benchmark designer in the
// paper's workflow (profiles reveal counters, never data).
func DecodeProfile(data []byte) (*Profile, error) { return profile.DecodeJSON(data) }

// Search runs Datamime's optimization loop (Eq. 2).
func Search(cfg SearchConfig) (*Result, error) { return core.Search(cfg) }

// SearchContext is Search with cancellation: ctx is checked between
// evaluation batches and profiling phases, so canceling stops the search
// within roughly one batch, returning the partial result (whose Checkpoint
// can later resume it) alongside ctx's error.
func SearchContext(ctx context.Context, cfg SearchConfig) (*Result, error) {
	return core.SearchContext(ctx, cfg)
}

// NewEvalCache builds the bounded LRU evaluation cache datamimed shares
// across jobs; plug it into SearchConfig.Cache so repeated or warm-started
// searches skip re-simulation (<= 0 selects the default capacity).
func NewEvalCache(capacity int) EvalCache { return service.NewCache(capacity) }

// NewService builds the datamimed benchmark-generation service: a bounded
// worker pool running search jobs with a shared evaluation cache and
// per-job checkpoint/resume. Serve its Handler over HTTP (cmd/datamimed)
// or drive it in-process via Submit.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// NewTelemetry builds a telemetry recorder for SearchConfig.Telemetry; the
// zero TelemetryOptions give a 512-event flight recorder with no sinks.
func NewTelemetry(opts TelemetryOptions) *TelemetryRecorder { return telemetry.New(opts) }

// NewErrorModel returns the default equal-weight Eq. 1 error model.
func NewErrorModel() *ErrorModel { return core.NewErrorModel() }

// NewProfileObjective builds a profile-matching objective with the target's
// sample distributions pre-sorted, so a long search sorts the fixed target
// side once instead of once per evaluation. The literal
// ProfileObjective{Target: t, Model: m} form remains supported and produces
// bit-identical errors.
func NewProfileObjective(target *Profile, model *ErrorModel) ProfileObjective {
	return core.NewProfileObjective(target, model)
}

// NewBayesOpt builds the paper's Bayesian optimizer over a space.
func NewBayesOpt(space *Space, seed uint64) Optimizer {
	return opt.NewBayesOpt(space, opt.BayesOptConfig{Seed: seed})
}

// NewRandomSearch builds the random-search baseline optimizer.
func NewRandomSearch(space *Space, seed uint64) Optimizer {
	return opt.NewRandomSearch(space, seed)
}

// NewSpace builds a validated parameter space.
func NewSpace(params ...Param) (*Space, error) { return opt.NewSpace(params...) }

// Dataset generators (Table III).
var (
	MemcachedGenerator             = datagen.Memcached
	MemcachedCompressibleGenerator = datagen.MemcachedCompressible
	SiloGenerator                  = datagen.Silo
	XapianGenerator                = datagen.Xapian
	DNNGenerator                   = datagen.DNN
	Generators                     = datagen.All
	GeneratorByName                = datagen.ByName
)

// Evaluation workloads and case studies.
var (
	Workloads          = harness.Workloads
	CaseStudyWorkloads = harness.CaseStudyWorkloads
	WorkloadByName     = harness.WorkloadByName
)

// Experiment settings presets.
var (
	FullSettings  = harness.Full
	QuickSettings = harness.Quick
)

// NewRunner builds an experiment runner.
func NewRunner(st Settings) *Runner { return harness.NewRunner(st) }

// CloneBaseline generates a PerfProx-style black-box clone benchmark from a
// target profile (the comparison baseline of the paper).
func CloneBaseline(target *Profile, name string) Benchmark {
	return cloning.Clone(target, name)
}

// MemFB returns the mem-fb target benchmark (memcached with a Facebook-
// production-like dataset) — the running example of the paper.
func MemFB() Benchmark {
	w, err := harness.WorkloadByName("mem-fb")
	if err != nil {
		panic(err) // static registry; cannot fail
	}
	return w.Target
}

// RunExperiment regenerates one paper table/figure by id ("fig1", "fig3",
// "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
// "fig13", "table1", "table2", "table3", "table4") into out.
func RunExperiment(r *Runner, id string, out io.Writer) error {
	return harness.RunExperiment(r, id, out)
}

// ExperimentIDs lists every regenerable table and figure id.
func ExperimentIDs() []string { return harness.ExperimentIDs() }
