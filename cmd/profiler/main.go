// Command profiler collects the performance profile of one evaluation
// workload on one simulated machine and writes it as JSON — the artifact
// the paper's operators would hand to a benchmark designer.
//
// Usage:
//
//	profiler -workload mem-fb -machine broadwell > mem-fb.json
//	profiler -workload dnn -machine silvermont -scheme public
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"datamime"
	"datamime/internal/buildinfo"
	"datamime/internal/harness"
	"datamime/internal/sim"
)

func main() {
	var (
		workloadName = flag.String("workload", "mem-fb", "workload to profile")
		machineName  = flag.String("machine", "broadwell", "machine: broadwell, zen2, silvermont")
		scheme       = flag.String("scheme", "target", "scheme: target or public")
		seed         = flag.Uint64("seed", 1, "profiling seed")
		quick        = flag.Bool("quick", false, "use reduced profiling budgets")
		profWorkers  = flag.Int("profile-workers", runtime.GOMAXPROCS(0), "concurrent simulator runs for the way-curve sweep; the profile is bit-identical at any setting")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("profiler", buildinfo.Read())
		return
	}
	if *profWorkers < 0 {
		fmt.Fprintln(os.Stderr, "profiler: -profile-workers must be >= 0")
		os.Exit(1)
	}

	if err := run(*workloadName, *machineName, *scheme, *seed, *quick, *profWorkers); err != nil {
		fmt.Fprintln(os.Stderr, "profiler:", err)
		os.Exit(1)
	}
}

func run(workloadName, machineName, scheme string, seed uint64, quick bool, profileWorkers int) error {
	w, err := harness.WorkloadByName(workloadName)
	if err != nil {
		return err
	}
	machine, err := sim.MachineByName(machineName)
	if err != nil {
		return err
	}
	bench := w.Target
	switch scheme {
	case "target":
	case "public":
		if w.Public == nil {
			return fmt.Errorf("workload %s has no public dataset", w.Name)
		}
		bench = *w.Public
	default:
		return fmt.Errorf("unknown scheme %q (target, public)", scheme)
	}

	pr := datamime.NewProfiler(machine)
	pr.Workers = profileWorkers
	if quick {
		st := datamime.QuickSettings()
		pr.WindowCycles = st.WindowCycles
		pr.Windows = st.Windows
		pr.WarmupWindows = st.WarmupWindows
		pr.CurveWindows = st.CurveWindows
		pr.CurvePoints = st.CurvePoints
	}
	p, err := pr.Profile(bench, seed)
	if err != nil {
		return err
	}
	data, err := p.EncodeJSON()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(data, '\n'))
	return err
}
