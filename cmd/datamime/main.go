// Command datamime runs a full Datamime search for one evaluation workload:
// it profiles the hidden target, searches the workload's dataset-generator
// parameter space with Bayesian optimization, and reports the best dataset
// parameters and the resulting benchmark's profile.
//
// Usage:
//
//	datamime -workload mem-fb -iterations 200
//	datamime -workload silo -iterations 60 -seed 7 -quiet
//	datamime -workload mem-fb -quick -artifact run.jsonl -profiles profiles.json
//	datamime -workload mem-fb -quick -trace trace.json
//
// The -artifact and -profiles outputs feed cmd/datamime-inspect: the JSONL
// artifact carries the evaluation history (report/diff inputs), the profiles
// doc carries the target and best-candidate distributions behind the report's
// eCDF overlays. The -trace output is Chrome/Perfetto trace-event JSON of
// the run's span timeline (load it at https://ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strings"

	"datamime"
	"datamime/internal/backend"
	"datamime/internal/buildinfo"
	"datamime/internal/inspect"
	"datamime/internal/telemetry"
)

func main() {
	var (
		workloadName = flag.String("workload", "mem-fb", "target workload: "+strings.Join(workloadNames(), ", "))
		iterations   = flag.Int("iterations", 200, "search iterations (the paper uses 200)")
		seed         = flag.Uint64("seed", 1, "seed for all stochastic streams")
		quiet        = flag.Bool("quiet", false, "suppress per-iteration progress")
		quick        = flag.Bool("quick", false, "use reduced profiling budgets (faster, noisier)")
		parallel     = flag.Int("parallel", 4, "concurrent candidate evaluations per batch (1 = the paper's serial loop)")
		profWorkers  = flag.Int("profile-workers", runtime.GOMAXPROCS(0), "concurrent simulator runs per profile (the way-curve sweep); profiles are bit-identical at any setting")
		targetFile   = flag.String("target-profile", "", "load the target profile from a JSON file (as produced by cmd/profiler) instead of profiling the workload — the paper's share-profiles-not-data workflow")
		artifactOut  = flag.String("artifact", "", "stream a JSONL run artifact to this file (datamime-inspect report/diff input)")
		profilesOut  = flag.String("profiles", "", "write the target/best profile pair to this JSON file (datamime-inspect -profiles input)")
		traceOut     = flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON timeline of the run to this file")
		workerURLs   = flag.String("worker", "", "comma-separated datamime-worker base URLs to dispatch evaluations to (results are bit-identical to a local run of the same seed)")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("datamime", buildinfo.Read())
		return
	}

	if *profWorkers < 0 {
		fmt.Fprintln(os.Stderr, "datamime: -profile-workers must be >= 0")
		os.Exit(1)
	}

	if err := run(*workloadName, *iterations, *seed, *quiet, *quick, *parallel,
		*profWorkers, *targetFile, *artifactOut, *profilesOut, *traceOut, *workerURLs); err != nil {
		fmt.Fprintln(os.Stderr, "datamime:", err)
		os.Exit(1)
	}
}

func workloadNames() []string {
	var names []string
	for _, w := range datamime.Workloads() {
		names = append(names, w.Name)
	}
	for _, w := range datamime.CaseStudyWorkloads() {
		names = append(names, w.Name)
	}
	return names
}

func run(name string, iterations int, seed uint64, quiet, quick bool, parallel, profileWorkers int,
	targetFile, artifactOut, profilesOut, traceOut, workerURLs string) error {
	w, err := datamime.WorkloadByName(name)
	if err != nil {
		return err
	}
	st := datamime.FullSettings()
	if quick {
		st = datamime.QuickSettings()
	}

	profiler := datamime.NewProfiler(datamime.Broadwell())
	profiler.WindowCycles = st.WindowCycles
	profiler.Windows = st.Windows
	profiler.WarmupWindows = st.WarmupWindows
	profiler.CurveWindows = st.CurveWindows
	profiler.CurvePoints = st.CurvePoints
	profiler.Workers = profileWorkers

	// The artifact sink streams events to disk as they happen; the trace
	// collector retains the full stream in memory (the flight-recorder ring
	// evicts) for end-of-run trace-event export. Either output wants a
	// recorder; both can share one.
	var rec *telemetry.Recorder
	var collector *telemetry.Collector
	var sinks []func(telemetry.Event)
	if artifactOut != "" {
		f, err := os.Create(artifactOut)
		if err != nil {
			return err
		}
		defer f.Close()
		sink := telemetry.NewJSONLSink(f)
		sink(telemetry.Event{
			Type: telemetry.TypeLog,
			Msg: fmt.Sprintf("datamime run artifact: workload=%s iterations=%d seed=%d parallel=%d profile_workers=%d",
				name, iterations, seed, parallel, profileWorkers),
		})
		sinks = append(sinks, sink)
	}
	if traceOut != "" {
		collector = &telemetry.Collector{}
		sinks = append(sinks, collector.Record)
	}
	if len(sinks) > 0 {
		rec = telemetry.New(telemetry.Options{OnEvent: func(ev telemetry.Event) {
			for _, s := range sinks {
				s(ev)
			}
		}})
		profiler.Telemetry = rec
	}

	var target *datamime.Profile
	if targetFile != "" {
		data, err := os.ReadFile(targetFile)
		if err != nil {
			return err
		}
		target, err = datamime.DecodeProfile(data)
		if err != nil {
			return err
		}
		fmt.Printf("loaded target profile %q (%s, measured on %s)\n",
			targetFile, target.Benchmark, target.Machine)
	} else {
		fmt.Printf("profiling target %s on broadwell...\n", w.Name)
		var err error
		target, err = profiler.Profile(w.Target, seed)
		if err != nil {
			return err
		}
	}
	fmt.Printf("target: IPC %.2f, LLC MPKI %.2f, CPU util %.2f\n",
		target.Mean(datamime.MetricIPC), target.Mean(datamime.MetricLLC),
		target.Mean(datamime.MetricCPUUtil))

	// With -worker, candidate evaluations are sharded across the fleet
	// (falling back in-process on worker failure); the dispatch layer's
	// bit-identical-profile contract means results match a local run of the
	// same seed exactly.
	var evaluator datamime.Evaluator
	if workerURLs != "" {
		local := backend.NewLocalBackend()
		local.ProfileWorkers = profileWorkers
		dispatcher := backend.NewDispatcher(backend.DispatcherConfig{Local: local})
		urls := strings.Split(workerURLs, ",")
		for _, u := range urls {
			if u = strings.TrimSpace(u); u != "" {
				dispatcher.Register(backend.NewRemoteBackend(u, ""))
			}
		}
		ev := backend.NewSearchEvaluator(dispatcher, w.Generator.Name, profiler)
		ev.Telemetry = rec
		evaluator = ev
		fmt.Printf("dispatching evaluations to %d worker(s)\n", len(urls))
	}

	// Per-iteration progress lines ride on OnEval through the telemetry
	// line logger (the old SearchConfig.Log path, now fully outside core).
	var logger *slog.Logger
	if !quiet {
		logger = telemetry.NewLineLogger(os.Stdout)
	}
	fmt.Printf("searching %s's %d-parameter space for %d iterations...\n",
		w.Generator.Name, w.Generator.Space.Dim(), iterations)
	res, err := datamime.Search(datamime.SearchConfig{
		Generator:      w.Generator,
		Objective:      datamime.NewProfileObjective(target, datamime.NewErrorModel()),
		Profiler:       profiler,
		Iterations:     iterations,
		Seed:           seed,
		Parallel:       parallel,
		ProfileWorkers: profileWorkers,
		Evaluator:      evaluator,
		Telemetry:      rec,
		OnEval: func(ev datamime.EvalEvent) {
			if logger == nil {
				return
			}
			if ev.Skipped {
				logger.Warn("iter skipped",
					slog.Int("n", ev.Record.Iteration), slog.String("err", ev.Err))
				return
			}
			logger.Info("iter",
				slog.Int("n", ev.Record.Iteration),
				slog.String("err", fmt.Sprintf("%.4f", ev.Record.Error)),
				slog.String("best", fmt.Sprintf("%.4f", ev.Record.BestError)),
				slog.String("params", w.Generator.Space.Values(ev.Record.Params)))
		},
	})
	if err != nil {
		return err
	}

	fmt.Printf("\nbest dataset parameters (total EMD %.4f):\n  %s\n",
		res.BestError, w.Generator.Space.Values(res.BestParams))
	fmt.Printf("benchmark vs target (broadwell means):\n")
	for _, m := range []datamime.MetricID{
		datamime.MetricIPC, datamime.MetricLLC, datamime.MetricICache,
		datamime.MetricBranch, datamime.MetricCPUUtil, datamime.MetricMemBW,
	} {
		fmt.Printf("  %-12s target %8.3f   datamime %8.3f\n",
			m, target.Mean(m), res.BestProfile.Mean(m))
	}
	if profilesOut != "" {
		doc := &inspect.ProfilesDoc{
			Components: res.BestComponents(),
			Target:     target,
			Best:       res.BestProfile,
		}
		data, err := doc.EncodeJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(profilesOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote profiles doc %s\n", profilesOut)
	}
	if artifactOut != "" {
		fmt.Printf("wrote run artifact %s\n", artifactOut)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := telemetry.WriteTrace(f, collector.Events()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote trace %s (open at https://ui.perfetto.dev)\n", traceOut)
	}
	return nil
}
