// Command datamimed serves Datamime benchmark generation as a long-running
// HTTP/JSON service: clients submit search jobs, poll their live
// convergence traces, and fetch the best dataset parameters when done. Jobs
// run on a bounded worker pool, share a content-addressed evaluation cache,
// and checkpoint after every batch — kill the server mid-search and the
// next start resumes every unfinished job from its last completed batch.
//
// Usage:
//
//	datamimed -addr :8080 -workers 4 -checkpoint-dir ./checkpoints
//
// Quickstart:
//
//	curl -X POST localhost:8080/jobs -d '{"workload":"mem-fb","iterations":200,"parallel":4,"seed":1}'
//	curl localhost:8080/jobs/job-1            # status + convergence trace
//	curl localhost:8080/jobs/job-1/result     # best dataset parameters
//	curl -X POST localhost:8080/jobs/job-1/cancel
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datamime/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 2, "concurrent search jobs")
		queueDepth    = flag.Int("queue-depth", 1024, "maximum queued jobs")
		checkpointDir = flag.String("checkpoint-dir", "", "directory for job checkpoints (empty disables persistence and resume)")
		cacheCapacity = flag.Int("cache-capacity", 4096, "evaluation-cache capacity (profiles)")
		quiet         = flag.Bool("quiet", false, "suppress job lifecycle logs")
	)
	flag.Parse()

	if err := run(*addr, *workers, *queueDepth, *checkpointDir, *cacheCapacity, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "datamimed:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queueDepth int, checkpointDir string, cacheCapacity int, quiet bool) error {
	cfg := service.Config{
		Workers:       workers,
		QueueDepth:    queueDepth,
		CheckpointDir: checkpointDir,
		CacheCapacity: cacheCapacity,
	}
	if !quiet {
		cfg.Log = os.Stdout
	}
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Printf("datamimed listening on %s (workers=%d", addr, workers)
	if checkpointDir != "" {
		fmt.Printf(", checkpoints in %s", checkpointDir)
	}
	fmt.Println(")")
	fmt.Printf("submit a job:  curl -X POST localhost%s/jobs -d '{\"workload\":\"mem-fb\",\"iterations\":200,\"parallel\":4}'\n", portSuffix(addr))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Close()
		return err
	case s := <-sig:
		fmt.Printf("datamimed: %s — checkpointing and shutting down\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	// Close cancels running searches; their checkpoints persist, so the
	// next start resumes them.
	svc.Close()
	return nil
}

// portSuffix extracts ":8080" from a listen address for the quickstart
// line.
func portSuffix(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[i:]
		}
	}
	return addr
}
