// Command datamimed serves Datamime benchmark generation as a long-running
// HTTP/JSON service: clients submit search jobs, poll their live
// convergence traces, and fetch the best dataset parameters when done. Jobs
// run on a bounded worker pool, share a content-addressed evaluation cache,
// and checkpoint after every batch — kill the server mid-search and the
// next start resumes every unfinished job from its last completed batch.
//
// Usage:
//
//	datamimed -addr :8080 -workers 4 -checkpoint-dir ./checkpoints
//
// Quickstart:
//
//	curl -X POST localhost:8080/jobs -d '{"workload":"mem-fb","iterations":200,"parallel":4,"seed":1}'
//	curl localhost:8080/jobs/job-1            # status + convergence trace
//	curl localhost:8080/jobs/job-1/result     # best dataset parameters
//	curl localhost:8080/jobs/job-1/events     # live SSE event stream
//	curl localhost:8080/jobs/job-1/artifact   # JSONL run artifact
//	curl localhost:8080/jobs/job-1/report     # self-contained HTML run report
//	curl localhost:8080/jobs/job-1/profiles   # target + best profiles (JSON)
//	curl localhost:8080/jobs/job-1/trace      # Chrome/Perfetto trace-event JSON
//	curl -X POST localhost:8080/jobs/job-1/cancel
//	curl localhost:8080/v1/corpus             # indexed run history (needs -corpus-dir)
//	curl localhost:8080/metrics               # Prometheus text metrics
//
// -telemetry enables per-job phase spans (feeding the /metrics latency
// histograms, the /events stream, and the per-job /trace timeline — open
// it at https://ui.perfetto.dev); -debug mounts net/http/pprof and expvar
// under /debug/ for live profiling of the server itself.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"datamime/internal/buildinfo"
	"datamime/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 2, "concurrent search jobs")
		queueDepth    = flag.Int("queue-depth", 1024, "maximum queued jobs")
		checkpointDir = flag.String("checkpoint-dir", "", "directory for job checkpoints (empty disables persistence and resume)")
		corpusDir     = flag.String("corpus-dir", "", "directory for the run corpus: every finished job is indexed with its artifact, served at /v1/corpus, and watched for regressions against its scenario baseline (empty disables)")
		cacheCapacity = flag.Int("cache-capacity", 4096, "evaluation-cache capacity (profiles)")
		profWorkers   = flag.Int("profile-workers", runtime.GOMAXPROCS(0), "default concurrent simulator runs per profile for jobs that do not set profiling.profile_workers; profiles are bit-identical at any setting")
		quiet         = flag.Bool("quiet", false, "suppress job lifecycle logs")
		telemetry     = flag.Bool("telemetry", false, "record per-job phase spans (latency histograms in /metrics, spans in /events)")
		debug         = flag.Bool("debug", false, "expose net/http/pprof and expvar under /debug/")
		version       = flag.Bool("version", false, "print build information and exit")

		dispatchTimeout = flag.Duration("dispatch-timeout", 5*time.Minute, "per-attempt timeout for remote evaluations")
		dispatchRetries = flag.Int("dispatch-retries", 2, "remote attempts after a failure before an evaluation falls back in-process")
		dispatchQueue   = flag.Int("dispatch-max-queue", 64, "evaluations waiting for a remote slot before admission control sheds to local")
		healthInterval  = flag.Duration("worker-health-interval", 15*time.Second, "fleet health-probe period")
		fedInterval     = flag.Duration("federation-interval", 15*time.Second, "worker /metrics scrape period for the federated datamime_worker_* families (negative disables)")
	)
	var workerURLs workerList
	flag.Var(&workerURLs, "worker", "datamime-worker base URL to dispatch evaluations to (repeatable; workers may also self-register via POST /v1/workers)")
	flag.Parse()
	if *version {
		fmt.Println("datamimed", buildinfo.Read())
		return
	}
	if *profWorkers < 0 {
		fmt.Fprintln(os.Stderr, "datamimed: -profile-workers must be >= 0")
		os.Exit(1)
	}

	if err := run(options{
		addr:            *addr,
		workers:         *workers,
		queueDepth:      *queueDepth,
		checkpointDir:   *checkpointDir,
		corpusDir:       *corpusDir,
		cacheCapacity:   *cacheCapacity,
		profWorkers:     *profWorkers,
		quiet:           *quiet,
		telemetry:       *telemetry,
		debug:           *debug,
		workerURLs:      workerURLs,
		dispatchTimeout: *dispatchTimeout,
		dispatchRetries: *dispatchRetries,
		dispatchQueue:   *dispatchQueue,
		healthInterval:  *healthInterval,
		fedInterval:     *fedInterval,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "datamimed:", err)
		os.Exit(1)
	}
}

type options struct {
	addr          string
	workers       int
	queueDepth    int
	checkpointDir string
	corpusDir     string
	cacheCapacity int
	profWorkers   int
	quiet         bool
	telemetry     bool
	debug         bool

	workerURLs      []string
	dispatchTimeout time.Duration
	dispatchRetries int
	dispatchQueue   int
	healthInterval  time.Duration
	fedInterval     time.Duration
}

// workerList accumulates repeated -worker flags.
type workerList []string

func (w *workerList) String() string { return fmt.Sprint([]string(*w)) }

func (w *workerList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty worker URL")
	}
	*w = append(*w, v)
	return nil
}

func run(o options) error {
	cfg := service.Config{
		Workers:               o.workers,
		QueueDepth:            o.queueDepth,
		CheckpointDir:         o.checkpointDir,
		CorpusDir:             o.corpusDir,
		CacheCapacity:         o.cacheCapacity,
		DefaultProfileWorkers: o.profWorkers,
		Telemetry:             o.telemetry,
		WorkerURLs:            o.workerURLs,
		DispatchTimeout:       o.dispatchTimeout,
		DispatchRetries:       o.dispatchRetries,
		DispatchMaxQueue:      o.dispatchQueue,
		WorkerHealthInterval:  o.healthInterval,
		FederationInterval:    o.fedInterval,
	}
	if !o.quiet {
		cfg.Log = os.Stdout
	}
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}

	handler := svc.Handler()
	if o.debug {
		handler = withDebugHandlers(handler, svc)
	}
	httpSrv := &http.Server{Addr: o.addr, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Printf("datamimed listening on %s (workers=%d", o.addr, o.workers)
	if o.checkpointDir != "" {
		fmt.Printf(", checkpoints in %s", o.checkpointDir)
	}
	if o.corpusDir != "" {
		fmt.Printf(", corpus in %s", o.corpusDir)
	}
	if n := len(o.workerURLs); n > 0 {
		fmt.Printf(", fleet of %d", n)
	}
	if o.telemetry {
		fmt.Printf(", telemetry on")
	}
	if o.debug {
		fmt.Printf(", /debug/ exposed")
	}
	fmt.Println(")")
	fmt.Printf("submit a job:  curl -X POST localhost%s/jobs -d '{\"workload\":\"mem-fb\",\"iterations\":200,\"parallel\":4}'\n", portSuffix(o.addr))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Close()
		return err
	case s := <-sig:
		fmt.Printf("datamimed: %s — checkpointing and shutting down\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	// Close cancels running searches; their checkpoints persist, so the
	// next start resumes them.
	svc.Close()
	return nil
}

// withDebugHandlers wraps the service handler with the stdlib debug
// endpoints: pprof profiles under /debug/pprof/ and expvar (including the
// server's own operational snapshot under the "datamimed" key) at
// /debug/vars.
func withDebugHandlers(h http.Handler, svc *service.Server) http.Handler {
	expvar.Publish("datamimed", expvar.Func(func() interface{} { return svc.DebugVars() }))
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/", h)
	return mux
}

// portSuffix extracts ":8080" from a listen address for the quickstart
// line.
func portSuffix(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[i:]
		}
	}
	return addr
}
