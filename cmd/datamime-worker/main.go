// Command datamime-worker serves simulator evaluations and way-curve sweeps
// to a datamimed coordinator over the versioned JSON/HTTP protocol
// (internal/backend, protocol v1). A fleet of workers lets one coordinator
// shard candidate evaluations across machines; the determinism contract —
// every backend returns bit-identical profiles for the same request — means
// adding, removing, or killing workers never changes a search's results,
// only its wall-clock time.
//
// Usage:
//
//	datamime-worker -addr :9090 -capacity 4
//	datamime-worker -addr :9090 -coordinator http://coord:8080 -advertise http://worker1:9090
//
// With -coordinator set, the worker announces itself on start, re-announces
// periodically (registration is idempotent on URL, so announcements double
// as heartbeats), uses the coordinator's /v1/cache endpoint as the shared
// tier above its local profile cache, and withdraws cleanly on SIGTERM.
// Without it, register the worker by hand with the coordinator's
// -worker flag or POST /v1/workers.
//
// Endpoints:
//
//	POST /v1/evaluate   run one evaluation (503 when saturated)
//	GET  /v1/healthz    protocol handshake + capacity + load
//	GET  /metrics       Prometheus text metrics (datamime_worker_*)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"datamime/internal/backend"
	"datamime/internal/buildinfo"
)

func main() {
	var (
		addr          = flag.String("addr", ":9090", "listen address")
		name          = flag.String("name", "", "worker display name (default: the advertise URL or hostname)")
		capacity      = flag.Int("capacity", 1, "maximum concurrent evaluations")
		backlog       = flag.Int("backlog", 0, "queued evaluations beyond capacity before shedding 503s (default: capacity)")
		profWorkers   = flag.Int("profile-workers", runtime.GOMAXPROCS(0), "concurrent simulator runs per profile; profiles are bit-identical at any setting")
		cacheCapacity = flag.Int("cache-capacity", 1024, "local profile-cache capacity")
		coordinator   = flag.String("coordinator", "", "coordinator base URL to self-register with (and use as the shared cache tier)")
		advertise     = flag.String("advertise", "", "base URL the coordinator should dial this worker at (required with -coordinator)")
		interval      = flag.Duration("register-interval", 30*time.Second, "re-announcement (heartbeat) period with -coordinator")
		version       = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("datamime-worker", buildinfo.Read())
		return
	}
	if err := run(*addr, *name, *capacity, *backlog, *profWorkers, *cacheCapacity, *coordinator, *advertise, *interval); err != nil {
		fmt.Fprintln(os.Stderr, "datamime-worker:", err)
		os.Exit(1)
	}
}

func run(addr, name string, capacity, backlog, profWorkers, cacheCapacity int, coordinator, advertise string, interval time.Duration) error {
	if coordinator != "" && advertise == "" {
		return fmt.Errorf("-advertise is required with -coordinator (the URL the coordinator dials back)")
	}
	if name == "" {
		if advertise != "" {
			name = advertise
		} else if host, err := os.Hostname(); err == nil {
			name = host
		}
	}
	w := backend.NewWorker(backend.WorkerConfig{
		Name:           name,
		Capacity:       capacity,
		MaxBacklog:     backlog,
		ProfileWorkers: profWorkers,
		CacheCapacity:  cacheCapacity,
		Coordinator:    coordinator,
		// Heartbeats and health probes carry the build identity, so the
		// coordinator's /v1/workers and /v1/fleet surface version skew.
		Version: buildinfo.Read().String(),
	})

	httpSrv := &http.Server{Addr: addr, Handler: w.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Printf("datamime-worker %q listening on %s (capacity=%d, profile-workers=%d",
		w.Name(), addr, w.Capacity(), profWorkers)
	if coordinator != "" {
		fmt.Printf(", announcing to %s as %s", coordinator, advertise)
	}
	fmt.Println(")")

	ctx, cancel := context.WithCancel(context.Background())
	announcerDone := make(chan struct{})
	if coordinator != "" {
		go func() {
			defer close(announcerDone)
			w.RunAnnouncer(ctx, coordinator, advertise, interval, func(err error) {
				fmt.Fprintln(os.Stderr, "datamime-worker: announce:", err)
			})
		}()
	} else {
		close(announcerDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		cancel()
		<-announcerDone
		return err
	case s := <-sig:
		fmt.Printf("datamime-worker: %s — withdrawing and shutting down\n", s)
	}

	// Withdraw from the coordinator (via the announcer's shutdown path),
	// then drain in-flight evaluations.
	cancel()
	<-announcerDone
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	_ = httpSrv.Shutdown(sctx)
	return nil
}
