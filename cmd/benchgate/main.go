// Command benchgate turns `go test -bench` output into a committed JSON
// baseline and gates regressions against it — the perf counterpart of the
// inspect-gate determinism check.
//
// Usage:
//
//	go test -run NONE -bench . -benchtime=1x -count=3 ./internal/... > bench.txt
//	benchgate snapshot -in bench.txt -out BENCH_BASELINE.json
//	benchgate compare -in bench.txt -baseline BENCH_BASELINE.json \
//	    -gate BenchmarkProfilerSweep -max-regression 0.30
//	benchgate text -baseline BENCH_BASELINE.json > baseline.txt
//
// snapshot aggregates repeated runs of each benchmark (min ns/op — the
// least-noise estimator for a regression gate) into a baseline file.
// compare reports every benchmark's delta against the baseline and fails
// (exit 1) when a benchmark matching -gate regresses by more than
// -max-regression. It also prints the parallel speedup for any benchmark
// family measured at several worker counts (.../workers=N variants), since
// that ratio — unlike absolute ns/op — is comparable across machines.
// text re-emits the baseline in `go test -bench` format so external tools
// (e.g. benchstat) can diff it against a fresh run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark snapshot.
type Baseline struct {
	// Note documents how to refresh the file.
	Note string `json:"note"`
	// Benchmarks maps full benchmark names (including /sub and -P suffix)
	// to their aggregated measurements.
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

// Measurement is one benchmark's aggregated result.
type Measurement struct {
	NsPerOp float64 `json:"ns_per_op"`
	// Runs counts how many samples the aggregate came from.
	Runs int `json:"runs"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "snapshot":
		err = snapshot(os.Args[2:])
	case "compare":
		err = compare(os.Args[2:])
	case "text":
		err = text(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchgate snapshot|compare|text [flags]")
	os.Exit(2)
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkProfilerSweep/workers=1-4   1   123456789 ns/op   640 B/op   7 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// gomaxprocsSuffix is the "-N" go test appends to benchmark names when
// GOMAXPROCS > 1. It encodes the measuring machine's core count, so a
// baseline taken on one machine would never match a run on another; strip
// it so names are comparable. (No benchmark in this repo ends in a literal
// "-N".)
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads benchmark output, aggregating repeated samples of each
// name by minimum ns/op.
func parseBench(r io.Reader) (map[string]Measurement, error) {
	out := make(map[string]Measurement)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		cur, ok := out[name]
		if !ok || ns < cur.NsPerOp {
			cur.NsPerOp = ns
		}
		cur.Runs++
		out[name] = cur
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results found in input")
	}
	return out, nil
}

func readBenchFile(path string) (map[string]Measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func sortedNames(m map[string]Measurement) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func snapshot(args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	in := fs.String("in", "", "benchmark output file (go test -bench format)")
	out := fs.String("out", "BENCH_BASELINE.json", "baseline file to write")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("snapshot: -in is required")
	}
	bench, err := readBenchFile(*in)
	if err != nil {
		return err
	}
	b := Baseline{
		Note:       "regenerate: go test -run NONE -bench . -benchtime=1x -count=3 ./internal/... > bench.txt && benchgate snapshot -in bench.txt",
		Benchmarks: bench,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(bench))
	return nil
}

func compare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	in := fs.String("in", "", "benchmark output file (go test -bench format)")
	basePath := fs.String("baseline", "BENCH_BASELINE.json", "committed baseline")
	gate := fs.String("gate", "BenchmarkProfilerSweep", "substring of benchmark names the regression gate applies to (others report advisory)")
	maxReg := fs.Float64("max-regression", 0.30, "fail when a gated benchmark's ns/op exceeds baseline by more than this fraction")
	report := fs.String("report", "", "also write the comparison table to this file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("compare: -in is required")
	}
	cur, err := readBenchFile(*in)
	if err != nil {
		return err
	}
	base, err := readBaseline(*basePath)
	if err != nil {
		return err
	}

	var buf strings.Builder
	fmt.Fprintf(&buf, "%-60s %15s %15s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	var failures []string
	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(&buf, "%-60s %15.0f %15s %9s\n", name, b.NsPerOp, "missing", "-")
			if strings.Contains(name, *gate) {
				failures = append(failures, fmt.Sprintf("%s: present in baseline but not in current run", name))
			}
			continue
		}
		delta := c.NsPerOp/b.NsPerOp - 1
		mark := ""
		if strings.Contains(name, *gate) {
			mark = " [gated]"
			if delta > *maxReg {
				failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.0f%%, limit %+.0f%%)",
					name, b.NsPerOp, c.NsPerOp, delta*100, *maxReg*100))
			}
		}
		fmt.Fprintf(&buf, "%-60s %15.0f %15.0f %+8.0f%%%s\n", name, b.NsPerOp, c.NsPerOp, delta*100, mark)
	}
	for _, name := range sortedNames(cur) {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(&buf, "%-60s %15s %15.0f %9s\n", name, "new", cur[name].NsPerOp, "-")
		}
	}
	for _, line := range speedups(cur) {
		fmt.Fprintln(&buf, line)
	}

	fmt.Print(buf.String())
	if *report != "" {
		if err := os.WriteFile(*report, []byte(buf.String()), 0o644); err != nil {
			return err
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Printf("gate ok: no %q regression above %.0f%%\n", *gate, *maxReg*100)
	return nil
}

// workersVariant matches ".../workers=N" benchmark sub-names.
var workersVariant = regexp.MustCompile(`^(.*)/workers=(\d+)(-\d+)?$`)

// speedups derives machine-independent parallel-scaling ratios: for every
// benchmark family with a workers=1 variant, the ratio of its time to each
// workers=N variant's.
func speedups(cur map[string]Measurement) []string {
	type variant struct {
		workers int
		ns      float64
	}
	families := make(map[string][]variant)
	for name, m := range cur {
		if g := workersVariant.FindStringSubmatch(name); g != nil {
			w, _ := strconv.Atoi(g[2])
			families[g[1]] = append(families[g[1]], variant{w, m.NsPerOp})
		}
	}
	var out []string
	for _, fam := range sortedNames(measKeys(families)) {
		vs := families[fam]
		sort.Slice(vs, func(i, j int) bool { return vs[i].workers < vs[j].workers })
		var serial float64
		for _, v := range vs {
			if v.workers == 1 {
				serial = v.ns
			}
		}
		if serial == 0 {
			continue
		}
		for _, v := range vs {
			if v.workers > 1 {
				out = append(out, fmt.Sprintf("speedup %s: workers=%d is %.2fx vs workers=1",
					fam, v.workers, serial/v.ns))
			}
		}
	}
	return out
}

// measKeys adapts a families map for sortedNames.
func measKeys[V any](m map[string]V) map[string]Measurement {
	out := make(map[string]Measurement, len(m))
	for k := range m {
		out[k] = Measurement{}
	}
	return out
}

func text(args []string) error {
	fs := flag.NewFlagSet("text", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline JSON file to render")
	in := fs.String("in", "", "raw benchmark output to re-render with normalized names (alternative to -baseline)")
	fs.Parse(args)
	var bench map[string]Measurement
	switch {
	case *basePath != "" && *in != "":
		return fmt.Errorf("text: -baseline and -in are mutually exclusive")
	case *basePath != "":
		base, err := readBaseline(*basePath)
		if err != nil {
			return err
		}
		bench = base.Benchmarks
	case *in != "":
		var err error
		bench, err = readBenchFile(*in)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("text: one of -baseline or -in is required")
	}
	for _, name := range sortedNames(bench) {
		fmt.Printf("%s \t%d\t%.0f ns/op\n", name, 1, bench[name].NsPerOp)
	}
	return nil
}
