package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: datamime/internal/profile
cpu: Intel(R) Xeon(R)
BenchmarkProfilerSweep/workers=1-4         	       1	 90000000 ns/op
BenchmarkProfilerSweep/workers=1-4         	       1	 80000000 ns/op
BenchmarkProfilerSweep/workers=4-4         	       1	 25000000 ns/op
BenchmarkProfilerSweep/workers=4-4         	       1	 20000000 ns/op
BenchmarkSimRun-4                          	       2	  1500000 ns/op	  640 B/op	       7 allocs/op
PASS
ok  	datamime/internal/profile	1.234s
`

func TestParseBenchAggregatesMin(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// The -4 GOMAXPROCS suffix is stripped so baselines transfer across
	// machines with different core counts.
	w1 := got["BenchmarkProfilerSweep/workers=1"]
	if w1.NsPerOp != 80000000 || w1.Runs != 2 {
		t.Errorf("workers=1: got %+v, want min 8e7 over 2 runs", w1)
	}
	sim := got["BenchmarkSimRun"]
	if sim.NsPerOp != 1500000 || sim.Runs != 1 {
		t.Errorf("SimRun: got %+v", sim)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("expected error for input with no benchmark lines")
	}
}

func TestSpeedups(t *testing.T) {
	cur := map[string]Measurement{
		"BenchmarkProfilerSweep/workers=1": {NsPerOp: 80000000},
		"BenchmarkProfilerSweep/workers=4": {NsPerOp: 20000000},
		"BenchmarkSimRun":                  {NsPerOp: 1500000},
	}
	lines := speedups(cur)
	if len(lines) != 1 {
		t.Fatalf("got %d speedup lines, want 1: %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], "workers=4 is 4.00x") {
		t.Errorf("unexpected speedup line: %q", lines[0])
	}
}
