package main

// The corpus subcommands query the coordinator's on-disk run corpus
// longitudinally: list indexed runs, compare two of them artifact-to-artifact
// (the diff gate, but addressed by run ID instead of file path), and render
// per-scenario trends with the HTML scoreboard.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"datamime/internal/corpus"
	"datamime/internal/inspect"
)

func runCorpus(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("corpus: subcommand required: list, compare, or trends")
	}
	switch args[0] {
	case "list":
		return runCorpusList(args[1:])
	case "compare":
		return runCorpusCompare(args[1:])
	case "trends":
		return runCorpusTrends(args[1:])
	default:
		return fmt.Errorf("corpus: unknown subcommand %q (want list, compare, or trends)", args[0])
	}
}

func runCorpusList(args []string) error {
	fs := flag.NewFlagSet("corpus list", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory (required)")
	scenario := fs.String("scenario", "", "only runs of this scenario hash")
	target := fs.String("target", "", "only runs against this target workload")
	limit := fs.Int("limit", 0, "keep only the most recent N matching runs")
	asJSON := fs.Bool("json", false, "emit the records as JSON instead of text")
	_ = fs.Parse(args)
	c, err := openCorpus(*dir)
	if err != nil {
		return err
	}
	defer c.Close()
	recs := c.Select(corpus.Filter{Scenario: *scenario, Target: *target, Limit: *limit})
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(recs)
	}
	fmt.Printf("corpus %s: %d runs", c.Dir(), len(recs))
	if n := c.Len(); n != len(recs) {
		fmt.Printf(" (of %d indexed)", n)
	}
	if m := c.Malformed(); m > 0 {
		fmt.Printf(", %d malformed index lines dropped", m)
	}
	fmt.Println()
	for _, rec := range recs {
		fmt.Printf("  %-16s scenario %s  seed %-6d best %-12g evals %-4d wall %6.1fs  %-10s %s\n",
			rec.ID, rec.Scenario, rec.Seed, rec.BestError, rec.Evals,
			rec.WallSeconds, rec.Verdict, rec.FinishedAt.UTC().Format(time.RFC3339))
	}
	return nil
}

func runCorpusCompare(args []string) error {
	fs := flag.NewFlagSet("corpus compare", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory (required)")
	aID := fs.String("a", "", "baseline run ID (required)")
	bID := fs.String("b", "", "candidate run ID (required)")
	tol := fs.Float64("tolerance", 0, "absolute numeric tolerance (default 1e-9)")
	exact := fs.Bool("exact", false, "treat ANY difference as a failure (determinism gate)")
	asJSON := fs.Bool("json", false, "emit the machine-readable RunDiff JSON instead of text")
	_ = fs.Parse(args)
	if *aID == "" || *bID == "" {
		return fmt.Errorf("corpus compare: -a and -b run IDs are required")
	}
	c, err := openCorpus(*dir)
	if err != nil {
		return err
	}
	defer c.Close()
	a, err := corpusRun(c, *aID)
	if err != nil {
		return err
	}
	b, err := corpusRun(c, *bID)
	if err != nil {
		return err
	}
	d := inspect.DiffRuns(a, b, inspect.DiffOptions{Tolerance: *tol})
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			return err
		}
	} else {
		printDiff(d, *aID, *bID)
	}
	if d.Regressed() || (*exact && !d.Identical()) {
		return errRegressed
	}
	return nil
}

func runCorpusTrends(args []string) error {
	fs := flag.NewFlagSet("corpus trends", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory (required)")
	scenario := fs.String("scenario", "", "only this scenario hash (default: every scenario)")
	htmlOut := fs.String("html", "", "write the self-contained HTML scoreboard to this file")
	title := fs.String("title", "", "scoreboard title")
	asJSON := fs.Bool("json", false, "emit the trends as JSON instead of text")
	_ = fs.Parse(args)
	c, err := openCorpus(*dir)
	if err != nil {
		return err
	}
	defer c.Close()
	scenarios := c.Scenarios()
	if *scenario != "" {
		scenarios = []string{*scenario}
	}
	trends := make([]corpus.Trend, 0, len(scenarios))
	for _, sc := range scenarios {
		tr := c.Trend(sc)
		if tr.Runs == 0 {
			return fmt.Errorf("corpus trends: no runs for scenario %q", sc)
		}
		trends = append(trends, tr)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(trends); err != nil {
			return err
		}
	} else {
		for _, tr := range trends {
			printTrend(tr)
		}
	}
	if *htmlOut != "" {
		recs := c.Select(corpus.Filter{Scenario: *scenario})
		rows := inspect.ScoreboardRuns(c, recs)
		var buf bytes.Buffer
		if err := inspect.RenderScoreboard(&buf, *title, rows); err != nil {
			return err
		}
		if err := os.WriteFile(*htmlOut, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *htmlOut)
	}
	return nil
}

func printTrend(tr corpus.Trend) {
	fmt.Printf("scenario %s (target %s, generator %s): %d runs\n",
		tr.Scenario, tr.Target, tr.Generator, tr.Runs)
	fmt.Printf("  best error: best %g, median %g; median wall %.1fs; regressions %d\n",
		tr.BestError, tr.MedianBestError, tr.MedianWallSeconds, tr.Regressions)
	for _, p := range tr.Points {
		fmt.Printf("  %-16s best %-12g wall %6.1fs evals %-4d seed %-6d %-10s %s\n",
			p.ID, p.BestError, p.WallSeconds, p.Evals, p.Seed, p.Verdict,
			p.FinishedAt.UTC().Format(time.RFC3339))
	}
}

func openCorpus(dir string) (*corpus.Corpus, error) {
	if dir == "" {
		return nil, fmt.Errorf("corpus: -dir is required")
	}
	if _, err := os.Stat(dir); err != nil {
		// Open would create the directory; for a read-oriented CLI a missing
		// corpus is an input error, not an empty result.
		return nil, fmt.Errorf("corpus: %w", err)
	}
	return corpus.Open(dir)
}

// printCorpusContext appends the "vs. corpus median" section to the timeline
// report: where this run's convergence and utilization sit relative to the
// indexed history of the same scenario.
func printCorpusContext(tl *inspect.Timeline, run *inspect.Run, dir, scenario string) error {
	c, err := openCorpus(dir)
	if err != nil {
		return err
	}
	defer c.Close()
	if scenario == "" {
		// Default to the busiest scenario: without the job spec the artifact
		// alone cannot re-derive its scenario hash.
		for _, sc := range c.Scenarios() {
			if scenario == "" || len(c.Select(corpus.Filter{Scenario: sc})) > len(c.Select(corpus.Filter{Scenario: scenario})) {
				scenario = sc
			}
		}
	}
	recs := c.Select(corpus.Filter{Scenario: scenario})
	if len(recs) == 0 {
		fmt.Printf("\nvs. corpus: no indexed runs in %s for scenario %q\n", dir, scenario)
		return nil
	}
	errs := make([]float64, len(recs))
	walls := make([]float64, len(recs))
	busys := make([]float64, len(recs))
	for i, rec := range recs {
		errs[i] = rec.BestError
		walls[i] = rec.WallSeconds
		busys[i] = rec.BusySeconds
	}
	fmt.Printf("\nvs. corpus median (scenario %s, %d runs):\n", scenario, len(recs))
	if best, ok := run.Best(); ok {
		fmt.Printf("  best error   %-22s median %-22s (%+g)\n",
			fmt.Sprintf("%g", best.BestError),
			fmt.Sprintf("%g", corpus.Median(errs)),
			best.BestError-corpus.Median(errs))
	}
	// Remote-only runs have no local worker lanes, so fall back to the fleet
	// extent for the wall comparison.
	wallNS := tl.WallNS
	if wallNS < tl.FleetWallNS {
		wallNS = tl.FleetWallNS
	}
	wall := float64(wallNS) / 1e9
	busy := float64(tl.BusyNS+tl.FleetBusyNS) / 1e9
	fmt.Printf("  span extent  %-22s median %-22s (%+.1fs)\n",
		fmt.Sprintf("%.2fs", wall),
		fmt.Sprintf("%.1fs", corpus.Median(walls)),
		wall-corpus.Median(walls))
	fmt.Printf("  busy time    %-22s median %-22s (%+.1fs)\n",
		fmt.Sprintf("%.2fs", busy),
		fmt.Sprintf("%.1fs", corpus.Median(busys)),
		busy-corpus.Median(busys))
	return nil
}

// corpusRun loads the stored artifact for a run ID back into a Run.
func corpusRun(c *corpus.Corpus, id string) (*inspect.Run, error) {
	rec, ok := c.Find(id)
	if !ok {
		return nil, fmt.Errorf("corpus: run %q not in the index", id)
	}
	data, err := c.Artifact(rec)
	if err != nil {
		return nil, err
	}
	return inspect.LoadRun(bytes.NewReader(data))
}
