// Command datamime-inspect is the introspection CLI over Datamime run
// artifacts: it renders reports, diffs runs for CI gating, and follows live
// job event streams.
//
// Usage:
//
//	datamime-inspect report -artifact run.jsonl [-profiles profiles.json] [-html report.html] [-json] [-diagnostics diag.json]
//	datamime-inspect diff -a baseline.jsonl -b candidate.jsonl [-exact] [-json]
//	datamime-inspect timeline -artifact run.jsonl [-trace trace.json] [-min-efficiency 1.3] [-corpus dir]
//	datamime-inspect corpus list|compare|trends -dir corpus [...]
//	datamime-inspect tail -server http://localhost:8080 -job job-1
//
// Exit codes: 0 success; 1 the diff crossed a regression threshold (any
// difference under -exact) or the timeline missed -min-efficiency; 2 usage
// or input errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"datamime/internal/buildinfo"
	"datamime/internal/inspect"
	"datamime/internal/telemetry"
)

func main() {
	flag.Usage = usage
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Println("datamime-inspect", buildinfo.Read())
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "report":
		err = runReport(args[1:])
	case "diff":
		err = runDiff(args[1:])
	case "timeline":
		err = runTimeline(args[1:])
	case "corpus":
		err = runCorpus(args[1:])
	case "tail":
		err = runTail(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "datamime-inspect: unknown command %q\n\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if err == errRegressed {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "datamime-inspect:", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `datamime-inspect — run-artifact introspection

commands:
  report    render a run artifact as a terminal summary and optional HTML
  diff      compare two run artifacts; exit 1 on regression (CI gate)
  timeline  profiler utilization report from a run's timed spans; validates
            a -trace file and gates on -min-efficiency (CI gate)
  corpus    query the coordinator's run corpus: list indexed runs, compare
            two runs by ID, or render per-scenario trends and the HTML
            scoreboard
  tail      follow a live datamimed job's SSE event stream

run "datamime-inspect <command> -h" for command flags.
`)
}

// errRegressed maps a diff regression onto exit code 1 (distinct from the
// exit-2 input errors).
var errRegressed = fmt.Errorf("regressed")

func runReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	artifact := fs.String("artifact", "", "run artifact (JSONL) to report on (required)")
	profiles := fs.String("profiles", "", "profiles doc (JSON pair of target/best profiles) enabling eCDF overlays and quantile-band attribution")
	htmlOut := fs.String("html", "", "also write the self-contained HTML report to this file")
	title := fs.String("title", "", "report title (default: the artifact's job ID)")
	quiet := fs.Bool("quiet", false, "suppress the terminal summary (useful with -html)")
	asJSON := fs.Bool("json", false, "emit the machine-readable run summary JSON instead of text")
	diagOut := fs.String("diagnostics", "", "also write the search-health diagnostics summary JSON to this file; unlike the full -json summary it carries no wall-clock figures, so identically-seeded runs write identical bytes (CI determinism gate)")
	_ = fs.Parse(args)
	if *artifact == "" {
		return fmt.Errorf("report: -artifact is required")
	}
	run, err := inspect.LoadRunFile(*artifact)
	if err != nil {
		return err
	}
	var doc *inspect.ProfilesDoc
	if *profiles != "" {
		data, err := os.ReadFile(*profiles)
		if err != nil {
			return err
		}
		doc, err = inspect.DecodeProfilesDoc(data)
		if err != nil {
			return err
		}
	}
	report := inspect.NewReport(run, doc, inspect.ReportOptions{Title: *title})
	if *asJSON {
		if err := inspect.NewRunSummary(report).WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else if !*quiet {
		if err := report.RenderText(os.Stdout); err != nil {
			return err
		}
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		if err := report.RenderHTML(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *htmlOut)
	}
	if *diagOut != "" {
		f, err := os.Create(*diagOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		// A run with no diagnostics writes the literal "null" — still
		// deterministic, still diffable.
		if err := enc.Encode(inspect.NewDiagnosticsSummary(run)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *diagOut)
	}
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	aPath := fs.String("a", "", "baseline run artifact (required)")
	bPath := fs.String("b", "", "candidate run artifact (required)")
	tol := fs.Float64("tolerance", 0, "absolute numeric tolerance (default 1e-9)")
	errTol := fs.Float64("error-tolerance", 0, "allowed best-error drift before it counts as a regression (default: -tolerance)")
	exact := fs.Bool("exact", false, "treat ANY difference as a failure (determinism gate), not just regressions")
	asJSON := fs.Bool("json", false, "emit the machine-readable RunDiff JSON instead of text")
	_ = fs.Parse(args)
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("diff: -a and -b are required")
	}
	a, err := inspect.LoadRunFile(*aPath)
	if err != nil {
		return err
	}
	b, err := inspect.LoadRunFile(*bPath)
	if err != nil {
		return err
	}
	d := inspect.DiffRuns(a, b, inspect.DiffOptions{Tolerance: *tol, ErrorTolerance: *errTol})
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			return err
		}
	} else {
		printDiff(d, *aPath, *bPath)
	}
	if d.Regressed() || (*exact && !d.Identical()) {
		return errRegressed
	}
	return nil
}

func printDiff(d *inspect.RunDiff, aPath, bPath string) {
	fmt.Printf("diff %s -> %s: %s\n", aPath, bPath, strings.ToUpper(d.Verdict))
	fmt.Printf("  best error %g -> %g (%+g), iterations %d -> %d\n",
		d.BestError.A, d.BestError.B, d.BestError.Delta, d.Iterations[0], d.Iterations[1])
	if len(d.Differences) == 0 {
		fmt.Println("  no differences beyond tolerance")
		return
	}
	for _, msg := range d.Differences {
		fmt.Printf("  - %s\n", msg)
	}
}

func runTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	artifact := fs.String("artifact", "", "run artifact (JSONL) with timed spans (required)")
	trace := fs.String("trace", "", "also validate this Chrome/Perfetto trace-event JSON file")
	minSpeedup := fs.Float64("min-efficiency", 0, "fail (exit 1) when the profiler pool's speedup over serial falls below this factor")
	corpusDir := fs.String("corpus", "", "run corpus directory: add 'vs. corpus median' context after the report")
	scenario := fs.String("scenario", "", "scenario hash for the -corpus context (default: the scenario with the most runs)")
	_ = fs.Parse(args)
	if *artifact == "" {
		return fmt.Errorf("timeline: -artifact is required")
	}
	run, err := inspect.LoadRunFile(*artifact)
	if err != nil {
		return err
	}
	tl := inspect.NewTimeline(run)
	if err := tl.RenderText(os.Stdout); err != nil {
		return err
	}
	if *corpusDir != "" {
		if err := printCorpusContext(tl, run, *corpusDir, *scenario); err != nil {
			return err
		}
	}
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		st, err := telemetry.ValidateTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("timeline: %s: %w", *trace, err)
		}
		fmt.Printf("\ntrace %s ok: %d events (%d spans, %d instants) on %d tracks (%d workers) across %d processes (%d fleet)\n",
			*trace, st.Events, st.Spans, st.Instants, st.Tracks, st.WorkerTracks, st.Processes, st.FleetProcesses)
		if st.DroppedUnstamped > 0 {
			fmt.Printf("trace %s: %d unstamped events were dropped at export\n", *trace, st.DroppedUnstamped)
		}
	}
	if *minSpeedup > 0 {
		if len(tl.Workers) == 0 {
			fmt.Fprintf(os.Stderr, "timeline: no timed profile.sim spans to gate on\n")
			return errRegressed
		}
		if sp := tl.Speedup(); sp < *minSpeedup {
			fmt.Fprintf(os.Stderr, "timeline: speedup %.2fx below the %.2fx gate\n", sp, *minSpeedup)
			return errRegressed
		}
		fmt.Printf("efficiency gate passed: speedup %.2fx >= %.2fx\n", tl.Speedup(), *minSpeedup)
	}
	return nil
}

func runTail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "datamimed base URL")
	job := fs.String("job", "", "job ID to follow (required unless -url)")
	rawURL := fs.String("url", "", "full SSE endpoint URL (overrides -server/-job)")
	_ = fs.Parse(args)
	url := *rawURL
	if url == "" {
		if *job == "" {
			return fmt.Errorf("tail: -job (or -url) is required")
		}
		url = strings.TrimRight(*server, "/") + "/jobs/" + *job + "/events"
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	st, err := inspect.Follow(ctx, http.DefaultClient, url, os.Stdout)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "followed %d evals, %d spans", st.Evals, st.Spans)
	if st.FinalState != "" {
		fmt.Fprintf(os.Stderr, "; job %s", st.FinalState)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}
