// Command experiments regenerates the paper's evaluation tables and
// figures. Each experiment prints the numeric series behind the
// corresponding figure (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	experiments -list
//	experiments -run fig1,fig6 -quick
//	experiments -run all              # full evaluation (hours)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"datamime"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiment ids and exit")
		run    = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		quick  = flag.Bool("quick", false, "reduced budgets (~minutes instead of hours)")
		seed   = flag.Uint64("seed", 1, "seed for all stochastic streams")
		quiet  = flag.Bool("quiet", false, "suppress progress logging")
		outdir = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
	)
	flag.Parse()

	if *list {
		for _, id := range datamime.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "experiments: nothing to do; use -run <ids> or -list")
		os.Exit(2)
	}

	st := datamime.FullSettings()
	if *quick {
		st = datamime.QuickSettings()
	}
	st.Seed = *seed
	if !*quiet {
		st.Log = os.Stderr
	}
	r := datamime.NewRunner(st)

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = datamime.ExperimentIDs()
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		out := io.Writer(os.Stdout)
		var f *os.File
		if *outdir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outdir, id+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			out = io.MultiWriter(os.Stdout, f)
		}
		err := datamime.RunExperiment(r, id, out)
		if f != nil {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", id, time.Since(start).Seconds())
		}
	}
}
