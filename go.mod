module datamime

go 1.22
