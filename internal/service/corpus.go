package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"datamime/internal/buildinfo"
	"datamime/internal/corpus"
	"datamime/internal/inspect"
	"datamime/internal/telemetry"
)

// scenarioSpec is the canonical semantic subset of a JobSpec that defines a
// corpus scenario: two jobs with equal scenario hashes are required (by the
// determinism invariants, DESIGN §3c/§3e) to produce bit-identical results,
// so any divergence between them is a real behavior change. Knobs that only
// move where or how fast work executes — Backend, Profiling.ProfileWorkers —
// are deliberately excluded, mirroring what core.EvalKey excludes. The seed
// is included: different seeds legitimately converge differently.
type scenarioSpec struct {
	Workload      string          `json:"workload,omitempty"`
	Generator     string          `json:"generator,omitempty"`
	Machine       string          `json:"machine"`
	Iterations    int             `json:"iterations"`
	Parallel      int             `json:"parallel"`
	Seed          uint64          `json:"seed"`
	Optimizer     string          `json:"optimizer"`
	TargetProfile json.RawMessage `json:"target_profile,omitempty"`
	Metric        string          `json:"metric,omitempty"`
	MetricValue   float64         `json:"metric_value,omitempty"`
	OnEvalError   string          `json:"on_eval_error"`

	// Profiler budgets change the simulated measurements, so they are
	// semantic. ProfileWorkers is not mirrored here on purpose.
	WindowCycles      float64 `json:"window_cycles,omitempty"`
	Windows           int     `json:"windows,omitempty"`
	WarmupWindows     int     `json:"warmup_windows,omitempty"`
	CurveWindows      int     `json:"curve_windows,omitempty"`
	CurvePoints       int     `json:"curve_points,omitempty"`
	MaxRequestsPerRun int     `json:"max_requests_per_run,omitempty"`
	SkipCurves        bool    `json:"skip_curves,omitempty"`
}

// scenarioHash fingerprints the semantic fields of spec, normalizing
// defaults so "omitted" and "explicitly default" hash equally.
func scenarioHash(spec JobSpec) string {
	ss := scenarioSpec{
		Workload:    spec.Workload,
		Generator:   spec.Generator,
		Machine:     spec.Machine,
		Iterations:  spec.Iterations,
		Parallel:    spec.Parallel,
		Seed:        spec.Seed,
		Optimizer:   spec.Optimizer,
		Metric:      spec.Metric,
		MetricValue: spec.MetricValue,
		OnEvalError: spec.OnEvalError,
	}
	if ss.Machine == "" {
		ss.Machine = "broadwell"
	}
	if ss.Parallel <= 0 {
		ss.Parallel = 1
	}
	if ss.Optimizer == "" {
		ss.Optimizer = "bayesopt"
	}
	if ss.OnEvalError == "" {
		ss.OnEvalError = "fail"
	}
	if len(spec.TargetProfile) > 0 {
		// Compact the inline profile so formatting differences in the
		// submitted JSON don't split one scenario into many.
		var buf bytes.Buffer
		if err := json.Compact(&buf, spec.TargetProfile); err == nil {
			ss.TargetProfile = json.RawMessage(buf.Bytes())
		} else {
			ss.TargetProfile = spec.TargetProfile
		}
	}
	if p := spec.Profiling; p != nil {
		ss.WindowCycles = p.WindowCycles
		ss.Windows = p.Windows
		ss.WarmupWindows = p.WarmupWindows
		ss.CurveWindows = p.CurveWindows
		ss.CurvePoints = p.CurvePoints
		ss.MaxRequestsPerRun = p.MaxRequestsPerRun
		ss.SkipCurves = p.SkipCurves
	}
	h, err := corpus.HashJSON(ss)
	if err != nil {
		// Unreachable for a validated spec, but never let hashing take a
		// job down; an empty scenario just opts the run out of baselining.
		return ""
	}
	return h
}

// targetOf renders the scenario's human-readable target description.
func targetOf(spec JobSpec) string {
	switch {
	case spec.Workload != "":
		return spec.Workload
	case spec.Metric != "":
		return fmt.Sprintf("%s=%g", spec.Metric, spec.MetricValue)
	default:
		return "inline-profile"
	}
}

// indexRun appends a just-succeeded job to the run corpus and runs the
// regression watchdog against the scenario baseline. Called on the job's
// worker goroutine before finish(), so a corpus.regression event appended
// here still reaches SSE subscribers ahead of the terminal frame. Indexing
// failures are logged, never fatal: the job's own result is already safe.
func (s *Server) indexRun(job *Job) {
	if s.corpus == nil {
		return
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, artifactEvents(job)); err != nil {
		s.logf("job %s corpus: artifact encode failed: %v", job.ID(), err)
		return
	}
	run, err := inspect.LoadRun(bytes.NewReader(buf.Bytes()))
	if err != nil {
		s.logf("job %s corpus: artifact parse failed: %v", job.ID(), err)
		return
	}

	job.mu.Lock()
	spec := job.spec
	started := job.started
	backendName := job.backend
	result := job.result
	// Diagnostics ride on trace records whether or not the job ran with
	// telemetry; fall back to them when the artifact carries no
	// search.diagnostics events so model health still reaches the index.
	if len(run.Diagnostics) == 0 {
		for _, trec := range job.trace {
			if trec.Diagnostics != nil {
				run.Diagnostics = append(run.Diagnostics,
					inspect.NewDiagRecord(trec.Iteration, *trec.Diagnostics))
			}
		}
	}
	job.mu.Unlock()

	rec := corpus.Record{
		ID:         job.ID(),
		Scenario:   scenarioHash(spec),
		Target:     targetOf(spec),
		Generator:  spec.Generator,
		Seed:       spec.Seed,
		Backend:    backendName,
		Build:      buildinfo.Read().String(),
		FinishedAt: time.Now().UTC(),
	}
	if rec.Generator == "" {
		rec.Generator = s.workloadGenerator(spec.Workload)
	}
	rec.Components = run.FinalComponents()
	if result != nil {
		rec.BestError = result.BestError
		if len(rec.Components) == 0 {
			rec.Components = result.Components
		}
	}
	if best, ok := run.Best(); ok {
		rec.BestIter = best.Iter
	}
	counts := run.Counts()
	rec.Iterations = spec.Iterations
	rec.Evals = counts.Evals
	rec.CacheHits = counts.CacheHits
	rec.Skipped = counts.Skipped
	rec.TrajectoryHash = corpus.TrajectoryHash(run.BestTrace())
	if !started.IsZero() {
		rec.WallSeconds = time.Since(started).Seconds()
	}
	tl := inspect.NewTimeline(run)
	rec.BusySeconds = float64(tl.BusyNS+tl.FleetBusyNS) / 1e9
	rec.FleetProcesses = len(tl.Fleet)
	rec.RemoteShare = tl.RemoteShare()
	if ds := inspect.NewDiagnosticsSummary(run); ds != nil {
		rec.ModelHealth = &corpus.ModelHealth{
			Snapshots:        ds.Snapshots,
			MeanCoverage1:    ds.MeanCoverage1,
			MeanCoverage2:    ds.MeanCoverage2,
			FinalLogMarginal: ds.FinalLogMarginal,
			MaxJitterLevel:   ds.MaxJitterLevel,
			Healthy:          ds.Healthy,
		}
	}

	var baseline *corpus.Record
	if bl, ok := s.corpus.Baseline(rec.Scenario, rec.ID); ok && rec.Scenario != "" {
		baseline = &bl
	}
	as := corpus.Assess(baseline, rec, s.cfg.CorpusTolerance)
	rec.Verdict = as.Verdict
	rec.BaselineID = as.BaselineID
	rec.BaselineDelta = as.Delta

	if _, err := s.corpus.Add(rec, buf.Bytes()); err != nil {
		s.logf("job %s corpus: index append failed: %v", job.ID(), err)
		return
	}
	s.metrics.corpusIndexed.Inc()
	s.metrics.corpusVerdicts.With(as.Verdict).Inc()
	if baseline != nil {
		s.metrics.corpusBaselineDelta.Set(as.Delta)
	}
	if as.Regressed() {
		s.metrics.corpusRegressions.Inc()
		msg := fmt.Sprintf("corpus regression vs baseline %s: best error %g (%+g)",
			as.BaselineID, rec.BestError, as.Delta)
		job.appendEvent(telemetry.Event{
			Type:   telemetry.TypeCorpusRegression,
			Job:    job.ID(),
			TimeNS: time.Now().UnixNano(),
			Msg:    msg,
			Attrs: map[string]float64{
				telemetry.AttrBestError: rec.BestError,
				"baseline_delta":        as.Delta,
			},
		})
		s.logf("job %s %s", job.ID(), msg)
	} else {
		s.logf("job %s indexed into corpus (scenario %s, verdict %s)",
			job.ID(), rec.Scenario, as.Verdict)
	}
}

// Corpus exposes the run corpus (nil when persistence is disabled).
func (s *Server) Corpus() *corpus.Corpus { return s.corpus }

var errCorpusDisabled = fmt.Errorf(
	"service: run corpus is disabled (start datamimed with -corpus-dir)")

// corpusListResponse is the GET /v1/corpus body.
type corpusListResponse struct {
	Runs []corpus.Record `json:"runs"`
	// Total counts records in the whole index, before filtering.
	Total int `json:"total"`
	// Malformed counts index lines dropped at open (truncated tail etc).
	Malformed int `json:"malformed,omitempty"`
}

// handleCorpus serves GET /v1/corpus with optional scenario=, target=,
// since=, until= (RFC 3339) and limit= filters.
func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	if s.corpus == nil {
		writeError(w, http.StatusNotFound, errCorpusDisabled)
		return
	}
	q := r.URL.Query()
	f := corpus.Filter{
		Scenario: q.Get("scenario"),
		Target:   q.Get("target"),
	}
	for name, dst := range map[string]*time.Time{"since": &f.Since, "until": &f.Until} {
		if v := q.Get(name); v != "" {
			t, err := time.Parse(time.RFC3339, v)
			if err != nil {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("service: bad %s %q: want RFC 3339", name, v))
				return
			}
			*dst = t
		}
	}
	if v := q.Get("limit"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &f.Limit); err != nil || f.Limit < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad limit %q", v))
			return
		}
	}
	runs := s.corpus.Select(f)
	if runs == nil {
		runs = []corpus.Record{}
	}
	writeJSON(w, http.StatusOK, corpusListResponse{
		Runs:      runs,
		Total:     s.corpus.Len(),
		Malformed: s.corpus.Malformed(),
	})
}

// handleCorpusTrends serves GET /v1/corpus/{scenario}/trends: the scenario's
// best-error and duration series across runs, with medians.
func (s *Server) handleCorpusTrends(w http.ResponseWriter, r *http.Request) {
	if s.corpus == nil {
		writeError(w, http.StatusNotFound, errCorpusDisabled)
		return
	}
	scenario := r.PathValue("scenario")
	trend := s.corpus.Trend(scenario)
	if trend.Runs == 0 {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("service: no corpus runs for scenario %q", scenario))
		return
	}
	writeJSON(w, http.StatusOK, trend)
}

// CorpusScenarioSummary is one scenario's rollup in the fleet view: the
// latest run beside the corpus median, so per-run numbers are read in
// context.
type CorpusScenarioSummary struct {
	Scenario          string  `json:"scenario"`
	Target            string  `json:"target,omitempty"`
	Runs              int     `json:"runs"`
	MedianBestError   float64 `json:"median_best_error"`
	MedianWallSeconds float64 `json:"median_wall_seconds"`
	LastBestError     float64 `json:"last_best_error"`
	LastVerdict       string  `json:"last_verdict,omitempty"`
	Regressions       int     `json:"regressions"`
	// MedianCoverage1 and ModelUnhealthy mirror the trend's calibration-drift
	// figures: median 1σ LOO coverage across runs with model health, and how
	// many runs the search-health verdict flagged.
	MedianCoverage1 float64 `json:"median_coverage1,omitempty"`
	ModelUnhealthy  int     `json:"model_unhealthy,omitempty"`
}

// CorpusSummary is the corpus section of the GET /v1/fleet response.
type CorpusSummary struct {
	Runs int `json:"runs"`
	// Indexed/Regressions count this process's watchdog activity (the
	// datamimed_corpus_* counters); Runs counts the whole on-disk index.
	Indexed     int                     `json:"indexed"`
	Regressions int                     `json:"regressions"`
	Scenarios   []CorpusScenarioSummary `json:"scenarios,omitempty"`
}

// corpusSummary builds the fleet view's corpus section (nil when disabled).
func (s *Server) corpusSummary() *CorpusSummary {
	if s.corpus == nil {
		return nil
	}
	out := &CorpusSummary{
		Runs:        s.corpus.Len(),
		Indexed:     int(s.metrics.corpusIndexed.Value()),
		Regressions: int(s.metrics.corpusRegressions.Value()),
	}
	for _, scenario := range s.corpus.Scenarios() {
		tr := s.corpus.Trend(scenario)
		if tr.Runs == 0 {
			continue
		}
		last := tr.Points[len(tr.Points)-1]
		out.Scenarios = append(out.Scenarios, CorpusScenarioSummary{
			Scenario:          scenario,
			Target:            tr.Target,
			Runs:              tr.Runs,
			MedianBestError:   tr.MedianBestError,
			MedianWallSeconds: tr.MedianWallSeconds,
			LastBestError:     last.BestError,
			LastVerdict:       last.Verdict,
			Regressions:       tr.Regressions,
			MedianCoverage1:   tr.MedianCoverage1,
			ModelUnhealthy:    tr.ModelUnhealthy,
		})
	}
	return out
}
