package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"datamime/internal/core"
	"datamime/internal/harness"
	"datamime/internal/opt"
	"datamime/internal/profile"
	"datamime/internal/sim"
	"datamime/internal/telemetry"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing the search.
	JobRunning JobState = "running"
	// JobSucceeded: the search finished; the result is available.
	JobSucceeded JobState = "succeeded"
	// JobFailed: the search aborted with an error.
	JobFailed JobState = "failed"
	// JobCanceled: the client canceled the job.
	JobCanceled JobState = "canceled"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	return s == JobSucceeded || s == JobFailed || s == JobCanceled
}

// ProfilingSpec overrides profiler budget knobs per job; zero fields keep
// the machine defaults (see profile.New).
type ProfilingSpec struct {
	WindowCycles      float64 `json:"window_cycles,omitempty"`
	Windows           int     `json:"windows,omitempty"`
	WarmupWindows     int     `json:"warmup_windows,omitempty"`
	CurveWindows      int     `json:"curve_windows,omitempty"`
	CurvePoints       int     `json:"curve_points,omitempty"`
	MaxRequestsPerRun int     `json:"max_requests_per_run,omitempty"`
	SkipCurves        bool    `json:"skip_curves,omitempty"`
	// ProfileWorkers bounds concurrent simulator runs inside each profile
	// (the way-curve sweep). 0 uses the server's -profile-workers default;
	// profiles are bit-identical at any setting, so this knob never changes
	// a job's results — only its wall-clock time. It is excluded from
	// evaluation cache keys (see core.EvalKey).
	ProfileWorkers int `json:"profile_workers,omitempty"`
}

// JobSpec describes one search job, as submitted over POST /jobs. Exactly
// one objective source must be given: a registered workload (its hidden
// target is profiled first and the workload's generator is the default), an
// inline target profile (the paper's share-profiles-not-data workflow), or
// a single-metric target.
type JobSpec struct {
	// Workload names a registered evaluation workload ("mem-fb", ...).
	Workload string `json:"workload,omitempty"`
	// Generator names the dataset generator to search; defaults to the
	// workload's own generator when Workload is set.
	Generator string `json:"generator,omitempty"`
	// Machine selects the simulated platform (default "broadwell").
	Machine string `json:"machine,omitempty"`
	// Iterations is the evaluation budget. Required.
	Iterations int `json:"iterations"`
	// Parallel is the per-batch evaluation concurrency (default 1).
	Parallel int `json:"parallel,omitempty"`
	// Seed derives every stochastic stream.
	Seed uint64 `json:"seed,omitempty"`
	// Optimizer selects "bayesopt" (default), "random", or "anneal".
	Optimizer string `json:"optimizer,omitempty"`
	// TargetProfile is an inline profile JSON (as produced by
	// cmd/profiler) to match.
	TargetProfile json.RawMessage `json:"target_profile,omitempty"`
	// Metric and MetricValue define a single-metric objective instead of
	// a full profile match.
	Metric      string  `json:"metric,omitempty"`
	MetricValue float64 `json:"metric_value,omitempty"`
	// OnEvalError is "fail" (default) or "retry-skip" (retry a failed
	// evaluation once with a perturbed seed, then skip and record).
	OnEvalError string `json:"on_eval_error,omitempty"`
	// Backend selects where candidate evaluations run: "auto" (default —
	// use registered datamime-worker processes when any exist), "local"
	// (always in-process), or "remote" (always through the dispatcher,
	// which still falls back in-process if the whole fleet fails). All
	// choices produce bit-identical results for the same seed; the knob
	// only moves where the simulations execute.
	Backend string `json:"backend,omitempty"`
	// Profiling overrides profiler budgets.
	Profiling *ProfilingSpec `json:"profiling,omitempty"`
}

// Validate reports spec errors a server cannot accept.
func (s *JobSpec) Validate() error {
	if s.Iterations <= 0 {
		return fmt.Errorf("service: iterations must be positive, got %d", s.Iterations)
	}
	sources := 0
	if s.Workload != "" {
		sources++
	}
	if len(s.TargetProfile) > 0 {
		sources++
	}
	if s.Metric != "" {
		sources++
	}
	if sources != 1 {
		return fmt.Errorf("service: exactly one of workload, target_profile, or metric must be set")
	}
	if s.Workload == "" && s.Generator == "" {
		return fmt.Errorf("service: generator is required without a workload")
	}
	switch s.OnEvalError {
	case "", "fail", "retry-skip":
	default:
		return fmt.Errorf("service: unknown on_eval_error %q (want fail or retry-skip)", s.OnEvalError)
	}
	switch s.Optimizer {
	case "", "bayesopt", "random", "anneal":
	default:
		return fmt.Errorf("service: unknown optimizer %q (want bayesopt, random, or anneal)", s.Optimizer)
	}
	switch s.Backend {
	case "", "auto", "local", "remote":
	default:
		return fmt.Errorf("service: unknown backend %q (want auto, local, or remote)", s.Backend)
	}
	if s.Profiling != nil && s.Profiling.ProfileWorkers < 0 {
		return fmt.Errorf("service: profiling.profile_workers must be >= 0, got %d", s.Profiling.ProfileWorkers)
	}
	return nil
}

// JobResult summarizes a finished search.
type JobResult struct {
	// BestParams is the lowest-error parameter vector, in parameter units.
	BestParams []float64 `json:"best_params"`
	// BestValues renders BestParams with parameter names.
	BestValues string `json:"best_values"`
	// BestError is the objective value at BestParams.
	BestError float64 `json:"best_error"`
	// Evaluations, CacheHits, Skipped mirror core.Result.
	Evaluations int `json:"evaluations"`
	CacheHits   int `json:"cache_hits"`
	Skipped     int `json:"skipped"`
	// Components is the best iteration's per-metric error attribution
	// (unweighted normalized distances), when the objective records one.
	// It persists with the result, so attribution survives restarts.
	Components map[string]float64 `json:"components,omitempty"`
}

// JobStatus is the JSON view of a job returned by GET /jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
	Spec  JobSpec  `json:"spec"`
	// Iterations counts finished iterations (trace records + skips);
	// Total is the budget.
	Iterations int `json:"iterations_done"`
	Total      int `json:"iterations_total"`
	// Evaluations/CacheHits/CacheMisses/Skipped/SimCycles are live
	// counters. CacheHits+CacheMisses = Evaluations: every non-skipped
	// iteration either reused a cached profile or simulated a fresh one.
	Evaluations int     `json:"evaluations"`
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	Skipped     int     `json:"skipped"`
	SimCycles   float64 `json:"sim_cycles"`
	// BestError is the running minimum (meaningful once Evaluations > 0).
	BestError float64 `json:"best_error"`
	// Trace is the convergence trace so far, offset by the request's
	// ?since= parameter. TraceLen is the full length.
	Trace    []core.IterationRecord `json:"trace,omitempty"`
	TraceLen int                    `json:"trace_len"`
	Result   *JobResult             `json:"result,omitempty"`
	Created  time.Time              `json:"created_at"`
	Started  *time.Time             `json:"started_at,omitempty"`
	Finished *time.Time             `json:"finished_at,omitempty"`
	// DurationSeconds is the job's wall-clock run time: finished−started
	// for terminal jobs, time since start for running ones, 0 before start.
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// TelemetryEvents counts telemetry events the job's recorder has seen
	// over its lifetime (0 when the server runs without -telemetry).
	TelemetryEvents uint64 `json:"telemetry_events,omitempty"`
	// ProfileWorkers is the effective intra-profile parallelism the job
	// runs with (spec override or server default); 0 until the job starts.
	ProfileWorkers int `json:"profile_workers,omitempty"`
	// Backend is the evaluation plane the job resolved to when it started:
	// "local" (in-process) or "dispatch" (sharded across the worker
	// fleet). Empty until the job starts running.
	Backend string `json:"backend,omitempty"`
}

// Job is one tracked search. All mutable fields are guarded by mu; the
// search goroutine mutates them through the core.Search callbacks.
type Job struct {
	mu   sync.Mutex
	id   string
	spec JobSpec

	state      JobState
	errMsg     string
	trace      []core.IterationRecord
	checkpoint core.Checkpoint
	result     *JobResult

	// targetProf is the profile the search matches (nil for single-metric
	// objectives); bestProf is the profile measured at the best parameters.
	// Both back GET /jobs/{id}/profiles and the HTML report's eCDF
	// overlays. Not persisted: restarts recover them from the shared
	// evaluation cache when possible (see jobProfiles).
	targetProf *profile.Profile
	bestProf   *profile.Profile

	evals       int
	cacheHits   int
	cacheMisses int
	skipped     int
	simCycles   float64

	// profileWorkers is the effective intra-profile parallelism, resolved
	// from the spec and server default when the job starts running.
	profileWorkers int
	// backend is the evaluation plane the job resolved to at start
	// ("local" or "dispatch").
	backend string

	// canceled marks a client cancel request (distinguishes a canceled
	// job from a server shutdown, which re-queues instead).
	canceled bool
	cancel   context.CancelFunc
	done     chan struct{}

	created  time.Time
	started  time.Time
	finished time.Time

	// events is the append-only telemetry event log backing
	// GET /jobs/{id}/events and /artifact: one eval event per iteration
	// (always, even with telemetry disabled) interleaved with phase spans
	// when the job runs with telemetry. eventsSig is closed and replaced
	// whenever events grows or the job reaches a terminal state, waking
	// SSE subscribers.
	events    []telemetry.Event
	eventsSig chan struct{}
	recorder  *telemetry.Recorder
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state (or is re-queued by
// a server shutdown).
func (j *Job) Done() <-chan struct{} { return j.done }

// status snapshots the job; since offsets the returned trace.
func (j *Job) status(since int) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:              j.id,
		State:           j.state,
		Error:           j.errMsg,
		Spec:            j.spec,
		Iterations:      len(j.trace) + j.skipped,
		Total:           j.spec.Iterations,
		Evaluations:     j.evals,
		CacheHits:       j.cacheHits,
		CacheMisses:     j.cacheMisses,
		Skipped:         j.skipped,
		SimCycles:       j.simCycles,
		TraceLen:        len(j.trace),
		Result:          j.result,
		Created:         j.created,
		TelemetryEvents: j.recorder.Total(), // nil-safe when telemetry is off
		ProfileWorkers:  j.profileWorkers,
		Backend:         j.backend,
	}
	if len(j.trace) > 0 {
		st.BestError = j.trace[len(j.trace)-1].BestError
	}
	if since < 0 {
		since = 0
	}
	if since < len(j.trace) {
		st.Trace = append([]core.IterationRecord(nil), j.trace[since:]...)
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
		if !j.finished.IsZero() {
			st.DurationSeconds = j.finished.Sub(j.started).Seconds()
		} else {
			st.DurationSeconds = time.Since(j.started).Seconds()
		}
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// appendEvent appends one telemetry event to the job's event log and wakes
// SSE subscribers.
func (j *Job) appendEvent(ev telemetry.Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.wakeLocked()
	j.mu.Unlock()
}

// wakeLocked signals event subscribers. Callers hold j.mu.
func (j *Job) wakeLocked() {
	if j.eventsSig != nil {
		close(j.eventsSig)
	}
	j.eventsSig = make(chan struct{})
}

// sigLocked returns the channel the next wake will close, creating it on
// first use. Callers hold j.mu.
func (j *Job) sigLocked() chan struct{} {
	if j.eventsSig == nil {
		j.eventsSig = make(chan struct{})
	}
	return j.eventsSig
}

// specProfiler builds the profiler a spec describes: the machine plus any
// per-job budget overrides. It is deterministic in the spec, so a restarted
// server rebuilds the exact profiler a job ran with — which is what makes
// cache-key reconstruction (jobProfiles) possible.
func specProfiler(spec JobSpec) (*profile.Profiler, error) {
	machineName := spec.Machine
	if machineName == "" {
		machineName = "broadwell"
	}
	machine, err := sim.MachineByName(machineName)
	if err != nil {
		return nil, err
	}
	profiler := profile.New(machine)
	if p := spec.Profiling; p != nil {
		if p.WindowCycles > 0 {
			profiler.WindowCycles = p.WindowCycles
		}
		if p.Windows > 0 {
			profiler.Windows = p.Windows
		}
		if p.WarmupWindows > 0 {
			profiler.WarmupWindows = p.WarmupWindows
		}
		if p.CurveWindows > 0 {
			profiler.CurveWindows = p.CurveWindows
		}
		if p.CurvePoints > 0 {
			profiler.CurvePoints = p.CurvePoints
		}
		if p.MaxRequestsPerRun > 0 {
			profiler.MaxRequestsPerRun = p.MaxRequestsPerRun
		}
		profiler.SkipCurves = p.SkipCurves
		if p.ProfileWorkers > 0 {
			profiler.Workers = p.ProfileWorkers
		}
	}
	return profiler, nil
}

// buildSearch resolves a spec into a runnable core.SearchConfig. The
// returned config has no Cache/Resume/callbacks; the worker wires those.
// Profiling the hidden target of a workload-sourced job happens here (via
// the shared cache when possible), so it counts toward the running state.
func (s *Server) buildSearch(ctx context.Context, spec JobSpec) (core.SearchConfig, error) {
	var cfg core.SearchConfig

	profiler, err := specProfiler(spec)
	if err != nil {
		return cfg, err
	}
	cfg.Profiler = profiler

	var w *harness.Workload
	if spec.Workload != "" {
		wl, err := harness.WorkloadByName(spec.Workload)
		if err != nil {
			return cfg, err
		}
		w = &wl
	}

	genName := spec.Generator
	if genName == "" && w != nil {
		genName = w.Generator.Name
	}
	gen, err := s.generator(genName)
	if err != nil {
		if w == nil || w.Generator.Name != genName {
			return cfg, err
		}
		gen = w.Generator
	}
	cfg.Generator = gen

	switch {
	case spec.Metric != "":
		cfg.Objective = core.MetricObjective{Metric: profile.MetricID(spec.Metric), Value: spec.MetricValue}
	case len(spec.TargetProfile) > 0:
		target, err := profile.DecodeJSON(spec.TargetProfile)
		if err != nil {
			return cfg, err
		}
		cfg.Objective = core.NewProfileObjective(target, core.NewErrorModel())
	default:
		// Profile the hidden target; content-address it through the shared
		// cache so restarts and resubmissions skip this too.
		key := core.EvalKey("target/"+w.Name, profiler, nil, spec.Seed)
		target, ok := s.cache.Get(key)
		if !ok {
			target, err = s.profileTarget(ctx, spec, profiler, w)
			if err != nil {
				return cfg, fmt.Errorf("profiling target %s: %w", w.Name, err)
			}
			s.cache.Put(key, target)
		}
		cfg.Objective = core.NewProfileObjective(target, core.NewErrorModel())
	}

	switch spec.Optimizer {
	case "random":
		cfg.Optimizer = opt.NewRandomSearch(gen.Space, spec.Seed)
	case "anneal":
		cfg.Optimizer = opt.NewAnneal(gen.Space, spec.Seed, 0, 0)
	default:
		// nil selects the paper's Bayesian optimizer inside core.Search.
	}
	if spec.OnEvalError == "retry-skip" {
		cfg.OnEvalError = core.EvalRetrySkip
	}
	cfg.Iterations = spec.Iterations
	cfg.Parallel = spec.Parallel
	cfg.ProfileWorkers = s.effectiveProfileWorkers(spec)
	cfg.Seed = spec.Seed
	return cfg, nil
}

// effectiveProfileWorkers resolves a job's intra-profile parallelism: the
// spec's explicit setting wins, otherwise the server's default applies.
func (s *Server) effectiveProfileWorkers(spec JobSpec) int {
	if spec.Profiling != nil && spec.Profiling.ProfileWorkers > 0 {
		return spec.Profiling.ProfileWorkers
	}
	return s.cfg.DefaultProfileWorkers
}

// traceFromCheckpoint rebuilds the convergence trace of a persisted job
// (checkpoints store normalized points and errors; profiles are not
// persisted).
func traceFromCheckpoint(space *opt.Space, cp core.Checkpoint) []core.IterationRecord {
	var trace []core.IterationRecord
	best := math.Inf(1)
	for _, ent := range cp.Entries {
		if ent.Skipped {
			continue
		}
		if ent.Y < best {
			best = ent.Y
		}
		trace = append(trace, core.IterationRecord{
			Iteration: ent.Iteration,
			Params:    space.Denormalize(ent.U),
			Error:     ent.Y,
			BestError: best,
		})
	}
	return trace
}
