package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"datamime/internal/apps/kvstore"
	"datamime/internal/datagen"
	"datamime/internal/opt"
	"datamime/internal/profile"
	"datamime/internal/stats"
	"datamime/internal/trace"
	"datamime/internal/workload"
)

// testGenerator is a fast memcached-style generator for service tests.
func testGenerator() datagen.Generator {
	space := opt.MustSpace(
		opt.Param{Name: "qps", Lo: 10_000, Hi: 200_000, Log: true},
		opt.Param{Name: "get_ratio", Lo: 0, Hi: 1},
		opt.Param{Name: "val_mu", Lo: 16, Hi: 3_000, Log: true, Integer: true},
	)
	return datagen.Generator{
		Name:  "kv-service-test",
		Space: space,
		Benchmark: func(x []float64) workload.Benchmark {
			cfg := kvstore.Config{
				NumKeys:   4_000,
				KeySize:   stats.Normal{Mu: 24, Sigma: 6, Min: 4},
				ValueSize: stats.Normal{Mu: x[2], Sigma: x[2] / 8, Min: 1},
				GetRatio:  x[1],
			}
			return workload.Benchmark{
				Name: "kv-service-test",
				QPS:  x[0],
				NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
					return kvstore.New(cfg, layout, seed)
				},
			}
		},
	}
}

// testSpec builds a fast metric-objective job spec.
func testSpec(iterations int, seed uint64) JobSpec {
	return JobSpec{
		Generator:   "kv-service-test",
		Iterations:  iterations,
		Parallel:    2,
		Seed:        seed,
		Optimizer:   "random",
		Metric:      "cpu_util",
		MetricValue: 0.15,
		Profiling: &ProfilingSpec{
			WindowCycles:  60_000,
			Windows:       4,
			WarmupWindows: 1,
			SkipCurves:    true,
		},
	}
}

func newTestServer(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := New(Config{
		Workers:       1,
		CheckpointDir: dir,
		Generators:    []datagen.Generator{testGenerator()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// httpJSON performs a request against the test handler and decodes the
// JSON response into out (which may be nil).
func httpJSON(t *testing.T, ts *httptest.Server, method, path string, body interface{}, out interface{}) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServiceLifecycle covers the submit → poll → cancel → resubmit →
// cache-hit flow over the HTTP API.
func TestServiceLifecycle(t *testing.T) {
	svc := newTestServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Bad specs are rejected.
	if code := httpJSON(t, ts, "POST", "/jobs", JobSpec{Iterations: 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("zero-iteration spec accepted: %d", code)
	}
	if code := httpJSON(t, ts, "GET", "/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing job status = %d", code)
	}

	// A long job we will cancel mid-run.
	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", testSpec(500, 3), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	id := submitted.ID

	// The trace grows monotonically while the job runs.
	var st JobStatus
	seen := 0
	waitFor(t, "trace to reach 5 records", func() bool {
		st = JobStatus{}
		httpJSON(t, ts, "GET", fmt.Sprintf("/jobs/%s?since=%d", id, seen), nil, &st)
		if st.TraceLen < seen {
			t.Fatalf("trace shrank: %d -> %d", seen, st.TraceLen)
		}
		for i, rec := range st.Trace {
			if rec.Iteration < seen+i {
				t.Fatalf("trace iteration went backwards: %+v at offset %d", rec, seen+i)
			}
		}
		seen = st.TraceLen
		return st.TraceLen >= 5
	})
	if st.State != JobRunning {
		t.Fatalf("mid-run state = %s", st.State)
	}
	if code := httpJSON(t, ts, "GET", "/jobs/"+id+"/result", nil, nil); code != http.StatusConflict {
		t.Fatalf("result of running job = %d", code)
	}

	// Cancel stops it promptly, well short of its 500-iteration budget.
	if code := httpJSON(t, ts, "POST", "/jobs/"+id+"/cancel", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel = %d", code)
	}
	waitFor(t, "job to reach canceled", func() bool {
		st = JobStatus{}
		httpJSON(t, ts, "GET", "/jobs/"+id, nil, &st)
		return st.State == JobCanceled
	})
	if !strings.Contains(st.Error, "context canceled") {
		t.Fatalf("canceled job error = %q", st.Error)
	}
	if st.Iterations >= 500 {
		t.Fatal("canceled job ran to completion")
	}

	// A fresh job runs to completion...
	httpJSON(t, ts, "POST", "/jobs", testSpec(12, 9), &submitted)
	id = submitted.ID
	waitFor(t, "job to succeed", func() bool {
		st = JobStatus{}
		httpJSON(t, ts, "GET", "/jobs/"+id, nil, &st)
		return st.State == JobSucceeded
	})
	var first JobResult
	if code := httpJSON(t, ts, "GET", "/jobs/"+id+"/result", nil, &first); code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if first.Evaluations != 12 || len(first.BestParams) != 3 || first.BestValues == "" {
		t.Fatalf("result = %+v", first)
	}

	// ...and resubmitting it is served from the evaluation cache.
	httpJSON(t, ts, "POST", "/jobs", testSpec(12, 9), &submitted)
	id = submitted.ID
	waitFor(t, "resubmitted job to succeed", func() bool {
		st = JobStatus{}
		httpJSON(t, ts, "GET", "/jobs/"+id, nil, &st)
		return st.State == JobSucceeded
	})
	var second JobResult
	httpJSON(t, ts, "GET", "/jobs/"+id+"/result", nil, &second)
	if second.CacheHits != second.Evaluations {
		t.Fatalf("resubmitted job: %d cache hits for %d evaluations", second.CacheHits, second.Evaluations)
	}
	if second.BestError != first.BestError || !reflect.DeepEqual(second.BestParams, first.BestParams) {
		t.Fatalf("cached rerun diverged: %+v vs %+v", second, first)
	}

	// The list endpoint sees all three jobs.
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	httpJSON(t, ts, "GET", "/jobs", nil, &list)
	if len(list.Jobs) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(list.Jobs))
	}

	// Metrics reflect the work done.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`datamimed_jobs{state="succeeded"} 2`,
		`datamimed_jobs{state="canceled"} 1`,
		"datamimed_eval_cache_hits_total",
		"datamimed_workers 1",
		"datamimed_simulated_cycles_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestServiceCheckpointResume kills a server mid-search and verifies the
// restarted server resumes the job from its checkpoint and converges to
// exactly the same result as an uninterrupted run.
func TestServiceCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(30, 17)

	// Reference: the same spec run uninterrupted (no persistence).
	ref := runToCompletion(t, newTestServer(t, ""), spec)

	// Interrupted run: close the server once the job has checkpointed a
	// few batches.
	svcA := newTestServer(t, dir)
	jobA, err := svcA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "checkpoint to accumulate", func() bool {
		st := jobA.status(0)
		return st.Iterations >= 6 && st.Iterations < 30
	})
	svcA.Close() // simulated kill: running job persists as queued

	// Restart: the job comes back, resumes, and finishes.
	svcB := newTestServer(t, dir)
	defer svcB.Close()
	jobB, ok := svcB.Job(jobA.ID())
	if !ok {
		t.Fatal("restarted server lost the job")
	}
	waitFor(t, "resumed job to finish", func() bool {
		return jobB.status(0).State.terminal()
	})
	got := jobB.status(0)
	if got.State != JobSucceeded {
		t.Fatalf("resumed job %s: %s", got.State, got.Error)
	}
	if got.Result.BestError != ref.Result.BestError ||
		!reflect.DeepEqual(got.Result.BestParams, ref.Result.BestParams) {
		t.Fatalf("resumed result diverged:\nresumed %+v\nref     %+v", got.Result, ref.Result)
	}
	if got.TraceLen != 30 || !reflect.DeepEqual(got.Trace, ref.Trace) {
		t.Fatalf("resumed trace diverged (%d records)", got.TraceLen)
	}
	// The resumed run replayed its prefix rather than re-simulating it:
	// only the post-checkpoint iterations cost fresh simulated cycles.
	if got.SimCycles >= ref.SimCycles {
		t.Fatalf("resume re-simulated everything: %g vs %g cycles", got.SimCycles, ref.SimCycles)
	}

	// A third start has nothing to resume but still reports the job.
	svcB.Close()
	svcC := newTestServer(t, dir)
	defer svcC.Close()
	jobC, ok := svcC.Job(jobA.ID())
	if !ok {
		t.Fatal("third start lost the job")
	}
	st := jobC.status(0)
	if st.State != JobSucceeded || st.Result == nil || st.TraceLen != 30 {
		t.Fatalf("restored finished job: %+v", st)
	}
}

// runToCompletion submits spec and waits for the result.
func runToCompletion(t *testing.T, svc *Server, spec JobSpec) JobStatus {
	t.Helper()
	defer svc.Close()
	job, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	st := job.status(0)
	if st.State != JobSucceeded {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	return st
}

// TestCacheLRU exercises eviction and stats.
func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	prof := &profile.Profile{Benchmark: "dummy"}
	c.Put("a", prof)
	c.Put("b", prof)
	if _, ok := c.Get("a"); !ok { // touches a: b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", prof) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("stats = %d hits, %d misses, %d entries", st.Hits, st.Misses, st.Entries)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

// TestSpecValidation covers the error cases of JobSpec.Validate.
func TestSpecValidation(t *testing.T) {
	bad := []JobSpec{
		{},
		{Iterations: 5}, // no objective
		{Iterations: 5, Metric: "ipc", Workload: "mem-fb"},                     // two objectives
		{Iterations: 5, Metric: "ipc"},                                         // no generator
		{Iterations: 5, Metric: "ipc", Generator: "g", OnEvalError: "explode"}, // bad policy
		{Iterations: 5, Metric: "ipc", Generator: "g", Optimizer: "gradient"},  // bad optimizer
		{Iterations: 5, Metric: "ipc", Generator: "g",
			Profiling: &ProfilingSpec{ProfileWorkers: -2}}, // negative workers
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
	good := testSpec(5, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	good.Profiling = &ProfilingSpec{ProfileWorkers: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEffectiveProfileWorkers: a spec override wins; otherwise the server
// default applies, and specProfiler applies the spec value to the profiler.
func TestEffectiveProfileWorkers(t *testing.T) {
	s := &Server{cfg: Config{DefaultProfileWorkers: 3}}
	if got := s.effectiveProfileWorkers(JobSpec{}); got != 3 {
		t.Fatalf("server default not applied: %d", got)
	}
	spec := JobSpec{Profiling: &ProfilingSpec{ProfileWorkers: 8}}
	if got := s.effectiveProfileWorkers(spec); got != 8 {
		t.Fatalf("spec override lost: %d", got)
	}
	pr, err := specProfiler(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Workers != 8 {
		t.Fatalf("specProfiler.Workers = %d, want 8", pr.Workers)
	}
}
