package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"datamime/internal/corpus"
	"datamime/internal/datagen"
	"datamime/internal/telemetry"
)

func newCorpusServer(t *testing.T, checkpointDir, corpusDir string) *Server {
	t.Helper()
	s, err := New(Config{
		Workers:       1,
		CheckpointDir: checkpointDir,
		CorpusDir:     corpusDir,
		Generators:    []datagen.Generator{testGenerator()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func submitAndWait(t *testing.T, svc *Server, spec JobSpec) JobStatus {
	t.Helper()
	job, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	st := job.status(0)
	if st.State != JobSucceeded {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	return st
}

// TestCorpusIndexesIdenticalSeededRuns: two identically-seeded searches on
// one coordinator index as one scenario with bit-identical convergence — the
// second must come back verdict "identical" with the same best error and
// trajectory hash. This is the acceptance invariant the CI fleet-gate
// asserts over HTTP.
func TestCorpusIndexesIdenticalSeededRuns(t *testing.T) {
	corpusDir := t.TempDir()
	svc := newCorpusServer(t, t.TempDir(), corpusDir)
	defer svc.Close()

	spec := testSpec(6, 42)
	first := submitAndWait(t, svc, spec)
	second := submitAndWait(t, svc, spec)

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	var list corpusListResponse
	if code := httpJSON(t, ts, "GET", "/v1/corpus", nil, &list); code != http.StatusOK {
		t.Fatalf("GET /v1/corpus = %d", code)
	}
	if list.Total != 2 || len(list.Runs) != 2 {
		t.Fatalf("corpus lists %d/%d runs, want 2", len(list.Runs), list.Total)
	}
	a, b := list.Runs[0], list.Runs[1]
	if a.ID != first.ID || b.ID != second.ID {
		t.Fatalf("corpus order %s,%s want %s,%s", a.ID, b.ID, first.ID, second.ID)
	}
	if a.Scenario == "" || a.Scenario != b.Scenario {
		t.Fatalf("scenario hashes differ: %q vs %q", a.Scenario, b.Scenario)
	}
	if a.BestError != b.BestError {
		t.Fatalf("best error drifted: %g vs %g", a.BestError, b.BestError)
	}
	if a.TrajectoryHash == "" || a.TrajectoryHash != b.TrajectoryHash {
		t.Fatalf("trajectories not bit-identical: %q vs %q", a.TrajectoryHash, b.TrajectoryHash)
	}
	if a.Verdict != corpus.VerdictBaseline {
		t.Fatalf("first verdict = %q, want baseline", a.Verdict)
	}
	if b.Verdict != corpus.VerdictIdentical {
		t.Fatalf("second verdict = %q, want identical", b.Verdict)
	}
	if b.BaselineID != a.ID {
		t.Fatalf("second run's baseline = %q, want %q", b.BaselineID, a.ID)
	}

	// The trends surface serves the same scenario longitudinally.
	var trend corpus.Trend
	if code := httpJSON(t, ts, "GET", "/v1/corpus/"+a.Scenario+"/trends", nil, &trend); code != http.StatusOK {
		t.Fatalf("GET trends = %d", code)
	}
	if trend.Runs != 2 || trend.Regressions != 0 {
		t.Fatalf("trend = %+v, want 2 runs, 0 regressions", trend)
	}
	if code := httpJSON(t, ts, "GET", "/v1/corpus/nope/trends", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown scenario trends = %d, want 404", code)
	}

	// The fleet view carries the corpus rollup.
	var fleet FleetStatus
	if code := httpJSON(t, ts, "GET", "/v1/fleet", nil, &fleet); code != http.StatusOK {
		t.Fatalf("GET /v1/fleet = %d", code)
	}
	if fleet.Corpus == nil || fleet.Corpus.Runs != 2 || fleet.Corpus.Indexed != 2 {
		t.Fatalf("fleet corpus rollup = %+v", fleet.Corpus)
	}
	if len(fleet.Corpus.Scenarios) != 1 || fleet.Corpus.Scenarios[0].LastVerdict != corpus.VerdictIdentical {
		t.Fatalf("fleet corpus scenarios = %+v", fleet.Corpus.Scenarios)
	}
}

// TestCorpusWatchdogFlagsRegression: against a pre-seeded (artificially
// better) baseline, a finished run must trip the watchdog — the regressions
// counter increments, the record is indexed verdict "regressed", and a
// corpus.regression frame reaches the job's SSE stream before done.
func TestCorpusWatchdogFlagsRegression(t *testing.T) {
	corpusDir := t.TempDir()
	spec := testSpec(6, 42)

	// Seed a baseline no real run can beat: best error -1 with the same
	// scenario hash the submitted job will compute.
	c, err := corpus.Open(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	seeded := corpus.Record{
		ID:         "seed-baseline",
		Scenario:   scenarioHash(spec),
		Seed:       spec.Seed,
		BestError:  -1,
		Verdict:    corpus.VerdictBaseline,
		FinishedAt: time.Now().UTC().Add(-time.Hour),
	}
	if _, err := c.Add(seeded, []byte("{}\n")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	svc := newCorpusServer(t, t.TempDir(), corpusDir)
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", spec, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + submitted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	frames := readSSE(t, resp)
	if len(frames) < 2 {
		t.Fatalf("only %d SSE frames", len(frames))
	}
	if last := frames[len(frames)-1]; last.event != "done" {
		t.Fatalf("stream did not end with done: %+v", last)
	}
	regressionFrames := 0
	for i, fr := range frames {
		if fr.event == telemetry.TypeCorpusRegression {
			regressionFrames++
			if i >= len(frames)-1 {
				t.Fatalf("corpus.regression frame %d not before the done frame", i)
			}
		}
	}
	if regressionFrames != 1 {
		t.Fatalf("saw %d corpus.regression SSE frames, want 1", regressionFrames)
	}

	if got := svc.metrics.corpusRegressions.Value(); got != 1 {
		t.Fatalf("datamimed_corpus_regressions_total = %g, want 1", got)
	}
	rec, ok := svc.Corpus().Find(submitted.ID)
	if !ok {
		t.Fatalf("run %s not indexed", submitted.ID)
	}
	if rec.Verdict != corpus.VerdictRegressed || rec.BaselineID != "seed-baseline" {
		t.Fatalf("record = verdict %q baseline %q, want regressed vs seed-baseline", rec.Verdict, rec.BaselineID)
	}
	if rec.BaselineDelta <= 0 {
		t.Fatalf("baseline delta = %g, want > 0", rec.BaselineDelta)
	}
}

// TestCorpusRecordsModelHealth: a GP-backed job indexes with a model-health
// rollup (built from trace-attached diagnostics — no telemetry needed), and
// the rollup surfaces through the trend points and the fleet scoreboard for
// calibration-drift tracking.
func TestCorpusRecordsModelHealth(t *testing.T) {
	svc := newCorpusServer(t, t.TempDir(), t.TempDir())
	defer svc.Close()

	spec := testSpec(9, 42)
	spec.Optimizer = "" // default bayesopt: the only optimizer with a surrogate
	st := submitAndWait(t, svc, spec)

	rec, ok := svc.Corpus().Find(st.ID)
	if !ok {
		t.Fatalf("run %s not indexed", st.ID)
	}
	if rec.ModelHealth == nil {
		t.Fatal("GP run indexed without a model-health rollup")
	}
	if rec.ModelHealth.Snapshots == 0 || rec.ModelHealth.MeanCoverage1 < 0 || rec.ModelHealth.MeanCoverage1 > 1 {
		t.Fatalf("model health implausible: %+v", rec.ModelHealth)
	}

	trend := svc.Corpus().Trend(rec.Scenario)
	if len(trend.Points) != 1 || trend.Points[0].ModelHealth == nil {
		t.Fatalf("trend point lacks model health: %+v", trend.Points)
	}
	if trend.MedianCoverage1 != rec.ModelHealth.MeanCoverage1 {
		t.Fatalf("trend median coverage %g != record coverage %g",
			trend.MedianCoverage1, rec.ModelHealth.MeanCoverage1)
	}

	sum := svc.corpusSummary()
	if len(sum.Scenarios) != 1 || sum.Scenarios[0].MedianCoverage1 != trend.MedianCoverage1 {
		t.Fatalf("scoreboard rollup missing calibration figures: %+v", sum.Scenarios)
	}

	// A surrogate-free optimizer indexes with no model health.
	st2 := submitAndWait(t, svc, testSpec(6, 42))
	rec2, ok := svc.Corpus().Find(st2.ID)
	if !ok {
		t.Fatalf("run %s not indexed", st2.ID)
	}
	if rec2.ModelHealth != nil {
		t.Fatalf("random-search run carries model health: %+v", rec2.ModelHealth)
	}
}

// TestCorpusSurvivesRestart: the index written by one coordinator process is
// served intact by the next one pointed at the same directory, and new runs
// append behind the old ones.
func TestCorpusSurvivesRestart(t *testing.T) {
	corpusDir := t.TempDir()
	// Share the checkpoint dir so the restarted process continues the job-N
	// sequence instead of reusing IDs already in the corpus.
	checkpointDir := t.TempDir()
	spec := testSpec(6, 42)

	svc := newCorpusServer(t, checkpointDir, corpusDir)
	first := submitAndWait(t, svc, spec)
	svc.Close()

	svc2 := newCorpusServer(t, checkpointDir, corpusDir)
	defer svc2.Close()
	if got := svc2.Corpus().Len(); got != 1 {
		t.Fatalf("reopened corpus has %d runs, want 1", got)
	}
	second := submitAndWait(t, svc2, spec)

	ts := httptest.NewServer(svc2.Handler())
	defer ts.Close()
	var list corpusListResponse
	if code := httpJSON(t, ts, "GET", "/v1/corpus", nil, &list); code != http.StatusOK {
		t.Fatalf("GET /v1/corpus = %d", code)
	}
	if len(list.Runs) != 2 {
		t.Fatalf("corpus lists %d runs after restart, want 2", len(list.Runs))
	}
	a, b := list.Runs[0], list.Runs[1]
	if a.ID != first.ID || b.ID != second.ID {
		t.Fatalf("corpus order %s,%s want %s,%s", a.ID, b.ID, first.ID, second.ID)
	}
	// Restart must not perturb determinism bookkeeping: the post-restart run
	// is judged identical to the pre-restart baseline.
	if b.Verdict != corpus.VerdictIdentical || b.TrajectoryHash != a.TrajectoryHash {
		t.Fatalf("post-restart verdict %q (traj %q vs %q), want identical",
			b.Verdict, b.TrajectoryHash, a.TrajectoryHash)
	}
}
