package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"datamime/internal/backend"
	"datamime/internal/datagen"
	"datamime/internal/telemetry"
)

// staticMetrics serves a fixed Prometheus exposition.
func staticMetrics(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFederationScrapeGolden: two reachable workers (one with a histogram
// and a non-federated family, one exercising the untyped fallback) plus one
// unreachable worker produce a byte-stable federated exposition with the
// worker label injected first and a datamime_worker_up row per worker.
func TestFederationScrapeGolden(t *testing.T) {
	wa := staticMetrics(t, `# HELP datamime_worker_cache_local_hits_total Worker-tier cache hits.
# TYPE datamime_worker_cache_local_hits_total counter
datamime_worker_cache_local_hits_total 30
datamime_worker_cache_misses_total 10
# HELP datamime_worker_evaluations_total Completed evaluations.
# TYPE datamime_worker_evaluations_total counter
datamime_worker_evaluations_total 42
# TYPE process_cpu_seconds_total counter
process_cpu_seconds_total 1.5
`)
	wb := staticMetrics(t, `# TYPE datamime_worker_eval_seconds histogram
datamime_worker_eval_seconds_bucket{le="1"} 3
datamime_worker_eval_seconds_bucket{le="+Inf"} 5
datamime_worker_eval_seconds_sum 4.2
datamime_worker_eval_seconds_count 5
# TYPE datamime_worker_evaluations_total counter
datamime_worker_evaluations_total 7
`)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	fed := newFederation()
	fed.Scrape(context.Background(), []backend.WorkerInfo{
		{Name: "worker-a", URL: wa.URL},
		{Name: "worker-b", URL: wb.URL},
		{Name: "worker-dead", URL: deadURL},
		{Name: "in-process"}, // no URL: never scraped
	})

	var buf bytes.Buffer
	fed.WritePrometheus(&buf)

	// The scrape-duration and staleness gauges carry wall-clock values, so
	// they are asserted structurally and then filtered out before the
	// byte-exact comparison of the deterministic remainder.
	var stable []string
	durWorkers := map[string]bool{}
	staleWorkers := map[string]bool{}
	for _, line := range strings.SplitAfter(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "datamime_worker_scrape_duration_seconds{"):
			durWorkers[line[strings.Index(line, `"`)+1:strings.LastIndex(line, `"`)]] = true
		case strings.HasPrefix(line, "datamime_worker_scrape_staleness_seconds{"):
			staleWorkers[line[strings.Index(line, `"`)+1:strings.LastIndex(line, `"`)]] = true
		case strings.HasPrefix(line, "# HELP datamime_worker_scrape_") ||
			strings.HasPrefix(line, "# TYPE datamime_worker_scrape_"):
		case line != "":
			stable = append(stable, line)
		}
	}
	// Every scraped worker has a duration sample (including the failed
	// scrape); only workers with a successful scrape have staleness.
	for _, w := range []string{"worker-a", "worker-b", "worker-dead"} {
		if !durWorkers[w] {
			t.Errorf("no scrape-duration sample for %s", w)
		}
	}
	if !staleWorkers["worker-a"] || !staleWorkers["worker-b"] {
		t.Errorf("staleness samples missing for reachable workers: %v", staleWorkers)
	}
	if staleWorkers["worker-dead"] {
		t.Error("never-scraped-successfully worker has a staleness sample")
	}

	want := `# HELP datamime_worker_up Whether the last federation scrape of the worker's /metrics succeeded.
# TYPE datamime_worker_up gauge
datamime_worker_up{worker="worker-a"} 1
datamime_worker_up{worker="worker-b"} 1
datamime_worker_up{worker="worker-dead"} 0
# HELP datamime_worker_cache_local_hits_total Worker-tier cache hits.
# TYPE datamime_worker_cache_local_hits_total counter
datamime_worker_cache_local_hits_total{worker="worker-a"} 30
# TYPE datamime_worker_cache_misses_total untyped
datamime_worker_cache_misses_total{worker="worker-a"} 10
# TYPE datamime_worker_eval_seconds histogram
datamime_worker_eval_seconds_bucket{worker="worker-b",le="1"} 3
datamime_worker_eval_seconds_bucket{worker="worker-b",le="+Inf"} 5
datamime_worker_eval_seconds_sum{worker="worker-b"} 4.2
datamime_worker_eval_seconds_count{worker="worker-b"} 5
# HELP datamime_worker_evaluations_total Completed evaluations.
# TYPE datamime_worker_evaluations_total counter
datamime_worker_evaluations_total{worker="worker-a"} 42
datamime_worker_evaluations_total{worker="worker-b"} 7
`
	if got := strings.Join(stable, ""); got != want {
		t.Errorf("federated exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	st := fed.Stats()
	if st.Workers != 3 || st.ScrapesTotal != 3 || st.ScrapeErrors != 1 {
		t.Errorf("Stats() = %+v, want 3 workers, 3 scrapes, 1 error", st)
	}
	if sum := fed.summarize("worker-a"); !sum.hasRate || sum.hitRate != 0.75 {
		t.Errorf("worker-a summary = %+v, want hit rate 0.75", sum)
	}
	if sum := fed.summarize("worker-dead"); !sum.scraped || sum.up {
		t.Errorf("worker-dead summary = %+v, want scraped+down", sum)
	}

	// A rescrape without the departed workers drops their state.
	fed.Scrape(context.Background(), []backend.WorkerInfo{{Name: "worker-a", URL: wa.URL}})
	if st := fed.Stats(); st.Workers != 1 {
		t.Errorf("after departure Stats() = %+v, want 1 worker", st)
	}
}

// TestServiceFleetEndpoint: the coordinator's /v1/fleet joins the
// dispatcher's routing view with the federation's scraped view, and /metrics
// re-exports the workers' own families beside the coordinator's.
func TestServiceFleetEndpoint(t *testing.T) {
	_, ts1 := newFleetWorker(t, "obs-a")
	_, ts2 := newFleetWorker(t, "obs-b")
	svc := newFleetServer(t, []string{ts1.URL, ts2.URL})
	defer svc.Close()

	// Drive one scrape deterministically instead of waiting on the loop.
	svc.Federation().Scrape(context.Background(), svc.Dispatcher().Workers())

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var fleet FleetStatus
	if code := httpJSON(t, ts, "GET", "/v1/fleet", nil, &fleet); code != http.StatusOK {
		t.Fatalf("/v1/fleet = %d", code)
	}
	if len(fleet.Workers) != 2 {
		t.Fatalf("fleet rows = %d, want 2", len(fleet.Workers))
	}
	for _, row := range fleet.Workers {
		if row.ScrapeUp == nil || !*row.ScrapeUp {
			t.Errorf("worker %s: scrape_up = %v, want true", row.Name, row.ScrapeUp)
		}
		// The worker's runtime health rode along with the scrape.
		if row.Goroutines <= 0 || row.HeapBytes <= 0 {
			t.Errorf("worker %s: runtime health missing (goroutines %g, heap %g)",
				row.Name, row.Goroutines, row.HeapBytes)
		}
	}
	if fleet.Federation.ScrapesTotal != 2 || fleet.Federation.ScrapeErrors != 0 {
		t.Errorf("federation stats = %+v", fleet.Federation)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(data)
	for _, want := range []string{
		"datamimed_evaluations_total",   // the coordinator's own registry
		"datamimed_go_goroutines",       // its runtime health
		"# TYPE datamime_worker_up gauge",
		"datamime_worker_capacity{worker=", // the workers' families, relabeled
		"datamime_worker_go_goroutines{worker=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Statically-registered workers are keyed by URL; both scraped up.
	if n := strings.Count(out, `datamime_worker_up{worker="http`); n != 2 {
		t.Errorf("datamime_worker_up rows = %d, want 2", n)
	}
}

// TestServiceFleetBitIdentityWithTelemetry re-runs the fleet acceptance test
// with span shipping enabled: trace-context propagation and remote span
// capture must not move a single output bit, and the job's exported trace
// must carry the workers' spans on their own fleet process tracks.
func TestServiceFleetBitIdentityWithTelemetry(t *testing.T) {
	spec := testSpec(12, 21)
	spec.Backend = "local"
	ref := runToCompletion(t, newTestServer(t, ""), spec)

	_, ts1 := newFleetWorker(t, "span-a")
	_, ts2 := newFleetWorker(t, "span-b")
	svc, err := New(Config{
		Workers:    1,
		Generators: []datagen.Generator{testGenerator()},
		WorkerURLs: []string{ts1.URL, ts2.URL},
		Telemetry:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	remoteSpec := testSpec(12, 21)
	remoteSpec.Backend = "remote"
	job, err := svc.Submit(remoteSpec)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	got := job.status(0)
	if got.State != JobSucceeded {
		t.Fatalf("traced fleet job %s: %s", got.State, got.Error)
	}
	if got.Result.BestError != ref.Result.BestError ||
		!reflect.DeepEqual(got.Result.BestParams, ref.Result.BestParams) ||
		got.Result.BestValues != ref.Result.BestValues {
		t.Fatalf("span shipping moved the result:\nfleet %+v\nlocal %+v", got.Result, ref.Result)
	}
	if !reflect.DeepEqual(got.Trace, ref.Trace) {
		t.Fatal("span shipping moved the iteration trace")
	}
	if c := svc.Dispatcher().Counters(); c.RemoteEvals == 0 {
		t.Fatalf("dispatch counters = %+v, want remote evals", c)
	}

	// The unified trace carries the remote spans on fleet process tracks.
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + job.ID() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace = %d", resp.StatusCode)
	}
	st, err := telemetry.ValidateTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if st.FleetProcesses < 1 {
		t.Fatalf("trace stats = %+v, want at least one fleet process", st)
	}
	if st.Spans == 0 {
		t.Fatal("traced fleet job exported no spans")
	}
}
