package service

import (
	"net/http"
	"strconv"
	"time"

	"datamime/internal/backend"
	"datamime/internal/telemetry"
)

// serverMetrics is the server's unified metrics registry: every operational
// counter, gauge, and histogram /metrics exports lives here, registered once
// at startup. Hot-path code increments the typed handles; state that is
// already tracked elsewhere (the job table, the evaluation cache, per-job
// progress) is read at scrape time through collector callbacks, so the
// dynamic label sets — jobs by state, per-job gauges — stay exact without
// double bookkeeping.
type serverMetrics struct {
	reg *telemetry.Registry

	// Worker-pool and evaluation counters (incremented by the job workers).
	workersBusy  *telemetry.Gauge
	evalsTotal   *telemetry.Counter
	skippedTotal *telemetry.Counter
	retriedTotal *telemetry.Counter
	cyclesTotal  *telemetry.Counter

	// SSE subscription gauge and slow-consumer drop counter.
	sseActive  *telemetry.Gauge
	sseDropped *telemetry.Counter

	// Parallel-search contention metrics, fed from telemetry spans by
	// observeSpan: profiler-pool occupancy per worker, budget-semaphore
	// wait time, and the GP surrogate's incremental-vs-refactorization
	// balance with its conditioning diagnostic.
	simRuns           *telemetry.Counter
	workerBusySeconds *telemetry.CounterVec
	budgetWaitSeconds *telemetry.Counter
	gpAppends         *telemetry.Counter
	gpRebuilds        *telemetry.Counter
	gpJitterLevel     *telemetry.Gauge

	// Search-health diagnostics, fed from search.diagnostics events by
	// observeDiagnostics: the latest fit's log evidence and LOO calibration
	// coverage, plus a counter of fits that needed escalated jitter.
	gpLogMarginal       *telemetry.Gauge
	gpCoverage1         *telemetry.Gauge
	gpCoverage2         *telemetry.Gauge
	gpJitterEscalations *telemetry.Counter

	// phaseHist aggregates search-phase latencies across all jobs;
	// populated only when telemetry is on.
	phaseHist *telemetry.HistogramVec

	// dispatchHist observes end-to-end dispatched-evaluation latency by
	// serving side ("remote", "local"); fed by observeDispatch from each
	// job's SearchEvaluator.
	dispatchHist *telemetry.HistogramVec

	// Fleet-span metrics: spans shipped back from remote workers (tagged
	// with the fleet-worker attribute) are accounted here, NOT in the local
	// pool families above — mixing remote simulation time into the local
	// profiler-pool gauges would corrupt both views.
	fleetSimRuns           *telemetry.Counter
	fleetBusySeconds       *telemetry.CounterVec
	fleetBudgetWaitSeconds *telemetry.Counter
	fleetCacheProbes       *telemetry.CounterVec

	// Run-corpus watchdog metrics (incremented by indexRun on every job
	// completion when Config.CorpusDir enables the corpus).
	corpusIndexed       *telemetry.Counter
	corpusRegressions   *telemetry.Counter
	corpusVerdicts      *telemetry.CounterVec
	corpusBaselineDelta *telemetry.Gauge
}

// newServerMetrics builds the registry. Collector callbacks close over the
// server and run at scrape time; they take the same locks the HTTP handlers
// do and never touch the search hot path.
func newServerMetrics(s *Server) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{reg: reg}

	reg.NewCollector("datamimed_jobs", "Jobs tracked by the server, by state.",
		"gauge", []string{"state"}, func() []telemetry.Sample {
			counts := s.jobCounts()
			out := make([]telemetry.Sample, 0, len(allStates()))
			for _, st := range allStates() {
				out = append(out, telemetry.Sample{Labels: []string{string(st)}, Value: float64(counts[st])})
			}
			return out
		})
	reg.NewGaugeFunc("datamimed_workers", "Worker-pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	m.workersBusy = reg.NewGauge("datamimed_workers_busy", "Workers currently running a job.")

	reg.NewCounterFunc("datamimed_eval_cache_hits_total", "Evaluation-cache hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.NewCounterFunc("datamimed_eval_cache_misses_total", "Evaluation-cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.NewCounterFunc("datamimed_eval_cache_evictions_total", "Profiles evicted from the evaluation cache.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.NewGaugeFunc("datamimed_eval_cache_entries", "Profiles currently cached.",
		func() float64 { return float64(s.cache.Stats().Entries) })

	m.evalsTotal = reg.NewCounter("datamimed_evaluations_total",
		"Fresh candidate evaluations completed.")
	m.skippedTotal = reg.NewCounter("datamimed_evaluations_skipped_total",
		"Evaluations dropped by the retry-skip policy.")
	m.retriedTotal = reg.NewCounter("datamimed_evaluations_retried_total",
		"Evaluations that succeeded on their perturbed-seed retry.")
	m.cyclesTotal = reg.NewCounter("datamimed_simulated_cycles_total",
		"Estimated simulated cycles spent profiling.")

	m.sseActive = reg.NewGauge("datamimed_sse_subscribers", "Open /events subscriptions.")
	m.sseDropped = reg.NewCounter("datamimed_sse_dropped_total",
		"Events dropped from slow SSE subscribers' backlogs.")

	m.simRuns = reg.NewCounter("datamimed_sim_runs_total",
		"Partition simulations executed by the profiler pools.")
	m.workerBusySeconds = reg.NewCounterVec("datamimed_profile_worker_busy_seconds_total",
		"Simulation time per profiler-pool worker index.", "worker")
	m.budgetWaitSeconds = reg.NewCounter("datamimed_budget_wait_seconds_total",
		"Time profiler runs spent blocked on the shared simulation budget.")
	m.gpAppends = reg.NewCounter("datamimed_gp_cholesky_appends_total",
		"GP surrogate factor updates taking the incremental append fast path.")
	m.gpRebuilds = reg.NewCounter("datamimed_gp_cholesky_rebuilds_total",
		"GP surrogate factor updates falling back to full refactorization.")
	m.gpJitterLevel = reg.NewGauge("datamimed_gp_jitter_level_max",
		"Highest GP jitter-escalation level observed (conditioning diagnostic).")
	m.gpLogMarginal = reg.NewGauge("datamimed_gp_log_marginal_likelihood",
		"Log marginal likelihood of the most recent GP surrogate fit.")
	m.gpCoverage1 = reg.NewGauge("datamimed_gp_loo_coverage_1sigma",
		"Fraction of leave-one-out residuals inside the 1-sigma predictive band in the most recent fit (nominal 0.683).")
	m.gpCoverage2 = reg.NewGauge("datamimed_gp_loo_coverage_2sigma",
		"Fraction of leave-one-out residuals inside the 2-sigma predictive band in the most recent fit (nominal 0.954).")
	m.gpJitterEscalations = reg.NewCounter("datamimed_gp_jitter_escalations_total",
		"Surrogate fits whose winning hyperparameters needed escalated jitter to factorize.")

	m.phaseHist = reg.NewHistogramVec("datamimed_phase_seconds",
		"Search phase latency, by phase.", "phase", nil)

	// Distributed evaluation plane: admission-control queue depth, fleet
	// composition and per-worker load (read from the dispatcher at scrape
	// time), dispatch outcome counters, and end-to-end dispatch latency.
	reg.NewGaugeFunc("datamimed_dispatch_queue_depth",
		"Evaluations waiting for a remote worker slot.",
		func() float64 { return float64(s.dispatcher.QueueDepth()) })
	reg.NewCounterFunc("datamimed_dispatch_remote_evals_total",
		"Candidate evaluations served by remote workers.",
		func() float64 { return float64(s.dispatcher.Counters().RemoteEvals) })
	reg.NewCounterFunc("datamimed_dispatch_local_evals_total",
		"Dispatched evaluations served by the in-process fallback.",
		func() float64 { return float64(s.dispatcher.Counters().LocalEvals) })
	reg.NewCounterFunc("datamimed_dispatch_retries_total",
		"Failed remote attempts that were re-dispatched.",
		func() float64 { return float64(s.dispatcher.Counters().Retries) })
	reg.NewCounterFunc("datamimed_dispatch_fallbacks_total",
		"Evaluations that fell back local after remote attempts failed.",
		func() float64 { return float64(s.dispatcher.Counters().Fallbacks) })
	reg.NewCounterFunc("datamimed_dispatch_sheds_total",
		"Evaluations shed to the local backend by admission control.",
		func() float64 { return float64(s.dispatcher.Counters().Sheds) })
	reg.NewCounterFunc("datamimed_fleet_registered_total",
		"Workers that joined the fleet.",
		func() float64 { return float64(s.dispatcher.Counters().Registered) })
	reg.NewCounterFunc("datamimed_fleet_deregistered_total",
		"Workers that left the fleet (withdrawn or evicted).",
		func() float64 { return float64(s.dispatcher.Counters().Deregistered) })
	reg.NewCollector("datamimed_fleet_worker_inflight",
		"In-flight evaluations per registered worker.",
		"gauge", []string{"worker"}, func() []telemetry.Sample {
			var out []telemetry.Sample
			for _, w := range s.dispatcher.Workers() {
				out = append(out, telemetry.Sample{Labels: []string{w.Name}, Value: float64(w.Inflight)})
			}
			return out
		})
	reg.NewCollector("datamimed_fleet_worker_healthy",
		"Health of each registered worker (1 healthy, 0 failing).",
		"gauge", []string{"worker"}, func() []telemetry.Sample {
			var out []telemetry.Sample
			for _, w := range s.dispatcher.Workers() {
				v := 0.0
				if w.Healthy {
					v = 1
				}
				out = append(out, telemetry.Sample{Labels: []string{w.Name}, Value: v})
			}
			return out
		})
	m.dispatchHist = reg.NewHistogramVec("datamimed_dispatch_seconds",
		"End-to-end dispatched-evaluation latency, by serving side.", "side", nil)

	// Run-corpus watchdog. The gauge reads the on-disk index size so a
	// coordinator restart doesn't zero it; the counters are this process's
	// indexing/watchdog activity. All families exist even with the corpus
	// disabled (they just stay at zero) so dashboards never 404.
	reg.NewGaugeFunc("datamimed_corpus_runs",
		"Run records in the persistent corpus index.",
		func() float64 {
			if s.corpus == nil {
				return 0
			}
			return float64(s.corpus.Len())
		})
	m.corpusIndexed = reg.NewCounter("datamimed_corpus_runs_indexed_total",
		"Finished jobs indexed into the run corpus by this process.")
	m.corpusRegressions = reg.NewCounter("datamimed_corpus_regressions_total",
		"Finished jobs the corpus watchdog judged regressed vs their scenario baseline.")
	m.corpusVerdicts = reg.NewCounterVec("datamimed_corpus_verdicts_total",
		"Corpus watchdog verdicts for indexed runs, by verdict.", "verdict")
	m.corpusBaselineDelta = reg.NewGauge("datamimed_corpus_baseline_delta",
		"Best-error delta of the most recently indexed run vs its scenario baseline (positive is worse).")

	// Fleet observability: remote-shipped span accounting plus the
	// coordinator's own Go runtime health (workers export the matching
	// datamime_worker_go_* families, federated below the registry).
	m.fleetSimRuns = reg.NewCounter("datamimed_fleet_sim_runs_total",
		"Partition simulations executed on remote workers (from shipped spans).")
	m.fleetBusySeconds = reg.NewCounterVec("datamimed_fleet_worker_busy_seconds_total",
		"Remote simulation time per fleet worker ID (from shipped spans).", "worker")
	m.fleetBudgetWaitSeconds = reg.NewCounter("datamimed_fleet_budget_wait_seconds_total",
		"Remote budget-semaphore wait time (from shipped spans).")
	m.fleetCacheProbes = reg.NewCounterVec("datamimed_fleet_cache_probes_total",
		"Worker cache probes observed via shipped spans, by result.", "result")
	telemetry.RegisterRuntimeMetrics(reg, "datamimed")

	reg.NewCollector("datamimed_job_iterations_done",
		"Finished iterations of each active job.",
		"gauge", []string{"job"}, func() []telemetry.Sample {
			var out []telemetry.Sample
			for _, rw := range s.activeJobRows() {
				out = append(out, telemetry.Sample{Labels: []string{rw.id}, Value: float64(rw.iters)})
			}
			return out
		})
	reg.NewCollector("datamimed_job_best_error",
		"Running minimum objective value of each active job.",
		"gauge", []string{"job"}, func() []telemetry.Sample {
			var out []telemetry.Sample
			for _, rw := range s.activeJobRows() {
				if rw.hasBest {
					out = append(out, telemetry.Sample{Labels: []string{rw.id}, Value: rw.best})
				}
			}
			return out
		})
	reg.NewCollector("datamimed_job_sim_cycles",
		"Estimated simulated cycles spent by each active job.",
		"gauge", []string{"job"}, func() []telemetry.Sample {
			var out []telemetry.Sample
			for _, rw := range s.activeJobRows() {
				out = append(out, telemetry.Sample{Labels: []string{rw.id}, Value: rw.simCycles})
			}
			return out
		})

	reg.NewGaugeFunc("datamimed_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })

	return m
}

// observeDispatch feeds one dispatched evaluation's outcome into the
// dispatch latency histogram. Runs on the search goroutines (the
// SearchEvaluator's OnResult is synchronous).
func (m *serverMetrics) observeDispatch(res backend.EvalResult, err error, d time.Duration) {
	if err != nil {
		return
	}
	side := "local"
	if res.Remote {
		side = "remote"
	}
	m.dispatchHist.Observe(side, d)
}

// observeSpan feeds one job span into the contention metrics: phase latency
// always, plus the phase-specific families. Runs on the search goroutines
// (the recorder's OnEvent is synchronous), so it only touches atomics.
func (m *serverMetrics) observeSpan(ev telemetry.Event) {
	if _, fleet := ev.Attrs[telemetry.AttrFleetWorker]; fleet {
		// Shipped remote spans get their own families; the local phase
		// histogram and pool gauges must reflect this process only.
		m.observeFleetSpan(ev)
		return
	}
	m.phaseHist.Observe(ev.Phase, time.Duration(ev.DurNS))
	secs := float64(ev.DurNS) / 1e9
	switch ev.Phase {
	case telemetry.PhaseSimRun:
		m.simRuns.Inc()
		m.workerBusySeconds.With(strconv.Itoa(int(ev.Attrs[telemetry.AttrWorker]))).Add(secs)
	case telemetry.PhaseBudgetWait:
		m.budgetWaitSeconds.Add(secs)
	case telemetry.PhaseGPFit:
		m.gpAppends.Add(ev.Attrs[telemetry.AttrCholeskyAppends])
		m.gpRebuilds.Add(ev.Attrs[telemetry.AttrCholeskyRebuilds])
		if lvl := ev.Attrs[telemetry.AttrJitterLevelMax]; lvl > m.gpJitterLevel.Value() {
			m.gpJitterLevel.Set(lvl)
		}
	}
}

// observeDiagnostics feeds one search-health snapshot into the gp_* families.
// Runs on the search goroutines (the recorder's OnEvent is synchronous).
func (m *serverMetrics) observeDiagnostics(ev telemetry.Event) {
	m.gpLogMarginal.Set(ev.Attrs[telemetry.DiagLogMarginal])
	m.gpCoverage1.Set(ev.Attrs[telemetry.DiagCoverage1])
	m.gpCoverage2.Set(ev.Attrs[telemetry.DiagCoverage2])
	if ev.Attrs[telemetry.DiagJitterLevel] > 0 {
		m.gpJitterEscalations.Inc()
	}
}

// observeFleetSpan accounts one remote-shipped span (already rebased onto
// the coordinator clock and tagged with the fleet worker ID, -1 for the
// local fallback).
func (m *serverMetrics) observeFleetSpan(ev telemetry.Event) {
	secs := float64(ev.DurNS) / 1e9
	wid := strconv.Itoa(int(ev.Attrs[telemetry.AttrFleetWorker]))
	switch ev.Phase {
	case telemetry.PhaseSimRun:
		m.fleetSimRuns.Inc()
		m.fleetBusySeconds.With(wid).Add(secs)
	case telemetry.PhaseBudgetWait:
		m.fleetBudgetWaitSeconds.Add(secs)
	case telemetry.PhaseCacheProbe:
		result := "miss"
		if ev.Attrs[telemetry.AttrCacheHit] > 0 {
			result = "hit"
		}
		m.fleetCacheProbes.With(result).Inc()
	}
}

// activeJobRow is one non-terminal job's progress snapshot for the per-job
// gauge collectors (terminal jobs drop out so the label set stays bounded by
// the queue).
type activeJobRow struct {
	id        string
	iters     int
	best      float64
	hasBest   bool
	simCycles float64
}

func (s *Server) activeJobRows() []activeJobRow {
	var rows []activeJobRow
	for _, j := range s.Jobs() {
		j.mu.Lock()
		if !j.state.terminal() {
			rw := activeJobRow{
				id:        j.id,
				iters:     len(j.trace) + j.skipped,
				simCycles: j.simCycles,
			}
			if len(j.trace) > 0 {
				rw.best = j.trace[len(j.trace)-1].BestError
				rw.hasBest = true
			}
			rows = append(rows, rw)
		}
		j.mu.Unlock()
	}
	return rows
}

// handleMetrics serves the registry in the Prometheus text exposition
// format, followed by the federated datamime_worker_* families scraped from
// the fleet (prefix-disjoint from the registry's datamimed_ families, so the
// concatenation is itself a valid exposition).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.reg.WritePrometheus(w)
	s.federation.WritePrometheus(w)
}
