package service

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// handleMetrics renders operational gauges and counters in the Prometheus
// text exposition format, using only the standard library: jobs by state,
// worker-pool occupancy, evaluation-cache effectiveness, cumulative
// simulated work, search-phase latency histograms, and per-job progress
// gauges for jobs that are still queued or running.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	counts := s.jobCounts()
	fmt.Fprintf(w, "# HELP datamimed_jobs Jobs tracked by the server, by state.\n")
	fmt.Fprintf(w, "# TYPE datamimed_jobs gauge\n")
	for _, st := range allStates() {
		fmt.Fprintf(w, "datamimed_jobs{state=%q} %d\n", st, counts[st])
	}

	fmt.Fprintf(w, "# HELP datamimed_workers Worker-pool size.\n")
	fmt.Fprintf(w, "# TYPE datamimed_workers gauge\n")
	fmt.Fprintf(w, "datamimed_workers %d\n", s.cfg.Workers)
	fmt.Fprintf(w, "# HELP datamimed_workers_busy Workers currently running a job.\n")
	fmt.Fprintf(w, "# TYPE datamimed_workers_busy gauge\n")
	fmt.Fprintf(w, "datamimed_workers_busy %d\n", s.busyWorkers.Load())

	hits, misses, size := s.cache.Stats()
	fmt.Fprintf(w, "# HELP datamimed_eval_cache_hits_total Evaluation-cache hits.\n")
	fmt.Fprintf(w, "# TYPE datamimed_eval_cache_hits_total counter\n")
	fmt.Fprintf(w, "datamimed_eval_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP datamimed_eval_cache_misses_total Evaluation-cache misses.\n")
	fmt.Fprintf(w, "# TYPE datamimed_eval_cache_misses_total counter\n")
	fmt.Fprintf(w, "datamimed_eval_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP datamimed_eval_cache_entries Profiles currently cached.\n")
	fmt.Fprintf(w, "# TYPE datamimed_eval_cache_entries gauge\n")
	fmt.Fprintf(w, "datamimed_eval_cache_entries %d\n", size)

	fmt.Fprintf(w, "# HELP datamimed_evaluations_total Fresh candidate evaluations completed.\n")
	fmt.Fprintf(w, "# TYPE datamimed_evaluations_total counter\n")
	fmt.Fprintf(w, "datamimed_evaluations_total %d\n", s.evalsTotal.Load())
	fmt.Fprintf(w, "# HELP datamimed_evaluations_skipped_total Evaluations dropped by the retry-skip policy.\n")
	fmt.Fprintf(w, "# TYPE datamimed_evaluations_skipped_total counter\n")
	fmt.Fprintf(w, "datamimed_evaluations_skipped_total %d\n", s.skippedTotal.Load())
	fmt.Fprintf(w, "# HELP datamimed_evaluations_retried_total Evaluations that succeeded on their perturbed-seed retry.\n")
	fmt.Fprintf(w, "# TYPE datamimed_evaluations_retried_total counter\n")
	fmt.Fprintf(w, "datamimed_evaluations_retried_total %d\n", s.retriedTotal.Load())

	fmt.Fprintf(w, "# HELP datamimed_simulated_cycles_total Estimated simulated cycles spent profiling.\n")
	fmt.Fprintf(w, "# TYPE datamimed_simulated_cycles_total counter\n")
	fmt.Fprintf(w, "datamimed_simulated_cycles_total %g\n", s.cyclesTotal.Load())

	fmt.Fprintf(w, "# HELP datamimed_sse_subscribers Open /events subscriptions.\n")
	fmt.Fprintf(w, "# TYPE datamimed_sse_subscribers gauge\n")
	fmt.Fprintf(w, "datamimed_sse_subscribers %d\n", s.sseActive.Load())

	s.writePhaseHistograms(w)
	s.writeJobGauges(w)

	fmt.Fprintf(w, "# HELP datamimed_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE datamimed_uptime_seconds gauge\n")
	fmt.Fprintf(w, "datamimed_uptime_seconds %g\n", time.Since(s.started).Seconds())
}

// writePhaseHistograms renders the search-phase latency histogram family
// (one series set per observed phase). Empty until a telemetry-enabled job
// has run a phase.
func (s *Server) writePhaseHistograms(w http.ResponseWriter) {
	labels := s.phaseHist.Labels()
	if len(labels) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP datamimed_phase_seconds Search phase latency, by phase.\n")
	fmt.Fprintf(w, "# TYPE datamimed_phase_seconds histogram\n")
	for _, phase := range labels {
		h := s.phaseHist.Get(phase)
		if h == nil {
			continue
		}
		snap := h.Snapshot()
		for i, b := range snap.Bounds {
			fmt.Fprintf(w, "datamimed_phase_seconds_bucket{phase=%q,le=%q} %d\n",
				phase, formatBound(b), snap.Cumulative[i])
		}
		fmt.Fprintf(w, "datamimed_phase_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n",
			phase, snap.Count)
		fmt.Fprintf(w, "datamimed_phase_seconds_sum{phase=%q} %g\n", phase, snap.Sum)
		fmt.Fprintf(w, "datamimed_phase_seconds_count{phase=%q} %d\n", phase, snap.Count)
	}
}

// writeJobGauges renders per-job progress gauges for non-terminal jobs
// (terminal jobs drop out so the label set stays bounded by the queue).
func (s *Server) writeJobGauges(w http.ResponseWriter) {
	type row struct {
		id        string
		iters     int
		best      float64
		hasBest   bool
		simCycles float64
	}
	var rows []row
	for _, j := range s.Jobs() {
		j.mu.Lock()
		if !j.state.terminal() {
			rw := row{
				id:        j.id,
				iters:     len(j.trace) + j.skipped,
				simCycles: j.simCycles,
			}
			if len(j.trace) > 0 {
				rw.best = j.trace[len(j.trace)-1].BestError
				rw.hasBest = true
			}
			rows = append(rows, rw)
		}
		j.mu.Unlock()
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP datamimed_job_iterations_done Finished iterations of each active job.\n")
	fmt.Fprintf(w, "# TYPE datamimed_job_iterations_done gauge\n")
	for _, rw := range rows {
		fmt.Fprintf(w, "datamimed_job_iterations_done{job=%q} %d\n", rw.id, rw.iters)
	}
	fmt.Fprintf(w, "# HELP datamimed_job_best_error Running minimum objective value of each active job.\n")
	fmt.Fprintf(w, "# TYPE datamimed_job_best_error gauge\n")
	for _, rw := range rows {
		if rw.hasBest {
			fmt.Fprintf(w, "datamimed_job_best_error{job=%q} %g\n", rw.id, rw.best)
		}
	}
	fmt.Fprintf(w, "# HELP datamimed_job_sim_cycles Estimated simulated cycles spent by each active job.\n")
	fmt.Fprintf(w, "# TYPE datamimed_job_sim_cycles gauge\n")
	for _, rw := range rows {
		fmt.Fprintf(w, "datamimed_job_sim_cycles{job=%q} %g\n", rw.id, rw.simCycles)
	}
}

// formatBound renders a histogram upper bound the way Prometheus clients
// expect (shortest round-trippable decimal).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
