package service

import (
	"net/http"
	"strconv"
	"time"

	"datamime/internal/telemetry"
)

// serverMetrics is the server's unified metrics registry: every operational
// counter, gauge, and histogram /metrics exports lives here, registered once
// at startup. Hot-path code increments the typed handles; state that is
// already tracked elsewhere (the job table, the evaluation cache, per-job
// progress) is read at scrape time through collector callbacks, so the
// dynamic label sets — jobs by state, per-job gauges — stay exact without
// double bookkeeping.
type serverMetrics struct {
	reg *telemetry.Registry

	// Worker-pool and evaluation counters (incremented by the job workers).
	workersBusy  *telemetry.Gauge
	evalsTotal   *telemetry.Counter
	skippedTotal *telemetry.Counter
	retriedTotal *telemetry.Counter
	cyclesTotal  *telemetry.Counter

	// SSE subscription gauge and slow-consumer drop counter.
	sseActive  *telemetry.Gauge
	sseDropped *telemetry.Counter

	// Parallel-search contention metrics, fed from telemetry spans by
	// observeSpan: profiler-pool occupancy per worker, budget-semaphore
	// wait time, and the GP surrogate's incremental-vs-refactorization
	// balance with its conditioning diagnostic.
	simRuns           *telemetry.Counter
	workerBusySeconds *telemetry.CounterVec
	budgetWaitSeconds *telemetry.Counter
	gpAppends         *telemetry.Counter
	gpRebuilds        *telemetry.Counter
	gpJitterLevel     *telemetry.Gauge

	// phaseHist aggregates search-phase latencies across all jobs;
	// populated only when telemetry is on.
	phaseHist *telemetry.HistogramVec
}

// newServerMetrics builds the registry. Collector callbacks close over the
// server and run at scrape time; they take the same locks the HTTP handlers
// do and never touch the search hot path.
func newServerMetrics(s *Server) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{reg: reg}

	reg.NewCollector("datamimed_jobs", "Jobs tracked by the server, by state.",
		"gauge", []string{"state"}, func() []telemetry.Sample {
			counts := s.jobCounts()
			out := make([]telemetry.Sample, 0, len(allStates()))
			for _, st := range allStates() {
				out = append(out, telemetry.Sample{Labels: []string{string(st)}, Value: float64(counts[st])})
			}
			return out
		})
	reg.NewGaugeFunc("datamimed_workers", "Worker-pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	m.workersBusy = reg.NewGauge("datamimed_workers_busy", "Workers currently running a job.")

	reg.NewCounterFunc("datamimed_eval_cache_hits_total", "Evaluation-cache hits.",
		func() float64 { hits, _, _ := s.cache.Stats(); return float64(hits) })
	reg.NewCounterFunc("datamimed_eval_cache_misses_total", "Evaluation-cache misses.",
		func() float64 { _, misses, _ := s.cache.Stats(); return float64(misses) })
	reg.NewGaugeFunc("datamimed_eval_cache_entries", "Profiles currently cached.",
		func() float64 { _, _, size := s.cache.Stats(); return float64(size) })

	m.evalsTotal = reg.NewCounter("datamimed_evaluations_total",
		"Fresh candidate evaluations completed.")
	m.skippedTotal = reg.NewCounter("datamimed_evaluations_skipped_total",
		"Evaluations dropped by the retry-skip policy.")
	m.retriedTotal = reg.NewCounter("datamimed_evaluations_retried_total",
		"Evaluations that succeeded on their perturbed-seed retry.")
	m.cyclesTotal = reg.NewCounter("datamimed_simulated_cycles_total",
		"Estimated simulated cycles spent profiling.")

	m.sseActive = reg.NewGauge("datamimed_sse_subscribers", "Open /events subscriptions.")
	m.sseDropped = reg.NewCounter("datamimed_sse_dropped_total",
		"Events dropped from slow SSE subscribers' backlogs.")

	m.simRuns = reg.NewCounter("datamimed_sim_runs_total",
		"Partition simulations executed by the profiler pools.")
	m.workerBusySeconds = reg.NewCounterVec("datamimed_profile_worker_busy_seconds_total",
		"Simulation time per profiler-pool worker index.", "worker")
	m.budgetWaitSeconds = reg.NewCounter("datamimed_budget_wait_seconds_total",
		"Time profiler runs spent blocked on the shared simulation budget.")
	m.gpAppends = reg.NewCounter("datamimed_gp_cholesky_appends_total",
		"GP surrogate factor updates taking the incremental append fast path.")
	m.gpRebuilds = reg.NewCounter("datamimed_gp_cholesky_rebuilds_total",
		"GP surrogate factor updates falling back to full refactorization.")
	m.gpJitterLevel = reg.NewGauge("datamimed_gp_jitter_level_max",
		"Highest GP jitter-escalation level observed (conditioning diagnostic).")

	m.phaseHist = reg.NewHistogramVec("datamimed_phase_seconds",
		"Search phase latency, by phase.", "phase", nil)

	reg.NewCollector("datamimed_job_iterations_done",
		"Finished iterations of each active job.",
		"gauge", []string{"job"}, func() []telemetry.Sample {
			var out []telemetry.Sample
			for _, rw := range s.activeJobRows() {
				out = append(out, telemetry.Sample{Labels: []string{rw.id}, Value: float64(rw.iters)})
			}
			return out
		})
	reg.NewCollector("datamimed_job_best_error",
		"Running minimum objective value of each active job.",
		"gauge", []string{"job"}, func() []telemetry.Sample {
			var out []telemetry.Sample
			for _, rw := range s.activeJobRows() {
				if rw.hasBest {
					out = append(out, telemetry.Sample{Labels: []string{rw.id}, Value: rw.best})
				}
			}
			return out
		})
	reg.NewCollector("datamimed_job_sim_cycles",
		"Estimated simulated cycles spent by each active job.",
		"gauge", []string{"job"}, func() []telemetry.Sample {
			var out []telemetry.Sample
			for _, rw := range s.activeJobRows() {
				out = append(out, telemetry.Sample{Labels: []string{rw.id}, Value: rw.simCycles})
			}
			return out
		})

	reg.NewGaugeFunc("datamimed_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })

	return m
}

// observeSpan feeds one job span into the contention metrics: phase latency
// always, plus the phase-specific families. Runs on the search goroutines
// (the recorder's OnEvent is synchronous), so it only touches atomics.
func (m *serverMetrics) observeSpan(ev telemetry.Event) {
	m.phaseHist.Observe(ev.Phase, time.Duration(ev.DurNS))
	secs := float64(ev.DurNS) / 1e9
	switch ev.Phase {
	case telemetry.PhaseSimRun:
		m.simRuns.Inc()
		m.workerBusySeconds.With(strconv.Itoa(int(ev.Attrs[telemetry.AttrWorker]))).Add(secs)
	case telemetry.PhaseBudgetWait:
		m.budgetWaitSeconds.Add(secs)
	case telemetry.PhaseGPFit:
		m.gpAppends.Add(ev.Attrs[telemetry.AttrCholeskyAppends])
		m.gpRebuilds.Add(ev.Attrs[telemetry.AttrCholeskyRebuilds])
		if lvl := ev.Attrs[telemetry.AttrJitterLevelMax]; lvl > m.gpJitterLevel.Value() {
			m.gpJitterLevel.Set(lvl)
		}
	}
}

// activeJobRow is one non-terminal job's progress snapshot for the per-job
// gauge collectors (terminal jobs drop out so the label set stays bounded by
// the queue).
type activeJobRow struct {
	id        string
	iters     int
	best      float64
	hasBest   bool
	simCycles float64
}

func (s *Server) activeJobRows() []activeJobRow {
	var rows []activeJobRow
	for _, j := range s.Jobs() {
		j.mu.Lock()
		if !j.state.terminal() {
			rw := activeJobRow{
				id:        j.id,
				iters:     len(j.trace) + j.skipped,
				simCycles: j.simCycles,
			}
			if len(j.trace) > 0 {
				rw.best = j.trace[len(j.trace)-1].BestError
				rw.hasBest = true
			}
			rows = append(rows, rw)
		}
		j.mu.Unlock()
	}
	return rows
}

// handleMetrics serves the registry in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.reg.WritePrometheus(w)
}
