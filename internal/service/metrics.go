package service

import (
	"fmt"
	"net/http"
	"time"
)

// handleMetrics renders operational gauges and counters in the Prometheus
// text exposition format, using only the standard library: jobs by state,
// worker-pool occupancy, evaluation-cache effectiveness, and cumulative
// simulated work.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	counts := s.jobCounts()
	fmt.Fprintf(w, "# HELP datamimed_jobs Jobs tracked by the server, by state.\n")
	fmt.Fprintf(w, "# TYPE datamimed_jobs gauge\n")
	for _, st := range allStates() {
		fmt.Fprintf(w, "datamimed_jobs{state=%q} %d\n", st, counts[st])
	}

	fmt.Fprintf(w, "# HELP datamimed_workers Worker-pool size.\n")
	fmt.Fprintf(w, "# TYPE datamimed_workers gauge\n")
	fmt.Fprintf(w, "datamimed_workers %d\n", s.cfg.Workers)
	fmt.Fprintf(w, "# HELP datamimed_workers_busy Workers currently running a job.\n")
	fmt.Fprintf(w, "# TYPE datamimed_workers_busy gauge\n")
	fmt.Fprintf(w, "datamimed_workers_busy %d\n", s.busyWorkers.Load())

	hits, misses, size := s.cache.Stats()
	fmt.Fprintf(w, "# HELP datamimed_eval_cache_hits_total Evaluation-cache hits.\n")
	fmt.Fprintf(w, "# TYPE datamimed_eval_cache_hits_total counter\n")
	fmt.Fprintf(w, "datamimed_eval_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP datamimed_eval_cache_misses_total Evaluation-cache misses.\n")
	fmt.Fprintf(w, "# TYPE datamimed_eval_cache_misses_total counter\n")
	fmt.Fprintf(w, "datamimed_eval_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP datamimed_eval_cache_entries Profiles currently cached.\n")
	fmt.Fprintf(w, "# TYPE datamimed_eval_cache_entries gauge\n")
	fmt.Fprintf(w, "datamimed_eval_cache_entries %d\n", size)

	fmt.Fprintf(w, "# HELP datamimed_evaluations_total Fresh candidate evaluations completed.\n")
	fmt.Fprintf(w, "# TYPE datamimed_evaluations_total counter\n")
	fmt.Fprintf(w, "datamimed_evaluations_total %d\n", s.evalsTotal.Load())
	fmt.Fprintf(w, "# HELP datamimed_evaluations_skipped_total Evaluations dropped by the retry-skip policy.\n")
	fmt.Fprintf(w, "# TYPE datamimed_evaluations_skipped_total counter\n")
	fmt.Fprintf(w, "datamimed_evaluations_skipped_total %d\n", s.skippedTotal.Load())
	fmt.Fprintf(w, "# HELP datamimed_evaluations_retried_total Evaluations that succeeded on their perturbed-seed retry.\n")
	fmt.Fprintf(w, "# TYPE datamimed_evaluations_retried_total counter\n")
	fmt.Fprintf(w, "datamimed_evaluations_retried_total %d\n", s.retriedTotal.Load())

	s.cyclesMu.Lock()
	cycles := s.cyclesTotal
	s.cyclesMu.Unlock()
	fmt.Fprintf(w, "# HELP datamimed_simulated_cycles_total Estimated simulated cycles spent profiling.\n")
	fmt.Fprintf(w, "# TYPE datamimed_simulated_cycles_total counter\n")
	fmt.Fprintf(w, "datamimed_simulated_cycles_total %g\n", cycles)

	fmt.Fprintf(w, "# HELP datamimed_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE datamimed_uptime_seconds gauge\n")
	fmt.Fprintf(w, "datamimed_uptime_seconds %g\n", time.Since(s.started).Seconds())
}
