package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"datamime/internal/core"
	"datamime/internal/telemetry"
)

// evalTelemetryEvent converts one core.EvalEvent into the telemetry event
// that enters the job's event log, carrying the artifact attribute
// conventions: error/best_error, 0/1 flags, per-metric EMD attribution, and
// per-phase wall-clock timings.
func evalTelemetryEvent(jobID string, ev core.EvalEvent) telemetry.Event {
	attrs := make(map[string]float64, 4+len(ev.Record.Components)+len(ev.PhaseNS))
	if !ev.Skipped {
		attrs[telemetry.AttrError] = ev.Record.Error
		attrs[telemetry.AttrBestError] = ev.Record.BestError
	}
	if ev.CacheHit {
		attrs[telemetry.AttrCacheHit] = 1
	}
	if ev.Retried {
		attrs[telemetry.AttrRetried] = 1
	}
	if ev.Replayed {
		attrs[telemetry.AttrReplayed] = 1
	}
	if ev.SimCycles > 0 {
		attrs[telemetry.AttrSimCycles] = ev.SimCycles
	}
	for k, v := range ev.Record.Components {
		attrs[telemetry.EMDPrefix+k] = v
	}
	for ph, ns := range ev.PhaseNS {
		attrs[telemetry.PhaseNSPrefix+ph+"_ns"] = float64(ns)
	}
	return telemetry.Event{
		Type:    telemetry.TypeEval,
		Job:     jobID,
		Iter:    ev.Record.Iteration,
		TimeNS:  time.Now().UnixNano(),
		Skipped: ev.Skipped,
		Msg:     ev.Err,
		Params:  ev.Record.Params,
		Attrs:   attrs,
	}
}

// evalEventFromRecord synthesizes an eval event from a bare trace record,
// for artifacts of jobs restored from disk (whose in-memory event log is
// gone; checkpoints persist the trace but not cache/timing detail).
func evalEventFromRecord(jobID string, rec core.IterationRecord) telemetry.Event {
	attrs := make(map[string]float64, 2+len(rec.Components))
	attrs[telemetry.AttrError] = rec.Error
	attrs[telemetry.AttrBestError] = rec.BestError
	for k, v := range rec.Components {
		attrs[telemetry.EMDPrefix+k] = v
	}
	return telemetry.Event{
		Type:   telemetry.TypeEval,
		Job:    jobID,
		Iter:   rec.Iteration,
		Params: rec.Params,
		Attrs:  attrs,
	}
}

// handleEvents streams a job's telemetry events as Server-Sent Events:
// one `event: eval` per iteration in iteration order, interleaved with
// `event: span` phase timings when the job runs with telemetry, closing
// with `event: done` once the job reaches a terminal state. Subscribers
// joining mid-run first receive the full backlog.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	s.metrics.sseActive.Add(1)
	defer s.metrics.sseActive.Add(-1)

	idx := 0
	for {
		j.mu.Lock()
		if idx > len(j.events) {
			idx = 0 // the event log was reset by a resume; restart
		}
		// Slow-consumer backpressure: the search goroutine only ever
		// appends to the log and never waits for subscribers, so a stalled
		// connection shows up here as an oversized pending batch. Cap it by
		// dropping the oldest events and telling the subscriber how many it
		// missed, instead of ballooning the copy (and this handler's write
		// time) without bound.
		dropped := 0
		if backlog := len(j.events) - idx; backlog > s.cfg.SSEMaxBacklog {
			dropped = backlog - s.cfg.SSEMaxBacklog
			idx += dropped
		}
		batch := append([]telemetry.Event(nil), j.events[idx:]...)
		idx = len(j.events)
		state := j.state
		sig := j.sigLocked()
		j.mu.Unlock()

		if dropped > 0 {
			s.metrics.sseDropped.Add(float64(dropped))
			if _, err := fmt.Fprintf(w, "event: dropped\ndata: {\"dropped\":%d}\n\n", dropped); err != nil {
				return
			}
		}
		for _, ev := range batch {
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return
			}
		}
		if len(batch) > 0 {
			fl.Flush()
		}
		if state.terminal() {
			fmt.Fprintf(w, "event: done\ndata: {\"state\":%q}\n\n", state)
			fl.Flush()
			return
		}
		select {
		case <-sig:
		case <-r.Context().Done():
			return
		case <-s.rootCtx.Done():
			return
		}
	}
}

// artifactEvents assembles a job's complete artifact event sequence: the
// header log line followed by every recorded event. Jobs restored from disk
// (no in-memory event log) get eval events synthesized from the
// checkpoint-rebuilt trace.
func artifactEvents(j *Job) []telemetry.Event {
	j.mu.Lock()
	events := append([]telemetry.Event(nil), j.events...)
	trace := append([]core.IterationRecord(nil), j.trace...)
	state := j.state
	j.mu.Unlock()
	if len(events) == 0 {
		for _, rec := range trace {
			events = append(events, evalEventFromRecord(j.ID(), rec))
		}
	}
	header := telemetry.Event{
		Type: telemetry.TypeLog,
		Job:  j.ID(),
		Msg:  fmt.Sprintf("datamime run artifact: state=%s events=%d", state, len(events)),
	}
	return append([]telemetry.Event{header}, events...)
}

// handleArtifact exports a job's JSONL run artifact: a log header line
// followed by every recorded event. telemetry.ReplayBestTrace over the
// artifact reconstructs the job's best-error series exactly.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", j.ID()+".jsonl"))
	_ = telemetry.WriteJSONL(w, artifactEvents(j))
}

// handleTrace exports a job's event log as Chrome/Perfetto trace-event JSON
// (load it at https://ui.perfetto.dev). Jobs restored from disk have no
// timed events, so their traces are empty by design — the checkpoint
// persists results, not wall-clock timings.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", j.ID()+".trace.json"))
	_ = telemetry.WriteTrace(w, artifactEvents(j))
}
