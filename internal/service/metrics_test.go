package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// metricSample is one parsed exposition line: name{labels} value.
type metricSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition parses Prometheus text format strictly enough to catch
// malformed output: every non-comment line must be name{labels} value with
// well-formed quoted label values and a parseable float.
func parseExposition(t *testing.T, body string) []metricSample {
	t.Helper()
	var out []metricSample
	for ln, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line
		name := rest
		labels := map[string]string{}
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			name = rest[:i]
			end := strings.IndexByte(rest, '}')
			if end < i {
				t.Fatalf("line %d: unterminated label block: %q", ln+1, line)
			}
			for _, kv := range strings.Split(rest[i+1:end], ",") {
				eq := strings.IndexByte(kv, '=')
				if eq < 0 {
					t.Fatalf("line %d: malformed label %q in %q", ln+1, kv, line)
				}
				val, err := strconv.Unquote(kv[eq+1:])
				if err != nil {
					t.Fatalf("line %d: label value %q not quoted: %v", ln+1, kv, err)
				}
				labels[kv[:eq]] = val
			}
			rest = rest[end+1:]
		} else if sp := strings.IndexByte(rest, ' '); sp >= 0 {
			name = rest[:sp]
			rest = rest[sp:]
		}
		fields := strings.Fields(rest)
		if len(fields) != 1 {
			t.Fatalf("line %d: want one value, got %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		out = append(out, metricSample{name: name, labels: labels, value: v})
	}
	return out
}

func scrape(t *testing.T, ts *httptest.Server) []metricSample {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	return parseExposition(t, string(data))
}

// TestMetricsExposition: the /metrics output is well-formed, the new phase
// histogram family is internally consistent (le ordering, cumulative
// monotonicity, +Inf == count), and active jobs get per-job gauges that
// disappear once the job terminates.
func TestMetricsExposition(t *testing.T) {
	svc := newTelemetryServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", testSpec(500, 17), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitFor(t, "job to make progress", func() bool {
		var st JobStatus
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.TraceLen >= 2
	})

	samples := scrape(t, ts)
	byName := map[string][]metricSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}
	for _, want := range []string{
		"datamimed_jobs", "datamimed_workers", "datamimed_workers_busy",
		"datamimed_eval_cache_hits_total", "datamimed_evaluations_total",
		"datamimed_simulated_cycles_total", "datamimed_sse_subscribers",
		"datamimed_uptime_seconds",
	} {
		if len(byName[want]) == 0 {
			t.Errorf("missing metric family %s", want)
		}
	}

	// Histogram family: group buckets by phase and verify each series.
	buckets := map[string][]metricSample{}
	for _, s := range byName["datamimed_phase_seconds_bucket"] {
		buckets[s.labels["phase"]] = append(buckets[s.labels["phase"]], s)
	}
	if len(buckets) == 0 {
		t.Fatal("no datamimed_phase_seconds_bucket series for a telemetry-enabled running job")
	}
	sums := map[string]float64{}
	for _, s := range byName["datamimed_phase_seconds_sum"] {
		sums[s.labels["phase"]] = s.value
	}
	counts := map[string]float64{}
	for _, s := range byName["datamimed_phase_seconds_count"] {
		counts[s.labels["phase"]] = s.value
	}
	for _, phase := range []string{"propose", "generate", "profile", "observe"} {
		if len(buckets[phase]) == 0 {
			t.Errorf("no bucket series for phase %q", phase)
		}
	}
	for phase, bs := range buckets {
		// le values must already be in ascending order with a final +Inf,
		// and cumulative counts monotone up to the count series.
		var prevLe float64
		var prevCum float64
		sawInf := false
		for i, b := range bs {
			le := b.labels["le"]
			if le == "+Inf" {
				if i != len(bs)-1 {
					t.Fatalf("phase %s: +Inf bucket not last", phase)
				}
				sawInf = true
			} else {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("phase %s: bad le %q", phase, le)
				}
				if i > 0 && v <= prevLe {
					t.Fatalf("phase %s: le not ascending at %g", phase, v)
				}
				prevLe = v
			}
			if b.value < prevCum {
				t.Fatalf("phase %s: bucket counts not monotone", phase)
			}
			prevCum = b.value
		}
		if !sawInf {
			t.Fatalf("phase %s: no +Inf bucket", phase)
		}
		if prevCum != counts[phase] {
			t.Fatalf("phase %s: +Inf bucket %g != count %g", phase, prevCum, counts[phase])
		}
		if counts[phase] > 0 && sums[phase] < 0 {
			t.Fatalf("phase %s: negative sum %g", phase, sums[phase])
		}
	}

	// Per-job gauges exist while the job runs…
	foundGauge := false
	for _, s := range byName["datamimed_job_iterations_done"] {
		if s.labels["job"] == submitted.ID {
			foundGauge = true
			if s.value < 2 {
				t.Errorf("job gauge %g, want >= 2", s.value)
			}
		}
	}
	if !foundGauge {
		t.Errorf("no datamimed_job_iterations_done gauge for running job %s", submitted.ID)
	}

	// …and disappear once it terminates.
	if code := httpJSON(t, ts, "POST", "/jobs/"+submitted.ID+"/cancel", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel = %d", code)
	}
	waitFor(t, "job to cancel", func() bool {
		var st JobStatus
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State == JobCanceled
	})
	for _, s := range scrape(t, ts) {
		if strings.HasPrefix(s.name, "datamimed_job_") {
			t.Fatalf("per-job gauge %s{job=%q} survived job termination", s.name, s.labels["job"])
		}
	}
}

// TestMetricsWithoutTelemetry: with telemetry off the histogram family is
// absent but the exposition stays well-formed.
func TestMetricsWithoutTelemetry(t *testing.T) {
	svc := newTestServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var names []string
	for _, s := range scrape(t, ts) {
		names = append(names, s.name)
	}
	sort.Strings(names)
	for _, n := range names {
		if strings.HasPrefix(n, "datamimed_phase_seconds") {
			t.Fatalf("phase histogram %s present with telemetry disabled", n)
		}
	}
	if len(names) == 0 {
		t.Fatal("empty exposition")
	}
}
