package service

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"datamime/internal/inspect"
	"datamime/internal/profile"
	"datamime/internal/sim"
)

// testTargetProfile profiles the test generator's benchmark at a fixed point
// with the test budgets, yielding an inline target for ProfileObjective jobs
// without the cost of a real workload target.
func testTargetProfile(t *testing.T) []byte {
	t.Helper()
	machine, err := sim.MachineByName("broadwell")
	if err != nil {
		t.Fatal(err)
	}
	pr := profile.New(machine)
	pr.WindowCycles = 60_000
	pr.Windows = 4
	pr.WarmupWindows = 1
	pr.SkipCurves = true
	target, err := pr.Profile(testGenerator().Benchmark([]float64{60_000, 0.7, 128}), 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := target.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// profileSpec builds a fast ProfileObjective job spec from an inline target.
func profileSpec(target []byte, iterations int, seed uint64) JobSpec {
	spec := testSpec(iterations, seed)
	spec.Metric = ""
	spec.MetricValue = 0
	spec.TargetProfile = target
	return spec
}

// TestProfilesEndpoint: a finished profile-objective job serves a complete
// target/best profile pair with per-component attribution.
func TestProfilesEndpoint(t *testing.T) {
	svc := newTestServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	spec := profileSpec(testTargetProfile(t), 6, 5)
	if code := httpJSON(t, ts, "POST", "/jobs", spec, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitFor(t, "job to succeed", func() bool {
		var st JobStatus
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State == JobSucceeded
	})

	var doc inspect.ProfilesDoc
	if code := httpJSON(t, ts, "GET", "/jobs/"+submitted.ID+"/profiles", nil, &doc); code != http.StatusOK {
		t.Fatalf("profiles = %d", code)
	}
	if !doc.Complete() {
		t.Fatalf("profiles doc incomplete: target=%v best=%v", doc.Target != nil, doc.Best != nil)
	}
	if doc.Job != submitted.ID {
		t.Fatalf("doc.Job = %q, want %q", doc.Job, submitted.ID)
	}
	if len(doc.Components) == 0 {
		t.Fatal("profiles doc has no component attribution")
	}

	if code := httpJSON(t, ts, "GET", "/jobs/nope/profiles", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown job profiles = %d, want 404", code)
	}
}

// TestReportEndpoint: a finished job serves a self-contained HTML report, and
// serving it twice yields byte-identical output (the determinism criterion at
// the service boundary).
func TestReportEndpoint(t *testing.T) {
	svc := newTestServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	spec := profileSpec(testTargetProfile(t), 6, 9)
	if code := httpJSON(t, ts, "POST", "/jobs", spec, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitFor(t, "job to succeed", func() bool {
		var st JobStatus
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State == JobSucceeded
	})

	fetch := func() string {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/jobs/" + submitted.ID + "/report")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
			t.Fatalf("Content-Type = %q, want text/html", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	html := fetch()
	for _, want := range []string{"<svg", "Error attribution", submitted.ID, "eCDF"} {
		if !strings.Contains(html, want) {
			t.Fatalf("report HTML missing %q", want)
		}
	}
	// Self-contained: no external fetches.
	for _, banned := range []string{"http://", "https://", "src="} {
		if strings.Contains(html, banned) {
			t.Fatalf("report HTML not self-contained: found %q", banned)
		}
	}
	if again := fetch(); !bytes.Equal([]byte(html), []byte(again)) {
		t.Fatal("report HTML differs between identical requests")
	}

	if code := httpJSON(t, ts, "GET", "/jobs/nope/report", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown job report = %d, want 404", code)
	}
}

// TestProfilesRecoveredAfterRestart: a job restored from its checkpoint after
// a restart (in-memory profiles gone) recovers the target/best pair through
// the shared evaluation cache by re-deriving the run's content addresses.
func TestProfilesRecoveredAfterRestart(t *testing.T) {
	dir := t.TempDir()
	svc := newTestServer(t, dir)
	ts := httptest.NewServer(svc.Handler())

	var submitted struct {
		ID string `json:"id"`
	}
	// A workload job caches its target under a spec-derived key, which the
	// recovery path can rebuild; kv-service-test evaluations populate the
	// best-point entry the same way. Workload targets are slow, so keep the
	// profiling budgets minimal.
	spec := JobSpec{
		Workload:   "mem-fb",
		Iterations: 4,
		Parallel:   2,
		Seed:       11,
		Optimizer:  "random",
		Profiling: &ProfilingSpec{
			WindowCycles:  60_000,
			Windows:       4,
			WarmupWindows: 1,
			SkipCurves:    true,
		},
	}
	if code := httpJSON(t, ts, "POST", "/jobs", spec, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitFor(t, "job to succeed", func() bool {
		var st JobStatus
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State == JobSucceeded
	})
	ts.Close()
	svc.Close()

	// Restart: the restored job has no in-memory profiles, and this server's
	// cache is cold — warm it the way the original run did, by resubmitting
	// an identical job (target + best evaluations are content-addressed, so
	// the second run re-creates the same entries).
	svc2 := newTestServer(t, dir)
	defer svc2.Close()
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()

	var resubmitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts2, "POST", "/jobs", spec, &resubmitted); code != http.StatusAccepted {
		t.Fatalf("resubmit = %d", code)
	}
	waitFor(t, "resubmitted job to succeed", func() bool {
		var st JobStatus
		httpJSON(t, ts2, "GET", "/jobs/"+resubmitted.ID, nil, &st)
		return st.State == JobSucceeded
	})

	// The restored original job now serves a complete pair from the warmed
	// cache.
	var doc inspect.ProfilesDoc
	if code := httpJSON(t, ts2, "GET", "/jobs/"+submitted.ID+"/profiles", nil, &doc); code != http.StatusOK {
		t.Fatalf("profiles = %d", code)
	}
	if !doc.Complete() {
		t.Fatalf("restored profiles doc incomplete: target=%v best=%v",
			doc.Target != nil, doc.Best != nil)
	}
}
