package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"datamime/internal/core"
	"datamime/internal/harness"
	"datamime/internal/opt"
)

// persistedJob is the on-disk representation of one job: everything needed
// to resume it (spec + checkpoint) or to report it after a restart
// (state, error, result). Profiles are deliberately not persisted — they
// are reproducible from the checkpoint, and the evaluation cache makes the
// reproduction cheap.
type persistedJob struct {
	ID         string          `json:"id"`
	Spec       JobSpec         `json:"spec"`
	State      JobState        `json:"state"`
	Error      string          `json:"error,omitempty"`
	Checkpoint core.Checkpoint `json:"checkpoint"`
	Result     *JobResult      `json:"result,omitempty"`
	Created    time.Time       `json:"created"`
	Started    time.Time       `json:"started,omitempty"`
	Finished   time.Time       `json:"finished,omitempty"`
}

// persist writes the job's current state atomically (tmp + rename) into the
// checkpoint directory. A no-op when persistence is disabled.
func (s *Server) persist(job *Job) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	job.mu.Lock()
	p := persistedJob{
		ID:         job.id,
		Spec:       job.spec,
		State:      job.state,
		Error:      job.errMsg,
		Checkpoint: job.checkpoint.Clone(),
		Result:     job.result,
		Created:    job.created,
		Started:    job.started,
		Finished:   job.finished,
	}
	job.mu.Unlock()
	if p.State == JobRunning {
		// A running job that dies with the server must come back as
		// queued-with-checkpoint.
		p.State = JobQueued
	}
	data, err := json.Marshal(p)
	if err != nil {
		s.logf("job %s: encoding checkpoint: %v", job.id, err)
		return
	}
	path := filepath.Join(s.cfg.CheckpointDir, p.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		s.logf("job %s: writing checkpoint: %v", job.id, err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		s.logf("job %s: committing checkpoint: %v", job.id, err)
	}
}

// loadCheckpoints restores jobs from the checkpoint directory: finished
// jobs become queryable again (their traces rebuilt from checkpoints), and
// unfinished ones are re-queued with their checkpoints as warm starts.
func (s *Server) loadCheckpoints() error {
	dir := s.cfg.CheckpointDir
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: checkpoint dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("service: checkpoint dir: %w", err)
	}
	var loaded []persistedJob
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("service: reading checkpoint %s: %w", name, err)
		}
		var p persistedJob
		if err := json.Unmarshal(data, &p); err != nil {
			s.logf("skipping corrupt checkpoint %s: %v", name, err)
			continue
		}
		loaded = append(loaded, p)
	}
	sort.Slice(loaded, func(i, j int) bool { return jobSeq(loaded[i].ID) < jobSeq(loaded[j].ID) })

	for _, p := range loaded {
		job := &Job{
			id:         p.ID,
			spec:       p.Spec,
			state:      p.State,
			errMsg:     p.Error,
			checkpoint: p.Checkpoint,
			result:     p.Result,
			done:       make(chan struct{}),
			created:    p.Created,
			started:    p.Started,
			finished:   p.Finished,
		}
		if seq := jobSeq(p.ID); seq >= s.nextID {
			s.nextID = seq + 1
		}
		// Rebuild the trace for finished jobs so status and result stay
		// queryable across restarts; resumed jobs rebuild theirs live.
		if job.state.terminal() {
			close(job.done)
			if space, err := s.specSpace(p.Spec); err == nil {
				job.trace = traceFromCheckpoint(space, p.Checkpoint)
				job.evals = len(job.trace)
				job.skipped = len(p.Checkpoint.Entries) - len(job.trace)
			}
		}
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
		if !job.state.terminal() {
			job.state = JobQueued
			s.queue <- job
			s.logf("job %s restored with %d checkpointed iterations; re-queued",
				job.id, len(p.Checkpoint.Entries))
		}
	}
	return nil
}

// specSpace resolves the parameter space a spec searches, for trace
// reconstruction at load time.
func (s *Server) specSpace(spec JobSpec) (*opt.Space, error) {
	if spec.Generator != "" {
		gen, err := s.generator(spec.Generator)
		if err != nil {
			return nil, err
		}
		return gen.Space, nil
	}
	w, err := harness.WorkloadByName(spec.Workload)
	if err != nil {
		return nil, err
	}
	return w.Generator.Space, nil
}

// jobSeq extracts the numeric suffix of a job ID ("job-17" → 17); unknown
// formats sort first.
func jobSeq(id string) int {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return 0
	}
	n, err := strconv.Atoi(id[len(prefix):])
	if err != nil {
		return 0
	}
	return n
}
