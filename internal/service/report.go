package service

import (
	"bytes"
	"fmt"
	"net/http"

	"datamime/internal/core"
	"datamime/internal/harness"
	"datamime/internal/inspect"
	"datamime/internal/telemetry"
)

// jobProfiles assembles the target/best profile pair behind a job's eCDF
// overlays. Live jobs carry both in memory; for jobs restored from a
// checkpoint after a restart, the profiles are recovered through the shared
// evaluation cache by reconstructing the content addresses the original run
// used (the profiler, seeds, and best point are all deterministic functions
// of the spec + checkpoint). Recovery is best-effort: a cold cache yields a
// partial doc, and the report degrades to artifact totals.
func (s *Server) jobProfiles(j *Job) *inspect.ProfilesDoc {
	j.mu.Lock()
	doc := &inspect.ProfilesDoc{
		Job:    j.id,
		Target: j.targetProf,
		Best:   j.bestProf,
	}
	if j.result != nil && len(j.result.Components) > 0 {
		doc.Components = j.result.Components
	}
	spec := j.spec
	checkpoint := j.checkpoint.Clone()
	j.mu.Unlock()

	if doc.Components == nil {
		if best, ok := checkpoint.Best(); ok {
			doc.Components = best.Components
		}
	}
	if doc.Target != nil && doc.Best != nil {
		return doc
	}

	// Recovery path: rebuild the cache keys the run used.
	profiler, err := specProfiler(spec)
	if err != nil {
		return doc
	}
	if doc.Target == nil && spec.Workload != "" {
		key := core.EvalKey("target/"+spec.Workload, profiler, nil, spec.Seed)
		if p, ok := s.cache.Get(key); ok {
			doc.Target = p
		}
	}
	if doc.Best == nil {
		best, ok := checkpoint.Best()
		if !ok {
			return doc
		}
		space, err := s.specSpace(spec)
		if err != nil {
			return doc
		}
		genName := spec.Generator
		if genName == "" {
			genName = s.workloadGenerator(spec.Workload)
		}
		if genName == "" {
			return doc
		}
		x := space.Denormalize(best.U)
		seed := core.IterationSeed(spec.Seed, best.Iteration, best.Retried)
		if p, ok := s.cache.Get(core.EvalKey(genName, profiler, x, seed)); ok {
			doc.Best = p
		}
	}
	return doc
}

// workloadGenerator resolves the default generator name of a workload ("" on
// unknown workloads).
func (s *Server) workloadGenerator(workload string) string {
	if workload == "" {
		return ""
	}
	w, err := harness.WorkloadByName(workload)
	if err != nil {
		return ""
	}
	return w.Generator.Name
}

// handleProfiles serves GET /jobs/{id}/profiles: the target and best-
// candidate profiles (per-metric sample distributions, from which clients
// compute eCDFs) plus the final per-component error attribution.
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.jobProfiles(j))
}

// jobDiagnostics is the GET /jobs/{id}/diagnostics response: the job's
// search-health summary with the per-iteration snapshot records. Diagnostics
// is null until the optimizer's first surrogate-backed proposal (random
// bootstrap iterations, non-GP optimizers), and always for optimizers that
// never fit a surrogate.
type jobDiagnostics struct {
	ID          string                      `json:"id"`
	State       JobState                    `json:"state"`
	Diagnostics *inspect.DiagnosticsSummary `json:"diagnostics"`
}

// handleDiagnostics serves GET /jobs/{id}/diagnostics: per-iteration GP
// search-health records plus the SearchHealth aggregates and verdict. It
// reads the live convergence trace (diagnostics ride on trace records whether
// or not the job runs with telemetry), so it works mid-run and after restore.
func (s *Server) handleDiagnostics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	state := j.state
	var recs []inspect.DiagRecord
	for _, rec := range j.trace {
		if rec.Diagnostics != nil {
			recs = append(recs, inspect.NewDiagRecord(rec.Iteration, *rec.Diagnostics))
		}
	}
	j.mu.Unlock()
	run := &inspect.Run{Job: j.ID(), Diagnostics: recs}
	writeJSON(w, http.StatusOK, jobDiagnostics{
		ID:          j.ID(),
		State:       state,
		Diagnostics: inspect.NewDiagnosticsSummary(run),
	})
}

// handleReport serves GET /jobs/{id}/report: the self-contained HTML run
// report (convergence plot, quantile-band EMD attribution, target-vs-best
// eCDF overlays) rendered from the job's artifact and profiles.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, artifactEvents(j)); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	run, err := inspect.LoadRun(&buf)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	report := inspect.NewReport(run, s.jobProfiles(j), inspect.ReportOptions{Title: j.ID()})
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = report.RenderHTML(w)
}
