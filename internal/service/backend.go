package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"datamime/internal/backend"
	"datamime/internal/core"
	"datamime/internal/harness"
	"datamime/internal/profile"
	"datamime/internal/telemetry"
)

// initDispatch builds the server's evaluation plane: a LocalBackend over the
// registered generators (the fallback that keeps jobs alive with an empty or
// dead fleet) and a Dispatcher that shards evaluations across registered
// datamime-worker processes. Statically configured workers (-worker flags)
// are registered immediately; dynamically announced ones arrive via
// POST /v1/workers. A health loop probes the fleet and evicts workers that
// stop answering.
func (s *Server) initDispatch() {
	s.local = backend.NewLocalBackend(s.cfg.Generators...)
	s.local.ProfileWorkers = s.cfg.DefaultProfileWorkers
	s.dispatcher = backend.NewDispatcher(backend.DispatcherConfig{
		Local:          s.local,
		AttemptTimeout: s.cfg.DispatchTimeout,
		Retries:        s.cfg.DispatchRetries,
		MaxQueue:       s.cfg.DispatchMaxQueue,
		OnEvent:        s.onFleetEvent,
	})
	for _, u := range s.cfg.WorkerURLs {
		if _, err := s.dispatcher.RegisterURL(backend.WorkerRegistration{URL: u}); err != nil {
			s.logf("worker %s rejected: %v", u, err)
		}
	}
	interval := s.cfg.WorkerHealthInterval
	if interval <= 0 {
		interval = 15 * time.Second
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.rootCtx.Done():
				return
			case <-t.C:
				s.dispatcher.CheckHealth(s.rootCtx)
			}
		}
	}()

	// Federated metrics: scrape each worker's /metrics on its own cadence
	// so one coordinator scrape observes the whole fleet. Strictly
	// observability-plane — scrape failures never touch routing.
	s.federation = newFederation()
	fedInterval := s.cfg.FederationInterval
	if fedInterval == 0 {
		fedInterval = 15 * time.Second
	}
	if fedInterval > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(fedInterval)
			defer t.Stop()
			for {
				select {
				case <-s.rootCtx.Done():
					return
				case <-t.C:
					s.federation.Scrape(s.rootCtx, s.dispatcher.Workers())
				}
			}
		}()
	}
}

// Federation exposes the federated-metrics scraper (for tests and debug).
func (s *Server) Federation() *Federation { return s.federation }

// Dispatcher exposes the evaluation dispatcher (for tests and debug).
func (s *Server) Dispatcher() *backend.Dispatcher { return s.dispatcher }

// onFleetEvent reacts to fleet churn: one log line, plus a
// worker.register / worker.deregister telemetry instant broadcast into every
// running job's recorder so Perfetto timelines show when the fleet changed
// under a search. Called without dispatcher locks held.
func (s *Server) onFleetEvent(ev backend.FleetEvent) {
	phase := telemetry.PhaseWorkerRegister
	if ev.Type == backend.FleetDeregister {
		phase = telemetry.PhaseWorkerDeregister
	}
	if ev.Reason != "" {
		s.logf("fleet: %s worker %d (%s): %s", ev.Type, ev.ID, ev.Worker, ev.Reason)
	} else {
		s.logf("fleet: %s worker %d (%s)", ev.Type, ev.ID, ev.Worker)
	}
	attrs := map[string]float64{telemetry.AttrRemoteWorker: float64(ev.ID)}
	for _, j := range s.Jobs() {
		j.mu.Lock()
		rec := j.recorder
		running := j.state == JobRunning
		j.mu.Unlock()
		if running && rec.Enabled() {
			rec.RecordSpan(phase, 0, 0, attrs)
		}
	}
}

// dispatchFor resolves a job's evaluation backend from its spec:
//
//	"local"         always evaluate in-process
//	"remote"        always go through the dispatcher (which still falls
//	                back local if the whole fleet fails mid-job)
//	"" or "auto"    use the dispatcher only if workers are registered when
//	                the job starts
//
// Returning nil selects the classic in-process path (cfg.Evaluator unset),
// which is bit-identical to the dispatched one by the backend contract.
func (s *Server) dispatchFor(spec JobSpec) backend.EvalBackend {
	switch spec.Backend {
	case "local":
		return nil
	case "remote":
		return s.dispatcher
	default: // "", "auto"
		if s.dispatcher.HasWorkers() {
			return s.dispatcher
		}
		return nil
	}
}

// profileTarget measures a workload's hidden target profile, through the
// dispatcher when the job runs remote (KindTarget requests resolve the
// workload by name on the worker) and in-process otherwise.
func (s *Server) profileTarget(ctx context.Context, spec JobSpec, profiler *profile.Profiler, w *harness.Workload) (*profile.Profile, error) {
	if b := s.dispatchFor(spec); b != nil {
		res, err := b.Evaluate(ctx, backend.EvalRequest{
			Version:  backend.ProtocolVersion,
			Kind:     backend.KindTarget,
			Workload: w.Name,
			Seed:     spec.Seed,
			Profiler: backend.SpecOf(profiler),
			Key:      core.EvalKey("target/"+w.Name, profiler, nil, spec.Seed),
		})
		if err != nil {
			return nil, err
		}
		return res.Profile, nil
	}
	return profiler.ProfileContext(ctx, w.Target, spec.Seed)
}

// handleCacheGet serves the shared cache tier: GET /v1/cache/{key} returns
// the profile stored under a content-addressed evaluation key, 404 on miss.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	p, ok := s.cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached profile for %q", key))
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// handleCachePut fills the shared cache tier: PUT /v1/cache/{key}. Keys are
// content-addressed and profiles deterministic, so concurrent fills by
// several workers are benign (every writer writes the same bytes).
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	var p profile.Profile
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding profile: %w", err))
		return
	}
	s.cache.Put(r.PathValue("key"), &p)
	w.WriteHeader(http.StatusNoContent)
}

// handleWorkerAnnounce registers (or heartbeats) a worker: POST /v1/workers.
func (s *Server) handleWorkerAnnounce(w http.ResponseWriter, r *http.Request) {
	var reg backend.WorkerRegistration
	if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding registration: %w", err))
		return
	}
	id, err := s.dispatcher.RegisterURL(reg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"id": id})
}

// handleWorkerWithdraw deregisters a worker: DELETE /v1/workers?url=...
func (s *Server) handleWorkerWithdraw(w http.ResponseWriter, r *http.Request) {
	u := r.URL.Query().Get("url")
	if u == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("url query parameter is required"))
		return
	}
	if !s.dispatcher.Deregister(u, "withdrawn") {
		writeError(w, http.StatusNotFound, fmt.Errorf("no worker %q", u))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"url": u, "state": "withdrawn"})
}

// handleWorkerList snapshots the fleet: GET /v1/workers.
func (s *Server) handleWorkerList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"workers": s.dispatcher.Workers(),
		"queue":   s.dispatcher.QueueDepth(),
	})
}
