package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the service's HTTP API:
//
//	POST /jobs               submit a JobSpec, returns {"id": ...}
//	GET  /jobs               list job summaries
//	GET  /jobs/{id}          full status + convergence trace (?since=N
//	                         returns only trace records from index N)
//	GET  /jobs/{id}/result   the final result (409 until the job is done)
//	GET  /jobs/{id}/events   live SSE stream of eval events + phase spans
//	GET  /jobs/{id}/artifact JSONL run artifact (telemetry.ReplayBestTrace
//	                         reconstructs the convergence series from it)
//	GET  /jobs/{id}/trace    Chrome/Perfetto trace-event JSON timeline of
//	                         the job's spans (open at ui.perfetto.dev)
//	GET  /jobs/{id}/report   self-contained HTML run report (convergence
//	                         plot, EMD attribution, eCDF overlays)
//	GET  /jobs/{id}/diagnostics
//	                         GP search-health summary + per-iteration
//	                         model diagnostics (calibration, evidence,
//	                         conditioning, acquisition health)
//	GET  /jobs/{id}/profiles target + best-candidate profiles as JSON
//	POST /jobs/{id}/cancel   cancel a queued or running job
//	GET  /metrics            Prometheus text-format metrics registry
//	GET  /healthz            liveness probe
//
// The distributed evaluation plane (protocol v1, see internal/backend):
//
//	GET  /v1/cache/{key}     shared evaluation-cache tier (404 on miss)
//	PUT  /v1/cache/{key}     publish a freshly measured profile
//	POST /v1/workers         worker self-registration (idempotent on URL;
//	                         re-announcements are heartbeats)
//	DELETE /v1/workers?url=  clean worker withdrawal
//	GET  /v1/workers         fleet snapshot + dispatch queue depth
//	GET  /v1/fleet           unified fleet health: per-worker routing state,
//	                         clock offset, scraped cache hit rate and
//	                         runtime health, dispatch counters, corpus
//	                         rollup (latest run vs. corpus median)
//
// The run corpus (requires Config.CorpusDir / datamimed -corpus-dir):
//
//	GET  /v1/corpus                     indexed run records (filter with
//	                                    scenario=, target=, since=, until=
//	                                    RFC 3339, limit=N most recent)
//	GET  /v1/corpus/{scenario}/trends   best-error + duration series across
//	                                    the scenario's runs, with medians
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/corpus", s.handleCorpus)
	mux.HandleFunc("GET /v1/corpus/{scenario}/trends", s.handleCorpusTrends)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	mux.HandleFunc("POST /v1/workers", s.handleWorkerAnnounce)
	mux.HandleFunc("DELETE /v1/workers", s.handleWorkerWithdraw)
	mux.HandleFunc("GET /v1/workers", s.handleWorkerList)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/diagnostics", s.handleDiagnostics)
	mux.HandleFunc("GET /jobs/{id}/profiles", s.handleProfiles)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": job.ID()})
}

// jobSummary is the list-view of a job: status without the trace.
func jobSummary(j *Job) JobStatus {
	st := j.status(0)
	st.Trace = nil
	return st
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, jobSummary(j))
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	since := 0
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid since %q", v))
			return
		}
		since = n
	}
	writeJSON(w, http.StatusOK, j.status(since))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	st := j.status(0)
	switch {
	case st.Result != nil:
		writeJSON(w, http.StatusOK, st.Result)
	case st.State.terminal():
		writeError(w, http.StatusConflict, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
	default:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s", st.ID, st.State))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "canceling"})
}
