package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"

	"datamime/internal/backend"
	"datamime/internal/datagen"
	"datamime/internal/profile"
)

// newFleetWorker starts an in-process datamime-worker over httptest,
// registered with the test generator.
func newFleetWorker(t *testing.T, name string) (*backend.Worker, *httptest.Server) {
	t.Helper()
	w := backend.NewWorker(backend.WorkerConfig{
		Name:           name,
		Capacity:       1,
		ProfileWorkers: 1,
		Generators:     []datagen.Generator{testGenerator()},
	})
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	return w, ts
}

// newFleetServer builds a service with statically registered workers.
func newFleetServer(t *testing.T, urls []string) *Server {
	t.Helper()
	s, err := New(Config{
		Workers:    1,
		Generators: []datagen.Generator{testGenerator()},
		WorkerURLs: urls,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServiceFleetBitIdentity is the subsystem's acceptance test: the same
// seeded job run against a 2-worker fleet and run purely in-process must
// produce bit-identical results and iteration traces.
func TestServiceFleetBitIdentity(t *testing.T) {
	spec := testSpec(12, 21)
	spec.Backend = "local"
	ref := runToCompletion(t, newTestServer(t, ""), spec)

	w1, ts1 := newFleetWorker(t, "fleet-a")
	w2, ts2 := newFleetWorker(t, "fleet-b")
	svc := newFleetServer(t, []string{ts1.URL, ts2.URL})
	defer svc.Close()

	remoteSpec := testSpec(12, 21)
	remoteSpec.Backend = "remote"
	job, err := svc.Submit(remoteSpec)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	got := job.status(0)
	if got.State != JobSucceeded {
		t.Fatalf("fleet job %s: %s", got.State, got.Error)
	}
	if got.Backend != "dispatch" {
		t.Fatalf("job backend = %q, want dispatch", got.Backend)
	}

	// Bit-identity: result and full per-iteration trace.
	if got.Result.BestError != ref.Result.BestError ||
		!reflect.DeepEqual(got.Result.BestParams, ref.Result.BestParams) ||
		got.Result.BestValues != ref.Result.BestValues {
		t.Fatalf("fleet result diverged:\nfleet %+v\nlocal %+v", got.Result, ref.Result)
	}
	if !reflect.DeepEqual(got.Trace, ref.Trace) {
		t.Fatal("fleet iteration trace diverged from the local run")
	}
	if got.Result.CacheHits != ref.Result.CacheHits {
		t.Fatalf("cache hits diverged: fleet %d, local %d", got.Result.CacheHits, ref.Result.CacheHits)
	}

	// The fleet actually served the evaluations.
	served := w1.Health().Evals + w2.Health().Evals
	if served == 0 {
		t.Fatal("no evaluation reached the fleet")
	}
	c := svc.Dispatcher().Counters()
	if c.RemoteEvals == 0 || c.LocalEvals != 0 {
		t.Fatalf("dispatch counters = %+v, want all-remote", c)
	}
}

// TestServiceFleetWorkerKilledMidJob kills the only worker while a remote
// job is running: the dispatcher must degrade to local fallback and the job
// must still finish, bit-identical to a local run.
func TestServiceFleetWorkerKilledMidJob(t *testing.T) {
	spec := testSpec(24, 33)
	spec.Backend = "local"
	ref := runToCompletion(t, newTestServer(t, ""), spec)

	_, ts := newFleetWorker(t, "doomed")
	svc := newFleetServer(t, []string{ts.URL})
	defer svc.Close()

	remoteSpec := testSpec(24, 33)
	remoteSpec.Backend = "remote"
	job, err := svc.Submit(remoteSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to make progress on the fleet", func() bool {
		return job.status(0).Iterations >= 4
	})
	ts.CloseClientConnections()
	ts.Close() // the fleet is gone mid-job

	<-job.Done()
	got := job.status(0)
	if got.State != JobSucceeded {
		t.Fatalf("job with killed worker %s: %s", got.State, got.Error)
	}
	if got.Result.BestError != ref.Result.BestError ||
		!reflect.DeepEqual(got.Result.BestParams, ref.Result.BestParams) {
		t.Fatalf("degraded result diverged:\ngot %+v\nref %+v", got.Result, ref.Result)
	}
	if !reflect.DeepEqual(got.Trace, ref.Trace) {
		t.Fatal("degraded iteration trace diverged from the local run")
	}
	c := svc.Dispatcher().Counters()
	if c.RemoteEvals == 0 {
		t.Fatal("job never reached the fleet before the kill")
	}
	if c.LocalEvals == 0 {
		t.Fatal("job never fell back local after the kill")
	}
}

// TestServiceFleetDeadWorkerAtStart: a fleet whose only URLs are
// unreachable still runs jobs (local fallback) — a job never dies with its
// fleet.
func TestServiceFleetDeadWorkerAtStart(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	svc := newFleetServer(t, []string{deadURL})
	defer svc.Close()
	spec := testSpec(6, 5)
	spec.Backend = "remote"
	job, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	got := job.status(0)
	if got.State != JobSucceeded {
		t.Fatalf("job with dead fleet %s: %s", got.State, got.Error)
	}
	if c := svc.Dispatcher().Counters(); c.LocalEvals == 0 {
		t.Fatalf("counters = %+v, want local fallbacks", c)
	}
}

// TestServiceFleetHTTP covers the coordinator's fleet and shared-cache
// protocol endpoints.
func TestServiceFleetHTTP(t *testing.T) {
	svc := newTestServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Announce, heartbeat (same ID), list.
	reg := backend.WorkerRegistration{URL: "http://203.0.113.9:9090", Name: "w0", Capacity: 2}
	var first, second struct {
		ID int `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/v1/workers", reg, &first); code != http.StatusOK {
		t.Fatalf("announce = %d", code)
	}
	if code := httpJSON(t, ts, "POST", "/v1/workers", reg, &second); code != http.StatusOK {
		t.Fatalf("re-announce = %d", code)
	}
	if first.ID != second.ID {
		t.Fatalf("heartbeat minted a new ID: %d then %d", first.ID, second.ID)
	}
	var list struct {
		Workers []backend.WorkerInfo `json:"workers"`
		Queue   int                  `json:"queue"`
	}
	httpJSON(t, ts, "GET", "/v1/workers", nil, &list)
	if len(list.Workers) != 1 || list.Workers[0].Capacity != 2 || list.Workers[0].Name != "w0" {
		t.Fatalf("fleet list = %+v", list)
	}

	// A protocol-mismatched registration is rejected.
	bad := reg
	bad.URL = "http://203.0.113.10:9090"
	bad.Protocol = backend.ProtocolVersion + 1
	if code := httpJSON(t, ts, "POST", "/v1/workers", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("mismatched announce = %d", code)
	}

	// Withdraw, then a second withdraw misses.
	path := "/v1/workers?url=" + url.QueryEscape(reg.URL)
	if code := httpJSON(t, ts, "DELETE", path, nil, nil); code != http.StatusOK {
		t.Fatalf("withdraw = %d", code)
	}
	if code := httpJSON(t, ts, "DELETE", path, nil, nil); code != http.StatusNotFound {
		t.Fatalf("double withdraw = %d", code)
	}

	// Shared cache tier: PUT → 204, GET round-trips, miss → 404.
	cc := backend.NewCacheClient(ts.URL)
	prof := &profile.Profile{Benchmark: "cached"}
	if err := cc.Put(context.Background(), "cache-key", prof); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cc.Get(context.Background(), "cache-key")
	if err != nil || !ok || got.Benchmark != "cached" {
		t.Fatalf("cache get = (%v, %v, %v)", got, ok, err)
	}
	if _, ok, err := cc.Get(context.Background(), "missing"); ok || err != nil {
		t.Fatalf("cache miss = (%v, %v)", ok, err)
	}
}
