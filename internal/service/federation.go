package service

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"datamime/internal/backend"
)

// Federation scrapes each registered worker's Prometheus endpoint and
// re-exports the datamime_worker_* families through the coordinator's
// /metrics, every sample tagged with a worker="name" label injected first.
// One scrape of the coordinator therefore observes the whole fleet — no
// per-worker scrape configuration needed. A synthesized
// datamime_worker_up{worker=...} gauge reports each worker's last scrape
// outcome, so a wedged metrics endpoint is itself visible.
//
// Federation is observability-plane only: it shares no state with the
// dispatcher beyond the fleet snapshot it scrapes from, and a failed scrape
// never affects evaluation routing.
type Federation struct {
	client *http.Client

	mu      sync.Mutex
	scrapes map[string]*workerScrape // by worker name
	total   uint64                   // scrape attempts
	errors  uint64                   // failed scrape attempts
}

// workerScrape is one worker's most recent scrape outcome.
type workerScrape struct {
	url  string
	up   bool
	at   time.Time
	// dur is how long the last scrape attempt took (success or failure):
	// a slow-but-up worker /metrics endpoint is visible through it.
	dur time.Duration
	// okAt is the time of the last successful scrape, carried across
	// failed attempts so staleness keeps growing while a worker is down.
	okAt time.Time
	fams map[string]*fedFamily
	// values indexes label-less sample values by metric name, for the
	// /v1/fleet summary (cache hit rate, inflight, goroutines).
	values map[string]float64
}

// fedFamily is one scraped metric family: exposition metadata plus the
// family's sample lines in scrape order.
type fedFamily struct {
	help, typ string
	series    []fedSeries
}

// fedSeries is one scraped sample line, decomposed so the worker label can
// be injected on re-export.
type fedSeries struct {
	metric string // full sample metric name (family name or _bucket/_sum/_count)
	labels string // original label body without braces, "" if none
	value  string // verbatim value text
}

// fedWorkerPrefix selects which scraped families are federated.
const fedWorkerPrefix = "datamime_worker_"

// newFederation builds an empty federation with a bounded-scrape client.
func newFederation() *Federation {
	return &Federation{
		client:  &http.Client{Timeout: 10 * time.Second},
		scrapes: make(map[string]*workerScrape),
	}
}

// Scrape refreshes the federation from the current fleet snapshot: one GET
// /metrics per URL-registered worker, dropping state for workers that left
// the fleet. Unreachable workers keep a scrape record with up=false so the
// datamime_worker_up series reports them.
func (f *Federation) Scrape(ctx context.Context, workers []backend.WorkerInfo) {
	current := make(map[string]bool, len(workers))
	for _, w := range workers {
		if w.URL == "" {
			continue // direct in-process backends have no metrics endpoint
		}
		current[w.Name] = true
		f.scrapeOne(ctx, w.Name, w.URL)
	}
	f.mu.Lock()
	for name := range f.scrapes {
		if !current[name] {
			delete(f.scrapes, name)
		}
	}
	f.mu.Unlock()
}

// scrapeOne fetches and parses one worker's /metrics.
func (f *Federation) scrapeOne(ctx context.Context, name, url string) {
	start := time.Now()
	sc := &workerScrape{url: url, at: start,
		fams: make(map[string]*fedFamily), values: make(map[string]float64)}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err == nil {
		var resp *http.Response
		resp, err = f.client.Do(req)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				parseWorkerMetrics(resp.Body, sc)
				sc.up = true
			} else {
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}
	sc.dur = time.Since(start)
	f.mu.Lock()
	f.total++
	if err != nil {
		f.errors++
	}
	if sc.up {
		sc.okAt = sc.at
	} else if prev := f.scrapes[name]; prev != nil {
		sc.okAt = prev.okAt // staleness keeps growing across failures
	}
	f.scrapes[name] = sc
	f.mu.Unlock()
}

// parseWorkerMetrics reads one Prometheus text exposition, keeping the
// datamime_worker_* families. The parser is sequential: HELP/TYPE lines open
// a family and subsequent samples whose name extends it (histogram _bucket /
// _sum / _count) attach to it, which matches how every conforming exposition
// — including telemetry.Registry's — is laid out.
func parseWorkerMetrics(r io.Reader, sc *workerScrape) {
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	current := ""
	for scan.Scan() {
		line := strings.TrimSpace(scan.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			name := fields[2]
			if !strings.HasPrefix(name, fedWorkerPrefix) {
				current = ""
				continue
			}
			fam := sc.fams[name]
			if fam == nil {
				fam = &fedFamily{}
				sc.fams[name] = fam
			}
			switch fields[1] {
			case "HELP":
				if len(fields) == 4 {
					fam.help = fields[3]
				}
				current = name
			case "TYPE":
				if len(fields) == 4 {
					fam.typ = fields[3]
				}
				current = name
			}
			continue
		}
		metric, labels, value, ok := splitSample(line)
		if !ok || !strings.HasPrefix(metric, fedWorkerPrefix) {
			continue
		}
		famName := current
		if famName == "" || !strings.HasPrefix(metric, famName) {
			famName = metric
		}
		fam := sc.fams[famName]
		if fam == nil {
			fam = &fedFamily{typ: "untyped"}
			sc.fams[famName] = fam
		}
		fam.series = append(fam.series, fedSeries{metric: metric, labels: labels, value: value})
		if labels == "" {
			if v, err := strconv.ParseFloat(value, 64); err == nil {
				sc.values[metric] = v
			}
		}
	}
}

// splitSample decomposes `name{labels} value` / `name value` exposition
// lines. Label values may contain spaces, so the value is whatever follows
// the closing brace (or the first space for label-less samples).
func splitSample(line string) (metric, labels, value string, ok bool) {
	if open := strings.IndexByte(line, '{'); open >= 0 {
		closeIdx := strings.LastIndexByte(line, '}')
		if closeIdx < open {
			return "", "", "", false
		}
		metric = line[:open]
		labels = line[open+1 : closeIdx]
		value = strings.TrimSpace(line[closeIdx+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", "", "", false
		}
		metric, value = fields[0], fields[1]
	}
	if metric == "" || value == "" {
		return "", "", "", false
	}
	// Timestamped samples carry a trailing ms field; keep only the value.
	if i := strings.IndexByte(value, ' '); i >= 0 {
		value = value[:i]
	}
	return metric, labels, value, true
}

// WritePrometheus renders the federated view: families sorted by name,
// samples per family sorted by worker, each with worker="name" injected as
// the first label, plus the synthesized datamime_worker_up family. Output is
// deterministic for a fixed scrape state, like the registry it rides behind.
func (f *Federation) WritePrometheus(w io.Writer) {
	f.mu.Lock()
	names := make([]string, 0, len(f.scrapes))
	for n := range f.scrapes {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		f.mu.Unlock()
		return
	}

	famNames := map[string]bool{}
	for _, sc := range f.scrapes {
		for fn := range sc.fams {
			famNames[fn] = true
		}
	}
	sorted := make([]string, 0, len(famNames))
	for fn := range famNames {
		sorted = append(sorted, fn)
	}
	sort.Strings(sorted)

	fmt.Fprintf(w, "# HELP datamime_worker_up Whether the last federation scrape of the worker's /metrics succeeded.\n")
	fmt.Fprintf(w, "# TYPE datamime_worker_up gauge\n")
	for _, n := range names {
		v := 0
		if f.scrapes[n].up {
			v = 1
		}
		fmt.Fprintf(w, "datamime_worker_up{worker=%q} %d\n", n, v)
	}
	fmt.Fprintf(w, "# HELP datamime_worker_scrape_duration_seconds How long the last federation scrape of the worker's /metrics took.\n")
	fmt.Fprintf(w, "# TYPE datamime_worker_scrape_duration_seconds gauge\n")
	for _, n := range names {
		fmt.Fprintf(w, "datamime_worker_scrape_duration_seconds{worker=%q} %s\n",
			n, strconv.FormatFloat(f.scrapes[n].dur.Seconds(), 'g', -1, 64))
	}
	// Staleness: seconds since the last successful scrape. Workers that have
	// never been scraped successfully have no series — up=0 already marks
	// them, and an unbounded fake staleness would only skew dashboards.
	staleHeaded := false
	for _, n := range names {
		okAt := f.scrapes[n].okAt
		if okAt.IsZero() {
			continue
		}
		if !staleHeaded {
			fmt.Fprintf(w, "# HELP datamime_worker_scrape_staleness_seconds Seconds since the worker's last successful federation scrape.\n")
			fmt.Fprintf(w, "# TYPE datamime_worker_scrape_staleness_seconds gauge\n")
			staleHeaded = true
		}
		fmt.Fprintf(w, "datamime_worker_scrape_staleness_seconds{worker=%q} %s\n",
			n, strconv.FormatFloat(time.Since(okAt).Seconds(), 'g', -1, 64))
	}

	for _, fn := range sorted {
		headed := false
		for _, n := range names {
			fam := f.scrapes[n].fams[fn]
			if fam == nil || len(fam.series) == 0 {
				continue
			}
			if !headed {
				typ := fam.typ
				if typ == "" {
					typ = "untyped"
				}
				if fam.help != "" {
					fmt.Fprintf(w, "# HELP %s %s\n", fn, fam.help)
				}
				fmt.Fprintf(w, "# TYPE %s %s\n", fn, typ)
				headed = true
			}
			for _, s := range fam.series {
				if s.labels == "" {
					fmt.Fprintf(w, "%s{worker=%q} %s\n", s.metric, n, s.value)
				} else {
					fmt.Fprintf(w, "%s{worker=%q,%s} %s\n", s.metric, n, s.labels, s.value)
				}
			}
		}
	}
	f.mu.Unlock()
}

// FederationStats snapshots the scrape counters.
type FederationStats struct {
	Workers      int    `json:"workers"`
	ScrapesTotal uint64 `json:"scrapes_total"`
	ScrapeErrors uint64 `json:"scrape_errors_total"`
}

// Stats returns the scrape counters.
func (f *Federation) Stats() FederationStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FederationStats{Workers: len(f.scrapes), ScrapesTotal: f.total, ScrapeErrors: f.errors}
}

// fedSummary is the federation's contribution to one /v1/fleet worker row.
type fedSummary struct {
	scraped      bool
	up           bool
	ageMS        int64
	cacheHits    float64
	cacheMisses  float64
	hitRate      float64
	hasRate      bool
	goroutines   float64
	hasRuntime   bool
	heapBytes    float64
	selfInflight float64
}

// summarize condenses one worker's scrape into the fleet-row fields.
func (f *Federation) summarize(name string) fedSummary {
	f.mu.Lock()
	defer f.mu.Unlock()
	sc := f.scrapes[name]
	if sc == nil {
		return fedSummary{}
	}
	out := fedSummary{scraped: true, up: sc.up, ageMS: time.Since(sc.at).Milliseconds()}
	hits := sc.values["datamime_worker_cache_local_hits_total"] +
		sc.values["datamime_worker_cache_shared_hits_total"]
	misses := sc.values["datamime_worker_cache_misses_total"]
	out.cacheHits, out.cacheMisses = hits, misses
	if hits+misses > 0 {
		out.hitRate = hits / (hits + misses)
		out.hasRate = true
	}
	if g, ok := sc.values["datamime_worker_go_goroutines"]; ok {
		out.goroutines = g
		out.hasRuntime = true
		out.heapBytes = sc.values["datamime_worker_go_heap_alloc_bytes"]
	}
	out.selfInflight = sc.values["datamime_worker_inflight"]
	return out
}

// FleetWorkerStatus is one worker's row in the GET /v1/fleet response:
// the dispatcher's routing view joined with the federation's scraped view.
type FleetWorkerStatus struct {
	backend.WorkerInfo
	// ScrapeUp reports the last federation scrape outcome (null until the
	// worker has been scraped at least once).
	ScrapeUp *bool `json:"scrape_up,omitempty"`
	// ScrapeAgeMS is how stale the scraped numbers below are.
	ScrapeAgeMS int64 `json:"scrape_age_ms,omitempty"`
	// CacheHitRate is hits/(hits+misses) across both worker cache tiers.
	CacheHitRate *float64 `json:"cache_hit_rate,omitempty"`
	CacheHits    float64  `json:"cache_hits,omitempty"`
	CacheMisses  float64  `json:"cache_misses,omitempty"`
	// Goroutines / HeapBytes are the worker's self-reported runtime health.
	Goroutines float64 `json:"goroutines,omitempty"`
	HeapBytes  float64 `json:"heap_bytes,omitempty"`
	// SelfInflight is the inflight gauge scraped from the worker itself —
	// a third load view beside the dispatcher's and the heartbeat's.
	SelfInflight float64 `json:"self_inflight,omitempty"`
}

// FleetStatus is the GET /v1/fleet response body.
type FleetStatus struct {
	Workers    []FleetWorkerStatus      `json:"workers"`
	Queue      int                      `json:"queue"`
	Dispatch   backend.DispatchCounters `json:"dispatch"`
	Federation FederationStats          `json:"federation"`
	// Corpus summarizes the persistent run index per scenario (latest run
	// beside the corpus median); null when -corpus-dir is not set.
	Corpus *CorpusSummary `json:"corpus,omitempty"`
}

// fleetStatus joins the dispatcher and federation views per worker.
func (s *Server) fleetStatus() FleetStatus {
	infos := s.dispatcher.Workers()
	out := FleetStatus{
		Workers:    make([]FleetWorkerStatus, 0, len(infos)),
		Queue:      s.dispatcher.QueueDepth(),
		Dispatch:   s.dispatcher.Counters(),
		Federation: s.federation.Stats(),
		Corpus:     s.corpusSummary(),
	}
	for _, info := range infos {
		row := FleetWorkerStatus{WorkerInfo: info}
		if fs := s.federation.summarize(info.Name); fs.scraped {
			up := fs.up
			row.ScrapeUp = &up
			row.ScrapeAgeMS = fs.ageMS
			row.CacheHits, row.CacheMisses = fs.cacheHits, fs.cacheMisses
			if fs.hasRate {
				rate := fs.hitRate
				row.CacheHitRate = &rate
			}
			if fs.hasRuntime {
				row.Goroutines = fs.goroutines
				row.HeapBytes = fs.heapBytes
			}
			row.SelfInflight = fs.selfInflight
		}
		out.Workers = append(out.Workers, row)
	}
	return out
}

// handleFleet serves GET /v1/fleet: the unified fleet health view.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleetStatus())
}
