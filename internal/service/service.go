package service

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"datamime/internal/backend"
	"datamime/internal/buildinfo"
	"datamime/internal/core"
	"datamime/internal/corpus"
	"datamime/internal/datagen"
	"datamime/internal/telemetry"
)

// Config configures a Server.
type Config struct {
	// Workers is the worker-pool size: how many search jobs run
	// concurrently (default 2). Each job may additionally evaluate
	// candidates in parallel per its spec.
	Workers int
	// QueueDepth bounds the number of queued jobs (default 1024); Submit
	// fails once full.
	QueueDepth int
	// CacheCapacity bounds the shared evaluation cache (default 4096
	// profiles).
	CacheCapacity int
	// DefaultProfileWorkers is the intra-profile parallelism (concurrent
	// way-curve simulator runs) for jobs whose spec does not set
	// profiling.profile_workers. 0 leaves profiles serial. Profiles are
	// bit-identical at any setting.
	DefaultProfileWorkers int
	// CheckpointDir, when non-empty, enables persistence: every job is
	// checkpointed there after each batch, and New resumes unfinished
	// jobs found in it.
	CheckpointDir string
	// Generators registers extra dataset generators beyond the built-in
	// Table III set (datagen.All), e.g. custom §III-B generators.
	Generators []datagen.Generator
	// Log, when non-nil, receives one line per job state transition
	// (rendered by telemetry.NewLineLogger).
	Log io.Writer
	// Telemetry enables per-job span recording: each running job gets a
	// telemetry.Recorder whose phase spans feed the /metrics latency
	// histograms and the job's SSE event stream. Off by default; eval
	// events (and therefore /events and /artifact) work either way —
	// telemetry only adds the phase spans.
	Telemetry bool
	// TelemetryRingCapacity bounds each job's flight-recorder ring
	// (default 512 events). Only meaningful with Telemetry set.
	TelemetryRingCapacity int
	// SSEMaxBacklog bounds how many undelivered events a slow /events
	// subscriber may accumulate before the oldest are dropped (default
	// 4096). Dropping never blocks the search goroutine; the subscriber
	// receives a "dropped" SSE frame carrying the count.
	SSEMaxBacklog int
	// WorkerURLs statically registers remote datamime-worker endpoints at
	// startup (cmd/datamimed -worker). Workers may also self-register at
	// runtime via POST /v1/workers.
	WorkerURLs []string
	// DispatchTimeout bounds one remote evaluation attempt (default 5m).
	DispatchTimeout time.Duration
	// DispatchRetries is the number of additional remote attempts after a
	// failure before an evaluation falls back to in-process execution
	// (default 2).
	DispatchRetries int
	// DispatchMaxQueue bounds evaluations waiting for a remote slot;
	// beyond it admission control sheds work to the local backend
	// (default 64).
	DispatchMaxQueue int
	// WorkerHealthInterval is the fleet health-probe period (default 15s).
	WorkerHealthInterval time.Duration
	// FederationInterval is the period of the federated-metrics scrape:
	// how often the coordinator pulls each worker's /metrics and refreshes
	// the datamime_worker_*{worker=...} re-export (default 15s; negative
	// disables scraping — the families simply stay absent).
	FederationInterval time.Duration
	// CorpusDir, when non-empty, enables the persistent run corpus: every
	// finished job is indexed there (summary record + content-addressed
	// JSONL artifact), the regression watchdog judges it against the
	// scenario baseline, and GET /v1/corpus serves longitudinal queries.
	CorpusDir string
	// CorpusTolerance is the absolute best-error tolerance of the corpus
	// regression watchdog (<= 0 uses corpus.DefaultTolerance, 1e-9).
	CorpusTolerance float64
}

// Server schedules and tracks search jobs. Create with New, serve its
// Handler, and Close it to shut down (running jobs are checkpointed and
// re-queued for the next start).
type Server struct {
	cfg   Config
	cache *Cache
	gens  map[string]datagen.Generator

	// local is the in-process evaluation backend; dispatcher shards
	// evaluations across registered datamime-worker processes, falling back
	// to local so a job never dies with the fleet. With no workers
	// registered, jobs take the classic in-process path (bit-identical by
	// the backend contract).
	local      *backend.LocalBackend
	dispatcher *backend.Dispatcher

	// federation scrapes the fleet's worker /metrics endpoints and
	// re-exports them (worker-labeled) after the registry in /metrics.
	federation *Federation

	// corpus is the persistent run index (nil unless Config.CorpusDir is
	// set); indexRun appends to it on every job completion.
	corpus *corpus.Corpus

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	nextID int
	closed bool

	queue chan *Job

	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup

	// metrics is the unified registry behind /metrics: global counters
	// accumulated across all jobs (including finished ones, which drop out
	// of per-job counters when the map is inspected), worker/contention
	// metrics fed from telemetry spans, and scrape-time collectors over
	// the job table and evaluation cache.
	metrics *serverMetrics

	logger  *slog.Logger
	started time.Time
}

// New builds a Server, resumes any unfinished checkpointed jobs, and starts
// the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.SSEMaxBacklog <= 0 {
		cfg.SSEMaxBacklog = 4096
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      NewCache(cfg.CacheCapacity),
		gens:       make(map[string]datagen.Generator),
		jobs:       make(map[string]*Job),
		nextID:     1,
		queue:      make(chan *Job, cfg.QueueDepth),
		rootCtx:    ctx,
		rootCancel: cancel,
		started:    time.Now(),
	}
	if cfg.Log != nil {
		s.logger = telemetry.NewLineLogger(cfg.Log)
	}
	for _, g := range datagen.All() {
		s.gens[g.Name] = g
	}
	for _, g := range cfg.Generators {
		s.gens[g.Name] = g
	}
	s.initDispatch()
	if cfg.CorpusDir != "" {
		// Open (and, if the last shutdown truncated the index tail,
		// compact) the run corpus before the metrics registry so its
		// scrape-time collectors can close over it.
		c, err := corpus.Open(cfg.CorpusDir)
		if err != nil {
			cancel()
			return nil, err
		}
		s.corpus = c
	}
	s.metrics = newServerMetrics(s)
	if err := s.loadCheckpoints(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// generator resolves a registered generator by name.
func (s *Server) generator(name string) (datagen.Generator, error) {
	if g, ok := s.gens[name]; ok {
		return g, nil
	}
	return datagen.Generator{}, fmt.Errorf("service: unknown generator %q", name)
}

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// Cache returns the shared evaluation cache.
func (s *Server) Cache() *Cache { return s.cache }

// Submit validates and enqueues a job, returning its assigned ID.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: server is shut down")
	}
	job := &Job{
		id:      fmt.Sprintf("job-%d", s.nextID),
		spec:    spec,
		state:   JobQueued,
		done:    make(chan struct{}),
		created: time.Now(),
	}
	s.nextID++
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.mu.Unlock()

	s.persist(job)
	select {
	case s.queue <- job:
	default:
		s.finish(job, JobFailed, "service: job queue is full")
		return nil, fmt.Errorf("service: job queue is full")
	}
	s.logf("job %s queued (%s)", job.id, describeSpec(spec))
	return job, nil
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel cancels a job: a queued job finishes immediately, a running one
// stops within roughly one evaluation batch.
func (s *Server) Cancel(id string) error {
	j, ok := s.Job(id)
	if !ok {
		return fmt.Errorf("service: no job %q", id)
	}
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return nil
	}
	j.canceled = true
	cancel := j.cancel
	queued := j.state == JobQueued
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if queued {
		// The worker skips canceled queued jobs; finish it now so
		// clients observe the terminal state promptly.
		s.finish(j, JobCanceled, "canceled before start")
	}
	return nil
}

// Close shuts the server down: cancels running searches (their checkpoints
// persist), re-queues them on disk, and waits for the workers to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.rootCancel()
	close(s.queue)
	s.wg.Wait()
	if s.corpus != nil {
		s.corpus.Close()
	}
}

// worker pulls jobs off the queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		if s.rootCtx.Err() != nil {
			return // shutdown: job stays queued on disk
		}
		job.mu.Lock()
		skip := job.canceled || job.state.terminal()
		job.mu.Unlock()
		if skip {
			continue
		}
		s.metrics.workersBusy.Add(1)
		s.runJob(job)
		s.metrics.workersBusy.Add(-1)
	}
}

// runJob executes one search to completion, cancellation, or shutdown.
func (s *Server) runJob(job *Job) {
	ctx, cancel := context.WithCancel(s.rootCtx)
	defer cancel()

	job.mu.Lock()
	job.state = JobRunning
	job.started = time.Now()
	job.cancel = cancel
	resume := job.checkpoint.Clone()
	spec := job.spec
	job.mu.Unlock()
	s.persist(job)
	s.logf("job %s running", job.id)

	cfg, err := s.buildSearch(ctx, spec)
	if err != nil {
		if ctx.Err() != nil {
			s.endInterrupted(job, ctx)
			return
		}
		s.finish(job, JobFailed, err.Error())
		return
	}
	cfg.Cache = s.cache
	var dispatchEv *backend.SearchEvaluator
	if b := s.dispatchFor(spec); b != nil {
		// Shard cache-missing candidate evaluations across the fleet. The
		// coordinator-side cache lookup, keys, seeds, and scoring stay in
		// core, so a dispatched job's counters and artifacts stay
		// bit-identical to an in-process run of the same seed.
		dispatchEv = backend.NewSearchEvaluator(b, cfg.Generator.Name, cfg.Profiler)
		dispatchEv.OnResult = s.metrics.observeDispatch
		cfg.Evaluator = dispatchEv
	}
	job.mu.Lock()
	job.profileWorkers = cfg.ProfileWorkers
	job.backend = "local"
	if dispatchEv != nil {
		job.backend = "dispatch"
	}
	job.mu.Unlock()
	if po, ok := cfg.Objective.(core.ProfileObjective); ok {
		job.mu.Lock()
		job.targetProf = po.Target
		job.mu.Unlock()
	}
	if s.cfg.Telemetry {
		rec := telemetry.New(telemetry.Options{
			Capacity: s.cfg.TelemetryRingCapacity,
			OnEvent: func(ev telemetry.Event) {
				// Eval events are built uniformly in OnEval below (they
				// flow with telemetry off too); spans and search-health
				// diagnostics pass through.
				switch ev.Type {
				case telemetry.TypeSpan:
					ev.Job = job.id
					s.metrics.observeSpan(ev)
					job.appendEvent(ev)
				case telemetry.TypeSearchDiagnostics:
					ev.Job = job.id
					s.metrics.observeDiagnostics(ev)
					job.appendEvent(ev)
				}
			},
		})
		job.mu.Lock()
		job.recorder = rec
		job.mu.Unlock()
		cfg.Telemetry = rec
		cfg.Profiler.Telemetry = rec
		if dispatchEv != nil {
			dispatchEv.Telemetry = rec
		}
	}
	if len(resume.Entries) > 0 {
		job.mu.Lock()
		// The replay rebuilds the trace, counters, and event log from
		// iteration 0.
		job.trace = nil
		job.events = nil
		job.evals, job.cacheHits, job.cacheMisses, job.skipped, job.simCycles = 0, 0, 0, 0, 0
		job.mu.Unlock()
		cfg.Resume = &resume
	}
	cfg.OnEval = func(ev core.EvalEvent) {
		job.mu.Lock()
		if ev.Skipped {
			job.skipped++
		} else {
			job.trace = append(job.trace, ev.Record)
			job.evals++
			if ev.CacheHit {
				job.cacheHits++
			} else {
				job.cacheMisses++
			}
			job.simCycles += ev.SimCycles
		}
		job.mu.Unlock()
		job.appendEvent(evalTelemetryEvent(job.id, ev))
		if !ev.Replayed {
			if ev.Skipped {
				s.metrics.skippedTotal.Inc()
			} else {
				s.metrics.evalsTotal.Inc()
			}
			if ev.Retried {
				s.metrics.retriedTotal.Inc()
			}
			if ev.SimCycles > 0 {
				s.metrics.cyclesTotal.Add(ev.SimCycles)
			}
		}
	}
	cfg.OnCheckpoint = func(cp core.Checkpoint) {
		job.mu.Lock()
		job.checkpoint = cp
		job.mu.Unlock()
		s.persist(job)
	}

	res, err := core.SearchContext(ctx, cfg)
	switch {
	case err == nil:
		result := &JobResult{
			BestParams:  res.BestParams,
			BestError:   res.BestError,
			Evaluations: res.Evaluations,
			CacheHits:   res.CacheHits,
			Skipped:     res.Skipped,
			Components:  res.BestComponents(),
		}
		if res.BestParams != nil {
			result.BestValues = cfg.Generator.Space.Values(res.BestParams)
		}
		job.mu.Lock()
		job.result = result
		job.bestProf = res.BestProfile
		job.mu.Unlock()
		// Index into the run corpus (and run the regression watchdog)
		// before finish: a corpus.regression event appended here still
		// reaches SSE subscribers ahead of the terminal "done" frame.
		s.indexRun(job)
		s.finish(job, JobSucceeded, "")
	case ctx.Err() != nil:
		s.endInterrupted(job, ctx)
	default:
		s.finish(job, JobFailed, err.Error())
	}
}

// endInterrupted resolves a context-terminated job: client cancels become
// terminal, server shutdowns re-queue the job (on disk) for the next start.
func (s *Server) endInterrupted(job *Job, ctx context.Context) {
	job.mu.Lock()
	canceled := job.canceled
	job.mu.Unlock()
	if canceled {
		s.finish(job, JobCanceled, context.Canceled.Error())
		return
	}
	// Server shutdown: persist as queued so loadCheckpoints resumes it.
	job.mu.Lock()
	job.state = JobQueued
	checkpointed := len(job.checkpoint.Entries)
	job.mu.Unlock()
	s.persist(job)
	s.logf("job %s interrupted by shutdown; checkpointed at %d iterations",
		job.id, checkpointed)
	_ = ctx
}

// finish moves a job to a terminal state and persists it.
func (s *Server) finish(job *Job, state JobState, errMsg string) {
	job.mu.Lock()
	if job.state.terminal() {
		job.mu.Unlock()
		return
	}
	job.state = state
	job.errMsg = errMsg
	job.finished = time.Now()
	done := job.done
	job.wakeLocked() // SSE subscribers observe the terminal state
	job.mu.Unlock()
	close(done)
	s.persist(job)
	if errMsg != "" {
		s.logf("job %s %s: %s", job.id, state, errMsg)
	} else {
		s.logf("job %s %s", job.id, state)
	}
}

// jobCounts returns the number of jobs per state.
func (s *Server) jobCounts() map[JobState]int {
	counts := make(map[JobState]int)
	for _, j := range s.Jobs() {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	return counts
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Info("datamimed: " + fmt.Sprintf(format, args...))
	}
}

// DebugVars snapshots the server's operational state for expvar publication
// (cmd/datamimed -debug exposes it at /debug/vars under "datamimed").
func (s *Server) DebugVars() interface{} {
	cs := s.cache.Stats()
	dc := s.dispatcher.Counters()
	return map[string]interface{}{
		"build":             buildinfo.Read().Vars(),
		"jobs":              s.jobCounts(),
		"workers":           s.cfg.Workers,
		"workers_busy":      int64(s.metrics.workersBusy.Value()),
		"cache_hits":        cs.Hits,
		"cache_misses":      cs.Misses,
		"cache_evictions":   cs.Evictions,
		"cache_entries":     cs.Entries,
		"fleet_workers":     len(s.dispatcher.Workers()),
		"dispatch_queue":    s.dispatcher.QueueDepth(),
		"dispatch":          dc,
		"evaluations_total": int64(s.metrics.evalsTotal.Value()),
		"skipped_total":     int64(s.metrics.skippedTotal.Value()),
		"retried_total":     int64(s.metrics.retriedTotal.Value()),
		"sim_cycles_total":  s.metrics.cyclesTotal.Value(),
		"sse_subscribers":   int64(s.metrics.sseActive.Value()),
		"telemetry_enabled": s.cfg.Telemetry,
		"uptime_seconds":    time.Since(s.started).Seconds(),
	}
}

// describeSpec renders a one-line spec summary for logs.
func describeSpec(spec JobSpec) string {
	target := spec.Workload
	if target == "" && spec.Metric != "" {
		target = fmt.Sprintf("%s=%g", spec.Metric, spec.MetricValue)
	}
	if target == "" {
		target = "inline-profile"
	}
	gen := spec.Generator
	if gen == "" {
		gen = "workload-default"
	}
	return fmt.Sprintf("target=%s generator=%s iterations=%d", target, gen, spec.Iterations)
}

// allStates lists every job state in a stable order for /metrics output.
func allStates() []JobState {
	return []JobState{JobQueued, JobRunning, JobSucceeded, JobFailed, JobCanceled}
}
