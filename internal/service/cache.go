// Package service wraps Datamime's search loop in a long-running
// benchmark-generation service: a bounded worker pool executes search jobs
// submitted over HTTP/JSON, a content-addressed evaluation cache shares
// profiling work across jobs (and, via /v1/cache, across a worker fleet),
// per-job JSON checkpoints make every in-flight search resumable after a
// crash or restart, and a dispatcher can shard candidate evaluations across
// registered datamime-worker processes. cmd/datamimed is the server binary.
package service

import (
	"datamime/internal/backend"
)

// Cache is the coordinator's bounded LRU evaluation cache, shared by every
// job a server runs: a resubmitted or warm-started search re-reads its
// profiles here instead of re-simulating them. It doubles as the fleet's
// shared cache tier, served to workers at /v1/cache/{key}, and feeds the
// /metrics hit/miss/eviction counters. It is the same implementation the
// workers use locally (backend.LRU).
type Cache = backend.LRU

// NewCache builds a cache holding up to capacity profiles (<= 0 selects the
// default of 4096).
func NewCache(capacity int) *Cache {
	return backend.NewLRU(capacity)
}
