// Package service wraps Datamime's search loop in a long-running
// benchmark-generation service: a bounded worker pool executes search jobs
// submitted over HTTP/JSON, a content-addressed evaluation cache shares
// profiling work across jobs, and per-job JSON checkpoints make every
// in-flight search resumable after a crash or restart. cmd/datamimed is the
// server binary.
package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"datamime/internal/core"
	"datamime/internal/profile"
)

// Cache is a bounded LRU implementation of core.EvalCache, shared by every
// job a server runs: a resubmitted or warm-started search re-reads its
// profiles here instead of re-simulating them. It also feeds the
// /metrics hit and miss counters, which are atomics so readers never
// contend with the structural lock.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type cacheEntry struct {
	key  string
	prof *profile.Profile
}

// NewCache builds a cache holding up to capacity profiles (<= 0 selects the
// default of 4096).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get implements core.EvalCache.
func (c *Cache) Get(key string) (*profile.Profile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).prof, true
}

// Put implements core.EvalCache.
func (c *Cache) Put(key string, p *profile.Profile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).prof = p
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, prof: p})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Stats returns the cumulative hit and miss counts and the current size.
func (c *Cache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), n
}

var _ core.EvalCache = (*Cache)(nil)
