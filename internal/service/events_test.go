package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"datamime/internal/datagen"
	"datamime/internal/inspect"
	"datamime/internal/telemetry"
)

// newTelemetryServer is newTestServer with per-job telemetry enabled.
func newTelemetryServer(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := New(Config{
		Workers:       1,
		CheckpointDir: dir,
		Generators:    []datagen.Generator{testGenerator()},
		Telemetry:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	data  string
}

// readSSE consumes an SSE stream until EOF, returning the frames.
func readSSE(t *testing.T, resp *http.Response) []sseFrame {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return frames
}

// TestSSEStreamsEventsInOrder: a live job's /events stream delivers one eval
// event per iteration in iteration order, interleaves phase spans when
// telemetry is on, and closes cleanly with a done frame at completion.
func TestSSEStreamsEventsInOrder(t *testing.T) {
	svc := newTelemetryServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const iterations = 12
	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", testSpec(iterations, 21), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	resp, err := ts.Client().Get(ts.URL + "/jobs/" + submitted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	frames := readSSE(t, resp)
	if len(frames) == 0 {
		t.Fatal("no SSE frames received")
	}
	last := frames[len(frames)-1]
	if last.event != "done" || !strings.Contains(last.data, "succeeded") {
		t.Fatalf("stream did not end with done/succeeded: %+v", last)
	}

	var evalIters []int
	spans := 0
	for _, fr := range frames[:len(frames)-1] {
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(fr.data), &ev); err != nil {
			t.Fatalf("frame %q: %v", fr.data, err)
		}
		if fr.event != ev.Type {
			t.Fatalf("SSE event name %q != payload type %q", fr.event, ev.Type)
		}
		if ev.Job != submitted.ID {
			t.Fatalf("event for job %q on %q's stream", ev.Job, submitted.ID)
		}
		switch ev.Type {
		case telemetry.TypeEval:
			evalIters = append(evalIters, ev.Iter)
			if !ev.Skipped {
				if _, ok := ev.Attrs[telemetry.AttrBestError]; !ok {
					t.Fatalf("eval event without best_error: %+v", ev)
				}
			}
		case telemetry.TypeSpan:
			spans++
		}
	}
	if len(evalIters) != iterations {
		t.Fatalf("streamed %d eval events, want %d (%v)", len(evalIters), iterations, evalIters)
	}
	for i, it := range evalIters {
		if it != i {
			t.Fatalf("eval events out of iteration order: %v", evalIters)
		}
	}
	if spans == 0 {
		t.Fatal("no phase spans streamed with telemetry enabled")
	}
}

// bayesSpec is testSpec with the default (GP) optimizer, so the search emits
// search.diagnostics snapshots once past the initial design.
func bayesSpec(iterations int, seed uint64) JobSpec {
	spec := testSpec(iterations, seed)
	spec.Optimizer = ""
	return spec
}

// TestSSEDiagnosticsFramesPrecedeDone: a GP-backed job's event stream carries
// search.diagnostics frames, every one of them strictly before the terminal
// done frame, and GET /jobs/{id}/diagnostics serves the matching summary.
func TestSSEDiagnosticsFramesPrecedeDone(t *testing.T) {
	svc := newTelemetryServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", bayesSpec(10, 7), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + submitted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	frames := readSSE(t, resp)
	doneIdx := -1
	var diagIdx []int
	for i, fr := range frames {
		switch fr.event {
		case "done":
			doneIdx = i
		case telemetry.TypeSearchDiagnostics:
			diagIdx = append(diagIdx, i)
			var ev telemetry.Event
			if err := json.Unmarshal([]byte(fr.data), &ev); err != nil {
				t.Fatalf("diagnostics frame %q: %v", fr.data, err)
			}
			if ev.Attrs[telemetry.DiagObservations] == 0 || ev.Attrs[telemetry.DiagCandidates] == 0 {
				t.Fatalf("diagnostics frame incomplete: %+v", ev)
			}
		}
	}
	if len(diagIdx) == 0 {
		t.Fatal("no search.diagnostics frames streamed")
	}
	if doneIdx != len(frames)-1 {
		t.Fatalf("done frame at %d of %d, want last", doneIdx, len(frames))
	}
	for _, i := range diagIdx {
		if i >= doneIdx {
			t.Fatalf("search.diagnostics frame %d not before done frame %d", i, doneIdx)
		}
	}

	// The diagnostics endpoint serves the same snapshots from the trace.
	var diag struct {
		ID          string `json:"id"`
		State       JobState
		Diagnostics *inspect.DiagnosticsSummary `json:"diagnostics"`
	}
	if code := httpJSON(t, ts, "GET", "/jobs/"+submitted.ID+"/diagnostics", nil, &diag); code != http.StatusOK {
		t.Fatalf("GET diagnostics = %d", code)
	}
	if diag.Diagnostics == nil {
		t.Fatal("diagnostics endpoint returned null for a GP job")
	}
	if diag.Diagnostics.Snapshots != len(diagIdx) {
		t.Fatalf("endpoint has %d snapshots, stream carried %d frames",
			diag.Diagnostics.Snapshots, len(diagIdx))
	}
	if len(diag.Diagnostics.Records) != diag.Diagnostics.Snapshots {
		t.Fatalf("summary records %d != snapshots %d",
			len(diag.Diagnostics.Records), diag.Diagnostics.Snapshots)
	}
	if code := httpJSON(t, ts, "GET", "/jobs/nope/diagnostics", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing job diagnostics = %d, want 404", code)
	}

	// The gp_* metric families saw the snapshots.
	if svc.metrics.gpLogMarginal.Value() == 0 && svc.metrics.gpCoverage2.Value() == 0 {
		t.Fatal("diagnostics metrics never updated")
	}
}

// TestSSEClientDisconnect: an abandoned subscription is cleaned up (the
// handler returns and the subscriber gauge drops) without affecting the job.
func TestSSEClientDisconnect(t *testing.T) {
	svc := newTelemetryServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", testSpec(500, 8), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/jobs/"+submitted.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscriber to register", func() bool { return svc.metrics.sseActive.Value() == 1 })
	cancel()
	resp.Body.Close()
	waitFor(t, "subscriber cleanup after disconnect", func() bool { return svc.metrics.sseActive.Value() == 0 })

	if code := httpJSON(t, ts, "POST", "/jobs/"+submitted.ID+"/cancel", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel = %d", code)
	}
	waitFor(t, "job to cancel", func() bool {
		var st JobStatus
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State == JobCanceled
	})
}

// TestSSESubscriberLifecycle: repeated connect/drop cycles leak nothing —
// after the subscribers disconnect, both the sse_subscribers gauge and the
// process goroutine count return to their pre-subscription baseline.
func TestSSESubscriberLifecycle(t *testing.T) {
	svc := newTelemetryServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", testSpec(100_000, 5), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitFor(t, "job to run", func() bool {
		var st JobStatus
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State == JobRunning
	})
	// The running job's batch goroutines come and go, so the baseline is a
	// low-water mark the post-drop count only has to dip back to.
	baseline := runtime.NumGoroutine()

	const subscribers = 4
	for round := 0; round < 2; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var resps []*http.Response
		for i := 0; i < subscribers; i++ {
			req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/jobs/"+submitted.ID+"/events", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resps = append(resps, resp)
		}
		waitFor(t, "subscribers to register", func() bool {
			return svc.metrics.sseActive.Value() == subscribers
		})
		cancel()
		for _, resp := range resps {
			resp.Body.Close()
		}
		waitFor(t, "subscriber gauge to return to baseline", func() bool {
			return svc.metrics.sseActive.Value() == 0
		})
		waitFor(t, "goroutine count to return to baseline", func() bool {
			return runtime.NumGoroutine() <= baseline+2
		})
	}

	if code := httpJSON(t, ts, "POST", "/jobs/"+submitted.ID+"/cancel", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel = %d", code)
	}
	waitFor(t, "job to cancel", func() bool {
		var st JobStatus
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State == JobCanceled
	})
}

// TestArtifactReplaysJobTrace: the acceptance criterion at the service
// level — the exported JSONL artifact replays to exactly the job's
// best-error series.
func TestArtifactReplaysJobTrace(t *testing.T) {
	svc := newTelemetryServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", testSpec(10, 4), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	var st JobStatus
	waitFor(t, "job to succeed", func() bool {
		st = JobStatus{}
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State == JobSucceeded
	})
	want := make([]float64, len(st.Trace))
	for i, rec := range st.Trace {
		want[i] = rec.BestError
	}

	resp, err := ts.Client().Get(ts.URL + "/jobs/" + submitted.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact = %d", resp.StatusCode)
	}
	replayed, err := telemetry.ReplayBestTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, want) {
		t.Fatalf("artifact replay diverged:\nreplayed %v\njob      %v", replayed, want)
	}

	// The job status carries wall-clock fields now that it finished.
	if st.Started == nil || st.Finished == nil || st.DurationSeconds <= 0 {
		t.Fatalf("missing timing fields: started=%v finished=%v duration=%g",
			st.Started, st.Finished, st.DurationSeconds)
	}

	// Duration also appears in the listing.
	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	httpJSON(t, ts, "GET", "/jobs", nil, &listing)
	if len(listing.Jobs) != 1 {
		t.Fatalf("listing has %d jobs", len(listing.Jobs))
	}
	if listing.Jobs[0].DurationSeconds <= 0 || listing.Jobs[0].Started == nil {
		t.Fatalf("listing missing timing fields: %+v", listing.Jobs[0])
	}
}

// TestArtifactFromRestoredJob: a finished job restored from disk (whose
// in-memory event log is gone) still exports a replayable artifact,
// synthesized from its checkpoint-rebuilt trace.
func TestArtifactFromRestoredJob(t *testing.T) {
	dir := t.TempDir()
	svc := newTelemetryServer(t, dir)
	ts := httptest.NewServer(svc.Handler())

	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", testSpec(6, 13), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	var st JobStatus
	waitFor(t, "job to succeed", func() bool {
		st = JobStatus{}
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State == JobSucceeded
	})
	want := make([]float64, len(st.Trace))
	for i, rec := range st.Trace {
		want[i] = rec.BestError
	}
	ts.Close()
	svc.Close()

	svc2 := newTelemetryServer(t, dir)
	defer svc2.Close()
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	resp, err := ts2.Client().Get(ts2.URL + fmt.Sprintf("/jobs/%s/artifact", submitted.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	replayed, err := telemetry.ReplayBestTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, want) {
		t.Fatalf("restored artifact diverged:\nreplayed %v\nwant     %v", replayed, want)
	}
}
