package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"datamime/internal/datagen"
	"datamime/internal/telemetry"
)

// TestObservatoryMetricsFamilies: the runtime-observatory families — sim
// runs, per-worker busy time, budget waits, GP factor diagnostics, cache
// misses, SSE drops — appear on /metrics once a telemetry-enabled job runs.
func TestObservatoryMetricsFamilies(t *testing.T) {
	svc := newTelemetryServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", testSpec(6, 31), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitFor(t, "job to finish", func() bool {
		var st JobStatus
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State.terminal()
	})

	samples := scrape(t, ts)
	byName := map[string][]metricSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}
	for _, want := range []string{
		"datamimed_sim_runs_total",
		"datamimed_profile_worker_busy_seconds_total",
		"datamimed_budget_wait_seconds_total",
		"datamimed_gp_cholesky_appends_total",
		"datamimed_gp_cholesky_rebuilds_total",
		"datamimed_gp_jitter_level_max",
		"datamimed_eval_cache_misses_total",
		"datamimed_sse_dropped_total",
	} {
		if len(byName[want]) == 0 {
			t.Errorf("missing metric family %s", want)
		}
	}
	if v := byName["datamimed_sim_runs_total"]; len(v) > 0 && v[0].value == 0 {
		t.Error("datamimed_sim_runs_total = 0 after a telemetry job ran")
	}
	busy := byName["datamimed_profile_worker_busy_seconds_total"]
	if len(busy) == 0 {
		t.Error("no per-worker busy series recorded")
	}
	for _, s := range busy {
		if s.labels["worker"] == "" {
			t.Error("per-worker busy sample without a worker label")
		}
		if s.value < 0 {
			t.Errorf("negative worker busy seconds %g", s.value)
		}
	}
	if v := byName["datamimed_eval_cache_misses_total"]; len(v) > 0 && v[0].value == 0 {
		t.Error("datamimed_eval_cache_misses_total = 0 after fresh evaluations")
	}
}

// TestJobStatusCacheMissMetrics: job status JSON carries cache_misses, and
// hits + misses account for every non-skipped evaluation.
func TestJobStatusCacheMissMetrics(t *testing.T) {
	svc := newTestServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", testSpec(6, 5), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	var st JobStatus
	waitFor(t, "job to finish", func() bool {
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State == JobSucceeded
	})
	if st.Evaluations == 0 {
		t.Fatal("job finished with zero evaluations")
	}
	if st.CacheHits+st.CacheMisses != st.Evaluations {
		t.Errorf("cache hits %d + misses %d != evaluations %d",
			st.CacheHits, st.CacheMisses, st.Evaluations)
	}
	if st.CacheMisses == 0 {
		t.Error("cache_misses = 0: first-time evaluations must miss")
	}

	// The raw JSON must expose the field under its documented name.
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + submitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := raw["cache_misses"]; !ok {
		t.Error("status JSON has no cache_misses key")
	}
}

// TestJobTraceEndpointTelemetry: GET /jobs/{id}/trace exports a structurally
// valid Perfetto trace with worker tracks for a telemetry-enabled job.
func TestJobTraceEndpointTelemetry(t *testing.T) {
	svc := newTelemetryServer(t, "")
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", testSpec(4, 11), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitFor(t, "job to finish", func() bool {
		var st JobStatus
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State.terminal()
	})

	resp, err := ts.Client().Get(ts.URL + "/jobs/" + submitted.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	st, err := telemetry.ValidateTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spans == 0 || st.Instants == 0 {
		t.Errorf("trace carries no timeline content: %+v", st)
	}
	if st.WorkerTracks == 0 {
		t.Errorf("trace has no worker tracks: %+v", st)
	}

	if code := httpJSON(t, ts, "GET", "/jobs/no-such/trace", nil, nil); code != http.StatusNotFound {
		t.Errorf("missing-job trace = %d, want 404", code)
	}
}

// TestSSESlowConsumerBacklogDrop: a subscriber whose pending batch exceeds
// SSEMaxBacklog loses the oldest events — announced via one "dropped" frame
// and counted on the drop counter — and the search-side appendEvent path
// never blocks on it.
func TestSSESlowConsumerBacklogDrop(t *testing.T) {
	svc, err := New(Config{
		Workers:       1,
		Generators:    []datagen.Generator{testGenerator()},
		SSEMaxBacklog: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Hand-build a running job whose event log already exceeds the backlog
	// cap before the subscriber connects: its first batch must drop.
	job := &Job{id: "job-slow", state: JobRunning, done: make(chan struct{}), created: time.Now()}
	svc.mu.Lock()
	svc.jobs[job.id] = job
	svc.order = append(svc.order, job.id)
	svc.mu.Unlock()

	const total = 100
	start := time.Now()
	for i := 0; i < total; i++ {
		job.appendEvent(telemetry.Event{Type: telemetry.TypeEval, Iter: i,
			TimeNS: time.Now().UnixNano(),
			Attrs:  map[string]float64{telemetry.AttrError: 0.5, telemetry.AttrBestError: 0.5}})
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("appendEvent blocked for %v with no subscriber draining", elapsed)
	}

	respCh := make(chan *http.Response, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/jobs/job-slow/events")
		if err != nil {
			t.Error(err)
			close(respCh)
			return
		}
		respCh <- resp
	}()
	resp, ok := <-respCh
	if !ok {
		t.FailNow()
	}
	svc.finish(job, JobSucceeded, "")

	frames := readSSE(t, resp)
	var droppedFrames, evalFrames int
	var droppedCount float64
	for _, fr := range frames {
		switch fr.event {
		case "dropped":
			droppedFrames++
			var d struct {
				Dropped float64 `json:"dropped"`
			}
			if err := json.Unmarshal([]byte(fr.data), &d); err != nil {
				t.Fatalf("dropped frame data %q: %v", fr.data, err)
			}
			droppedCount += d.Dropped
		case "eval":
			evalFrames++
		}
	}
	if droppedFrames == 0 {
		t.Fatal("no dropped frame despite backlog over the cap")
	}
	if droppedCount == 0 || evalFrames == total {
		t.Errorf("dropped %g events, delivered %d/%d evals — backlog cap had no effect",
			droppedCount, evalFrames, total)
	}
	if float64(evalFrames)+droppedCount != total {
		t.Errorf("delivered %d + dropped %g != appended %d", evalFrames, droppedCount, total)
	}
	if got := svc.metrics.sseDropped.Value(); got != droppedCount {
		t.Errorf("sseDropped counter %g != announced drops %g", got, droppedCount)
	}
}

// TestSSEBacklogDefaultKeepsEverything: with the default (large) backlog
// cap, a subscriber joining after a modest event log still receives the
// full history — the drop path stays dormant.
func TestSSEBacklogDefaultKeepsEverything(t *testing.T) {
	svc := newTestServer(t, "")
	defer svc.Close()
	if svc.cfg.SSEMaxBacklog != 4096 {
		t.Fatalf("default SSEMaxBacklog = %d, want 4096", svc.cfg.SSEMaxBacklog)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var submitted struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, ts, "POST", "/jobs", testSpec(5, 13), &submitted); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitFor(t, "job to finish", func() bool {
		var st JobStatus
		httpJSON(t, ts, "GET", "/jobs/"+submitted.ID, nil, &st)
		return st.State == JobSucceeded
	})
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + submitted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	frames := readSSE(t, resp)
	evals := 0
	for _, fr := range frames {
		if fr.event == "dropped" {
			t.Error("dropped frame under the default backlog cap")
		}
		if fr.event == "eval" {
			evals++
		}
	}
	if evals != 5 {
		t.Errorf("replayed %d eval frames, want 5", evals)
	}
	if !strings.Contains(frames[len(frames)-1].data, "succeeded") {
		t.Errorf("final frame %+v does not carry the terminal state", frames[len(frames)-1])
	}
}
