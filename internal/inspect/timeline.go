package inspect

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"datamime/internal/telemetry"
)

// WorkerStat is one profiler-pool worker's occupancy over the run.
type WorkerStat struct {
	// Worker is the pool index (0 also covers the serial path).
	Worker int
	// Runs counts profile.sim spans the worker executed.
	Runs int
	// BusyNS is the summed span duration.
	BusyNS int64
}

// Timeline is the utilization analysis of a run's profile.sim spans: how
// long each profiler worker was busy, how much wall-clock the simulation
// phase covered, and how well the pool overlapped work. All figures derive
// from the artifact's wall-clock stamps, so the analysis needs a run that
// was recorded live (restored jobs synthesize unstamped events and yield an
// empty timeline).
type Timeline struct {
	// Workers lists per-worker occupancy, ordered by pool index.
	Workers []WorkerStat
	// BusyNS is the summed simulation time across all workers.
	BusyNS int64
	// WallNS is the union length of all simulation intervals — the
	// wall-clock time during which at least one worker was simulating.
	WallNS int64
	// SerialNS is the portion of WallNS with exactly one busy worker: the
	// simulation phase's critical-path-like share that no amount of pool
	// width can compress.
	SerialNS int64
	// BudgetWaits and BudgetWaitNS total the budget-semaphore stalls.
	BudgetWaits  int
	BudgetWaitNS int64
	// SpanNS is the run's full first-to-last span extent (any phase),
	// giving the share of the run the simulation phase accounts for.
	SpanNS int64
	// Remote lists per-remote-worker dispatch lanes (eval.remote spans),
	// ordered by worker ID with the local fallback (ID -1) first; empty for
	// runs that never dispatched. DispatchRetries and DispatchFallbacks
	// total the run's dispatch churn instants.
	Remote            []RemoteStat
	DispatchRetries   int
	DispatchFallbacks int

	// Fleet lists per-fleet-worker simulation occupancy, built from the
	// spans remote workers shipped back (rebased onto the coordinator
	// clock and tagged with the fleet worker ID). Empty for runs without
	// span shipping.
	Fleet []FleetStat
	// FleetBusyNS is the summed remote simulation time across the fleet;
	// BusyNS above covers only this process's profiler pool, so the two
	// together are the run's total simulation work.
	FleetBusyNS int64
	// FleetWallNS is the union extent of all simulation intervals — local
	// and remote — on the rebased shared timeline: the denominator of the
	// fleet-wide occupancy figure.
	FleetWallNS int64
	// FleetBudgetWaits / FleetBudgetWaitNS total the budget-semaphore
	// stalls observed on remote workers.
	FleetBudgetWaits  int
	FleetBudgetWaitNS int64
	// CacheProbes / CacheProbeHits count the worker-side cache lookups
	// shipped back as cache.probe spans.
	CacheProbes    int
	CacheProbeHits int
	// DispatchOverheadNS sums, over eval.remote round trips that carried a
	// worker-side duration, the round trip minus the worker's own
	// evaluation time — serialization, network, and queueing overhead.
	// When a worker's clock-offset uncertainty exceeds the measured round
	// trip, a sample can come out negative; such samples are floored at
	// zero (and counted in DispatchOverheadClamped) rather than allowed to
	// cancel real overhead out of the sum.
	DispatchOverheadNS int64
	// DispatchOverheadSamples counts round trips that carried a worker-side
	// duration; DispatchOverheadClamped counts how many of them were
	// floored at zero.
	DispatchOverheadSamples int
	DispatchOverheadClamped int
	// UnstampedSpans counts span events the artifact carried without
	// wall-clock stamps; they are invisible to every figure above.
	UnstampedSpans int
}

// RemoteStat is one remote evaluation worker's lane over the run.
type RemoteStat struct {
	// Worker is the dispatcher-assigned worker ID (-1 = local fallback).
	Worker int
	// Evals counts eval.remote round trips served by this worker.
	Evals int
	// BusyNS is the summed round-trip duration.
	BusyNS int64
	// Retries sums the failed attempts that preceded this worker's
	// successful evaluations.
	Retries int
}

// FleetStat is one fleet worker's simulation occupancy, from shipped spans.
type FleetStat struct {
	// Worker is the dispatcher-assigned fleet worker ID (-1 = spans from
	// evaluations the dispatcher served via the local fallback).
	Worker int
	// Sims counts profile.sim spans the worker executed.
	Sims int
	// BusyNS is the summed simulation time.
	BusyNS int64
	// WallNS is the union extent of this worker's simulation intervals.
	WallNS int64
	// Lanes is the number of distinct profiler-pool lanes observed on the
	// worker — its effective intra-evaluation parallelism.
	Lanes int
}

// Efficiency is the worker's parallel efficiency: busy time divided by its
// covered wall-clock per observed lane (1.0 = every lane always busy).
func (f FleetStat) Efficiency() float64 {
	if f.WallNS <= 0 || f.Lanes <= 0 {
		return 0
	}
	return float64(f.BusyNS) / float64(f.WallNS) / float64(f.Lanes)
}

// boundary is one interval edge for the union sweeps.
type boundary struct {
	at    int64
	delta int
}

// sweep measures the union length of the intervals behind bounds (covered)
// and the portion covered by exactly one interval (serial). Ends sort before
// starts at the same instant so zero-length touching intervals don't inflate
// depth.
func sweep(bounds []boundary) (covered, serial int64) {
	sort.Slice(bounds, func(i, j int) bool {
		if bounds[i].at != bounds[j].at {
			return bounds[i].at < bounds[j].at
		}
		return bounds[i].delta < bounds[j].delta
	})
	depth := 0
	var prev int64
	for _, bd := range bounds {
		if depth > 0 {
			covered += bd.at - prev
		}
		if depth == 1 {
			serial += bd.at - prev
		}
		depth += bd.delta
		prev = bd.at
	}
	return covered, serial
}

// NewTimeline builds the utilization analysis from a run's retained spans.
// Spans shipped back from fleet workers (tagged with the fleet-worker
// attribute, already rebased onto the coordinator clock) feed the Fleet
// figures and are kept out of the local pool's — each process's occupancy is
// measured against its own lanes.
func NewTimeline(run *Run) *Timeline {
	t := &Timeline{UnstampedSpans: run.UnstampedSpans}
	byWorker := make(map[int]*WorkerStat)
	byRemote := make(map[int]*RemoteStat)
	byFleet := make(map[int]*FleetStat)
	fleetBounds := make(map[int][]boundary)
	fleetLanes := make(map[int]map[int]bool)
	var bounds, simBounds []boundary
	var lo, hi int64
	for i, sp := range run.SpanLog {
		if i == 0 || sp.StartNS < lo {
			lo = sp.StartNS
		}
		if i == 0 || sp.EndNS > hi {
			hi = sp.EndNS
		}
		t.SpanNS = hi - lo
		fw, fleet := sp.Attrs[telemetry.AttrFleetWorker]
		switch sp.Phase {
		case telemetry.PhaseSimRun:
			d := sp.EndNS - sp.StartNS
			simBounds = append(simBounds, boundary{sp.StartNS, 1}, boundary{sp.EndNS, -1})
			if fleet {
				id := int(fw)
				fs := byFleet[id]
				if fs == nil {
					fs = &FleetStat{Worker: id}
					byFleet[id] = fs
					fleetLanes[id] = make(map[int]bool)
				}
				fs.Sims++
				fs.BusyNS += d
				t.FleetBusyNS += d
				fleetLanes[id][int(sp.Attrs[telemetry.AttrWorker])] = true
				fleetBounds[id] = append(fleetBounds[id],
					boundary{sp.StartNS, 1}, boundary{sp.EndNS, -1})
				continue
			}
			w := int(sp.Attrs[telemetry.AttrWorker])
			ws := byWorker[w]
			if ws == nil {
				ws = &WorkerStat{Worker: w}
				byWorker[w] = ws
			}
			ws.Runs++
			ws.BusyNS += d
			t.BusyNS += d
			bounds = append(bounds, boundary{sp.StartNS, 1}, boundary{sp.EndNS, -1})
		case telemetry.PhaseBudgetWait:
			if fleet {
				t.FleetBudgetWaits++
				t.FleetBudgetWaitNS += sp.EndNS - sp.StartNS
				continue
			}
			t.BudgetWaits++
			t.BudgetWaitNS += sp.EndNS - sp.StartNS
		case telemetry.PhaseCacheProbe:
			t.CacheProbes++
			if sp.Attrs[telemetry.AttrCacheHit] > 0 {
				t.CacheProbeHits++
			}
		case telemetry.PhaseRemoteEval:
			w := int(sp.Attrs[telemetry.AttrRemoteWorker])
			rs := byRemote[w]
			if rs == nil {
				rs = &RemoteStat{Worker: w}
				byRemote[w] = rs
			}
			rs.Evals++
			rs.BusyNS += sp.EndNS - sp.StartNS
			rs.Retries += int(sp.Attrs[telemetry.AttrRetries])
			if wns := int64(sp.Attrs[telemetry.AttrWorkerNS]); wns > 0 {
				t.DispatchOverheadSamples++
				if over := (sp.EndNS - sp.StartNS) - wns; over > 0 {
					t.DispatchOverheadNS += over
				} else if over < 0 {
					t.DispatchOverheadClamped++
				}
			}
		case telemetry.PhaseDispatchRetry:
			t.DispatchRetries++
		case telemetry.PhaseDispatchFallback:
			t.DispatchFallbacks++
		}
	}
	for _, rs := range byRemote {
		t.Remote = append(t.Remote, *rs)
	}
	sort.Slice(t.Remote, func(i, j int) bool { return t.Remote[i].Worker < t.Remote[j].Worker })
	for _, ws := range byWorker {
		t.Workers = append(t.Workers, *ws)
	}
	sort.Slice(t.Workers, func(i, j int) bool { return t.Workers[i].Worker < t.Workers[j].Worker })
	for id, fs := range byFleet {
		fs.WallNS, _ = sweep(fleetBounds[id])
		fs.Lanes = len(fleetLanes[id])
		t.Fleet = append(t.Fleet, *fs)
	}
	sort.Slice(t.Fleet, func(i, j int) bool { return t.Fleet[i].Worker < t.Fleet[j].Worker })

	t.WallNS, t.SerialNS = sweep(bounds)
	t.FleetWallNS, _ = sweep(simBounds)
	return t
}

// FleetOccupancy is the fleet-wide simulation occupancy: total simulation
// time (local pool + shipped remote spans) over the union wall-clock of all
// simulation intervals on the shared timeline.
func (t *Timeline) FleetOccupancy() float64 {
	if t.FleetWallNS <= 0 {
		return 0
	}
	return float64(t.BusyNS+t.FleetBusyNS) / float64(t.FleetWallNS)
}

// RemoteShare is the fraction of total simulation time executed on fleet
// workers rather than this process's pool.
func (t *Timeline) RemoteShare() float64 {
	total := t.BusyNS + t.FleetBusyNS
	if total <= 0 {
		return 0
	}
	return float64(t.FleetBusyNS) / float64(total)
}

// Speedup is the parallel speedup the pool achieved over running the same
// simulations serially: total busy time divided by covered wall-clock.
func (t *Timeline) Speedup() float64 {
	if t.WallNS <= 0 {
		return 0
	}
	return float64(t.BusyNS) / float64(t.WallNS)
}

// Efficiency is the speedup per observed worker (1.0 = perfect overlap).
func (t *Timeline) Efficiency() float64 {
	if len(t.Workers) == 0 {
		return 0
	}
	return t.Speedup() / float64(len(t.Workers))
}

// SerialShare is the fraction of the simulation wall-clock spent with only
// one worker busy.
func (t *Timeline) SerialShare() float64 {
	if t.WallNS <= 0 {
		return 0
	}
	return float64(t.SerialNS) / float64(t.WallNS)
}

// RenderText writes the terminal utilization report: per-worker occupancy
// with bars, the pool-level overlap summary, then the dispatch lanes and —
// for runs with shipped fleet spans — the fleet-wide occupancy section.
func (t *Timeline) RenderText(w io.Writer) error {
	var b strings.Builder
	if len(t.Workers) == 0 && len(t.Fleet) == 0 {
		b.WriteString("no timed profile.sim spans in the artifact\n")
		b.WriteString("(record the run live with -trace/-artifact; restored jobs carry no timings)\n")
		if t.UnstampedSpans > 0 {
			fmt.Fprintf(&b, "%d span events carried no wall-clock stamp\n", t.UnstampedSpans)
		}
		_, err := io.WriteString(w, b.String())
		return err
	}
	if len(t.Workers) > 0 {
		fmt.Fprintf(&b, "profiler worker occupancy (%d workers, %s simulated over %s wall):\n",
			len(t.Workers), fms(t.BusyNS), fms(t.WallNS))
		fmt.Fprintf(&b, "  %-10s %6s %12s %10s\n", "worker", "runs", "busy", "occupancy")
		for _, ws := range t.Workers {
			occ := 0.0
			if t.WallNS > 0 {
				occ = float64(ws.BusyNS) / float64(t.WallNS)
			}
			fmt.Fprintf(&b, "  %-10s %6d %12s %10s  |%s|\n",
				fmt.Sprintf("worker %d", ws.Worker), ws.Runs, fms(ws.BusyNS), fpct(occ), asciiBar(occ, 24))
		}
		fmt.Fprintf(&b, "\nspeedup %.2fx over %d workers — parallel efficiency %s\n",
			t.Speedup(), len(t.Workers), fpct(t.Efficiency()))
		fmt.Fprintf(&b, "single-worker (serial) share of sim wall-clock: %s\n", fpct(t.SerialShare()))
	}
	if t.BudgetWaits > 0 {
		fmt.Fprintf(&b, "budget-semaphore stalls: %d totaling %s\n", t.BudgetWaits, fms(t.BudgetWaitNS))
	}
	if t.SpanNS > 0 && len(t.Workers) > 0 {
		fmt.Fprintf(&b, "simulation covers %s of the run's %s span extent\n",
			fpct(float64(t.WallNS)/float64(t.SpanNS)), fms(t.SpanNS))
	}
	if len(t.Remote) > 0 {
		var remoteBusy int64
		for _, rs := range t.Remote {
			remoteBusy += rs.BusyNS
		}
		fmt.Fprintf(&b, "\nremote dispatch lanes (%d lanes, %s of round trips):\n",
			len(t.Remote), fms(remoteBusy))
		fmt.Fprintf(&b, "  %-18s %6s %12s %8s\n", "lane", "evals", "busy", "retries")
		for _, rs := range t.Remote {
			name := fmt.Sprintf("remote worker %d", rs.Worker)
			if rs.Worker < 0 {
				name = "local fallback"
			}
			fmt.Fprintf(&b, "  %-18s %6d %12s %8d\n", name, rs.Evals, fms(rs.BusyNS), rs.Retries)
		}
		if t.DispatchRetries > 0 || t.DispatchFallbacks > 0 {
			fmt.Fprintf(&b, "dispatch churn: %d retried evaluations, %d local fallbacks\n",
				t.DispatchRetries, t.DispatchFallbacks)
		}
		if t.DispatchOverheadSamples > 0 {
			fmt.Fprintf(&b, "dispatch overhead (round trip minus worker eval time): %s over %d samples",
				fms(t.DispatchOverheadNS), t.DispatchOverheadSamples)
			if t.DispatchOverheadClamped > 0 {
				fmt.Fprintf(&b, " (%d clamped at zero: clock uncertainty exceeded the round trip)",
					t.DispatchOverheadClamped)
			}
			b.WriteString("\n")
		}
	}
	if len(t.Fleet) > 0 {
		fmt.Fprintf(&b, "\nfleet simulation occupancy (%d fleet processes, %s remote sim):\n",
			len(t.Fleet), fms(t.FleetBusyNS))
		fmt.Fprintf(&b, "  %-18s %6s %12s %6s %11s\n", "process", "sims", "busy", "lanes", "efficiency")
		for _, fs := range t.Fleet {
			name := fmt.Sprintf("fleet worker %d", fs.Worker)
			if fs.Worker < 0 {
				name = "fleet fallback"
			}
			fmt.Fprintf(&b, "  %-18s %6d %12s %6d %11s\n",
				name, fs.Sims, fms(fs.BusyNS), fs.Lanes, fpct(fs.Efficiency()))
		}
		fmt.Fprintf(&b, "fleet-wide occupancy: %s over %s covered sim wall (remote share %s)\n",
			fpct(t.FleetOccupancy()), fms(t.FleetWallNS), fpct(t.RemoteShare()))
		if t.FleetBudgetWaits > 0 {
			fmt.Fprintf(&b, "remote budget-semaphore stalls: %d totaling %s\n",
				t.FleetBudgetWaits, fms(t.FleetBudgetWaitNS))
		}
		if t.CacheProbes > 0 {
			fmt.Fprintf(&b, "worker cache probes: %d (%d hits)\n", t.CacheProbes, t.CacheProbeHits)
		}
	}
	if t.UnstampedSpans > 0 {
		fmt.Fprintf(&b, "\n%d span events carried no wall-clock stamp and are excluded above\n",
			t.UnstampedSpans)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
