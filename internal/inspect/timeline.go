package inspect

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"datamime/internal/telemetry"
)

// WorkerStat is one profiler-pool worker's occupancy over the run.
type WorkerStat struct {
	// Worker is the pool index (0 also covers the serial path).
	Worker int
	// Runs counts profile.sim spans the worker executed.
	Runs int
	// BusyNS is the summed span duration.
	BusyNS int64
}

// Timeline is the utilization analysis of a run's profile.sim spans: how
// long each profiler worker was busy, how much wall-clock the simulation
// phase covered, and how well the pool overlapped work. All figures derive
// from the artifact's wall-clock stamps, so the analysis needs a run that
// was recorded live (restored jobs synthesize unstamped events and yield an
// empty timeline).
type Timeline struct {
	// Workers lists per-worker occupancy, ordered by pool index.
	Workers []WorkerStat
	// BusyNS is the summed simulation time across all workers.
	BusyNS int64
	// WallNS is the union length of all simulation intervals — the
	// wall-clock time during which at least one worker was simulating.
	WallNS int64
	// SerialNS is the portion of WallNS with exactly one busy worker: the
	// simulation phase's critical-path-like share that no amount of pool
	// width can compress.
	SerialNS int64
	// BudgetWaits and BudgetWaitNS total the budget-semaphore stalls.
	BudgetWaits  int
	BudgetWaitNS int64
	// SpanNS is the run's full first-to-last span extent (any phase),
	// giving the share of the run the simulation phase accounts for.
	SpanNS int64
	// Remote lists per-remote-worker dispatch lanes (eval.remote spans),
	// ordered by worker ID with the local fallback (ID -1) first; empty for
	// runs that never dispatched. DispatchRetries and DispatchFallbacks
	// total the run's dispatch churn instants.
	Remote            []RemoteStat
	DispatchRetries   int
	DispatchFallbacks int
}

// RemoteStat is one remote evaluation worker's lane over the run.
type RemoteStat struct {
	// Worker is the dispatcher-assigned worker ID (-1 = local fallback).
	Worker int
	// Evals counts eval.remote round trips served by this worker.
	Evals int
	// BusyNS is the summed round-trip duration.
	BusyNS int64
	// Retries sums the failed attempts that preceded this worker's
	// successful evaluations.
	Retries int
}

// NewTimeline builds the utilization analysis from a run's retained spans.
func NewTimeline(run *Run) *Timeline {
	t := &Timeline{}
	byWorker := make(map[int]*WorkerStat)
	byRemote := make(map[int]*RemoteStat)
	type boundary struct {
		at    int64
		delta int
	}
	var bounds []boundary
	var lo, hi int64
	for i, sp := range run.SpanLog {
		if i == 0 || sp.StartNS < lo {
			lo = sp.StartNS
		}
		if i == 0 || sp.EndNS > hi {
			hi = sp.EndNS
		}
		t.SpanNS = hi - lo
		switch sp.Phase {
		case telemetry.PhaseSimRun:
			w := int(sp.Attrs[telemetry.AttrWorker])
			ws := byWorker[w]
			if ws == nil {
				ws = &WorkerStat{Worker: w}
				byWorker[w] = ws
			}
			ws.Runs++
			ws.BusyNS += sp.EndNS - sp.StartNS
			t.BusyNS += sp.EndNS - sp.StartNS
			bounds = append(bounds, boundary{sp.StartNS, 1}, boundary{sp.EndNS, -1})
		case telemetry.PhaseBudgetWait:
			t.BudgetWaits++
			t.BudgetWaitNS += sp.EndNS - sp.StartNS
		case telemetry.PhaseRemoteEval:
			w := int(sp.Attrs[telemetry.AttrRemoteWorker])
			rs := byRemote[w]
			if rs == nil {
				rs = &RemoteStat{Worker: w}
				byRemote[w] = rs
			}
			rs.Evals++
			rs.BusyNS += sp.EndNS - sp.StartNS
			rs.Retries += int(sp.Attrs[telemetry.AttrRetries])
		case telemetry.PhaseDispatchRetry:
			t.DispatchRetries++
		case telemetry.PhaseDispatchFallback:
			t.DispatchFallbacks++
		}
	}
	for _, rs := range byRemote {
		t.Remote = append(t.Remote, *rs)
	}
	sort.Slice(t.Remote, func(i, j int) bool { return t.Remote[i].Worker < t.Remote[j].Worker })
	for _, ws := range byWorker {
		t.Workers = append(t.Workers, *ws)
	}
	sort.Slice(t.Workers, func(i, j int) bool { return t.Workers[i].Worker < t.Workers[j].Worker })

	// Sweep the simulation interval boundaries to measure the covered union
	// and its single-worker (serial) share. Ends sort before starts at the
	// same instant so zero-length touching intervals don't inflate depth.
	sort.Slice(bounds, func(i, j int) bool {
		if bounds[i].at != bounds[j].at {
			return bounds[i].at < bounds[j].at
		}
		return bounds[i].delta < bounds[j].delta
	})
	depth := 0
	var prev int64
	for _, bd := range bounds {
		if depth > 0 {
			t.WallNS += bd.at - prev
		}
		if depth == 1 {
			t.SerialNS += bd.at - prev
		}
		depth += bd.delta
		prev = bd.at
	}
	return t
}

// Speedup is the parallel speedup the pool achieved over running the same
// simulations serially: total busy time divided by covered wall-clock.
func (t *Timeline) Speedup() float64 {
	if t.WallNS <= 0 {
		return 0
	}
	return float64(t.BusyNS) / float64(t.WallNS)
}

// Efficiency is the speedup per observed worker (1.0 = perfect overlap).
func (t *Timeline) Efficiency() float64 {
	if len(t.Workers) == 0 {
		return 0
	}
	return t.Speedup() / float64(len(t.Workers))
}

// SerialShare is the fraction of the simulation wall-clock spent with only
// one worker busy.
func (t *Timeline) SerialShare() float64 {
	if t.WallNS <= 0 {
		return 0
	}
	return float64(t.SerialNS) / float64(t.WallNS)
}

// RenderText writes the terminal utilization report: per-worker occupancy
// with bars, then the pool-level overlap summary.
func (t *Timeline) RenderText(w io.Writer) error {
	var b strings.Builder
	if len(t.Workers) == 0 {
		b.WriteString("no timed profile.sim spans in the artifact\n")
		b.WriteString("(record the run live with -trace/-artifact; restored jobs carry no timings)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	fmt.Fprintf(&b, "profiler worker occupancy (%d workers, %s simulated over %s wall):\n",
		len(t.Workers), fms(t.BusyNS), fms(t.WallNS))
	fmt.Fprintf(&b, "  %-10s %6s %12s %10s\n", "worker", "runs", "busy", "occupancy")
	for _, ws := range t.Workers {
		occ := 0.0
		if t.WallNS > 0 {
			occ = float64(ws.BusyNS) / float64(t.WallNS)
		}
		fmt.Fprintf(&b, "  %-10s %6d %12s %10s  |%s|\n",
			fmt.Sprintf("worker %d", ws.Worker), ws.Runs, fms(ws.BusyNS), fpct(occ), asciiBar(occ, 24))
	}
	fmt.Fprintf(&b, "\nspeedup %.2fx over %d workers — parallel efficiency %s\n",
		t.Speedup(), len(t.Workers), fpct(t.Efficiency()))
	fmt.Fprintf(&b, "single-worker (serial) share of sim wall-clock: %s\n", fpct(t.SerialShare()))
	if t.BudgetWaits > 0 {
		fmt.Fprintf(&b, "budget-semaphore stalls: %d totaling %s\n", t.BudgetWaits, fms(t.BudgetWaitNS))
	}
	if t.SpanNS > 0 {
		fmt.Fprintf(&b, "simulation covers %s of the run's %s span extent\n",
			fpct(float64(t.WallNS)/float64(t.SpanNS)), fms(t.SpanNS))
	}
	if len(t.Remote) > 0 {
		var remoteBusy int64
		for _, rs := range t.Remote {
			remoteBusy += rs.BusyNS
		}
		fmt.Fprintf(&b, "\nremote dispatch lanes (%d lanes, %s of round trips):\n",
			len(t.Remote), fms(remoteBusy))
		fmt.Fprintf(&b, "  %-18s %6s %12s %8s\n", "lane", "evals", "busy", "retries")
		for _, rs := range t.Remote {
			name := fmt.Sprintf("remote worker %d", rs.Worker)
			if rs.Worker < 0 {
				name = "local fallback"
			}
			fmt.Fprintf(&b, "  %-18s %6d %12s %8d\n", name, rs.Evals, fms(rs.BusyNS), rs.Retries)
		}
		if t.DispatchRetries > 0 || t.DispatchFallbacks > 0 {
			fmt.Fprintf(&b, "dispatch churn: %d retried evaluations, %d local fallbacks\n",
				t.DispatchRetries, t.DispatchFallbacks)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
