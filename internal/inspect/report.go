package inspect

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ReportOptions configures report construction.
type ReportOptions struct {
	// Title heads the report (default: the run's job ID or "datamime run").
	Title string
	// Bands are the quantile-band boundaries for the EMD attribution
	// (nil selects DefaultBands).
	Bands []float64
}

// Report is the assembled view of one run: the parsed artifact, the
// target/best profile pair (when available), and the ranked error
// attribution. Build it with NewReport, render it with RenderText or
// RenderHTML; both renderers are deterministic functions of the report.
type Report struct {
	Title    string
	Run      *Run
	Profiles *ProfilesDoc
	// Attribution ranks the error components, largest first. With complete
	// profiles it carries quantile-band decompositions; otherwise it falls
	// back to the artifact's recorded per-metric totals (no bands).
	Attribution []Attribution
}

// NewReport assembles a report. profiles may be nil; the eCDF overlays and
// quantile-band attribution then degrade to what the artifact alone records.
func NewReport(run *Run, profiles *ProfilesDoc, opts ReportOptions) *Report {
	r := &Report{Title: opts.Title, Run: run, Profiles: profiles}
	if r.Title == "" {
		if run.Job != "" {
			r.Title = run.Job
		} else {
			r.Title = "datamime run"
		}
	}
	if profiles.Complete() {
		r.Attribution = AttributeProfiles(profiles.Target, profiles.Best, opts.Bands)
	} else if comps := run.FinalComponents(); len(comps) > 0 {
		for _, name := range sortedComponentNames(comps) {
			r.Attribution = append(r.Attribution, Attribution{
				Component: name,
				Kind:      componentKind(name),
				Distance:  comps[name],
			})
		}
		sort.SliceStable(r.Attribution, func(i, j int) bool {
			if r.Attribution[i].Distance != r.Attribution[j].Distance {
				return r.Attribution[i].Distance > r.Attribution[j].Distance
			}
			return r.Attribution[i].Component < r.Attribution[j].Component
		})
	}
	return r
}

// totalAttribution sums the component distances (the unweighted Eq. 1 sum).
func (r *Report) totalAttribution() float64 {
	var t float64
	for _, a := range r.Attribution {
		t += a.Distance
	}
	return t
}

// fnum renders a value with six significant digits — enough to identify a
// run, short enough for a table.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// fpct renders a fraction as a percentage.
func fpct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// fms renders nanoseconds as milliseconds.
func fms(ns int64) string { return fmt.Sprintf("%.3fms", float64(ns)/1e6) }

// bandLabel names a band for its kind: quantile range for distributions,
// point index for curves.
func bandLabel(kind string, i, n int, b Band) string {
	if kind == KindCurve {
		return fmt.Sprintf("pt%d/%d", i+1, n)
	}
	return fmt.Sprintf("q%s-%s", trimPct(b.Lo), trimPct(b.Hi))
}

func trimPct(q float64) string {
	s := strconv.FormatFloat(q*100, 'f', -1, 64)
	return s
}

// asciiBar renders share as a fixed-width bar.
func asciiBar(share float64, width int) string {
	n := int(share*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// sparkline downsamples a series into an ASCII strip (5 levels), low values
// rendered low. It gives the terminal report a one-line convergence shape.
func sparkline(series []float64, width int) string {
	if len(series) == 0 {
		return ""
	}
	levels := []byte("_.-=#")
	r := rangeOf(series).pad()
	var b strings.Builder
	if len(series) < width {
		width = len(series)
	}
	for i := 0; i < width; i++ {
		v := series[i*len(series)/width]
		f := (v - r.Lo) / (r.Hi - r.Lo)
		idx := int(f * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteByte(levels[idx])
	}
	return b.String()
}

// RenderText writes the terminal report: run summary, ranked attribution
// table with per-band decomposition, and phase timings.
func (r *Report) RenderText(w io.Writer) error {
	var b strings.Builder
	run := r.Run
	fmt.Fprintf(&b, "datamime run report — %s\n", r.Title)
	if run.Header != "" {
		fmt.Fprintf(&b, "artifact: %s\n", run.Header)
	}
	if run.Malformed > 0 {
		fmt.Fprintf(&b, "warning: %d malformed artifact line(s) skipped\n", run.Malformed)
	}
	c := run.Counts()
	fmt.Fprintf(&b, "\niterations %d: evals %d, skipped %d, cache hits %d, retried %d, replayed %d\n",
		len(run.Evals), c.Evals, c.Skipped, c.CacheHits, c.Retried, c.Replayed)

	if best, ok := run.Best(); ok {
		fmt.Fprintf(&b, "best error %s at iteration %d\n", fnum(best.Error), best.Iter)
		if len(best.Params) > 0 {
			vals := make([]string, len(best.Params))
			for i, p := range best.Params {
				vals[i] = fnum(p)
			}
			fmt.Fprintf(&b, "best params [%s]\n", strings.Join(vals, " "))
		}
		trace := run.BestTrace()
		if len(trace) > 1 {
			fmt.Fprintf(&b, "convergence %s -> %s  |%s|\n",
				fnum(trace[0]), fnum(trace[len(trace)-1]), sparkline(trace, 48))
		}
	} else {
		fmt.Fprintf(&b, "no completed evaluations\n")
	}

	if len(r.Attribution) > 0 {
		r.renderAttributionText(&b)
	}
	r.renderHealthText(&b)
	r.renderPhasesText(&b)
	if tl := NewTimeline(run); len(tl.Workers) > 0 || len(tl.Fleet) > 0 {
		if len(tl.Workers) > 0 {
			fmt.Fprintf(&b, "\nprofiler utilization: %d workers, speedup %.2fx, parallel efficiency %s\n",
				len(tl.Workers), tl.Speedup(), fpct(tl.Efficiency()))
		}
		if len(tl.Fleet) > 0 {
			fmt.Fprintf(&b, "fleet: %d processes, occupancy %s, remote share %s\n",
				len(tl.Fleet), fpct(tl.FleetOccupancy()), fpct(tl.RemoteShare()))
		}
	}
	fmt.Fprintf(&b, "\neval cache: %d hits, %d misses%s\n",
		c.CacheHits, c.Misses, hitRateSuffix(c))
	_, err := io.WriteString(w, b.String())
	return err
}

// hitRateSuffix renders the cache hit rate when the run evaluated anything.
func hitRateSuffix(c Counts) string {
	if c.Evals == 0 {
		return ""
	}
	return fmt.Sprintf(" (%s hit rate)", fpct(float64(c.CacheHits)/float64(c.Evals)))
}

// renderAttributionText writes the ranked error-attribution table.
func (r *Report) renderAttributionText(b *strings.Builder) {
	total := r.totalAttribution()
	hasBands := false
	for _, a := range r.Attribution {
		if len(a.Bands) > 0 {
			hasBands = true
		}
	}
	fmt.Fprintf(b, "\nerror attribution (summed component distance %s):\n", fnum(total))
	for i, a := range r.Attribution {
		share := 0.0
		if total > 0 {
			share = a.Distance / total
		}
		fmt.Fprintf(b, "%3d. %-16s %-12s %10s  %6s of total",
			i+1, a.Component, a.Kind, fnum(a.Distance), fpct(share))
		if di := a.DominantBand(); di >= 0 && a.Distance > 0 {
			db := a.Bands[di]
			fmt.Fprintf(b, "  dominant %s (%s)",
				bandLabel(a.Kind, di, len(a.Bands), db), fpct(db.Share))
		}
		b.WriteString("\n")
		for j, band := range a.Bands {
			if a.Distance == 0 {
				continue
			}
			fmt.Fprintf(b, "       %-10s %10s  %6s  |%s|\n",
				bandLabel(a.Kind, j, len(a.Bands), band),
				fnum(band.Contribution), fpct(band.Share), asciiBar(band.Share, 24))
		}
	}
	if !hasBands {
		fmt.Fprintf(b, "  (no profile pair available — totals from artifact, no quantile bands)\n")
	}
}

// renderPhasesText writes the aggregated span timings.
func (r *Report) renderPhasesText(b *strings.Builder) {
	if len(r.Run.Phases) == 0 {
		return
	}
	names := make([]string, 0, len(r.Run.Phases))
	for k := range r.Run.Phases {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Fprintf(b, "\nphase timings (%d spans):\n", r.Run.Spans)
	fmt.Fprintf(b, "  %-16s %6s %12s %12s\n", "phase", "count", "total", "mean")
	for _, name := range names {
		st := r.Run.Phases[name]
		mean := int64(0)
		if st.Count > 0 {
			mean = st.TotalNS / int64(st.Count)
		}
		fmt.Fprintf(b, "  %-16s %6d %12s %12s\n", name, st.Count, fms(st.TotalNS), fms(mean))
	}
}
