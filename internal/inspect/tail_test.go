package inspect

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// sseServer serves a canned event stream the way datamimed's
// GET /jobs/{id}/events does.
func sseServer(t *testing.T, frames []string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fl := w.(http.Flusher)
		for _, f := range frames {
			_, _ = w.Write([]byte(f))
			fl.Flush()
		}
	}))
}

func TestFollowRendersStream(t *testing.T) {
	frames := []string{
		"event: eval\ndata: {\"type\":\"eval\",\"iter\":0,\"attrs\":{\"error\":0.9,\"best_error\":0.9}}\n\n",
		"event: span\ndata: {\"type\":\"span\",\"iter\":0,\"phase\":\"profile\",\"dur_ns\":5000000}\n\n",
		"event: eval\ndata: {\"type\":\"eval\",\"iter\":1,\"skipped\":true,\"msg\":\"generator failed\"}\n\n",
		"event: eval\ndata: {\"type\":\"eval\",\"iter\":2,\"attrs\":{\"error\":0.5,\"best_error\":0.5,\"cache_hit\":1}}\n\n",
		"event: done\ndata: {\"state\":\"done\"}\n\n",
	}
	srv := sseServer(t, frames)
	defer srv.Close()

	var out strings.Builder
	st, err := Follow(context.Background(), srv.Client(), srv.URL, &out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evals != 3 || st.Spans != 1 || !st.Done || st.FinalState != "done" {
		t.Errorf("stats %+v", st)
	}
	text := out.String()
	for _, want := range []string{
		"error 0.9", "span profile", "skipped: generator failed", "[cache]", "done: job done",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestFollowDroppedStream: a stream that ends without a done frame is an
// error — the caller must know the job did not finish.
func TestFollowDroppedStream(t *testing.T) {
	frames := []string{
		"event: eval\ndata: {\"type\":\"eval\",\"iter\":0,\"attrs\":{\"error\":0.9,\"best_error\":0.9}}\n\n",
	}
	srv := sseServer(t, frames)
	defer srv.Close()
	var out strings.Builder
	st, err := Follow(context.Background(), srv.Client(), srv.URL, &out)
	if err == nil {
		t.Fatal("want error for stream without done frame")
	}
	if st.Evals != 1 || st.Done {
		t.Errorf("stats %+v", st)
	}
}

func TestFollowHTTPError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no job"}`, http.StatusNotFound)
	}))
	defer srv.Close()
	var out strings.Builder
	if _, err := Follow(context.Background(), srv.Client(), srv.URL, &out); err == nil {
		t.Fatal("want error for 404")
	}
}
