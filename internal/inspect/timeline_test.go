package inspect

import (
	"strings"
	"testing"

	"datamime/internal/telemetry"
)

// remoteEvalRun builds a Run whose artifact carries eval.remote round trips
// with worker-reported durations: one with normal positive overhead and one
// whose worker-side time exceeds the measured round trip (the negative
// sample clock misalignment can produce).
func remoteEvalRun(t *testing.T) *Run {
	t.Helper()
	artifact := `{"type":"log","job":"job-1","time_ns":1000,"msg":"datamime run artifact"}
{"type":"span","job":"job-1","iter":0,"phase":"profile.sim","dur_ns":500000,"time_ns":1800000,"attrs":{"worker":0,"ways":8}}
{"type":"span","job":"job-1","iter":0,"phase":"eval.remote","dur_ns":1000000,"time_ns":2000000,"attrs":{"remote_worker":0,"worker_ns":600000}}
{"type":"span","job":"job-1","iter":1,"phase":"eval.remote","dur_ns":500000,"time_ns":3000000,"attrs":{"remote_worker":0,"worker_ns":900000}}
{"type":"eval","job":"job-1","iter":0,"time_ns":2100000,"params":[0.5],"attrs":{"error":0.4,"best_error":0.4}}
{"type":"eval","job":"job-1","iter":1,"time_ns":3100000,"params":[0.6],"attrs":{"error":0.3,"best_error":0.3}}
`
	run, err := LoadRun(strings.NewReader(artifact))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestTimelineClampsNegativeDispatchOverhead(t *testing.T) {
	tl := NewTimeline(remoteEvalRun(t))
	if tl.DispatchOverheadSamples != 2 {
		t.Fatalf("samples = %d, want 2", tl.DispatchOverheadSamples)
	}
	// Round trip 1ms, worker 0.6ms → 0.4ms overhead. Round trip 0.5ms,
	// worker 0.9ms → negative, clamped: the sum must stay at 0.4ms instead
	// of collapsing to 0.
	if tl.DispatchOverheadNS != 400000 {
		t.Fatalf("overhead = %d ns, want 400000", tl.DispatchOverheadNS)
	}
	if tl.DispatchOverheadClamped != 1 {
		t.Fatalf("clamped = %d, want 1", tl.DispatchOverheadClamped)
	}

	var b strings.Builder
	if err := tl.RenderText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "dispatch overhead") ||
		!strings.Contains(text, "2 samples") ||
		!strings.Contains(text, "1 clamped at zero") {
		t.Fatalf("RenderText does not surface clamped samples:\n%s", text)
	}

	_ = telemetry.AttrWorkerNS // keep the import honest about what the artifact encodes
}

func TestTimelineNoClampNote(t *testing.T) {
	artifact := `{"type":"log","job":"job-1","time_ns":1000,"msg":"datamime run artifact"}
{"type":"span","job":"job-1","iter":0,"phase":"profile.sim","dur_ns":500000,"time_ns":1800000,"attrs":{"worker":0,"ways":8}}
{"type":"span","job":"job-1","iter":0,"phase":"eval.remote","dur_ns":1000000,"time_ns":2000000,"attrs":{"remote_worker":0,"worker_ns":600000}}
{"type":"eval","job":"job-1","iter":0,"time_ns":2100000,"params":[0.5],"attrs":{"error":0.4,"best_error":0.4}}
`
	run, err := LoadRun(strings.NewReader(artifact))
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline(run)
	if tl.DispatchOverheadClamped != 0 || tl.DispatchOverheadSamples != 1 {
		t.Fatalf("samples=%d clamped=%d, want 1/0", tl.DispatchOverheadSamples, tl.DispatchOverheadClamped)
	}
	var b strings.Builder
	if err := tl.RenderText(&b); err != nil {
		t.Fatal(err)
	}
	if text := b.String(); strings.Contains(text, "clamped at zero") {
		t.Fatalf("clamp note rendered with nothing clamped:\n%s", text)
	}
}
