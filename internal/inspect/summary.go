package inspect

import (
	"encoding/json"
	"io"
	"sort"
)

// RunSummary is the machine-readable distillation of one run report: best
// error, ranked attribution, evaluation counts, phase totals, and (when the
// artifact carries timed spans) the timeline utilization figures. It is what
// `datamime-inspect report -json` emits, so CI gates and the corpus indexer
// consume reports without scraping text.
type RunSummary struct {
	Job    string `json:"job,omitempty"`
	Header string `json:"header,omitempty"`

	BestError float64   `json:"best_error"`
	BestIter  int       `json:"best_iter"`
	BestFound bool      `json:"best_found"`
	Params    []float64 `json:"best_params,omitempty"`
	// Trajectory is the best-error-so-far series over non-skipped
	// evaluations, in evaluation order — the series corpus.TrajectoryHash
	// fingerprints.
	Trajectory []float64 `json:"trajectory,omitempty"`

	// Attribution ranks error components largest-first (per-band detail is
	// a rendering concern; the summary carries the component totals).
	Attribution []ComponentSummary `json:"attribution,omitempty"`

	Evals     int `json:"evals"`
	Skipped   int `json:"skipped"`
	CacheHits int `json:"cache_hits"`
	Misses    int `json:"cache_misses"`
	Retried   int `json:"retried"`
	Replayed  int `json:"replayed"`
	Malformed int `json:"malformed,omitempty"`
	Spans     int `json:"spans,omitempty"`

	// PhaseSeconds totals span time per pipeline phase.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`

	Timeline *TimelineSummary `json:"timeline,omitempty"`

	// Diagnostics is the GP search-health block (present when the artifact
	// carries search.diagnostics events). Every figure is derived from the
	// search's own factorizations — no clocks — so two identically-seeded
	// runs produce byte-equal diagnostics JSON; the CI inspect-gate relies
	// on that.
	Diagnostics *DiagnosticsSummary `json:"diagnostics,omitempty"`
}

// DiagnosticsSummary is the machine-readable search-health block: the
// SearchHealth aggregates plus the full per-iteration snapshot series, so
// `report -json` and GET /jobs/{id}/diagnostics consumers get the same data
// the HTML report plots.
type DiagnosticsSummary struct {
	Snapshots        int          `json:"snapshots"`
	FirstLogMarginal float64      `json:"first_log_marginal"`
	FinalLogMarginal float64      `json:"final_log_marginal"`
	MeanCoverage1    float64      `json:"mean_coverage1"`
	MeanCoverage2    float64      `json:"mean_coverage2"`
	MaxJitterLevel   int          `json:"max_jitter_level"`
	MaxCondition     float64      `json:"max_condition"`
	FinalAcqGap      float64      `json:"final_acq_gap"`
	MaxAcqGap        float64      `json:"max_acq_gap"`
	ExploreShare     float64      `json:"explore_share"`
	Healthy          bool         `json:"healthy"`
	Verdicts         []string     `json:"verdicts,omitempty"`
	Records          []DiagRecord `json:"records,omitempty"`
}

// NewDiagnosticsSummary distills a run's search-health snapshots; nil when
// the run carries none.
func NewDiagnosticsSummary(run *Run) *DiagnosticsSummary {
	h := NewSearchHealth(run)
	if h == nil {
		return nil
	}
	return &DiagnosticsSummary{
		Snapshots:        len(h.Records),
		FirstLogMarginal: h.FirstLogMarginal,
		FinalLogMarginal: h.FinalLogMarginal,
		MeanCoverage1:    h.MeanCoverage1,
		MeanCoverage2:    h.MeanCoverage2,
		MaxJitterLevel:   h.MaxJitterLevel,
		MaxCondition:     h.MaxCondition,
		FinalAcqGap:      h.FinalGap,
		MaxAcqGap:        h.MaxGap,
		ExploreShare:     h.ExploreShare,
		Healthy:          h.Healthy(),
		Verdicts:         h.Verdicts,
		Records:          h.Records,
	}
}

// ComponentSummary is one error component's contribution.
type ComponentSummary struct {
	Component string  `json:"component"`
	Kind      string  `json:"kind,omitempty"`
	Distance  float64 `json:"distance"`
}

// TimelineSummary condenses the sweep-line timeline into its headline
// utilization figures.
type TimelineSummary struct {
	Workers                 int     `json:"workers"`
	BusySeconds             float64 `json:"busy_seconds"`
	WallSeconds             float64 `json:"wall_seconds"`
	Speedup                 float64 `json:"speedup"`
	Efficiency              float64 `json:"efficiency"`
	SerialShare             float64 `json:"serial_share"`
	BudgetWaits             int     `json:"budget_waits,omitempty"`
	RemoteEvals             int     `json:"remote_evals,omitempty"`
	RemoteShare             float64 `json:"remote_share,omitempty"`
	FleetProcesses          int     `json:"fleet_processes,omitempty"`
	FleetBusySeconds        float64 `json:"fleet_busy_seconds,omitempty"`
	DispatchRetries         int     `json:"dispatch_retries,omitempty"`
	DispatchFallbacks       int     `json:"dispatch_fallbacks,omitempty"`
	DispatchOverheadSeconds float64 `json:"dispatch_overhead_seconds,omitempty"`
	DispatchOverheadSamples int     `json:"dispatch_overhead_samples,omitempty"`
	DispatchOverheadClamped int     `json:"dispatch_overhead_clamped,omitempty"`
	CacheProbes             int     `json:"cache_probes,omitempty"`
	UnstampedSpans          int     `json:"unstamped_spans,omitempty"`
}

// NewRunSummary distills a report into its machine-readable summary.
func NewRunSummary(r *Report) RunSummary {
	run := r.Run
	counts := run.Counts()
	s := RunSummary{
		Job:        run.Job,
		Header:     run.Header,
		Trajectory: run.BestTrace(),
		Evals:      counts.Evals,
		Skipped:    counts.Skipped,
		CacheHits:  counts.CacheHits,
		Misses:     counts.Misses,
		Retried:    counts.Retried,
		Replayed:   counts.Replayed,
		Malformed:  run.Malformed,
		Spans:      run.Spans,
	}
	if best, ok := run.Best(); ok {
		s.BestFound = true
		s.BestError = best.BestError
		s.BestIter = best.Iter
		s.Params = best.Params
	}
	for _, a := range r.Attribution {
		s.Attribution = append(s.Attribution, ComponentSummary{
			Component: a.Component,
			Kind:      a.Kind,
			Distance:  a.Distance,
		})
	}
	if len(run.Phases) > 0 {
		s.PhaseSeconds = make(map[string]float64, len(run.Phases))
		names := make([]string, 0, len(run.Phases))
		for name := range run.Phases {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s.PhaseSeconds[name] = float64(run.Phases[name].TotalNS) / 1e9
		}
	}
	s.Diagnostics = NewDiagnosticsSummary(run)
	if tl := NewTimeline(run); len(tl.Workers) > 0 || len(tl.Fleet) > 0 {
		remoteEvals := 0
		for _, rs := range tl.Remote {
			remoteEvals += rs.Evals
		}
		s.Timeline = &TimelineSummary{
			Workers:                 len(tl.Workers),
			BusySeconds:             float64(tl.BusyNS) / 1e9,
			WallSeconds:             float64(tl.WallNS) / 1e9,
			Speedup:                 tl.Speedup(),
			Efficiency:              tl.Efficiency(),
			SerialShare:             tl.SerialShare(),
			BudgetWaits:             tl.BudgetWaits,
			RemoteEvals:             remoteEvals,
			RemoteShare:             tl.RemoteShare(),
			FleetProcesses:          len(tl.Fleet),
			FleetBusySeconds:        float64(tl.FleetBusyNS) / 1e9,
			DispatchRetries:         tl.DispatchRetries,
			DispatchFallbacks:       tl.DispatchFallbacks,
			DispatchOverheadSeconds: float64(tl.DispatchOverheadNS) / 1e9,
			DispatchOverheadSamples: tl.DispatchOverheadSamples,
			DispatchOverheadClamped: tl.DispatchOverheadClamped,
			CacheProbes:             tl.CacheProbes,
			UnstampedSpans:          tl.UnstampedSpans,
		}
	}
	return s
}

// WriteJSON renders the summary as indented JSON.
func (s RunSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
