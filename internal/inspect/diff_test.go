package inspect

import (
	"strings"
	"testing"
)

func loadTestRun(t *testing.T, art string) *Run {
	t.Helper()
	run, err := LoadRun(strings.NewReader(art))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestDiffRunsSelfIdentical: an artifact diffed against itself is identical
// — the property the CI determinism gate relies on.
func TestDiffRunsSelfIdentical(t *testing.T) {
	run := loadTestRun(t, testArtifact())
	d := DiffRuns(run, run, DiffOptions{})
	if d.Verdict != VerdictIdentical || !d.Identical() || d.Regressed() {
		t.Fatalf("self-diff: verdict %q, differences %v", d.Verdict, d.Differences)
	}
	if d.BestError.Delta != 0 || d.FirstDivergence != -1 || d.SeriesMaxDelta != 0 {
		t.Errorf("self-diff deltas: %+v", d)
	}
}

// perturb rewrites the artifact's final best error upward, simulating a
// worse run.
func perturbedArtifact() string {
	art := testArtifact()
	return strings.ReplaceAll(art, `"error":0.4,"best_error":0.4`, `"error":0.45,"best_error":0.45`)
}

func TestDiffRunsRegression(t *testing.T) {
	a := loadTestRun(t, testArtifact())
	b := loadTestRun(t, perturbedArtifact())
	d := DiffRuns(a, b, DiffOptions{})
	if d.Verdict != VerdictRegressed || !d.Regressed() {
		t.Fatalf("verdict %q, regressions %v", d.Verdict, d.Regressions)
	}
	if d.BestError.Delta <= 0 {
		t.Errorf("BestError.Delta %g, want > 0", d.BestError.Delta)
	}
	if d.FirstDivergence != 3 {
		t.Errorf("FirstDivergence %d, want 3", d.FirstDivergence)
	}
	// The reverse direction is an improvement, not a regression.
	rev := DiffRuns(b, a, DiffOptions{})
	if rev.Verdict != VerdictImproved || rev.Regressed() {
		t.Errorf("reverse verdict %q, regressions %v", rev.Verdict, rev.Regressions)
	}
}

// TestDiffRunsErrorTolerance: a small error drift under ErrorTolerance is a
// change, not a regression.
func TestDiffRunsErrorTolerance(t *testing.T) {
	a := loadTestRun(t, testArtifact())
	b := loadTestRun(t, perturbedArtifact())
	d := DiffRuns(a, b, DiffOptions{ErrorTolerance: 0.1})
	if d.Verdict != VerdictChanged || d.Regressed() {
		t.Fatalf("verdict %q, regressions %v", d.Verdict, d.Regressions)
	}
	if d.Identical() {
		t.Error("tolerated drift must still register as a difference")
	}
}

// TestDiffRunsShrunkHistory: losing iterations is a regression.
func TestDiffRunsShrunkHistory(t *testing.T) {
	a := loadTestRun(t, testArtifact())
	lines := strings.Split(strings.TrimSpace(testArtifact()), "\n")
	b := loadTestRun(t, strings.Join(lines[:len(lines)-1], "\n"))
	d := DiffRuns(a, b, DiffOptions{})
	if d.Verdict != VerdictRegressed {
		t.Fatalf("verdict %q", d.Verdict)
	}
	found := false
	for _, r := range d.Regressions {
		if strings.Contains(r, "iterations shrank") {
			found = true
		}
	}
	if !found {
		t.Errorf("regressions %v should mention shrunk iterations", d.Regressions)
	}
}

// TestDiffRunsComponentRegression: a worsened per-metric distance crosses
// the component threshold even when total error is unchanged.
func TestDiffRunsComponentRegression(t *testing.T) {
	a := loadTestRun(t, testArtifact())
	art := strings.ReplaceAll(testArtifact(), `"emd_cpu_util":0.25`, `"emd_cpu_util":0.35`)
	b := loadTestRun(t, art)
	d := DiffRuns(a, b, DiffOptions{})
	if d.Verdict != VerdictRegressed {
		t.Fatalf("verdict %q, differences %v", d.Verdict, d.Differences)
	}
	found := false
	for _, r := range d.Regressions {
		if strings.Contains(r, "cpu_util worsened") {
			found = true
		}
	}
	if !found {
		t.Errorf("regressions %v should name cpu_util", d.Regressions)
	}
}

// TestDiffRunsEmptyB: diffing against an empty run regresses rather than
// crashing.
func TestDiffRunsEmptyB(t *testing.T) {
	a := loadTestRun(t, testArtifact())
	b := &Run{Phases: map[string]PhaseStat{}}
	d := DiffRuns(a, b, DiffOptions{})
	if d.Verdict != VerdictRegressed {
		t.Fatalf("verdict %q", d.Verdict)
	}
}
