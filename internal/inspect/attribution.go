package inspect

import (
	"math"
	"sort"

	"datamime/internal/core"
	"datamime/internal/profile"
	"datamime/internal/stats"
)

// Attribution kinds.
const (
	// KindDistribution marks a scalar-metric component whose bands are
	// quantile regions of the sample distribution.
	KindDistribution = "distribution"
	// KindCurve marks a cache-sensitivity-curve component whose bands are
	// curve points (cache allocations).
	KindCurve = "curve"
)

// DefaultBands are the quantile-band boundaries used when none are given:
// body bands plus dedicated head and tail bands, so tail-dominated errors
// (the tail-latency story of §V) stand out in the attribution table.
var DefaultBands = []float64{0, 0.10, 0.25, 0.50, 0.75, 0.90, 1}

// Band is one region's share of a component's error: for distributions the
// [Lo, Hi) quantile range of the merged distribution, for curves the
// fraction of the curve covered by one point.
type Band struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Contribution is the normalized error mass inside the band; the bands
	// of a component sum exactly to its Distance.
	Contribution float64 `json:"contribution"`
	// Share is Contribution / Distance (0 when the distance is 0).
	Share float64 `json:"share"`
}

// Attribution decomposes one error-model component: its total normalized
// distance and where in the distribution (or curve) that distance lives.
type Attribution struct {
	// Component is the error-model component name ("llc_mpki_curve", ...).
	Component string `json:"component"`
	// Kind is KindDistribution or KindCurve.
	Kind string `json:"kind"`
	// Distance is the component's normalized distance — the same quantity
	// the objective sums (stats.NormalizedEMD for distributions,
	// core.CurveDistance for curves), reconstructed as the exact sum of the
	// band contributions.
	Distance float64 `json:"distance"`
	// Bands is the per-region decomposition, in band order.
	Bands []Band `json:"bands"`
}

// DominantBand returns the index of the band contributing the most error
// (the lowest index on ties, -1 when there are no bands).
func (a Attribution) DominantBand() int {
	best := -1
	for i, b := range a.Bands {
		if best < 0 || b.Contribution > a.Bands[best].Contribution {
			best = i
		}
	}
	return best
}

// AttributeProfiles decomposes every component of the paper's error model
// between a target and a candidate profile. bounds are the quantile-band
// boundaries (nil selects DefaultBands); they must be strictly increasing
// from 0 to 1. The result is ranked by Distance, largest first (component
// name breaks ties), so row 0 names the metric dominating the remaining
// error.
func AttributeProfiles(target, cand *profile.Profile, bounds []float64) []Attribution {
	if bounds == nil {
		bounds = DefaultBands
	}
	out := make([]Attribution, 0, len(core.Components))
	for _, c := range core.Components {
		var a Attribution
		switch c {
		case core.CompLLCCurve:
			a = attributeCurve(string(c), target.LLCCurve(), cand.LLCCurve())
		case core.CompIPCCurve:
			a = attributeCurve(string(c), target.IPCCurve(), cand.IPCCurve())
		default:
			id := scalarMetric(c)
			a = attributeDistribution(string(c), target.Samples[id], cand.Samples[id], bounds)
		}
		out = append(out, a)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance > out[j].Distance
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// scalarMetric maps a distribution component to its profiled metric. The
// names coincide by construction (see core's component constants).
func scalarMetric(c core.Component) profile.MetricID {
	return profile.MetricID(c)
}

// attributeDistribution decomposes the normalized EMD between two sample
// sets into quantile bands. The decomposition uses the inverse-CDF form of
// the 1-D EMD,
//
//	EMD = ∫₀¹ |Qa(q) − Qb(q)| dq,
//
// which equals the area between the two CDFs that stats.EMD integrates
// (both measure the region between the step curves, one along each axis).
// Each band [lo, hi) receives the integral restricted to q ∈ [lo, hi), so
// the bands sum to the total exactly; the whole quantity is then scaled by
// the same max-|x| factor stats.NormalizedEMD uses, keeping Distance equal
// to the objective's component term.
func attributeDistribution(name string, target, cand []float64, bounds []float64) Attribution {
	a := Attribution{Component: name, Kind: KindDistribution}
	if len(target) == 0 || len(cand) == 0 {
		// Degenerate profiles: fall back to the objective's own value with
		// no band structure.
		a.Distance = stats.NormalizedEMD(target, cand)
		return a
	}
	maxAbs := 0.0
	for _, v := range target {
		maxAbs = math.Max(maxAbs, math.Abs(v))
	}
	for _, v := range cand {
		maxAbs = math.Max(maxAbs, math.Abs(v))
	}
	masses := quantileBandEMD(target, cand, bounds)
	if maxAbs > 0 {
		for i := range masses {
			masses[i] /= maxAbs
		}
	} else {
		for i := range masses {
			masses[i] = 0
		}
	}
	var total float64
	for _, m := range masses {
		total += m
	}
	a.Distance = total
	a.Bands = makeBands(bounds, masses, total)
	return a
}

// quantileBandEMD integrates |Qa − Qb| over each quantile band, where Qa
// and Qb are the empirical quantile functions of the two sample sets (step
// functions with steps at i/n). It sweeps the merged breakpoints of both
// step functions and the band boundaries, so each piece is constant and the
// integral is exact.
func quantileBandEMD(a, b []float64, bounds []float64) []float64 {
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	n, m := len(as), len(bs)
	masses := make([]float64, len(bounds)-1)

	band := 0
	ia, ib := 0, 0
	q := bounds[0]
	for q < 1 {
		for band < len(masses)-1 && bounds[band+1] <= q {
			band++
		}
		qa := float64(ia+1) / float64(n)
		qb := float64(ib+1) / float64(m)
		next := math.Min(qa, qb)
		if e := bounds[band+1]; e < next {
			next = e
		}
		masses[band] += math.Abs(as[ia]-bs[ib]) * (next - q)
		q = next
		if next >= qa && ia < n-1 {
			ia++
		}
		if next >= qb && ib < m-1 {
			ib++
		}
	}
	return masses
}

// attributeCurve decomposes core.CurveDistance point by point: each curve
// point's |Δ| / n / max contribution becomes one band covering its fraction
// of the curve, summing exactly to the component's distance.
func attributeCurve(name string, target, cand []float64) Attribution {
	a := Attribution{Component: name, Kind: KindCurve}
	n := len(target)
	if len(cand) < n {
		n = len(cand)
	}
	if n == 0 {
		a.Distance = core.CurveDistance(target, cand)
		return a
	}
	var maxV float64
	for i := 0; i < n; i++ {
		maxV = math.Max(maxV, math.Max(math.Abs(target[i]), math.Abs(cand[i])))
	}
	masses := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		if maxV > 0 {
			masses[i] = math.Abs(target[i]-cand[i]) / float64(n) / maxV
		}
		total += masses[i]
	}
	bounds := make([]float64, n+1)
	for i := range bounds {
		bounds[i] = float64(i) / float64(n)
	}
	a.Distance = total
	a.Bands = makeBands(bounds, masses, total)
	return a
}

// makeBands assembles Band records from boundary and mass slices.
func makeBands(bounds, masses []float64, total float64) []Band {
	out := make([]Band, len(masses))
	for i := range masses {
		out[i] = Band{Lo: bounds[i], Hi: bounds[i+1], Contribution: masses[i]}
		if total > 0 {
			out[i].Share = masses[i] / total
		}
	}
	return out
}
