package inspect

import (
	"math"
	"testing"

	"datamime/internal/core"
	"datamime/internal/profile"
	"datamime/internal/stats"
)

// lcg is a tiny deterministic generator for test sample sets (no global
// rand, so tests are reproducible byte for byte).
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(*g>>11) / float64(1<<53)
}

func samples(seed lcg, n int, scale, offset float64) []float64 {
	g := seed
	out := make([]float64, n)
	for i := range out {
		out[i] = offset + scale*g.next()
	}
	return out
}

// TestQuantileBandEMDMatchesEMD checks the core identity: the band masses of
// the inverse-CDF decomposition sum exactly to stats.EMD's area between the
// eCDFs, for same-size and different-size sample sets.
func TestQuantileBandEMDMatchesEMD(t *testing.T) {
	cases := []struct{ a, b []float64 }{
		{samples(1, 40, 3, 0), samples(2, 40, 3, 0.5)},
		{samples(3, 17, 10, -4), samples(4, 53, 8, -3)},
		{samples(5, 1, 1, 0), samples(6, 9, 2, 1)},
		{[]float64{1, 1, 1}, []float64{1, 1, 1}},
		{[]float64{0, 10}, []float64{5}},
	}
	for i, tc := range cases {
		for _, bounds := range [][]float64{DefaultBands, {0, 0.5, 1}, {0, 1}} {
			masses := quantileBandEMD(tc.a, tc.b, bounds)
			if len(masses) != len(bounds)-1 {
				t.Fatalf("case %d: %d masses for %d bounds", i, len(masses), len(bounds))
			}
			var sum float64
			for _, m := range masses {
				if m < 0 {
					t.Fatalf("case %d: negative band mass %g", i, m)
				}
				sum += m
			}
			want := stats.EMD(tc.a, tc.b)
			if math.Abs(sum-want) > 1e-12*(1+math.Abs(want)) {
				t.Errorf("case %d bounds %v: band sum %g, stats.EMD %g", i, bounds, sum, want)
			}
		}
	}
}

// TestAttributeDistributionMatchesObjective checks that Distance equals the
// objective's own component term (stats.NormalizedEMD) and that shares sum
// to one.
func TestAttributeDistributionMatchesObjective(t *testing.T) {
	a := samples(7, 64, 5, 1)
	b := samples(8, 48, 6, 0.5)
	at := attributeDistribution("l2_mpki", a, b, DefaultBands)
	want := stats.NormalizedEMD(a, b)
	if math.Abs(at.Distance-want) > 1e-12 {
		t.Fatalf("Distance %g, NormalizedEMD %g", at.Distance, want)
	}
	var share, contrib float64
	for _, band := range at.Bands {
		share += band.Share
		contrib += band.Contribution
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("band shares sum to %g, want 1", share)
	}
	if math.Abs(contrib-at.Distance) > 1e-12 {
		t.Errorf("band contributions sum to %g, want %g", contrib, at.Distance)
	}
}

// TestAttributeDistributionDegenerate covers empty and all-zero sample sets.
func TestAttributeDistributionDegenerate(t *testing.T) {
	if a := attributeDistribution("x", nil, []float64{1, 2}, DefaultBands); len(a.Bands) != 0 {
		t.Errorf("empty target: got %d bands, want none", len(a.Bands))
	}
	a := attributeDistribution("x", []float64{0, 0}, []float64{0, 0, 0}, DefaultBands)
	if a.Distance != 0 {
		t.Errorf("all-zero samples: Distance %g, want 0", a.Distance)
	}
	for _, b := range a.Bands {
		if b.Contribution != 0 || b.Share != 0 {
			t.Errorf("all-zero samples: nonzero band %+v", b)
		}
	}
}

// TestAttributeCurveMatchesObjective checks the per-point decomposition
// against core.CurveDistance.
func TestAttributeCurveMatchesObjective(t *testing.T) {
	a := []float64{4, 3.2, 2.5, 2.1, 1.9, 1.85}
	b := []float64{4.4, 3.0, 2.6, 2.0, 1.7, 1.86}
	at := attributeCurve("llc_mpki_curve", a, b)
	want := core.CurveDistance(a, b)
	if math.Abs(at.Distance-want) > 1e-12 {
		t.Fatalf("Distance %g, CurveDistance %g", at.Distance, want)
	}
	if len(at.Bands) != len(a) {
		t.Fatalf("%d bands for %d-point curve", len(at.Bands), len(a))
	}
	// The dominant band must be the point with the largest |delta|.
	if di := at.DominantBand(); di != 0 {
		t.Errorf("dominant band %d, want 0 (|delta|=0.4)", di)
	}
	if a := attributeCurve("x", nil, nil); a.Distance != 0 || len(a.Bands) != 0 {
		t.Errorf("empty curves: %+v", a)
	}
}

func testProfilePair() (*profile.Profile, *profile.Profile) {
	mk := func(seed lcg, shift float64) *profile.Profile {
		p := &profile.Profile{
			Benchmark: "test",
			Machine:   "m",
			Samples:   make(map[profile.MetricID][]float64),
		}
		for i, id := range profile.ScalarMetrics {
			p.Samples[id] = samples(seed+lcg(i), 32, float64(i+1), shift)
		}
		g := seed + 100
		for w := 1; w <= 4; w++ {
			p.Curve = append(p.Curve, profile.CurvePoint{
				Ways:    w,
				IPC:     1 + g.next() + shift/10,
				LLCMPKI: 5 - float64(w) + g.next(),
			})
		}
		return p
	}
	return mk(11, 0), mk(23, 0.3)
}

// TestAttributeProfilesRankedAndComplete checks every error-model component
// appears once and the ranking is by descending distance.
func TestAttributeProfilesRankedAndComplete(t *testing.T) {
	target, cand := testProfilePair()
	attrs := AttributeProfiles(target, cand, nil)
	if len(attrs) != len(core.Components) {
		t.Fatalf("%d attributions for %d components", len(attrs), len(core.Components))
	}
	seen := make(map[string]bool)
	for i, a := range attrs {
		seen[a.Component] = true
		if i > 0 && attrs[i-1].Distance < a.Distance {
			t.Errorf("rank %d (%s %g) above %d (%s %g)", i-1, attrs[i-1].Component,
				attrs[i-1].Distance, i, a.Component, a.Distance)
		}
	}
	for _, c := range core.Components {
		if !seen[string(c)] {
			t.Errorf("component %s missing from attribution", c)
		}
	}
}
