package inspect

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"datamime/internal/corpus"
)

// ScoreboardRun is one corpus run on the scoreboard: its index record plus,
// when the caller loaded the stored artifact, the best-error trajectory for
// the cross-run convergence overlay.
type ScoreboardRun struct {
	Record     corpus.Record
	Trajectory []float64
}

// scoreRamp colors the per-run overlay traces; runs cycle through it in
// corpus order, so the same corpus renders the same colors every time.
var scoreRamp = []string{
	"#2a78d6", "#d6722a", "#3aa655", "#a63a8a",
	"#7a5cd6", "#3aa6a2", "#d64545", "#a6a13a",
}

// RenderScoreboard writes the self-contained HTML fleet scoreboard: a
// summary table of every run, then — per scenario — the cross-run
// convergence overlay and the best-error / duration trends with the corpus
// median marked. Like the run report, the output is a pure function of its
// inputs: no scripts, no external assets, no clocks.
func RenderScoreboard(w io.Writer, title string, runs []ScoreboardRun) error {
	if title == "" {
		title = "datamime corpus"
	}
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s — datamime scoreboard</title>\n", htmlEscape(title))
	b.WriteString("<style>" + htmlStyle + "</style>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>datamime corpus scoreboard — %s</h1>\n", htmlEscape(title))
	fmt.Fprintf(&b, "<p class=\"sub\">%d runs, %d scenarios</p>\n",
		len(runs), len(scenarioOrder(runs)))

	writeScoreboardTable(&b, runs)
	for _, scenario := range scenarioOrder(runs) {
		group := make([]ScoreboardRun, 0, len(runs))
		for _, r := range runs {
			if r.Record.Scenario == scenario {
				group = append(group, r)
			}
		}
		writeScenarioSection(&b, scenario, group)
	}

	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// scenarioOrder lists the scenarios in first-seen (corpus) order.
func scenarioOrder(runs []ScoreboardRun) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range runs {
		if !seen[r.Record.Scenario] {
			seen[r.Record.Scenario] = true
			out = append(out, r.Record.Scenario)
		}
	}
	return out
}

// writeScoreboardTable renders the all-runs summary table.
func writeScoreboardTable(b *strings.Builder, runs []ScoreboardRun) {
	b.WriteString("<h2>Runs</h2>\n<table>\n<thead>\n<tr>" +
		"<th>run</th><th>scenario</th><th>target</th><th>seed</th><th>backend</th>" +
		"<th>best error</th><th>evals</th><th>wall</th><th>verdict</th><th>finished</th>" +
		"</tr>\n</thead>\n<tbody>\n")
	for _, r := range runs {
		rec := r.Record
		verdict := rec.Verdict
		cls := ""
		if verdict == corpus.VerdictRegressed {
			cls = ` class="warn"`
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td><td class=\"num\">%d</td><td>%s</td>"+
			"<td class=\"num\">%s</td><td class=\"num\">%d</td><td class=\"num\">%.1fs</td><td%s>%s</td><td>%s</td></tr>\n",
			htmlEscape(rec.ID), htmlEscape(rec.Scenario), htmlEscape(rec.Target), rec.Seed,
			htmlEscape(rec.Backend), fnum(rec.BestError), rec.Evals, rec.WallSeconds,
			cls, htmlEscape(verdict), htmlEscape(rec.FinishedAt.UTC().Format(time.RFC3339)))
	}
	b.WriteString("</tbody>\n</table>\n")
}

// writeScenarioSection renders one scenario's convergence overlay and trend
// plots.
func writeScenarioSection(b *strings.Builder, scenario string, group []ScoreboardRun) {
	if len(group) == 0 {
		return
	}
	target := group[0].Record.Target
	fmt.Fprintf(b, "<h2>Scenario %s</h2>\n", htmlEscape(scenario))
	fmt.Fprintf(b, "<p class=\"sub\">target %s, %d runs</p>\n", htmlEscape(target), len(group))

	writeConvergenceOverlay(b, group)
	writeTrendPlots(b, group)
}

// writeConvergenceOverlay steps every run's best-error trajectory on one
// plot, color-cycled, so convergence drift across runs is visible at a
// glance.
func writeConvergenceOverlay(b *strings.Builder, group []ScoreboardRun) {
	var all [][]float64
	maxLen := 0
	for _, r := range group {
		if len(r.Trajectory) > 0 {
			all = append(all, r.Trajectory)
			if len(r.Trajectory) > maxLen {
				maxLen = len(r.Trajectory)
			}
		}
	}
	if len(all) == 0 {
		return
	}
	b.WriteString("<h3>Cross-run convergence</h3>\n<div class=\"legend\">")
	for i, r := range group {
		if len(r.Trajectory) == 0 {
			continue
		}
		fmt.Fprintf(b, `<span><i style="background:%s"></i>%s</span>`,
			scoreRamp[i%len(scoreRamp)], htmlEscape(r.Record.ID))
	}
	b.WriteString("</div>\n")

	g := defaultGeom(920, 260)
	xr := axisRange{Lo: 0, Hi: float64(maxInt(maxLen-1, 1))}.pad()
	yr := rangeOf(all...).pad()
	g.openSVG(b, "best-error-so-far trajectories overlaid across runs")
	g.writeAxes(b, xr, yr, "evaluation", "best error")
	for i, r := range group {
		if len(r.Trajectory) == 0 {
			continue
		}
		xs := make([]float64, len(r.Trajectory))
		for j := range xs {
			xs[j] = float64(j)
		}
		fmt.Fprintf(b, `<path style="fill:none;stroke:%s;stroke-width:1.6" d="%s"><title>%s</title></path>`,
			scoreRamp[i%len(scoreRamp)], g.stepPath(xr, yr, xs, r.Trajectory),
			htmlEscape(r.Record.ID))
	}
	b.WriteString("</svg>\n")
}

// writeTrendPlots renders the best-error and wall-time series across runs,
// with the corpus median as a dashed reference line.
func writeTrendPlots(b *strings.Builder, group []ScoreboardRun) {
	xs := make([]float64, len(group))
	errs := make([]float64, len(group))
	walls := make([]float64, len(group))
	for i, r := range group {
		xs[i] = float64(i)
		errs[i] = r.Record.BestError
		walls[i] = r.Record.WallSeconds
	}
	writeTrendPlot(b, "Best error across runs", "run", "best error", xs, errs)
	writeTrendPlot(b, "Duration across runs", "run", "wall seconds", xs, walls)
}

// writeTrendPlot renders one series as a line with point markers plus its
// median as a dashed line.
func writeTrendPlot(b *strings.Builder, heading, xLabel, yLabel string, xs, ys []float64) {
	if len(xs) == 0 {
		return
	}
	med := corpus.Median(append([]float64(nil), ys...))
	fmt.Fprintf(b, "<h3>%s</h3>\n", htmlEscape(heading))
	fmt.Fprintf(b, "<p class=\"sub\">median %s</p>\n", fnum(med))
	g := defaultGeom(920, 200)
	xr := rangeOf(xs).pad()
	yr := rangeOf(ys, []float64{med}).pad()
	g.openSVG(b, heading)
	g.writeAxes(b, xr, yr, xLabel, yLabel)
	_, medY := g.xy(xr, yr, xr.Lo, med)
	fmt.Fprintf(b, `<line style="stroke:#888;stroke-dasharray:4 3" x1="%s" y1="%s" x2="%s" y2="%s"><title>median %s</title></line>`,
		coord(g.MarginL), coord(medY), coord(g.W-g.MarginR), coord(medY), fnum(med))
	fmt.Fprintf(b, `<path style="fill:none;stroke:%s;stroke-width:1.6" d="%s"/>`,
		scoreRamp[0], g.linePath(xr, yr, xs, ys))
	for i := range xs {
		px, py := g.xy(xr, yr, xs[i], ys[i])
		fmt.Fprintf(b, `<circle style="fill:%s" cx="%s" cy="%s" r="3"><title>run %d: %s</title></circle>`,
			scoreRamp[0], coord(px), coord(py), i, fnum(ys[i]))
	}
	b.WriteString("</svg>\n")
}

// ScoreboardRuns assembles scoreboard rows from a corpus, loading each
// stored artifact (best-effort) for the convergence overlays.
func ScoreboardRuns(c *corpus.Corpus, recs []corpus.Record) []ScoreboardRun {
	out := make([]ScoreboardRun, 0, len(recs))
	for _, rec := range recs {
		row := ScoreboardRun{Record: rec}
		if data, err := c.Artifact(rec); err == nil {
			if run, err := LoadRun(strings.NewReader(string(data))); err == nil {
				row.Trajectory = run.BestTrace()
			}
		}
		out = append(out, row)
	}
	// Stable order: corpus order is append order already, but guard against
	// callers passing filtered slices in arbitrary order.
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Record.FinishedAt.Before(out[j].Record.FinishedAt)
	})
	return out
}
