// Package inspect is Datamime's profile/search introspection layer: it
// consumes the JSONL run artifacts and checkpoints the search pipeline
// already emits (internal/telemetry) and turns them into evidence a human
// can read — which metric, and which region of its distribution, drives a
// candidate's remaining error.
//
// The package has three engines:
//
//   - an eCDF diff engine (attribution.go) that decomposes each per-metric
//     normalized EMD into quantile-band contributions, producing the ranked
//     error-attribution table behind the paper's "why is this benchmark
//     (not) representative" figures;
//   - a run-comparison engine (diff.go) that diffs two run artifacts —
//     convergence series, best-point parameters, per-metric EMD deltas —
//     under configurable regression thresholds, with a machine-readable
//     verdict CI can gate on;
//   - a deterministic report renderer (report.go, html.go) emitting a
//     terminal summary and a self-contained single-file HTML report with
//     inline SVG convergence plots and target-vs-best eCDF overlays.
//
// Everything here is read-only over artifacts and profiles: inspect never
// feeds back into the search, and rendering the same inputs twice produces
// byte-identical output (no clocks, no map-order leakage).
package inspect

import (
	"encoding/json"
	"fmt"
	"sort"

	"datamime/internal/core"
	"datamime/internal/profile"
)

// ProfilesDoc pairs the target profile of a search with the profile of its
// best candidate — the distributions behind the run's final error. It is the
// payload of datamimed's GET /jobs/{id}/profiles and of cmd/datamime's
// -profiles output, and the input the report renderer overlays eCDFs from.
// Either side may be nil (metric-objective jobs have no target profile;
// unfinished jobs have no best).
type ProfilesDoc struct {
	// Job is the originating job ID, when the doc came from datamimed.
	Job string `json:"job,omitempty"`
	// Components is the final per-component error attribution of the best
	// candidate (unweighted normalized distances, keyed by component name).
	Components map[string]float64 `json:"components,omitempty"`
	// Target is the profile the search tried to match.
	Target *profile.Profile `json:"target,omitempty"`
	// Best is the profile measured at the best parameters found.
	Best *profile.Profile `json:"best,omitempty"`
}

// EncodeJSON renders the doc with stable indentation.
func (d *ProfilesDoc) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// DecodeProfilesDoc parses a ProfilesDoc produced by EncodeJSON (or served
// by GET /jobs/{id}/profiles).
func DecodeProfilesDoc(data []byte) (*ProfilesDoc, error) {
	var d ProfilesDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("inspect: decoding profiles doc: %w", err)
	}
	return &d, nil
}

// Complete reports whether both sides of the pair are present, i.e. whether
// eCDF overlays and quantile-band attribution can be computed.
func (d *ProfilesDoc) Complete() bool {
	return d != nil && d.Target != nil && d.Best != nil
}

// sortedComponentNames returns the component names of a map in stable
// (lexicographic) order. Rendering and diffing iterate maps only through
// this.
func sortedComponentNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// componentKind classifies a component name as a distribution or a
// sensitivity curve, mirroring core's error model.
func componentKind(name string) string {
	switch core.Component(name) {
	case core.CompLLCCurve, core.CompIPCCurve:
		return KindCurve
	default:
		return KindDistribution
	}
}
