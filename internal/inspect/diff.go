package inspect

import (
	"fmt"
	"math"
	"sort"
)

// Verdicts of a run comparison, from best to worst.
const (
	// VerdictIdentical: no difference beyond tolerance anywhere.
	VerdictIdentical = "identical"
	// VerdictImproved: runs differ and B's best error is at least a
	// tolerance better than A's, with no regressions.
	VerdictImproved = "improved"
	// VerdictChanged: runs differ without crossing any regression
	// threshold (e.g. timings shifted, equal-error path divergence).
	VerdictChanged = "changed"
	// VerdictRegressed: at least one regression threshold was crossed.
	VerdictRegressed = "regressed"
)

// DiffOptions sets the comparison thresholds.
type DiffOptions struct {
	// Tolerance is the absolute slack applied to every numeric comparison
	// (best error, component distances, convergence series, parameters)
	// before it counts as a difference or regression. Default 1e-9.
	Tolerance float64
	// ErrorTolerance, when positive, overrides Tolerance for the best-error
	// regression check only — CI can allow small error drift while still
	// flagging structural divergence.
	ErrorTolerance float64
}

func (o DiffOptions) tolerance() float64 {
	if o.Tolerance > 0 {
		return o.Tolerance
	}
	return 1e-9
}

func (o DiffOptions) errorTolerance() float64 {
	if o.ErrorTolerance > 0 {
		return o.ErrorTolerance
	}
	return o.tolerance()
}

// Delta is one compared quantity.
type Delta struct {
	Name string  `json:"name"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
	// Delta is B − A.
	Delta float64 `json:"delta"`
}

func (d Delta) abs() float64 { return math.Abs(d.Delta) }

// RunDiff is the machine-readable outcome of comparing run B against
// baseline run A.
type RunDiff struct {
	// Verdict is one of the Verdict* constants.
	Verdict string `json:"verdict"`
	// BestError compares the runs' final best errors.
	BestError Delta `json:"best_error"`
	// BestIter is each run's best iteration index.
	BestIter [2]int `json:"best_iter"`
	// Iterations, Evals, Skipped, CacheHits compare the history shapes.
	Iterations [2]int `json:"iterations"`
	Evals      [2]int `json:"evals"`
	Skipped    [2]int `json:"skipped"`
	CacheHits  [2]int `json:"cache_hits"`
	// Components compares the best evaluation's per-metric attribution
	// (union of both runs' components, sorted by name).
	Components []Delta `json:"components,omitempty"`
	// ParamsMaxDelta is the largest absolute best-parameter difference
	// (0 when dimensions differ — see ParamsComparable).
	ParamsMaxDelta   float64 `json:"params_max_delta"`
	ParamsComparable bool    `json:"params_comparable"`
	// FirstDivergence is the first index where the best-error convergence
	// series differ beyond tolerance (-1 when they match over the shared
	// prefix and have equal length).
	FirstDivergence int `json:"first_divergence"`
	// SeriesMaxDelta is the largest absolute best-error difference over the
	// shared prefix of the convergence series.
	SeriesMaxDelta float64 `json:"series_max_delta"`
	// Regressions lists every crossed regression threshold.
	Regressions []string `json:"regressions,omitempty"`
	// Differences lists every detected difference, regressions included.
	Differences []string `json:"differences,omitempty"`
}

// Regressed reports whether any regression threshold was crossed.
func (d *RunDiff) Regressed() bool { return len(d.Regressions) > 0 }

// Identical reports whether no difference was detected.
func (d *RunDiff) Identical() bool { return len(d.Differences) == 0 }

// DiffRuns compares run b against baseline a. The comparison covers only
// semantic search state — errors, attribution, parameters, history shape —
// never wall-clock timings, so two runs of a deterministic search diff
// clean regardless of machine speed.
func DiffRuns(a, b *Run, opts DiffOptions) *RunDiff {
	tol := opts.tolerance()
	d := &RunDiff{FirstDivergence: -1}
	regress := func(format string, args ...interface{}) {
		msg := fmt.Sprintf(format, args...)
		d.Regressions = append(d.Regressions, msg)
		d.Differences = append(d.Differences, msg)
	}
	differ := func(format string, args ...interface{}) {
		d.Differences = append(d.Differences, fmt.Sprintf(format, args...))
	}

	ca, cb := a.Counts(), b.Counts()
	d.Iterations = [2]int{len(a.Evals), len(b.Evals)}
	d.Evals = [2]int{ca.Evals, cb.Evals}
	d.Skipped = [2]int{ca.Skipped, cb.Skipped}
	d.CacheHits = [2]int{ca.CacheHits, cb.CacheHits}
	if len(a.Evals) != len(b.Evals) {
		if len(b.Evals) < len(a.Evals) {
			regress("iterations shrank: %d -> %d", len(a.Evals), len(b.Evals))
		} else {
			differ("iterations grew: %d -> %d", len(a.Evals), len(b.Evals))
		}
	}
	if cb.Skipped > ca.Skipped {
		regress("skipped evaluations rose: %d -> %d", ca.Skipped, cb.Skipped)
	} else if cb.Skipped < ca.Skipped {
		differ("skipped evaluations fell: %d -> %d", ca.Skipped, cb.Skipped)
	}

	bestA, okA := a.Best()
	bestB, okB := b.Best()
	d.BestIter = [2]int{bestA.Iter, bestB.Iter}
	d.BestError = Delta{Name: "best_error", A: bestA.Error, B: bestB.Error, Delta: bestB.Error - bestA.Error}
	switch {
	case okA && !okB:
		regress("run B has no evaluations")
	case !okA && okB:
		differ("run A has no evaluations")
	case okA && okB:
		if d.BestError.Delta > opts.errorTolerance() {
			regress("best error worsened: %.6g -> %.6g (+%.3g)", bestA.Error, bestB.Error, d.BestError.Delta)
		} else if d.BestError.abs() > tol {
			differ("best error changed: %.6g -> %.6g (%+.3g)", bestA.Error, bestB.Error, d.BestError.Delta)
		}
		if bestA.Iter != bestB.Iter {
			differ("best iteration moved: %d -> %d", bestA.Iter, bestB.Iter)
		}
		d.diffParams(bestA.Params, bestB.Params, tol, differ)
	}

	d.diffComponents(a.FinalComponents(), b.FinalComponents(), opts, regress, differ)
	d.diffSeries(a.BestTrace(), b.BestTrace(), tol, differ)

	switch {
	case len(d.Regressions) > 0:
		d.Verdict = VerdictRegressed
	case len(d.Differences) == 0:
		d.Verdict = VerdictIdentical
	case d.BestError.Delta < -opts.errorTolerance():
		d.Verdict = VerdictImproved
	default:
		d.Verdict = VerdictChanged
	}
	return d
}

// diffParams compares best-point parameter vectors.
func (d *RunDiff) diffParams(pa, pb []float64, tol float64, differ func(string, ...interface{})) {
	if len(pa) != len(pb) {
		differ("best params dimension changed: %d -> %d", len(pa), len(pb))
		return
	}
	d.ParamsComparable = true
	for i := range pa {
		d.ParamsMaxDelta = math.Max(d.ParamsMaxDelta, math.Abs(pb[i]-pa[i]))
	}
	if d.ParamsMaxDelta > tol {
		differ("best params moved: max |delta| %.6g", d.ParamsMaxDelta)
	}
}

// diffComponents compares the per-metric attribution of the best points.
func (d *RunDiff) diffComponents(ma, mb map[string]float64, opts DiffOptions, regress, differ func(string, ...interface{})) {
	tol := opts.tolerance()
	union := make(map[string]struct{}, len(ma)+len(mb))
	for k := range ma {
		union[k] = struct{}{}
	}
	for k := range mb {
		union[k] = struct{}{}
	}
	names := make([]string, 0, len(union))
	for k := range union {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		va, inA := ma[name]
		vb, inB := mb[name]
		delta := Delta{Name: name, A: va, B: vb, Delta: vb - va}
		d.Components = append(d.Components, delta)
		switch {
		case inA && !inB:
			differ("component %s disappeared", name)
		case !inA && inB:
			differ("component %s appeared", name)
		case delta.Delta > tol:
			regress("component %s worsened: %.6g -> %.6g (+%.3g)", name, va, vb, delta.Delta)
		case delta.abs() > tol:
			differ("component %s improved: %.6g -> %.6g (%+.3g)", name, va, vb, delta.Delta)
		}
	}
}

// diffSeries compares the best-error convergence series.
func (d *RunDiff) diffSeries(sa, sb []float64, tol float64, differ func(string, ...interface{})) {
	n := len(sa)
	if len(sb) < n {
		n = len(sb)
	}
	for i := 0; i < n; i++ {
		diff := math.Abs(sb[i] - sa[i])
		d.SeriesMaxDelta = math.Max(d.SeriesMaxDelta, diff)
		if diff > tol && d.FirstDivergence < 0 {
			d.FirstDivergence = i
		}
	}
	if d.FirstDivergence >= 0 {
		differ("convergence series diverge from iteration %d (max |delta| %.6g)",
			d.FirstDivergence, d.SeriesMaxDelta)
	}
	// Length mismatch is already reported via the iteration counts.
}
