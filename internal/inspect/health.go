package inspect

// Search-health analysis: the optimizer-observatory view of a run. The raw
// material is the artifact's search.diagnostics events (one opt.Diagnostics
// snapshot per surrogate-backed proposal); this file distills them into a
// SearchHealth aggregate with a heuristic verdict, and renders the "Search
// health" section of the text and HTML reports. Everything is a pure
// function of the parsed run — no clocks — so identically-seeded runs
// render identical bytes.

import (
	"fmt"
	"math"
	"strings"

	"datamime/internal/opt"
	"datamime/internal/telemetry"
)

// DiagRecord is one iteration's GP search-health snapshot reconstructed
// from a search.diagnostics artifact event (see opt.Diagnostics for the
// semantics of each figure).
type DiagRecord struct {
	Iter         int     `json:"iter"`
	LengthScale  float64 `json:"length_scale"`
	NoiseFrac    float64 `json:"noise_frac"`
	SignalVar    float64 `json:"signal_var"`
	LogMarginal  float64 `json:"log_marginal"`
	Observations int     `json:"observations"`
	JitterLevel  int     `json:"jitter_level"`
	Condition    float64 `json:"condition"`
	LOORMSE      float64 `json:"loo_rmse"`
	LOOMaxZ      float64 `json:"loo_max_z"`
	Coverage1    float64 `json:"coverage1"`
	Coverage2    float64 `json:"coverage2"`
	Candidates   int     `json:"candidates"`
	ChosenEI     float64 `json:"chosen_ei"`
	PoolMeanEI   float64 `json:"pool_mean_ei"`
	ExploitEI    float64 `json:"exploit_ei"`
	ExploreEI    float64 `json:"explore_ei"`
}

// AcqGap is the chosen-vs-pool-mean EI spread: how peaked the acquisition
// surface still is. A gap collapsing toward zero means every candidate
// looks alike to the optimizer — the stagnation signal.
func (d DiagRecord) AcqGap() float64 { return d.ChosenEI - d.PoolMeanEI }

// NewDiagRecord wraps a trace-attached opt.Diagnostics as a DiagRecord. It
// lets callers holding a live convergence trace (the service's job store)
// build the search-health view without round-tripping through an artifact —
// trace records carry diagnostics even when telemetry is off.
func NewDiagRecord(iter int, d opt.Diagnostics) DiagRecord {
	return DiagRecord{
		Iter:         iter,
		LengthScale:  d.LengthScale,
		NoiseFrac:    d.NoiseFrac,
		SignalVar:    d.SignalVar,
		LogMarginal:  d.LogMarginal,
		Observations: d.Observations,
		JitterLevel:  d.JitterLevel,
		Condition:    d.Condition,
		LOORMSE:      d.LOORMSE,
		LOOMaxZ:      d.LOOMaxZ,
		Coverage1:    d.Coverage1,
		Coverage2:    d.Coverage2,
		Candidates:   d.Candidates,
		ChosenEI:     d.ChosenEI,
		PoolMeanEI:   d.PoolMeanEI,
		ExploitEI:    d.ExploitEI,
		ExploreEI:    d.ExploreEI,
	}
}

// diagRecord converts one search.diagnostics event back into typed fields.
func diagRecord(ev telemetry.Event) DiagRecord {
	a := ev.Attrs
	return DiagRecord{
		Iter:         ev.Iter,
		LengthScale:  a[telemetry.DiagLengthScale],
		NoiseFrac:    a[telemetry.DiagNoiseFrac],
		SignalVar:    a[telemetry.DiagSignalVar],
		LogMarginal:  a[telemetry.DiagLogMarginal],
		Observations: int(a[telemetry.DiagObservations]),
		JitterLevel:  int(a[telemetry.DiagJitterLevel]),
		Condition:    a[telemetry.DiagCondition],
		LOORMSE:      a[telemetry.DiagLOORMSE],
		LOOMaxZ:      a[telemetry.DiagLOOMaxZ],
		Coverage1:    a[telemetry.DiagCoverage1],
		Coverage2:    a[telemetry.DiagCoverage2],
		Candidates:   int(a[telemetry.DiagCandidates]),
		ChosenEI:     a[telemetry.DiagChosenEI],
		PoolMeanEI:   a[telemetry.DiagPoolMeanEI],
		ExploitEI:    a[telemetry.DiagExploitEI],
		ExploreEI:    a[telemetry.DiagExploreEI],
	}
}

// Nominal Gaussian band coverages the calibration figures are judged
// against: P(|z| ≤ 1) and P(|z| ≤ 2).
const (
	NominalCoverage1 = 0.6827
	NominalCoverage2 = 0.9545
)

// SearchHealth aggregates a run's diagnostics snapshots into the headline
// model-health figures and a heuristic verdict.
type SearchHealth struct {
	// Records are the per-iteration snapshots, in stream order.
	Records []DiagRecord

	// MeanCoverage1/MeanCoverage2 average the 1σ/2σ LOO band coverages
	// over the second half of the snapshots (early fits have too few
	// observations to judge calibration on).
	MeanCoverage1 float64
	MeanCoverage2 float64
	// FinalLogMarginal is the last fit's log evidence; FirstLogMarginal
	// the first, for the trend.
	FirstLogMarginal float64
	FinalLogMarginal float64
	// MaxJitterLevel and MaxCondition are the worst conditioning any
	// snapshot reported.
	MaxJitterLevel int
	MaxCondition   float64
	// FinalGap and MaxGap track the chosen-vs-pool-mean EI spread.
	FinalGap float64
	MaxGap   float64
	// ExploreShare is the exploration term's share of the last chosen EI.
	ExploreShare float64

	// Verdicts are the heuristic flags raised (empty = healthy).
	Verdicts []string
}

// Healthy reports whether no heuristic flag fired.
func (h *SearchHealth) Healthy() bool { return len(h.Verdicts) == 0 }

// VerdictLine renders the verdict as one line.
func (h *SearchHealth) VerdictLine() string {
	if h == nil || len(h.Records) == 0 {
		return "no diagnostics recorded"
	}
	if h.Healthy() {
		return "healthy: calibration near nominal, conditioning clean, acquisition surface still informative"
	}
	return strings.Join(h.Verdicts, "; ")
}

// NewSearchHealth distills a run's diagnostics snapshots. Returns nil when
// the artifact carries none (telemetry off, or a pre-diagnostics artifact).
func NewSearchHealth(run *Run) *SearchHealth {
	if len(run.Diagnostics) == 0 {
		return nil
	}
	recs := run.Diagnostics
	h := &SearchHealth{
		Records:          recs,
		FirstLogMarginal: recs[0].LogMarginal,
		FinalLogMarginal: recs[len(recs)-1].LogMarginal,
		FinalGap:         recs[len(recs)-1].AcqGap(),
	}
	// Judge calibration on the settled half of the search.
	settled := recs[len(recs)/2:]
	for _, d := range settled {
		h.MeanCoverage1 += d.Coverage1
		h.MeanCoverage2 += d.Coverage2
	}
	h.MeanCoverage1 /= float64(len(settled))
	h.MeanCoverage2 /= float64(len(settled))
	for _, d := range recs {
		if d.JitterLevel > h.MaxJitterLevel {
			h.MaxJitterLevel = d.JitterLevel
		}
		if d.Condition > h.MaxCondition {
			h.MaxCondition = d.Condition
		}
		if g := d.AcqGap(); g > h.MaxGap {
			h.MaxGap = g
		}
	}
	if last := recs[len(recs)-1]; last.ChosenEI > 0 {
		h.ExploreShare = last.ExploreEI / last.ChosenEI
	}
	h.Verdicts = verdicts(h)
	return h
}

// verdicts applies the heuristic health checks. Thresholds are deliberately
// loose — the verdict is a triage pointer, not a gate — and every flag
// names the figure that tripped it so the reader can judge.
func verdicts(h *SearchHealth) []string {
	var out []string
	n := len(h.Records)
	// Calibration needs enough observations per fit to mean anything.
	if enough := h.Records[n-1].Observations >= 8; enough {
		switch {
		case h.MeanCoverage1 < 0.45 || h.MeanCoverage2 < 0.80:
			out = append(out, fmt.Sprintf(
				"miscalibrated (overconfident): LOO coverage %s inside 1σ / %s inside 2σ (nominal %s / %s)",
				fpct(h.MeanCoverage1), fpct(h.MeanCoverage2),
				fpct(NominalCoverage1), fpct(NominalCoverage2)))
		case h.MeanCoverage1 > 0.95 && h.MeanCoverage2 > 0.99:
			out = append(out, fmt.Sprintf(
				"miscalibrated (underconfident): LOO coverage %s inside 1σ (nominal %s) — predictive bands too wide",
				fpct(h.MeanCoverage1), fpct(NominalCoverage1)))
		}
	}
	if h.MaxJitterLevel >= 2 {
		out = append(out, fmt.Sprintf(
			"ill-conditioned covariance: jitter escalated to level %d (base ×10^%d)",
			h.MaxJitterLevel, h.MaxJitterLevel))
	} else if h.MaxCondition > 1e12 {
		out = append(out, fmt.Sprintf(
			"ill-conditioned covariance: condition estimate %.2g", h.MaxCondition))
	}
	if n >= 3 && h.MaxGap > 0 && h.FinalGap < 0.02*h.MaxGap {
		out = append(out, fmt.Sprintf(
			"stagnating acquisition: chosen-vs-pool EI gap collapsed to %s of its peak (%.3g of %.3g)",
			fpct(h.FinalGap/h.MaxGap), h.FinalGap, h.MaxGap))
	}
	return out
}

// SimpleRegret returns the simple-regret series of the run's convergence
// trace: best-so-far error minus the run's final best, per evaluation. The
// canonical "is the search still making progress" curve.
func SimpleRegret(trace []float64) []float64 {
	if len(trace) == 0 {
		return nil
	}
	final := trace[len(trace)-1]
	out := make([]float64, len(trace))
	for i, v := range trace {
		out[i] = v - final
	}
	return out
}

// renderHealthText writes the terminal "search health" section.
func (r *Report) renderHealthText(b *strings.Builder) {
	h := NewSearchHealth(r.Run)
	if h == nil {
		return
	}
	recs := h.Records
	last := recs[len(recs)-1]
	fmt.Fprintf(b, "\nsearch health (%d GP diagnostics snapshots):\n", len(recs))
	lmls := make([]float64, len(recs))
	gaps := make([]float64, len(recs))
	cov1 := make([]float64, len(recs))
	for i, d := range recs {
		lmls[i] = d.LogMarginal
		gaps[i] = d.AcqGap()
		cov1[i] = d.Coverage1
	}
	fmt.Fprintf(b, "  gp fit: length scale %s, noise frac %s, log marginal %s -> %s  |%s|\n",
		fnum(last.LengthScale), fnum(last.NoiseFrac),
		fnum(h.FirstLogMarginal), fnum(h.FinalLogMarginal), sparkline(lmls, 32))
	fmt.Fprintf(b, "  calibration: 1σ coverage %s (nominal %s), 2σ %s (nominal %s)  |%s|\n",
		fpct(h.MeanCoverage1), fpct(NominalCoverage1),
		fpct(h.MeanCoverage2), fpct(NominalCoverage2), sparkline(cov1, 32))
	fmt.Fprintf(b, "  loo residuals: rmse %s, max |z| %s over %d observations\n",
		fnum(last.LOORMSE), fnum(last.LOOMaxZ), last.Observations)
	fmt.Fprintf(b, "  conditioning: max jitter level %d, condition estimate %.3g\n",
		h.MaxJitterLevel, h.MaxCondition)
	fmt.Fprintf(b, "  acquisition: chosen EI %s vs pool mean %s (gap trend |%s|), explore share %s\n",
		fnum(last.ChosenEI), fnum(last.PoolMeanEI), sparkline(gaps, 32), fpct(h.ExploreShare))
	fmt.Fprintf(b, "  verdict: %s\n", h.VerdictLine())
}

// writeSearchHealthHTML renders the HTML "Search health" section: the
// calibration-coverage plot against nominal bands, the simple-regret curve,
// and the hyperparameter / acquisition-gap trajectories, plus the verdict.
func (r *Report) writeSearchHealthHTML(b *strings.Builder) {
	h := NewSearchHealth(r.Run)
	if h == nil {
		return
	}
	recs := h.Records
	iters := make([]float64, len(recs))
	cov1 := make([]float64, len(recs))
	cov2 := make([]float64, len(recs))
	lmls := make([]float64, len(recs))
	gaps := make([]float64, len(recs))
	lens := make([]float64, len(recs))
	for i, d := range recs {
		iters[i] = float64(d.Iter)
		cov1[i] = d.Coverage1
		cov2[i] = d.Coverage2
		lmls[i] = d.LogMarginal
		gaps[i] = d.AcqGap()
		lens[i] = d.LengthScale
	}
	b.WriteString("<h2>Search health</h2>\n")
	cls := "sub"
	if !h.Healthy() {
		cls = "warn"
	}
	fmt.Fprintf(b, "<p class=\"%s\">Verdict: %s.</p>\n", cls, htmlEscape(h.VerdictLine()))
	fmt.Fprintf(b, "<p class=\"sub\">%d GP diagnostics snapshots — leave-one-out calibration, model evidence, and acquisition-surface health, all derived from the search's own factorizations.</p>\n", len(recs))
	b.WriteString(`<div class="grid2">` + "\n")

	// Calibration: observed 1σ/2σ coverage against the nominal Gaussian
	// bands (dashed grid lines at 68.3% and 95.4%).
	b.WriteString("<div><h2>LOO calibration coverage</h2>\n")
	b.WriteString(`<div class="legend"><span class="t"><i></i>within 1σ</span><span class="b"><i></i>within 2σ</span></div>` + "\n")
	g := defaultGeom(440, 200)
	xr := rangeOf(iters).pad()
	yr := axisRange{0, 1}
	g.openSVG(b, "leave-one-out calibration coverage per iteration vs nominal Gaussian bands")
	g.writeAxes(b, xr, yr, "iteration", "coverage")
	for _, nominal := range []float64{NominalCoverage1, NominalCoverage2} {
		_, py := g.xy(xr, yr, xr.Lo, nominal)
		fmt.Fprintf(b, `<line class="axis" stroke-dasharray="4 3" x1="%s" y1="%s" x2="%s" y2="%s"/>`,
			coord(g.MarginL), coord(py), coord(g.W-g.MarginR), coord(py))
	}
	fmt.Fprintf(b, `<path class="target" d="%s"/>`, g.linePath(xr, yr, iters, cov1))
	fmt.Fprintf(b, `<path class="best" d="%s"/>`, g.linePath(xr, yr, iters, cov2))
	b.WriteString("</svg>\n</div>\n")

	// Simple regret: best-so-far minus final best, over evaluations.
	if trace := r.Run.BestTrace(); len(trace) > 1 {
		regret := SimpleRegret(trace)
		xs := make([]float64, len(regret))
		for i := range xs {
			xs[i] = float64(i)
		}
		b.WriteString("<div><h2>Simple regret</h2>\n")
		g := defaultGeom(440, 200)
		xr := rangeOf(xs).pad()
		yr := rangeOf(regret).pad()
		g.openSVG(b, "simple regret: best-so-far error minus final best, per evaluation")
		g.writeAxes(b, xr, yr, "evaluation", "regret")
		fmt.Fprintf(b, `<path class="target" d="%s"/>`, g.stepPath(xr, yr, xs, regret))
		b.WriteString("</svg>\n</div>\n")
	}

	// Model evidence trajectory.
	b.WriteString("<div><h2>Log marginal likelihood</h2>\n")
	g = defaultGeom(440, 200)
	xr = rangeOf(iters).pad()
	yr = rangeOf(lmls).pad()
	g.openSVG(b, "GP log marginal likelihood of the selected hyperparameters per iteration")
	g.writeAxes(b, xr, yr, "iteration", "log marginal")
	fmt.Fprintf(b, `<path class="target" d="%s"/>`, g.linePath(xr, yr, iters, lmls))
	b.WriteString("</svg>\n</div>\n")

	// Hyperparameter trajectory: the ML-selected length scale (log10).
	logLens := make([]float64, len(lens))
	for i, v := range lens {
		logLens[i] = math.Log10(v)
	}
	b.WriteString("<div><h2>Selected length scale</h2>\n")
	g = defaultGeom(440, 200)
	yr = rangeOf(logLens).pad()
	g.openSVG(b, "ML-selected kernel length scale per iteration, log10")
	g.writeAxes(b, xr, yr, "iteration", "log10 length scale")
	fmt.Fprintf(b, `<path class="target" d="%s"/>`, g.linePath(xr, yr, iters, logLens))
	b.WriteString("</svg>\n</div>\n")

	// Acquisition gap: chosen EI vs the candidate-pool mean.
	b.WriteString("<div><h2>Acquisition gap</h2>\n")
	b.WriteString(`<div class="legend"><span class="t"><i></i>chosen − pool mean EI</span></div>` + "\n")
	g = defaultGeom(440, 200)
	yr = rangeOf(gaps).pad()
	g.openSVG(b, "acquisition gap: chosen candidate EI minus pool mean, per iteration")
	g.writeAxes(b, xr, yr, "iteration", "EI gap")
	fmt.Fprintf(b, `<path class="target" d="%s"/>`, g.linePath(xr, yr, iters, gaps))
	b.WriteString("</svg>\n</div>\n")

	b.WriteString("</div>\n")
}
