package inspect

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSummaryJSON(t *testing.T) {
	artifact := `{"type":"log","job":"job-9","time_ns":1000,"msg":"datamime run artifact"}
{"type":"span","job":"job-9","iter":0,"phase":"profile.sim","dur_ns":500000,"time_ns":1800000,"attrs":{"worker":0,"ways":8}}
{"type":"span","job":"job-9","iter":0,"phase":"propose","dur_ns":100000,"time_ns":1900000}
{"type":"eval","job":"job-9","iter":0,"time_ns":2100000,"params":[0.5,0.2],"attrs":{"error":0.4,"best_error":0.4,"emd_cpu_util":0.4}}
{"type":"eval","job":"job-9","iter":1,"time_ns":3100000,"params":[0.6,0.1],"attrs":{"error":0.3,"best_error":0.3,"cache_hit":1,"emd_cpu_util":0.3}}
`
	run, err := LoadRun(strings.NewReader(artifact))
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(run, nil, ReportOptions{})
	sum := NewRunSummary(rep)

	if !sum.BestFound || sum.BestError != 0.3 || sum.BestIter != 1 {
		t.Fatalf("best = %+v", sum)
	}
	if len(sum.Trajectory) != 2 || sum.Trajectory[0] != 0.4 || sum.Trajectory[1] != 0.3 {
		t.Fatalf("trajectory = %v", sum.Trajectory)
	}
	if sum.Evals != 2 || sum.CacheHits != 1 || sum.Misses != 1 {
		t.Fatalf("counts = %+v", sum)
	}
	if len(sum.Attribution) != 1 || sum.Attribution[0].Component != "cpu_util" {
		t.Fatalf("attribution = %+v", sum.Attribution)
	}
	if sum.PhaseSeconds["propose"] != 0.0001 {
		t.Fatalf("phase seconds = %v", sum.PhaseSeconds)
	}
	if sum.Timeline == nil || sum.Timeline.Workers != 1 {
		t.Fatalf("timeline = %+v", sum.Timeline)
	}

	// The JSON output must round-trip and be stable field-for-field.
	var buf bytes.Buffer
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunSummary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("summary JSON does not round-trip: %v", err)
	}
	if back.BestError != sum.BestError || back.Evals != sum.Evals {
		t.Fatalf("round trip changed values: %+v vs %+v", back, sum)
	}
	var buf2 bytes.Buffer
	if err := sum.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("summary JSON is not deterministic")
	}
}
