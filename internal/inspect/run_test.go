package inspect

import (
	"fmt"
	"strings"
	"testing"

	"datamime/internal/telemetry"
)

// testArtifact builds a small deterministic artifact: a header, spans, six
// evals (one skipped, one cache hit) with EMD attribution on the last.
func testArtifact() string {
	var b strings.Builder
	write := func(format string, args ...interface{}) {
		fmt.Fprintf(&b, format+"\n", args...)
	}
	write(`{"type":"log","job":"job-1","msg":"datamime run artifact: state=done events=6"}`)
	write(`{"type":"span","job":"job-1","iter":0,"phase":"generate","dur_ns":2000000}`)
	write(`{"type":"span","job":"job-1","iter":0,"phase":"profile","dur_ns":8000000}`)
	errs := []float64{0.9, 0.7, 0.8, 0.4, 0.6}
	best := []float64{0.9, 0.7, 0.7, 0.4, 0.4}
	iter := 0
	for i := range errs {
		if i == 2 {
			write(`{"type":"eval","job":"job-1","iter":%d,"skipped":true,"msg":"generator failed"}`, iter)
			iter++
		}
		extra := ""
		if i == 1 {
			extra = `,"cache_hit":1`
		}
		if i == 3 { // the best eval carries the final attribution
			extra = `,"emd_cpu_util":0.25,"emd_l2_mpki":0.15`
		}
		write(`{"type":"eval","job":"job-1","iter":%d,"params":[0.%d,0.5],"attrs":{"error":%g,"best_error":%g,"phase_profile_ns":1000000%s}}`,
			iter, i, errs[i], best[i], extra)
		iter++
	}
	return b.String()
}

func TestLoadRunParsesArtifact(t *testing.T) {
	run, err := LoadRun(strings.NewReader(testArtifact()))
	if err != nil {
		t.Fatal(err)
	}
	if run.Job != "job-1" {
		t.Errorf("Job %q", run.Job)
	}
	if !strings.Contains(run.Header, "state=done") {
		t.Errorf("Header %q", run.Header)
	}
	if run.Malformed != 0 {
		t.Errorf("Malformed %d, want 0", run.Malformed)
	}
	if run.Spans != 2 || run.Phases["profile"].TotalNS != 8000000 {
		t.Errorf("Spans %d Phases %+v", run.Spans, run.Phases)
	}
	c := run.Counts()
	if c.Evals != 5 || c.Skipped != 1 || c.CacheHits != 1 {
		t.Errorf("Counts %+v", c)
	}
	bestRec, ok := run.Best()
	if !ok || bestRec.Error != 0.4 || bestRec.Iter != 4 {
		t.Errorf("Best %+v ok=%v", bestRec, ok)
	}
	trace := run.BestTrace()
	want := []float64{0.9, 0.7, 0.7, 0.4, 0.4}
	if len(trace) != len(want) {
		t.Fatalf("trace %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("trace[%d] = %g, want %g", i, trace[i], want[i])
		}
	}
	comps := run.FinalComponents()
	if comps["cpu_util"] != 0.25 || comps["l2_mpki"] != 0.15 {
		t.Errorf("FinalComponents %v", comps)
	}
	if bestRec.Components["cpu_util"] != 0.25 {
		t.Errorf("best record components %v", bestRec.Components)
	}
	if run.Evals[len(run.Evals)-1].PhaseNS["profile"] != 1000000 {
		t.Errorf("PhaseNS %v", run.Evals[len(run.Evals)-1].PhaseNS)
	}
}

// TestLoadRunTruncatedLine checks a mid-write-truncated trailing line (the
// dying-writer case) is skipped and counted, not fatal.
func TestLoadRunTruncatedLine(t *testing.T) {
	art := testArtifact()
	truncated := art + `{"type":"eval","job":"job-1","iter":9,"attrs":{"error":0.3,"bes`
	run, err := LoadRun(strings.NewReader(truncated))
	if err != nil {
		t.Fatalf("truncated artifact should load: %v", err)
	}
	if run.Malformed != 1 {
		t.Errorf("Malformed %d, want 1", run.Malformed)
	}
	if len(run.Evals) != 6 {
		t.Errorf("%d evals, want 6 (truncated line dropped)", len(run.Evals))
	}
}

// TestLoadRunRejectsBrokenEval: a well-formed JSON eval without best_error
// is a structural error, not truncation — it must fail loudly.
func TestLoadRunRejectsBrokenEval(t *testing.T) {
	art := `{"type":"eval","iter":0,"attrs":{"error":0.5}}` + "\n"
	if _, err := LoadRun(strings.NewReader(art)); err == nil {
		t.Fatal("want error for eval without best_error")
	} else if !strings.Contains(err.Error(), telemetry.AttrBestError) {
		t.Errorf("error %v should name the missing attribute", err)
	}
}
