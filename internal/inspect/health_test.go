package inspect

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"datamime/internal/opt"
	"datamime/internal/telemetry"
)

// healthyRecords builds n well-calibrated snapshots with a still-informative
// acquisition surface.
func healthyRecords(n int) []DiagRecord {
	recs := make([]DiagRecord, n)
	for i := range recs {
		recs[i] = DiagRecord{
			Iter:         6 + i,
			LengthScale:  0.4,
			NoiseFrac:    1e-3,
			SignalVar:    1.0,
			LogMarginal:  -10 + float64(i),
			Observations: 6 + i,
			Condition:    1e4,
			LOORMSE:      0.1,
			LOOMaxZ:      1.8,
			Coverage1:    0.70,
			Coverage2:    0.95,
			Candidates:   512,
			ChosenEI:     0.5 - 0.02*float64(i),
			PoolMeanEI:   0.1,
			ExploitEI:    0.3,
			ExploreEI:    0.1,
		}
	}
	return recs
}

func healthOf(recs []DiagRecord) *SearchHealth {
	return NewSearchHealth(&Run{Diagnostics: recs})
}

func TestSearchHealthVerdicts(t *testing.T) {
	if NewSearchHealth(&Run{}) != nil {
		t.Fatal("SearchHealth from a run without diagnostics, want nil")
	}

	if h := healthOf(healthyRecords(10)); !h.Healthy() {
		t.Fatalf("healthy records flagged: %v", h.Verdicts)
	}

	// Overconfident: LOO coverage far below nominal with enough observations.
	over := healthyRecords(10)
	for i := range over {
		over[i].Coverage1 = 0.3
		over[i].Coverage2 = 0.6
	}
	h := healthOf(over)
	if h.Healthy() || !strings.Contains(h.VerdictLine(), "overconfident") {
		t.Fatalf("overconfident records not flagged: %q", h.VerdictLine())
	}

	// Too few observations to judge calibration: the same coverages pass.
	for i := range over {
		over[i].Observations = 5
	}
	if h := healthOf(over); !h.Healthy() {
		t.Fatalf("calibration judged on too few observations: %v", h.Verdicts)
	}

	// Ill-conditioned: escalated jitter.
	jittery := healthyRecords(10)
	jittery[4].JitterLevel = 3
	h = healthOf(jittery)
	if h.Healthy() || !strings.Contains(h.VerdictLine(), "ill-conditioned") {
		t.Fatalf("jitter escalation not flagged: %q", h.VerdictLine())
	}
	if h.MaxJitterLevel != 3 {
		t.Fatalf("MaxJitterLevel = %d, want 3", h.MaxJitterLevel)
	}

	// Stagnating: the acquisition gap collapses to ~0 of its peak.
	stale := healthyRecords(10)
	for i := range stale {
		stale[i].ChosenEI = 0.5
		if i >= 5 {
			stale[i].ChosenEI = 0.1001
		}
		stale[i].PoolMeanEI = 0.1
	}
	h = healthOf(stale)
	if h.Healthy() || !strings.Contains(h.VerdictLine(), "stagnating") {
		t.Fatalf("collapsed acquisition gap not flagged: %q", h.VerdictLine())
	}
}

func TestSimpleRegret(t *testing.T) {
	got := SimpleRegret([]float64{0.9, 0.5, 0.2})
	want := []float64{0.7, 0.3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SimpleRegret = %v, want %v", got, want)
		}
	}
	if SimpleRegret(nil) != nil {
		t.Fatal("SimpleRegret(nil) != nil")
	}
}

// TestHealthRendersInReports: a run with diagnostics renders the search
// health section in both text and HTML, and the -json summary carries the
// diagnostics block.
func TestHealthRendersInReports(t *testing.T) {
	var artifact strings.Builder
	artifact.WriteString(testArtifact())
	events := []telemetry.Event{
		{Type: telemetry.TypeSearchDiagnostics, Job: "job-1", Iter: 4, Attrs: map[string]float64{
			telemetry.DiagLengthScale: 0.4, telemetry.DiagNoiseFrac: 1e-3,
			telemetry.DiagLogMarginal: -12.5, telemetry.DiagObservations: 9,
			telemetry.DiagCondition: 1e4, telemetry.DiagLOORMSE: 0.12,
			telemetry.DiagLOOMaxZ: 1.6, telemetry.DiagCoverage1: 0.67,
			telemetry.DiagCoverage2: 0.95, telemetry.DiagCandidates: 512,
			telemetry.DiagChosenEI: 0.4, telemetry.DiagPoolMeanEI: 0.1,
			telemetry.DiagExploitEI: 0.3, telemetry.DiagExploreEI: 0.1,
		}},
	}
	if err := telemetry.WriteJSONL(&artifact, events); err != nil {
		t.Fatal(err)
	}
	run, err := LoadRun(strings.NewReader(artifact.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Diagnostics) != 1 || run.Diagnostics[0].Observations != 9 {
		t.Fatalf("diagnostics not parsed: %+v", run.Diagnostics)
	}

	report := NewReport(run, nil, ReportOptions{})
	var text bytes.Buffer
	if err := report.RenderText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "search health (1 GP diagnostics snapshots)") {
		t.Fatalf("text report lacks search health section:\n%s", text.String())
	}
	var html bytes.Buffer
	if err := report.RenderHTML(&html); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html.String(), "<h2>Search health</h2>") {
		t.Fatal("HTML report lacks the Search health section")
	}

	s := NewRunSummary(report)
	if s.Diagnostics == nil || s.Diagnostics.Snapshots != 1 {
		t.Fatalf("summary diagnostics = %+v, want 1 snapshot", s.Diagnostics)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"diagnostics"`) {
		t.Fatal("summary JSON lacks the diagnostics block")
	}
}

// TestNewDiagRecordMatchesEventRecord: the trace-side constructor and the
// artifact-side parser must produce identical records for the same snapshot,
// or GET /jobs/{id}/diagnostics and report -json would disagree.
func TestNewDiagRecordMatchesEventRecord(t *testing.T) {
	d := opt.Diagnostics{
		LengthScale: 0.2, NoiseFrac: 1e-2, SignalVar: 2.5, LogMarginal: -7.5,
		Observations: 11, JitterLevel: 1, Condition: 3e6, LOORMSE: 0.2,
		LOOMaxZ: 2.2, Coverage1: 0.6, Coverage2: 0.9, Candidates: 512,
		ChosenEI: 0.33, PoolMeanEI: 0.05, ExploitEI: 0.25, ExploreEI: 0.08,
	}
	fromTrace := NewDiagRecord(7, d)
	ev := telemetry.Event{Type: telemetry.TypeSearchDiagnostics, Iter: 7, Attrs: map[string]float64{
		telemetry.DiagLengthScale: d.LengthScale, telemetry.DiagNoiseFrac: d.NoiseFrac,
		telemetry.DiagSignalVar: d.SignalVar, telemetry.DiagLogMarginal: d.LogMarginal,
		telemetry.DiagObservations: float64(d.Observations), telemetry.DiagJitterLevel: float64(d.JitterLevel),
		telemetry.DiagCondition: d.Condition, telemetry.DiagLOORMSE: d.LOORMSE,
		telemetry.DiagLOOMaxZ: d.LOOMaxZ, telemetry.DiagCoverage1: d.Coverage1,
		telemetry.DiagCoverage2: d.Coverage2, telemetry.DiagCandidates: float64(d.Candidates),
		telemetry.DiagChosenEI: d.ChosenEI, telemetry.DiagPoolMeanEI: d.PoolMeanEI,
		telemetry.DiagExploitEI: d.ExploitEI, telemetry.DiagExploreEI: d.ExploreEI,
	}}
	if fromEvent := diagRecord(ev); fromTrace != fromEvent {
		t.Fatalf("constructors disagree:\ntrace %+v\nevent %+v", fromTrace, fromEvent)
	}
}

// TestLoadRunUnknownEventRoundTrip: artifacts carrying event types this build
// does not know survive a parse + re-encode byte-identically — forward
// compatibility for artifacts produced by newer coordinators — and LoadRun
// neither fails on them nor miscounts them as malformed.
func TestLoadRunUnknownEventRoundTrip(t *testing.T) {
	events := []telemetry.Event{
		{Type: telemetry.TypeLog, Job: "job-9", Msg: "header"},
		{Type: "future.frobnicate", Job: "job-9", Iter: 3, Msg: "novel",
			Attrs: map[string]float64{"zeta": 1.5, "alpha": -2}},
		{Type: telemetry.TypeEval, Job: "job-9", Iter: 0, Params: []float64{0.5},
			Attrs: map[string]float64{telemetry.AttrError: 0.4, telemetry.AttrBestError: 0.4}},
		{Type: "another.unknown", Job: "job-9", TimeNS: 12345},
	}
	var a bytes.Buffer
	if err := telemetry.WriteJSONL(&a, events); err != nil {
		t.Fatal(err)
	}

	run, err := LoadRun(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if run.Malformed != 0 {
		t.Fatalf("unknown event types counted as malformed: %d", run.Malformed)
	}
	if len(run.Evals) != 1 || run.Header != "header" {
		t.Fatalf("known events not parsed around unknown ones: evals=%d header=%q",
			len(run.Evals), run.Header)
	}

	// Decode every line back into the Event schema and re-encode: the bytes
	// must match, so passing an artifact through a parse/re-ship hop (corpus
	// storage, report services) cannot corrupt events it doesn't understand.
	var decoded []telemetry.Event
	sc := bufio.NewScanner(bytes.NewReader(a.Bytes()))
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("decoding %q: %v", sc.Text(), err)
		}
		decoded = append(decoded, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := telemetry.WriteJSONL(&b, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("round trip not byte-identical:\na: %s\nb: %s", a.String(), b.String())
	}
}
