package inspect

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testReport(t *testing.T) *Report {
	t.Helper()
	run := loadTestRun(t, testArtifact())
	target, best := testProfilePair()
	doc := &ProfilesDoc{Job: "job-1", Target: target, Best: best}
	return NewReport(run, doc, ReportOptions{})
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/inspect -update` to create goldens)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (re-run with -update if intended)\n--- got ---\n%s", name, got)
	}
}

// TestRenderTextGolden locks the terminal report byte for byte.
func TestRenderTextGolden(t *testing.T) {
	r := testReport(t)
	var a, b bytes.Buffer
	if err := r.RenderText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.RenderText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("RenderText is not deterministic across invocations")
	}
	checkGolden(t, "report.txt", a.Bytes())
}

// TestRenderHTMLGolden locks the HTML report byte for byte and checks the
// self-containment and content requirements.
func TestRenderHTMLGolden(t *testing.T) {
	r := testReport(t)
	var a, b bytes.Buffer
	if err := r.RenderHTML(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.RenderHTML(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("RenderHTML is not deterministic across invocations")
	}
	html := a.String()
	for _, want := range []string{
		"<svg",                    // inline plots
		"Error attribution",       // ranked table
		"cpu_util",                // per-metric overlays
		"class=\"target\"",        // target series
		"class=\"best\"",          // best series
		"P(X ≤ x)",                // eCDF axis
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	for _, banned := range []string{"<script", "http://", "https://", "src="} {
		if strings.Contains(html, banned) {
			t.Errorf("HTML report must be self-contained; found %q", banned)
		}
	}
	checkGolden(t, "report.html", a.Bytes())
}

// TestReportWithoutProfiles: the renderer degrades to artifact totals when
// no profile pair is available.
func TestReportWithoutProfiles(t *testing.T) {
	run := loadTestRun(t, testArtifact())
	r := NewReport(run, nil, ReportOptions{Title: "fallback"})
	if len(r.Attribution) != 2 {
		t.Fatalf("attribution %+v", r.Attribution)
	}
	if r.Attribution[0].Component != "cpu_util" || len(r.Attribution[0].Bands) != 0 {
		t.Errorf("fallback attribution %+v", r.Attribution[0])
	}
	var text, html bytes.Buffer
	if err := r.RenderText(&text); err != nil {
		t.Fatal(err)
	}
	if err := r.RenderHTML(&html); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "no profile pair available") {
		t.Errorf("terminal fallback note missing:\n%s", text.String())
	}
	if !strings.Contains(html.String(), "cpu_util") {
		t.Error("HTML fallback should still list components")
	}
}

// TestProfilesDocRoundTrip checks encode/decode stability.
func TestProfilesDocRoundTrip(t *testing.T) {
	target, best := testProfilePair()
	doc := &ProfilesDoc{Job: "j", Components: map[string]float64{"cpu_util": 0.2}, Target: target, Best: best}
	data, err := doc.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProfilesDoc(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Complete() || back.Job != "j" || back.Components["cpu_util"] != 0.2 {
		t.Errorf("round trip lost data: %+v", back)
	}
	var nilDoc *ProfilesDoc
	if nilDoc.Complete() {
		t.Error("nil doc must not be complete")
	}
}
