package inspect

import (
	"strings"
	"testing"
	"time"

	"datamime/internal/corpus"
)

func scoreboardFixture() []ScoreboardRun {
	t0 := time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC)
	return []ScoreboardRun{
		{
			Record: corpus.Record{
				ID: "job-1", Scenario: "abc123", Target: "memcached",
				Seed: 42, Backend: "process", BestError: 0.31, Evals: 12,
				WallSeconds: 4.2, Verdict: corpus.VerdictBaseline,
				FinishedAt: t0,
			},
			Trajectory: []float64{0.9, 0.5, 0.31},
		},
		{
			Record: corpus.Record{
				ID: "job-2", Scenario: "abc123", Target: "memcached",
				Seed: 42, Backend: "process", BestError: 0.44, Evals: 12,
				WallSeconds: 4.8, Verdict: corpus.VerdictRegressed,
				FinishedAt: t0.Add(time.Hour),
			},
			Trajectory: []float64{0.9, 0.7, 0.44},
		},
	}
}

func TestRenderScoreboard(t *testing.T) {
	var b strings.Builder
	if err := RenderScoreboard(&b, "nightly", scoreboardFixture()); err != nil {
		t.Fatal(err)
	}
	html := b.String()

	for _, want := range []string{
		"<!doctype html>",
		"datamime corpus scoreboard — nightly",
		"2 runs, 1 scenarios",
		"<td>job-1</td>",
		"<td>job-2</td>",
		`<td class="warn">regressed</td>`,
		"Scenario abc123",
		"Cross-run convergence",
		"Best error across runs",
		"Duration across runs",
		"2026-08-01T10:00:00Z",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("scoreboard missing %q:\n%s", want, html)
		}
	}
	// One overlay step path per run with a trajectory.
	if n := strings.Count(html, `stroke:#2a78d6;stroke-width:1.6" d="M`); n < 1 {
		t.Fatalf("no overlay path for first run (count %d)", n)
	}
	if !strings.Contains(html, "stroke:#d6722a") {
		t.Fatal("second run's overlay color missing")
	}
	// No scripts, no external fetches: the scoreboard must stay
	// self-contained.
	for _, banned := range []string{"<script", "http://", "https://"} {
		if strings.Contains(html, banned) {
			t.Fatalf("scoreboard is not self-contained: found %q", banned)
		}
	}
}

func TestRenderScoreboardDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := RenderScoreboard(&a, "nightly", scoreboardFixture()); err != nil {
		t.Fatal(err)
	}
	if err := RenderScoreboard(&b, "nightly", scoreboardFixture()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("scoreboard output is not deterministic")
	}
}

func TestRenderScoreboardEmpty(t *testing.T) {
	var b strings.Builder
	if err := RenderScoreboard(&b, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0 runs, 0 scenarios") {
		t.Fatalf("empty scoreboard unexpected:\n%s", b.String())
	}
}
