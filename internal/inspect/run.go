package inspect

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"datamime/internal/telemetry"
)

// EvalRecord is one search iteration reconstructed from a run artifact's
// eval event.
type EvalRecord struct {
	Iter      int
	Skipped   bool
	CacheHit  bool
	Retried   bool
	Replayed  bool
	Error     float64
	BestError float64
	Params    []float64
	// Components is the per-metric EMD attribution ("emd_*" attrs, prefix
	// stripped).
	Components map[string]float64
	// PhaseNS maps phase names to wall-clock nanoseconds ("phase_*_ns"
	// attrs, affixes stripped).
	PhaseNS map[string]int64
	// Note carries the event's message (the skip reason, usually).
	Note string
}

// PhaseStat aggregates the span events of one pipeline phase.
type PhaseStat struct {
	Count   int
	TotalNS int64
}

// SpanRecord is one timed span event retained for timeline analysis. Spans
// without a wall-clock stamp (synthesized artifacts of disk-restored jobs)
// are aggregated into Phases but not retained here.
type SpanRecord struct {
	Phase   string
	Iter    int
	StartNS int64 // wall-clock start (TimeNS − DurNS)
	EndNS   int64 // wall-clock end (TimeNS)
	Attrs   map[string]float64
}

// Run is a parsed JSONL run artifact: the evaluation history plus
// aggregated phase timings. It is the unit the diff engine compares and the
// report renderer consumes.
type Run struct {
	// Job is the job ID stamped on the artifact's events ("" for artifacts
	// written outside datamimed).
	Job string
	// Header is the artifact's first log line, when present.
	Header string
	// Evals holds one record per eval event, in stream order.
	Evals []EvalRecord
	// Phases aggregates span events by phase name.
	Phases map[string]PhaseStat
	// Spans counts span events consumed.
	Spans int
	// SpanLog holds the timed spans in stream order, feeding NewTimeline's
	// worker-occupancy and parallel-efficiency analysis.
	SpanLog []SpanRecord
	// UnstampedSpans counts span events without a wall-clock stamp
	// (synthesized artifacts of disk-restored jobs). They still aggregate
	// into Phases, but carry no position on any timeline — a nonzero count
	// explains a sparse or empty occupancy analysis.
	UnstampedSpans int
	// Diagnostics holds the GP search-health snapshots (search.diagnostics
	// events) in stream order, feeding the "Search health" report section.
	Diagnostics []DiagRecord
	// Malformed counts skipped lines that did not parse as events (e.g. a
	// line truncated by a dying writer).
	Malformed int
}

// LoadRun parses a JSONL run artifact. Malformed lines are skipped and
// counted (Run.Malformed) rather than failing the load, matching
// telemetry.ReplayBestTrace's tolerance for mid-write truncation; only I/O
// errors and structurally broken eval events (valid JSON missing the
// best_error attribute) are fatal.
func LoadRun(r io.Reader) (*Run, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	run := &Run{Phases: make(map[string]PhaseStat)}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			run.Malformed++
			continue
		}
		if run.Job == "" && ev.Job != "" {
			run.Job = ev.Job
		}
		switch ev.Type {
		case telemetry.TypeLog:
			if run.Header == "" && ev.Msg != "" {
				run.Header = ev.Msg
			}
		case telemetry.TypeSpan:
			st := run.Phases[ev.Phase]
			st.Count++
			st.TotalNS += ev.DurNS
			run.Phases[ev.Phase] = st
			run.Spans++
			if ev.TimeNS > 0 {
				run.SpanLog = append(run.SpanLog, SpanRecord{
					Phase:   ev.Phase,
					Iter:    ev.Iter,
					StartNS: ev.TimeNS - ev.DurNS,
					EndNS:   ev.TimeNS,
					Attrs:   ev.Attrs,
				})
			} else {
				run.UnstampedSpans++
			}
		case telemetry.TypeEval:
			rec, err := evalRecord(ev)
			if err != nil {
				return nil, fmt.Errorf("inspect: artifact line %d: %w", line, err)
			}
			run.Evals = append(run.Evals, rec)
		case telemetry.TypeSearchDiagnostics:
			run.Diagnostics = append(run.Diagnostics, diagRecord(ev))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("inspect: reading artifact: %w", err)
	}
	return run, nil
}

// LoadRunFile parses the artifact at path.
func LoadRunFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("inspect: %w", err)
	}
	defer f.Close()
	run, err := LoadRun(f)
	if err != nil {
		return nil, fmt.Errorf("inspect: %s: %w", path, err)
	}
	return run, nil
}

// evalRecord converts one eval event, splitting the attribute conventions
// (emd_*, phase_*_ns, 0/1 flags) back into typed fields.
func evalRecord(ev telemetry.Event) (EvalRecord, error) {
	rec := EvalRecord{
		Iter:    ev.Iter,
		Skipped: ev.Skipped,
		Params:  ev.Params,
		Note:    ev.Msg,
	}
	if !ev.Skipped {
		best, ok := ev.Attrs[telemetry.AttrBestError]
		if !ok {
			return rec, fmt.Errorf("eval event without %s", telemetry.AttrBestError)
		}
		rec.BestError = best
		rec.Error = ev.Attrs[telemetry.AttrError]
	}
	rec.CacheHit = ev.Attrs[telemetry.AttrCacheHit] != 0
	rec.Retried = ev.Attrs[telemetry.AttrRetried] != 0
	rec.Replayed = ev.Attrs[telemetry.AttrReplayed] != 0
	for k, v := range ev.Attrs {
		switch {
		case strings.HasPrefix(k, telemetry.EMDPrefix):
			if rec.Components == nil {
				rec.Components = make(map[string]float64)
			}
			rec.Components[strings.TrimPrefix(k, telemetry.EMDPrefix)] = v
		case strings.HasPrefix(k, telemetry.PhaseNSPrefix) && strings.HasSuffix(k, "_ns"):
			if rec.PhaseNS == nil {
				rec.PhaseNS = make(map[string]int64)
			}
			name := strings.TrimSuffix(strings.TrimPrefix(k, telemetry.PhaseNSPrefix), "_ns")
			rec.PhaseNS[name] = int64(v)
		}
	}
	return rec, nil
}

// BestTrace returns the best-error-so-far series over the non-skipped
// evals, in stream order — the Fig. 10 convergence curve.
func (r *Run) BestTrace() []float64 {
	var out []float64
	for _, rec := range r.Evals {
		if !rec.Skipped {
			out = append(out, rec.BestError)
		}
	}
	return out
}

// Best returns the run's best evaluation: the earliest non-skipped record
// with the minimum error. ok is false when the run has no evaluations.
func (r *Run) Best() (rec EvalRecord, ok bool) {
	for _, e := range r.Evals {
		if e.Skipped {
			continue
		}
		if !ok || e.Error < rec.Error {
			rec, ok = e, true
		}
	}
	return rec, ok
}

// Counts summarizes the evaluation history.
type Counts struct {
	Evals     int // non-skipped evaluations
	Skipped   int
	CacheHits int
	// Misses counts non-skipped evaluations that simulated a fresh profile
	// (CacheHits + Misses = Evals).
	Misses   int
	Retried  int
	Replayed int
}

// Counts tallies the run's evaluation records.
func (r *Run) Counts() Counts {
	var c Counts
	for _, e := range r.Evals {
		if e.Skipped {
			c.Skipped++
		} else {
			c.Evals++
			if e.CacheHit {
				c.CacheHits++
			} else {
				c.Misses++
			}
		}
		if e.Retried {
			c.Retried++
		}
		if e.Replayed {
			c.Replayed++
		}
	}
	return c
}

// FinalComponents returns the per-metric attribution of the best
// evaluation, or nil when the run carries none.
func (r *Run) FinalComponents() map[string]float64 {
	best, ok := r.Best()
	if !ok {
		return nil
	}
	return best.Components
}
