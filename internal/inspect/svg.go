package inspect

// Deterministic inline-SVG plotting primitives for the HTML report: fixed
// viewport geometry, tick selection, and path building. Coordinates are
// formatted with a fixed precision so identical inputs render identical
// bytes.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// plotGeom is the fixed geometry of one SVG plot.
type plotGeom struct {
	W, H                             float64 // total viewport
	MarginL, MarginR, MarginT, MarginB float64
}

func defaultGeom(w, h float64) plotGeom {
	return plotGeom{W: w, H: h, MarginL: 56, MarginR: 14, MarginT: 12, MarginB: 30}
}

func (g plotGeom) innerW() float64 { return g.W - g.MarginL - g.MarginR }
func (g plotGeom) innerH() float64 { return g.H - g.MarginT - g.MarginB }

// axisRange maps data values onto the plot rectangle.
type axisRange struct{ Lo, Hi float64 }

// pad widens a degenerate range so a flat series still renders mid-plot.
func (r axisRange) pad() axisRange {
	if r.Hi > r.Lo {
		return r
	}
	span := math.Abs(r.Lo)
	if span == 0 {
		span = 1
	}
	return axisRange{Lo: r.Lo - span/2, Hi: r.Lo + span/2}
}

// rangeOf returns the [min, max] range of all values across the series.
func rangeOf(series ...[]float64) axisRange {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo > hi {
		return axisRange{0, 1}
	}
	return axisRange{lo, hi}
}

// coord formats an SVG coordinate with fixed precision.
func coord(v float64) string {
	// Avoid "-0.00" so identical geometry always prints identically.
	s := strconv.FormatFloat(v, 'f', 2, 64)
	if s == "-0.00" {
		return "0.00"
	}
	return s
}

// tickLabel formats an axis tick value compactly.
func tickLabel(v float64) string {
	a := math.Abs(v)
	if a >= 10000 || (a < 0.001 && a > 0) {
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// niceTicks picks ~n human-friendly tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 || !(hi > lo) {
		return []float64{lo, hi}
	}
	rawStep := (hi - lo) / float64(n-1)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch norm := rawStep / mag; {
	case norm <= 1:
		step = mag
	case norm <= 2:
		step = 2 * mag
	case norm <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	first := math.Ceil(lo/step) * step
	var ticks []float64
	for v := first; v <= hi+step*1e-9; v += step {
		// Snap near-zero accumulation error so labels stay clean.
		if math.Abs(v) < step*1e-9 {
			v = 0
		}
		ticks = append(ticks, v)
	}
	if len(ticks) < 2 {
		return []float64{lo, hi}
	}
	return ticks
}

// xy maps a data point into viewport coordinates.
func (g plotGeom) xy(xr, yr axisRange, x, y float64) (float64, float64) {
	px := g.MarginL + (x-xr.Lo)/(xr.Hi-xr.Lo)*g.innerW()
	py := g.MarginT + (1-(y-yr.Lo)/(yr.Hi-yr.Lo))*g.innerH()
	return px, py
}

// linePath builds an SVG path through the points in order.
func (g plotGeom) linePath(xr, yr axisRange, xs, ys []float64) string {
	var b strings.Builder
	for i := range xs {
		px, py := g.xy(xr, yr, xs[i], ys[i])
		if i == 0 {
			b.WriteString("M")
		} else {
			b.WriteString(" L")
		}
		b.WriteString(coord(px))
		b.WriteString(",")
		b.WriteString(coord(py))
	}
	return b.String()
}

// stepPath builds a right-continuous step path (the shape of an eCDF or a
// best-error-so-far series): horizontal to the next x, then vertical.
func (g plotGeom) stepPath(xr, yr axisRange, xs, ys []float64) string {
	var b strings.Builder
	for i := range xs {
		px, py := g.xy(xr, yr, xs[i], ys[i])
		if i == 0 {
			fmt.Fprintf(&b, "M%s,%s", coord(px), coord(py))
			continue
		}
		_, prevY := g.xy(xr, yr, xs[i-1], ys[i-1])
		fmt.Fprintf(&b, " L%s,%s L%s,%s", coord(px), coord(prevY), coord(px), coord(py))
	}
	return b.String()
}

// writeAxes renders the plot frame: recessive horizontal grid lines, tick
// labels on both axes, and axis titles.
func (g plotGeom) writeAxes(b *strings.Builder, xr, yr axisRange, xLabel, yLabel string) {
	xt := niceTicks(xr.Lo, xr.Hi, 5)
	yt := niceTicks(yr.Lo, yr.Hi, 5)
	for _, v := range yt {
		_, py := g.xy(xr, yr, xr.Lo, v)
		fmt.Fprintf(b, `<line class="grid" x1="%s" y1="%s" x2="%s" y2="%s"/>`,
			coord(g.MarginL), coord(py), coord(g.W-g.MarginR), coord(py))
		fmt.Fprintf(b, `<text class="tick" x="%s" y="%s" text-anchor="end">%s</text>`,
			coord(g.MarginL-6), coord(py+3.5), tickLabel(v))
	}
	for _, v := range xt {
		px, _ := g.xy(xr, yr, v, yr.Lo)
		fmt.Fprintf(b, `<text class="tick" x="%s" y="%s" text-anchor="middle">%s</text>`,
			coord(px), coord(g.H-g.MarginB+16), tickLabel(v))
	}
	fmt.Fprintf(b, `<line class="axis" x1="%s" y1="%s" x2="%s" y2="%s"/>`,
		coord(g.MarginL), coord(g.H-g.MarginB), coord(g.W-g.MarginR), coord(g.H-g.MarginB))
	if xLabel != "" {
		fmt.Fprintf(b, `<text class="label" x="%s" y="%s" text-anchor="middle">%s</text>`,
			coord(g.MarginL+g.innerW()/2), coord(g.H-4), htmlEscape(xLabel))
	}
	if yLabel != "" {
		fmt.Fprintf(b, `<text class="label" x="%s" y="%s" text-anchor="middle" transform="rotate(-90 %s %s)">%s</text>`,
			coord(12), coord(g.MarginT+g.innerH()/2), coord(12), coord(g.MarginT+g.innerH()/2), htmlEscape(yLabel))
	}
}

// openSVG emits the <svg> element with the plot's viewport.
func (g plotGeom) openSVG(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg viewBox="0 0 %s %s" width="%s" height="%s" role="img" aria-label=%q>`,
		coord(g.W), coord(g.H), coord(g.W), coord(g.H), title)
}
