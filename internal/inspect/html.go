package inspect

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"datamime/internal/profile"
)

// The report's palette: categorical slot 1 (target) and slot 2 (best) of a
// CVD-validated default palette, a sequential blue ramp for band heat, and
// recessive grid/text tokens. Dark values are the same hues re-stepped for
// the dark surface.
const htmlStyle = `:root{color-scheme:light dark}
body{margin:24px auto;max-width:980px;padding:0 16px;background:#fcfcfb;color:#0b0b0b;
font:14px/1.45 system-ui,-apple-system,"Segoe UI",sans-serif}
h1{font-size:20px;margin:0 0 2px}h2{font-size:15px;margin:28px 0 8px}
.sub{color:#52514e;margin:0 0 18px}
table{border-collapse:collapse;width:100%;margin:6px 0}
th{text-align:left;color:#52514e;font-weight:600;font-size:12px}
th,td{padding:4px 10px 4px 0;border-bottom:1px solid #e7e6e1;vertical-align:middle}
td.num,th.num{text-align:right;font-variant-numeric:tabular-nums}
.bandstrip{display:flex;height:12px;width:220px;border-radius:3px;overflow:hidden;background:#efeeea}
.bandstrip span{display:block;height:100%;border-right:2px solid #fcfcfb}
.bandstrip span:last-child{border-right:none}
svg{display:block;margin:4px 0 14px}
svg .grid{stroke:#e7e6e1;stroke-width:1}
svg .axis{stroke:#c9c8c2;stroke-width:1}
svg .tick{fill:#52514e;font:11px system-ui,sans-serif}
svg .label{fill:#52514e;font:12px system-ui,sans-serif}
svg .target{stroke:#2a78d6;fill:none;stroke-width:2}
svg .best{stroke:#eb6834;fill:none;stroke-width:2}
svg .evalpt{fill:#b9b8b1}
.legend{display:flex;gap:18px;margin:2px 0 6px;color:#52514e;font-size:12px}
.legend i{display:inline-block;width:14px;height:3px;border-radius:2px;vertical-align:middle;margin-right:5px}
.legend .t i{background:#2a78d6}.legend .b i{background:#eb6834}.legend .e i{background:#b9b8b1;height:7px;width:7px;border-radius:50%}
.grid2{display:grid;grid-template-columns:repeat(auto-fill,minmax(420px,1fr));gap:0 24px}
.warn{color:#9a3c12}
@media (prefers-color-scheme:dark){
body{background:#1a1a19;color:#fff}
.sub,th,svg .tick,svg .label,.legend{color:#c3c2b7}
th,td{border-bottom-color:#33332f}
.bandstrip{background:#262622}.bandstrip span{border-right-color:#1a1a19}
svg .grid{stroke:#33332f}svg .axis{stroke:#4a4a45}
svg .tick,svg .label{fill:#c3c2b7}
svg .target{stroke:#3987e5}svg .best{stroke:#d95926}
.legend .t i{background:#3987e5}.legend .b i{background:#d95926}
}`

// bandRamp is the sequential blue ramp shading attribution bands, light to
// dark (band index maps onto it by position).
var bandRamp = []string{"#dbe7f7", "#b3cdee", "#84ade2", "#5a8ed9", "#2a78d6", "#1c5aa8"}

func htmlEscape(s string) string { return html.EscapeString(s) }

// RenderHTML writes the self-contained single-file HTML report: summary,
// inline-SVG convergence plot, ranked quantile-band attribution table, and
// per-metric target-vs-best eCDF overlays. No external assets, no scripts,
// no clocks — the output is a pure function of the report.
func (r *Report) RenderHTML(w io.Writer) error {
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s — datamime report</title>\n", htmlEscape(r.Title))
	b.WriteString("<style>" + htmlStyle + "</style>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>datamime run report — %s</h1>\n", htmlEscape(r.Title))
	if r.Run.Header != "" {
		fmt.Fprintf(&b, "<p class=\"sub\">%s</p>\n", htmlEscape(r.Run.Header))
	}
	if r.Run.Malformed > 0 {
		fmt.Fprintf(&b, "<p class=\"warn\">warning: %d malformed artifact line(s) skipped</p>\n", r.Run.Malformed)
	}
	r.writeSummaryHTML(&b)
	r.writeConvergenceHTML(&b)
	r.writeSearchHealthHTML(&b)
	r.writeAttributionHTML(&b)
	r.writeOverlaysHTML(&b)
	r.writePhasesHTML(&b)
	r.writeTimelineHTML(&b)
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSummaryHTML renders the run-summary table.
func (r *Report) writeSummaryHTML(b *strings.Builder) {
	run := r.Run
	c := run.Counts()
	b.WriteString("<h2>Run summary</h2>\n<table>\n<tbody>\n")
	row := func(k, v string) {
		fmt.Fprintf(b, "<tr><th>%s</th><td>%s</td></tr>\n", htmlEscape(k), htmlEscape(v))
	}
	if run.Job != "" {
		row("Job", run.Job)
	}
	row("Iterations", fmt.Sprintf("%d (evals %d, skipped %d, retried %d, replayed %d)",
		len(run.Evals), c.Evals, c.Skipped, c.Retried, c.Replayed))
	row("Eval cache", fmt.Sprintf("%d hits, %d misses%s", c.CacheHits, c.Misses, hitRateSuffix(c)))
	if best, ok := run.Best(); ok {
		row("Best error", fmt.Sprintf("%s at iteration %d", fnum(best.Error), best.Iter))
		if len(best.Params) > 0 {
			vals := make([]string, len(best.Params))
			for i, p := range best.Params {
				vals[i] = fnum(p)
			}
			row("Best params", "["+strings.Join(vals, " ")+"]")
		}
	}
	if r.Profiles.Complete() {
		row("Profiles", fmt.Sprintf("target %s vs best candidate, machine %s",
			r.Profiles.Target.Benchmark, r.Profiles.Target.Machine))
	}
	b.WriteString("</tbody>\n</table>\n")
}

// writeConvergenceHTML renders the Fig. 10-style convergence plot: one gray
// dot per evaluation's error plus the running-minimum step line.
func (r *Report) writeConvergenceHTML(b *strings.Builder) {
	var iters, errs, bestIters, bests []float64
	for _, rec := range r.Run.Evals {
		if rec.Skipped {
			continue
		}
		iters = append(iters, float64(rec.Iter))
		errs = append(errs, rec.Error)
		bestIters = append(bestIters, float64(rec.Iter))
		bests = append(bests, rec.BestError)
	}
	if len(iters) == 0 {
		return
	}
	b.WriteString("<h2>Convergence</h2>\n")
	b.WriteString(`<div class="legend"><span class="e"><i></i>evaluation error</span><span class="t"><i></i>best error so far</span></div>` + "\n")
	g := defaultGeom(920, 260)
	xr := rangeOf(iters).pad()
	yr := rangeOf(errs, bests).pad()
	g.openSVG(b, "convergence of the search: per-evaluation error and running minimum")
	g.writeAxes(b, xr, yr, "iteration", "error")
	for i := range iters {
		px, py := g.xy(xr, yr, iters[i], errs[i])
		fmt.Fprintf(b, `<circle class="evalpt" cx="%s" cy="%s" r="2.5"><title>iter %d: %s</title></circle>`,
			coord(px), coord(py), int(iters[i]), fnum(errs[i]))
	}
	fmt.Fprintf(b, `<path class="target" d="%s"/>`, g.stepPath(xr, yr, bestIters, bests))
	b.WriteString("</svg>\n")
}

// writeAttributionHTML renders the ranked error-attribution table with a
// per-band heat strip for each component.
func (r *Report) writeAttributionHTML(b *strings.Builder) {
	if len(r.Attribution) == 0 {
		return
	}
	total := r.totalAttribution()
	b.WriteString("<h2>Error attribution</h2>\n")
	fmt.Fprintf(b, "<p class=\"sub\">Summed component distance %s. Bands decompose each metric's EMD by quantile region (curves by point); darker means more of that metric's error.</p>\n", fnum(total))
	b.WriteString("<table>\n<thead><tr><th>#</th><th>component</th><th>kind</th><th class=\"num\">distance</th><th class=\"num\">of total</th><th>band decomposition</th><th>dominant region</th></tr></thead>\n<tbody>\n")
	for i, a := range r.Attribution {
		share := 0.0
		if total > 0 {
			share = a.Distance / total
		}
		dominant := "—"
		strip := ""
		if di := a.DominantBand(); di >= 0 && a.Distance > 0 {
			db := a.Bands[di]
			dominant = fmt.Sprintf("%s (%s)", bandLabel(a.Kind, di, len(a.Bands), db), fpct(db.Share))
			strip = bandStrip(a)
		}
		fmt.Fprintf(b, "<tr><td class=\"num\">%d</td><td>%s</td><td>%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td>%s</td><td>%s</td></tr>\n",
			i+1, htmlEscape(a.Component), a.Kind, fnum(a.Distance), fpct(share), strip, htmlEscape(dominant))
	}
	b.WriteString("</tbody>\n</table>\n")
}

// bandStrip renders one component's bands as a proportional heat strip.
func bandStrip(a Attribution) string {
	var b strings.Builder
	b.WriteString(`<div class="bandstrip">`)
	for i, band := range a.Bands {
		shade := bandRamp[i*len(bandRamp)/maxInt(len(a.Bands), 1)]
		fmt.Fprintf(&b, `<span style="width:%.1f%%;background:%s" title="%s: %s"></span>`,
			band.Share*100, shade, bandLabel(a.Kind, i, len(a.Bands), band), fpct(band.Share))
	}
	b.WriteString("</div>")
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// writeOverlaysHTML renders one target-vs-best plot per component: eCDF
// overlays for the scalar metrics, allocation sweeps for the two curves.
func (r *Report) writeOverlaysHTML(b *strings.Builder) {
	if !r.Profiles.Complete() {
		return
	}
	target, best := r.Profiles.Target, r.Profiles.Best
	b.WriteString("<h2>Target vs. best profiles</h2>\n")
	b.WriteString(`<div class="legend"><span class="t"><i></i>target</span><span class="b"><i></i>best candidate</span></div>` + "\n")
	b.WriteString(`<div class="grid2">` + "\n")
	for _, a := range r.Attribution {
		if a.Kind == KindCurve {
			r.writeCurveOverlay(b, a.Component, target, best)
		} else {
			r.writeECDFOverlay(b, a.Component, target, best)
		}
	}
	b.WriteString("</div>\n")
}

// writeECDFOverlay renders one metric's target and best eCDFs.
func (r *Report) writeECDFOverlay(b *strings.Builder, comp string, target, best *profile.Profile) {
	id := profile.MetricID(comp)
	txs, tys := target.ECDF(id).Points()
	bxs, bys := best.ECDF(id).Points()
	if len(txs) == 0 && len(bxs) == 0 {
		return
	}
	fmt.Fprintf(b, "<div><h2>%s</h2>\n", htmlEscape(comp))
	g := defaultGeom(440, 200)
	xr := rangeOf(txs, bxs).pad()
	yr := axisRange{0, 1}
	g.openSVG(b, fmt.Sprintf("eCDF overlay of %s: target vs best candidate", comp))
	g.writeAxes(b, xr, yr, comp, "P(X ≤ x)")
	fmt.Fprintf(b, `<path class="target" d="%s"/>`, g.stepPath(xr, yr, txs, tys))
	fmt.Fprintf(b, `<path class="best" d="%s"/>`, g.stepPath(xr, yr, bxs, bys))
	b.WriteString("</svg>\n</div>\n")
}

// writeCurveOverlay renders one cache-sensitivity curve pair over the LLC
// way allocations.
func (r *Report) writeCurveOverlay(b *strings.Builder, comp string, target, best *profile.Profile) {
	var tvs, bvs []float64
	if comp == "ipc_curve" {
		tvs, bvs = target.IPCCurve(), best.IPCCurve()
	} else {
		tvs, bvs = target.LLCCurve(), best.LLCCurve()
	}
	if len(tvs) == 0 && len(bvs) == 0 {
		return
	}
	ways := func(p *profile.Profile, n int) []float64 {
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			if i < len(p.Curve) {
				out[i] = float64(p.Curve[i].Ways)
			} else {
				out[i] = float64(i + 1)
			}
		}
		return out
	}
	tws, bws := ways(target, len(tvs)), ways(best, len(bvs))
	fmt.Fprintf(b, "<div><h2>%s</h2>\n", htmlEscape(comp))
	g := defaultGeom(440, 200)
	xr := rangeOf(tws, bws).pad()
	yr := rangeOf(tvs, bvs).pad()
	g.openSVG(b, fmt.Sprintf("cache-sensitivity overlay of %s: target vs best candidate", comp))
	g.writeAxes(b, xr, yr, "LLC ways", comp)
	fmt.Fprintf(b, `<path class="target" d="%s"/>`, g.linePath(xr, yr, tws, tvs))
	fmt.Fprintf(b, `<path class="best" d="%s"/>`, g.linePath(xr, yr, bws, bvs))
	for i := range tws {
		px, py := g.xy(xr, yr, tws[i], tvs[i])
		fmt.Fprintf(b, `<circle cx="%s" cy="%s" r="3" fill="#2a78d6"/>`, coord(px), coord(py))
	}
	for i := range bws {
		px, py := g.xy(xr, yr, bws[i], bvs[i])
		fmt.Fprintf(b, `<circle cx="%s" cy="%s" r="3" fill="#eb6834"/>`, coord(px), coord(py))
	}
	b.WriteString("</svg>\n</div>\n")
}

// writePhasesHTML renders the aggregated span timings.
func (r *Report) writePhasesHTML(b *strings.Builder) {
	if len(r.Run.Phases) == 0 {
		return
	}
	names := make([]string, 0, len(r.Run.Phases))
	for k := range r.Run.Phases {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Fprintf(b, "<h2>Phase timings</h2>\n<p class=\"sub\">%d spans recorded in the artifact.</p>\n<table>\n", r.Run.Spans)
	b.WriteString("<thead><tr><th>phase</th><th class=\"num\">count</th><th class=\"num\">total</th><th class=\"num\">mean</th></tr></thead>\n<tbody>\n")
	for _, name := range names {
		st := r.Run.Phases[name]
		mean := int64(0)
		if st.Count > 0 {
			mean = st.TotalNS / int64(st.Count)
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td class=\"num\">%s</td></tr>\n",
			htmlEscape(name), st.Count, fms(st.TotalNS), fms(mean))
	}
	b.WriteString("</tbody>\n</table>\n")
}

// writeTimelineHTML renders the profiler utilization section: per-worker
// occupancy bars (reusing the band-strip styling) and the pool's overlap
// summary. Omitted when the artifact carries no timed simulation spans.
func (r *Report) writeTimelineHTML(b *strings.Builder) {
	tl := NewTimeline(r.Run)
	if len(tl.Workers) == 0 && len(tl.Fleet) == 0 {
		return
	}
	if len(tl.Workers) > 0 {
		b.WriteString("<h2>Profiler utilization</h2>\n")
		fmt.Fprintf(b, "<p class=\"sub\">%s simulated across %d workers over %s of wall-clock — speedup %.2f×, parallel efficiency %s, single-worker share %s.</p>\n",
			fms(tl.BusyNS), len(tl.Workers), fms(tl.WallNS), tl.Speedup(), fpct(tl.Efficiency()), fpct(tl.SerialShare()))
		b.WriteString("<table>\n<thead><tr><th>worker</th><th class=\"num\">runs</th><th class=\"num\">busy</th><th class=\"num\">occupancy</th><th>utilization</th></tr></thead>\n<tbody>\n")
		for _, ws := range tl.Workers {
			occ := 0.0
			if tl.WallNS > 0 {
				occ = float64(ws.BusyNS) / float64(tl.WallNS)
			}
			strip := fmt.Sprintf(`<div class="bandstrip"><span style="width:%.1f%%;background:%s"></span></div>`,
				occ*100, bandRamp[4])
			fmt.Fprintf(b, "<tr><td>worker %d</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td>%s</td></tr>\n",
				ws.Worker, ws.Runs, fms(ws.BusyNS), fpct(occ), strip)
		}
		b.WriteString("</tbody>\n</table>\n")
		if tl.BudgetWaits > 0 {
			fmt.Fprintf(b, "<p class=\"sub\">Budget-semaphore stalls: %d totaling %s.</p>\n",
				tl.BudgetWaits, fms(tl.BudgetWaitNS))
		}
	}
	r.writeFleetHTML(b, tl)
}

// writeFleetHTML renders the fleet observability section: per-fleet-worker
// simulation occupancy from shipped spans, the fleet-wide occupancy figure,
// and the dispatch-overhead summary. Omitted for runs without fleet spans.
func (r *Report) writeFleetHTML(b *strings.Builder, tl *Timeline) {
	if len(tl.Fleet) == 0 {
		return
	}
	b.WriteString("<h2>Fleet utilization</h2>\n")
	fmt.Fprintf(b, "<p class=\"sub\">%s simulated on %d fleet processes — fleet-wide occupancy %s over %s covered wall, remote share %s.</p>\n",
		fms(tl.FleetBusyNS), len(tl.Fleet), fpct(tl.FleetOccupancy()), fms(tl.FleetWallNS), fpct(tl.RemoteShare()))
	b.WriteString("<table>\n<thead><tr><th>process</th><th class=\"num\">sims</th><th class=\"num\">busy</th><th class=\"num\">lanes</th><th class=\"num\">efficiency</th><th>utilization</th></tr></thead>\n<tbody>\n")
	for _, fs := range tl.Fleet {
		name := fmt.Sprintf("fleet worker %d", fs.Worker)
		if fs.Worker < 0 {
			name = "fleet fallback"
		}
		occ := 0.0
		if tl.FleetWallNS > 0 {
			occ = float64(fs.BusyNS) / float64(tl.FleetWallNS)
		}
		strip := fmt.Sprintf(`<div class="bandstrip"><span style="width:%.1f%%;background:%s"></span></div>`,
			occ*100, bandRamp[2])
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td>%s</td></tr>\n",
			htmlEscape(name), fs.Sims, fms(fs.BusyNS), fs.Lanes, fpct(fs.Efficiency()), strip)
	}
	b.WriteString("</tbody>\n</table>\n")
	var notes []string
	if tl.DispatchOverheadSamples > 0 {
		note := fmt.Sprintf("dispatch overhead %s over %d samples",
			fms(tl.DispatchOverheadNS), tl.DispatchOverheadSamples)
		if tl.DispatchOverheadClamped > 0 {
			note += fmt.Sprintf(" (%d clamped at zero)", tl.DispatchOverheadClamped)
		}
		notes = append(notes, note)
	}
	if tl.CacheProbes > 0 {
		notes = append(notes, fmt.Sprintf("%d worker cache probes (%d hits)", tl.CacheProbes, tl.CacheProbeHits))
	}
	if tl.FleetBudgetWaits > 0 {
		notes = append(notes, fmt.Sprintf("%d remote budget stalls totaling %s", tl.FleetBudgetWaits, fms(tl.FleetBudgetWaitNS)))
	}
	if len(notes) > 0 {
		fmt.Fprintf(b, "<p class=\"sub\">%s.</p>\n", htmlEscape(strings.Join(notes, "; ")))
	}
}
