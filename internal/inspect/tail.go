package inspect

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"datamime/internal/telemetry"
)

// TailStats summarizes one Follow session.
type TailStats struct {
	// Evals, Spans count the frames rendered by kind.
	Evals, Spans int
	// Done reports whether the stream closed with the server's terminal
	// `done` frame (as opposed to a dropped connection).
	Done bool
	// FinalState is the job state carried by the `done` frame.
	FinalState string
}

// Follow connects to a datamimed SSE event stream (GET /jobs/{id}/events)
// and renders each frame as one line on w until the job reaches a terminal
// state, the context is canceled, or the stream drops. It is the engine of
// `datamime-inspect tail`.
func Follow(ctx context.Context, client *http.Client, url string, w io.Writer) (TailStats, error) {
	var st TailStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return st, fmt.Errorf("inspect: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return st, fmt.Errorf("inspect: connecting to %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return st, fmt.Errorf("inspect: %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	err = readSSE(resp.Body, func(event, data string) error {
		line, kind := renderFrame(event, data)
		switch kind {
		case telemetry.TypeEval:
			st.Evals++
		case telemetry.TypeSpan:
			st.Spans++
		case "done":
			st.Done = true
			var d struct {
				State string `json:"state"`
			}
			if json.Unmarshal([]byte(data), &d) == nil {
				st.FinalState = d.State
			}
		}
		if line != "" {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
		if st.Done {
			return errTailDone
		}
		return nil
	})
	if err == errTailDone {
		err = nil
	}
	if err == nil && !st.Done {
		// The server closed without a done frame (restart, network drop).
		err = fmt.Errorf("inspect: stream ended before job completion")
	}
	if err != nil && ctx.Err() != nil {
		// A user interrupt is a clean exit, not a stream failure.
		err = nil
	}
	return st, err
}

// errTailDone signals readSSE to stop after the terminal frame.
var errTailDone = fmt.Errorf("done")

// readSSE parses text/event-stream frames from r, calling emit for each
// complete frame. It understands the subset datamimed emits: `event:` and
// `data:` fields, frames separated by blank lines.
func readSSE(r io.Reader, emit func(event, data string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var event string
	var data strings.Builder
	flush := func() error {
		if event == "" && data.Len() == 0 {
			return nil
		}
		err := emit(event, data.String())
		event = ""
		data.Reset()
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return sc.Err()
}

// renderFrame turns one SSE frame into a display line and reports the frame
// kind ("" for frames it does not recognize).
func renderFrame(event, data string) (line, kind string) {
	switch event {
	case telemetry.TypeEval:
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return "", ""
		}
		rec, err := evalRecord(ev)
		if err != nil {
			return fmt.Sprintf("iter %4d  (unparseable eval: %v)", ev.Iter, err), telemetry.TypeEval
		}
		if rec.Skipped {
			msg := rec.Note
			if msg == "" {
				msg = "skipped"
			}
			return fmt.Sprintf("iter %4d  skipped: %s", rec.Iter, msg), telemetry.TypeEval
		}
		var flags []string
		if rec.CacheHit {
			flags = append(flags, "cache")
		}
		if rec.Retried {
			flags = append(flags, "retried")
		}
		if rec.Replayed {
			flags = append(flags, "replayed")
		}
		suffix := ""
		if len(flags) > 0 {
			suffix = "  [" + strings.Join(flags, ",") + "]"
		}
		return fmt.Sprintf("iter %4d  error %-12s best %-12s%s",
			rec.Iter, fnum(rec.Error), fnum(rec.BestError), suffix), telemetry.TypeEval
	case telemetry.TypeSpan:
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return "", ""
		}
		return fmt.Sprintf("iter %4d  span %-14s %s", ev.Iter, ev.Phase, fms(ev.DurNS)), telemetry.TypeSpan
	case "done":
		var d struct {
			State string `json:"state"`
		}
		state := "?"
		if json.Unmarshal([]byte(data), &d) == nil && d.State != "" {
			state = d.State
		}
		return fmt.Sprintf("done: job %s", state), "done"
	default:
		return "", ""
	}
}
