package buildinfo

import (
	"strings"
	"testing"
)

func TestReadAlwaysUsable(t *testing.T) {
	info := Read()
	if info.GoVersion == "" {
		t.Fatal("GoVersion empty — Read must degrade gracefully, not blank")
	}
	s := info.String()
	if s == "" || !strings.Contains(s, info.GoVersion) {
		t.Fatalf("String() = %q, want it to carry the go version %q", s, info.GoVersion)
	}
}

func TestVarsMirrorsFields(t *testing.T) {
	info := Info{Version: "v1.2.3", Revision: "abcdef123456", Modified: true, GoVersion: "go1.24.0"}
	vars := info.Vars()
	for k, want := range map[string]interface{}{
		"version": "v1.2.3", "revision": "abcdef123456", "modified": true, "go_version": "go1.24.0",
	} {
		if vars[k] != want {
			t.Fatalf("Vars()[%q] = %v, want %v", k, vars[k], want)
		}
	}
}

func TestStringTruncatesRevision(t *testing.T) {
	info := Info{Version: "(devel)", Revision: "0123456789abcdef0123", GoVersion: "go1.24.0"}
	s := info.String()
	if !strings.Contains(s, "0123456789ab") || strings.Contains(s, "0123456789abc") {
		t.Fatalf("String() = %q, want revision truncated to 12 chars", s)
	}
	if strings.Contains(s, "(modified)") {
		t.Fatalf("String() = %q, unexpected (modified) marker", s)
	}
}
