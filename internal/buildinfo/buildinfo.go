// Package buildinfo exposes the binary's embedded build identity — module
// version, VCS revision, dirty flag, Go toolchain — via
// runtime/debug.ReadBuildInfo. Every cmd/ binary serves it behind -version,
// and datamimed publishes it in its expvar snapshot, so a run artifact can
// always be traced back to the exact build that produced it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module's version ("(devel)" for plain `go build`).
	Version string
	// Revision is the VCS commit hash, when the binary was built inside a
	// checkout ("" otherwise).
	Revision string
	// Modified reports uncommitted changes at build time.
	Modified bool
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// Read extracts the build identity. It degrades gracefully: binaries built
// without module info (or with -buildvcs=false) still report the Go version.
func Read() Info {
	info := Info{Version: "(unknown)", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the identity as the one-liner the -version flags print:
//
//	datamime-inspect (devel) rev 1a2b3c4d (modified) go1.24.0
func (i Info) String() string {
	var b strings.Builder
	b.WriteString(i.Version)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " rev %s", rev)
		if i.Modified {
			b.WriteString(" (modified)")
		}
	}
	fmt.Fprintf(&b, " %s", i.GoVersion)
	return b.String()
}

// Vars renders the identity for expvar publication, with stable keys.
func (i Info) Vars() map[string]interface{} {
	return map[string]interface{}{
		"version":    i.Version,
		"revision":   i.Revision,
		"modified":   i.Modified,
		"go_version": i.GoVersion,
	}
}
