package opt

import (
	"math"
	"testing"

	"datamime/internal/stats"
)

// quadratic is a smooth noisy test objective with minimum at the given
// point in the unit cube.
func quadratic(minimum []float64, noise float64, rng *stats.RNG) func([]float64) float64 {
	return func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - minimum[i]
			s += d * d
		}
		return s + noise*rng.NormFloat64()
	}
}

func runOptimizer(o Optimizer, f func([]float64) float64, iters int) float64 {
	for i := 0; i < iters; i++ {
		x := o.Next()
		o.Observe(x, f(x))
	}
	_, y, ok := o.Best()
	if !ok {
		panic("no best after observations")
	}
	return y
}

func TestBayesOptFindsMinimum2D(t *testing.T) {
	space := MustSpace(
		Param{Name: "a", Lo: 0, Hi: 1},
		Param{Name: "b", Lo: 0, Hi: 1},
	)
	rng := stats.NewRNG(81)
	f := quadratic([]float64{0.3, 0.7}, 0, rng)
	bo := NewBayesOpt(space, BayesOptConfig{Seed: 1, Candidates: 256})
	best := runOptimizer(bo, f, 40)
	if best > 0.01 {
		t.Fatalf("BayesOpt best after 40 iters = %g, want < 0.01", best)
	}
	x, _, _ := bo.Best()
	if math.Abs(x[0]-0.3) > 0.15 || math.Abs(x[1]-0.7) > 0.15 {
		t.Fatalf("BayesOpt argmin = %v, want ~(0.3, 0.7)", x)
	}
}

func TestBayesOptToleratesNoise(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1})
	rng := stats.NewRNG(82)
	f := quadratic([]float64{0.6}, 0.02, rng)
	bo := NewBayesOpt(space, BayesOptConfig{Seed: 2, Candidates: 256})
	for i := 0; i < 35; i++ {
		x := bo.Next()
		bo.Observe(x, f(x))
	}
	x, _, _ := bo.Best()
	if math.Abs(x[0]-0.6) > 0.2 {
		t.Fatalf("noisy BayesOpt argmin = %g, want ~0.6", x[0])
	}
}

func TestBayesOptBeatsRandomOnBudget(t *testing.T) {
	space := MustSpace(
		Param{Name: "a", Lo: 0, Hi: 1},
		Param{Name: "b", Lo: 0, Hi: 1},
		Param{Name: "c", Lo: 0, Hi: 1},
		Param{Name: "d", Lo: 0, Hi: 1},
	)
	minimum := []float64{0.21, 0.72, 0.43, 0.88}
	const iters = 45
	wins := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		seed := uint64(100 + trial)
		frng := stats.NewRNG(seed)
		f := quadratic(minimum, 0, frng)
		bo := NewBayesOpt(space, BayesOptConfig{Seed: seed, Candidates: 256})
		rs := NewRandomSearch(space, seed)
		if runOptimizer(bo, f, iters) <= runOptimizer(rs, f, iters) {
			wins++
		}
	}
	if wins < 4 {
		t.Fatalf("BayesOpt beat random search only %d/%d trials", wins, trials)
	}
}

func TestBayesOptInitialDesignIsLHS(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1}, Param{Name: "b", Lo: 0, Hi: 1})
	bo := NewBayesOpt(space, BayesOptConfig{Seed: 3, InitPoints: 8})
	seen := make([]bool, 8)
	for i := 0; i < 8; i++ {
		x := bo.Next()
		bo.Observe(x, 1.0)
		bin := int(x[0] * 8)
		if bin == 8 {
			bin = 7
		}
		if seen[bin] {
			t.Fatalf("init design stratum %d repeated", bin)
		}
		seen[bin] = true
	}
}

func TestRandomSearchCoverage(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1})
	rs := NewRandomSearch(space, 9)
	seen := make([]bool, 10)
	for i := 0; i < 300; i++ {
		x := rs.Next()
		rs.Observe(x, x[0])
		idx := int(x[0] * 10)
		if idx == 10 {
			idx = 9
		}
		seen[idx] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("random search never hit decile %d", i)
		}
	}
	_, y, ok := rs.Best()
	if !ok || y > 0.05 {
		t.Fatalf("random search best = %g over 300 draws", y)
	}
}

func TestAnnealImproves(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1}, Param{Name: "b", Lo: 0, Hi: 1})
	rng := stats.NewRNG(91)
	f := quadratic([]float64{0.5, 0.5}, 0, rng)
	an := NewAnneal(space, 7, 1.0, 0.9)
	best := runOptimizer(an, f, 120)
	if best > 0.05 {
		t.Fatalf("anneal best after 120 iters = %g", best)
	}
}

func TestAnnealDefaults(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1})
	an := NewAnneal(space, 1, -1, 5) // invalid -> defaults
	if an.temp != 1.0 || an.cooling != 0.95 {
		t.Fatalf("defaults not applied: temp=%g cooling=%g", an.temp, an.cooling)
	}
}

func TestHistorySemantics(t *testing.T) {
	var h history
	if _, _, ok := h.Best(); ok {
		t.Fatal("Best before observations must report !ok")
	}
	x := []float64{0.5}
	h.Observe(x, 2)
	x[0] = 0.9 // mutation after Observe must not corrupt history
	h.Observe([]float64{0.1}, 1)
	h.Observe([]float64{0.9}, 3)
	bx, by, ok := h.Best()
	if !ok || by != 1 || bx[0] != 0.1 {
		t.Fatalf("Best = %v, %g", bx, by)
	}
	if len(h.Trace()) != 3 {
		t.Fatalf("Trace length = %d", len(h.Trace()))
	}
	if h.Trace()[0].X[0] != 0.5 {
		t.Fatal("Observe aliased caller slice")
	}
}

func TestOptimizerNames(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1})
	for _, o := range []Optimizer{
		NewBayesOpt(space, BayesOptConfig{}),
		NewRandomSearch(space, 0),
		NewAnneal(space, 0, 1, 0.9),
	} {
		if o.Name() == "" {
			t.Fatalf("%T has empty name", o)
		}
	}
}

func TestBayesOptDeterministicGivenSeed(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1}, Param{Name: "b", Lo: 0, Hi: 1})
	mk := func() []float64 {
		rng := stats.NewRNG(5)
		f := quadratic([]float64{0.4, 0.4}, 0, rng)
		bo := NewBayesOpt(space, BayesOptConfig{Seed: 42, Candidates: 128})
		for i := 0; i < 15; i++ {
			x := bo.Next()
			bo.Observe(x, f(x))
		}
		x, _, _ := bo.Best()
		return x
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed searches diverged: %v vs %v", a, b)
		}
	}
}
