package opt

import (
	"math"
	"testing"
)

func diagSpace(t *testing.T) *Space {
	t.Helper()
	space, err := NewSpace(
		Param{Name: "a", Lo: 0, Hi: 1},
		Param{Name: "b", Lo: 0, Hi: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

// TestTakeDiagnosticsDrains: no snapshot exists during the initial design;
// the first surrogate-backed proposal produces one; taking it drains the
// window until the next proposal.
func TestTakeDiagnosticsDrains(t *testing.T) {
	space := diagSpace(t)
	b := NewBayesOpt(space, BayesOptConfig{Seed: 11, Candidates: 64, InitPoints: 4, Workers: 1})

	for i := 0; i < 4; i++ {
		x := b.Next()
		if _, ok := b.TakeDiagnostics(); ok {
			t.Fatalf("diagnostics during initial design (iteration %d)", i)
		}
		b.Observe(x, math.Sin(4*x[0])+x[1]*x[1])
	}

	x := b.Next()
	d, ok := b.TakeDiagnostics()
	if !ok {
		t.Fatal("no diagnostics after the first surrogate-backed proposal")
	}
	b.Observe(x, math.Sin(4*x[0])+x[1]*x[1])

	if d.Observations != 4 {
		t.Errorf("Observations = %d, want 4", d.Observations)
	}
	if d.Candidates == 0 || d.LengthScale <= 0 || d.SignalVar <= 0 {
		t.Errorf("fit figures missing: %+v", d)
	}
	if d.Coverage1 < 0 || d.Coverage1 > 1 || d.Coverage2 < d.Coverage1 || d.Coverage2 > 1 {
		t.Errorf("coverage out of range or inverted: cov1=%g cov2=%g", d.Coverage1, d.Coverage2)
	}
	if d.Condition < 1 {
		t.Errorf("condition estimate %g < 1", d.Condition)
	}
	if d.ChosenEI < d.PoolMeanEI {
		t.Errorf("chosen EI %g below pool mean %g (argmax must win)", d.ChosenEI, d.PoolMeanEI)
	}
	// The EI split reconstructs the chosen EI (both computed from the same
	// posterior; degenerate variance makes one term zero, never negative).
	if got := d.ExploitEI + d.ExploreEI; math.Abs(got-d.ChosenEI) > 1e-9*math.Max(1, math.Abs(d.ChosenEI)) {
		t.Errorf("exploit %g + explore %g = %g != chosen EI %g",
			d.ExploitEI, d.ExploreEI, got, d.ChosenEI)
	}

	if _, ok := b.TakeDiagnostics(); ok {
		t.Fatal("window did not drain")
	}
	b.Next()
	if _, ok := b.TakeDiagnostics(); !ok {
		t.Fatal("no diagnostics after the next surrogate-backed proposal")
	}
}

// TestDiagnosticsFirstFitPerBatch: within one NextBatch window, diagnostics
// describe the fit over real observations only (the constant-liar lies come
// after), and the drain captures exactly one snapshot per batch.
func TestDiagnosticsFirstFitPerBatch(t *testing.T) {
	space := diagSpace(t)
	b := NewBayesOpt(space, BayesOptConfig{Seed: 5, Candidates: 64, InitPoints: 4, Workers: 1})
	for i := 0; i < 6; i++ {
		for _, x := range b.NextBatch(1) {
			b.Observe(x, math.Cos(3*x[0])-x[1])
		}
		b.TakeDiagnostics()
	}

	batch := b.NextBatch(3)
	if len(batch) != 3 {
		t.Fatalf("batch of %d, want 3", len(batch))
	}
	d, ok := b.TakeDiagnostics()
	if !ok {
		t.Fatal("no diagnostics for a surrogate-backed batch")
	}
	// 6 real observations; the lied fits (7, 8 observations) must not leak
	// into the snapshot.
	if d.Observations != 6 {
		t.Errorf("Observations = %d, want 6 (the pre-lie fit)", d.Observations)
	}
	if _, ok := b.TakeDiagnostics(); ok {
		t.Fatal("batch produced more than one snapshot")
	}
}

// solveDense solves Ax = b by Gaussian elimination with partial pivoting —
// a deliberately naive reference implementation independent of the linalg
// package the production path uses.
func solveDense(a [][]float64, b []float64) []float64 {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		m[col], m[p] = m[p], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x
}

// TestLOOStatsMatchDirectRefit: the O(n²)-per-point leave-one-out residuals
// read off the factorization (R&W 5.10-5.12) must match brute-force
// leave-one-out predictions computed from scratch with the prior mean held
// fixed (the GP's empirical-mean prior is a fixed constant, not re-estimated
// per fold).
func TestLOOStatsMatchDirectRefit(t *testing.T) {
	xs := [][]float64{{0.1, 0.2}, {0.8, 0.3}, {0.4, 0.9}, {0.6, 0.6}, {0.2, 0.7}, {0.9, 0.8}}
	ys := []float64{0.5, -0.2, 0.8, 0.1, 0.4, -0.5}
	kernel := Matern52{Variance: 1, LengthScale: 0.5}
	const noise = 1e-4

	gp, err := FitGP(kernel, noise, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	rmse, maxZ, cov1, cov2 := gp.looStats()

	n := len(xs)
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)

	// The noise-inclusive covariance the fit factorizes (jitter = noise).
	cov := func(i, j int) float64 {
		v := kernel.Eval(xs[i], xs[j])
		if i == j {
			v += noise
		}
		return v
	}
	var sq, wantMaxZ float64
	within1, within2 := 0, 0
	for i := 0; i < n; i++ {
		idx := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				idx = append(idx, j)
			}
		}
		a := make([][]float64, n-1)
		rhs := make([]float64, n-1)
		kstar := make([]float64, n-1)
		for r, j := range idx {
			a[r] = make([]float64, n-1)
			for c, l := range idx {
				a[r][c] = cov(j, l)
			}
			rhs[r] = ys[j] - mean
			kstar[r] = cov(i, j)
		}
		w := solveDense(a, rhs)
		mu, kk := mean, 0.0
		for r := range w {
			mu += kstar[r] * w[r]
		}
		for r, v := range solveDense(a, kstar) {
			kk += kstar[r] * v
		}
		resid := ys[i] - mu
		variance := cov(i, i) - kk
		sq += resid * resid
		z := math.Abs(resid) / math.Sqrt(variance)
		if z > wantMaxZ {
			wantMaxZ = z
		}
		if z <= 1 {
			within1++
		}
		if z <= 2 {
			within2++
		}
	}
	wantRMSE := math.Sqrt(sq / float64(n))

	if math.Abs(rmse-wantRMSE) > 1e-7*math.Max(1, wantRMSE) {
		t.Errorf("LOO rmse = %g, brute force = %g", rmse, wantRMSE)
	}
	if math.Abs(maxZ-wantMaxZ) > 1e-7*math.Max(1, wantMaxZ) {
		t.Errorf("LOO max |z| = %g, brute force = %g", maxZ, wantMaxZ)
	}
	if want := float64(within1) / float64(n); cov1 != want {
		t.Errorf("coverage1 = %g, brute force = %g", cov1, want)
	}
	if want := float64(within2) / float64(n); cov2 != want {
		t.Errorf("coverage2 = %g, brute force = %g", cov2, want)
	}
}
