package opt

import "math"

// Kernel is a positive-definite covariance function over unit-cube points.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Name identifies the kernel family for logs.
	Name() string
}

// Matern52 is the Matérn-5/2 kernel, the standard choice for Bayesian
// optimization of engineering objectives (twice-differentiable sample
// paths; less smooth than RBF, which suits noisy profile measurements).
type Matern52 struct {
	Variance    float64 // signal variance σ²
	LengthScale float64 // isotropic length scale ℓ
}

// Eval computes σ²(1 + √5 r/ℓ + 5r²/3ℓ²)·exp(−√5 r/ℓ).
func (k Matern52) Eval(a, b []float64) float64 {
	r := euclid(a, b)
	s := math.Sqrt(5) * r / k.LengthScale
	return k.Variance * (1 + s + s*s/3) * math.Exp(-s)
}

// Name returns "matern52".
func (k Matern52) Name() string { return "matern52" }

// RBF is the squared-exponential kernel σ²·exp(−r²/2ℓ²).
type RBF struct {
	Variance    float64
	LengthScale float64
}

// Eval computes the squared-exponential covariance.
func (k RBF) Eval(a, b []float64) float64 {
	r := euclid(a, b)
	return k.Variance * math.Exp(-r*r/(2*k.LengthScale*k.LengthScale))
}

// Name returns "rbf".
func (k RBF) Name() string { return "rbf" }

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
func log(x float64) float64    { return math.Log(x) }

// normPDF is the standard normal density.
func normPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

func roundClamp(v, lo, hi float64) float64 {
	r := math.Round(v)
	if r < lo {
		r = math.Ceil(lo)
	}
	if r > hi {
		r = math.Floor(hi)
	}
	return r
}
