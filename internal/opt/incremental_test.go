package opt

import (
	"math"
	"testing"

	"datamime/internal/opt/linalg"
	"datamime/internal/stats"
)

// randomObs builds a deterministic observation stream over the unit cube.
func randomObs(seed uint64, n, dim int) ([][]float64, []float64) {
	rng := stats.NewRNG(seed)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		for d := range x {
			x[d] = rng.Float64()
		}
		xs[i] = x
		// A smooth multimodal objective plus noise.
		ys[i] = math.Sin(5*x[0]) + x[1]*x[1] + 0.05*rng.NormFloat64()
	}
	return xs, ys
}

// TestIncrementalFitMatchesFromScratch is the tentpole agreement test: the
// cache-backed fit (bordered Cholesky appends + scaled unit factors) must
// agree with the from-scratch fitBestGP reference to 1e-9 in posterior
// mean, variance, and log marginal likelihood — at every history length as
// observations stream in one at a time.
func TestIncrementalFitMatchesFromScratch(t *testing.T) {
	xs, ys := randomObs(3, 40, 3)
	probes, _ := randomObs(4, 10, 3)
	cache := newSurrogateCache()
	for n := 2; n <= len(xs); n++ {
		inc, err := cache.fit(xs[:n], ys[:n])
		if err != nil {
			t.Fatalf("n=%d: incremental fit: %v", n, err)
		}
		ref, err := fitBestGP(xs[:n], ys[:n])
		if err != nil {
			t.Fatalf("n=%d: reference fit: %v", n, err)
		}
		if d := math.Abs(inc.LogMarginalLikelihood() - ref.LogMarginalLikelihood()); d > 1e-9 {
			t.Fatalf("n=%d: LML diverged by %g", n, d)
		}
		for pi, p := range probes {
			mi, si := inc.Predict(p)
			mr, sr := ref.Predict(p)
			if math.Abs(mi-mr) > 1e-9 || math.Abs(si-sr) > 1e-9 {
				t.Fatalf("n=%d probe %d: incremental (%.12g, %.12g) vs scratch (%.12g, %.12g)",
					n, pi, mi, si, mr, sr)
			}
		}
	}
}

// TestAppendBitIdenticalToRefactorization pins the stronger property the
// resume guarantee leans on: appending rows one at a time produces exactly
// the factor a from-scratch factorization of the full matrix yields.
func TestAppendBitIdenticalToRefactorization(t *testing.T) {
	xs, _ := randomObs(9, 25, 4)
	k := Matern52{Variance: 1, LengthScale: 0.4}
	const jitter = 1e-3

	grow := func() *linalg.Matrix {
		var f *linalg.Matrix
		for n := 1; n <= len(xs); n++ {
			row := make([]float64, n)
			for j := 0; j < n-1; j++ {
				row[j] = k.Eval(xs[n-1], xs[j])
			}
			row[n-1] = k.Eval(xs[n-1], xs[n-1]) + jitter
			if n == 1 {
				m := linalg.NewMatrix(1, 1)
				m.Set(0, 0, row[0])
				var err error
				if f, err = linalg.Cholesky(m); err != nil {
					t.Fatal(err)
				}
				continue
			}
			var err error
			if f, err = linalg.CholeskyAppend(f, row); err != nil {
				t.Fatal(err)
			}
		}
		return f
	}
	scratch := func() *linalg.Matrix {
		n := len(xs)
		m := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := k.Eval(xs[i], xs[j])
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
			m.Set(i, i, m.At(i, i)+jitter)
		}
		f, err := linalg.Cholesky(m)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := grow(), scratch()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j <= i; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("factor (%d,%d): appended %v != scratch %v", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}

// TestCholeskyAppendRejectsNonPD: appending an exact duplicate row with no
// jitter makes the Schur complement zero, which must be rejected — the
// trigger for the exact-refactorization fallback.
func TestCholeskyAppendRejectsNonPD(t *testing.T) {
	m := linalg.NewMatrix(1, 1)
	m.Set(0, 0, 1)
	f, err := linalg.Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := linalg.CholeskyAppend(f, []float64{1, 1}); err != linalg.ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := linalg.CholeskyAppend(f, []float64{1}); err == nil {
		t.Fatal("short row accepted")
	}
}

// TestEntryFallbackOnAppendFailure: when the bordered append hits a
// non-positive pivot, the entry must recover via a full refactorization
// (escalating jitter as needed) and end bit-identical to a from-scratch
// rebuild.
func TestEntryFallbackOnAppendFailure(t *testing.T) {
	xs := [][]float64{{0.3, 0.7}, {0.9, 0.1}, {0.3, 0.7}} // last duplicates the first
	// Hand-craft an entry whose factor carries no jitter, so appending the
	// duplicate row fails, forcing the rebuild path.
	k := Matern52{Variance: 1, LengthScale: 0.4}
	m := linalg.NewMatrix(2, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j <= i; j++ {
			v := k.Eval(xs[i], xs[j])
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	f, err := linalg.Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	e := surrogateEntry{ls: 0.4, nf: 1e-4, chol: f, jitter: 0, level: 0, n: 2, ok: true}
	e.sync(xs)
	if !e.ok || e.n != 3 {
		t.Fatalf("entry did not recover: ok=%v n=%d", e.ok, e.n)
	}
	if e.jitter < unitJitter(e.nf) {
		t.Fatalf("rebuild used jitter %g below the base", e.jitter)
	}
	// The recovered factor must equal a pure from-scratch rebuild.
	ref := surrogateEntry{ls: 0.4, nf: 1e-4}
	ref.rebuild(xs)
	if !ref.ok || ref.level != e.level || ref.jitter != e.jitter {
		t.Fatalf("fallback state (%d, %g) != scratch state (%d, %g)", e.level, e.jitter, ref.level, ref.jitter)
	}
	for i := range e.chol.Data {
		if e.chol.Data[i] != ref.chol.Data[i] {
			t.Fatal("fallback factor diverged from scratch rebuild")
		}
	}
}

// TestEscalatedEntryRefactorizesFromBase: once an entry sits above the base
// jitter level, new observations must refactorize from the base level so
// the landing state is a function of the observation set, not the path.
func TestEscalatedEntryRefactorizesFromBase(t *testing.T) {
	xs, _ := randomObs(12, 6, 2)
	e := surrogateEntry{ls: 0.4, nf: 1e-3}
	e.rebuild(xs[:5])
	if !e.ok {
		t.Fatal("initial rebuild failed")
	}
	e.level, e.jitter = 2, e.jitter*100 // simulate prior escalation
	e.sync(xs[:6])
	if !e.ok {
		t.Fatal("sync failed")
	}
	if e.level != 0 {
		t.Fatalf("level %d after rebuild of well-conditioned points, want 0 (base)", e.level)
	}
	ref := surrogateEntry{ls: 0.4, nf: 1e-3}
	ref.rebuild(xs[:6])
	for i := range e.chol.Data {
		if e.chol.Data[i] != ref.chol.Data[i] {
			t.Fatal("escalated-entry rebuild diverged from scratch")
		}
	}
}

// TestParallelScoringDeterminism: two optimizers differing only in
// acquisition worker count must emit identical proposal streams.
func TestParallelScoringDeterminism(t *testing.T) {
	mk := func(workers int) *BayesOpt {
		space, err := NewSpace(
			Param{Name: "a", Lo: 0, Hi: 1},
			Param{Name: "b", Lo: 0, Hi: 1},
			Param{Name: "c", Lo: 0, Hi: 1},
		)
		if err != nil {
			t.Fatal(err)
		}
		return NewBayesOpt(space, BayesOptConfig{Seed: 11, Candidates: 128, Workers: workers})
	}
	serial, parallel := mk(1), mk(8)
	obj := func(x []float64) float64 { return math.Sin(4*x[0]) + x[1] - x[2]*x[2] }
	for step := 0; step < 18; step++ {
		xa, xb := serial.Next(), parallel.Next()
		for d := range xa {
			if xa[d] != xb[d] {
				t.Fatalf("step %d dim %d: serial %v != parallel %v", step, d, xa, xb)
			}
		}
		y := obj(xa)
		serial.Observe(xa, y)
		parallel.Observe(xb, y)
	}
}

// TestNextBatchRollsBackSurrogateCache: after a constant-liar batch, the
// cache must be bit-identical to one that never saw the lies.
func TestNextBatchRollsBackSurrogateCache(t *testing.T) {
	space, err := NewSpace(
		Param{Name: "a", Lo: 0, Hi: 1},
		Param{Name: "b", Lo: 0, Hi: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBayesOpt(space, BayesOptConfig{Seed: 3, Candidates: 64, InitPoints: 4, Workers: 1})
	// Burn through the initial design with real observations.
	for i := 0; i < 6; i++ {
		x := b.Next()
		b.Observe(x, math.Cos(3*x[0])+x[1])
	}
	if _, err := b.fitSurrogate(); err != nil { // populate the cache
		t.Fatal(err)
	}
	before := b.cache.snapshot()
	if got := b.NextBatch(4); len(got) != 4 {
		t.Fatalf("batch size %d", len(got))
	}
	after := b.cache.entries
	if len(after) != len(before) {
		t.Fatalf("entry count changed: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if after[i].n != before[i].n || after[i].jitter != before[i].jitter ||
			after[i].level != before[i].level || after[i].ok != before[i].ok ||
			after[i].chol != before[i].chol {
			t.Fatalf("entry %d not rolled back: %+v vs %+v", i, after[i], before[i])
		}
	}
	if len(b.obs) != 6 {
		t.Fatalf("%d observations after rollback, want 6", len(b.obs))
	}
}
