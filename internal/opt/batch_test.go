package opt

import (
	"math"
	"testing"

	"datamime/internal/stats"
)

func TestNextBatchDistinctPoints(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1}, Param{Name: "b", Lo: 0, Hi: 1})
	bo := NewBayesOpt(space, BayesOptConfig{Seed: 1, InitPoints: 4, Candidates: 128})
	rng := stats.NewRNG(2)
	f := quadratic([]float64{0.4, 0.6}, 0, rng)
	// Exhaust the initial design first.
	for i := 0; i < 4; i++ {
		x := bo.Next()
		bo.Observe(x, f(x))
	}
	batch := bo.NextBatch(4)
	if len(batch) != 4 {
		t.Fatalf("batch size %d", len(batch))
	}
	// Constant-liar batches must not propose (near-)identical points.
	for i := 0; i < len(batch); i++ {
		for j := i + 1; j < len(batch); j++ {
			if dist(batch[i], batch[j]) < 1e-6 {
				t.Fatalf("batch points %d and %d identical: %v", i, j, batch[i])
			}
		}
	}
	// The lies must have been rolled back.
	if len(bo.obs) != 4 {
		t.Fatalf("liar observations leaked: %d", len(bo.obs))
	}
}

func TestNextBatchDealsInitialDesign(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1})
	bo := NewBayesOpt(space, BayesOptConfig{Seed: 3, InitPoints: 6})
	batch := bo.NextBatch(4)
	if len(batch) != 4 {
		t.Fatalf("batch size %d", len(batch))
	}
	if len(bo.pending) != 2 {
		t.Fatalf("pending design = %d, want 2", len(bo.pending))
	}
}

func TestNextBatchSizeOne(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1})
	bo := NewBayesOpt(space, BayesOptConfig{Seed: 4})
	if got := bo.NextBatch(1); len(got) != 1 {
		t.Fatalf("k=1 batch size %d", len(got))
	}
	if got := bo.NextBatch(0); len(got) != 1 {
		t.Fatalf("k=0 batch size %d", len(got))
	}
}

func TestRandomSearchBatch(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1})
	rs := NewRandomSearch(space, 5)
	batch := rs.NextBatch(8)
	if len(batch) != 8 {
		t.Fatalf("batch size %d", len(batch))
	}
}

func TestBatchBayesOptStillConverges(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1}, Param{Name: "b", Lo: 0, Hi: 1})
	rng := stats.NewRNG(6)
	f := quadratic([]float64{0.25, 0.75}, 0, rng)
	bo := NewBayesOpt(space, BayesOptConfig{Seed: 7, Candidates: 256})
	for round := 0; round < 12; round++ {
		batch := bo.NextBatch(4)
		for _, x := range batch {
			bo.Observe(x, f(x))
		}
	}
	_, best, _ := bo.Best()
	if best > 0.02 {
		t.Fatalf("batch BO best after 48 evals = %g", best)
	}
}

func TestFallbackBatch(t *testing.T) {
	space := MustSpace(Param{Name: "a", Lo: 0, Hi: 1})
	rng := stats.NewRNG(8)
	// BatchOptimizer passes through.
	bo := NewBayesOpt(space, BayesOptConfig{Seed: 9, InitPoints: 5})
	if got := FallbackBatch(bo, space, 3, rng); len(got) != 3 {
		t.Fatalf("passthrough batch %d", len(got))
	}
	// Non-batch optimizers get jittered proposals in the unit cube.
	an := NewAnneal(space, 10, 1, 0.9)
	got := FallbackBatch(an, space, 5, rng)
	if len(got) != 5 {
		t.Fatalf("fallback batch %d", len(got))
	}
	for _, x := range got {
		for _, v := range x {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("fallback point out of cube: %v", x)
			}
		}
	}
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
