package opt

import (
	"math"
	"testing"

	"datamime/internal/stats"
)

func TestKernelProperties(t *testing.T) {
	kernels := []Kernel{
		Matern52{Variance: 2, LengthScale: 0.3},
		RBF{Variance: 2, LengthScale: 0.3},
	}
	a := []float64{0.1, 0.2}
	b := []float64{0.4, 0.9}
	for _, k := range kernels {
		if k.Name() == "" {
			t.Fatal("kernel without a name")
		}
		// Symmetry.
		if math.Abs(k.Eval(a, b)-k.Eval(b, a)) > 1e-15 {
			t.Fatalf("%s not symmetric", k.Name())
		}
		// k(x, x) = variance.
		if math.Abs(k.Eval(a, a)-2) > 1e-12 {
			t.Fatalf("%s: k(x,x) = %g, want 2", k.Name(), k.Eval(a, a))
		}
		// Decay with distance.
		far := []float64{0.9, 0.05}
		if k.Eval(a, far) >= k.Eval(a, []float64{0.12, 0.22}) {
			t.Fatalf("%s does not decay with distance", k.Name())
		}
		// Positivity.
		if k.Eval(a, far) <= 0 {
			t.Fatalf("%s non-positive", k.Name())
		}
	}
}

func TestGPInterpolatesNoiseless(t *testing.T) {
	xs := [][]float64{{0.1}, {0.3}, {0.5}, {0.7}, {0.9}}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(6 * x[0])
	}
	gp, err := FitGP(Matern52{Variance: 1, LengthScale: 0.3}, 1e-8, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, s2 := gp.Predict(x)
		if math.Abs(mu-ys[i]) > 1e-3 {
			t.Fatalf("GP does not interpolate training point %d: %g vs %g", i, mu, ys[i])
		}
		if s2 > 1e-3 {
			t.Fatalf("GP variance at training point %d too high: %g", i, s2)
		}
	}
	// Uncertainty must grow away from data.
	_, sFar := gp.Predict([]float64{2.5})
	_, sNear := gp.Predict([]float64{0.5})
	if sFar <= sNear {
		t.Fatalf("GP uncertainty does not grow away from data: far=%g near=%g", sFar, sNear)
	}
}

func TestGPPredictionAccuracy(t *testing.T) {
	// Fit a smooth 1-D function densely; mid-point predictions should be
	// close.
	f := func(x float64) float64 { return x*x - 0.3*x }
	var xs [][]float64
	var ys []float64
	for x := 0.0; x <= 1.0; x += 0.05 {
		xs = append(xs, []float64{x})
		ys = append(ys, f(x))
	}
	gp, err := fitBestGP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.025; x < 1; x += 0.1 {
		mu, _ := gp.Predict([]float64{x})
		if math.Abs(mu-f(x)) > 0.02 {
			t.Fatalf("GP prediction at %g: %g, want %g", x, mu, f(x))
		}
	}
}

func TestGPHandlesDuplicatePoints(t *testing.T) {
	xs := [][]float64{{0.5}, {0.5}, {0.5}, {0.2}}
	ys := []float64{1.0, 1.1, 0.9, 2.0}
	gp, err := FitGP(Matern52{Variance: 1, LengthScale: 0.3}, 1e-6, xs, ys)
	if err != nil {
		t.Fatalf("GP failed on duplicate points: %v", err)
	}
	mu, _ := gp.Predict([]float64{0.5})
	if math.Abs(mu-1.0) > 0.15 {
		t.Fatalf("duplicate-point posterior mean = %g, want ~1.0", mu)
	}
}

func TestGPErrors(t *testing.T) {
	if _, err := FitGP(RBF{Variance: 1, LengthScale: 1}, 0, nil, nil); err == nil {
		t.Fatal("empty fit must error")
	}
	if _, err := FitGP(RBF{Variance: 1, LengthScale: 1}, 0, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestLogMarginalLikelihoodPrefersTruth(t *testing.T) {
	// Data drawn from a smooth function should prefer a moderate length
	// scale over a tiny one.
	rng := stats.NewRNG(71)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 25; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(4*x)+0.01*rng.NormFloat64())
	}
	smooth, err := FitGP(Matern52{Variance: 1, LengthScale: 0.4}, 1e-4, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	wiggly, err := FitGP(Matern52{Variance: 1, LengthScale: 0.001}, 1e-4, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if smooth.LogMarginalLikelihood() <= wiggly.LogMarginalLikelihood() {
		t.Fatal("LML should prefer the smooth model for smooth data")
	}
}

func TestExpectedImprovement(t *testing.T) {
	xs := [][]float64{{0.0}, {1.0}}
	ys := []float64{1.0, 0.5}
	gp, err := FitGP(Matern52{Variance: 0.5, LengthScale: 0.3}, 1e-6, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// EI must be non-negative everywhere.
	for x := 0.0; x <= 1; x += 0.05 {
		if ei := ExpectedImprovement(gp, []float64{x}, 0.5, 0.01); ei < 0 {
			t.Fatalf("EI negative at %g: %g", x, ei)
		}
	}
	// EI at an unexplored region (high variance) should exceed EI exactly
	// at the worst observed point.
	eiUnexplored := ExpectedImprovement(gp, []float64{0.5}, 0.5, 0.01)
	eiWorst := ExpectedImprovement(gp, []float64{0.0}, 0.5, 0.01)
	if eiUnexplored <= eiWorst {
		t.Fatalf("EI does not favor unexplored region: %g vs %g", eiUnexplored, eiWorst)
	}
}

func TestNormFunctions(t *testing.T) {
	if math.Abs(normCDF(0)-0.5) > 1e-12 {
		t.Fatalf("normCDF(0) = %g", normCDF(0))
	}
	if math.Abs(normCDF(1.96)-0.975) > 1e-3 {
		t.Fatalf("normCDF(1.96) = %g", normCDF(1.96))
	}
	if math.Abs(normPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatalf("normPDF(0) = %g", normPDF(0))
	}
}
