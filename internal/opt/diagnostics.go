package opt

import (
	"math"

	"datamime/internal/opt/linalg"
)

// Diagnostics is one proposal's GP search-health snapshot: which
// hyperparameters won the marginal-likelihood grid, how well-calibrated the
// surrogate's uncertainty is against its own training set (leave-one-out
// residuals), how close the covariance came to losing positive-definiteness,
// and what the acquisition surface looked like when the proposal was chosen.
//
// Everything here is derived read-only from state the proposal already
// materialized — the winning Cholesky factor, alpha vector, and EI score
// pool — so collecting it cannot perturb the proposal stream: an
// instrumented search is bit-identical to an uninstrumented one.
type Diagnostics struct {
	// Fit: the grid winner and its evidence.
	LengthScale  float64 `json:"length_scale"`
	NoiseFrac    float64 `json:"noise_frac"`
	SignalVar    float64 `json:"signal_var"`
	LogMarginal  float64 `json:"log_marginal"`
	Observations int     `json:"observations"`
	// JitterLevel is the winning candidate's jitter-escalation level
	// (0 = factorized at base jitter); Condition estimates the covariance
	// condition number as (max/min Cholesky diagonal)².
	JitterLevel int     `json:"jitter_level"`
	Condition   float64 `json:"condition"`

	// Leave-one-out calibration: residuals of each training point predicted
	// from the other n−1, standardized by the model's own predictive spread.
	// Coverage1/Coverage2 are the fractions inside the 1σ/2σ bands — a
	// calibrated model sits near 0.68/0.95; far below means overconfident,
	// far above means underconfident.
	LOORMSE   float64 `json:"loo_rmse"`
	LOOMaxZ   float64 `json:"loo_max_z"`
	Coverage1 float64 `json:"coverage1"`
	Coverage2 float64 `json:"coverage2"`

	// Acquisition: the chosen candidate's EI against the scored pool, and
	// the exploration-vs-exploitation split of the chosen EI's two terms.
	// A collapsing chosen-vs-mean gap means the EI surface has flattened
	// (stagnation); an exploit share near 1 means the search has stopped
	// valuing uncertainty.
	Candidates int     `json:"candidates"`
	ChosenEI   float64 `json:"chosen_ei"`
	PoolMeanEI float64 `json:"pool_mean_ei"`
	ExploitEI  float64 `json:"exploit_ei"`
	ExploreEI  float64 `json:"explore_ei"`
}

// DiagnosticsReporter is implemented by optimizers that can report
// per-proposal search-health diagnostics. Like TimingReporter, collection
// must not perturb the proposal stream: implementations only read state the
// proposal already computed.
type DiagnosticsReporter interface {
	// TakeDiagnostics returns the diagnostics captured since the previous
	// call and resets them; ok is false when no surrogate-backed proposal
	// ran. When several proposals ran in the window (constant-liar
	// batches), the snapshot describes the first — the only one fit purely
	// on real observations, before lie rows entered the history.
	TakeDiagnostics() (d Diagnostics, ok bool)
}

var _ DiagnosticsReporter = (*BayesOpt)(nil)

// TakeDiagnostics implements DiagnosticsReporter.
func (b *BayesOpt) TakeDiagnostics() (Diagnostics, bool) {
	d, ok := b.diag, b.diagOK
	b.diag, b.diagOK = Diagnostics{}, false
	return d, ok
}

// captureDiagnostics fills the pending diagnostics snapshot after a
// surrogate-backed proposal. Only the first proposal per drain window is
// captured (later constant-liar proposals are fit on lied observations).
// All inputs were materialized by the proposal itself; nothing here touches
// the RNG or mutates optimizer state beyond the snapshot fields.
func (b *BayesOpt) captureDiagnostics(gp *GP, eis []float64, chosen int, x []float64, bestY float64) {
	if b.diagOK {
		return
	}
	d := Diagnostics{Observations: len(gp.ys)}
	if sel := b.cache.lastFit; sel.ok {
		d.LengthScale = sel.ls
		d.NoiseFrac = sel.nf
		d.SignalVar = sel.signalVar
		d.LogMarginal = sel.lml
		d.JitterLevel = sel.level
	}
	d.Condition = choleskyCondition(gp.chol)
	d.LOORMSE, d.LOOMaxZ, d.Coverage1, d.Coverage2 = gp.looStats()

	d.Candidates = len(eis)
	d.ChosenEI = eis[chosen]
	var sum float64
	for _, ei := range eis {
		sum += ei
	}
	d.PoolMeanEI = sum / float64(len(eis))
	d.ExploitEI, d.ExploreEI = eiTermsAt(gp, x, bestY, b.xi)
	b.diag, b.diagOK = d, true
}

// eiTermsAt splits EI(x) into its exploitation term (expected improvement of
// the posterior mean over the incumbent) and exploration term (value of the
// posterior spread), mirroring ExpectedImprovement's arithmetic exactly.
func eiTermsAt(gp *GP, x []float64, best, xi float64) (exploit, explore float64) {
	mu, s2 := gp.Predict(x)
	s := math.Sqrt(s2 + gp.noiseVar)
	imp := best - xi - mu
	if s < 1e-12 {
		if imp > 0 {
			return imp, 0
		}
		return 0, 0
	}
	z := imp / s
	return imp * normCDF(z), s * normPDF(z)
}

// looStats computes leave-one-out residual statistics from the already
// factorized covariance (Rasmussen & Williams eq. 5.10–5.12): with
// K = L·Lᵀ, (K⁻¹)ᵢᵢ = ‖L⁻¹eᵢ‖², the LOO residual is αᵢ/(K⁻¹)ᵢᵢ and the LOO
// predictive variance 1/(K⁻¹)ᵢᵢ. O(n³) total over the cached factor — no
// refits, no mutation.
func (g *GP) looStats() (rmse, maxAbsZ, cov1, cov2 float64) {
	n := len(g.ys)
	if n == 0 {
		return 0, 0, 0, 0
	}
	e := make([]float64, n)
	var sumSq float64
	in1, in2 := 0, 0
	for i := 0; i < n; i++ {
		for j := range e {
			e[j] = 0
		}
		e[i] = 1
		v := linalg.SolveLower(g.chol, e)
		kinv := linalg.Dot(v, v)
		if kinv <= 0 || math.IsNaN(kinv) {
			continue
		}
		resid := g.alpha[i] / kinv
		sumSq += resid * resid
		z := math.Abs(resid) * math.Sqrt(kinv)
		if z > maxAbsZ {
			maxAbsZ = z
		}
		if z <= 1 {
			in1++
		}
		if z <= 2 {
			in2++
		}
	}
	rmse = math.Sqrt(sumSq / float64(n))
	cov1 = float64(in1) / float64(n)
	cov2 = float64(in2) / float64(n)
	return rmse, maxAbsZ, cov1, cov2
}

// choleskyCondition estimates the covariance condition number from the
// factor's diagonal: cond(K) ⪆ (max dᵢ / min dᵢ)². A cheap lower bound, but
// it tracks exactly the failure mode jitter escalation fights.
func choleskyCondition(l *linalg.Matrix) float64 {
	if l == nil || l.Rows == 0 {
		return 0
	}
	minD, maxD := math.Inf(1), 0.0
	for i := 0; i < l.Rows; i++ {
		d := math.Abs(l.At(i, i))
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD <= 0 {
		return math.Inf(1)
	}
	r := maxD / minD
	return r * r
}
