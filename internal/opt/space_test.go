package opt

import (
	"math"
	"testing"

	"datamime/internal/stats"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(
		Param{Name: "qps", Lo: 100, Hi: 100000, Log: true},
		Param{Name: "ratio", Lo: 0, Hi: 1},
		Param{Name: "warehouses", Lo: 1, Hi: 64, Integer: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpaceValidation(t *testing.T) {
	cases := []struct {
		name   string
		params []Param
	}{
		{"empty", nil},
		{"no-name", []Param{{Lo: 0, Hi: 1}}},
		{"dup", []Param{{Name: "a", Lo: 0, Hi: 1}, {Name: "a", Lo: 0, Hi: 1}}},
		{"empty-range", []Param{{Name: "a", Lo: 1, Hi: 1}}},
		{"inverted", []Param{{Name: "a", Lo: 2, Hi: 1}}},
		{"log-nonpositive", []Param{{Name: "a", Lo: 0, Hi: 1, Log: true}}},
	}
	for _, c := range cases {
		if _, err := NewSpace(c.params...); err == nil {
			t.Fatalf("case %q: expected error", c.name)
		}
	}
	if _, err := NewSpace(Param{Name: "ok", Lo: 0, Hi: 1}); err != nil {
		t.Fatalf("valid space rejected: %v", err)
	}
}

func TestMustSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSpace did not panic on invalid space")
		}
	}()
	MustSpace()
}

func TestDenormalizeBounds(t *testing.T) {
	s := testSpace(t)
	lo := s.Denormalize([]float64{0, 0, 0})
	hi := s.Denormalize([]float64{1, 1, 1})
	if lo[0] != 100 || hi[0] != 100000 {
		t.Fatalf("log param bounds: %g, %g", lo[0], hi[0])
	}
	if lo[1] != 0 || hi[1] != 1 {
		t.Fatalf("linear param bounds: %g, %g", lo[1], hi[1])
	}
	if lo[2] != 1 || hi[2] != 64 {
		t.Fatalf("integer param bounds: %g, %g", lo[2], hi[2])
	}
}

func TestDenormalizeLogMidpoint(t *testing.T) {
	s := testSpace(t)
	mid := s.Denormalize([]float64{0.5, 0.5, 0.5})
	// Log-scale midpoint is the geometric mean: sqrt(100 * 100000).
	want := math.Sqrt(100 * 100000)
	if math.Abs(mid[0]-want)/want > 1e-9 {
		t.Fatalf("log midpoint = %g, want %g", mid[0], want)
	}
}

func TestIntegerParamsAreIntegral(t *testing.T) {
	s := testSpace(t)
	rng := stats.NewRNG(61)
	for i := 0; i < 500; i++ {
		x := s.Denormalize(s.Sample(rng))
		if x[2] != math.Trunc(x[2]) {
			t.Fatalf("integer param produced %g", x[2])
		}
		if x[2] < 1 || x[2] > 64 {
			t.Fatalf("integer param out of range: %g", x[2])
		}
	}
}

func TestNormalizeRoundTrip(t *testing.T) {
	s := testSpace(t)
	rng := stats.NewRNG(62)
	for i := 0; i < 200; i++ {
		u := s.Sample(rng)
		x := s.Denormalize(u)
		u2 := s.Normalize(x)
		x2 := s.Denormalize(u2)
		for d := range x {
			if math.Abs(x[d]-x2[d]) > 1e-9*(1+math.Abs(x[d])) {
				t.Fatalf("round-trip dim %d: %g -> %g", d, x[d], x2[d])
			}
		}
	}
}

func TestDenormalizeClampsOutOfRange(t *testing.T) {
	s := testSpace(t)
	x := s.Denormalize([]float64{-2, 7, 1.5})
	if x[0] != 100 || x[1] != 1 || x[2] != 64 {
		t.Fatalf("clamping failed: %v", x)
	}
}

func TestSpaceHelpers(t *testing.T) {
	s := testSpace(t)
	if s.Dim() != 3 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	names := s.Names()
	if names[0] != "qps" || names[2] != "warehouses" {
		t.Fatalf("Names = %v", names)
	}
	if v := s.Values([]float64{1000, 0.5, 8}); v == "" {
		t.Fatal("empty Values string")
	}
	clipped := s.Clip([]float64{-1, 0.5, 2})
	if clipped[0] != 0 || clipped[2] != 1 {
		t.Fatalf("Clip = %v", clipped)
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	rng := stats.NewRNG(63)
	n, dim := 16, 4
	pts := LatinHypercube(n, dim, rng)
	if len(pts) != n {
		t.Fatalf("got %d points", len(pts))
	}
	// Each dimension must have exactly one point per 1/n stratum.
	for d := 0; d < dim; d++ {
		seen := make([]bool, n)
		for _, p := range pts {
			if p[d] < 0 || p[d] >= 1 {
				t.Fatalf("point out of unit cube: %g", p[d])
			}
			bin := int(p[d] * float64(n))
			if seen[bin] {
				t.Fatalf("dim %d: stratum %d hit twice", d, bin)
			}
			seen[bin] = true
		}
	}
	if LatinHypercube(0, 2, rng) != nil || LatinHypercube(2, 0, rng) != nil {
		t.Fatal("degenerate LHS should return nil")
	}
}
