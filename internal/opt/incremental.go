package opt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"datamime/internal/opt/linalg"
)

// The incremental surrogate fit exploits two structural facts about
// fitBestGP's grid search:
//
//  1. Every candidate's covariance is K = varY·(C + nf·I), where C is the
//     unit-variance Matérn-5/2 correlation matrix — only varY changes
//     between iterations. Since chol(s²·A) = s·chol(A) exactly in real
//     arithmetic, one cached factor of C + jitter·I per (lengthScale,
//     noiseFrac) candidate serves every iteration: the per-iteration work
//     is an O(n²) bordered append (linalg.CholeskyAppend) plus an O(n²)
//     scale-and-solve, instead of 24 O(n³) refactorizations.
//  2. CholeskyAppend is bit-identical to refactorizing from scratch at the
//     same jitter, so the cached state is a pure function of the
//     observation sequence — append-by-append and rebuilt-after-resume
//     paths land on the same factor bit for bit, preserving the
//     checkpoint/resume determinism guarantee.
//
// Jitter escalation breaks fact 1's cheap path: once an entry needs more
// than its base jitter, new observations trigger an exact refactorization
// from the base level (so the resulting level stays a function of the
// observation set, not of the path that reached it).

// surrogateEntry caches one hyperparameter candidate's unit-variance
// factorization state.
type surrogateEntry struct {
	ls, nf float64
	chol   *linalg.Matrix // factor of C_n + jitter·I; nil until first sync
	jitter float64        // current diagonal jitter (unit-variance space)
	level  int            // escalation level: jitter = base·10^level
	n      int            // observations covered by chol
	ok     bool           // false when no jitter level factorized at n
}

// surrogateCache holds one entry per hyperparameter grid candidate, in grid
// order.
type surrogateCache struct {
	entries []surrogateEntry
	// Fit diagnostics since the last takeFitStats drain: how many entries
	// took the O(n²) append fast path vs the O(n³) rebuild fallback, and
	// the worst jitter-escalation level seen. Counters live on the cache,
	// not the entries, so constant-liar rollbacks never un-count work done.
	appends  int
	rebuilds int
	maxLevel int
	// lastFit records which grid candidate won the most recent fit, for
	// the DiagnosticsReporter snapshot. Selection metadata only — never
	// read by the fit itself.
	lastFit fitSelection
}

// fitSelection is the winning hyperparameter candidate of one surrogate fit.
type fitSelection struct {
	ls, nf    float64
	signalVar float64
	lml       float64
	level     int
	ok        bool
}

func newSurrogateCache() *surrogateCache {
	c := &surrogateCache{}
	for _, ls := range hyperLengthScales {
		for _, nf := range hyperNoiseFracs {
			c.entries = append(c.entries, surrogateEntry{ls: ls, nf: nf})
		}
	}
	return c
}

// snapshot captures the cache state. Factors are immutable (appends
// allocate), so copying the entry structs is a full snapshot.
func (c *surrogateCache) snapshot() []surrogateEntry {
	return append([]surrogateEntry(nil), c.entries...)
}

// restore rewinds the cache to a snapshot — the constant-liar rollback.
func (c *surrogateCache) restore(s []surrogateEntry) {
	copy(c.entries, s)
}

// sync brings every entry's factor up to the observation set xs, counting
// how each one got there.
func (c *surrogateCache) sync(xs [][]float64) {
	for i := range c.entries {
		switch c.entries[i].sync(xs) {
		case syncAppended:
			c.appends++
		case syncRebuilt:
			c.rebuilds++
		}
		if c.entries[i].level > c.maxLevel {
			c.maxLevel = c.entries[i].level
		}
	}
}

// takeFitStats returns the diagnostics accumulated since the previous call
// and resets them; the optimizer drains them into its Timings window.
func (c *surrogateCache) takeFitStats() (appends, rebuilds, maxLevel int) {
	appends, rebuilds, maxLevel = c.appends, c.rebuilds, c.maxLevel
	c.appends, c.rebuilds, c.maxLevel = 0, 0, 0
	return appends, rebuilds, maxLevel
}

// unitJitter is the base diagonal jitter in unit-variance space: the noise
// fraction itself (FitGP's absolute floor of 1e-10 translates to a relative
// floor here).
func unitJitter(nf float64) float64 {
	if nf < 1e-10 {
		return 1e-10
	}
	return nf
}

// Outcomes of one entry sync, for the cache's fit diagnostics.
const (
	syncNoop = iota
	syncAppended
	syncRebuilt
)

func (e *surrogateEntry) sync(xs [][]float64) int {
	n := len(xs)
	if e.n == n {
		return syncNoop // state for this observation set already decided
	}
	if e.ok && e.level == 0 && e.n == n-1 {
		// Fast path: border the cached factor with the newest observation.
		k := Matern52{Variance: 1, LengthScale: e.ls}
		row := make([]float64, n)
		x := xs[n-1]
		for j := 0; j < n-1; j++ {
			row[j] = k.Eval(x, xs[j])
		}
		row[n-1] = k.Eval(x, x) + e.jitter
		if f, err := linalg.CholeskyAppend(e.chol, row); err == nil {
			e.chol, e.n = f, n
			return syncAppended
		}
	}
	e.rebuild(xs)
	return syncRebuilt
}

// rebuild refactorizes from scratch, escalating jitter from the base level
// until the matrix factorizes (mirroring FitGP's escalation). Starting from
// the base — not the current level — keeps the resulting level a function
// of the observation set alone.
func (e *surrogateEntry) rebuild(xs [][]float64) {
	n := len(xs)
	e.n, e.ok, e.chol = n, false, nil
	if n == 0 {
		return
	}
	k := Matern52{Variance: 1, LengthScale: e.ls}
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := k.Eval(xs[i], xs[j])
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	jitter := unitJitter(e.nf)
	for level := 0; level < 8; level++ {
		mj := m.Clone()
		for i := 0; i < n; i++ {
			mj.Set(i, i, mj.At(i, i)+jitter)
		}
		if f, err := linalg.Cholesky(mj); err == nil {
			e.chol, e.jitter, e.level, e.ok = f, jitter, level, true
			return
		}
		jitter *= 10
	}
}

// scaleFactor returns s·L — the Cholesky factor of s²·A given the factor L
// of A, exact in real arithmetic — which is how one unit-variance factor
// serves every iteration's signal variance.
func scaleFactor(l *linalg.Matrix, s float64) *linalg.Matrix {
	out := l.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// fitSurrogateIncremental is the cache-backed replacement for fitBestGP:
// same grid, same first-best LML selection, but each candidate's factor is
// extended in O(n²) instead of rebuilt in O(n³).
func (c *surrogateCache) fit(xs [][]float64, ys []float64) (*GP, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("opt: surrogate fit needs at least one observation")
	}
	c.sync(xs)
	varY := variance(ys)
	if varY < 1e-12 {
		varY = 1e-12
	}
	sd := math.Sqrt(varY)
	var best *GP
	bestLML := math.Inf(-1)
	c.lastFit = fitSelection{}
	for i := range c.entries {
		e := &c.entries[i]
		if !e.ok {
			continue
		}
		gp, err := GPFromCholesky(
			Matern52{Variance: varY, LengthScale: e.ls}, e.nf*varY,
			xs, ys, scaleFactor(e.chol, sd))
		if err != nil {
			continue
		}
		if lml := gp.LogMarginalLikelihood(); lml > bestLML {
			bestLML = lml
			best = gp
			c.lastFit = fitSelection{
				ls: e.ls, nf: e.nf, signalVar: varY,
				lml: lml, level: e.level, ok: true,
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no GP hyperparameters produced a valid fit")
	}
	return best, nil
}

// argmaxEI scores every candidate's Expected Improvement — in parallel when
// the optimizer has workers — and returns the first index attaining the
// maximum, i.e. exactly the winner the serial consider() loop used to pick.
// Candidates were generated before scoring starts, so the RNG draw order
// and the chosen proposal are identical at any worker count.
func (b *BayesOpt) argmaxEI(gp *GP, cands [][]float64, bestY float64) (int, []float64) {
	if len(cands) == 0 {
		return -1, nil
	}
	eis := make([]float64, len(cands))
	workers := b.workers
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i, x := range cands {
			eis[i] = ExpectedImprovement(gp, x, bestY, b.xi)
		}
	} else {
		const chunk = 64
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					start := int(next.Add(chunk)) - chunk
					if start >= len(cands) {
						return
					}
					end := start + chunk
					if end > len(cands) {
						end = len(cands)
					}
					for i := start; i < end; i++ {
						eis[i] = ExpectedImprovement(gp, cands[i], bestY, b.xi)
					}
				}
			}()
		}
		wg.Wait()
	}
	best := -1
	bestEI := math.Inf(-1)
	for i, ei := range eis {
		if ei > bestEI {
			bestEI = ei
			best = i
		}
	}
	return best, eis
}
