package opt

import (
	"math"
	"testing"
)

// TestTimingsCholeskyCounts: the fit-statistics window counts every factor
// sync — at least one full rebuild (the first fit) plus incremental appends
// as observations accumulate — and TakeTimings drains the window.
func TestTimingsCholeskyCounts(t *testing.T) {
	space, err := NewSpace(
		Param{Name: "a", Lo: 0, Hi: 1},
		Param{Name: "b", Lo: 0, Hi: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBayesOpt(space, BayesOptConfig{Seed: 3, Candidates: 64, InitPoints: 4, Workers: 1})
	var appends, rebuilds int
	for i := 0; i < 12; i++ {
		x := b.Next()
		b.Observe(x, math.Cos(3*x[0])+x[1])
		if tm, ok := b.TakeTimings(); ok {
			appends += tm.CholeskyAppends
			rebuilds += tm.CholeskyRebuilds
			if tm.MaxJitterLevel < 0 {
				t.Errorf("MaxJitterLevel = %d, want >= 0", tm.MaxJitterLevel)
			}
		}
	}
	if rebuilds == 0 {
		t.Error("no Cholesky rebuilds counted (the first fit always rebuilds)")
	}
	if appends == 0 {
		t.Error("no incremental Cholesky appends counted")
	}

	// The window drains: with no proposals since the last take, the next
	// take reports zero factor syncs.
	if tm, ok := b.TakeTimings(); ok && (tm.CholeskyAppends != 0 || tm.CholeskyRebuilds != 0) {
		t.Errorf("drained window still reports appends=%d rebuilds=%d",
			tm.CholeskyAppends, tm.CholeskyRebuilds)
	}
}

// TestTimingsCountersSurviveRollback: constant-liar batch proposals
// snapshot/restore cache entries; the fit counters live on the cache itself,
// so lied-fit work still counts and nothing is un-counted by the rollback.
func TestTimingsCountersSurviveRollback(t *testing.T) {
	space, err := NewSpace(
		Param{Name: "a", Lo: 0, Hi: 1},
		Param{Name: "b", Lo: 0, Hi: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBayesOpt(space, BayesOptConfig{Seed: 3, Candidates: 64, InitPoints: 4, Workers: 1})
	for i := 0; i < 6; i++ {
		x := b.Next()
		b.Observe(x, math.Cos(3*x[0])+x[1])
	}
	b.TakeTimings() // drain the serial-warmup counts
	if got := b.NextBatch(4); len(got) != 4 {
		t.Fatalf("batch size %d", len(got))
	}
	tm, ok := b.TakeTimings()
	if !ok {
		t.Fatal("no timings after a batch proposal")
	}
	if tm.CholeskyAppends+tm.CholeskyRebuilds == 0 {
		t.Error("batch proposal counted no factor syncs despite lied fits")
	}
}
