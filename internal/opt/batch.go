package opt

import "datamime/internal/stats"

// BatchOptimizer is implemented by optimizers that can propose several
// points at once for parallel evaluation. The paper notes that
// "parallelizing the search process is possible by using parallel Bayesian
// optimization" and leaves it to future work (§IV); this implements it.
type BatchOptimizer interface {
	Optimizer
	// NextBatch proposes k points to evaluate concurrently.
	NextBatch(k int) [][]float64
}

// NextBatch implements batch proposals for BayesOpt with the constant-liar
// strategy (Ginsbourger et al.): after selecting each point, pretend it was
// observed at the current best value ("the lie"), refit, and select the
// next. This pushes subsequent proposals away from pending evaluations, so
// a batch explores k distinct promising regions instead of k copies of the
// EI maximizer.
func (b *BayesOpt) NextBatch(k int) [][]float64 {
	if k <= 1 {
		return [][]float64{b.Next()}
	}
	// Initial-design points can be dealt out directly.
	var batch [][]float64
	for len(batch) < k && len(b.pending) > 0 {
		batch = append(batch, b.pending[0])
		b.pending = b.pending[1:]
	}
	if len(batch) == k {
		return batch
	}
	// Constant liar: temporarily append lies to the history, then roll
	// them back. The surrogate cache is snapshotted alongside — factors
	// are immutable, so the snapshot is just the entry structs — and
	// restored with the rollback, discarding lie rows (and any jitter
	// escalation the lies provoked) so the cache state a later Observe
	// extends is exactly the pre-batch state.
	_, bestY, haveBest := b.Best()
	if b.cache == nil {
		b.cache = newSurrogateCache()
	}
	saved := b.cache.snapshot()
	lieCount := 0
	defer func() {
		if lieCount > 0 {
			b.obs = b.obs[:len(b.obs)-lieCount]
			b.cache.restore(saved)
		}
	}()
	for len(batch) < k {
		x := b.Next()
		batch = append(batch, x)
		if haveBest {
			lie := append([]float64(nil), x...)
			b.obs = append(b.obs, Observation{X: lie, Y: bestY})
			lieCount++
		}
	}
	return batch
}

// NextBatch for RandomSearch: independent uniform draws.
func (r *RandomSearch) NextBatch(k int) [][]float64 {
	if k < 1 {
		k = 1
	}
	out := make([][]float64, k)
	for i := range out {
		out[i] = r.Next()
	}
	return out
}

var (
	_ BatchOptimizer = (*BayesOpt)(nil)
	_ BatchOptimizer = (*RandomSearch)(nil)
	_ TimingReporter = (*BayesOpt)(nil)
)

// FallbackBatch adapts any sequential optimizer to batch proposals by
// jittering its single proposal — used when a custom Optimizer does not
// implement BatchOptimizer.
func FallbackBatch(o Optimizer, space *Space, k int, rng *stats.RNG) [][]float64 {
	if bo, ok := o.(BatchOptimizer); ok {
		return bo.NextBatch(k)
	}
	if k < 1 {
		k = 1
	}
	out := make([][]float64, 0, k)
	base := o.Next()
	out = append(out, base)
	for len(out) < k {
		x := make([]float64, len(base))
		for i, v := range base {
			x[i] = stats.Clamp(v+0.05*rng.NormFloat64(), 0, 1)
		}
		out = append(out, x)
	}
	return out
}
