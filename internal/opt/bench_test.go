package opt

import "testing"

// BenchmarkGPFit compares the per-iteration cost of the surrogate fit: the
// incremental cache (one bordered append per hyperparameter candidate, then
// an O(n²) scale-and-solve each) against the from-scratch grid search (24
// O(n³) refactorizations). The incremental case restores a snapshot each
// iteration so every b.N loop performs exactly one append per entry — the
// steady-state cost the search pays per new observation.
func BenchmarkGPFit(b *testing.B) {
	const n, dim = 64, 4
	xs, ys := randomObs(21, n, dim)

	b.Run("incremental", func(b *testing.B) {
		cache := newSurrogateCache()
		cache.sync(xs[:n-1])
		warm := cache.snapshot()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.restore(warm)
			if _, err := cache.fit(xs, ys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fitBestGP(xs, ys); err != nil {
				b.Fatal(err)
			}
		}
	})
}
