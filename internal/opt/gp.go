package opt

import (
	"fmt"
	"math"

	"datamime/internal/opt/linalg"
)

// GP is a Gaussian-process regression model over the unit cube with a
// constant (empirical-mean) prior and homoscedastic observation noise. It
// is refit from scratch on every update — observation counts in a Datamime
// search are small (≤ a few hundred, §IV), so O(n³) refits are cheap
// relative to a single profile evaluation.
type GP struct {
	kernel   Kernel
	noiseVar float64
	xs       [][]float64
	ys       []float64
	mean     float64
	chol     *linalg.Matrix
	alpha    []float64 // K⁻¹(y - mean)
}

// FitGP fits a GP with the given kernel and noise variance to the
// observations. It escalates diagonal jitter until the covariance matrix
// factorizes, which copes with duplicate or near-duplicate evaluation
// points (the optimizer may revisit promising regions).
func FitGP(kernel Kernel, noiseVar float64, xs [][]float64, ys []float64) (*GP, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("opt: FitGP got %d points but %d observations", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("opt: FitGP needs at least one observation")
	}
	n := len(xs)
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)

	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := kernel.Eval(xs[i], xs[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	jitter := noiseVar
	if jitter < 1e-10 {
		jitter = 1e-10
	}
	var chol *linalg.Matrix
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		kj := k.Clone()
		for i := 0; i < n; i++ {
			kj.Set(i, i, kj.At(i, i)+jitter)
		}
		chol, err = linalg.Cholesky(kj)
		if err == nil {
			break
		}
		jitter *= 10
	}
	if err != nil {
		return nil, fmt.Errorf("opt: GP covariance not factorizable even with jitter: %w", err)
	}

	centered := make([]float64, n)
	for i, y := range ys {
		centered[i] = y - mean
	}
	alpha := linalg.CholeskySolve(chol, centered)

	return &GP{
		kernel:   kernel,
		noiseVar: noiseVar,
		xs:       xs,
		ys:       ys,
		mean:     mean,
		chol:     chol,
		alpha:    alpha,
	}, nil
}

// GPFromCholesky builds a GP from a precomputed Cholesky factor of the
// kernel matrix (plus jitter) over xs. It is the fast-path constructor
// behind the optimizer's incremental surrogate cache: the O(n³)
// factorization is skipped and only the O(n²) solve for alpha runs. The
// caller guarantees that chol factors kernel(xs, xs) + jitter·I.
func GPFromCholesky(kernel Kernel, noiseVar float64, xs [][]float64, ys []float64, chol *linalg.Matrix) (*GP, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("opt: GPFromCholesky got %d points but %d observations", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("opt: GPFromCholesky needs at least one observation")
	}
	if chol.Rows != len(xs) || chol.Cols != len(xs) {
		return nil, fmt.Errorf("opt: GPFromCholesky factor is %dx%d for %d points", chol.Rows, chol.Cols, len(xs))
	}
	n := len(xs)
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	centered := make([]float64, n)
	for i, y := range ys {
		centered[i] = y - mean
	}
	alpha := linalg.CholeskySolve(chol, centered)
	return &GP{
		kernel:   kernel,
		noiseVar: noiseVar,
		xs:       xs,
		ys:       ys,
		mean:     mean,
		chol:     chol,
		alpha:    alpha,
	}, nil
}

// Predict returns the posterior mean and variance at x.
func (g *GP) Predict(x []float64) (mu, sigma2 float64) {
	n := len(g.xs)
	kstar := make([]float64, n)
	for i, xi := range g.xs {
		kstar[i] = g.kernel.Eval(x, xi)
	}
	mu = g.mean + linalg.Dot(kstar, g.alpha)
	v := linalg.SolveLower(g.chol, kstar)
	sigma2 = g.kernel.Eval(x, x) - linalg.Dot(v, v)
	if sigma2 < 0 {
		sigma2 = 0
	}
	return mu, sigma2
}

// LogMarginalLikelihood returns the GP's log evidence, used to select
// kernel hyperparameters.
func (g *GP) LogMarginalLikelihood() float64 {
	n := len(g.ys)
	centered := make([]float64, n)
	for i, y := range g.ys {
		centered[i] = y - g.mean
	}
	dataFit := -0.5 * linalg.Dot(centered, g.alpha)
	complexity := -0.5 * linalg.LogDetFromCholesky(g.chol)
	norm := -0.5 * float64(n) * math.Log(2*math.Pi)
	return dataFit + complexity + norm
}

// hyperCandidate is one (lengthScale, signalVar, noiseVar) triple tried
// during hyperparameter selection.
type hyperCandidate struct {
	lengthScale, signalVar, noiseVar float64
}

// hyperLengthScales and hyperNoiseFracs form the hyperparameter grid both
// the from-scratch fit (fitBestGP) and the incremental surrogate cache
// search; the two must iterate the same grid in the same order so their
// first-best tie-breaking matches.
var (
	hyperLengthScales = []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.6}
	hyperNoiseFracs   = []float64{1e-4, 1e-3, 1e-2, 0.1}
)

// fitBestGP selects kernel hyperparameters by maximizing the log marginal
// likelihood over a small log-spaced grid. Gradient-free selection is
// deliberately simple: the grid spans the plausible range for unit-cube
// inputs and normalized objectives, and grid ML selection is robust to the
// noisy objectives Datamime faces. It refactorizes every candidate from
// scratch (O(n³) each); the optimizer's hot path uses the incremental
// surrogate cache instead and keeps this as its reference implementation.
func fitBestGP(xs [][]float64, ys []float64) (*GP, error) {
	varY := variance(ys)
	if varY < 1e-12 {
		varY = 1e-12
	}
	var best *GP
	bestLML := math.Inf(-1)
	for _, ls := range hyperLengthScales {
		for _, nf := range hyperNoiseFracs {
			cand := hyperCandidate{lengthScale: ls, signalVar: varY, noiseVar: nf * varY}
			gp, err := FitGP(Matern52{Variance: cand.signalVar, LengthScale: cand.lengthScale}, cand.noiseVar, xs, ys)
			if err != nil {
				continue
			}
			if lml := gp.LogMarginalLikelihood(); lml > bestLML {
				bestLML = lml
				best = gp
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no GP hyperparameters produced a valid fit")
	}
	return best, nil
}

func variance(ys []float64) float64 {
	if len(ys) < 2 {
		return 0
	}
	var m float64
	for _, y := range ys {
		m += y
	}
	m /= float64(len(ys))
	var s float64
	for _, y := range ys {
		d := y - m
		s += d * d
	}
	return s / float64(len(ys))
}

// ExpectedImprovement returns EI(x) for a minimization problem given the
// incumbent best observed value. xi is the exploration margin.
func ExpectedImprovement(gp *GP, x []float64, best, xi float64) float64 {
	mu, s2 := gp.Predict(x)
	s := math.Sqrt(s2 + gp.noiseVar)
	if s < 1e-12 {
		if imp := best - xi - mu; imp > 0 {
			return imp
		}
		return 0
	}
	z := (best - xi - mu) / s
	return (best-xi-mu)*normCDF(z) + s*normPDF(z)
}
