package linalg

import (
	"math"
	"testing"

	"datamime/internal/stats"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCholeskyKnown(t *testing.T) {
	// A = [[4, 12, -16], [12, 37, -43], [-16, -43, 98]]
	// L = [[2, 0, 0], [6, 1, 0], [-8, 5, 3]]
	a := NewMatrix(3, 3)
	vals := [][]float64{{4, 12, -16}, {12, 37, -43}, {-16, -43, 98}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}}
	for i := range want {
		for j := range want[i] {
			if !almostEqual(l.At(i, j), want[i][j], 1e-10) {
				t.Fatalf("L[%d][%d] = %g, want %g", i, j, l.At(i, j), want[i][j])
			}
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := stats.NewRNG(51)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.IntN(10)
		// Build SPD matrix A = B·Bᵀ + n·I.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.Range(-1, 1)
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += b.At(i, k) * b.At(j, k)
				}
				if i == j {
					s += float64(n)
				}
				a.Set(i, j, s)
			}
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		// Verify L·Lᵀ == A.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if !almostEqual(s, a.At(i, j), 1e-8) {
					t.Fatalf("trial %d: (L·Lᵀ)[%d][%d] = %g, want %g", trial, i, j, s, a.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, -1 => not PD
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
	b := NewMatrix(2, 3)
	if _, err := Cholesky(b); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := stats.NewRNG(52)
	n := 6
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.Range(-1, 1)
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		a.Set(i, i, a.At(i, i)+float64(n)+1)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.Range(-3, 3)
	}
	b := a.MulVec(xTrue)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := CholeskySolve(l, b)
	for i := range x {
		if !almostEqual(x[i], xTrue[i], 1e-8) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestTriangularSolves(t *testing.T) {
	l := NewMatrix(3, 3)
	l.Set(0, 0, 2)
	l.Set(1, 0, 1)
	l.Set(1, 1, 3)
	l.Set(2, 0, 4)
	l.Set(2, 1, 5)
	l.Set(2, 2, 6)
	y := SolveLower(l, []float64{2, 5, 32})
	want := []float64{1, 4.0 / 3, 32.0 / 9}
	for i := range want {
		if !almostEqual(y[i], want[i], 1e-12) {
			t.Fatalf("SolveLower[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	// Round-trip: SolveUpperT(L, SolveLower(L, A·x)) == x for A = L·Lᵀ.
	xTrue := []float64{1, -2, 0.5}
	// Compute b = L·(Lᵀ·x).
	lt := make([]float64, 3)
	for i := 0; i < 3; i++ {
		for k := i; k < 3; k++ {
			lt[i] += l.At(k, i) * xTrue[k]
		}
	}
	b := l.MulVec(lt)
	x := CholeskySolve(l, b)
	for i := range xTrue {
		if !almostEqual(x[i], xTrue[i], 1e-10) {
			t.Fatalf("round-trip x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestLogDetFromCholesky(t *testing.T) {
	// A = diag(4, 9): |A| = 36, log|A| = log 36.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 9)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := LogDetFromCholesky(l); !almostEqual(got, math.Log(36), 1e-12) {
		t.Fatalf("logdet = %g, want %g", got, math.Log(36))
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	c := m.Clone()
	m.Set(1, 2, 0)
	if c.At(1, 2) != 7 {
		t.Fatal("Clone aliases data")
	}
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %g", d)
	}
	v := NewMatrix(2, 2)
	v.Set(0, 0, 1)
	v.Set(0, 1, 2)
	v.Set(1, 0, 3)
	v.Set(1, 1, 4)
	out := v.MulVec([]float64{1, 1})
	if out[0] != 3 || out[1] != 7 {
		t.Fatalf("MulVec = %v", out)
	}
}

func TestPanics(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	check("NewMatrix", func() { NewMatrix(0, 1) })
	check("MulVec", func() { NewMatrix(2, 2).MulVec([]float64{1}) })
	check("Dot", func() { Dot([]float64{1}, []float64{1, 2}) })
	check("SolveLower", func() { SolveLower(NewMatrix(2, 2), []float64{1}) })
	check("SolveUpperT", func() { SolveUpperT(NewMatrix(2, 2), []float64{1}) })
}
