// Package linalg provides the small dense linear-algebra kernel the
// Bayesian optimizer needs: row-major matrices, Cholesky factorization, and
// triangular solves. The reproduction bands note that Go lacks mainstream
// optimization/statistics libraries, so this is implemented from scratch on
// the standard library only.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix. It panics on non-positive
// dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes m · x. It panics if len(x) != Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ. A must be
// square and symmetric positive definite; the strict upper triangle of A is
// ignored. Returns ErrNotPositiveDefinite when a pivot is non-positive,
// which the GP uses to trigger jitter escalation.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskyAppend extends a Cholesky factorization by one bordered row:
// given the lower-triangular factor L of an n×n matrix A and row holding
// (A_{n,0}, …, A_{n,n}) including the new diagonal, it returns the factor
// of the (n+1)×(n+1) bordered matrix in O(n²) instead of the O(n³) full
// refactorization. The new row is computed with exactly the recurrence
// Cholesky uses, so the result is bit-identical to factorizing the bordered
// matrix from scratch; the input factor is never modified (the returned
// matrix is fresh), which lets callers keep old factors as rollback
// snapshots. Returns ErrNotPositiveDefinite when the Schur complement of
// the new diagonal is non-positive — the caller's cue to fall back to a
// full refactorization with escalated jitter.
func CholeskyAppend(l *Matrix, row []float64) (*Matrix, error) {
	n := l.Rows
	if l.Cols != n {
		return nil, fmt.Errorf("linalg: CholeskyAppend of non-square %dx%d factor", l.Rows, l.Cols)
	}
	if len(row) != n+1 {
		return nil, fmt.Errorf("linalg: CholeskyAppend row has %d entries, want %d", len(row), n+1)
	}
	out := NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(out.Data[i*(n+1):i*(n+1)+i+1], l.Data[i*n:i*n+i+1])
	}
	for j := 0; j <= n; j++ {
		sum := row[j]
		for k := 0; k < j; k++ {
			sum -= out.At(n, k) * out.At(j, k)
		}
		if j == n {
			if sum <= 0 || math.IsNaN(sum) {
				return nil, ErrNotPositiveDefinite
			}
			out.Set(n, n, math.Sqrt(sum))
		} else {
			out.Set(n, j, sum/out.At(j, j))
		}
	}
	return out, nil
}

// SolveLower solves L·y = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveLower dimension mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	return y
}

// SolveUpperT solves Lᵀ·x = y for lower-triangular L (i.e., an upper-
// triangular solve against the transpose) by back substitution.
func SolveUpperT(l *Matrix, y []float64) []float64 {
	n := l.Rows
	if len(y) != n {
		panic("linalg: SolveUpperT dimension mismatch")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// CholeskySolve solves A·x = b given the Cholesky factor L of A.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	return SolveUpperT(l, SolveLower(l, b))
}

// LogDetFromCholesky returns log|A| = 2·Σ log L_ii given A's Cholesky
// factor L.
func LogDetFromCholesky(l *Matrix) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot dimension mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
