package opt

import (
	"math"
	"runtime"
	"time"

	"datamime/internal/stats"
)

// Optimizer is the sequential black-box minimization interface Datamime's
// search loop drives: ask for the next point, evaluate the expensive
// objective (generate dataset → run benchmark → profile → EMD), then report
// the observation back (§III-C).
//
// Points are in the normalized unit cube; callers denormalize through the
// Space.
type Optimizer interface {
	// Next proposes the next unit-cube point to evaluate.
	Next() []float64
	// Observe records the objective value measured at x.
	Observe(x []float64, y float64)
	// Best returns the incumbent: the lowest-error point observed so far.
	// ok is false before any observation.
	Best() (x []float64, y float64, ok bool)
	// Name identifies the optimizer for experiment output.
	Name() string
}

// Timings aggregates where an optimizer's proposal time went, for
// telemetry: GP surrogate fitting versus acquisition-function maximization.
// Durations accumulate across proposals until TakeTimings resets them, so
// one read covers a whole batch proposal.
type Timings struct {
	// GPFit is the time spent fitting the GP surrogate.
	GPFit time.Duration
	// Acquisition is the time spent maximizing Expected Improvement.
	Acquisition time.Duration
	// Proposals counts surrogate-backed proposals in the window
	// (initial-design points cost neither phase and are not counted).
	Proposals int
	// CholeskyAppends and CholeskyRebuilds count how surrogate factors were
	// brought up to date in the window: O(n²) incremental bordered appends
	// versus O(n³) refactorization fallbacks. A rising rebuild share means
	// the fast path is being defeated (jitter escalation or failed appends).
	CholeskyAppends  int
	CholeskyRebuilds int
	// MaxJitterLevel is the worst jitter-escalation level any hyperparameter
	// candidate needed in the window (0 = all factorized at base jitter) —
	// a GP conditioning diagnostic.
	MaxJitterLevel int
}

// TimingReporter is implemented by optimizers that track internal phase
// timings. Timing collection must not perturb the proposal stream: it only
// reads the clock around existing work.
type TimingReporter interface {
	// TakeTimings returns the accumulation since the previous call and
	// resets it; ok is false when no surrogate-backed proposal ran.
	TakeTimings() (t Timings, ok bool)
}

// Observation is one (point, value) pair in an optimizer's history.
type Observation struct {
	X []float64
	Y float64
}

// history provides the shared bookkeeping all optimizers need.
type history struct {
	obs   []Observation
	bestX []float64
	bestY float64
}

func (h *history) Observe(x []float64, y float64) {
	cp := make([]float64, len(x))
	copy(cp, x)
	h.obs = append(h.obs, Observation{X: cp, Y: y})
	if len(h.obs) == 1 || y < h.bestY {
		h.bestY = y
		h.bestX = cp
	}
}

func (h *history) Best() ([]float64, float64, bool) {
	if len(h.obs) == 0 {
		return nil, 0, false
	}
	return h.bestX, h.bestY, true
}

// Trace returns the full observation history (copies are not made; callers
// must not mutate).
func (h *history) Trace() []Observation { return h.obs }

// BayesOpt is the paper's optimizer: GP surrogate + Expected Improvement.
// The first InitPoints proposals come from a Latin-hypercube design; after
// that, each proposal maximizes EI over a random candidate set refined with
// local perturbations around the incumbent and the best candidate.
type BayesOpt struct {
	history
	space      *Space
	rng        *stats.RNG
	initPoints int
	candidates int
	xi         float64
	workers    int
	pending    [][]float64
	timings    Timings
	cache      *surrogateCache
	// Pending search-health snapshot for DiagnosticsReporter: the first
	// surrogate-backed proposal since the last TakeDiagnostics drain.
	diag   Diagnostics
	diagOK bool
}

// BayesOptConfig tunes the optimizer. Zero values select defaults.
type BayesOptConfig struct {
	// InitPoints is the size of the initial Latin-hypercube design
	// (default: max(5, 2·dim)).
	InitPoints int
	// Candidates is the number of acquisition candidates per step
	// (default 512).
	Candidates int
	// Xi is the EI exploration margin (default 0.01).
	Xi float64
	// Seed seeds the proposal RNG.
	Seed uint64
	// Workers bounds concurrent acquisition-candidate scoring (default
	// GOMAXPROCS; 1 runs serially). The proposal stream is identical at
	// any worker count: candidates are generated sequentially in a fixed
	// RNG order, scored into an indexed slice, and reduced by a serial
	// first-index argmax.
	Workers int
}

// NewBayesOpt builds a Bayesian optimizer over space.
func NewBayesOpt(space *Space, cfg BayesOptConfig) *BayesOpt {
	if cfg.InitPoints <= 0 {
		cfg.InitPoints = 2 * space.Dim()
		if cfg.InitPoints < 5 {
			cfg.InitPoints = 5
		}
	}
	if cfg.Candidates <= 0 {
		cfg.Candidates = 512
	}
	if cfg.Xi <= 0 {
		cfg.Xi = 0.01
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rng := stats.NewRNG(stats.HashSeed(cfg.Seed, "bayesopt"))
	b := &BayesOpt{
		space:      space,
		rng:        rng,
		initPoints: cfg.InitPoints,
		candidates: cfg.Candidates,
		xi:         cfg.Xi,
		workers:    cfg.Workers,
	}
	b.pending = LatinHypercube(cfg.InitPoints, space.Dim(), rng)
	return b
}

// Name returns "bayesopt".
func (b *BayesOpt) Name() string { return "bayesopt" }

// Next proposes the next point: initial-design points first, then the EI
// maximizer over the surrogate.
func (b *BayesOpt) Next() []float64 {
	if len(b.pending) > 0 {
		x := b.pending[0]
		b.pending = b.pending[1:]
		return x
	}
	fitStart := time.Now()
	gp, err := b.fitSurrogate()
	b.timings.GPFit += time.Since(fitStart)
	b.timings.Proposals++
	if b.cache != nil {
		app, reb, lvl := b.cache.takeFitStats()
		b.timings.CholeskyAppends += app
		b.timings.CholeskyRebuilds += reb
		if lvl > b.timings.MaxJitterLevel {
			b.timings.MaxJitterLevel = lvl
		}
	}
	if err != nil {
		// Surrogate fit failed (degenerate observations); fall back to
		// random exploration rather than aborting the search.
		return b.space.Sample(b.rng)
	}
	acqStart := time.Now()
	defer func() { b.timings.Acquisition += time.Since(acqStart) }()
	_, bestY, _ := b.Best()

	// Candidate generation stays sequential so the RNG draw order never
	// depends on the worker count; only scoring fans out.
	radii := []float64{0.2, 0.05, 0.01}
	cands := make([][]float64, 0, b.candidates+3*len(radii)*(b.candidates/8))
	// Global random candidates.
	for i := 0; i < b.candidates; i++ {
		cands = append(cands, b.space.Sample(b.rng))
	}
	// Local candidates around the incumbent and previously-observed good
	// points, at shrinking perturbation radii: EI surfaces are often peaked
	// near the incumbent when the objective is locally improvable.
	for _, anchor := range b.topAnchors(3) {
		for _, radius := range radii {
			for i := 0; i < b.candidates/8; i++ {
				cands = append(cands, b.perturb(anchor, radius))
			}
		}
	}
	if idx, eis := b.argmaxEI(gp, cands, bestY); idx >= 0 {
		// Snapshot search health from state this proposal already
		// materialized (factor, alpha, EI pool) — read-only, so the
		// proposal stream is unchanged whether anyone drains it or not.
		b.captureDiagnostics(gp, eis, idx, cands[idx], bestY)
		return cands[idx]
	}
	return b.space.Sample(b.rng)
}

// TakeTimings implements TimingReporter.
func (b *BayesOpt) TakeTimings() (Timings, bool) {
	t := b.timings
	b.timings = Timings{}
	return t, t.Proposals > 0
}

// fitSurrogate fits the GP to the normalized observation history via the
// incremental surrogate cache (see incremental.go): each hyperparameter
// candidate's Cholesky factor is extended by one bordered row per new
// observation instead of refactorized from scratch. The objective is
// standardized implicitly by the GP's empirical-mean prior and the
// ML-selected signal variance.
func (b *BayesOpt) fitSurrogate() (*GP, error) {
	xs := make([][]float64, len(b.obs))
	ys := make([]float64, len(b.obs))
	for i, o := range b.obs {
		xs[i] = o.X
		ys[i] = o.Y
	}
	if b.cache == nil {
		b.cache = newSurrogateCache()
	}
	return b.cache.fit(xs, ys)
}

// topAnchors returns the k lowest-error observed points.
func (b *BayesOpt) topAnchors(k int) [][]float64 {
	obs := make([]Observation, len(b.obs))
	copy(obs, b.obs)
	// Selection of the k smallest by simple partial sort (k is tiny).
	for i := 0; i < k && i < len(obs); i++ {
		minIdx := i
		for j := i + 1; j < len(obs); j++ {
			if obs[j].Y < obs[minIdx].Y {
				minIdx = j
			}
		}
		obs[i], obs[minIdx] = obs[minIdx], obs[i]
	}
	if k > len(obs) {
		k = len(obs)
	}
	anchors := make([][]float64, k)
	for i := 0; i < k; i++ {
		anchors[i] = obs[i].X
	}
	return anchors
}

// perturb returns a Gaussian perturbation of x with the given radius,
// clipped to the unit cube.
func (b *BayesOpt) perturb(x []float64, radius float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = stats.Clamp(v+radius*b.rng.NormFloat64(), 0, 1)
	}
	return out
}

// RandomSearch is the naive baseline: uniform sampling of the space.
type RandomSearch struct {
	history
	space *Space
	rng   *stats.RNG
}

// NewRandomSearch builds a random-search optimizer.
func NewRandomSearch(space *Space, seed uint64) *RandomSearch {
	return &RandomSearch{space: space, rng: stats.NewRNG(stats.HashSeed(seed, "random-search"))}
}

// Name returns "random".
func (r *RandomSearch) Name() string { return "random" }

// Next returns a uniform point.
func (r *RandomSearch) Next() []float64 { return r.space.Sample(r.rng) }

// Anneal is a simulated-annealing baseline. The paper rules out global
// optimizers like SA for the real search because they need many function
// evaluations (§III-C); including it lets the ablation benches demonstrate
// exactly that.
type Anneal struct {
	history
	space   *Space
	rng     *stats.RNG
	current []float64
	curY    float64
	temp    float64
	cooling float64
}

// NewAnneal builds a simulated-annealing optimizer with initial temperature
// temp and geometric cooling factor cooling in (0, 1).
func NewAnneal(space *Space, seed uint64, temp, cooling float64) *Anneal {
	if temp <= 0 {
		temp = 1.0
	}
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.95
	}
	return &Anneal{
		space:   space,
		rng:     stats.NewRNG(stats.HashSeed(seed, "anneal")),
		temp:    temp,
		cooling: cooling,
	}
}

// Name returns "anneal".
func (a *Anneal) Name() string { return "anneal" }

// Next proposes a neighbor of the current state (or the initial random
// state before any observation).
func (a *Anneal) Next() []float64 {
	if a.current == nil {
		return a.space.Sample(a.rng)
	}
	radius := 0.3*a.temp + 0.02
	x := make([]float64, len(a.current))
	for i, v := range a.current {
		x[i] = stats.Clamp(v+radius*a.rng.NormFloat64(), 0, 1)
	}
	return x
}

// Observe applies the Metropolis acceptance rule and cools the temperature.
func (a *Anneal) Observe(x []float64, y float64) {
	a.history.Observe(x, y)
	if a.current == nil {
		a.current = append([]float64(nil), x...)
		a.curY = y
		return
	}
	accept := y <= a.curY
	if !accept {
		p := math.Exp(-(y - a.curY) / math.Max(a.temp, 1e-9))
		accept = a.rng.Bool(p)
	}
	if accept {
		a.current = append([]float64(nil), x...)
		a.curY = y
	}
	a.temp *= a.cooling
}
