// Package opt implements the black-box optimization layer of Datamime
// (§III-C): a Gaussian-process Bayesian optimizer with an Expected-
// Improvement acquisition function, plus the baseline optimizers (random
// search, simulated annealing) used for ablations. The objective — the
// summed EMD between a benchmark's and the target's performance profiles —
// is black-box, expensive, and noisy, which is exactly the regime Bayesian
// optimization targets.
package opt

import (
	"fmt"

	"datamime/internal/stats"
)

// Param describes one dataset-generator parameter: a bounded scalar that
// may be integer-valued (e.g., number of TPC-C warehouses) or continuous
// (e.g., Zipfian skew). Log-scaled parameters search multiplicative ranges
// (e.g., QPS from 1e3 to 1e6) uniformly in log space.
type Param struct {
	Name    string
	Lo, Hi  float64
	Integer bool
	Log     bool
}

// Space is an ordered set of parameters defining the search domain. All
// optimizers work in the normalized unit hypercube [0,1]^d and convert to
// parameter units at evaluation time, following standard BO practice.
type Space struct {
	Params []Param
}

// NewSpace validates and wraps a parameter list. Each parameter must have
// Lo < Hi (Lo > 0 for log-scaled parameters) and a unique name.
func NewSpace(params ...Param) (*Space, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("opt: space needs at least one parameter")
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if p.Name == "" {
			return nil, fmt.Errorf("opt: parameter with empty name")
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("opt: duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		if !(p.Lo < p.Hi) {
			return nil, fmt.Errorf("opt: parameter %q has empty range [%g, %g]", p.Name, p.Lo, p.Hi)
		}
		if p.Log && p.Lo <= 0 {
			return nil, fmt.Errorf("opt: log-scaled parameter %q needs positive lower bound", p.Name)
		}
	}
	return &Space{Params: params}, nil
}

// MustSpace is NewSpace that panics on error; for statically-known spaces.
func MustSpace(params ...Param) *Space {
	s, err := NewSpace(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the dimensionality of the space.
func (s *Space) Dim() int { return len(s.Params) }

// Names returns the parameter names in order.
func (s *Space) Names() []string {
	names := make([]string, len(s.Params))
	for i, p := range s.Params {
		names[i] = p.Name
	}
	return names
}

// Denormalize maps a unit-cube point to parameter units, applying log
// scaling and integer rounding as declared.
func (s *Space) Denormalize(u []float64) []float64 {
	if len(u) != len(s.Params) {
		panic("opt: Denormalize dimension mismatch")
	}
	x := make([]float64, len(u))
	for i, p := range s.Params {
		t := stats.Clamp(u[i], 0, 1)
		var v float64
		if p.Log {
			v = p.Lo * pow(p.Hi/p.Lo, t)
		} else {
			v = p.Lo + t*(p.Hi-p.Lo)
		}
		if p.Integer {
			v = roundClamp(v, p.Lo, p.Hi)
		}
		x[i] = v
	}
	return x
}

// Normalize maps parameter units back into the unit cube.
func (s *Space) Normalize(x []float64) []float64 {
	if len(x) != len(s.Params) {
		panic("opt: Normalize dimension mismatch")
	}
	u := make([]float64, len(x))
	for i, p := range s.Params {
		v := stats.Clamp(x[i], p.Lo, p.Hi)
		if p.Log {
			u[i] = log(v/p.Lo) / log(p.Hi/p.Lo)
		} else {
			u[i] = (v - p.Lo) / (p.Hi - p.Lo)
		}
	}
	return u
}

// Sample draws a uniform point in the unit cube.
func (s *Space) Sample(rng *stats.RNG) []float64 {
	u := make([]float64, s.Dim())
	for i := range u {
		u[i] = rng.Float64()
	}
	return u
}

// Clip limits a unit-cube point into [0, 1]^d in place and returns it.
func (s *Space) Clip(u []float64) []float64 {
	for i := range u {
		u[i] = stats.Clamp(u[i], 0, 1)
	}
	return u
}

// Values renders a denormalized point as name=value pairs for logging.
func (s *Space) Values(x []float64) string {
	out := ""
	for i, p := range s.Params {
		if i > 0 {
			out += " "
		}
		if p.Integer {
			out += fmt.Sprintf("%s=%d", p.Name, int(x[i]))
		} else {
			out += fmt.Sprintf("%s=%.4g", p.Name, x[i])
		}
	}
	return out
}

// LatinHypercube generates n space-filling points in the unit cube: each
// dimension is stratified into n bins and the bin order is shuffled
// independently per dimension. Used to seed the GP with a well-spread
// initial design.
func LatinHypercube(n, dim int, rng *stats.RNG) [][]float64 {
	if n <= 0 || dim <= 0 {
		return nil
	}
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
	}
	for d := 0; d < dim; d++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			pts[i][d] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return pts
}
