package profile

import (
	"reflect"
	"testing"

	"datamime/internal/telemetry"
)

// TestParallelTelemetrySimSpans: the instrumented sweep emits one
// profile.sim span per simulator run, each stamped with its worker index and
// way allocation, and budget waits surface as budget.wait spans — without
// perturbing the profile.
func TestParallelTelemetrySimSpans(t *testing.T) {
	b := kvBenchmark(256, 60_000)
	want, err := fastProfiler().Profile(b, 7)
	if err != nil {
		t.Fatal(err)
	}

	var collector telemetry.Collector
	pr := fastProfiler()
	pr.Workers = 3
	pr.disableWorkerClamp = true // the span assertions need a real pool even on 1-CPU hosts
	pr.Budget = NewBudget(2)
	pr.Telemetry = telemetry.New(telemetry.Options{OnEvent: collector.Record})
	got, err := pr.Profile(b, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("instrumented parallel profile diverged from uninstrumented serial")
	}

	simRuns, waits := 0, 0
	workers := map[int]bool{}
	for _, ev := range collector.Events() {
		if ev.Type != telemetry.TypeSpan {
			continue
		}
		switch ev.Phase {
		case telemetry.PhaseSimRun:
			simRuns++
			w := int(ev.Attrs[telemetry.AttrWorker])
			if w < 0 || w >= pr.Workers {
				t.Errorf("sim span worker attr %d outside pool [0,%d)", w, pr.Workers)
			}
			workers[w] = true
			if _, ok := ev.Attrs[telemetry.AttrWays]; !ok {
				t.Error("sim span missing ways attr")
			}
			if ev.DurNS < 0 {
				t.Error("sim span with negative duration")
			}
		case telemetry.PhaseBudgetWait:
			waits++
		}
	}
	if simRuns == 0 {
		t.Fatal("no profile.sim spans recorded")
	}
	if waits != simRuns {
		t.Errorf("budget.wait spans = %d, want one per sim run (%d)", waits, simRuns)
	}
	if len(workers) < 2 {
		t.Errorf("sim spans used %d distinct workers, want >= 2", len(workers))
	}
}

// TestSerialTelemetrySimSpans: the serial path (Workers <= 1) instruments
// too, attributing every run to worker 0, and skips budget.wait spans when
// no budget is set.
func TestSerialTelemetrySimSpans(t *testing.T) {
	var collector telemetry.Collector
	pr := fastProfiler()
	pr.Telemetry = telemetry.New(telemetry.Options{OnEvent: collector.Record})
	if _, err := pr.Profile(kvBenchmark(256, 60_000), 7); err != nil {
		t.Fatal(err)
	}
	simRuns := 0
	for _, ev := range collector.Events() {
		if ev.Type != telemetry.TypeSpan {
			continue
		}
		switch ev.Phase {
		case telemetry.PhaseSimRun:
			simRuns++
			if w := ev.Attrs[telemetry.AttrWorker]; w != 0 {
				t.Errorf("serial sim span on worker %g, want 0", w)
			}
		case telemetry.PhaseBudgetWait:
			t.Error("budget.wait span without a budget")
		}
	}
	if simRuns == 0 {
		t.Fatal("no profile.sim spans recorded on the serial path")
	}
}
