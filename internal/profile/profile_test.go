package profile

import (
	"testing"

	"datamime/internal/apps/kvstore"
	"datamime/internal/sim"
	"datamime/internal/stats"
	"datamime/internal/trace"
	"datamime/internal/workload"
)

func kvBenchmark(valMean float64, qps float64) workload.Benchmark {
	return workload.Benchmark{
		Name: "kv-profile-test",
		QPS:  qps,
		NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
			return kvstore.New(kvstore.Config{
				NumKeys:        8000,
				KeySize:        stats.Normal{Mu: 24, Sigma: 4, Min: 8},
				ValueSize:      stats.Normal{Mu: valMean, Sigma: valMean / 8, Min: 16},
				GetRatio:       0.9,
				PopularitySkew: 0.6,
			}, layout, seed)
		},
	}
}

// fastProfiler keeps unit tests quick.
func fastProfiler() *Profiler {
	p := New(sim.Broadwell())
	p.WindowCycles = 150_000
	p.Windows = 12
	p.WarmupWindows = 2
	p.CurveWindows = 3
	p.CurvePoints = 4
	return p
}

func TestProfileCollectsAllMetrics(t *testing.T) {
	p, err := fastProfiler().Profile(kvBenchmark(256, 60_000), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Benchmark == "" || p.Machine != "broadwell" {
		t.Fatalf("profile identity %q/%q", p.Benchmark, p.Machine)
	}
	for _, id := range ScalarMetrics {
		samples := p.Samples[id]
		// Counter metrics come from busy-cycle windows (exactly Windows of
		// them); utilization and bandwidth come from wall-clock windows, of
		// which a lightly-loaded server accumulates at least as many.
		if id == MetricCPUUtil || id == MetricMemBW {
			if len(samples) < 12 {
				t.Fatalf("metric %s has %d wall samples, want >= 12", id, len(samples))
			}
			continue
		}
		if len(samples) != 12 {
			t.Fatalf("metric %s has %d samples, want 12", id, len(samples))
		}
	}
	if p.Mean(MetricIPC) <= 0 || p.Mean(MetricIPC) > 6 {
		t.Fatalf("implausible IPC %g", p.Mean(MetricIPC))
	}
	if u := p.Mean(MetricCPUUtil); u <= 0 || u > 1 {
		t.Fatalf("implausible CPU util %g", u)
	}
	if p.Requests == 0 {
		t.Fatal("no requests recorded")
	}
}

func TestProfileCurveShape(t *testing.T) {
	p, err := fastProfiler().Profile(kvBenchmark(512, 80_000), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Curve) != 4 {
		t.Fatalf("curve has %d points", len(p.Curve))
	}
	if p.Curve[0].Ways != 1 || p.Curve[len(p.Curve)-1].Ways != 12 {
		t.Fatalf("curve endpoints: %+v", p.Curve)
	}
	// More cache must not make LLC MPKI dramatically worse; typically it
	// improves monotonically. Allow small noise.
	first, last := p.Curve[0].LLCMPKI, p.Curve[len(p.Curve)-1].LLCMPKI
	if last > first*1.2 {
		t.Fatalf("LLC MPKI rose with cache size: %g -> %g", first, last)
	}
	// IPC should not collapse with more cache.
	if p.Curve[len(p.Curve)-1].IPC < p.Curve[0].IPC*0.8 {
		t.Fatalf("IPC fell with cache size: %g -> %g",
			p.Curve[0].IPC, p.Curve[len(p.Curve)-1].IPC)
	}
	// Curve accessors.
	if len(p.IPCCurve()) != 4 || len(p.LLCCurve()) != 4 {
		t.Fatal("curve accessors broken")
	}
}

func TestWarmedCurveHasShape(t *testing.T) {
	// With a skewed, larger-than-LLC working set and dataset warming, the
	// cache-sensitivity curve must actually slope: more cache -> fewer LLC
	// misses, with most of the benefit by the time the hot set fits
	// (Fig. 7's memcached shape).
	b := workload.Benchmark{
		Name: "kv-curve",
		QPS:  120_000,
		NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
			return kvstore.New(kvstore.Config{
				NumKeys:        60_000,
				KeySize:        stats.Normal{Mu: 24, Sigma: 6, Min: 8},
				ValueSize:      stats.Normal{Mu: 400, Sigma: 80, Min: 16},
				GetRatio:       0.95,
				PopularitySkew: 1.0,
			}, layout, seed)
		},
	}
	pr := New(sim.Broadwell())
	pr.WindowCycles = 200_000
	pr.Windows = 8
	pr.WarmupWindows = 2
	pr.CurveWindows = 4
	pr.CurvePoints = 4
	p, err := pr.Profile(b, 5)
	if err != nil {
		t.Fatal(err)
	}
	first := p.Curve[0].LLCMPKI
	last := p.Curve[len(p.Curve)-1].LLCMPKI
	if last >= first*0.85 {
		t.Fatalf("curve too flat: %g MPKI at 1 way vs %g at full cache (%v)",
			first, last, p.LLCCurve())
	}
	if p.Curve[len(p.Curve)-1].IPC <= p.Curve[0].IPC {
		t.Fatalf("IPC curve does not rise with cache: %v", p.IPCCurve())
	}
}

func TestDatasetChangesProfile(t *testing.T) {
	pr := fastProfiler()
	small, err := pr.Profile(kvBenchmark(64, 60_000), 3)
	if err != nil {
		t.Fatal(err)
	}
	big, err := pr.Profile(kvBenchmark(3000, 60_000), 3)
	if err != nil {
		t.Fatal(err)
	}
	if big.Mean(MetricMemBW) <= small.Mean(MetricMemBW) {
		t.Fatalf("value size did not raise memory bandwidth: %g vs %g",
			small.Mean(MetricMemBW), big.Mean(MetricMemBW))
	}
	if big.Mean(MetricLLC) <= small.Mean(MetricLLC) {
		t.Fatalf("value size did not raise LLC MPKI: %g vs %g",
			small.Mean(MetricLLC), big.Mean(MetricLLC))
	}
}

func TestProfileDeterministicGivenSeed(t *testing.T) {
	pr := fastProfiler()
	a, err := pr.Profile(kvBenchmark(256, 60_000), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pr.Profile(kvBenchmark(256, 60_000), 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ScalarMetrics {
		av, bv := a.Samples[id], b.Samples[id]
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("metric %s sample %d diverged: %g vs %g", id, i, av[i], bv[i])
			}
		}
	}
}

func TestProfileSeedChangesNoise(t *testing.T) {
	pr := fastProfiler()
	a, _ := pr.Profile(kvBenchmark(256, 60_000), 10)
	b, _ := pr.Profile(kvBenchmark(256, 60_000), 11)
	same := true
	for i, v := range a.Samples[MetricIPC] {
		if v != b.Samples[MetricIPC][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical profiles (no measurement noise)")
	}
}

func TestSkipCurves(t *testing.T) {
	pr := fastProfiler()
	pr.SkipCurves = true
	p, err := pr.Profile(kvBenchmark(256, 60_000), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Curve) != 0 {
		t.Fatalf("SkipCurves left %d curve points", len(p.Curve))
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	pr := fastProfiler()
	p, err := pr.Profile(kvBenchmark(256, 60_000), 5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Benchmark != p.Benchmark || len(q.Curve) != len(p.Curve) {
		t.Fatal("round-trip lost fields")
	}
	for _, id := range ScalarMetrics {
		if len(q.Samples[id]) != len(p.Samples[id]) {
			t.Fatalf("metric %s lost samples", id)
		}
	}
	if _, err := DecodeJSON([]byte("{bad")); err == nil {
		t.Fatal("invalid JSON accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	pr := fastProfiler()
	pr.Windows = 0
	if _, err := pr.Profile(kvBenchmark(256, 60_000), 1); err == nil {
		t.Fatal("invalid profiler accepted")
	}
	pr2 := fastProfiler()
	if _, err := pr2.Profile(workload.Benchmark{}, 1); err == nil {
		t.Fatal("invalid benchmark accepted")
	}
}

func TestCurveWaysSpread(t *testing.T) {
	pr := New(sim.Broadwell())
	ways := pr.curveWays()
	if len(ways) != 12 || ways[0] != 1 || ways[11] != 12 {
		t.Fatalf("default Broadwell curve ways = %v", ways)
	}
	pr.CurvePoints = 3
	ways = pr.curveWays()
	if len(ways) != 3 || ways[0] != 1 || ways[2] != 12 {
		t.Fatalf("3-point curve ways = %v", ways)
	}
	// Zen2 has 16 ways; the sweep is capped at 12 points like the paper.
	prz := New(sim.Zen2())
	if w := prz.curveWays(); len(w) > 12 {
		t.Fatalf("Zen2 curve has %d points", len(w))
	}
	// Silvermont's LLC is its 8-way L2.
	prs := New(sim.Silvermont())
	if w := prs.curveWays(); len(w) != 8 {
		t.Fatalf("Silvermont curve ways = %v", w)
	}
}

func TestFromSamplePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown metric did not panic")
		}
	}()
	FromSample(sim.WindowSample{}, MetricID("bogus"))
}
