package profile

import (
	"fmt"
	"testing"
)

// BenchmarkProfilerSweep measures one full profile — the main run plus the
// way-curve sweep — at different worker counts. This is the CI-gated
// benchmark: on a multi-core runner workers=4 must beat workers=1 by ~2×
// (the sweep is embarrassingly parallel) and workers=2 sits in between; on a
// single core the pool is clamped and all three are within noise. The
// profile itself is identical at every worker count. disableWorkerClamp is
// deliberately NOT set: the benchmark measures the sweep as shipped, so on
// hosts with fewer cores than workers it reports the clamped reality.
func BenchmarkProfilerSweep(b *testing.B) {
	bench := kvBenchmark(256, 60_000)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			pr := fastProfiler()
			pr.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := pr.Profile(bench, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
