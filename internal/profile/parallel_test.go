package profile

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"datamime/internal/sim"
	"datamime/internal/telemetry"
)

// TestParallelProfileMatchesSerial is the tentpole determinism guarantee:
// the worker-pool sweep must produce profiles bit-for-bit identical to the
// serial order, for any worker count, with or without a shared budget. Run
// under -race this also proves no machine (and hence no SetLLCPartition
// call) is ever shared across concurrent sweep workers.
func TestParallelProfileMatchesSerial(t *testing.T) {
	b := kvBenchmark(256, 60_000)
	serial := fastProfiler()
	want, err := serial.Profile(b, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		pr := fastProfiler()
		pr.Workers = workers
		pr.disableWorkerClamp = true // exercise the pool path even on 1-CPU hosts
		got, err := pr.Profile(b, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d profile diverged from serial", workers)
		}
	}
	// A shared budget smaller than the worker count throttles but must not
	// change results either.
	pr := fastProfiler()
	pr.Workers = 4
	pr.disableWorkerClamp = true
	pr.Budget = NewBudget(2)
	got, err := pr.Profile(b, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("budgeted parallel profile diverged from serial")
	}
}

// TestWorkerClampToGOMAXPROCS: asking for more workers than the host can
// schedule silently clamps the pool to runtime.GOMAXPROCS(0), the run
// telemetry records the effective count (not the requested one), and the
// clamped sweep still matches the serial profile bit-for-bit.
func TestWorkerClampToGOMAXPROCS(t *testing.T) {
	b := kvBenchmark(256, 60_000)
	want, err := fastProfiler().Profile(b, 7)
	if err != nil {
		t.Fatal(err)
	}

	var collector telemetry.Collector
	pr := fastProfiler()
	jobs := 1 + len(pr.curveWays())
	pr.Workers = runtime.GOMAXPROCS(0) + jobs + 8 // absurd ask: clamp must engage
	pr.Telemetry = telemetry.New(telemetry.Options{OnEvent: collector.Record})
	got, err := pr.Profile(b, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("clamped profile diverged from serial")
	}

	effective := runtime.GOMAXPROCS(0)
	if jobs < effective {
		effective = jobs
	}
	found := false
	for _, ev := range collector.Events() {
		if ev.Type != telemetry.TypeSpan || ev.Phase != telemetry.PhaseProfileRun {
			continue
		}
		found = true
		if w, ok := ev.Attrs["workers"]; !ok || int(w) != effective {
			t.Errorf("run span workers attr = %v, want effective count %d (requested %d)", w, effective, pr.Workers)
		}
	}
	if !found {
		t.Fatal("no profile.run span recorded")
	}
}

// TestParallelProfileCancellation: a canceled context aborts the parallel
// sweep with the context's error.
func TestParallelProfileCancellation(t *testing.T) {
	pr := fastProfiler()
	pr.Workers = 4
	pr.disableWorkerClamp = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pr.ProfileContext(ctx, kvBenchmark(256, 60_000), 7); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCurveWaysOversizedPoints guards the sweep's job list: asking for more
// curve points than the machine has ways must yield strictly increasing,
// deduplicated allocations — never a repeated (ways, seed) job.
func TestCurveWaysOversizedPoints(t *testing.T) {
	pr := fastProfiler()
	for _, points := range []int{13, 24, 100} {
		pr.CurvePoints = points
		ways := pr.curveWays()
		if len(ways) == 0 || ways[0] != 1 {
			t.Fatalf("points=%d: ways %v must start at 1", points, ways)
		}
		if last := ways[len(ways)-1]; last != pr.Machine.LLCWays() {
			t.Fatalf("points=%d: ways %v must end at the full cache", points, ways)
		}
		for i := 1; i < len(ways); i++ {
			if ways[i] <= ways[i-1] {
				t.Fatalf("points=%d: ways %v not strictly increasing", points, ways)
			}
		}
	}
}

// TestLLCPartitionIsolation guards the worker-local-machine invariant
// directly: SetLLCPartition is only ever applied to a machine owned by one
// worker, so partitioning and running one machine while others run
// concurrently at different allocations must reproduce each run's serial
// result exactly. Run under -race this also catches any future change that
// lets sweep workers share a machine.
func TestLLCPartitionIsolation(t *testing.T) {
	b := kvBenchmark(256, 60_000)
	pr := fastProfiler()
	allocs := []int{1, 2, pr.Machine.LLCWays()}

	ref := make([]runResult, len(allocs))
	for i, ways := range allocs {
		m := sim.NewMachine(pr.Machine, pr.WindowCycles)
		ref[i] = pr.runOn(m, b, 7, runJob{ways: ways, windows: pr.CurveWindows})
	}

	got := make([]runResult, len(allocs))
	var wg sync.WaitGroup
	for i, ways := range allocs {
		wg.Add(1)
		go func(i, ways int) {
			defer wg.Done()
			m := sim.NewMachine(pr.Machine, pr.WindowCycles)
			got[i] = pr.runOn(m, b, 7, runJob{ways: ways, windows: pr.CurveWindows})
		}(i, ways)
	}
	wg.Wait()

	for i, ways := range allocs {
		if !reflect.DeepEqual(got[i], ref[i]) {
			t.Errorf("ways=%d: concurrent run diverged from serial", ways)
		}
	}
}

// TestBudgetCapsConcurrency drives a budget from more goroutines than
// tokens and checks in-flight work never exceeds the cap.
func TestBudgetCapsConcurrency(t *testing.T) {
	const cap, workers, rounds = 3, 10, 50
	b := NewBudget(cap)
	if b.Cap() != cap {
		t.Fatalf("Cap() = %d", b.Cap())
	}
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				b.Acquire()
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				inFlight.Add(-1)
				b.Release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Fatalf("peak concurrency %d exceeded budget %d", p, cap)
	}
	// Nil budgets are inert.
	var nb *Budget
	nb.Acquire()
	nb.Release()
	if nb.Cap() != 0 {
		t.Fatal("nil budget has nonzero cap")
	}
}
