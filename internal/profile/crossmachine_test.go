package profile

import (
	"testing"

	"datamime/internal/sim"
)

// TestProfileOnEveryMachine: the profiler must work on all three Table II
// platforms, with curve lengths matching each machine's partition count
// (12 capped for Broadwell/Zen2, 8 for Silvermont's L2-as-LLC).
func TestProfileOnEveryMachine(t *testing.T) {
	wantCurve := map[string]int{"broadwell": 3, "zen2": 3, "silvermont": 3}
	for _, m := range sim.Machines() {
		pr := New(m)
		pr.WindowCycles = 120_000
		pr.Windows = 6
		pr.WarmupWindows = 1
		pr.CurveWindows = 2
		pr.CurvePoints = 3
		p, err := pr.Profile(kvBenchmark(256, 60_000), 1)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if p.Machine != m.Name {
			t.Fatalf("profile machine %q", p.Machine)
		}
		if len(p.Curve) != wantCurve[m.Name] {
			t.Fatalf("%s: %d curve points", m.Name, len(p.Curve))
		}
		if p.Mean(MetricIPC) <= 0 || p.Mean(MetricIPC) > float64(m.Width) {
			t.Fatalf("%s: IPC %g outside (0, width]", m.Name, p.Mean(MetricIPC))
		}
		// Curve sizes reflect the machine's per-way capacity.
		bytesPerWay := sim.NewMachine(m, 1e6).LLCPartitionBytes() / sim.NewMachine(m, 1e6).LLCWays()
		for _, c := range p.Curve {
			if c.SizeBytes != bytesPerWay*c.Ways {
				t.Fatalf("%s: curve point %d ways -> %d bytes, want %d",
					m.Name, c.Ways, c.SizeBytes, bytesPerWay*c.Ways)
			}
		}
	}
}

// TestSameWorkloadDifferentMachines: one benchmark must produce
// distinguishable profiles across machines (the premise of Fig. 3's
// cross-validation), with the IPC ordering implied by the pipeline widths.
func TestSameWorkloadDifferentMachines(t *testing.T) {
	ipc := map[string]float64{}
	for _, m := range sim.Machines() {
		pr := New(m)
		pr.WindowCycles = 150_000
		pr.Windows = 8
		pr.WarmupWindows = 2
		pr.SkipCurves = true
		p, err := pr.Profile(kvBenchmark(400, 80_000), 2)
		if err != nil {
			t.Fatal(err)
		}
		ipc[m.Name] = p.Mean(MetricIPC)
	}
	if !(ipc["zen2"] > ipc["broadwell"] && ipc["broadwell"] > ipc["silvermont"]) {
		t.Fatalf("IPC ordering violated: %v", ipc)
	}
}
