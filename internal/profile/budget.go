package profile

// Budget is a shared cap on simulation runs in flight. The search core
// parallelizes along two axes — candidate evaluations (SearchConfig.Parallel)
// and partition runs within one profile (Profiler.Workers) — and without a
// shared cap their product could oversubscribe the machine. All profilers of
// one search share a single Budget sized to the larger of the two knobs;
// every run acquires one token for the duration of the simulation, so total
// concurrency never exceeds the budget regardless of how the axes compose.
//
// Tokens are held per run, never across runs, so acquisition order cannot
// deadlock. A nil *Budget is valid and imposes no cap.
type Budget struct {
	tokens chan struct{}
}

// NewBudget returns a budget admitting up to n concurrent runs (minimum 1).
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	return &Budget{tokens: make(chan struct{}, n)}
}

// Acquire blocks until a token is free. No-op on a nil budget.
func (b *Budget) Acquire() {
	if b == nil {
		return
	}
	b.tokens <- struct{}{}
}

// Release returns a token. No-op on a nil budget.
func (b *Budget) Release() {
	if b == nil {
		return
	}
	<-b.tokens
}

// Cap returns the budget size (0 for nil).
func (b *Budget) Cap() int {
	if b == nil {
		return 0
	}
	return cap(b.tokens)
}
