// Package profile implements Datamime's profiler (§III-A): it runs a
// benchmark on a simulated machine, collects windowed performance-counter
// samples for the Table I metrics, and measures last-level-cache
// sensitivity curves (LLC MPKI and IPC across cache allocations) the way
// the paper does with Dynaway and Intel CAT way-partitioning.
package profile

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"datamime/internal/sim"
	"datamime/internal/stats"
	"datamime/internal/telemetry"
	"datamime/internal/trace"
	"datamime/internal/workload"
)

// MetricID names one profiled metric.
type MetricID string

// The scalar metrics of Table I whose full sample distributions are
// profiled. The two cache-sensitivity curves complete the 10-metric set.
const (
	MetricIPC     MetricID = "ipc"
	MetricL1D     MetricID = "l1d_mpki"
	MetricL2      MetricID = "l2_mpki"
	MetricLLC     MetricID = "llc_mpki"
	MetricICache  MetricID = "icache_mpki"
	MetricITLB    MetricID = "itlb_mpki"
	MetricDTLB    MetricID = "dtlb_mpki"
	MetricBranch  MetricID = "branch_mpki"
	MetricCPUUtil MetricID = "cpu_util"
	MetricMemBW   MetricID = "mem_bw_gbs"

	// MetricCompress is the resident-snapshot compression ratio — the
	// §III-D extension metric. It is recorded only for servers that
	// implement workload.Compressible and is NOT part of the ten-metric
	// Table I error model unless explicitly weighted in.
	MetricCompress MetricID = "compress_ratio"
)

// ScalarMetrics lists every sampled scalar metric, in Table I order.
var ScalarMetrics = []MetricID{
	MetricICache, MetricITLB,
	MetricL1D, MetricL2, MetricDTLB,
	MetricLLC, MetricBranch, MetricCPUUtil, MetricMemBW,
	MetricIPC,
}

// FromSample extracts a metric from one counter window.
func FromSample(s sim.WindowSample, id MetricID) float64 {
	switch id {
	case MetricIPC:
		return s.IPC
	case MetricL1D:
		return s.L1DMPKI
	case MetricL2:
		return s.L2MPKI
	case MetricLLC:
		return s.LLCMPKI
	case MetricICache:
		return s.ICacheMPKI
	case MetricITLB:
		return s.ITLBMPKI
	case MetricDTLB:
		return s.DTLBMPKI
	case MetricBranch:
		return s.BranchMPKI
	case MetricCPUUtil:
		return s.CPUUtil
	case MetricMemBW:
		return s.MemBWGBs
	default:
		panic(fmt.Sprintf("profile: unknown metric %q", id))
	}
}

// CurvePoint is one cache-allocation measurement of the sensitivity curves.
type CurvePoint struct {
	Ways      int     `json:"ways"`
	SizeBytes int     `json:"size_bytes"`
	IPC       float64 `json:"ipc"`
	LLCMPKI   float64 `json:"llc_mpki"`
}

// Profile is the complete performance profile of one benchmark on one
// machine: per-metric sample distributions plus the sensitivity curves.
type Profile struct {
	Benchmark string                 `json:"benchmark"`
	Machine   string                 `json:"machine"`
	Samples   map[MetricID][]float64 `json:"samples"`
	Curve     []CurvePoint           `json:"curve"`
	Requests  int                    `json:"requests"`
}

// Mean returns a metric's sample mean.
func (p *Profile) Mean(id MetricID) float64 { return stats.Mean(p.Samples[id]) }

// ECDF returns a metric's empirical CDF.
func (p *Profile) ECDF(id MetricID) *stats.ECDF { return stats.NewECDF(p.Samples[id]) }

// IPCCurve returns the IPC values of the sensitivity curve, in way order.
func (p *Profile) IPCCurve() []float64 {
	out := make([]float64, len(p.Curve))
	for i, c := range p.Curve {
		out[i] = c.IPC
	}
	return out
}

// LLCCurve returns the LLC MPKI values of the sensitivity curve.
func (p *Profile) LLCCurve() []float64 {
	out := make([]float64, len(p.Curve))
	for i, c := range p.Curve {
		out[i] = c.LLCMPKI
	}
	return out
}

// MarshalJSON/UnmarshalJSON use the default layout; provided via struct
// tags. EncodeJSON renders the profile for the CLI tools.
func (p *Profile) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// DecodeJSON parses a profile produced by EncodeJSON.
func DecodeJSON(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("profile: decoding profile: %w", err)
	}
	return &p, nil
}

// Profiler collects profiles. The zero value is not usable; call New or
// fill every field.
type Profiler struct {
	// Machine is the platform to profile on.
	Machine sim.MachineConfig
	// WindowCycles is the counter sampling window (the paper uses 20 M
	// cycles; the simulated default is smaller, and all metrics are rates,
	// so distribution shapes are preserved — see DESIGN.md).
	WindowCycles float64
	// Windows is the number of measured sample windows.
	Windows int
	// WarmupWindows run before measurement to warm caches and predictors.
	WarmupWindows int
	// CurveWindows is the number of windows measured per cache-allocation
	// point (the paper uses 11 samples per curve point).
	CurveWindows int
	// CurvePoints is the number of cache allocations measured, spread
	// evenly over the machine's partitions (the paper sweeps 1–12 MB).
	CurvePoints int
	// MaxRequestsPerRun bounds each run; <= 0 uses the driver default.
	MaxRequestsPerRun int
	// SkipCurves disables the sensitivity-curve measurement (used by the
	// single-metric range sweeps of Fig. 11, which only target one scalar).
	SkipCurves bool
	// Workers bounds how many of one profile's partition runs (the main run
	// plus one run per sensitivity-curve point) execute concurrently. Each
	// run is an independent simulation — fresh dataset, derived seed,
	// worker-local machine — so results collected by index are bit-for-bit
	// identical to the serial order. <= 1 runs serially. Workers has no
	// effect on measured values and is excluded from core.EvalKey.
	Workers int
	// Budget, when non-nil, caps simulation runs in flight across *all*
	// profilers sharing it — the knob that composes intra-profile Workers
	// with candidate-level batch parallelism under one machine-wide limit.
	// Each run holds one token while it executes.
	Budget *Budget
	// Telemetry, when non-nil, receives one span per main profiling run
	// ("profile.run") and one per sensitivity-curve sweep
	// ("profile.curves"), carrying per-window counter summaries as
	// attributes. It is deliberately excluded from evaluation cache keys
	// (see core.EvalKey) and has no effect on measurements.
	Telemetry *telemetry.Recorder

	// disableWorkerClamp lifts the GOMAXPROCS clamp on the worker pool.
	// Only tests that must exercise pool scheduling and span attribution on
	// hosts with fewer CPUs than workers set it; production sweeps never
	// benefit from more workers than schedulable threads.
	disableWorkerClamp bool
}

// New returns a Profiler with the defaults used throughout the evaluation.
func New(machine sim.MachineConfig) *Profiler {
	return &Profiler{
		Machine:       machine,
		WindowCycles:  400_000,
		Windows:       36,
		WarmupWindows: 5,
		CurveWindows:  6,
		CurvePoints:   0, // all ways, capped at 12 like the paper's CAT setup
	}
}

// Validate reports configuration errors.
func (pr *Profiler) Validate() error {
	if err := pr.Machine.Validate(); err != nil {
		return err
	}
	if pr.WindowCycles <= 0 {
		return fmt.Errorf("profile: WindowCycles must be positive")
	}
	if pr.Windows <= 0 {
		return fmt.Errorf("profile: Windows must be positive")
	}
	if pr.WarmupWindows < 0 || pr.CurveWindows < 0 || pr.CurvePoints < 0 {
		return fmt.Errorf("profile: negative window/point counts")
	}
	return nil
}

// curveWays returns the way allocations to sweep: up to CurvePoints (or 12)
// allocations, always including 1 way and the full cache. It is derived from
// the machine configuration alone — no simulator state is built.
func (pr *Profiler) curveWays() []int {
	total := pr.Machine.LLCWays()
	points := pr.CurvePoints
	if points <= 0 || points > total {
		points = total
	}
	if points > 12 {
		points = 12
	}
	ways := make([]int, 0, points)
	for i := 0; i < points; i++ {
		w := 1 + i*(total-1)/maxInt(points-1, 1)
		if len(ways) == 0 || ways[len(ways)-1] != w {
			ways = append(ways, w)
		}
	}
	return ways
}

// Profile measures a benchmark: a main run for the scalar metric
// distributions, then one short run per cache allocation for the
// sensitivity curves. seed controls the dataset and arrival streams, so
// different seeds give independent (noisy) measurements of the same
// configuration — the measurement noise §III-C's optimizer must absorb.
func (pr *Profiler) Profile(b workload.Benchmark, seed uint64) (*Profile, error) {
	return pr.ProfileContext(context.Background(), b, seed)
}

// runJob describes one partition run of a profile: the main run (ways == 0,
// full cache) or one sensitivity-curve point.
type runJob struct {
	ways    int
	windows int
}

// runResult carries one run's measurements. Sample slices are copies owned
// by the result, so worker-local machines can be reused across jobs.
type runResult struct {
	samples  []sim.WindowSample
	wall     []sim.WallSample
	requests int
	ratio    float64
}

// ProfileContext is Profile with cancellation: the context is checked
// before every partition run, so a canceled or expired context aborts the
// measurement within one run and returns ctx's error.
func (pr *Profiler) ProfileContext(ctx context.Context, b workload.Benchmark, seed uint64) (*Profile, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Every partition run — the main run and each curve point — is an
	// independent simulation with its own machine, server, and derived
	// seed, so the full set can execute on a worker pool and be collected
	// by index with bit-identical results.
	jobs := make([]runJob, 0, 13)
	jobs = append(jobs, runJob{ways: 0, windows: pr.Windows})
	if !pr.SkipCurves {
		for _, ways := range pr.curveWays() {
			jobs = append(jobs, runJob{ways: ways, windows: pr.CurveWindows})
		}
	}
	workers := pr.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// More workers than schedulable threads cannot run concurrently; they
	// only add goroutine churn and contended claims on the job cursor. Clamp
	// to reality and report the effective count in the run attributes, so
	// traces and the timeline parallel-efficiency report describe the pool
	// that actually executed.
	if p := runtime.GOMAXPROCS(0); workers > p && !pr.disableWorkerClamp {
		workers = p
	}

	runSpan := pr.Telemetry.StartSpan(telemetry.PhaseProfileRun, 0)
	var curveSpan telemetry.Span
	if !pr.SkipCurves {
		curveSpan = pr.Telemetry.StartSpan(telemetry.PhaseProfileCurves, 0)
	}
	results, err := pr.execute(ctx, b, seed, jobs, workers)
	if err != nil {
		return nil, err
	}

	p := &Profile{
		Benchmark: b.Name,
		Machine:   pr.Machine.Name,
		Samples:   make(map[MetricID][]float64, len(ScalarMetrics)),
	}

	// Main run: full cache, Windows samples after warmup. Counter metrics
	// come from busy-cycle windows (hardware sampling semantics); CPU
	// utilization and memory bandwidth come from wall-clock windows, since
	// they are defined over elapsed time.
	main := results[0]
	var runAttrs map[string]float64
	if pr.Telemetry.Enabled() {
		runAttrs = sim.SummarizeWindows(main.samples).Attrs()
		runAttrs["requests"] = float64(main.requests)
		runAttrs["workers"] = float64(workers)
	}
	runSpan.End(runAttrs)
	p.Requests = main.requests
	if main.ratio > 0 {
		// A snapshot property, not a time series: record one sample per
		// window for stable EMD semantics.
		ratios := make([]float64, pr.Windows)
		for i := range ratios {
			ratios[i] = main.ratio
		}
		p.Samples[MetricCompress] = ratios
	}
	for _, id := range ScalarMetrics {
		switch id {
		case MetricCPUUtil:
			vals := make([]float64, len(main.wall))
			for i, w := range main.wall {
				vals[i] = w.CPUUtil
			}
			p.Samples[id] = vals
		case MetricMemBW:
			vals := make([]float64, len(main.wall))
			for i, w := range main.wall {
				vals[i] = w.MemBWGBs
			}
			p.Samples[id] = vals
		default:
			vals := make([]float64, len(main.samples))
			for i, s := range main.samples {
				vals[i] = FromSample(s, id)
			}
			p.Samples[id] = vals
		}
	}

	if pr.SkipCurves {
		return p, nil
	}
	// Sensitivity curves: aggregate each allocation's run, in way order.
	bytesPerWay := pr.Machine.LLC().Sets() * trace.LineSize
	for i, r := range results[1:] {
		var instrs, llcMisses, busy float64
		for _, s := range r.samples {
			k := float64(s.Instructions)
			instrs += k
			llcMisses += s.LLCMPKI * k / 1000
			if s.IPC > 0 {
				busy += k / s.IPC
			}
		}
		pt := CurvePoint{
			Ways:      jobs[i+1].ways,
			SizeBytes: bytesPerWay * jobs[i+1].ways,
		}
		if instrs > 0 {
			pt.LLCMPKI = llcMisses / instrs * 1000
		}
		if busy > 0 {
			pt.IPC = instrs / busy
		}
		p.Curve = append(p.Curve, pt)
	}
	var curveAttrs map[string]float64
	if pr.Telemetry.Enabled() {
		curveAttrs = map[string]float64{
			"points":          float64(len(p.Curve)),
			"windows_per_pt":  float64(pr.CurveWindows),
			"full_cache_ways": float64(pr.Machine.LLCWays()),
			"bytes_per_way":   float64(bytesPerWay),
			"workers":         float64(workers),
		}
	}
	curveSpan.End(curveAttrs)
	return p, nil
}

// execute runs every job and collects results by index. With one worker it
// runs inline in job order; otherwise a pool of workers pulls jobs from a
// shared counter, each reusing one worker-local machine across its jobs.
// Either way each run holds a Budget token (when one is shared) while the
// simulation executes.
func (pr *Profiler) execute(ctx context.Context, b workload.Benchmark, seed uint64, jobs []runJob, workers int) ([]runResult, error) {
	results := make([]runResult, len(jobs))
	if workers <= 1 {
		m := sim.NewMachine(pr.Machine, pr.WindowCycles)
		for i, job := range jobs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			results[i] = pr.runInstrumented(m, b, seed, job, 0)
		}
		return results, nil
	}
	// The shared job cursor sits alone on its cache line: every claim is a
	// contended atomic RMW, and without padding it false-shares with
	// whatever the allocator places next to it. (results needs no padding:
	// runResult is exactly 64 bytes, so workers completing adjacent jobs
	// write disjoint lines.)
	next := &paddedCursor{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// The worker-local machine is built lazily on the first claimed
			// job: a worker that never wins a claim (more workers than jobs
			// remaining) skips the multi-megabyte cache-slab allocation.
			var m *sim.Machine
			for {
				i := int(next.n.Add(1)) - 1
				if i >= len(jobs) || ctx.Err() != nil {
					return
				}
				if m == nil {
					m = sim.NewMachine(pr.Machine, pr.WindowCycles)
				}
				results[i] = pr.runInstrumented(m, b, seed, jobs[i], worker)
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// runInstrumented wraps one runOn in the per-run telemetry spans: a
// budget.wait span for time blocked on the shared simulation budget (only
// when a budget is actually shared — a nil Budget never waits) and a
// profile.sim span tagged with the pool worker index and way allocation,
// the raw material of the per-worker trace timelines and the utilization
// report. Telemetry never affects which jobs run or in what order, so
// results stay bit-identical with it on or off.
func (pr *Profiler) runInstrumented(m *sim.Machine, b workload.Benchmark, seed uint64, job runJob, worker int) runResult {
	if pr.Budget != nil {
		wait := pr.Telemetry.StartSpan(telemetry.PhaseBudgetWait, 0)
		pr.Budget.Acquire()
		wait.End(pr.runAttrs(worker, job))
		defer pr.Budget.Release()
	}
	span := pr.Telemetry.StartSpan(telemetry.PhaseSimRun, 0)
	res := pr.runOn(m, b, seed, job)
	span.End(pr.runAttrs(worker, job))
	return res
}

// runAttrs builds the worker/ways attribute map for one run's spans, or nil
// when telemetry is disabled so the hot path does not allocate.
func (pr *Profiler) runAttrs(worker int, job runJob) map[string]float64 {
	if !pr.Telemetry.Enabled() {
		return nil
	}
	return map[string]float64{
		telemetry.AttrWorker: float64(worker),
		telemetry.AttrWays:   float64(job.ways),
	}
}

// runOn executes one profiling run on a reused machine: Reset to the cold
// state, optional LLC partition, fresh server, warmup, then measured
// windows. Reset is bit-for-bit equivalent to a fresh machine (pinned by
// internal/sim's reset-equivalence test), so reuse does not perturb
// measurements.
func (pr *Profiler) runOn(m *sim.Machine, b workload.Benchmark, seed uint64, job runJob) runResult {
	m.Reset()
	if job.ways > 0 {
		m.SetLLCPartition(job.ways)
	}
	m.ReserveSamples(job.windows + 1)
	layout := trace.NewCodeLayout()
	srv := b.NewServer(layout, stats.HashSeed(seed, "dataset"))
	if w, ok := srv.(workload.Warmable); ok {
		w.WarmDataset(m)
		m.FlushSamples()
	}
	if pr.WarmupWindows > 0 {
		workload.Run(m, b, srv, pr.WarmupWindows, stats.HashSeed(seed, "warmup"), pr.MaxRequestsPerRun)
		m.FlushSamples()
	}
	res := workload.Run(m, b, srv, job.windows, stats.HashSeed(seed, fmt.Sprintf("measure-%d", job.ways)), pr.MaxRequestsPerRun)
	ratio := 0.0
	if c, ok := srv.(workload.Compressible); ok {
		ratio = c.CompressionRatio()
	}
	return runResult{
		samples:  append([]sim.WindowSample(nil), m.Samples()...),
		wall:     append([]sim.WallSample(nil), m.WallSamples()...),
		requests: res.Requests,
		ratio:    ratio,
	}
}

// paddedCursor is the sweep's shared job counter, padded to its own cache
// line on both sides so claim traffic never false-shares with neighbors.
type paddedCursor struct {
	_ [64]byte
	n atomic.Int64
	_ [56]byte
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
