package sim

import (
	"testing"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

func smallLRU(sizeBytes, ways int) *Cache {
	return NewCache(CacheConfig{Name: "t", SizeBytes: sizeBytes, Ways: ways, Policy: LRU})
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := smallLRU(4096, 4)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1010) { // same line
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Fatal("different-line access hit")
	}
	acc, miss := c.Stats()
	if acc != 4 || miss != 2 {
		t.Fatalf("stats = %d/%d, want 4/2", acc, miss)
	}
}

func TestCacheSets(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 8192, Ways: 4}
	if cfg.Sets() != 32 {
		t.Fatalf("Sets = %d, want 32", cfg.Sets())
	}
	tiny := CacheConfig{SizeBytes: 64, Ways: 4}
	if tiny.Sets() != 1 {
		t.Fatalf("tiny Sets = %d, want 1", tiny.Sets())
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways: addresses conflict when they map to set 0.
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 128, Ways: 2, Policy: LRU})
	a, b, d := uint64(0), uint64(128), uint64(256)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // evicts b (LRU)
	if !c.Access(a) {
		t.Fatal("LRU evicted the MRU line")
	}
	if c.Access(b) {
		t.Fatal("LRU failed to evict the LRU line")
	}
}

func TestWorkingSetFitVsOverflow(t *testing.T) {
	c := smallLRU(64<<10, 8) // 64 KB
	lines := (64 << 10) / trace.LineSize
	// Working set exactly fits: after one warm pass, all hits.
	for pass := 0; pass < 3; pass++ {
		misses := 0
		for i := 0; i < lines; i++ {
			if !c.Access(uint64(i * trace.LineSize)) {
				misses++
			}
		}
		if pass > 0 && misses != 0 {
			t.Fatalf("pass %d: %d misses on resident working set", pass, misses)
		}
	}
	// Working set 2x the cache with LRU cyclic scan: ~100% miss.
	c2 := smallLRU(64<<10, 8)
	big := lines * 2
	for pass := 0; pass < 2; pass++ {
		misses := 0
		for i := 0; i < big; i++ {
			if !c2.Access(uint64(i * trace.LineSize)) {
				misses++
			}
		}
		if pass > 0 && misses < big*9/10 {
			t.Fatalf("cyclic overflow scan should thrash LRU: %d/%d misses", misses, big)
		}
	}
}

func TestDRRIPBeatsLRUOnScanMix(t *testing.T) {
	// DRRIP's claim to fame: a hot working set survives a streaming scan.
	mk := func(policy ReplacementPolicy) float64 {
		c := NewCache(CacheConfig{Name: "t", SizeBytes: 32 << 10, Ways: 8, Policy: policy})
		hotLines := 256 // 16 KB hot set: fits comfortably
		scan := uint64(1 << 20)
		hotMisses := 0
		hotAccesses := 0
		for round := 0; round < 200; round++ {
			for i := 0; i < hotLines; i++ {
				hotAccesses++
				if !c.Access(uint64(i * trace.LineSize)) {
					hotMisses++
				}
			}
			// One-shot streaming scan through fresh addresses.
			for i := 0; i < 512; i++ {
				c.Access(scan)
				scan += trace.LineSize
			}
		}
		return float64(hotMisses) / float64(hotAccesses)
	}
	lruMiss := mk(LRU)
	drripMiss := mk(DRRIP)
	if drripMiss >= lruMiss {
		t.Fatalf("DRRIP (%.3f) should protect the hot set better than LRU (%.3f) under scans",
			drripMiss, lruMiss)
	}
}

func TestPartitionShrinksEffectiveCapacity(t *testing.T) {
	c := NewCache(CacheConfig{Name: "llc", SizeBytes: 1 << 20, Ways: 8, Policy: LRU})
	lines := (1 << 20) / trace.LineSize / 2 // working set = half the cache
	missRate := func() float64 {
		misses := 0
		accesses := 0
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < lines; i++ {
				accesses++
				if !c.Access(uint64(i * trace.LineSize)) {
					misses++
				}
			}
		}
		return float64(misses) / float64(accesses)
	}
	full := missRate()
	c.SetPartition(2) // quarter capacity: working set no longer fits
	c.Flush()
	small := missRate()
	if small <= full {
		t.Fatalf("partitioned cache should miss more: full=%.3f part=%.3f", full, small)
	}
	if c.Partition() != 2 {
		t.Fatalf("Partition = %d", c.Partition())
	}
	if c.PartitionBytes() != (1<<20)/4 {
		t.Fatalf("PartitionBytes = %d", c.PartitionBytes())
	}
	// Restoring the full cache.
	c.SetPartition(0)
	if c.Partition() != 8 {
		t.Fatalf("Partition after reset = %d", c.Partition())
	}
}

func TestPartitionFlushesForbiddenWays(t *testing.T) {
	c := NewCache(CacheConfig{Name: "llc", SizeBytes: 4096, Ways: 4, Policy: LRU})
	// Fill all 4 ways of set 0.
	setSpan := uint64(c.Config().Sets() * trace.LineSize)
	for w := uint64(0); w < 4; w++ {
		c.Access(w * setSpan)
	}
	c.SetPartition(1)
	hits := 0
	for w := uint64(0); w < 4; w++ {
		if c.Access(w * setSpan) {
			hits++
		}
	}
	// At most the line in way 0 can still be resident.
	if hits > 1 {
		t.Fatalf("%d hits after shrinking partition to 1 way", hits)
	}
}

func TestCacheFlush(t *testing.T) {
	c := smallLRU(4096, 4)
	c.Access(0)
	c.Flush()
	if acc, miss := c.Stats(); acc != 0 || miss != 0 {
		t.Fatal("Flush did not reset stats")
	}
	if c.Access(0) {
		t.Fatal("Flush did not invalidate lines")
	}
}

func TestCachePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid cache config did not panic")
		}
	}()
	NewCache(CacheConfig{SizeBytes: 0, Ways: 4})
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || DRRIP.String() != "DRRIP" {
		t.Fatal("policy String broken")
	}
	if ReplacementPolicy(99).String() == "" {
		t.Fatal("unknown policy String empty")
	}
}

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "d", Entries: 64, Ways: 4, PageBytes: 4096})
	if tlb.Access(0x1000) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(0x1800) { // same 4K page
		t.Fatal("same-page access missed")
	}
	if tlb.Access(0x2000) { // next page
		t.Fatal("next-page access hit")
	}
	acc, miss := tlb.Stats()
	if acc != 3 || miss != 2 {
		t.Fatalf("TLB stats %d/%d", acc, miss)
	}
	tlb.Flush()
	if !tlbMisses(tlb, 0x1000) {
		t.Fatal("Flush did not clear entries")
	}
}

func tlbMisses(t *TLB, addr uint64) bool { return !t.Access(addr) }

func TestTLBCapacityBehavior(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "d", Entries: 16, Ways: 4, PageBytes: 4096})
	// Touch 8 pages repeatedly: all resident after warmup.
	for pass := 0; pass < 3; pass++ {
		misses := 0
		for p := uint64(0); p < 8; p++ {
			if !tlb.Access(p * 4096) {
				misses++
			}
		}
		if pass > 0 && misses != 0 {
			t.Fatalf("resident pages missed: %d", misses)
		}
	}
	// 64 pages >> 16 entries: high miss rate.
	tlb2 := NewTLB(TLBConfig{Name: "d", Entries: 16, Ways: 4, PageBytes: 4096})
	misses := 0
	const total = 64 * 10
	for pass := 0; pass < 10; pass++ {
		for p := uint64(0); p < 64; p++ {
			if !tlb2.Access(p * 4096) {
				misses++
			}
		}
	}
	if float64(misses)/total < 0.5 {
		t.Fatalf("oversubscribed TLB miss rate too low: %d/%d", misses, total)
	}
}

func TestTLBPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid TLB config did not panic")
		}
	}()
	NewTLB(TLBConfig{Entries: 0, Ways: 1, PageBytes: 4096})
}

func TestBranchPredictorLearnsBias(t *testing.T) {
	bp := NewBranchPredictor(BranchConfig{TableBits: 12, HistoryBits: 0})
	// An always-taken branch must be predicted nearly perfectly.
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !bp.Predict(0xabc, true) {
			wrong++
		}
	}
	if wrong > 5 {
		t.Fatalf("always-taken branch mispredicted %d/1000", wrong)
	}
}

func TestBranchPredictorLearnsPattern(t *testing.T) {
	bp := NewBranchPredictor(BranchConfig{TableBits: 12, HistoryBits: 8})
	// Alternating T/NT is learnable with global history.
	wrong := 0
	for i := 0; i < 2000; i++ {
		if !bp.Predict(0x123, i%2 == 0) {
			wrong++
		}
	}
	if float64(wrong)/2000 > 0.1 {
		t.Fatalf("periodic pattern mispredicted %d/2000 with history", wrong)
	}
}

func TestBranchPredictorRandomIsHard(t *testing.T) {
	bp := NewBranchPredictor(BranchConfig{TableBits: 12, HistoryBits: 8})
	rng := stats.NewRNG(99)
	wrong := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if !bp.Predict(0x555, rng.Bool(0.5)) {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("random branches misprediction rate = %.3f, want ~0.5", rate)
	}
	br, ms := bp.Stats()
	if br != n || int(ms) != wrong {
		t.Fatalf("stats %d/%d", br, ms)
	}
}

func TestBranchPredictorFlush(t *testing.T) {
	bp := NewBranchPredictor(BranchConfig{TableBits: 10, HistoryBits: 4})
	bp.Predict(1, true)
	bp.Flush()
	if br, ms := bp.Stats(); br != 0 || ms != 0 {
		t.Fatal("Flush did not reset stats")
	}
}

func TestBranchPredictorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid branch config did not panic")
		}
	}()
	NewBranchPredictor(BranchConfig{TableBits: 0})
}

// TestFlushGenerationWraparound forces the latent uint32 generation-counter
// wrap: after 2^32 flushes the counter would land back on 0, where every
// freshly-zeroed (never-written) line — whose gen is 0 — would suddenly read
// as valid. Flush must detect the wrap, erase stale lines for real, and
// restart at generation 1 so nothing aliases.
func TestFlushGenerationWraparound(t *testing.T) {
	c := NewCache(CacheConfig{Name: "L", SizeBytes: 4096, Ways: 4, Policy: LRU})
	// Simulate 2^32-2 intervening flushes, then install lines at the final
	// pre-wrap generation.
	c.gen = ^uint32(0)
	for i := 0; i < 16; i++ {
		c.Access(uint64(i * trace.LineSize))
	}
	c.Flush()
	if c.gen != 1 {
		t.Fatalf("gen %d after wrapping flush, want 1", c.gen)
	}
	for i, ln := range c.lines {
		if ln != (cacheLine{}) {
			t.Fatalf("stale line %d survived the wrapping flush: %+v", i, ln)
		}
	}
	// The aliasing hazard itself: address 0 was resident pre-flush with tag
	// 0 — exactly what a zeroed line holds. It must miss now.
	if c.Access(0) {
		t.Fatal("stale line read as valid after generation wrap")
	}
	// And a machine-level wrap: Reset must leave the kernel path coherent.
	m := NewMachine(Broadwell(), 1e9)
	m.Load(0, 8)
	m.l1d.gen = ^uint32(0)
	m.Reset()
	if m.l1d.gen != 1 || m.kern.l1d.gen != 1 {
		t.Fatalf("post-wrap generations: cache %d kernel %d, want 1/1",
			m.l1d.gen, m.kern.l1d.gen)
	}
	m.Load(0, 8)
	if _, miss := m.l1d.Stats(); miss != 1 {
		t.Fatalf("post-wrap load should miss once, got %d misses", miss)
	}
}
