package sim

import "fmt"

// MachineConfig describes one evaluation platform. The three predefined
// configurations mirror Table II of the paper: an Intel Broadwell Xeon
// D-1540 (the generation machine), an AMD Zen 2 ThreadRipper, and an Intel
// Silvermont Atom C2750 (the cross-validation machines).
type MachineConfig struct {
	Name    string
	FreqGHz float64
	// Width is the issue width; the pipeline's base CPI is 1/Width.
	Width int

	L1I, L1D, L2 CacheConfig
	// L3 is nil for machines without a shared LLC (Silvermont's L2 is its
	// last-level cache).
	L3 *CacheConfig

	ITLB, DTLB TLBConfig
	Branch     BranchConfig

	// Penalties, in cycles.
	BranchPenalty float64
	TLBPenalty    float64
	MemLatency    float64

	// Overlap is the fraction of miss latency hidden by out-of-order
	// execution (deep Zen 2 buffers hide more than the small in-order-ish
	// Silvermont core).
	Overlap float64
	// MLP divides the latency of back-to-back misses within one access
	// burst, modeling memory-level parallelism.
	MLP float64
}

// BaseCPI returns the no-stall cycles-per-instruction floor.
func (c MachineConfig) BaseCPI() float64 { return 1 / float64(c.Width) }

// LLCWays returns the associativity of the last-level cache — the number of
// CAT partitions the platform supports — without building a Machine.
func (c MachineConfig) LLCWays() int { return c.LLC().Ways }

// LLC returns the configuration of the last-level cache (the L3, or the L2
// on machines without one).
func (c MachineConfig) LLC() CacheConfig {
	if c.L3 != nil {
		return *c.L3
	}
	return c.L2
}

// CyclesPerSecond converts the clock frequency to cycles/second.
func (c MachineConfig) CyclesPerSecond() float64 { return c.FreqGHz * 1e9 }

// Validate reports configuration errors.
func (c MachineConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("sim: machine without a name")
	}
	if c.FreqGHz <= 0 || c.Width <= 0 {
		return fmt.Errorf("sim: machine %q needs positive frequency and width", c.Name)
	}
	if c.MLP < 1 {
		return fmt.Errorf("sim: machine %q needs MLP >= 1", c.Name)
	}
	if c.Overlap < 0 || c.Overlap >= 1 {
		return fmt.Errorf("sim: machine %q overlap must be in [0, 1)", c.Name)
	}
	return nil
}

// Broadwell models the paper's 8-core Xeon D-1540 generation platform:
// 2.0 GHz, 32 KB split L1, 256 KB private L2, 12 MB 12-way inclusive L3
// with DRRIP replacement and CAT way-partitioning (12 partitions).
func Broadwell() MachineConfig {
	return MachineConfig{
		Name:    "broadwell",
		FreqGHz: 2.0,
		Width:   4,
		L1I:     CacheConfig{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, Policy: LRU, LatencyCyc: 0},
		L1D:     CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, Policy: LRU, LatencyCyc: 0},
		L2:      CacheConfig{Name: "L2", SizeBytes: 256 << 10, Ways: 8, Policy: LRU, LatencyCyc: 12},
		L3:      &CacheConfig{Name: "L3", SizeBytes: 12 << 20, Ways: 12, Policy: DRRIP, LatencyCyc: 40},
		ITLB:    TLBConfig{Name: "ITLB", Entries: 128, Ways: 4, PageBytes: 4096},
		DTLB:    TLBConfig{Name: "DTLB", Entries: 64, Ways: 4, PageBytes: 4096},
		Branch:  BranchConfig{TableBits: 13, HistoryBits: 12},

		BranchPenalty: 16,
		TLBPenalty:    30,
		MemLatency:    180,
		Overlap:       0.55,
		MLP:           4,
	}
}

// Zen2 models the 32-core Ryzen ThreadRipper PRO 3975WX validation
// platform: 3.5 GHz, 512 KB L2, 16 MB per-chiplet 16-way L3.
func Zen2() MachineConfig {
	return MachineConfig{
		Name:    "zen2",
		FreqGHz: 3.5,
		Width:   6,
		L1I:     CacheConfig{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, Policy: LRU, LatencyCyc: 0},
		L1D:     CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, Policy: LRU, LatencyCyc: 0},
		L2:      CacheConfig{Name: "L2", SizeBytes: 512 << 10, Ways: 8, Policy: LRU, LatencyCyc: 12},
		L3:      &CacheConfig{Name: "L3", SizeBytes: 16 << 20, Ways: 16, Policy: LRU, LatencyCyc: 39},
		ITLB:    TLBConfig{Name: "ITLB", Entries: 128, Ways: 4, PageBytes: 4096},
		DTLB:    TLBConfig{Name: "DTLB", Entries: 64, Ways: 4, PageBytes: 4096},
		Branch:  BranchConfig{TableBits: 14, HistoryBits: 14},

		BranchPenalty: 18,
		TLBPenalty:    28,
		MemLatency:    230,
		Overlap:       0.65,
		MLP:           6,
	}
}

// Silvermont models the 8-core Atom C2750 validation platform: a low-power
// 2.4 GHz core with limited pipeline width, small OOO buffers (low overlap),
// a 1 MB last-level L2, and no L3.
func Silvermont() MachineConfig {
	return MachineConfig{
		Name:    "silvermont",
		FreqGHz: 2.4,
		Width:   2,
		L1I:     CacheConfig{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, Policy: LRU, LatencyCyc: 0},
		L1D:     CacheConfig{Name: "L1D", SizeBytes: 24 << 10, Ways: 6, Policy: LRU, LatencyCyc: 0},
		L2:      CacheConfig{Name: "L2", SizeBytes: 1 << 20, Ways: 8, Policy: LRU, LatencyCyc: 15},
		L3:      nil,
		ITLB:    TLBConfig{Name: "ITLB", Entries: 48, Ways: 4, PageBytes: 4096},
		DTLB:    TLBConfig{Name: "DTLB", Entries: 48, Ways: 4, PageBytes: 4096},
		Branch:  BranchConfig{TableBits: 10, HistoryBits: 8},

		BranchPenalty: 10,
		TLBPenalty:    35,
		MemLatency:    140,
		Overlap:       0.15,
		MLP:           2,
	}
}

// Machines returns the three evaluation platforms in the paper's order.
func Machines() []MachineConfig {
	return []MachineConfig{Broadwell(), Zen2(), Silvermont()}
}

// MachineByName resolves a platform by its config name.
func MachineByName(name string) (MachineConfig, error) {
	for _, m := range Machines() {
		if m.Name == name {
			return m, nil
		}
	}
	return MachineConfig{}, fmt.Errorf("sim: unknown machine %q", name)
}
