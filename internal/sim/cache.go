// Package sim implements the trace-driven microarchitecture simulator that
// substitutes for the paper's hardware performance counters. It models
// set-associative caches (with LRU and DRRIP replacement and Intel
// CAT-style way partitioning), TLBs, a global-history branch predictor, and
// a width/penalty pipeline model, for three machines mirroring Table II
// (Broadwell, Zen 2, Silvermont). A Machine consumes trace events and
// produces windowed performance-counter samples — the raw material of
// Datamime's profiles.
package sim

import (
	"fmt"

	"datamime/internal/trace"
)

// ReplacementPolicy selects a cache's replacement algorithm.
type ReplacementPolicy int

const (
	// LRU is least-recently-used replacement.
	LRU ReplacementPolicy = iota
	// DRRIP is dynamic re-reference interval prediction (Jaleel et al.),
	// the policy of the Broadwell L3 in Table II: set-dueling between
	// SRRIP and BRRIP.
	DRRIP
)

func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case DRRIP:
		return "DRRIP"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Ways       int
	Policy     ReplacementPolicy
	LatencyCyc int // access latency added on a hit at this level
}

// Sets returns the number of sets implied by size, ways, and 64-byte lines.
func (c CacheConfig) Sets() int {
	lines := c.SizeBytes / trace.LineSize
	if c.Ways <= 0 || lines < c.Ways {
		return 1
	}
	return lines / c.Ways
}

// cacheLine is one way of one set. A line is valid iff its gen equals the
// cache's current generation; invalidating the whole cache is then a single
// generation bump instead of a multi-megabyte zeroing pass (the Broadwell L3
// alone holds 196 608 lines), which is what makes Machine.Reset cheaper than
// rebuilding. gen 0 never equals the cache generation (which starts at 1),
// so freshly zeroed lines are invalid.
type cacheLine struct {
	tag uint64
	// meta is the LRU stamp (for LRU) or the RRPV (for DRRIP).
	meta uint32
	gen  uint32
}

// Cache is a set-associative cache over 64-byte lines.
type Cache struct {
	cfg      CacheConfig
	sets     int
	ways     int
	lines    []cacheLine // sets × ways
	partWays int         // ways visible to the workload (CAT partition); 0 = all
	// setMask/setShift replace the per-access modulo and division of the
	// set/tag split when the set count is a power of two (true for every
	// Table II cache level); setShift < 0 selects the general path.
	setMask    uint64
	setShift   int
	gen        uint32 // current line generation; lines with a stale gen are invalid
	lruClock   uint32
	accesses   uint64
	misses     uint64
	psel       int  // DRRIP set-dueling policy selector
	duelMask   int  // identifies leader sets
	brripCount int  // BRRIP insertion de-rater
	isDRRIP    bool // cached policy check
}

// rrpvMax is the maximum re-reference prediction value for 2-bit DRRIP.
const rrpvMax = 3

// NewCache builds a cache from its configuration. It panics on
// non-positive sizes or ways — machine configs are static and must be
// valid.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("sim: invalid cache config %+v", cfg))
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		lines:    make([]cacheLine, sets*cfg.Ways),
		partWays: cfg.Ways,
		setMask:  uint64(sets - 1),
		setShift: log2OrMinusOne(sets),
		gen:      1,
		duelMask: 31, // every 32nd set leads a policy
		isDRRIP:  cfg.Policy == DRRIP,
	}
	return c
}

// log2OrMinusOne returns log2(n) when n is a positive power of two and -1
// otherwise, signalling that the general modulo path must be used.
func log2OrMinusOne(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		return -1
	}
	s := 0
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// SetPartition limits the ways the workload may use, emulating Intel CAT
// way-partitioning (the paper uses CAT to measure miss and IPC curves
// across cache allocations, §IV). ways <= 0 or >= total restores the full
// cache. Changing the partition flushes lines in now-forbidden ways.
func (c *Cache) SetPartition(ways int) {
	if ways <= 0 || ways > c.ways {
		ways = c.ways
	}
	if ways < c.partWays {
		// Invalidate lines outside the new partition.
		for s := 0; s < c.sets; s++ {
			base := s * c.ways
			for w := ways; w < c.partWays; w++ {
				c.lines[base+w] = cacheLine{}
			}
		}
	}
	c.partWays = ways
}

// Partition returns the current way allocation.
func (c *Cache) Partition() int { return c.partWays }

// PartitionBytes returns the capacity of the current partition in bytes.
func (c *Cache) PartitionBytes() int {
	return c.sets * c.partWays * trace.LineSize
}

// Access looks up the line containing addr, updating replacement state, and
// reports whether it hit. On a miss the line is installed.
func (c *Cache) Access(addr uint64) (hit bool) {
	c.accesses++
	lineAddr := addr / trace.LineSize
	var set int
	var tag uint64
	if c.setShift >= 0 {
		set = int(lineAddr & c.setMask)
		tag = lineAddr >> uint(c.setShift)
	} else {
		set = int(lineAddr % uint64(c.sets))
		tag = lineAddr / uint64(c.sets)
	}
	base := set * c.ways
	ways := c.lines[base : base+c.partWays]

	for i := range ways {
		if ways[i].gen == c.gen && ways[i].tag == tag {
			c.touch(ways, i)
			return true
		}
	}
	c.misses++
	c.install(ways, set, tag)
	return false
}

// touch updates replacement metadata on a hit.
func (c *Cache) touch(ways []cacheLine, i int) {
	if c.isDRRIP {
		ways[i].meta = 0 // promote to near-immediate re-reference
		return
	}
	c.lruClock++
	ways[i].meta = c.lruClock
}

// install places a new line, evicting per policy.
func (c *Cache) install(ways []cacheLine, set int, tag uint64) {
	// Prefer an invalid way.
	for i := range ways {
		if ways[i].gen != c.gen {
			ways[i] = cacheLine{tag: tag, meta: c.insertMeta(set), gen: c.gen}
			return
		}
	}
	if c.isDRRIP {
		c.installDRRIP(ways, set, tag)
		return
	}
	// LRU eviction: smallest stamp.
	victim := 0
	for i := 1; i < len(ways); i++ {
		if ways[i].meta < ways[victim].meta {
			victim = i
		}
	}
	ways[victim] = cacheLine{tag: tag, meta: c.insertMeta(set), gen: c.gen}
}

// insertMeta returns the replacement metadata for a newly-installed line.
func (c *Cache) insertMeta(set int) uint32 {
	if !c.isDRRIP {
		c.lruClock++
		return c.lruClock
	}
	if c.useBRRIP(set) {
		// BRRIP: insert at distant (rrpvMax) almost always; rarely at
		// rrpvMax-1. Deterministic 1/32 de-rating.
		c.brripCount++
		if c.brripCount%32 == 0 {
			return rrpvMax - 1
		}
		return rrpvMax
	}
	// SRRIP: insert at long re-reference interval.
	return rrpvMax - 1
}

// installDRRIP evicts the first line with RRPV == max, aging until found.
func (c *Cache) installDRRIP(ways []cacheLine, set int, tag uint64) {
	for {
		for i := range ways {
			if ways[i].meta >= rrpvMax {
				// A miss in a leader set trains the dueling counter.
				c.duelTrain(set)
				ways[i] = cacheLine{tag: tag, meta: c.insertMeta(set), gen: c.gen}
				return
			}
		}
		for i := range ways {
			ways[i].meta++
		}
	}
}

// useBRRIP decides the insertion policy for a set: leader sets use their
// fixed policy; follower sets use the policy-selector's winner.
func (c *Cache) useBRRIP(set int) bool {
	switch set & c.duelMask {
	case 0:
		return false // SRRIP leader
	case 1:
		return true // BRRIP leader
	default:
		return c.psel > 0
	}
}

// duelTrain updates the policy selector on leader-set misses: misses in
// SRRIP leaders vote for BRRIP and vice versa.
func (c *Cache) duelTrain(set int) {
	const pselMax = 512
	switch set & c.duelMask {
	case 0: // SRRIP leader missed -> BRRIP gains
		if c.psel < pselMax {
			c.psel++
		}
	case 1: // BRRIP leader missed -> SRRIP gains
		if c.psel > -pselMax {
			c.psel--
		}
	}
}

// Stats returns lifetime accesses and misses.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// Flush invalidates every line and resets statistics. Invalidation is a
// generation bump, not a zeroing pass: stale lines are overwritten lazily as
// the next run installs into them, so flushing a 12 MB L3 costs the same as
// flushing a 32 KB L1.
func (c *Cache) Flush() {
	c.gen++
	if c.gen == 0 {
		// The generation counter wrapped (once per 2^32 flushes): erase the
		// stale lines for real so none of them can alias a reused generation.
		for i := range c.lines {
			c.lines[i] = cacheLine{}
		}
		c.gen = 1
	}
	c.accesses, c.misses = 0, 0
	c.psel, c.brripCount = 0, 0
}

// Reset restores the cache to the exact state of a freshly-constructed one:
// Flush plus the full way partition and a zeroed LRU clock. Flush alone is
// not enough for run-to-run byte identity — the LRU clock keeps counting
// across flushes, and installed-line stamps embed it.
func (c *Cache) Reset() {
	c.Flush()
	c.partWays = c.ways
	c.lruClock = 0
}
