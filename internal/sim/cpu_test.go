package sim

import (
	"math"
	"testing"

	"datamime/internal/trace"
)

func TestMachineConfigsValid(t *testing.T) {
	for _, cfg := range Machines() {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
	if _, err := MachineByName("broadwell"); err != nil {
		t.Fatal(err)
	}
	if _, err := MachineByName("pentium"); err == nil {
		t.Fatal("unknown machine resolved")
	}
}

func TestTableIIParameters(t *testing.T) {
	bw := Broadwell()
	if bw.L3 == nil || bw.L3.SizeBytes != 12<<20 || bw.L3.Ways != 12 || bw.L3.Policy != DRRIP {
		t.Fatalf("Broadwell L3 does not match Table II: %+v", bw.L3)
	}
	if bw.L2.SizeBytes != 256<<10 || bw.FreqGHz != 2.0 {
		t.Fatal("Broadwell L2/freq mismatch")
	}
	z := Zen2()
	if z.L3 == nil || z.L3.SizeBytes != 16<<20 || z.L3.Ways != 16 {
		t.Fatal("Zen2 L3 mismatch (16 MB per chiplet)")
	}
	if z.L2.SizeBytes != 512<<10 || z.FreqGHz != 3.5 {
		t.Fatal("Zen2 L2/freq mismatch")
	}
	s := Silvermont()
	if s.L3 != nil {
		t.Fatal("Silvermont must have no L3")
	}
	if s.L2.SizeBytes != 1<<20 || s.FreqGHz != 2.4 {
		t.Fatal("Silvermont L2/freq mismatch")
	}
	if s.L1D.SizeBytes != 24<<10 {
		t.Fatal("Silvermont 24KB L1D mismatch")
	}
}

func newTestMachine() *Machine {
	return NewMachine(Broadwell(), 100_000)
}

func TestMachinePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	NewMachine(Broadwell(), 0)
}

func TestOpsProduceFullIPC(t *testing.T) {
	m := newTestMachine()
	// Pure compute: IPC should equal the width.
	for i := 0; i < 20; i++ {
		m.Ops(100_000)
	}
	samples := m.Samples()
	if len(samples) == 0 {
		t.Fatal("no windows closed")
	}
	for _, s := range samples {
		if math.Abs(s.IPC-4) > 1e-9 {
			t.Fatalf("compute-only IPC = %g, want 4 (width)", s.IPC)
		}
		if s.CPUUtil != 1 {
			t.Fatalf("compute-only CPU util = %g, want 1", s.CPUUtil)
		}
		if s.LLCMPKI != 0 || s.MemBWGBs != 0 {
			t.Fatal("compute-only run produced memory traffic")
		}
	}
}

func TestMemoryBoundLowersIPC(t *testing.T) {
	m := newTestMachine()
	// Stream far beyond the LLC: every line misses to memory.
	addr := uint64(0x10000000)
	for i := 0; i < 400_000; i++ {
		m.Load(addr, 64)
		addr += 64
	}
	samples := m.Samples()
	if len(samples) == 0 {
		t.Fatal("no windows closed")
	}
	last := samples[len(samples)-1]
	if last.IPC >= 1 {
		t.Fatalf("streaming IPC = %g, want memory-bound < 1", last.IPC)
	}
	if last.LLCMPKI < 100 {
		t.Fatalf("streaming LLC MPKI = %g, want high", last.LLCMPKI)
	}
	if last.MemBWGBs <= 0 {
		t.Fatal("no memory bandwidth recorded")
	}
}

func TestCacheResidentWorkloadHasLowMPKI(t *testing.T) {
	m := newTestMachine()
	// 16 KB working set: fits in L1D after warmup.
	for pass := 0; pass < 2000; pass++ {
		for off := uint64(0); off < 16<<10; off += 64 {
			m.Load(0x20000000+off, 64)
		}
	}
	samples := m.Samples()
	if len(samples) < 2 {
		t.Fatalf("need multiple windows, got %d", len(samples))
	}
	last := samples[len(samples)-1]
	if last.L1DMPKI > 1 {
		t.Fatalf("resident working set L1D MPKI = %g", last.L1DMPKI)
	}
	if last.IPC < 3 {
		t.Fatalf("resident working set IPC = %g, want near width", last.IPC)
	}
}

func TestIdleLowersUtilization(t *testing.T) {
	m := newTestMachine()
	for i := 0; i < 100; i++ {
		m.Ops(10_000)  // 2,500 busy cycles at width 4
		m.Idle(47_500) // 95% idle
	}
	samples := m.Samples()
	if len(samples) == 0 {
		t.Fatal("no windows closed")
	}
	for _, s := range samples {
		if s.CPUUtil > 0.15 || s.CPUUtil < 0.01 {
			t.Fatalf("CPU util = %g, want ~0.05", s.CPUUtil)
		}
		// IPC is per busy cycle, so it stays at the width.
		if math.Abs(s.IPC-4) > 1e-9 {
			t.Fatalf("idle-heavy IPC = %g, want 4", s.IPC)
		}
	}
}

func TestIdleDoesNotCloseWindows(t *testing.T) {
	// Sampling intervals elapse in busy (unhalted) cycles, as on hardware:
	// pure idleness closes no windows, it only stretches the current one.
	m := newTestMachine()
	m.Ops(400)
	m.Idle(10_000_000)
	if n := len(m.Samples()); n != 0 {
		t.Fatalf("pure idle closed %d windows", n)
	}
	// Once enough busy cycles accumulate, the window closes and reflects
	// the idleness in its utilization.
	m.Ops(400_000)
	samples := m.Samples()
	if len(samples) == 0 {
		t.Fatal("busy work did not close the window")
	}
	if samples[0].CPUUtil > 0.05 {
		t.Fatalf("idle-stretched window util = %g, want tiny", samples[0].CPUUtil)
	}
}

func TestBranchMispredictsCounted(t *testing.T) {
	m := newTestMachine()
	rng := newDetRand(1)
	for i := 0; i < 300_000; i++ {
		m.Branch(uint64(i%7), rng()%2 == 0)
	}
	samples := m.Samples()
	if len(samples) == 0 {
		t.Fatal("no windows")
	}
	s := samples[len(samples)-1]
	if s.BranchMPKI < 100 {
		t.Fatalf("random branches MPKI = %g, want high", s.BranchMPKI)
	}
}

// newDetRand is a tiny deterministic xorshift for test input streams.
func newDetRand(seed uint64) func() uint64 {
	x := seed | 1
	return func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
}

func TestExecInstructionFootprint(t *testing.T) {
	m := newTestMachine()
	cl := trace.NewCodeLayout()
	// Giant code footprint (2 MB): overflows L1I badly.
	big := cl.Region("big", 2<<20)
	for i := 0; i < 300; i++ {
		m.Exec(big, 40_000)
	}
	bigMiss := m.Samples()[len(m.Samples())-1].ICacheMPKI

	m2 := newTestMachine()
	cl2 := trace.NewCodeLayout()
	small := cl2.Region("small", 4<<10) // resident loop
	for i := 0; i < 300; i++ {
		m2.Exec(small, 40_000)
	}
	smallMiss := m2.Samples()[len(m2.Samples())-1].ICacheMPKI

	if bigMiss <= smallMiss*5 {
		t.Fatalf("icache MPKI: big footprint %g vs small %g — expected big >> small", bigMiss, smallMiss)
	}
}

func TestLLCPartitionAffectsMissCurve(t *testing.T) {
	run := func(ways int) float64 {
		m := NewMachine(Broadwell(), 200_000)
		m.SetLLCPartition(ways)
		// 4 MB working set: fits in >=4 ways (4 MB), thrashes at 1 way.
		for pass := 0; pass < 12; pass++ {
			for off := uint64(0); off < 4<<20; off += 64 {
				m.Load(0x40000000+off, 64)
			}
		}
		s := m.Samples()
		return s[len(s)-1].LLCMPKI
	}
	small := run(1)
	large := run(8)
	if large >= small {
		t.Fatalf("LLC MPKI should fall with partition size: 1 way %g vs 8 ways %g", small, large)
	}
	if small < 1 {
		t.Fatalf("1-way partition MPKI = %g, want thrashing", small)
	}
}

func TestSilvermontLLCIsL2(t *testing.T) {
	m := NewMachine(Silvermont(), 100_000)
	if m.LLCWays() != 8 {
		t.Fatalf("Silvermont LLC ways = %d, want L2's 8", m.LLCWays())
	}
	m.SetLLCPartition(2)
	if m.LLCPartitionBytes() != (1<<20)/4 {
		t.Fatalf("partition bytes = %d", m.LLCPartitionBytes())
	}
	// Stream past 1 MB: must register LLC misses (L2 misses go to memory).
	addr := uint64(0x50000000)
	for i := 0; i < 200_000; i++ {
		m.Load(addr, 64)
		addr += 64
	}
	s := m.Samples()
	if len(s) == 0 || s[len(s)-1].LLCMPKI == 0 {
		t.Fatal("Silvermont streaming produced no LLC misses")
	}
}

func TestCrossMachineIPCDiffers(t *testing.T) {
	// The same event stream must yield different IPC on different
	// machines — the premise of cross-microarchitecture validation (Fig 3).
	ipcOn := func(cfg MachineConfig) float64 {
		m := NewMachine(cfg, 100_000)
		rng := newDetRand(7)
		addr := uint64(0x60000000)
		for i := 0; i < 50_000; i++ {
			m.Ops(20)
			m.Load(addr+uint64(rng()%(8<<20)), 64)
			m.Branch(uint64(rng()%64), rng()%3 == 0)
		}
		s := m.Samples()
		if len(s) == 0 {
			t.Fatal("no windows")
		}
		return s[len(s)-1].IPC
	}
	bw := ipcOn(Broadwell())
	zen := ipcOn(Zen2())
	slm := ipcOn(Silvermont())
	if !(zen > bw && bw > slm) {
		t.Fatalf("IPC ordering zen2(%g) > broadwell(%g) > silvermont(%g) violated", zen, bw, slm)
	}
}

func TestFlushSamplesKeepsWarmState(t *testing.T) {
	m := newTestMachine()
	for off := uint64(0); off < 16<<10; off += 64 {
		m.Load(0x70000000+off, 64)
	}
	m.FlushSamples()
	if len(m.Samples()) != 0 {
		t.Fatal("FlushSamples left samples")
	}
	// The working set must still be resident (warm caches).
	for off := uint64(0); off < 16<<10; off += 64 {
		m.Load(0x70000000+off, 64)
	}
	// Force a window to close with busy compute.
	m.Ops(500_000)
	s := m.Samples()
	if len(s) == 0 {
		t.Fatal("no window after flush")
	}
	if s[0].L1DMPKI > 1 {
		t.Fatalf("caches were not kept warm: L1D MPKI = %g", s[0].L1DMPKI)
	}
}

func TestDegenerateEventsIgnored(t *testing.T) {
	m := newTestMachine()
	m.Ops(0)
	m.Ops(-5)
	m.Load(0x1000, 0)
	m.Idle(-10)
	cl := trace.NewCodeLayout()
	r := cl.Region("r", 64)
	m.Exec(r, 0)
	if m.TotalCycles() != 0 {
		t.Fatalf("degenerate events advanced time: %g", m.TotalCycles())
	}
}

func TestBusyAndTotalCycles(t *testing.T) {
	m := newTestMachine()
	m.Ops(4000) // 1000 cycles
	m.Idle(500)
	if math.Abs(m.BusyCycles()-1000) > 1e-9 {
		t.Fatalf("BusyCycles = %g", m.BusyCycles())
	}
	if math.Abs(m.TotalCycles()-1500) > 1e-9 {
		t.Fatalf("TotalCycles = %g", m.TotalCycles())
	}
}
