package sim

import (
	"math"
	"testing"
	"testing/quick"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

// TestWindowAccountingIdentity checks that the per-window instruction
// counts and the machine's total cycle accounting stay consistent under an
// arbitrary event mix.
func TestWindowAccountingIdentity(t *testing.T) {
	rng := stats.NewRNG(101)
	m := NewMachine(Broadwell(), 50_000)
	cl := trace.NewCodeLayout()
	regions := []*trace.CodeRegion{
		cl.Region("a", 4<<10), cl.Region("b", 40<<10), cl.Region("c", 512),
	}
	for i := 0; i < 200_000; i++ {
		switch rng.IntN(5) {
		case 0:
			m.Ops(1 + rng.IntN(50))
		case 1:
			m.Load(uint64(0x10000000+rng.IntN(32<<20)), 1+rng.IntN(512))
		case 2:
			m.Store(uint64(0x20000000+rng.IntN(1<<20)), 1+rng.IntN(64))
		case 3:
			m.Exec(regions[rng.IntN(len(regions))], 1+rng.IntN(400))
		case 4:
			m.Branch(uint64(rng.IntN(1024)), rng.Bool(0.4))
		}
		if rng.Bool(0.01) {
			m.Idle(float64(rng.IntN(100_000)))
		}
	}
	if m.TotalCycles() < m.BusyCycles() {
		t.Fatal("total cycles below busy cycles")
	}
	// Each closed window carries at least windowCycles of busy time by
	// construction, so the busy total bounds the window count.
	maxWindows := int(m.BusyCycles()/m.WindowCycles()) + 1
	if n := len(m.Samples()); n > maxWindows {
		t.Fatalf("%d windows closed from %.0f busy cycles", n, m.BusyCycles())
	}
}

// TestSampleMetricBounds fuzzes event streams and checks every emitted
// sample satisfies physical bounds: IPC within pipeline width, rates
// non-negative, utilization within [0, 1].
func TestSampleMetricBounds(t *testing.T) {
	for _, cfg := range Machines() {
		rng := stats.NewRNG(stats.HashSeed(7, cfg.Name))
		m := NewMachine(cfg, 30_000)
		cl := trace.NewCodeLayout()
		code := cl.Region("f", 96<<10)
		for i := 0; i < 150_000; i++ {
			switch rng.IntN(4) {
			case 0:
				m.Ops(1 + rng.IntN(30))
			case 1:
				m.Load(uint64(0x10000000+rng.IntN(64<<20)), 1+rng.IntN(4096))
			case 2:
				m.Exec(code, 1+rng.IntN(200))
			case 3:
				m.Branch(uint64(rng.IntN(64)), rng.Bool(0.5))
			}
			if rng.Bool(0.005) {
				m.Idle(float64(rng.IntN(200_000)))
			}
		}
		width := float64(cfg.Width)
		for i, s := range m.Samples() {
			if s.IPC < 0 || s.IPC > width+1e-9 {
				t.Fatalf("%s window %d: IPC %g outside [0, %g]", cfg.Name, i, s.IPC, width)
			}
			for name, v := range map[string]float64{
				"l1d": s.L1DMPKI, "l2": s.L2MPKI, "llc": s.LLCMPKI,
				"ic": s.ICacheMPKI, "itlb": s.ITLBMPKI, "dtlb": s.DTLBMPKI,
				"br": s.BranchMPKI, "bw": s.MemBWGBs,
			} {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s window %d: %s = %g", cfg.Name, i, name, v)
				}
			}
			// Misses cannot outnumber accesses: MPKI is bounded by the
			// event densities; a loose sanity cap suffices (1 miss per
			// instruction = 1000 MPKI).
			if s.LLCMPKI > 1000 || s.BranchMPKI > 1000 {
				t.Fatalf("%s window %d: implausible MPKI %g/%g", cfg.Name, i, s.LLCMPKI, s.BranchMPKI)
			}
		}
		for i, w := range m.WallSamples() {
			if w.CPUUtil < 0 || w.CPUUtil > 1+1e-9 {
				t.Fatalf("%s wall window %d: util %g", cfg.Name, i, w.CPUUtil)
			}
			if w.MemBWGBs < 0 {
				t.Fatalf("%s wall window %d: bandwidth %g", cfg.Name, i, w.MemBWGBs)
			}
		}
	}
}

// TestMissHierarchyMonotone checks the inclusion-style invariant: misses at
// an outer level can never exceed misses at the inner level feeding it,
// per window, for a pure data-access stream.
func TestMissHierarchyMonotone(t *testing.T) {
	rng := stats.NewRNG(55)
	m := NewMachine(Broadwell(), 40_000)
	for i := 0; i < 400_000; i++ {
		m.Load(uint64(0x10000000+rng.IntN(64<<20))&^63, 64)
	}
	for i, s := range m.Samples() {
		// Data-only stream: L2 misses <= L1D misses, LLC misses <= L2
		// misses (per kilo-instruction, same denominator).
		if s.L2MPKI > s.L1DMPKI+1e-9 {
			t.Fatalf("window %d: L2 MPKI %g > L1D MPKI %g", i, s.L2MPKI, s.L1DMPKI)
		}
		if s.LLCMPKI > s.L2MPKI+1e-9 {
			t.Fatalf("window %d: LLC MPKI %g > L2 MPKI %g", i, s.LLCMPKI, s.L2MPKI)
		}
	}
}

// TestCachePartitionProperty uses quick.Check over partition sizes: for a
// fixed working set, a larger partition never yields (meaningfully) more
// misses.
func TestCachePartitionProperty(t *testing.T) {
	missRate := func(ways int) float64 {
		c := NewCache(CacheConfig{Name: "llc", SizeBytes: 1 << 20, Ways: 8, Policy: LRU})
		c.SetPartition(ways)
		lines := (1 << 20) / trace.LineSize * 3 / 4
		misses, accesses := 0, 0
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < lines; i++ {
				accesses++
				if !c.Access(uint64(i * trace.LineSize)) {
					misses++
				}
			}
		}
		return float64(misses) / float64(accesses)
	}
	rates := make([]float64, 9)
	for w := 1; w <= 8; w++ {
		rates[w] = missRate(w)
	}
	for w := 2; w <= 8; w++ {
		if rates[w] > rates[w-1]+0.02 {
			t.Fatalf("miss rate rose with partition size: %d ways %.3f vs %d ways %.3f",
				w-1, rates[w-1], w, rates[w])
		}
	}
}

// TestDeterministicReplayProperty: identical event streams yield identical
// samples — the foundation of reproducible profiling.
func TestDeterministicReplayProperty(t *testing.T) {
	f := func(seed uint64) bool {
		run := func() []WindowSample {
			rng := stats.NewRNG(seed)
			m := NewMachine(Zen2(), 20_000)
			cl := trace.NewCodeLayout()
			code := cl.Region("g", 8<<10)
			for i := 0; i < 30_000; i++ {
				switch rng.IntN(3) {
				case 0:
					m.Load(uint64(0x10000000+rng.IntN(8<<20)), 64)
				case 1:
					m.Exec(code, 50)
				case 2:
					m.Branch(uint64(rng.IntN(32)), rng.Bool(0.3))
				}
			}
			out := make([]WindowSample, len(m.Samples()))
			copy(out, m.Samples())
			return out
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestBranchMPKIMatchesPredictorStats cross-checks window accounting
// against the predictor's own counters.
func TestBranchMPKIMatchesPredictorStats(t *testing.T) {
	rng := stats.NewRNG(66)
	m := NewMachine(Broadwell(), 1e12) // one giant window, never closes
	const n = 100_000
	for i := 0; i < n; i++ {
		m.Branch(uint64(rng.IntN(16)), rng.Bool(0.5))
	}
	branches, misses := m.bp.Stats()
	if branches != n {
		t.Fatalf("predictor saw %d branches", branches)
	}
	if misses == 0 || misses >= branches {
		t.Fatalf("implausible misses %d", misses)
	}
	if m.win.branchMis != misses {
		t.Fatalf("window mispredicts %d != predictor %d", m.win.branchMis, misses)
	}
	if m.win.instrs != n {
		t.Fatalf("window instrs %d != %d", m.win.instrs, n)
	}
}
