package sim

import (
	"testing"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

// driveMixed replays a deterministic mixed event stream (loads, stores,
// code fetch, branches, idle gaps) seeded by seed — the same shape of
// traffic a profiled server generates.
func driveMixed(m *Machine, seed uint64, events int) {
	rng := stats.NewRNG(seed)
	cl := trace.NewCodeLayout()
	code := cl.Region("f", 32<<10)
	for i := 0; i < events; i++ {
		switch rng.IntN(5) {
		case 0:
			m.Ops(1 + rng.IntN(40))
		case 1:
			m.Load(uint64(0x10000000+rng.IntN(48<<20)), 1+rng.IntN(256))
		case 2:
			m.Store(uint64(0x20000000+rng.IntN(2<<20)), 1+rng.IntN(64))
		case 3:
			m.Exec(code, 1+rng.IntN(200))
		case 4:
			m.Branch(uint64(rng.IntN(256)), rng.Bool(0.4))
		}
		if rng.Bool(0.01) {
			m.Idle(float64(rng.IntN(80_000)))
		}
	}
}

// TestResetMatchesFreshMachine pins down the property the parallel profiler
// depends on for worker-local machine reuse: a run on a Reset machine is
// byte-identical to the same run on a freshly-constructed machine, even
// after the prior run narrowed the LLC partition and left replacement
// clocks, dueling counters, and partial windows behind.
func TestResetMatchesFreshMachine(t *testing.T) {
	for _, cfg := range Machines() {
		t.Run(cfg.Name, func(t *testing.T) {
			collect := func(m *Machine) ([]WindowSample, []WallSample, float64, float64) {
				m.SetLLCPartition(3)
				driveMixed(m, stats.HashSeed(11, cfg.Name), 120_000)
				s := append([]WindowSample(nil), m.Samples()...)
				w := append([]WallSample(nil), m.WallSamples()...)
				return s, w, m.TotalCycles(), m.BusyCycles()
			}

			fresh := NewMachine(cfg, 40_000)
			wantS, wantW, wantTot, wantBusy := collect(fresh)

			reused := NewMachine(cfg, 40_000)
			// Dirty the machine with a different-seed run at a different
			// partition, then Reset and repeat the reference run.
			reused.SetLLCPartition(5)
			driveMixed(reused, stats.HashSeed(99, cfg.Name), 60_000)
			reused.Reset()
			gotS, gotW, gotTot, gotBusy := collect(reused)

			if len(gotS) != len(wantS) {
				t.Fatalf("sample count %d != fresh %d", len(gotS), len(wantS))
			}
			for i := range gotS {
				if gotS[i] != wantS[i] {
					t.Fatalf("window %d diverged after Reset:\n got %+v\nwant %+v", i, gotS[i], wantS[i])
				}
			}
			if len(gotW) != len(wantW) {
				t.Fatalf("wall sample count %d != fresh %d", len(gotW), len(wantW))
			}
			for i := range gotW {
				if gotW[i] != wantW[i] {
					t.Fatalf("wall window %d diverged after Reset: got %+v want %+v", i, gotW[i], wantW[i])
				}
			}
			if gotTot != wantTot || gotBusy != wantBusy {
				t.Fatalf("cycle totals diverged: got (%g, %g) want (%g, %g)", gotTot, gotBusy, wantTot, wantBusy)
			}
		})
	}
}

// TestResetRestoresPartitionAndClocks checks the state Flush deliberately
// leaves behind is rewound by Reset.
func TestResetRestoresPartitionAndClocks(t *testing.T) {
	c := NewCache(CacheConfig{Name: "L", SizeBytes: 1 << 20, Ways: 8, Policy: LRU})
	c.SetPartition(2)
	for i := 0; i < 10_000; i++ {
		c.Access(uint64(i * trace.LineSize))
	}
	if c.lruClock == 0 {
		t.Fatal("expected LRU clock to advance")
	}
	c.Reset()
	if c.Partition() != 8 {
		t.Fatalf("partition %d after Reset, want full 8", c.Partition())
	}
	if c.lruClock != 0 {
		t.Fatalf("lruClock %d after Reset, want 0", c.lruClock)
	}
	if a, m := c.Stats(); a != 0 || m != 0 {
		t.Fatalf("stats (%d, %d) after Reset", a, m)
	}

	tl := NewTLB(TLBConfig{Name: "T", Entries: 64, Ways: 4, PageBytes: 4096})
	for i := 0; i < 10_000; i++ {
		tl.Access(uint64(i * 4096))
	}
	if tl.clock == 0 {
		t.Fatal("expected TLB clock to advance")
	}
	tl.Reset()
	if tl.clock != 0 {
		t.Fatalf("TLB clock %d after Reset, want 0", tl.clock)
	}
	for i, e := range tl.entries {
		if e.stamp != 0 {
			t.Fatalf("TLB stamp[%d] = %d after Reset", i, e.stamp)
		}
	}
}

// TestPow2IndexingMatchesDivision forces the general modulo path on a
// power-of-two cache and TLB and checks the hit/miss stream is identical to
// the shift-and-mask fast path.
func TestPow2IndexingMatchesDivision(t *testing.T) {
	cfg := CacheConfig{Name: "L", SizeBytes: 256 << 10, Ways: 8, Policy: DRRIP}
	fast := NewCache(cfg)
	slow := NewCache(cfg)
	if fast.setShift < 0 {
		t.Fatalf("expected pow2 sets for %+v", cfg)
	}
	slow.setShift = -1 // force the division path
	rng := stats.NewRNG(21)
	for i := 0; i < 200_000; i++ {
		addr := uint64(rng.IntN(16 << 20))
		if fast.Access(addr) != slow.Access(addr) {
			t.Fatalf("cache hit/miss diverged at access %d", i)
		}
	}
	fa, fm := fast.Stats()
	sa, sm := slow.Stats()
	if fa != sa || fm != sm {
		t.Fatalf("cache stats diverged: (%d, %d) vs (%d, %d)", fa, fm, sa, sm)
	}

	tcfg := TLBConfig{Name: "T", Entries: 128, Ways: 4, PageBytes: 4096}
	ft := NewTLB(tcfg)
	st := NewTLB(tcfg)
	if ft.setShift < 0 || ft.pageShift < 0 {
		t.Fatalf("expected pow2 TLB for %+v", tcfg)
	}
	st.setShift, st.pageShift = -1, -1
	for i := 0; i < 200_000; i++ {
		addr := uint64(rng.IntN(1 << 28))
		if ft.Access(addr) != st.Access(addr) {
			t.Fatalf("TLB hit/miss diverged at access %d", i)
		}
	}

	// Silvermont's 48-entry TLBs land on 12 sets — the non-pow2 fallback
	// must engage there.
	nt := NewTLB(Silvermont().ITLB)
	if nt.setShift != -1 {
		t.Fatalf("Silvermont ITLB sets should take the division path, got shift %d", nt.setShift)
	}
}

// TestReserveSamplesKeepsContents grows buffers without disturbing
// already-collected windows.
func TestReserveSamplesKeepsContents(t *testing.T) {
	m := NewMachine(Broadwell(), 20_000)
	driveMixed(m, 5, 30_000)
	before := append([]WindowSample(nil), m.Samples()...)
	m.ReserveSamples(len(before) + 500)
	if cap(m.samples) < len(before)+500 {
		t.Fatalf("capacity %d, want >= %d", cap(m.samples), len(before)+500)
	}
	for i, s := range m.Samples() {
		if s != before[i] {
			t.Fatalf("sample %d changed by ReserveSamples", i)
		}
	}
}
