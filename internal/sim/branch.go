package sim

import "fmt"

// BranchConfig describes a branch predictor.
type BranchConfig struct {
	// TableBits sizes the pattern history table at 2^TableBits 2-bit
	// counters.
	TableBits int
	// HistoryBits is the global-history length for gshare indexing.
	HistoryBits int
}

// BranchPredictor is a gshare predictor: a table of 2-bit saturating
// counters indexed by the branch site XOR global history. Data-dependent
// branch streams (key-comparison loops, posting-list intersections,
// transaction-type dispatch) produce the Branch MPKI the paper profiles.
type BranchPredictor struct {
	cfg      BranchConfig
	table    []uint8
	mask     uint64
	history  uint64
	histMask uint64
	branches uint64
	misses   uint64
}

// NewBranchPredictor builds a predictor; counters start weakly not-taken.
// It panics on invalid configuration.
func NewBranchPredictor(cfg BranchConfig) *BranchPredictor {
	if cfg.TableBits <= 0 || cfg.TableBits > 24 || cfg.HistoryBits < 0 || cfg.HistoryBits > 32 {
		panic(fmt.Sprintf("sim: invalid branch predictor config %+v", cfg))
	}
	size := 1 << cfg.TableBits
	table := make([]uint8, size)
	for i := range table {
		table[i] = 1 // weakly not-taken
	}
	return &BranchPredictor{
		cfg:      cfg,
		table:    table,
		mask:     uint64(size - 1),
		histMask: (1 << cfg.HistoryBits) - 1,
	}
}

// Config returns the predictor's configuration.
func (b *BranchPredictor) Config() BranchConfig { return b.cfg }

// Predict consumes a branch outcome, returning whether the prediction was
// correct, and trains the predictor.
func (b *BranchPredictor) Predict(site uint64, taken bool) (correct bool) {
	b.branches++
	idx := (mix(site) ^ b.history) & b.mask
	ctr := b.table[idx]
	predTaken := ctr >= 2
	correct = predTaken == taken
	if !correct {
		b.misses++
	}
	// Train the 2-bit counter.
	if taken && ctr < 3 {
		b.table[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		b.table[idx] = ctr - 1
	}
	// Shift global history.
	b.history = ((b.history << 1) | boolBit(taken)) & b.histMask
	return correct
}

// Stats returns lifetime branches and mispredictions.
func (b *BranchPredictor) Stats() (branches, misses uint64) { return b.branches, b.misses }

// Flush resets the predictor state and statistics.
func (b *BranchPredictor) Flush() {
	for i := range b.table {
		b.table[i] = 1
	}
	b.history = 0
	b.branches, b.misses = 0, 0
}

// mix hashes a branch site so nearby sites spread across the table.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
