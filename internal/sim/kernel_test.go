package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"datamime/internal/trace"
)

// The batched kernel must be observationally identical to the scalar
// reference walk: identical window samples, wall samples, cycle totals,
// per-level access/miss statistics, and identical cache/TLB residency.
// Internal LRU clock values are allowed to differ (coalescing elides
// re-touches of already-MRU lines, which skips clock increments without
// changing recency order); everything observable is pinned bit for bit.

// kernelEvent is one replayable trace event.
type kernelEvent struct {
	kind int // 0 load, 1 store, 2 exec, 3 branch, 4 ops, 5 idle
	addr uint64
	size int
	reg  int
	val  int
}

// genKernelEvents builds a deterministic mixed stream exercising every path
// the kernel specializes: multi-line accesses, repeated same-line accesses
// (coalescing), LLC-pressure random traffic, instruction loops over tiny
// and large regions, branches, idle gaps.
func genKernelEvents(n int, seed int64) []kernelEvent {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]kernelEvent, 0, n)
	const hot = uint64(1 << 20)
	for len(evs) < n {
		switch rng.Intn(12) {
		case 0, 1, 2: // random loads across 32 MB: L2/LLC/memory pressure
			evs = append(evs, kernelEvent{kind: 0, addr: uint64(rng.Intn(32 << 20)), size: 8 + rng.Intn(64)})
		case 3: // back-to-back same-line accesses: coalescing fodder
			a := hot + uint64(rng.Intn(256)&^7)
			evs = append(evs,
				kernelEvent{kind: 0, addr: a, size: 8},
				kernelEvent{kind: 0, addr: a, size: 8},
				kernelEvent{kind: 1, addr: a + 4, size: 4},
			)
		case 4: // same line leading a multi-line access: partial coalesce
			a := hot + uint64(rng.Intn(4096)&^63)
			evs = append(evs,
				kernelEvent{kind: 0, addr: a, size: 8},
				kernelEvent{kind: 0, addr: a, size: 192},
			)
		case 5: // multi-line store bursts (MLP path)
			evs = append(evs, kernelEvent{kind: 1, addr: uint64(rng.Intn(1 << 20)), size: 64 + rng.Intn(512)})
		case 6, 7: // instruction fetch over a random region
			evs = append(evs, kernelEvent{kind: 2, reg: rng.Intn(4), val: 8 + rng.Intn(640)})
		case 8: // tight loop on the one-line region: instruction coalescing
			evs = append(evs,
				kernelEvent{kind: 2, reg: 0, val: 8},
				kernelEvent{kind: 2, reg: 0, val: 8},
				kernelEvent{kind: 2, reg: 0, val: 8},
			)
		case 9:
			evs = append(evs, kernelEvent{kind: 3, addr: uint64(rng.Intn(64)) * 8, val: rng.Intn(2)})
		case 10:
			evs = append(evs, kernelEvent{kind: 4, val: 1 + rng.Intn(50)})
		case 11:
			evs = append(evs, kernelEvent{kind: 5, val: rng.Intn(3000)})
		}
	}
	return evs[:n]
}

// kernelTestRegions builds a fresh region set per machine: regions carry a
// mutable cursor, so the two replays must not share them.
func kernelTestRegions() []*trace.CodeRegion {
	cl := trace.NewCodeLayout()
	return []*trace.CodeRegion{
		cl.Region("loop1", 1),      // one line: every fetch re-touches it
		cl.Region("small", 3*64),   // wraps quickly
		cl.Region("mid", 40*64),    // L1I-resident
		cl.Region("large", 900*64), // exceeds the 512-line L1I
	}
}

func replayKernelEvents(m *Machine, regions []*trace.CodeRegion, evs []kernelEvent) {
	for _, e := range evs {
		switch e.kind {
		case 0:
			m.Load(e.addr, e.size)
		case 1:
			m.Store(e.addr, e.size)
		case 2:
			m.Exec(regions[e.reg], e.val)
		case 3:
			m.Branch(e.addr, e.val == 1)
		case 4:
			m.Ops(e.val)
		case 5:
			m.Idle(float64(e.val))
		}
	}
}

// assertCachesMatch compares everything observable about two caches: stats
// and residency (valid ways and their tags). LRU stamps may legitimately
// differ under coalescing; DRRIP metadata may not (RRPVs are a pure
// function of the access stream, which elision never changes).
func assertCachesMatch(t *testing.T, name string, a, b *Cache) {
	t.Helper()
	aAcc, aMiss := a.Stats()
	bAcc, bMiss := b.Stats()
	if aAcc != bAcc || aMiss != bMiss {
		t.Errorf("%s stats diverge: batched %d/%d scalar %d/%d", name, aAcc, aMiss, bAcc, bMiss)
	}
	if len(a.lines) != len(b.lines) {
		t.Fatalf("%s line slab sizes differ", name)
	}
	for i := range a.lines {
		av := a.lines[i].gen == a.gen
		bv := b.lines[i].gen == b.gen
		if av != bv {
			t.Fatalf("%s line %d validity diverges: batched %v scalar %v", name, i, av, bv)
		}
		if av && a.lines[i].tag != b.lines[i].tag {
			t.Fatalf("%s line %d tag diverges: batched %#x scalar %#x", name, i, a.lines[i].tag, b.lines[i].tag)
		}
		if av && a.isDRRIP && a.lines[i].meta != b.lines[i].meta {
			t.Fatalf("%s line %d RRPV diverges: batched %d scalar %d", name, i, a.lines[i].meta, b.lines[i].meta)
		}
	}
	if a.psel != b.psel || a.brripCount != b.brripCount {
		t.Errorf("%s dueling state diverges: psel %d/%d brrip %d/%d", name, a.psel, b.psel, a.brripCount, b.brripCount)
	}
}

func assertTLBsMatch(t *testing.T, name string, a, b *TLB) {
	t.Helper()
	aAcc, aMiss := a.Stats()
	bAcc, bMiss := b.Stats()
	if aAcc != bAcc || aMiss != bMiss {
		t.Errorf("%s stats diverge: batched %d/%d scalar %d/%d", name, aAcc, aMiss, bAcc, bMiss)
	}
	for i := range a.entries {
		if a.entries[i].valid != b.entries[i].valid {
			t.Fatalf("%s entry %d validity diverges", name, i)
		}
		if a.entries[i].valid && a.entries[i].tag != b.entries[i].tag {
			t.Fatalf("%s entry %d tag diverges: batched %#x scalar %#x",
				name, i, a.entries[i].tag, b.entries[i].tag)
		}
	}
}

// assertMachinesMatch pins every observable output of the two machines.
func assertMachinesMatch(t *testing.T, batched, scalar *Machine) {
	t.Helper()
	if !reflect.DeepEqual(batched.Samples(), scalar.Samples()) {
		t.Errorf("window samples diverge: batched %d windows, scalar %d windows",
			len(batched.Samples()), len(scalar.Samples()))
		for i := range batched.Samples() {
			if i < len(scalar.Samples()) && batched.Samples()[i] != scalar.Samples()[i] {
				t.Fatalf("first divergence at window %d:\n  batched %+v\n  scalar  %+v",
					i, batched.Samples()[i], scalar.Samples()[i])
			}
		}
	}
	if !reflect.DeepEqual(batched.WallSamples(), scalar.WallSamples()) {
		t.Errorf("wall samples diverge")
	}
	if batched.TotalCycles() != scalar.TotalCycles() || batched.BusyCycles() != scalar.BusyCycles() {
		t.Errorf("cycle totals diverge: batched %g/%g scalar %g/%g",
			batched.BusyCycles(), batched.TotalCycles(), scalar.BusyCycles(), scalar.TotalCycles())
	}
	if batched.win != scalar.win {
		t.Errorf("open window counters diverge:\n  batched %+v\n  scalar  %+v", batched.win, scalar.win)
	}
	assertCachesMatch(t, "L1I", batched.l1i, scalar.l1i)
	assertCachesMatch(t, "L1D", batched.l1d, scalar.l1d)
	assertCachesMatch(t, "L2", batched.l2, scalar.l2)
	if batched.l3 != nil {
		assertCachesMatch(t, "L3", batched.l3, scalar.l3)
	}
	assertTLBsMatch(t, "ITLB", batched.itlb, scalar.itlb)
	assertTLBsMatch(t, "DTLB", batched.dtlb, scalar.dtlb)
}

// equivalenceConfigs is the test matrix: all three Table II machines as
// configured (Broadwell's L3 is DRRIP, the rest LRU), plus policy-flipped
// LLC variants so both policies are exercised on every topology, plus a
// DRRIP-L1D variant that must disable data-side coalescing.
func equivalenceConfigs() map[string]MachineConfig {
	broadwellLRU := Broadwell()
	broadwellLRU.Name = "broadwell-lru-llc"
	broadwellLRU.L3.Policy = LRU

	zen2DRRIP := Zen2()
	zen2DRRIP.Name = "zen2-drrip-llc"
	zen2DRRIP.L3.Policy = DRRIP

	silvermontDRRIP := Silvermont()
	silvermontDRRIP.Name = "silvermont-drrip-l2"
	silvermontDRRIP.L2.Policy = DRRIP

	drripL1 := Broadwell()
	drripL1.Name = "broadwell-drrip-l1d"
	drripL1.L1D.Policy = DRRIP
	drripL1.L1I.Policy = DRRIP

	return map[string]MachineConfig{
		"broadwell":          Broadwell(),
		"zen2":               Zen2(),
		"silvermont":         Silvermont(),
		broadwellLRU.Name:    broadwellLRU,
		zen2DRRIP.Name:       zen2DRRIP,
		silvermontDRRIP.Name: silvermontDRRIP,
		drripL1.Name:         drripL1,
	}
}

// TestBatchedMatchesScalar drives identical event streams through a
// batched-kernel machine and a forced-scalar machine across the full
// machine × policy × partition matrix, including a warm re-measure (the
// profiler's FlushSamples between warmup and measurement) and a Reset replay
// (the sweep's machine reuse). Subtests run in parallel so the -race CI pass
// exercises concurrent kernel machines.
func TestBatchedMatchesScalar(t *testing.T) {
	const windowCycles = 5000
	evs := genKernelEvents(6000, 42)
	for name, cfg := range equivalenceConfigs() {
		for _, part := range []int{0, 2} { // full LLC, 2-way CAT partition
			cfg, part := cfg, part
			label := name + "/full"
			if part > 0 {
				label = name + "/part2"
			}
			t.Run(label, func(t *testing.T) {
				t.Parallel()
				batched := NewMachine(cfg, windowCycles)
				scalar := NewMachine(cfg, windowCycles)
				scalar.setScalarPath(true)
				if batched.scalar {
					t.Fatalf("kernel path unexpectedly ineligible for %s", cfg.Name)
				}

				run := func(m *Machine) {
					if part > 0 {
						m.SetLLCPartition(part)
					}
					regions := kernelTestRegions()
					replayKernelEvents(m, regions, evs[:3000])
					m.FlushSamples() // profiler warmup boundary, state stays warm
					replayKernelEvents(m, regions, evs[3000:])
				}
				run(batched)
				run(scalar)
				assertMachinesMatch(t, batched, scalar)

				// Reset and replay: the sweep reuses machines across runs.
				batched.Reset()
				scalar.Reset()
				run(batched)
				run(scalar)
				assertMachinesMatch(t, batched, scalar)
			})
		}
	}
}

// TestKernelCoalescingElidesProbes proves the fast path actually engages:
// back-to-back same-line loads must skip the redundant DTLB/L1D probes
// (visible as a lower LRU clock) while still counting as accesses.
func TestKernelCoalescingElidesProbes(t *testing.T) {
	batched := NewMachine(Broadwell(), 1e9)
	scalar := NewMachine(Broadwell(), 1e9)
	scalar.setScalarPath(true)
	if !batched.kern.coalesceData {
		t.Fatal("data-side coalescing should be enabled on Broadwell (LRU L1D)")
	}
	for _, m := range []*Machine{batched, scalar} {
		m.Load(0x1000, 8)
		m.Load(0x1000, 8)
		m.Load(0x1008, 8)
	}
	bAcc, bMiss := batched.l1d.Stats()
	sAcc, sMiss := scalar.l1d.Stats()
	if bAcc != sAcc || bMiss != sMiss {
		t.Fatalf("stats diverge: batched %d/%d scalar %d/%d", bAcc, bMiss, sAcc, sMiss)
	}
	if bAcc != 3 || bMiss != 1 {
		t.Fatalf("want 3 accesses / 1 miss, got %d/%d", bAcc, bMiss)
	}
	// Scalar re-touches the MRU line twice (clock 1+2+3 = 3 bumps); the
	// kernel installs once and elides both re-touches.
	if batched.l1d.lruClock >= scalar.l1d.lruClock {
		t.Fatalf("coalescing did not elide probes: batched clock %d, scalar clock %d",
			batched.l1d.lruClock, scalar.l1d.lruClock)
	}
}

// TestKernelDisabledOnDRRIPL1 pins the coalescing guard: a DRRIP L1's hit
// promotion (RRPV to 0) is not elidable, so coalescing must be off while
// the flattened walk stays on.
func TestKernelDisabledOnDRRIPL1(t *testing.T) {
	cfg := Broadwell()
	cfg.L1D.Policy = DRRIP
	cfg.L1I.Policy = DRRIP
	m := NewMachine(cfg, 1e9)
	if m.scalar {
		t.Fatal("flattened walk should remain eligible with a DRRIP L1")
	}
	if m.kern.coalesceData || m.kern.coalesceInstr {
		t.Fatal("coalescing must be disabled for DRRIP L1 caches")
	}
}

// TestKernelFallsBackOnExoticConfigs pins the fast-path envelope: non-pow2
// cache set counts and sub-line page sizes route every event through the
// scalar reference walk.
func TestKernelFallsBackOnExoticConfigs(t *testing.T) {
	nonPow2 := Broadwell()
	nonPow2.L2 = CacheConfig{Name: "L2", SizeBytes: 96 << 10, Ways: 8, Policy: LRU, LatencyCyc: 12}
	if got := NewCache(nonPow2.L2).setShift; got >= 0 {
		t.Fatalf("test config is not exotic: setShift %d", got)
	}
	m := NewMachine(nonPow2, 1e9)
	if !m.scalar {
		t.Fatal("non-power-of-two set count must fall back to the scalar walk")
	}

	tinyPages := Broadwell()
	tinyPages.ITLB.PageBytes = 32 // smaller than a cache line
	tinyPages.DTLB.PageBytes = 32
	m = NewMachine(tinyPages, 1e9)
	if !m.scalar {
		t.Fatal("sub-line pages must fall back to the scalar walk")
	}
	// The fallback must still be a working machine.
	m.Load(0x2000, 128)
	if acc, _ := m.l1d.Stats(); acc != 2 {
		t.Fatalf("scalar fallback walked %d lines, want 2", acc)
	}
}
