package sim

import (
	"fmt"

	"datamime/internal/trace"
)

// WindowSample is one performance-counter sampling window — the simulated
// analogue of the paper's 20 M-cycle counter reads (§IV). Each field is one
// of the Table I metrics, already reduced to its reported unit.
type WindowSample struct {
	IPC        float64 // instructions per busy cycle
	L1DMPKI    float64
	L2MPKI     float64
	LLCMPKI    float64
	ICacheMPKI float64
	ITLBMPKI   float64
	DTLBMPKI   float64
	BranchMPKI float64
	CPUUtil    float64 // busy cycles / window cycles
	MemBWGBs   float64 // DRAM traffic in GB/s over the window

	Instructions uint64 // raw instruction count, for weighting/debugging
}

// WallSample is one wall-clock sampling window, carrying the system-level
// metrics (CPU utilization and memory bandwidth) that are defined over
// elapsed time rather than unhalted cycles.
type WallSample struct {
	CPUUtil  float64
	MemBWGBs float64
}

// wallCounters accumulates the wall-clock window's raw events.
type wallCounters struct {
	busyCyc  float64
	totalCyc float64
	memBytes uint64
}

// windowCounters accumulates raw events within the current window.
type windowCounters struct {
	instrs    uint64
	busyCyc   float64
	totalCyc  float64
	l1dMiss   uint64
	l2Miss    uint64
	llcMiss   uint64
	icMiss    uint64
	itlbMiss  uint64
	dtlbMiss  uint64
	branchMis uint64
	memBytes  uint64
}

// Machine is a single simulated core plus its memory hierarchy. It
// implements trace.Collector: applications run "on" the machine by emitting
// events into it. The machine keeps busy/idle cycle time, closes counter
// windows as simulated time passes, and exposes the collected samples.
//
// Machine is not safe for concurrent use; the paper pins and profiles a
// single worker thread, and so do we.
type Machine struct {
	cfg  MachineConfig
	l1i  *Cache
	l1d  *Cache
	l2   *Cache
	l3   *Cache // nil when the machine has no shared LLC
	itlb *TLB
	dtlb *TLB
	bp   *BranchPredictor

	windowCycles float64
	win          windowCounters
	samples      []WindowSample
	wall         wallCounters
	wallSamples  []WallSample

	totalBusy float64
	totalIdle float64
	baseCPI   float64
	burstMiss int // index of the miss within the current access burst (MLP)

	// kern is the packed batched-access kernel state (see kernel.go); scalar
	// routes events through the reference walk instead, either because the
	// configuration is outside the kernel's fast-path envelope or because a
	// test forced it (forceScalar). lastDataLine/lastInstrLine track the most
	// recent line touched on each side for same-line coalescing.
	kern            machKernel
	scalar          bool
	forceScalar     bool
	lastDataLine    uint64
	lastInstrLine   uint64
	lastDataPage    uint64
	lastInstrPage   uint64
	lastDataValid   bool
	lastInstrValid  bool
	lastDataPageOK  bool
	lastInstrPageOK bool
}

// NewMachine builds a machine with the given counter-window length in
// cycles. It panics on an invalid configuration: machine configs are static
// program data.
func NewMachine(cfg MachineConfig, windowCycles float64) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if windowCycles <= 0 {
		panic(fmt.Sprintf("sim: windowCycles must be positive, got %g", windowCycles))
	}
	m := &Machine{
		cfg:          cfg,
		l1i:          NewCache(cfg.L1I),
		l1d:          NewCache(cfg.L1D),
		l2:           NewCache(cfg.L2),
		itlb:         NewTLB(cfg.ITLB),
		dtlb:         NewTLB(cfg.DTLB),
		bp:           NewBranchPredictor(cfg.Branch),
		windowCycles: windowCycles,
		baseCPI:      cfg.BaseCPI(),
	}
	if cfg.L3 != nil {
		m.l3 = NewCache(*cfg.L3)
	}
	m.syncKernel()
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() MachineConfig { return m.cfg }

// WindowCycles returns the configured sampling-window length.
func (m *Machine) WindowCycles() float64 { return m.windowCycles }

// SetLLCPartition restricts the last-level cache to the given number of
// ways, emulating Intel CAT (used by the Dynaway-style curve profiler). On
// machines without an L3, the partition applies to the last-level L2.
func (m *Machine) SetLLCPartition(ways int) {
	if m.l3 != nil {
		m.l3.SetPartition(ways)
	} else {
		m.l2.SetPartition(ways)
	}
	m.syncKernel()
}

// LLCPartitionBytes returns the capacity currently available in the
// last-level cache.
func (m *Machine) LLCPartitionBytes() int {
	if m.l3 != nil {
		return m.l3.PartitionBytes()
	}
	return m.l2.PartitionBytes()
}

// LLCWays returns the associativity of the last-level cache, i.e. the
// number of CAT partitions the platform supports.
func (m *Machine) LLCWays() int { return m.cfg.LLCWays() }

// Reset restores the machine to the exact state NewMachine would produce,
// while keeping allocated sample buffers and cache arrays. A profiler worker
// can therefore reuse one Machine across partition runs and produce samples
// byte-identical to building a fresh machine per run — the property the
// parallel sweep's determinism test pins down.
func (m *Machine) Reset() {
	m.l1i.Reset()
	m.l1d.Reset()
	m.l2.Reset()
	if m.l3 != nil {
		m.l3.Reset()
	}
	m.itlb.Reset()
	m.dtlb.Reset()
	m.bp.Flush()
	m.win = windowCounters{}
	m.wall = wallCounters{}
	m.samples = m.samples[:0]
	m.wallSamples = m.wallSamples[:0]
	m.totalBusy, m.totalIdle = 0, 0
	m.burstMiss = 0
	m.syncKernel()
}

// ReserveSamples grows the sample buffers to hold at least windows entries
// without reallocating, so a measured run appends into preallocated space.
func (m *Machine) ReserveSamples(windows int) {
	if cap(m.samples) < windows {
		s := make([]WindowSample, len(m.samples), windows)
		copy(s, m.samples)
		m.samples = s
	}
	if cap(m.wallSamples) < windows {
		w := make([]WallSample, len(m.wallSamples), windows)
		copy(w, m.wallSamples)
		m.wallSamples = w
	}
}

// busy advances busy time by cyc cycles.
func (m *Machine) busy(cyc float64) {
	m.win.busyCyc += cyc
	m.win.totalCyc += cyc
	m.wall.busyCyc += cyc
	m.wall.totalCyc += cyc
	m.totalBusy += cyc
	m.maybeCloseWindow()
	m.maybeCloseWall()
}

// Idle advances simulated wall-clock time without executing instructions —
// the server waiting for the next request. Idle time never closes a window
// (hardware cycle counters are unhalted-cycle based, so sampling intervals
// elapse only while the thread runs); it stretches the current window's
// wall-clock span, which is what turns request arrival processes into
// CPU-utilization and bandwidth distributions.
func (m *Machine) Idle(cyc float64) {
	if cyc <= 0 {
		return
	}
	m.win.totalCyc += cyc
	m.totalIdle += cyc
	// The wall-clock stream splits long idle periods at window boundaries
	// so each wall window carries an accurate utilization sample.
	for cyc > 0 {
		room := m.windowCycles - m.wall.totalCyc
		step := cyc
		if step > room {
			step = room
		}
		m.wall.totalCyc += step
		cyc -= step
		m.maybeCloseWall()
	}
}

// missPenalty charges the latency of a miss serviced at a level with the
// given latency, applying the machine's OOO overlap factor and, for
// back-to-back misses within one burst, its MLP divisor.
func (m *Machine) missPenalty(latency float64) {
	p := latency * (1 - m.cfg.Overlap)
	if m.burstMiss > 0 {
		p /= m.cfg.MLP
	}
	m.burstMiss++
	m.busy(p)
}

// scalarDataAccess walks the data-side hierarchy one line at a time through
// the general-purpose Cache/TLB methods. It is the reference implementation
// the batched kernel (kernel.go) must match bit for bit, and the fallback
// for configurations outside the kernel's fast-path envelope (non-power-of-
// two set counts, pages smaller than cache lines).
func (m *Machine) scalarDataAccess(addr uint64, size int) {
	if size <= 0 {
		return
	}
	instrs := trace.InstrsForSize(size)
	m.win.instrs += uint64(instrs)
	m.busy(float64(instrs) * m.baseCPI)

	first := addr / trace.LineSize
	last := (addr + uint64(size) - 1) / trace.LineSize
	m.burstMiss = 0
	for line := first; line <= last; line++ {
		la := line * trace.LineSize
		if !m.dtlb.Access(la) {
			m.win.dtlbMiss++
			m.busy(m.cfg.TLBPenalty)
		}
		if m.l1d.Access(la) {
			continue
		}
		m.win.l1dMiss++
		if m.l2.Access(la) {
			m.missPenalty(float64(m.cfg.L2.LatencyCyc))
			continue
		}
		m.win.l2Miss++
		if m.l3 != nil {
			if m.l3.Access(la) {
				m.missPenalty(float64(m.cfg.L3.LatencyCyc))
				continue
			}
		}
		m.win.llcMiss++
		m.win.memBytes += trace.LineSize
		m.wall.memBytes += trace.LineSize
		m.missPenalty(m.cfg.MemLatency)
	}
}

// Load implements trace.Collector.
func (m *Machine) Load(addr uint64, size int) {
	if m.scalar {
		m.scalarDataAccess(addr, size)
		return
	}
	m.batchData(addr, size)
}

// Store implements trace.Collector. Stores and loads traverse the same
// hierarchy; write-allocate means a store miss also fetches the line.
func (m *Machine) Store(addr uint64, size int) {
	if m.scalar {
		m.scalarDataAccess(addr, size)
		return
	}
	m.batchData(addr, size)
}

// Exec implements trace.Collector: it fetches the instruction lines the
// execution touches and accounts the dynamic instructions.
func (m *Machine) Exec(r *trace.CodeRegion, instrs int) {
	if m.scalar {
		m.scalarExec(r, instrs)
		return
	}
	m.batchInstr(r, instrs)
}

// scalarExec is the reference instruction-side walk; see scalarDataAccess.
func (m *Machine) scalarExec(r *trace.CodeRegion, instrs int) {
	if instrs <= 0 {
		return
	}
	m.win.instrs += uint64(instrs)
	m.busy(float64(instrs) * m.baseCPI)

	start, n := r.NextLines(instrs)
	m.burstMiss = 0
	for i := 0; i < n; i++ {
		la := r.LineAddr(start + i)
		if !m.itlb.Access(la) {
			m.win.itlbMiss++
			m.busy(m.cfg.TLBPenalty)
		}
		if m.l1i.Access(la) {
			continue
		}
		m.win.icMiss++
		if m.l2.Access(la) {
			m.missPenalty(float64(m.cfg.L2.LatencyCyc))
			continue
		}
		m.win.l2Miss++
		if m.l3 != nil {
			if m.l3.Access(la) {
				m.missPenalty(float64(m.cfg.L3.LatencyCyc))
				continue
			}
		}
		m.win.llcMiss++
		m.win.memBytes += trace.LineSize
		m.wall.memBytes += trace.LineSize
		m.missPenalty(m.cfg.MemLatency)
	}
}

// Branch implements trace.Collector.
func (m *Machine) Branch(site uint64, taken bool) {
	m.win.instrs++
	m.busy(m.baseCPI)
	if !m.bp.Predict(site, taken) {
		m.win.branchMis++
		m.busy(m.cfg.BranchPenalty)
	}
}

// Ops implements trace.Collector.
func (m *Machine) Ops(n int) {
	if n <= 0 {
		return
	}
	m.win.instrs += uint64(n)
	m.busy(float64(n) * m.baseCPI)
}

// maybeCloseWindow emits a sample once the current window's busy (unhalted)
// cycles reach the window length, mirroring hardware counter sampling.
func (m *Machine) maybeCloseWindow() {
	if m.win.busyCyc < m.windowCycles {
		return
	}
	m.samples = append(m.samples, m.snapshot())
	m.win = windowCounters{}
}

// maybeCloseWall emits a wall-clock sample once elapsed (busy + idle)
// cycles reach the window length.
func (m *Machine) maybeCloseWall() {
	if m.wall.totalCyc < m.windowCycles {
		return
	}
	w := m.wall
	seconds := w.totalCyc / m.cfg.CyclesPerSecond()
	m.wallSamples = append(m.wallSamples, WallSample{
		CPUUtil:  w.busyCyc / w.totalCyc,
		MemBWGBs: float64(w.memBytes) / seconds / 1e9,
	})
	m.wall = wallCounters{}
}

// snapshot reduces the current window's raw counters to Table I metrics.
func (m *Machine) snapshot() WindowSample {
	w := m.win
	s := WindowSample{Instructions: w.instrs}
	if w.instrs > 0 {
		k := float64(w.instrs) / 1000
		s.L1DMPKI = float64(w.l1dMiss) / k
		s.L2MPKI = float64(w.l2Miss) / k
		s.LLCMPKI = float64(w.llcMiss) / k
		s.ICacheMPKI = float64(w.icMiss) / k
		s.ITLBMPKI = float64(w.itlbMiss) / k
		s.DTLBMPKI = float64(w.dtlbMiss) / k
		s.BranchMPKI = float64(w.branchMis) / k
	}
	if w.busyCyc > 0 {
		s.IPC = float64(w.instrs) / w.busyCyc
	}
	if w.totalCyc > 0 {
		s.CPUUtil = w.busyCyc / w.totalCyc
		seconds := w.totalCyc / m.cfg.CyclesPerSecond()
		s.MemBWGBs = float64(w.memBytes) / seconds / 1e9
	}
	return s
}

// Samples returns the completed busy-cycle counter windows. The returned
// slice is the machine's own; callers must copy before mutating.
func (m *Machine) Samples() []WindowSample { return m.samples }

// WallSamples returns the completed wall-clock windows (CPU utilization and
// memory bandwidth).
func (m *Machine) WallSamples() []WallSample { return m.wallSamples }

// FlushSamples discards collected windows and any partial window, keeping
// cache/TLB/predictor state warm — used between the profiler's warmup and
// measurement phases.
func (m *Machine) FlushSamples() {
	m.samples = m.samples[:0]
	m.wallSamples = m.wallSamples[:0]
	m.win = windowCounters{}
	m.wall = wallCounters{}
}

// TotalCycles returns all simulated cycles (busy + idle).
func (m *Machine) TotalCycles() float64 { return m.totalBusy + m.totalIdle }

// BusyCycles returns the simulated busy cycles.
func (m *Machine) BusyCycles() float64 { return m.totalBusy }
