package sim

import "datamime/internal/trace"

// This file implements the batched access kernel — the flattened hot path
// the profiler spends nearly all of its time in. pprof on the way-curve
// sweep shows >90% of samples inside Cache.Access / Cache.install /
// TLB.Access / CodeRegion.LineAddr; the kernel removes the per-access call
// chain, the redundant set/tag recomputation at every level, the multi-pass
// install scans, and the per-line modulo of the instruction walk, while
// producing output bit-for-bit identical to the scalar reference walk
// (scalarDataAccess / scalarExec in cpu.go). The equivalence is pinned by
// kernel_test.go across every Table II machine, replacement policy, and LLC
// partition.
//
// Bit-identity ground rules the kernel obeys:
//
//   - Window-close cadence is untouched: cycle charges go through the same
//     busy()/missPenalty() calls in the same order, so every counter
//     increment lands in the same sample window as the scalar walk.
//   - Replacement decisions are identical: the fused single-pass installs
//     pick the same victim (first invalid way, else first least-recent /
//     first max-RRPV way) and the DRRIP delta-aging below is an exact
//     algebraic collapse of the scalar age-until-victim loop.
//   - Same-line coalescing elides only probes that are provably hits with
//     no counter effect (see batchData), and still counts them in the
//     cache/TLB access statistics so Stats() match the scalar walk exactly.

// lineShift is log2(trace.LineSize); kernel walks operate on line addresses
// (byte address >> lineShift). syncKernel refuses the fast path if the two
// ever disagree.
const lineShift = 6

// kernelLevel packs one cache level's hot lookup state into a single flat,
// cache-line-friendly struct: the line slab, the set/tag split, the visible
// ways, and the current generation all sit contiguously in the Machine
// instead of behind a *Cache indirection per level. Slow-path state that
// mutates per access (replacement clocks, dueling counters, statistics)
// stays authoritative in the Cache; syncKernel refreshes the packed copies
// whenever structural state changes (construction, Reset, partitioning).
type kernelLevel struct {
	lines    []cacheLine // the cache's slab (sets × ways), never reallocated
	setMask  uint64
	tagShift uint8
	gen      uint32  // copy of Cache.gen, refreshed by syncKernel
	ways     int     // set stride in lines
	partWays int     // ways visible to the workload (CAT partition)
	latency  float64 // hit latency at this level, cycles
	drrip    bool
	c        *Cache // replacement clocks, dueling state, statistics
}

// sync packs the level from its cache, reporting whether the flattened walk
// supports this configuration (power-of-two set count).
func (lv *kernelLevel) sync(c *Cache) bool {
	if c == nil || c.setShift < 0 {
		return false
	}
	lv.lines = c.lines
	lv.setMask = c.setMask
	lv.tagShift = uint8(c.setShift)
	lv.gen = c.gen
	lv.ways = c.ways
	lv.partWays = c.partWays
	lv.latency = float64(c.cfg.LatencyCyc)
	lv.drrip = c.isDRRIP
	lv.c = c
	return true
}

// access looks up la (a line address) at this level, updating replacement
// state and installing on a miss — the fused equivalent of Cache.Access.
// One scan does triple duty: it probes for a hit (tag compared first —
// valid-generation checks almost always pass in steady state, tags almost
// always don't, so the cheap discriminating compare leads), tracks the
// first invalid way, and tracks the replacement victim, so a miss installs
// with no second pass over the set.
func (lv *kernelLevel) access(la uint64) bool {
	c := lv.c
	c.accesses++
	set := la & lv.setMask
	tag := la >> lv.tagShift
	base := int(set) * lv.ways
	end := base + lv.partWays
	ways := lv.lines[base:end:end]
	gen := lv.gen
	if lv.drrip {
		return accessDRRIP(c, ways, int(set), tag, gen)
	}
	for i := range ways {
		w := &ways[i]
		if w.tag == tag && w.gen == gen {
			c.lruClock++
			w.meta = c.lruClock
			return true
		}
	}
	c.misses++
	// Victim scan, second pass: the set is host-cache-resident after the
	// probe, so this costs arithmetic only. First invalid way wins (the
	// scalar install prefers it), else the first way with the smallest
	// stamp — the scalar argmin.
	victim, vstamp := 0, ^uint32(0)
	for i := range ways {
		w := &ways[i]
		if w.gen != gen {
			victim = i
			break
		}
		if w.meta < vstamp {
			victim, vstamp = i, w.meta
		}
	}
	c.lruClock++
	ways[victim] = cacheLine{tag: tag, meta: c.lruClock, gen: gen}
	return false
}

// accessDRRIP is the DRRIP arm of the fused lookup. On a miss with no
// invalid way it collapses the scalar walk's age-until-a-max-RRPV-appears
// loop algebraically: that loop always ages every line by exactly
// rrpvMax-maxMeta and then evicts the first way that held the maximum — so
// one scan finds the victim and one adds the aging delta. duelTrain and
// insertMeta run in the scalar order (train the selector, then read it for
// the insertion policy), and invalid-way fills skip dueling exactly as the
// scalar install does.
func accessDRRIP(c *Cache, ways []cacheLine, set int, tag uint64, gen uint32) bool {
	for i := range ways {
		w := &ways[i]
		if w.tag == tag && w.gen == gen {
			w.meta = 0 // promote to near-immediate re-reference
			return true
		}
	}
	c.misses++
	// Victim scan, second pass on the now host-cache-resident set: first
	// invalid way fills without eviction or dueling (as the scalar install
	// does), else the first way holding the maximum RRPV is the victim.
	victim, maxMeta := 0, uint32(0)
	for i := range ways {
		w := &ways[i]
		if w.gen != gen {
			ways[i] = cacheLine{tag: tag, meta: c.insertMeta(set), gen: gen}
			return false
		}
		if w.meta > maxMeta {
			victim, maxMeta = i, w.meta
		}
	}
	if delta := rrpvMax - maxMeta; delta > 0 {
		for i := range ways {
			ways[i].meta += delta
		}
	}
	c.duelTrain(set)
	ways[victim] = cacheLine{tag: tag, meta: c.insertMeta(set), gen: gen}
	return false
}

// tlbKernel packs a TLB's hot lookup state; the entry slab is the TLB's own
// (never reallocated), so stamps and statistics stay authoritative in the
// TLB while the address split runs on flat local fields. pageLineShift
// converts a line address straight to a page number, skipping the byte
// address round-trip of the scalar walk.
type tlbKernel struct {
	t             *TLB
	entries       []tlbEntry
	setMask       uint64
	pageLineShift uint8
	tagShift      uint8
	pow2Sets      bool
	sets          int
	ways          int
}

// sync packs the kernel view; false when pages are smaller than cache lines
// (no real machine — the scalar walk handles it).
func (k *tlbKernel) sync(t *TLB) bool {
	if t == nil || t.pageShift < lineShift {
		return false
	}
	k.t = t
	k.entries = t.entries
	k.setMask = t.setMask
	k.pageLineShift = uint8(t.pageShift - lineShift)
	k.pow2Sets = t.setShift >= 0
	if k.pow2Sets {
		k.tagShift = uint8(t.setShift)
	}
	k.sets = t.sets
	k.ways = t.ways
	return true
}

// access translates the page containing line address la — the fused
// equivalent of TLB.Access, with the same single-pass LRU probe/install.
// Silvermont's 12-set TLBs take the division branch; every other Table II
// TLB splits by shift and mask.
func (k *tlbKernel) access(la uint64) bool {
	t := k.t
	t.accesses++
	page := la >> k.pageLineShift
	var set int
	var tag uint64
	if k.pow2Sets {
		set = int(page & k.setMask)
		tag = page >> k.tagShift
	} else {
		set = int(page % uint64(k.sets))
		tag = page / uint64(k.sets)
	}
	base := set * k.ways
	end := base + k.ways
	ways := k.entries[base:end:end]
	t.clock++
	victim, victimStamp := 0, ways[0].stamp
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].stamp = t.clock
			return true
		}
		if !ways[i].valid {
			victim, victimStamp = i, 0
		} else if ways[i].stamp < victimStamp {
			victim, victimStamp = i, ways[i].stamp
		}
	}
	t.misses++
	ways[victim] = tlbEntry{tag: tag, stamp: t.clock, valid: true}
	return false
}

// machKernel is the Machine's packed hot-path state: both walk directions'
// levels laid out contiguously, plus the penalty constants, so one struct
// walk covers an access end to end without touching the MachineConfig.
type machKernel struct {
	ok            bool // flattened path usable for this configuration
	coalesceData  bool // same-line elision valid on the data side (LRU L1D)
	coalesceInstr bool // same-line elision valid on the instruction side
	hasL3         bool
	tlbPenalty    float64
	memLatency    float64
	l1d, l2, l3   kernelLevel
	l1i           kernelLevel
	dtlb, itlb    tlbKernel
}

// syncKernel (re)packs the kernel from the machine's components and decides
// path eligibility. It runs at construction, after Reset (generation bumps),
// and after SetLLCPartition (visible-way changes) — the only places
// structural cache state changes under a Machine. It also invalidates the
// coalescing trackers: elision claims must never survive a cache flush.
func (m *Machine) syncKernel() {
	k := &m.kern
	k.ok = k.l1d.sync(m.l1d) && k.l2.sync(m.l2) && k.l1i.sync(m.l1i) &&
		k.dtlb.sync(m.dtlb) && k.itlb.sync(m.itlb)
	k.hasL3 = m.l3 != nil
	if k.hasL3 {
		k.ok = k.ok && k.l3.sync(m.l3)
	}
	if uint64(trace.LineSize) != 1<<lineShift {
		k.ok = false
	}
	// Elision relies on a re-touched MRU line keeping its relative
	// replacement order, which holds for LRU stamps but not for a DRRIP L1
	// whose inserted lines sit at distant RRPV until re-touched.
	k.coalesceData = k.ok && !k.l1d.drrip
	k.coalesceInstr = k.ok && !k.l1i.drrip
	k.tlbPenalty = m.cfg.TLBPenalty
	k.memLatency = m.cfg.MemLatency
	m.scalar = m.forceScalar || !k.ok
	m.lastDataValid, m.lastInstrValid = false, false
	m.lastDataPageOK, m.lastInstrPageOK = false, false
}

// setScalarPath routes all events through the scalar reference walk; the
// batched-vs-scalar equivalence tests use it to drive both paths over
// identical streams.
func (m *Machine) setScalarPath(on bool) {
	m.forceScalar = on
	m.syncKernel()
}

// stepData walks one line through the data-side hierarchy: DTLB, then
// L1D → L2 → L3 → memory, charging the same penalties in the same order as
// the scalar walk. A line on the same page as the immediately preceding
// data access skips the DTLB probe: that page is provably resident and MRU
// (the previous access either hit it or installed it, and nothing else
// touches the data TLB in between), so the probe is a guaranteed hit whose
// re-stamp cannot change LRU recency order. The elided probe still counts
// as an access so TLB statistics match the scalar walk.
func (m *Machine) stepData(la uint64) {
	k := &m.kern
	if page := la >> k.dtlb.pageLineShift; m.lastDataPageOK && page == m.lastDataPage {
		m.dtlb.accesses++
	} else {
		if !k.dtlb.access(la) {
			m.win.dtlbMiss++
			m.busy(k.tlbPenalty)
		}
		m.lastDataPage = page
		m.lastDataPageOK = true
	}
	if k.l1d.access(la) {
		return
	}
	m.win.l1dMiss++
	if k.l2.access(la) {
		m.missPenalty(k.l2.latency)
		return
	}
	m.win.l2Miss++
	if k.hasL3 {
		if k.l3.access(la) {
			m.missPenalty(k.l3.latency)
			return
		}
	}
	m.win.llcMiss++
	m.win.memBytes += trace.LineSize
	m.wall.memBytes += trace.LineSize
	m.missPenalty(k.memLatency)
}

// stepInstr walks one instruction line: ITLB, then L1I → L2 → L3 → memory,
// with the same same-page ITLB elision as stepData (fetch loops sit on one
// code page for long stretches).
func (m *Machine) stepInstr(la uint64) {
	k := &m.kern
	if page := la >> k.itlb.pageLineShift; m.lastInstrPageOK && page == m.lastInstrPage {
		m.itlb.accesses++
	} else {
		if !k.itlb.access(la) {
			m.win.itlbMiss++
			m.busy(k.tlbPenalty)
		}
		m.lastInstrPage = page
		m.lastInstrPageOK = true
	}
	if k.l1i.access(la) {
		return
	}
	m.win.icMiss++
	if k.l2.access(la) {
		m.missPenalty(k.l2.latency)
		return
	}
	m.win.l2Miss++
	if k.hasL3 {
		if k.l3.access(la) {
			m.missPenalty(k.l3.latency)
			return
		}
	}
	m.win.llcMiss++
	m.win.memBytes += trace.LineSize
	m.wall.memBytes += trace.LineSize
	m.missPenalty(k.memLatency)
}

// batchData is the batched data-side step: it splits the access into its
// cache-line batch once, coalesces a leading line that repeats the most
// recent data access, and walks the rest through stepData. Within one
// access the lines are distinct, so only the first can repeat the previous
// access's trailing line.
//
// The elided probe is provably a DTLB+L1D hit with zero counter and zero
// cycle effect: the previous data access left that line MRU at both, and
// no other event type touches the data-side TLB or L1D. Eliding the
// re-touch preserves every future replacement decision — re-stamping an
// already-MRU line never changes the relative stamp order LRU victims are
// chosen by — and the elided probes still count as accesses so cache and
// TLB statistics match the scalar walk bit for bit.
func (m *Machine) batchData(addr uint64, size int) {
	if size <= 0 {
		return
	}
	instrs := trace.InstrsForSize(size)
	m.win.instrs += uint64(instrs)
	m.busy(float64(instrs) * m.baseCPI)

	first := addr >> lineShift
	last := (addr + uint64(size) - 1) >> lineShift
	m.burstMiss = 0
	if m.kern.coalesceData && m.lastDataValid && first == m.lastDataLine {
		m.dtlb.accesses++
		m.l1d.accesses++
		if first == last {
			return
		}
		first++
	}
	for la := first; la <= last; la++ {
		m.stepData(la)
	}
	m.lastDataLine = last
	m.lastDataValid = true
}

// batchInstr is the batched instruction-side step. It advances the region
// cursor once, then walks the touched lines with an incremental wrap
// instead of the scalar walk's per-line modulo (the sweep's pprof showed
// CodeRegion.LineAddr's division costing ~10% of total time), coalescing a
// line that repeats the most recent instruction fetch (tight loops in
// one-line regions re-fetch the same line every call).
func (m *Machine) batchInstr(r *trace.CodeRegion, instrs int) {
	if instrs <= 0 {
		return
	}
	m.win.instrs += uint64(instrs)
	m.busy(float64(instrs) * m.baseCPI)

	start, n := r.NextLines(instrs)
	m.burstMiss = 0
	baseLine := r.Base >> lineShift
	idx := start
	coalesce := m.kern.coalesceInstr && m.lastInstrValid
	for i := 0; i < n; i++ {
		if idx >= r.Lines {
			idx -= r.Lines
		}
		la := baseLine + uint64(idx)
		idx++
		if coalesce && la == m.lastInstrLine {
			// Only the first line of the batch can repeat the previous
			// fetch; the rest are distinct by construction.
			m.itlb.accesses++
			m.l1i.accesses++
			coalesce = false
			continue
		}
		coalesce = false
		m.stepInstr(la)
		m.lastInstrLine = la
		m.lastInstrValid = true
	}
}
