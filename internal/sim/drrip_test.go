package sim

import (
	"testing"

	"datamime/internal/trace"
)

// drripCache builds a small DRRIP cache for focused policy tests.
func drripCache(sizeBytes, ways int) *Cache {
	return NewCache(CacheConfig{Name: "l3", SizeBytes: sizeBytes, Ways: ways, Policy: DRRIP})
}

// TestDRRIPHitPromotion: a re-referenced line must survive longer than
// never-referenced ones (RRPV promoted to 0 on hit).
func TestDRRIPHitPromotion(t *testing.T) {
	// Single set, 4 ways.
	c := drripCache(4*trace.LineSize, 4)
	setSpan := uint64(trace.LineSize)
	addr := func(i int) uint64 { return uint64(i) * setSpan }
	// Fill the set, re-touch line 0 (promote), then insert two new lines.
	for i := 0; i < 4; i++ {
		c.Access(addr(i))
	}
	c.Access(addr(0)) // promote to RRPV 0
	c.Access(addr(4))
	c.Access(addr(5))
	if !c.Access(addr(0)) {
		t.Fatal("promoted line was evicted before distant lines")
	}
}

// TestDRRIPInsertsAtDistantInterval: fresh insertions are predicted
// "long/distant re-reference", so a one-shot scan does not displace a hot
// set the way LRU's MRU insertion would.
func TestDRRIPInsertsAtDistantInterval(t *testing.T) {
	c := drripCache(8*trace.LineSize, 8) // one set of 8 ways
	setSpan := uint64(trace.LineSize)
	// Hot lines 0..3, touched twice so their RRPV is 0.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 4; i++ {
			c.Access(uint64(i) * setSpan)
		}
	}
	// Scan 8 one-shot lines through the same set: they fill the empty ways
	// and then evict each other (inserted at distant RRPV), not the
	// promoted hot lines. (An unboundedly long scan would eventually age
	// out an un-retouched hot set — correct SRRIP behavior.)
	for i := 10; i < 18; i++ {
		c.Access(uint64(i) * setSpan)
	}
	hits := 0
	for i := 0; i < 4; i++ {
		if resident(c, 0, uint64(i)) {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("only %d/4 hot lines survived a one-shot scan under DRRIP", hits)
	}
}

// resident inspects cache state non-destructively.
func resident(c *Cache, set int, tag uint64) bool {
	base := set * c.ways
	for i := base; i < base+c.partWays; i++ {
		if c.lines[i].gen == c.gen && c.lines[i].tag == tag {
			return true
		}
	}
	return false
}

// TestBRRIPDeRating: the BRRIP leader sets insert at RRPV max-1 only every
// 32nd insertion; verify the deterministic de-rater cycles.
func TestBRRIPDeRating(t *testing.T) {
	c := drripCache(64*trace.LineSize, 4) // 16 sets; set 1 is the BRRIP leader
	metaOf := func(set int, tag uint64) (uint32, bool) {
		base := set * c.ways
		for i := base; i < base+c.partWays; i++ {
			lineAddr := tag*uint64(c.sets) + uint64(set)
			_ = lineAddr
			if c.lines[i].gen == c.gen && c.lines[i].tag == tag {
				return c.lines[i].meta, true
			}
		}
		return 0, false
	}
	// Insert 64 distinct lines into leader set 1 (set index = line % sets).
	longCount, distantCount := 0, 0
	for k := 0; k < 64; k++ {
		tag := uint64(k)
		addr := (tag*uint64(c.sets) + 1) * trace.LineSize // maps to set 1
		c.Access(addr)
		if m, ok := metaOf(1, tag); ok {
			if m == rrpvMax {
				distantCount++
			} else if m == rrpvMax-1 {
				longCount++
			}
		}
	}
	if longCount == 0 {
		t.Fatal("BRRIP leader never de-rated an insertion")
	}
	if distantCount <= longCount {
		t.Fatalf("BRRIP should insert mostly distant: %d distant vs %d long", distantCount, longCount)
	}
}

// TestSetDuelingSelectsWinner: under a pure one-shot scan (BRRIP-friendly),
// the policy selector should drift toward BRRIP; under a reuse-friendly
// pattern it should drift back.
func TestSetDuelingSelectsWinner(t *testing.T) {
	c := drripCache(1<<20, 8) // 2048 sets, leaders every 32 sets
	// Scan-only traffic: every line one-shot. SRRIP leaders keep missing on
	// lines they kept too long; BRRIP leaders miss equally here, so psel
	// movement is slight — but must not crash or stick.
	addr := uint64(0)
	for i := 0; i < 200_000; i++ {
		c.Access(addr)
		addr += trace.LineSize
	}
	_, misses := c.Stats()
	if misses == 0 {
		t.Fatal("scan produced no misses")
	}
	// Reuse traffic: a resident working set.
	c.Flush()
	for pass := 0; pass < 50; pass++ {
		for off := uint64(0); off < 256<<10; off += trace.LineSize {
			c.Access(off)
		}
	}
	acc, misses := c.Stats()
	if float64(misses)/float64(acc) > 0.1 {
		t.Fatalf("resident reuse pattern misses %.2f%% under DRRIP", 100*float64(misses)/float64(acc))
	}
}

// TestDRRIPAgingTerminates: installs into a set whose lines all have low
// RRPV must age until a victim appears (no infinite loop), and evict
// exactly one line.
func TestDRRIPAgingTerminates(t *testing.T) {
	c := drripCache(4*trace.LineSize, 4)
	setSpan := uint64(trace.LineSize)
	// Fill and promote everything to RRPV 0.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 4; i++ {
			c.Access(uint64(i) * setSpan)
		}
	}
	// A new insert must age the set and succeed, evicting exactly one of
	// the four resident lines (inspected non-destructively: probing with
	// Access would itself evict).
	c.Access(9 * setSpan)
	if !resident(c, 0, 9) {
		t.Fatal("new line not installed")
	}
	hits := 0
	for i := 0; i < 4; i++ {
		if resident(c, 0, uint64(i)) {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("exactly one victim expected, %d/4 survivors", hits)
	}
}
