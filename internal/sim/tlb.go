package sim

import "fmt"

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	Name      string
	Entries   int
	Ways      int
	PageBytes int
}

// tlbEntry is one way of one TLB set. Packing tag, stamp, and validity into
// one 16-byte record keeps a 4-way set inside a single host cache line; the
// previous parallel-slice layout touched three lines per probe.
type tlbEntry struct {
	tag   uint64
	stamp uint32
	valid bool
}

// TLB is a set-associative TLB with LRU replacement.
type TLB struct {
	cfg  TLBConfig
	sets int
	ways int
	// pageShift/setShift select shift-and-mask address splitting when page
	// size / set count are powers of two; -1 falls back to division. Page
	// sizes always are; Silvermont's 48-entry TLBs give a non-pow2 12 sets.
	pageShift int
	setMask   uint64
	setShift  int
	entries   []tlbEntry
	clock     uint32
	accesses  uint64
	misses    uint64
}

// NewTLB builds a TLB. It panics on invalid configuration.
func NewTLB(cfg TLBConfig) *TLB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.PageBytes <= 0 {
		panic(fmt.Sprintf("sim: invalid TLB config %+v", cfg))
	}
	sets := cfg.Entries / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	return &TLB{
		cfg:       cfg,
		sets:      sets,
		ways:      cfg.Ways,
		pageShift: log2OrMinusOne(cfg.PageBytes),
		setMask:   uint64(sets - 1),
		setShift:  log2OrMinusOne(sets),
		entries:   make([]tlbEntry, sets*cfg.Ways),
	}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Access translates addr, reporting whether the page was resident. Missing
// pages are installed with LRU replacement.
func (t *TLB) Access(addr uint64) (hit bool) {
	t.accesses++
	var page uint64
	if t.pageShift >= 0 {
		page = addr >> uint(t.pageShift)
	} else {
		page = addr / uint64(t.cfg.PageBytes)
	}
	var set int
	var tag uint64
	if t.setShift >= 0 {
		set = int(page & t.setMask)
		tag = page >> uint(t.setShift)
	} else {
		set = int(page % uint64(t.sets))
		tag = page / uint64(t.sets)
	}
	base := set * t.ways
	end := base + t.ways
	ways := t.entries[base:end:end]
	t.clock++
	victim, victimStamp := 0, ways[0].stamp
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].stamp = t.clock
			return true
		}
		if !ways[i].valid {
			victim, victimStamp = i, 0
		} else if ways[i].stamp < victimStamp {
			victim, victimStamp = i, ways[i].stamp
		}
	}
	t.misses++
	ways[victim] = tlbEntry{tag: tag, stamp: t.clock, valid: true}
	return false
}

// Stats returns lifetime accesses and misses.
func (t *TLB) Stats() (accesses, misses uint64) { return t.accesses, t.misses }

// Flush invalidates all entries and resets statistics.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
	t.accesses, t.misses = 0, 0
}

// Reset restores the TLB to the exact state of a freshly-constructed one.
// Unlike Flush it also rewinds the LRU clock and clears stale stamps, so a
// reused TLB replays replacement decisions identically to a fresh one.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
	t.accesses, t.misses = 0, 0
	t.clock = 0
}
