package sim

// WindowSummary condenses a run's per-window counter samples into the
// aggregate statistics telemetry spans attach to profiling runs: how many
// windows closed, how much work they covered, and the mean of each headline
// rate. It exists so observers can see what a profiling run measured without
// shipping the full sample distributions through the event stream.
type WindowSummary struct {
	Windows      int
	Instructions uint64

	MeanIPC        float64
	MeanL1DMPKI    float64
	MeanL2MPKI     float64
	MeanLLCMPKI    float64
	MeanBranchMPKI float64
	MeanCPUUtil    float64
	MeanMemBWGBs   float64
}

// Attrs renders the summary as telemetry span attributes, using the
// attribute names the run artifacts and SSE streams carry. Keeping the
// mapping here means every span producer labels the same statistics the
// same way.
func (s WindowSummary) Attrs() map[string]float64 {
	return map[string]float64{
		"windows":       float64(s.Windows),
		"instructions":  float64(s.Instructions),
		"mean_ipc":      s.MeanIPC,
		"mean_llc_mpki": s.MeanLLCMPKI,
		"mean_cpu_util": s.MeanCPUUtil,
		"mean_bw_gbs":   s.MeanMemBWGBs,
	}
}

// SummarizeWindows aggregates counter windows. An empty slice yields the
// zero summary.
func SummarizeWindows(samples []WindowSample) WindowSummary {
	var s WindowSummary
	if len(samples) == 0 {
		return s
	}
	s.Windows = len(samples)
	for _, w := range samples {
		s.Instructions += w.Instructions
		s.MeanIPC += w.IPC
		s.MeanL1DMPKI += w.L1DMPKI
		s.MeanL2MPKI += w.L2MPKI
		s.MeanLLCMPKI += w.LLCMPKI
		s.MeanBranchMPKI += w.BranchMPKI
		s.MeanCPUUtil += w.CPUUtil
		s.MeanMemBWGBs += w.MemBWGBs
	}
	n := float64(len(samples))
	s.MeanIPC /= n
	s.MeanL1DMPKI /= n
	s.MeanL2MPKI /= n
	s.MeanLLCMPKI /= n
	s.MeanBranchMPKI /= n
	s.MeanCPUUtil /= n
	s.MeanMemBWGBs /= n
	return s
}
