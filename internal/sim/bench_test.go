package sim

import (
	"testing"

	"datamime/internal/stats"
	"datamime/internal/trace"
)

// BenchmarkSimRun measures one simulated measurement run: a mixed event
// stream the size of a fast profiler window sweep, on a machine reused via
// Reset — the per-run cost the way-curve sweep pays at every partition
// point. The reuse/rebuild split isolates the allocation churn Reset
// removes.
func BenchmarkSimRun(b *testing.B) {
	const events = 50_000
	cfg := Broadwell()
	b.Run("reset-reuse", func(b *testing.B) {
		b.ReportAllocs()
		m := NewMachine(cfg, 40_000)
		// Fault the reused machine's pages in before timing: the reuse path
		// measures the steady-state per-run cost (Reset + run), not one-time
		// construction — that is what the rebuild variant measures.
		m.Reset()
		driveBench(m, events)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			driveBench(m, events)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewMachine(cfg, 40_000)
			driveBench(m, events)
		}
	})
}

// driveBench replays a fixed-seed event stream heavy on the data-side
// hierarchy, where the set-index split sits on the hot path.
func driveBench(m *Machine, events int) {
	rng := stats.NewRNG(17)
	cl := trace.NewCodeLayout()
	code := cl.Region("bench", 16<<10)
	for i := 0; i < events; i++ {
		switch rng.IntN(4) {
		case 0:
			m.Load(uint64(0x10000000+rng.IntN(32<<20)), 64)
		case 1:
			m.Store(uint64(0x20000000+rng.IntN(1<<20)), 8)
		case 2:
			m.Exec(code, 100)
		case 3:
			m.Branch(uint64(rng.IntN(128)), rng.Bool(0.4))
		}
	}
}
