// Package trace defines the abstract execution-event vocabulary that
// connects the application substrates (key-value store, OLTP database,
// search engine, neural-network engine) to the microarchitecture simulator.
//
// Applications are real Go data structures, but every semantically
// significant action also emits events — data loads/stores at simulated
// virtual addresses, instruction-block executions, and branches — into a
// Collector. The simulator implements Collector and turns the event stream
// into the performance-counter samples Datamime profiles. This is the
// reproduction's substitute for hardware performance counters: the paper
// only ever consumes counter sample distributions, so any substrate that
// maps (program, dataset) to counter distributions with rich dataset-
// dependent structure exercises the identical search pipeline.
package trace

// Collector consumes execution events. Implementations must be cheap: apps
// emit one call per touched cache region, not per instruction.
type Collector interface {
	// Load records a data read of size bytes at the simulated address.
	Load(addr uint64, size int)
	// Store records a data write of size bytes at the simulated address.
	Store(addr uint64, size int)
	// Exec records the execution of instrs dynamic instructions within the
	// given code region (instruction-cache footprint).
	Exec(r *CodeRegion, instrs int)
	// Branch records a conditional branch at the given static site and its
	// outcome. Branches also count as one instruction.
	Branch(site uint64, taken bool)
	// Ops records n plain ALU/compute instructions with no memory traffic.
	Ops(n int)
}

// CodeRegion is a contiguous stretch of instruction memory belonging to one
// function or code path. Regions are laid out by a CodeLayout so distinct
// program functions occupy distinct i-cache lines; the amount and diversity
// of code a dataset exercises is what drives the instruction-footprint
// metrics (ICache MPKI, ITLB MPKI) that distinguish e.g. mem-fb from the
// Tailbench default dataset in Fig. 1.
type CodeRegion struct {
	Name  string
	Base  uint64 // starting virtual address, line-aligned
	Lines int    // footprint in 64-byte i-cache lines
	// cursor tracks loop position across Exec calls so repeated executions
	// walk the region cyclically (a loop body re-touches its own lines).
	cursor int
}

// LineSize is the cache-line size in bytes used throughout the simulator.
const LineSize = 64

// InstrBytesPerLine is how many dynamic instructions map onto one i-cache
// line fetch (64-byte lines, ~4-byte x86 instructions, ~16 instrs/line).
const InstrBytesPerLine = 16

// NextLines returns the sequence positions (line indices within the region)
// that executing instrs instructions touches, advancing the region cursor.
// The caller converts indices to addresses. A tiny region executing many
// instructions wraps around — re-touching hot lines, which naturally makes
// loops i-cache friendly.
func (r *CodeRegion) NextLines(instrs int) (startLine, nLines int) {
	if r.Lines <= 0 {
		return 0, 0
	}
	n := instrs / InstrBytesPerLine
	if n < 1 {
		n = 1
	}
	if n > r.Lines {
		n = r.Lines // distinct lines touched saturate at the footprint
	}
	start := r.cursor
	r.cursor = (r.cursor + n) % r.Lines
	return start, n
}

// LineAddr returns the address of the i-th line of the region (mod its
// footprint).
func (r *CodeRegion) LineAddr(i int) uint64 {
	return r.Base + uint64(i%r.Lines)*LineSize
}

// CodeLayout allocates code regions in a simulated text segment.
type CodeLayout struct {
	next uint64
}

// codeBase is where the simulated text segment starts (mirrors a typical
// Linux executable load address).
const codeBase = 0x0000000000400000

// NewCodeLayout returns an empty layout at the default text base.
func NewCodeLayout() *CodeLayout {
	return &CodeLayout{next: codeBase}
}

// NewCodeLayoutAt returns an empty layout starting at the given base,
// rounded up to a line boundary. Used to place code that must not share
// lines with the main text segment (e.g., the simulated kernel network
// stack).
func NewCodeLayoutAt(base uint64) *CodeLayout {
	if rem := base % LineSize; rem != 0 {
		base += LineSize - rem
	}
	return &CodeLayout{next: base}
}

// Region allocates a code region of the given size in bytes (rounded up to
// whole lines, minimum one line).
func (cl *CodeLayout) Region(name string, bytes int) *CodeRegion {
	lines := (bytes + LineSize - 1) / LineSize
	if lines < 1 {
		lines = 1
	}
	r := &CodeRegion{Name: name, Base: cl.next, Lines: lines}
	cl.next += uint64(lines) * LineSize
	// Pad between regions by one line so regions never share a line.
	cl.next += LineSize
	return r
}

// Null is a Collector that discards all events; useful for constructing
// datasets without profiling them.
type Null struct{}

// Load discards the event.
func (Null) Load(uint64, int) {}

// Store discards the event.
func (Null) Store(uint64, int) {}

// Exec advances the region cursor (so behavior matches a real collector)
// but records nothing.
func (Null) Exec(r *CodeRegion, instrs int) { r.NextLines(instrs) }

// Branch discards the event.
func (Null) Branch(uint64, bool) {}

// Ops discards the event.
func (Null) Ops(int) {}

// Recorder is a Collector that tallies events; application unit tests use
// it to assert that operations emit sensible traffic.
type Recorder struct {
	Loads, Stores   int
	LoadBytes       int
	StoreBytes      int
	Instrs          int
	Branches        int
	Taken           int
	ExecCalls       int
	DistinctRegions map[string]bool
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{DistinctRegions: make(map[string]bool)}
}

// Load tallies a data read.
func (r *Recorder) Load(_ uint64, size int) {
	r.Loads++
	r.LoadBytes += size
	r.Instrs += instrsForSize(size)
}

// Store tallies a data write.
func (r *Recorder) Store(_ uint64, size int) {
	r.Stores++
	r.StoreBytes += size
	r.Instrs += instrsForSize(size)
}

// Exec tallies an instruction-block execution.
func (r *Recorder) Exec(region *CodeRegion, instrs int) {
	r.ExecCalls++
	r.Instrs += instrs
	r.DistinctRegions[region.Name] = true
	region.NextLines(instrs)
}

// Branch tallies a branch.
func (r *Recorder) Branch(_ uint64, taken bool) {
	r.Branches++
	r.Instrs++
	if taken {
		r.Taken++
	}
}

// Ops tallies plain instructions.
func (r *Recorder) Ops(n int) { r.Instrs += n }

// instrsForSize converts a memory operation size into a dynamic instruction
// count: one 8-byte memory instruction per 8 bytes moved, minimum one.
func instrsForSize(size int) int {
	n := size / 8
	if n < 1 {
		n = 1
	}
	return n
}

// InstrsForSize is the public version of the size→instruction mapping used
// by collectors that need consistent instruction accounting.
func InstrsForSize(size int) int { return instrsForSize(size) }
