package trace

import "testing"

func TestCodeLayoutNonOverlapping(t *testing.T) {
	cl := NewCodeLayout()
	a := cl.Region("a", 1000)
	b := cl.Region("b", 64)
	if a.Lines != 16 { // ceil(1000/64)
		t.Fatalf("region a lines = %d, want 16", a.Lines)
	}
	if b.Lines != 1 {
		t.Fatalf("region b lines = %d, want 1", b.Lines)
	}
	endA := a.Base + uint64(a.Lines)*LineSize
	if b.Base < endA+LineSize {
		t.Fatalf("regions overlap or lack padding: a ends %#x, b starts %#x", endA, b.Base)
	}
	if a.Base%LineSize != 0 || b.Base%LineSize != 0 {
		t.Fatal("region bases not line aligned")
	}
}

func TestCodeRegionMinimumOneLine(t *testing.T) {
	cl := NewCodeLayout()
	r := cl.Region("tiny", 0)
	if r.Lines != 1 {
		t.Fatalf("zero-byte region lines = %d, want 1", r.Lines)
	}
}

func TestNextLinesWalksAndWraps(t *testing.T) {
	cl := NewCodeLayout()
	r := cl.Region("loop", 4*LineSize) // 4 lines
	// 32 instructions = 2 lines touched.
	start, n := r.NextLines(2 * InstrBytesPerLine)
	if start != 0 || n != 2 {
		t.Fatalf("first NextLines = (%d, %d), want (0, 2)", start, n)
	}
	// Next call continues from the cursor.
	start, n = r.NextLines(2 * InstrBytesPerLine)
	if start != 2 || n != 2 {
		t.Fatalf("second NextLines = (%d, %d), want (2, 2)", start, n)
	}
	// Cursor wrapped to 0.
	start, _ = r.NextLines(InstrBytesPerLine)
	if start != 0 {
		t.Fatalf("cursor did not wrap: start = %d", start)
	}
}

func TestNextLinesSaturatesAtFootprint(t *testing.T) {
	cl := NewCodeLayout()
	r := cl.Region("hot", 2*LineSize)
	_, n := r.NextLines(1000 * InstrBytesPerLine)
	if n != 2 {
		t.Fatalf("distinct lines = %d, want footprint 2", n)
	}
	// A tiny execution touches at least one line.
	_, n = r.NextLines(1)
	if n != 1 {
		t.Fatalf("minimum lines = %d, want 1", n)
	}
}

func TestLineAddrWithinRegion(t *testing.T) {
	cl := NewCodeLayout()
	r := cl.Region("f", 3*LineSize)
	if r.LineAddr(0) != r.Base {
		t.Fatal("LineAddr(0) != Base")
	}
	if r.LineAddr(3) != r.Base { // wraps mod Lines
		t.Fatal("LineAddr does not wrap")
	}
	if r.LineAddr(2) != r.Base+2*LineSize {
		t.Fatal("LineAddr(2) wrong")
	}
}

func TestRecorderTallies(t *testing.T) {
	cl := NewCodeLayout()
	r := cl.Region("op", 128)
	rec := NewRecorder()
	rec.Load(0x1000, 100)
	rec.Store(0x2000, 8)
	rec.Exec(r, 50)
	rec.Branch(1, true)
	rec.Branch(2, false)
	rec.Ops(7)

	if rec.Loads != 1 || rec.Stores != 1 {
		t.Fatalf("loads/stores = %d/%d", rec.Loads, rec.Stores)
	}
	if rec.LoadBytes != 100 || rec.StoreBytes != 8 {
		t.Fatalf("bytes = %d/%d", rec.LoadBytes, rec.StoreBytes)
	}
	// 100 bytes -> 12 instrs, 8 bytes -> 1, exec 50, 2 branches, 7 ops.
	want := 12 + 1 + 50 + 2 + 7
	if rec.Instrs != want {
		t.Fatalf("instrs = %d, want %d", rec.Instrs, want)
	}
	if rec.Branches != 2 || rec.Taken != 1 {
		t.Fatalf("branches/taken = %d/%d", rec.Branches, rec.Taken)
	}
	if !rec.DistinctRegions["op"] {
		t.Fatal("region not recorded")
	}
}

func TestInstrsForSize(t *testing.T) {
	cases := []struct{ size, want int }{{1, 1}, {8, 1}, {9, 1}, {16, 2}, {64, 8}, {100, 12}}
	for _, c := range cases {
		if got := InstrsForSize(c.size); got != c.want {
			t.Fatalf("InstrsForSize(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestNullCollectorAdvancesCursor(t *testing.T) {
	cl := NewCodeLayout()
	r := cl.Region("n", 4*LineSize)
	var null Null
	null.Exec(r, 2*InstrBytesPerLine)
	start, _ := r.NextLines(InstrBytesPerLine)
	if start != 2 {
		t.Fatalf("Null.Exec did not advance cursor: start = %d", start)
	}
	// The rest are no-ops but must not panic.
	null.Load(0, 1)
	null.Store(0, 1)
	null.Branch(0, true)
	null.Ops(1)
}
