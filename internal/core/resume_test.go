package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"datamime/internal/opt"
	"datamime/internal/profile"
)

// mapCache is a minimal EvalCache for tests.
type mapCache struct {
	mu   sync.Mutex
	m    map[string]*profile.Profile
	hits int
}

func newMapCache() *mapCache { return &mapCache{m: make(map[string]*profile.Profile)} }

func (c *mapCache) Get(key string) (*profile.Profile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[key]
	if ok {
		c.hits++
	}
	return p, ok
}

func (c *mapCache) Put(key string, p *profile.Profile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = p
}

func metricSearchConfig(iterations, parallel int, seed uint64) SearchConfig {
	pr := fastProfiler()
	pr.SkipCurves = true
	return SearchConfig{
		Generator:  smallKVGenerator(),
		Objective:  MetricObjective{Metric: profile.MetricCPUUtil, Value: 0.15},
		Profiler:   pr,
		Iterations: iterations,
		Parallel:   parallel,
		Seed:       seed,
	}
}

// TestParallelTraceMatchesSerial: with an optimizer whose batch proposals
// are its serial proposal stream (random search; BayesOpt inside its
// Latin-hypercube phase), Parallel: 4 must produce a Trace identical to
// Parallel: 1 — batching changes wall-clock, not results. Run under -race
// this also exercises the batch goroutines.
func TestParallelTraceMatchesSerial(t *testing.T) {
	run := func(parallel int, optimizer func() opt.Optimizer, iterations int) *Result {
		cfg := metricSearchConfig(iterations, parallel, 77)
		if optimizer != nil {
			cfg.Optimizer = optimizer()
		}
		res, err := Search(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gen := smallKVGenerator()

	// Random search: batch proposals are sequential draws at any budget.
	serial := run(1, func() opt.Optimizer { return opt.NewRandomSearch(gen.Space, 7) }, 13)
	par := run(4, func() opt.Optimizer { return opt.NewRandomSearch(gen.Space, 7) }, 13)
	if !reflect.DeepEqual(serial.Trace, par.Trace) {
		t.Fatalf("random-search traces diverged:\nserial %v\nparallel %v", serial.Trace, par.Trace)
	}

	// Default BayesOpt: its initial design (6 points for this 3-dim space)
	// is dealt out identically in batches and serially.
	serial = run(1, nil, 6)
	par = run(4, nil, 6)
	if !reflect.DeepEqual(serial.Trace, par.Trace) {
		t.Fatalf("BayesOpt init-design traces diverged:\nserial %v\nparallel %v", serial.Trace, par.Trace)
	}
}

// TestCheckpointResumeBitForBit: a search resumed from a mid-run checkpoint
// must match an uninterrupted run exactly — same trace, same best, same
// final checkpoint — because replaying the (u, y) history reconstructs the
// optimizer and RNG state deterministically.
func TestCheckpointResumeBitForBit(t *testing.T) {
	cache := newMapCache()

	full := metricSearchConfig(14, 2, 55)
	full.Cache = cache
	var checkpoints []Checkpoint
	full.OnCheckpoint = func(cp Checkpoint) { checkpoints = append(checkpoints, cp) }
	ref, err := Search(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(checkpoints) != 7 { // 14 iterations / Parallel 2
		t.Fatalf("got %d checkpoints, want 7", len(checkpoints))
	}

	// Resume from the 4th batch boundary (8 iterations done).
	prefix := checkpoints[3]
	if len(prefix.Entries) != 8 {
		t.Fatalf("checkpoint prefix has %d entries, want 8", len(prefix.Entries))
	}
	resumed := metricSearchConfig(14, 2, 55)
	resumed.Cache = cache
	resumed.Resume = &prefix
	res, err := SearchContext(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(ref.Trace, res.Trace) {
		t.Fatalf("resumed trace diverged:\nref     %v\nresumed %v", ref.Trace, res.Trace)
	}
	if ref.BestError != res.BestError || !reflect.DeepEqual(ref.BestParams, res.BestParams) {
		t.Fatalf("resumed best diverged: %g %v vs %g %v",
			ref.BestError, ref.BestParams, res.BestError, res.BestParams)
	}
	if !reflect.DeepEqual(ref.Checkpoint, res.Checkpoint) {
		t.Fatal("resumed final checkpoint diverged")
	}
	if res.Evaluations != 14 {
		t.Fatalf("resumed Evaluations = %d, want 14", res.Evaluations)
	}
	// The replayed prefix's profiles live in the cache, so even a best
	// found before the checkpoint has its profile.
	if res.BestProfile == nil {
		t.Fatal("resumed search lost the best profile")
	}
}

// TestSearchCacheSkipsResimulation: a second identical search served from a
// shared cache performs zero fresh simulation and returns identical results.
func TestSearchCacheSkipsResimulation(t *testing.T) {
	cache := newMapCache()
	run := func() *Result {
		cfg := metricSearchConfig(8, 2, 31)
		cfg.Cache = cache
		res, err := Search(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	if first.CacheHits != 0 {
		t.Fatalf("first run had %d cache hits", first.CacheHits)
	}
	if first.SimulatedCycles <= 0 {
		t.Fatal("first run recorded no simulated cycles")
	}
	second := run()
	if second.CacheHits != second.Evaluations {
		t.Fatalf("second run: %d hits for %d evaluations", second.CacheHits, second.Evaluations)
	}
	if second.SimulatedCycles != 0 {
		t.Fatalf("cached run simulated %g cycles", second.SimulatedCycles)
	}
	if !reflect.DeepEqual(first.Trace, second.Trace) {
		t.Fatal("cached run diverged from fresh run")
	}
}

// TestSearchContextCancel: canceling mid-run stops the search within one
// batch and returns the context error plus the partial result.
func TestSearchContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := metricSearchConfig(40, 2, 12)
	events := 0
	cfg.OnEval = func(EvalEvent) {
		events++
		if events == 4 {
			cancel()
		}
	}
	res, err := SearchContext(ctx, cfg)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Trace) == 0 || len(res.Trace) > 6 {
		t.Fatalf("partial result trace = %v", res)
	}
	// The partial checkpoint resumes to the same outcome as an
	// uninterrupted run.
	prefix := res.Checkpoint.Clone()
	resumed := metricSearchConfig(40, 2, 12)
	resumed.Resume = &prefix
	ref, err := Search(metricSearchConfig(40, 2, 12))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Search(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Trace, got.Trace) {
		t.Fatal("resume-after-cancel diverged from uninterrupted run")
	}

	// An already-canceled context fails fast.
	if _, err := SearchContext(ctx, metricSearchConfig(4, 1, 1)); err != context.Canceled {
		t.Fatalf("pre-canceled context: err = %v", err)
	}
}
