package core

import (
	"testing"

	"datamime/internal/profile"
)

func TestParallelSearchMatchesBudget(t *testing.T) {
	gen := smallKVGenerator()
	pr := fastProfiler()
	pr.SkipCurves = true
	res, err := Search(SearchConfig{
		Generator:  gen,
		Objective:  MetricObjective{Metric: profile.MetricCPUUtil, Value: 0.15},
		Profiler:   pr,
		Iterations: 13, // deliberately not a multiple of Parallel
		Parallel:   4,
		Seed:       21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 13 || len(res.Trace) != 13 {
		t.Fatalf("parallel search did %d evals, trace %d", res.Evaluations, len(res.Trace))
	}
	// Trace iteration numbers are sequential and best-so-far non-increasing.
	for i, rec := range res.Trace {
		if rec.Iteration != i {
			t.Fatalf("trace[%d].Iteration = %d", i, rec.Iteration)
		}
		if i > 0 && rec.BestError > res.Trace[i-1].BestError {
			t.Fatal("best-so-far increased")
		}
	}
}

func TestParallelSearchDeterministic(t *testing.T) {
	run := func() float64 {
		gen := smallKVGenerator()
		pr := fastProfiler()
		pr.SkipCurves = true
		res, err := Search(SearchConfig{
			Generator:  gen,
			Objective:  MetricObjective{Metric: profile.MetricCPUUtil, Value: 0.1},
			Profiler:   pr,
			Iterations: 8,
			Parallel:   4,
			Seed:       33,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.BestError
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("parallel same-seed searches diverged: %g vs %g", a, b)
	}
}

func TestParallelSearchFindsSameQualityAsSerial(t *testing.T) {
	gen := smallKVGenerator()
	run := func(parallel int) float64 {
		pr := fastProfiler()
		pr.SkipCurves = true
		res, err := Search(SearchConfig{
			Generator:  gen,
			Objective:  MetricObjective{Metric: profile.MetricCPUUtil, Value: 0.12},
			Profiler:   pr,
			Iterations: 16,
			Parallel:   parallel,
			Seed:       44,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.BestError
	}
	serial := run(1)
	par := run(4)
	// Parallel search trades per-step information for wall-clock speed;
	// the final quality must stay in the same ballpark.
	if par > serial*3+0.2 {
		t.Fatalf("parallel quality collapsed: serial %g vs parallel %g", serial, par)
	}
}
