package core

import (
	"reflect"
	"testing"

	"datamime/internal/profile"
	"datamime/internal/stats"
)

// randomProfile builds a profile with unsorted random samples, so the
// sorted-target fast path actually has sorting work to skip.
func randomProfile(seed uint64) *profile.Profile {
	rng := stats.NewRNG(seed)
	p := &profile.Profile{
		Benchmark: "random",
		Machine:   "broadwell",
		Samples:   make(map[profile.MetricID][]float64),
	}
	for _, id := range profile.ScalarMetrics {
		s := make([]float64, 40)
		for i := range s {
			s[i] = rng.NormFloat64() * 3
		}
		p.Samples[id] = s
	}
	for w := 1; w <= 6; w++ {
		p.Curve = append(p.Curve, profile.CurvePoint{
			Ways: w, SizeBytes: w << 20, IPC: 0.5 + rng.Float64(), LLCMPKI: 10 * rng.Float64(),
		})
	}
	return p
}

// TestProfileObjectiveSortedCache: NewProfileObjective's precomputed sorted
// targets must be invisible in the results — bit-identical totals and
// per-component attributions versus the literal (uncached) form, under both
// distance statistics and with the optional compression component on.
func TestProfileObjectiveSortedCache(t *testing.T) {
	target := randomProfile(5)
	models := []*ErrorModel{
		NewErrorModel(),
		NewErrorModel().WithDistance(DistKS),
		NewErrorModel().WithWeight(CompCompression, 2),
	}
	for mi, m := range models {
		plain := ProfileObjective{Target: target, Model: m}
		cached := NewProfileObjective(target, m)
		for s := uint64(20); s < 26; s++ {
			cand := randomProfile(s)
			if a, b := plain.Evaluate(cand), cached.Evaluate(cand); a != b {
				t.Fatalf("model %d seed %d: plain %v != cached %v", mi, s, a, b)
			}
			ta, pa := plain.EvaluateAttributed(cand)
			tb, pb := cached.EvaluateAttributed(cand)
			if ta != tb || !reflect.DeepEqual(pa, pb) {
				t.Fatalf("model %d seed %d: attribution diverged", mi, s)
			}
		}
		// Self-distance stays exactly zero through the cached path.
		if d := cached.Evaluate(target); d != 0 {
			t.Fatalf("model %d: cached self-distance %g", mi, d)
		}
	}
}

// TestSearchProfileWorkersIdentical: a search is bit-for-bit identical at
// any ProfileWorkers setting — same trace, same best, same checkpoint.
func TestSearchProfileWorkersIdentical(t *testing.T) {
	gen := smallKVGenerator()
	hidden := gen.Benchmark([]float64{90_000, 0.8, 400})
	target, err := fastProfiler().Profile(hidden, 321)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		res, err := Search(SearchConfig{
			Generator:      gen,
			Objective:      NewProfileObjective(target, NewErrorModel()),
			Profiler:       fastProfiler(),
			Iterations:     6,
			Seed:           13,
			ProfileWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(3)
	if !reflect.DeepEqual(serial.Trace, parallel.Trace) {
		t.Fatalf("traces diverged:\nserial:   %+v\nparallel: %+v", serial.Trace, parallel.Trace)
	}
	if serial.BestError != parallel.BestError ||
		!reflect.DeepEqual(serial.BestParams, parallel.BestParams) {
		t.Fatal("best result diverged across ProfileWorkers settings")
	}
	if !reflect.DeepEqual(serial.BestProfile, parallel.BestProfile) {
		t.Fatal("best profile diverged across ProfileWorkers settings")
	}
	if !reflect.DeepEqual(serial.Checkpoint, parallel.Checkpoint) {
		t.Fatal("checkpoints diverged across ProfileWorkers settings")
	}
}

// TestSearchRejectsNegativeProfileWorkers pins the validation contract the
// CLI flags rely on.
func TestSearchRejectsNegativeProfileWorkers(t *testing.T) {
	_, err := Search(SearchConfig{
		Generator:      smallKVGenerator(),
		Objective:      MetricObjective{Metric: profile.MetricIPC, Value: 1},
		Profiler:       fastProfiler(),
		Iterations:     1,
		ProfileWorkers: -1,
	})
	if err == nil {
		t.Fatal("negative ProfileWorkers accepted")
	}
}

func TestParallelSearchMatchesBudget(t *testing.T) {
	gen := smallKVGenerator()
	pr := fastProfiler()
	pr.SkipCurves = true
	res, err := Search(SearchConfig{
		Generator:  gen,
		Objective:  MetricObjective{Metric: profile.MetricCPUUtil, Value: 0.15},
		Profiler:   pr,
		Iterations: 13, // deliberately not a multiple of Parallel
		Parallel:   4,
		Seed:       21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 13 || len(res.Trace) != 13 {
		t.Fatalf("parallel search did %d evals, trace %d", res.Evaluations, len(res.Trace))
	}
	// Trace iteration numbers are sequential and best-so-far non-increasing.
	for i, rec := range res.Trace {
		if rec.Iteration != i {
			t.Fatalf("trace[%d].Iteration = %d", i, rec.Iteration)
		}
		if i > 0 && rec.BestError > res.Trace[i-1].BestError {
			t.Fatal("best-so-far increased")
		}
	}
}

func TestParallelSearchDeterministic(t *testing.T) {
	run := func() float64 {
		gen := smallKVGenerator()
		pr := fastProfiler()
		pr.SkipCurves = true
		res, err := Search(SearchConfig{
			Generator:  gen,
			Objective:  MetricObjective{Metric: profile.MetricCPUUtil, Value: 0.1},
			Profiler:   pr,
			Iterations: 8,
			Parallel:   4,
			Seed:       33,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.BestError
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("parallel same-seed searches diverged: %g vs %g", a, b)
	}
}

func TestParallelSearchFindsSameQualityAsSerial(t *testing.T) {
	gen := smallKVGenerator()
	run := func(parallel int) float64 {
		pr := fastProfiler()
		pr.SkipCurves = true
		res, err := Search(SearchConfig{
			Generator:  gen,
			Objective:  MetricObjective{Metric: profile.MetricCPUUtil, Value: 0.12},
			Profiler:   pr,
			Iterations: 16,
			Parallel:   parallel,
			Seed:       44,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.BestError
	}
	serial := run(1)
	par := run(4)
	// Parallel search trades per-step information for wall-clock speed;
	// the final quality must stay in the same ballpark.
	if par > serial*3+0.2 {
		t.Fatalf("parallel quality collapsed: serial %g vs parallel %g", serial, par)
	}
}
