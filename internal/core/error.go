// Package core implements Datamime itself: the profile error model of
// §III-C (summed, normalized Earth Mover's Distances over the ten Table I
// metrics, Eq. 1) and the profile-guided search loop (Eq. 2) that drives a
// black-box optimizer over a dataset generator's parameter space until the
// synthesized benchmark's profiles match the target's.
package core

import (
	"fmt"
	"math"

	"datamime/internal/profile"
	"datamime/internal/stats"
)

// Component names one of the ten error-model components: the eight scalar
// metric distributions plus the two cache-sensitivity curves.
type Component string

// The ten components of Eq. 1, mirroring Table I. IPC enters through the
// IPC curve (which includes the full-cache allocation), exactly as the
// paper lists "IPC Curve (across cache sizes)" rather than scalar IPC.
const (
	CompICache   Component = "icache_mpki"
	CompITLB     Component = "itlb_mpki"
	CompL1D      Component = "l1d_mpki"
	CompL2       Component = "l2_mpki"
	CompDTLB     Component = "dtlb_mpki"
	CompBranch   Component = "branch_mpki"
	CompCPUUtil  Component = "cpu_util"
	CompMemBW    Component = "mem_bw_gbs"
	CompLLCCurve Component = "llc_mpki_curve"
	CompIPCCurve Component = "ipc_curve"

	// CompCompression is the optional eleventh component backing the
	// §III-D extension: the snapshot compression ratio. It has no weight
	// in the default model (keeping the paper's ten-metric error intact);
	// enable it with WithWeight(CompCompression, w) when the target's
	// compressibility matters (e.g., evaluating cache/memory compression).
	CompCompression Component = "compress_ratio"
)

// Components lists all error components in Table I order.
var Components = []Component{
	CompICache, CompITLB,
	CompL1D, CompL2, CompDTLB,
	CompLLCCurve, CompIPCCurve,
	CompBranch, CompCPUUtil, CompMemBW,
}

// scalarFor maps distribution components to their profiled metric.
var scalarFor = map[Component]profile.MetricID{
	CompICache:  profile.MetricICache,
	CompITLB:    profile.MetricITLB,
	CompL1D:     profile.MetricL1D,
	CompL2:      profile.MetricL2,
	CompDTLB:    profile.MetricDTLB,
	CompBranch:  profile.MetricBranch,
	CompCPUUtil: profile.MetricCPUUtil,
	CompMemBW:   profile.MetricMemBW,
}

// DistanceKind selects the distribution-distance statistic. The paper uses
// EMD but notes Kolmogorov–Smirnov and Cramér–von Mises as viable
// alternatives (§III-C); KS is provided for the distance ablation.
type DistanceKind int

const (
	// DistEMD is the paper's Earth Mover's Distance over axis-normalized
	// CDFs.
	DistEMD DistanceKind = iota
	// DistKS is the Kolmogorov–Smirnov statistic (max vertical CDF gap).
	DistKS
)

func (k DistanceKind) String() string {
	switch k {
	case DistEMD:
		return "emd"
	case DistKS:
		return "ks"
	default:
		return fmt.Sprintf("DistanceKind(%d)", int(k))
	}
}

// ErrorModel computes the total profile error of Eq. 1. Each component is
// normalized to [0, 1] (EMD over axis-normalized CDFs for distributions;
// normalized mean absolute difference for curves) and weighted equally by
// default, "to make sure one mismatched metric does not dominate". Weights
// can be changed to prioritize metrics, as the paper does when re-running
// img-dnn with a higher IPC weight (§V-C).
type ErrorModel struct {
	Weights map[Component]float64
	// Stat selects the distribution statistic (default DistEMD).
	Stat DistanceKind
}

// NewErrorModel returns the default equal-weight model.
func NewErrorModel() *ErrorModel {
	w := make(map[Component]float64, len(Components))
	for _, c := range Components {
		w[c] = 1
	}
	return &ErrorModel{Weights: w}
}

// WithWeight returns a copy of the model with one component re-weighted.
func (em *ErrorModel) WithWeight(c Component, weight float64) *ErrorModel {
	out := &ErrorModel{Weights: make(map[Component]float64, len(em.Weights)), Stat: em.Stat}
	for k, v := range em.Weights {
		out.Weights[k] = v
	}
	out.Weights[c] = weight
	return out
}

// WithDistance returns a copy of the model using the given distribution
// statistic.
func (em *ErrorModel) WithDistance(kind DistanceKind) *ErrorModel {
	out := em.WithWeight(CompICache, em.Weights[CompICache]) // deep copy
	out.Stat = kind
	return out
}

// distDistanceSorted applies the selected statistic to two ascending-sorted
// sample sets. Both statistics reduce to a merge sweep over sorted inputs,
// so the distance path sorts each side exactly once — and the target side
// not at all when the caller passes a precomputed sorted map (see
// NewProfileObjective).
func (em *ErrorModel) distDistanceSorted(as, bs []float64) float64 {
	if em.Stat == DistKS {
		return stats.KSSorted(as, bs)
	}
	return stats.NormalizedEMDSorted(as, bs)
}

// scalarDistance computes one scalar component's distance, reusing a cached
// sorted target distribution when available.
func (em *ErrorModel) scalarDistance(target, cand *profile.Profile, id profile.MetricID, targetSorted map[profile.MetricID][]float64) float64 {
	ts, ok := targetSorted[id]
	if !ok {
		ts = stats.SortedCopy(target.Samples[id])
	}
	return em.distDistanceSorted(ts, stats.SortedCopy(cand.Samples[id]))
}

// Distance returns the total weighted error between a target and a
// candidate profile, plus the per-component breakdown (before weighting).
func (em *ErrorModel) Distance(target, cand *profile.Profile) (float64, map[Component]float64) {
	return em.distance(target, cand, nil)
}

// distance is Distance with an optional precomputed sorted-target cache.
// The sorted fast path is bit-identical to sorting inline (pinned by
// stats.TestSortedVariantsMatchUnsorted and TestProfileObjectiveSortedCache),
// so cached and uncached objectives produce the same error stream.
func (em *ErrorModel) distance(target, cand *profile.Profile, targetSorted map[profile.MetricID][]float64) (float64, map[Component]float64) {
	per := make(map[Component]float64, len(Components))
	var total float64
	for _, c := range Components {
		var d float64
		switch c {
		case CompLLCCurve:
			d = CurveDistance(target.LLCCurve(), cand.LLCCurve())
		case CompIPCCurve:
			d = CurveDistance(target.IPCCurve(), cand.IPCCurve())
		default:
			d = em.scalarDistance(target, cand, scalarFor[c], targetSorted)
		}
		per[c] = d
		total += em.Weights[c] * d
	}
	// Optional extension component: only when explicitly weighted in.
	if w, ok := em.Weights[CompCompression]; ok && w > 0 {
		d := em.scalarDistance(target, cand, profile.MetricCompress, targetSorted)
		per[CompCompression] = d
		total += w * d
	}
	return total, per
}

// CurveDistance is the normalized area between two sensitivity curves: the
// mean absolute pointwise difference divided by the largest value observed
// on either curve, giving a [0, 1] error comparable to the normalized EMDs.
// Curves of different lengths are compared over the shorter prefix (this
// happens only across machines with different partition counts).
func CurveDistance(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		if len(a) == len(b) {
			return 0
		}
		return 1
	}
	var maxV, sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(a[i] - b[i])
		maxV = math.Max(maxV, math.Max(math.Abs(a[i]), math.Abs(b[i])))
	}
	if maxV == 0 {
		return 0
	}
	return sum / float64(n) / maxV
}

// Objective scores a candidate profile; lower is better. ProfileObjective
// is the paper's error model; MetricObjective targets an arbitrary single-
// metric value, which is how Fig. 11 measures the generators' achievable
// profile ranges.
type Objective interface {
	// Evaluate returns the candidate's error.
	Evaluate(cand *profile.Profile) float64
	// Describe names the objective for logs.
	Describe() string
}

// AttributedObjective is implemented by objectives that can attribute their
// error across named components. The search records the attribution in each
// IterationRecord (and checkpoint entry), so convergence plots can show
// which metric drove the error — the explainability §III-C's summed EMD
// makes possible.
type AttributedObjective interface {
	Objective
	// EvaluateAttributed returns the candidate's total error along with
	// the per-component breakdown (unweighted component distances). The
	// total must equal Evaluate's result exactly.
	EvaluateAttributed(cand *profile.Profile) (float64, map[string]float64)
}

// ProfileObjective matches a full target profile under an error model.
//
// The literal form ProfileObjective{Target: t, Model: m} works and stays
// supported; NewProfileObjective additionally precomputes sorted copies of
// the target's sample distributions, so a search evaluating hundreds of
// candidates sorts the (fixed) target side once instead of once per
// evaluation. Both forms produce bit-identical errors.
type ProfileObjective struct {
	Target *profile.Profile
	Model  *ErrorModel

	// sortedTarget caches ascending-sorted copies of Target.Samples, keyed
	// by metric. nil (literal construction) sorts the target per evaluation.
	sortedTarget map[profile.MetricID][]float64
}

// NewProfileObjective builds a ProfileObjective with the target's sample
// distributions pre-sorted for the EMD/KS merge sweeps.
func NewProfileObjective(target *profile.Profile, model *ErrorModel) ProfileObjective {
	sorted := make(map[profile.MetricID][]float64, len(target.Samples))
	for id, s := range target.Samples {
		sorted[id] = stats.SortedCopy(s)
	}
	return ProfileObjective{Target: target, Model: model, sortedTarget: sorted}
}

// Evaluate implements Objective.
func (o ProfileObjective) Evaluate(cand *profile.Profile) float64 {
	total, _ := o.Model.distance(o.Target, cand, o.sortedTarget)
	return total
}

// EvaluateAttributed implements AttributedObjective: the per-component EMD
// terms of Eq. 1, keyed by Component name.
func (o ProfileObjective) EvaluateAttributed(cand *profile.Profile) (float64, map[string]float64) {
	total, per := o.Model.distance(o.Target, cand, o.sortedTarget)
	out := make(map[string]float64, len(per))
	for c, d := range per {
		out[string(c)] = d
	}
	return total, out
}

var _ AttributedObjective = ProfileObjective{}

// Describe implements Objective.
func (o ProfileObjective) Describe() string {
	return fmt.Sprintf("match profile of %s", o.Target.Benchmark)
}

// MetricObjective drives one scalar metric's mean toward a target value.
type MetricObjective struct {
	Metric profile.MetricID
	Value  float64
}

// Evaluate implements Objective: relative error against the target value.
func (o MetricObjective) Evaluate(cand *profile.Profile) float64 {
	got := cand.Mean(o.Metric)
	scale := math.Abs(o.Value)
	if scale < 1e-9 {
		scale = 1
	}
	return math.Abs(got-o.Value) / scale
}

// Describe implements Objective.
func (o MetricObjective) Describe() string {
	return fmt.Sprintf("target %s = %g", o.Metric, o.Value)
}
