package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"datamime/internal/telemetry"
)

// TestTelemetryDoesNotPerturbSearch: enabling the recorder must not change
// proposals, seeds, or the trace — telemetry is observation only.
func TestTelemetryDoesNotPerturbSearch(t *testing.T) {
	plain, err := Search(metricSearchConfig(8, 1, 42))
	if err != nil {
		t.Fatal(err)
	}

	rec := telemetry.New(telemetry.Options{Capacity: 4096})
	cfg := metricSearchConfig(8, 1, 42)
	cfg.Telemetry = rec
	cfg.Profiler.Telemetry = rec
	traced, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Trace, traced.Trace) {
		t.Fatalf("telemetry perturbed the trace:\nplain  %v\ntraced %v", plain.Trace, traced.Trace)
	}
	if !reflect.DeepEqual(plain.Checkpoint, traced.Checkpoint) {
		t.Fatal("telemetry perturbed the checkpoint")
	}

	// Search-health diagnostics are computed whether or not telemetry is on
	// (DeepEqual above already proved both runs attach identical blocks);
	// the surrogate-backed iterations past the initial design must carry one.
	withDiag := 0
	for _, r := range plain.Trace {
		if r.Diagnostics != nil {
			withDiag++
			if r.Diagnostics.Observations == 0 || r.Diagnostics.Candidates == 0 {
				t.Fatalf("iteration %d diagnostics incomplete: %+v", r.Iteration, *r.Diagnostics)
			}
		}
	}
	if withDiag == 0 {
		t.Fatal("no trace record carries GP diagnostics")
	}

	// Every pipeline phase must have produced spans, every iteration an eval
	// event, and every diagnostics-bearing iteration a search.diagnostics
	// event.
	phases := make(map[string]int)
	evals, diagEvents := 0, 0
	for _, ev := range rec.Recent() {
		switch ev.Type {
		case telemetry.TypeSpan:
			phases[ev.Phase]++
		case telemetry.TypeEval:
			evals++
		case telemetry.TypeSearchDiagnostics:
			diagEvents++
			if ev.Attrs[telemetry.DiagObservations] == 0 {
				t.Fatalf("search.diagnostics event without observations: %+v", ev)
			}
		}
	}
	if diagEvents != withDiag {
		t.Errorf("recorded %d search.diagnostics events, want %d (one per diagnostics-bearing iteration)",
			diagEvents, withDiag)
	}
	for _, want := range []string{
		telemetry.PhasePropose, telemetry.PhaseGenerate, telemetry.PhaseProfile,
		telemetry.PhaseProfileRun, telemetry.PhaseObserve,
	} {
		if phases[want] == 0 {
			t.Errorf("no %q spans recorded (phases: %v)", want, phases)
		}
	}
	if evals != 8 {
		t.Errorf("recorded %d eval events, want 8", evals)
	}
}

// TestEvalEventPhaseTimings: with telemetry on, fresh evaluations report
// generate and profile wall-clock in EvalEvent.PhaseNS; with telemetry off,
// PhaseNS stays nil (the disabled path allocates nothing).
func TestEvalEventPhaseTimings(t *testing.T) {
	var withTel, without []EvalEvent
	cfg := metricSearchConfig(4, 1, 9)
	cfg.Telemetry = telemetry.New(telemetry.Options{})
	cfg.OnEval = func(ev EvalEvent) { withTel = append(withTel, ev) }
	if _, err := Search(cfg); err != nil {
		t.Fatal(err)
	}
	cfg = metricSearchConfig(4, 1, 9)
	cfg.OnEval = func(ev EvalEvent) { without = append(without, ev) }
	if _, err := Search(cfg); err != nil {
		t.Fatal(err)
	}
	for i, ev := range withTel {
		if ev.PhaseNS == nil {
			t.Fatalf("event %d: PhaseNS nil with telemetry enabled", i)
		}
		if ev.PhaseNS[telemetry.PhaseProfile] <= 0 {
			t.Fatalf("event %d: profile phase %dns, want > 0", i, ev.PhaseNS[telemetry.PhaseProfile])
		}
	}
	for i, ev := range without {
		if ev.PhaseNS != nil {
			t.Fatalf("event %d: PhaseNS = %v with telemetry disabled, want nil", i, ev.PhaseNS)
		}
	}
}

// TestArtifactReplayMatchesMinEMDTrace: the acceptance criterion — a JSONL
// artifact streamed from the recorder replays to the same best-error series
// as the in-memory Result.
func TestArtifactReplayMatchesMinEMDTrace(t *testing.T) {
	var buf bytes.Buffer
	cfg := metricSearchConfig(10, 2, 5)
	cfg.Telemetry = telemetry.New(telemetry.Options{OnEvent: telemetry.NewJSONLSink(&buf)})
	res, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := telemetry.ReplayBestTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, res.MinEMDTrace()) {
		t.Fatalf("artifact replay diverged:\nreplayed %v\nin-memory %v", replayed, res.MinEMDTrace())
	}
}

// TestAttributedComponentsRoundTrip: ProfileObjective searches attribute the
// error across the Table I components, the attribution survives a JSON
// checkpoint round-trip, and a resumed search replays it bit for bit.
func TestAttributedComponentsRoundTrip(t *testing.T) {
	gen := smallKVGenerator()
	pr := fastProfiler()
	hidden := gen.Benchmark([]float64{120_000, 0.95, 900})
	target, err := pr.Profile(hidden, 999)
	if err != nil {
		t.Fatal(err)
	}
	base := SearchConfig{
		Generator:  gen,
		Objective:  ProfileObjective{Target: target, Model: NewErrorModel()},
		Profiler:   fastProfiler(),
		Iterations: 6,
		Seed:       7,
		Cache:      newMapCache(),
	}

	full, err := Search(base)
	if err != nil {
		t.Fatal(err)
	}
	model := NewErrorModel()
	for i, rec := range full.Trace {
		if len(rec.Components) == 0 {
			t.Fatalf("trace[%d] has no component attribution", i)
		}
		var sum float64
		for c, d := range rec.Components {
			sum += model.Weights[Component(c)] * d
		}
		if diff := sum - rec.Error; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("trace[%d]: components sum to %g, Error = %g", i, sum, rec.Error)
		}
	}
	for i, ent := range full.Checkpoint.Entries {
		if len(ent.Components) == 0 {
			t.Fatalf("checkpoint entry %d has no components", i)
		}
	}

	// Persist → restore → resume: the replayed trace (components included)
	// must be identical to the uninterrupted run's.
	data, err := json.Marshal(full.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	var restored Checkpoint
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	resumeCfg := base
	resumeCfg.Resume = &restored
	resumed, err := Search(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Trace, resumed.Trace) {
		t.Fatalf("resumed trace diverged:\nfull    %+v\nresumed %+v", full.Trace, resumed.Trace)
	}
}

// TestResumeDeterministicWithTelemetry: interrupt-and-resume stays
// bit-for-bit deterministic with telemetry enabled on either leg.
func TestResumeDeterministicWithTelemetry(t *testing.T) {
	cache := newMapCache()
	base := metricSearchConfig(9, 1, 11)
	base.Cache = cache

	full, err := Search(base)
	if err != nil {
		t.Fatal(err)
	}

	// First leg (telemetry on): capture the checkpoint after ~half the
	// budget.
	var mid *Checkpoint
	firstLeg := base
	firstLeg.Iterations = 5
	firstLeg.Telemetry = telemetry.New(telemetry.Options{})
	firstLeg.OnCheckpoint = func(cp Checkpoint) { mid = &cp }
	if _, err := Search(firstLeg); err != nil {
		t.Fatal(err)
	}
	if mid == nil || len(mid.Entries) != 5 {
		t.Fatalf("no mid-run checkpoint captured: %+v", mid)
	}

	// Second leg (telemetry on too): resume to the full budget.
	second := base
	second.Resume = mid
	second.Telemetry = telemetry.New(telemetry.Options{})
	resumed, err := Search(second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Trace, resumed.Trace) {
		t.Fatalf("telemetry-enabled resume diverged:\nfull    %v\nresumed %v", full.Trace, resumed.Trace)
	}
	if full.BestError != resumed.BestError {
		t.Fatalf("BestError %g != resumed %g", full.BestError, resumed.BestError)
	}
}

// TestTraceExportTelemetryBitIdentical is the -trace determinism gate:
// running the full parallel pipeline with the trace-collector sink attached
// (cmd/datamime's -trace path: collector + profiler instrumentation,
// profile.sim and budget.wait spans included) must produce results
// bit-identical to an uninstrumented run, and the collected stream must
// export as a structurally valid Perfetto trace. Run under -race this also
// proves the collector is safe against the pool's concurrent emitters.
func TestTraceExportTelemetryBitIdentical(t *testing.T) {
	plain, err := Search(metricSearchConfig(8, 2, 42))
	if err != nil {
		t.Fatal(err)
	}

	var collector telemetry.Collector
	rec := telemetry.New(telemetry.Options{OnEvent: collector.Record})
	cfg := metricSearchConfig(8, 2, 42)
	cfg.ProfileWorkers = 2
	cfg.Telemetry = rec
	cfg.Profiler.Telemetry = rec
	cfg.Profiler.Workers = 2
	traced, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Trace, traced.Trace) {
		t.Fatalf("trace instrumentation perturbed the search:\nplain  %v\ntraced %v",
			plain.Trace, traced.Trace)
	}
	if !reflect.DeepEqual(plain.Checkpoint, traced.Checkpoint) {
		t.Fatal("trace instrumentation perturbed the checkpoint")
	}

	var buf bytes.Buffer
	if err := telemetry.WriteTrace(&buf, collector.Events()); err != nil {
		t.Fatal(err)
	}
	st, err := telemetry.ValidateTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spans == 0 || st.WorkerTracks == 0 {
		t.Fatalf("exported trace missing spans or worker tracks: %+v", st)
	}
}
