package core

import (
	"testing"

	"datamime/internal/profile"
)

func TestDistanceKindString(t *testing.T) {
	if DistEMD.String() != "emd" || DistKS.String() != "ks" {
		t.Fatal("distance kind names")
	}
	if DistanceKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestKSErrorModel(t *testing.T) {
	em := NewErrorModel().WithDistance(DistKS)
	if em.Stat != DistKS {
		t.Fatal("WithDistance did not set the statistic")
	}
	// The original model is unchanged.
	if NewErrorModel().Stat != DistEMD {
		t.Fatal("default statistic must be EMD")
	}
	base := fakeProfile(0)
	d0, _ := em.Distance(base, base)
	if d0 != 0 {
		t.Fatalf("KS self-distance %g", d0)
	}
	d1, per := em.Distance(base, fakeProfile(5))
	if d1 <= 0 {
		t.Fatal("KS distance zero on mismatch")
	}
	// Disjoint sample supports: every scalar component saturates at 1.
	for _, c := range Components {
		if c == CompIPCCurve || c == CompLLCCurve {
			continue
		}
		if per[c] != 1 {
			t.Fatalf("KS component %s = %g, want 1 for disjoint supports", c, per[c])
		}
	}
}

func TestKSAndEMDBothDriveSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("search-backed test")
	}
	gen := smallKVGenerator()
	pr := fastProfiler()
	hidden := gen.Benchmark([]float64{100_000, 0.9, 600})
	target, err := pr.Profile(hidden, 123)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []DistanceKind{DistEMD, DistKS} {
		res, err := Search(SearchConfig{
			Generator:  gen,
			Objective:  ProfileObjective{Target: target, Model: NewErrorModel().WithDistance(kind)},
			Profiler:   pr,
			Iterations: 12,
			Parallel:   4,
			Seed:       7,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		// Both statistics must make search progress (first vs best).
		if res.BestError >= res.Trace[0].Error && res.Trace[0].Error > 0.05 {
			t.Fatalf("%s search made no progress: %g -> %g", kind, res.Trace[0].Error, res.BestError)
		}
		// Sanity: the winner's profile is plausible.
		if res.BestProfile.Mean(profile.MetricIPC) <= 0 {
			t.Fatalf("%s: degenerate best profile", kind)
		}
	}
}
