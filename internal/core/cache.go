package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"datamime/internal/profile"
)

// EvalCache is a content-addressed store of measured profiles, shared
// across searches. Search consults it before profiling a candidate and
// stores every fresh measurement, so repeated evaluations of the same
// (parameters, seed, machine, profiler budget) — warm restarts, resubmitted
// jobs, overlapping searches — skip re-simulation entirely. Implementations
// must be safe for concurrent use; cached profiles are shared and must be
// treated as immutable.
type EvalCache interface {
	// Get returns the profile stored under key, if any.
	Get(key string) (*profile.Profile, bool)
	// Put stores a freshly measured profile under key.
	Put(key string, p *profile.Profile)
}

// EvalKey builds the content address of one evaluation: a hash of the
// generator identity, the machine, every profiler budget knob, the
// denormalized parameter vector, and the profiling seed. Two evaluations
// with equal keys produce bit-identical profiles (the simulator is
// deterministic), so the profile — not the objective value — is what the
// cache stores: one cached measurement serves any objective.
//
// Profiler.Workers, Profiler.Budget, and Profiler.Telemetry are
// deliberately excluded: they control how fast (and how observably) a
// profile is measured, never what is measured, so serial and parallel runs
// share cache entries.
func EvalKey(generator string, pr *profile.Profiler, x []float64, seed uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "gen=%s|machine=%s|wc=%g|w=%d|warm=%d|cw=%d|cp=%d|max=%d|skip=%t|seed=%d",
		generator, pr.Machine.Name, pr.WindowCycles, pr.Windows, pr.WarmupWindows,
		pr.CurveWindows, pr.CurvePoints, pr.MaxRequestsPerRun, pr.SkipCurves, seed)
	for _, v := range x {
		fmt.Fprintf(h, "|%016x", math.Float64bits(v))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
