package core

import (
	"context"
	"fmt"
	"sync"

	"datamime/internal/datagen"
	"datamime/internal/opt"
	"datamime/internal/profile"
	"datamime/internal/stats"
	"datamime/internal/telemetry"
)

// EvalErrorPolicy selects how Search reacts to a profiling failure.
type EvalErrorPolicy int

const (
	// EvalFailFast aborts the search on the first profiling error (the
	// historical behavior, and the default).
	EvalFailFast EvalErrorPolicy = iota
	// EvalRetrySkip retries a failed evaluation once with a perturbed
	// profiling seed; if that fails too, the iteration is skipped and
	// recorded (Result.Skipped, checkpoint entry with Skipped set) and the
	// search continues. Long searches degrade gracefully instead of losing
	// hours of progress to one flaky candidate.
	EvalRetrySkip
)

// Evaluator measures one candidate out of process. Implementations receive
// the denormalized parameter vector and the deterministic per-iteration
// profiling seed, and must return the profile the search's own Profiler
// would have measured for them — the determinism contract that keeps
// distributed runs bit-identical to local ones (internal/backend provides
// conforming implementations). The context carries search cancellation.
type Evaluator interface {
	Evaluate(ctx context.Context, x []float64, seed uint64) (*profile.Profile, error)
}

// SearchConfig drives one Datamime search: find the generator parameters
// whose benchmark minimizes the objective (Eq. 2).
type SearchConfig struct {
	// Generator is the dataset generator to search (space + factory).
	Generator datagen.Generator
	// Objective scores each candidate profile (ProfileObjective for the
	// paper's search, MetricObjective for range sweeps). Objectives that
	// also implement AttributedObjective get per-component error
	// attribution recorded in the trace and checkpoints.
	Objective Objective
	// Profiler measures candidates. For MetricObjective sweeps without
	// curve components, set Profiler.SkipCurves to save time.
	Profiler *profile.Profiler
	// Iterations is the evaluation budget (the paper runs 200).
	Iterations int
	// Optimizer proposes parameters; nil selects the paper's Bayesian
	// optimizer. Baselines (random search, annealing) plug in here for the
	// ablations.
	Optimizer opt.Optimizer
	// Seed derives every stochastic stream: optimizer proposals and the
	// per-iteration profiling seeds (so repeated evaluations of the same
	// point measure with noise, as on real hardware).
	Seed uint64
	// Telemetry, when non-nil, receives spans for every pipeline phase
	// (propose / generate / profile / observe, plus the optimizer's GP-fit
	// and acquisition timings) and one eval event per iteration, carrying
	// the per-metric EMD attribution. Telemetry is off by default; a nil
	// recorder costs one nil check per phase and never perturbs
	// determinism — enabling or disabling it cannot change proposals,
	// seeds, traces, or results.
	Telemetry *telemetry.Recorder
	// Parallel evaluates batches of this many candidates concurrently,
	// using constant-liar batch proposals when the optimizer supports them
	// (parallel Bayesian optimization — the future work the paper defers
	// in §IV). <= 1 runs the paper's serial loop. Results are identical in
	// structure either way: the trace holds one record per evaluation, and
	// the run is deterministic for a given (Seed, Parallel).
	Parallel int
	// ProfileWorkers bounds the intra-evaluation profiler parallelism: each
	// candidate's way-curve sweep runs its independent partition simulations
	// on up to this many workers (see profile.Profiler.Workers). 0 leaves
	// the Profiler's own setting; 1 forces serial sweeps. Profiles are
	// bit-identical at any worker count, so this knob — like Parallel — can
	// never change a search's results, only its wall-clock time. The two
	// levels compose under one shared budget of max(Parallel,
	// ProfileWorkers) concurrent simulations, so Parallel×ProfileWorkers
	// goroutines never oversubscribe the machine.
	ProfileWorkers int
	// OnEvalError selects the failure policy (default EvalFailFast).
	OnEvalError EvalErrorPolicy
	// Cache, when non-nil, is consulted before profiling each candidate
	// and filled with every fresh measurement (see EvalCache).
	Cache EvalCache
	// Evaluator, when non-nil, replaces the in-process generate+profile path
	// for fresh measurements: each cache-missing candidate is handed to it
	// (typically a dispatcher sharding evaluations across a worker fleet)
	// instead of Generator.Benchmark + Profiler.ProfileContext. The cache
	// lookup, EvalKey derivation, per-iteration seeds, objective scoring,
	// and optimizer feedback all stay in-process and unchanged, so a search
	// with a deterministic Evaluator (one returning exactly what the local
	// profiler would measure) is bit-for-bit identical to a local run.
	// Profiler is still required: it defines the measurement spec the
	// Evaluator must honor, and keys the cache.
	Evaluator Evaluator
	// Resume, when non-nil, warm-starts the search from a checkpoint:
	// recorded iterations are replayed through the optimizer (identical
	// proposals, Observe calls, and trace records) without re-profiling,
	// then the search continues live. A resumed search is bit-for-bit
	// identical to an uninterrupted one.
	Resume *Checkpoint
	// OnEval, when non-nil, is called after every iteration (including
	// replayed and skipped ones), in iteration order, from the search
	// goroutine.
	OnEval func(EvalEvent)
	// OnCheckpoint, when non-nil, receives a deep copy of the cumulative
	// checkpoint after every completed batch; persist it to make the
	// search resumable.
	OnCheckpoint func(Checkpoint)
}

// Validate reports configuration errors.
func (c *SearchConfig) Validate() error {
	if c.Generator.Space == nil || c.Generator.Benchmark == nil {
		return fmt.Errorf("core: search needs a generator with space and factory")
	}
	if c.Objective == nil {
		return fmt.Errorf("core: search needs an objective")
	}
	if c.Profiler == nil {
		return fmt.Errorf("core: search needs a profiler")
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("core: Iterations must be positive, got %d", c.Iterations)
	}
	if c.ProfileWorkers < 0 {
		return fmt.Errorf("core: ProfileWorkers must be >= 0, got %d", c.ProfileWorkers)
	}
	return nil
}

// IterationRecord is one step of the search trace.
type IterationRecord struct {
	Iteration int       `json:"iteration"`
	Params    []float64 `json:"params"`
	Error     float64   `json:"error"`
	// BestError is the minimum observed error up to and including this
	// iteration — the quantity Fig. 10 plots.
	BestError float64 `json:"best_error"`
	// Components is the per-metric error attribution (unweighted component
	// distances, keyed by Component name) when the objective implements
	// AttributedObjective; nil otherwise. It shows which metric drove the
	// error at this iteration.
	Components map[string]float64 `json:"emd_components,omitempty"`
	// Diagnostics is the GP search-health snapshot of the surrogate fit
	// that proposed this iteration (the first non-skipped iteration of each
	// batch carries its batch's snapshot; initial-design iterations carry
	// none). Derived read-only from factorizations the proposal already
	// materialized, so it is present and bit-identical whether or not
	// telemetry is enabled, and — like Components — it never enters
	// EvalKey or checkpoints.
	Diagnostics *opt.Diagnostics `json:"diagnostics,omitempty"`
}

// EvalEvent describes one finished iteration for live observers (the
// datamimed service uses it to grow job traces, metrics, and event
// streams).
type EvalEvent struct {
	// Record is the trace record; zero-valued except Iteration when
	// Skipped.
	Record IterationRecord
	// Skipped marks a failed evaluation excluded from the trace.
	Skipped bool
	// Err is the profiling error message for skipped iterations.
	Err string
	// Replayed marks an iteration reconstructed from a checkpoint.
	Replayed bool
	// CacheHit marks an evaluation served from the EvalCache.
	CacheHit bool
	// Retried marks an evaluation that succeeded on its perturbed-seed
	// retry.
	Retried bool
	// SimCycles estimates the simulated cycles this evaluation cost
	// (0 for cache hits and replays).
	SimCycles float64
	// PhaseNS maps evaluation phases ("generate", "profile") to their
	// wall-clock duration in nanoseconds. Populated only when
	// SearchConfig.Telemetry is enabled; nil otherwise (and for cache hits
	// and replays, which run neither phase).
	PhaseNS map[string]int64
}

// Result is the outcome of a search.
type Result struct {
	// BestParams is the lowest-error parameter vector, in parameter units.
	BestParams []float64
	// BestError is its objective value.
	BestError float64
	// BestProfile is the profile measured at the best parameters. It can
	// be nil if the best iteration was replayed from a checkpoint and its
	// profile could not be recovered from the cache or re-measured.
	BestProfile *profile.Profile
	// Trace is the per-iteration history (for convergence plots). Skipped
	// iterations leave gaps in the Iteration numbering.
	Trace []IterationRecord
	// Evaluations counts objective evaluations performed (replayed ones
	// included, skipped ones excluded).
	Evaluations int
	// Skipped counts iterations dropped under EvalRetrySkip.
	Skipped int
	// CacheHits counts evaluations served from the EvalCache.
	CacheHits int
	// SimulatedCycles estimates the total simulated cycles spent on fresh
	// profiling (cache hits and replays cost none).
	SimulatedCycles float64
	// Checkpoint is the final resumable state of the search.
	Checkpoint Checkpoint
}

// Search runs the optimization loop: propose parameters, generate the
// dataset, run and profile the benchmark, score it against the objective,
// and feed the error back to the optimizer (Fig. 5's loop).
func Search(cfg SearchConfig) (*Result, error) {
	return SearchContext(context.Background(), cfg)
}

// evalResult is the outcome of evaluating one candidate.
type evalResult struct {
	prof     *profile.Profile
	err      error
	e        float64
	x        []float64
	comps    map[string]float64
	cacheHit bool
	retried  bool
	replayed bool
	skipped  bool
	cycles   float64
	phases   map[string]int64
}

// evalTimings accumulates one evaluation's phase durations (including a
// retry's second attempt). It is allocated only when telemetry is enabled.
type evalTimings struct {
	generateNS int64
	profileNS  int64
}

// toMap renders the timings for EvalEvent.PhaseNS; nil-safe.
func (t *evalTimings) toMap() map[string]int64 {
	if t == nil {
		return nil
	}
	return map[string]int64{
		telemetry.PhaseGenerate: t.generateNS,
		telemetry.PhaseProfile:  t.profileNS,
	}
}

// SearchContext is Search with cancellation: the context is checked between
// batches, before each candidate evaluation, and between profiling phases,
// so a cancel or deadline stops the search within roughly one batch. On
// cancellation it returns the partial Result (including its checkpoint,
// from which the search can later resume) alongside ctx's error.
func SearchContext(ctx context.Context, cfg SearchConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	optimizer := cfg.Optimizer
	if optimizer == nil {
		optimizer = opt.NewBayesOpt(cfg.Generator.Space, opt.BayesOptConfig{Seed: cfg.Seed})
	}
	space := cfg.Generator.Space
	rec := cfg.Telemetry

	parallel := cfg.Parallel
	if parallel < 1 {
		parallel = 1
	}

	// Apply the profile-level parallelism knob on a copy, leaving the
	// caller's Profiler untouched, and cap the total number of concurrent
	// simulations across candidate batching × way-curve sweeps with one
	// shared budget. Neither Workers nor Budget enters EvalKey: they cannot
	// change measured profiles (see profile.Profiler.Workers).
	profiler := cfg.Profiler
	if cfg.ProfileWorkers > 0 || parallel > 1 {
		pc := *cfg.Profiler
		if cfg.ProfileWorkers > 0 {
			pc.Workers = cfg.ProfileWorkers
		}
		simCap := parallel
		if pc.Workers > simCap {
			simCap = pc.Workers
		}
		if simCap > 1 && pc.Budget == nil {
			pc.Budget = profile.NewBudget(simCap)
		}
		profiler = &pc
	}

	batchRNG := stats.NewRNG(stats.HashSeed(cfg.Seed, "batch-fallback"))

	var replay []CheckpointEntry
	if cfg.Resume != nil {
		replay = cfg.Resume.Entries
	}

	res := &Result{BestError: 0}
	best := -1
	bestRetried := false
	record := func(it int, x []float64, prof *profile.Profile, e float64, retried bool, comps map[string]float64) {
		res.Evaluations++
		if best < 0 || e < res.BestError {
			best = it
			bestRetried = retried
			res.BestError = e
			res.BestParams = x
			res.BestProfile = prof
		}
		res.Trace = append(res.Trace, IterationRecord{
			Iteration:  it,
			Params:     x,
			Error:      e,
			BestError:  res.BestError,
			Components: comps,
		})
	}

	// profileAt measures (or recalls) the candidate x under one seed,
	// timing the generate and profile phases into tm when telemetry is on.
	profileAt := func(it int, x []float64, seed uint64, tm *evalTimings) (prof *profile.Profile, hit bool, err error) {
		var key string
		if cfg.Cache != nil {
			key = EvalKey(cfg.Generator.Name, profiler, x, seed)
			if p, ok := cfg.Cache.Get(key); ok {
				return p, true, nil
			}
		}
		var p *profile.Profile
		if cfg.Evaluator != nil {
			// Dispatched evaluation: generation and profiling both happen
			// behind the Evaluator (possibly on another machine), so the
			// whole round-trip is accounted to the profile phase.
			profSpan := rec.StartSpan(telemetry.PhaseProfile, it)
			p, err = cfg.Evaluator.Evaluate(ctx, x, seed)
			profDur := profSpan.End(nil)
			if tm != nil {
				tm.profileNS += profDur.Nanoseconds()
			}
		} else {
			genSpan := rec.StartSpan(telemetry.PhaseGenerate, it)
			bench := cfg.Generator.Benchmark(x)
			genDur := genSpan.End(nil)
			profSpan := rec.StartSpan(telemetry.PhaseProfile, it)
			p, err = profiler.ProfileContext(ctx, bench, seed)
			profDur := profSpan.End(nil)
			if tm != nil {
				tm.generateNS += genDur.Nanoseconds()
				tm.profileNS += profDur.Nanoseconds()
			}
		}
		if err != nil {
			return nil, false, err
		}
		if cfg.Cache != nil {
			cfg.Cache.Put(key, p)
		}
		return p, false, nil
	}

	// evalOne runs the full evaluation of iteration it: cache lookup,
	// profiling, the retry-then-skip policy, and objective scoring with
	// per-component attribution when the objective supports it.
	evalOne := func(it int, u []float64) evalResult {
		if err := ctx.Err(); err != nil {
			return evalResult{err: err}
		}
		x := space.Denormalize(u)
		var tm *evalTimings
		if rec.Enabled() {
			tm = new(evalTimings)
		}
		prof, hit, err := profileAt(it, x, iterSeed(cfg.Seed, it, false), tm)
		retried := false
		if err != nil && cfg.OnEvalError == EvalRetrySkip && ctx.Err() == nil {
			retried = true
			prof, hit, err = profileAt(it, x, iterSeed(cfg.Seed, it, true), tm)
		}
		if err != nil {
			if cfg.OnEvalError == EvalRetrySkip && ctx.Err() == nil {
				return evalResult{skipped: true, err: err, x: x, retried: retried, phases: tm.toMap()}
			}
			return evalResult{err: err}
		}
		var e float64
		var comps map[string]float64
		if ao, ok := cfg.Objective.(AttributedObjective); ok {
			e, comps = ao.EvaluateAttributed(prof)
		} else {
			e = cfg.Objective.Evaluate(prof)
		}
		r := evalResult{prof: prof, e: e, x: x, comps: comps, cacheHit: hit, retried: retried, phases: tm.toMap()}
		if !hit {
			r.cycles = estimateCycles(profiler, prof)
		}
		return r
	}

	// emitEval publishes one finished iteration to the telemetry recorder
	// (eval events carry the EMD attribution and phase timings as attrs,
	// and are what the JSONL artifact replays from).
	emitEval := func(gi int, r evalResult, ev EvalEvent) {
		if !rec.Enabled() {
			return
		}
		attrs := make(map[string]float64, 4+len(r.comps)+len(r.phases))
		if !ev.Skipped {
			attrs[telemetry.AttrError] = ev.Record.Error
			attrs[telemetry.AttrBestError] = ev.Record.BestError
		}
		if ev.CacheHit {
			attrs[telemetry.AttrCacheHit] = 1
		}
		if ev.Retried {
			attrs[telemetry.AttrRetried] = 1
		}
		if ev.Replayed {
			attrs[telemetry.AttrReplayed] = 1
		}
		if ev.SimCycles > 0 {
			attrs[telemetry.AttrSimCycles] = ev.SimCycles
		}
		for k, v := range r.comps {
			attrs[telemetry.EMDPrefix+k] = v
		}
		for ph, ns := range r.phases {
			attrs[telemetry.PhaseNSPrefix+ph+"_ns"] = float64(ns)
		}
		rec.RecordEval(gi, ev.Skipped, ev.Record.Params, attrs)
	}

	for it := 0; it < cfg.Iterations; {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		k := parallel
		if rem := cfg.Iterations - it; k > rem {
			k = rem
		}
		proposeSpan := rec.StartSpan(telemetry.PhasePropose, it)
		batch := opt.FallbackBatch(optimizer, space, k, batchRNG)
		// Drain the search-health snapshot unconditionally: it is attached
		// to the trace whether or not telemetry is on (it is deterministic
		// and read-only, so both runs carry bit-equal values), and leaving
		// it undrained would smear one batch's snapshot into the next.
		var diag *opt.Diagnostics
		if dr, ok := optimizer.(opt.DiagnosticsReporter); ok {
			if d, ok := dr.TakeDiagnostics(); ok {
				diag = &d
			}
		}
		var proposeAttrs map[string]float64
		if rec.Enabled() {
			proposeAttrs = map[string]float64{"batch": float64(len(batch))}
			if tr, ok := optimizer.(opt.TimingReporter); ok {
				if t, ok := tr.TakeTimings(); ok {
					gpAttrs := map[string]float64{
						telemetry.AttrCholeskyAppends:  float64(t.CholeskyAppends),
						telemetry.AttrCholeskyRebuilds: float64(t.CholeskyRebuilds),
						telemetry.AttrJitterLevelMax:   float64(t.MaxJitterLevel),
					}
					if diag != nil {
						gpAttrs[telemetry.DiagLogMarginal] = diag.LogMarginal
						gpAttrs[telemetry.DiagJitterLevel] = float64(diag.JitterLevel)
						gpAttrs[telemetry.DiagCondition] = diag.Condition
					}
					rec.RecordSpan(telemetry.PhaseGPFit, it, t.GPFit, gpAttrs)
					rec.RecordSpan(telemetry.PhaseAcquisition, it, t.Acquisition,
						map[string]float64{"proposals": float64(t.Proposals)})
					proposeAttrs["gp_fit_ns"] = float64(t.GPFit.Nanoseconds())
					proposeAttrs["acquisition_ns"] = float64(t.Acquisition.Nanoseconds())
				}
			}
			if diag != nil {
				proposeAttrs[telemetry.DiagChosenEI] = diag.ChosenEI
				proposeAttrs[telemetry.DiagPoolMeanEI] = diag.PoolMeanEI
				rec.Emit(telemetry.Event{
					Type:  telemetry.TypeSearchDiagnostics,
					Iter:  it,
					Attrs: diagAttrs(*diag),
				})
			}
		}
		proposeSpan.End(proposeAttrs)
		results := make([]evalResult, len(batch))
		var wg sync.WaitGroup
		for i, u := range batch {
			gi := it + i
			if gi < len(replay) && sameUnitPoint(replay[gi].U, u) {
				ent := replay[gi]
				results[i] = evalResult{
					replayed: true,
					skipped:  ent.Skipped,
					retried:  ent.Retried,
					e:        ent.Y,
					x:        space.Denormalize(u),
					comps:    ent.Components,
					err:      replayErr(ent),
				}
				continue
			}
			if gi < len(replay) {
				// The checkpoint diverged from the live proposal stream
				// (e.g. a different binary wrote it). Stop replaying and
				// evaluate the rest live.
				replay = replay[:gi]
			}
			wg.Add(1)
			go func(i, gi int, u []float64) {
				defer wg.Done()
				results[i] = evalOne(gi, u)
			}(i, gi, u)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// Observe and record in batch order for determinism.
		observeSpan := rec.StartSpan(telemetry.PhaseObserve, it)
		for i, u := range batch {
			r := results[i]
			gi := it + i
			if r.err != nil && !r.skipped {
				return res, fmt.Errorf("core: profiling iteration %d: %w", gi, r.err)
			}
			ent := CheckpointEntry{
				Iteration:  gi,
				U:          append([]float64(nil), u...),
				Y:          r.e,
				Skipped:    r.skipped,
				Retried:    r.retried,
				Components: r.comps,
			}
			ev := EvalEvent{
				Skipped:   r.skipped,
				Replayed:  r.replayed,
				CacheHit:  r.cacheHit,
				Retried:   r.retried,
				SimCycles: r.cycles,
				PhaseNS:   r.phases,
			}
			if r.skipped {
				res.Skipped++
				ent.Err = r.err.Error()
				ev.Err = ent.Err
				ev.Record = IterationRecord{Iteration: gi}
			} else {
				optimizer.Observe(u, r.e)
				record(gi, r.x, r.prof, r.e, r.retried, r.comps)
				if diag != nil {
					// The batch's snapshot rides on its first recorded
					// iteration (the proposal the diagnosed fit chose).
					res.Trace[len(res.Trace)-1].Diagnostics = diag
					diag = nil
				}
				if r.cacheHit {
					res.CacheHits++
				}
				res.SimulatedCycles += r.cycles
				ev.Record = res.Trace[len(res.Trace)-1]
			}
			res.Checkpoint.Entries = append(res.Checkpoint.Entries, ent)
			emitEval(gi, r, ev)
			if cfg.OnEval != nil {
				cfg.OnEval(ev)
			}
		}
		observeSpan.End(nil)
		it += len(batch)
		if cfg.OnCheckpoint != nil {
			cfg.OnCheckpoint(res.Checkpoint.Clone())
		}
	}

	// A best iteration replayed from a checkpoint carries no profile;
	// recover it — free when the evaluation cache still holds it, one
	// extra profiling run otherwise.
	if res.BestProfile == nil && best >= 0 && ctx.Err() == nil {
		if prof, _, err := profileAt(best, res.BestParams, iterSeed(cfg.Seed, best, bestRetried), nil); err == nil {
			res.BestProfile = prof
		}
	}
	return res, nil
}

// BestComponents returns the per-metric error attribution of the best
// iteration (the trace record whose Error equals BestError, earliest
// first), or nil when the objective attributes nothing.
func (r Result) BestComponents() map[string]float64 {
	for _, rec := range r.Trace {
		if rec.Error == r.BestError {
			return rec.Components
		}
	}
	return nil
}

// IterationSeed returns the deterministic profiling seed of one iteration
// of a search configured with seed. It is the content-address ingredient a
// caller needs to look a past evaluation up in an EvalCache (together with
// EvalKey) without re-running the search — e.g. to recover the best
// candidate's profile from a checkpoint after a restart.
func IterationSeed(seed uint64, it int, retry bool) uint64 {
	return iterSeed(seed, it, retry)
}

// iterSeed derives the profiling seed for one iteration; the retry stream
// is disjoint so a flaky measurement is re-attempted under different noise.
func iterSeed(seed uint64, it int, retry bool) uint64 {
	if retry {
		return stats.HashSeed(seed, fmt.Sprintf("retry-%d", it))
	}
	return stats.HashSeed(seed, fmt.Sprintf("iter-%d", it))
}

// diagAttrs flattens one search-health snapshot into telemetry attributes
// for the TypeSearchDiagnostics artifact/SSE event. Only deterministic
// model-derived values enter the map — no clocks, no durations — so two
// identically-seeded runs emit byte-equal diagnostics.
func diagAttrs(d opt.Diagnostics) map[string]float64 {
	return map[string]float64{
		telemetry.DiagLengthScale:  d.LengthScale,
		telemetry.DiagNoiseFrac:    d.NoiseFrac,
		telemetry.DiagSignalVar:    d.SignalVar,
		telemetry.DiagLogMarginal:  d.LogMarginal,
		telemetry.DiagObservations: float64(d.Observations),
		telemetry.DiagJitterLevel:  float64(d.JitterLevel),
		telemetry.DiagCondition:    d.Condition,
		telemetry.DiagLOORMSE:      d.LOORMSE,
		telemetry.DiagLOOMaxZ:      d.LOOMaxZ,
		telemetry.DiagCoverage1:    d.Coverage1,
		telemetry.DiagCoverage2:    d.Coverage2,
		telemetry.DiagCandidates:   float64(d.Candidates),
		telemetry.DiagChosenEI:     d.ChosenEI,
		telemetry.DiagPoolMeanEI:   d.PoolMeanEI,
		telemetry.DiagExploitEI:    d.ExploitEI,
		telemetry.DiagExploreEI:    d.ExploreEI,
	}
}

// replayErr reconstructs the recorded error of a skipped checkpoint entry.
func replayErr(ent CheckpointEntry) error {
	if !ent.Skipped {
		return nil
	}
	return fmt.Errorf("%s", ent.Err)
}

// estimateCycles approximates the simulated cycles one fresh profiling run
// cost, from the windows it closed (warmup + main run + curve points).
func estimateCycles(pr *profile.Profiler, p *profile.Profile) float64 {
	windows := pr.WarmupWindows + pr.Windows + len(p.Curve)*pr.CurveWindows
	return pr.WindowCycles * float64(windows)
}

// MinEMDTrace extracts the Fig. 10 series from a result: the running
// minimum error per iteration.
func (r *Result) MinEMDTrace() []float64 {
	out := make([]float64, len(r.Trace))
	for i, rec := range r.Trace {
		out[i] = rec.BestError
	}
	return out
}
