package core

import (
	"fmt"
	"io"
	"sync"

	"datamime/internal/datagen"
	"datamime/internal/opt"
	"datamime/internal/profile"
	"datamime/internal/stats"
)

// SearchConfig drives one Datamime search: find the generator parameters
// whose benchmark minimizes the objective (Eq. 2).
type SearchConfig struct {
	// Generator is the dataset generator to search (space + factory).
	Generator datagen.Generator
	// Objective scores each candidate profile (ProfileObjective for the
	// paper's search, MetricObjective for range sweeps).
	Objective Objective
	// Profiler measures candidates. For MetricObjective sweeps without
	// curve components, set Profiler.SkipCurves to save time.
	Profiler *profile.Profiler
	// Iterations is the evaluation budget (the paper runs 200).
	Iterations int
	// Optimizer proposes parameters; nil selects the paper's Bayesian
	// optimizer. Baselines (random search, annealing) plug in here for the
	// ablations.
	Optimizer opt.Optimizer
	// Seed derives every stochastic stream: optimizer proposals and the
	// per-iteration profiling seeds (so repeated evaluations of the same
	// point measure with noise, as on real hardware).
	Seed uint64
	// Log, when non-nil, receives one line per iteration.
	Log io.Writer
	// Parallel evaluates batches of this many candidates concurrently,
	// using constant-liar batch proposals when the optimizer supports them
	// (parallel Bayesian optimization — the future work the paper defers
	// in §IV). <= 1 runs the paper's serial loop. Results are identical in
	// structure either way: the trace holds one record per evaluation, and
	// the run is deterministic for a given (Seed, Parallel).
	Parallel int
}

// Validate reports configuration errors.
func (c *SearchConfig) Validate() error {
	if c.Generator.Space == nil || c.Generator.Benchmark == nil {
		return fmt.Errorf("core: search needs a generator with space and factory")
	}
	if c.Objective == nil {
		return fmt.Errorf("core: search needs an objective")
	}
	if c.Profiler == nil {
		return fmt.Errorf("core: search needs a profiler")
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("core: Iterations must be positive, got %d", c.Iterations)
	}
	return nil
}

// IterationRecord is one step of the search trace.
type IterationRecord struct {
	Iteration int       `json:"iteration"`
	Params    []float64 `json:"params"`
	Error     float64   `json:"error"`
	// BestError is the minimum observed error up to and including this
	// iteration — the quantity Fig. 10 plots.
	BestError float64 `json:"best_error"`
}

// Result is the outcome of a search.
type Result struct {
	// BestParams is the lowest-error parameter vector, in parameter units.
	BestParams []float64
	// BestError is its objective value.
	BestError float64
	// BestProfile is the profile measured at the best parameters.
	BestProfile *profile.Profile
	// Trace is the per-iteration history (for convergence plots).
	Trace []IterationRecord
	// Evaluations counts objective evaluations performed.
	Evaluations int
}

// Search runs the optimization loop: propose parameters, generate the
// dataset, run and profile the benchmark, score it against the objective,
// and feed the error back to the optimizer (Fig. 5's loop).
func Search(cfg SearchConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	optimizer := cfg.Optimizer
	if optimizer == nil {
		optimizer = opt.NewBayesOpt(cfg.Generator.Space, opt.BayesOptConfig{Seed: cfg.Seed})
	}
	space := cfg.Generator.Space

	parallel := cfg.Parallel
	if parallel < 1 {
		parallel = 1
	}
	batchRNG := stats.NewRNG(stats.HashSeed(cfg.Seed, "batch-fallback"))

	res := &Result{BestError: 0}
	best := -1
	record := func(it int, x []float64, prof *profile.Profile, e float64) {
		res.Evaluations++
		if best < 0 || e < res.BestError {
			best = it
			res.BestError = e
			res.BestParams = x
			res.BestProfile = prof
		}
		res.Trace = append(res.Trace, IterationRecord{
			Iteration: it,
			Params:    x,
			Error:     e,
			BestError: res.BestError,
		})
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "iter %3d  err %.4f  best %.4f  %s\n",
				it, e, res.BestError, space.Values(x))
		}
	}

	type evalResult struct {
		prof *profile.Profile
		err  error
		e    float64
		x    []float64
	}
	for it := 0; it < cfg.Iterations; {
		k := parallel
		if rem := cfg.Iterations - it; k > rem {
			k = rem
		}
		batch := opt.FallbackBatch(optimizer, space, k, batchRNG)
		results := make([]evalResult, len(batch))
		var wg sync.WaitGroup
		for i, u := range batch {
			wg.Add(1)
			go func(i int, u []float64) {
				defer wg.Done()
				x := space.Denormalize(u)
				bench := cfg.Generator.Benchmark(x)
				prof, err := cfg.Profiler.Profile(bench, stats.HashSeed(cfg.Seed, fmt.Sprintf("iter-%d", it+i)))
				if err != nil {
					results[i] = evalResult{err: err}
					return
				}
				results[i] = evalResult{prof: prof, e: cfg.Objective.Evaluate(prof), x: x}
			}(i, u)
		}
		wg.Wait()
		// Observe and record in batch order for determinism.
		for i, u := range batch {
			r := results[i]
			if r.err != nil {
				return nil, fmt.Errorf("core: profiling iteration %d: %w", it+i, r.err)
			}
			optimizer.Observe(u, r.e)
			record(it+i, r.x, r.prof, r.e)
		}
		it += len(batch)
	}
	return res, nil
}

// MinEMDTrace extracts the Fig. 10 series from a result: the running
// minimum error per iteration.
func (r *Result) MinEMDTrace() []float64 {
	out := make([]float64, len(r.Trace))
	for i, rec := range r.Trace {
		out[i] = rec.BestError
	}
	return out
}
