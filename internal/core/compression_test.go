package core

import (
	"math"
	"testing"

	"datamime/internal/apps/kvstore"
	"datamime/internal/profile"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

func TestKVStoreCompressionRatio(t *testing.T) {
	mk := func(entropy float64) float64 {
		cfg := kvstore.Config{
			NumKeys:      500,
			KeySize:      stats.Constant{V: 24},
			ValueSize:    stats.Constant{V: 400},
			GetRatio:     0.9,
			ValueEntropy: entropy,
		}
		s := kvstore.New(cfg, trace.NewCodeLayout(), 1)
		return s.CompressionRatio()
	}
	random := mk(8)
	compressible := mk(2)
	if compressible <= random {
		t.Fatalf("low entropy did not raise compression ratio: %g vs %g", compressible, random)
	}
	if random < 1 || random > 1.5 {
		t.Fatalf("incompressible values should give ratio ~1: %g", random)
	}
	if compressible < 2 {
		t.Fatalf("2 bits/byte values should compress > 2x: %g", compressible)
	}
	// Entropy 0 means "unspecified" = incompressible.
	if d := mk(0); math.Abs(d-random) > 1e-9 {
		t.Fatalf("zero entropy should behave as 8: %g vs %g", d, random)
	}
}

func TestProfilerRecordsCompressionMetric(t *testing.T) {
	pr := fastProfiler()
	pr.SkipCurves = true
	gen := smallKVGenerator()
	b := gen.Benchmark([]float64{50_000, 0.9, 300})
	p, err := pr.Profile(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := p.Samples[profile.MetricCompress]
	if len(samples) == 0 {
		t.Fatal("compressible server produced no compression samples")
	}
	if m := stats.Mean(samples); m < 1 {
		t.Fatalf("compression ratio %g < 1", m)
	}
}

func TestCompressionComponentOptIn(t *testing.T) {
	mkProfile := func(ratio float64) *profile.Profile {
		p := fakeProfile(0)
		p.Samples[profile.MetricCompress] = []float64{ratio, ratio}
		return p
	}
	target := mkProfile(2.5)
	cand := mkProfile(1.0)

	// Default model: ratio mismatch must NOT affect the distance.
	def := NewErrorModel()
	dDef, perDef := def.Distance(target, cand)
	if _, ok := perDef[CompCompression]; ok {
		t.Fatal("default model computed the compression component")
	}
	if dDef != 0 {
		t.Fatalf("default distance %g, want 0 (profiles otherwise identical)", dDef)
	}

	// Weighted-in model: the mismatch must register.
	aware := def.WithWeight(CompCompression, 2)
	dAware, perAware := aware.Distance(target, cand)
	if perAware[CompCompression] <= 0 {
		t.Fatal("compression component not computed when weighted")
	}
	if dAware <= 0 {
		t.Fatal("weighted compression mismatch did not raise the distance")
	}
	// Matching ratios score zero.
	dMatch, _ := aware.Distance(target, mkProfile(2.5))
	if dMatch != 0 {
		t.Fatalf("matching ratios scored %g", dMatch)
	}
}

func TestCompressionSearchRecoversEntropy(t *testing.T) {
	// End-to-end §III-D extension: a hidden compressible target, searched
	// with the compression component enabled, should land near the
	// target's snapshot ratio.
	if testing.Short() {
		t.Skip("search-backed test")
	}
	hiddenCfg := kvstore.Config{
		NumKeys:      6_000,
		KeySize:      stats.Normal{Mu: 24, Sigma: 6, Min: 4},
		ValueSize:    stats.Normal{Mu: 700, Sigma: 90, Min: 1},
		GetRatio:     0.95,
		ValueEntropy: 2.8,
	}
	hidden := kvBenchmarkFromConfig("hidden-compressible", 120_000, hiddenCfg)

	pr := fastProfiler()
	target, err := pr.Profile(hidden, 77)
	if err != nil {
		t.Fatal(err)
	}
	tgtRatio := target.Mean(profile.MetricCompress)
	if tgtRatio < 1.5 {
		t.Fatalf("hidden target ratio %g too low to test matching", tgtRatio)
	}

	gen := smallCompressibleGenerator()
	res, err := Search(SearchConfig{
		Generator:  gen,
		Objective:  ProfileObjective{Target: target, Model: NewErrorModel().WithWeight(CompCompression, 3)},
		Profiler:   pr,
		Iterations: 22,
		Parallel:   4,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.BestProfile.Mean(profile.MetricCompress)
	if math.Abs(got-tgtRatio)/tgtRatio > 0.35 {
		t.Fatalf("compression-aware search ratio %g, target %g", got, tgtRatio)
	}
}
