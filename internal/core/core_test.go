package core

import (
	"fmt"
	"log/slog"
	"math"
	"strings"
	"testing"

	"datamime/internal/apps/kvstore"
	"datamime/internal/datagen"
	"datamime/internal/opt"
	"datamime/internal/profile"
	"datamime/internal/sim"
	"datamime/internal/stats"
	"datamime/internal/telemetry"
	"datamime/internal/trace"
	"datamime/internal/workload"
)

// fakeProfile builds a profile with fixed samples and curves.
func fakeProfile(shift float64) *profile.Profile {
	p := &profile.Profile{
		Benchmark: "fake",
		Machine:   "broadwell",
		Samples:   make(map[profile.MetricID][]float64),
	}
	for _, id := range profile.ScalarMetrics {
		p.Samples[id] = []float64{1 + shift, 2 + shift, 3 + shift}
	}
	for w := 1; w <= 4; w++ {
		p.Curve = append(p.Curve, profile.CurvePoint{
			Ways: w, SizeBytes: w << 20, IPC: 1 + shift, LLCMPKI: 5 - shift,
		})
	}
	return p
}

func TestErrorModelZeroForIdentical(t *testing.T) {
	em := NewErrorModel()
	p := fakeProfile(0)
	total, per := em.Distance(p, p)
	if total != 0 {
		t.Fatalf("self-distance = %g", total)
	}
	if len(per) != 10 {
		t.Fatalf("%d components, want 10 (Table I)", len(per))
	}
	for c, d := range per {
		if d != 0 {
			t.Fatalf("component %s self-distance = %g", c, d)
		}
	}
}

func TestErrorModelGrowsWithShift(t *testing.T) {
	em := NewErrorModel()
	base := fakeProfile(0)
	d1, _ := em.Distance(base, fakeProfile(0.5))
	d2, _ := em.Distance(base, fakeProfile(2))
	if !(d2 > d1 && d1 > 0) {
		t.Fatalf("distances not monotone: %g, %g", d1, d2)
	}
}

func TestErrorModelWeights(t *testing.T) {
	em := NewErrorModel()
	base := fakeProfile(0)
	cand := fakeProfile(1)
	before, per := em.Distance(base, cand)
	em2 := em.WithWeight(CompCPUUtil, 5)
	after, _ := em2.Distance(base, cand)
	want := before + 4*per[CompCPUUtil]
	if math.Abs(after-want) > 1e-12 {
		t.Fatalf("reweighted distance %g, want %g", after, want)
	}
	// The original model is unchanged.
	if em.Weights[CompCPUUtil] != 1 {
		t.Fatal("WithWeight mutated the receiver")
	}
}

func TestCurveDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d := CurveDistance(a, a); d != 0 {
		t.Fatalf("self curve distance %g", d)
	}
	b := []float64{2, 3, 4, 5}
	// mean |diff| = 1, max = 5 -> 0.2
	if d := CurveDistance(a, b); math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("curve distance = %g, want 0.2", d)
	}
	// Different lengths compare over the shared prefix.
	if d := CurveDistance(a, []float64{1, 2}); d != 0 {
		t.Fatalf("prefix distance = %g", d)
	}
	if d := CurveDistance(nil, nil); d != 0 {
		t.Fatalf("empty distance = %g", d)
	}
	if d := CurveDistance(nil, a); d != 1 {
		t.Fatalf("one-empty distance = %g", d)
	}
	if d := CurveDistance([]float64{0, 0}, []float64{0, 0}); d != 0 {
		t.Fatalf("all-zero distance = %g", d)
	}
}

func TestObjectives(t *testing.T) {
	target := fakeProfile(0)
	po := ProfileObjective{Target: target, Model: NewErrorModel()}
	if po.Evaluate(target) != 0 {
		t.Fatal("profile objective nonzero on target")
	}
	if po.Evaluate(fakeProfile(1)) <= 0 {
		t.Fatal("profile objective zero on mismatch")
	}
	if po.Describe() == "" {
		t.Fatal("empty describe")
	}
	mo := MetricObjective{Metric: profile.MetricIPC, Value: 2}
	if mo.Evaluate(target) != 0 { // mean of {1,2,3} = 2
		t.Fatalf("metric objective = %g", mo.Evaluate(target))
	}
	if mo.Evaluate(fakeProfile(2)) <= 0 {
		t.Fatal("metric objective zero on mismatch")
	}
	zero := MetricObjective{Metric: profile.MetricIPC, Value: 0}
	if got := zero.Evaluate(target); got != 2 {
		t.Fatalf("zero-target scale guard broken: %g", got)
	}
	if mo.Describe() == "" {
		t.Fatal("empty describe")
	}
}

// kvBenchmarkFromConfig wraps a kvstore config as a benchmark.
func kvBenchmarkFromConfig(name string, qps float64, cfg kvstore.Config) workload.Benchmark {
	return workload.Benchmark{
		Name: name,
		QPS:  qps,
		NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
			return kvstore.New(cfg, layout, seed)
		},
	}
}

// smallCompressibleGenerator extends smallKVGenerator with the §III-D
// value-entropy parameter.
func smallCompressibleGenerator() datagen.Generator {
	space := opt.MustSpace(
		opt.Param{Name: "qps", Lo: 10_000, Hi: 200_000, Log: true},
		opt.Param{Name: "get_ratio", Lo: 0, Hi: 1},
		opt.Param{Name: "val_mu", Lo: 16, Hi: 3_000, Log: true, Integer: true},
		opt.Param{Name: "val_entropy", Lo: 0.5, Hi: 8},
	)
	return datagen.Generator{
		Name:  "kv-small-compressible",
		Space: space,
		Benchmark: func(x []float64) workload.Benchmark {
			return kvBenchmarkFromConfig("kv-small-compressible", x[0], kvstore.Config{
				NumKeys:      6_000,
				KeySize:      stats.Normal{Mu: 24, Sigma: 6, Min: 4},
				ValueSize:    stats.Normal{Mu: x[2], Sigma: x[2] / 8, Min: 1},
				GetRatio:     x[1],
				ValueEntropy: x[3],
			})
		},
	}
}

// smallKVGenerator is a fast memcached-style generator for search tests.
func smallKVGenerator() datagen.Generator {
	space := opt.MustSpace(
		opt.Param{Name: "qps", Lo: 10_000, Hi: 200_000, Log: true},
		opt.Param{Name: "get_ratio", Lo: 0, Hi: 1},
		opt.Param{Name: "val_mu", Lo: 16, Hi: 3_000, Log: true, Integer: true},
	)
	return datagen.Generator{
		Name:  "kv-small",
		Space: space,
		Benchmark: func(x []float64) workload.Benchmark {
			cfg := kvstore.Config{
				NumKeys:   6_000,
				KeySize:   stats.Normal{Mu: 24, Sigma: 6, Min: 4},
				ValueSize: stats.Normal{Mu: x[2], Sigma: x[2] / 8, Min: 1},
				GetRatio:  x[1],
			}
			return workload.Benchmark{
				Name: "kv-small",
				QPS:  x[0],
				NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
					return kvstore.New(cfg, layout, seed)
				},
			}
		},
	}
}

func fastProfiler() *profile.Profiler {
	p := profile.New(sim.Broadwell())
	p.WindowCycles = 120_000
	p.Windows = 10
	p.WarmupWindows = 2
	p.CurveWindows = 2
	p.CurvePoints = 3
	return p
}

func TestSearchEndToEnd(t *testing.T) {
	gen := smallKVGenerator()
	pr := fastProfiler()

	// Hidden target: a specific dataset configuration the search only sees
	// through its profile.
	hidden := gen.Benchmark([]float64{120_000, 0.95, 900})
	target, err := pr.Profile(hidden, 999)
	if err != nil {
		t.Fatal(err)
	}

	// Progress logging is the caller's job now (SearchConfig.Log is gone):
	// mirror cmd/datamime's OnEval line logger and assert it sees every
	// iteration.
	var log strings.Builder
	logger := telemetry.NewLineLogger(&log)
	res, err := Search(SearchConfig{
		Generator:  gen,
		Objective:  ProfileObjective{Target: target, Model: NewErrorModel()},
		Profiler:   pr,
		Iterations: 16,
		Seed:       7,
		OnEval: func(ev EvalEvent) {
			logger.Info("iter", slog.Int("n", ev.Record.Iteration),
				slog.String("err", fmt.Sprintf("%.4f", ev.Record.Error)))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 16 || len(res.Trace) != 16 {
		t.Fatalf("evaluations = %d, trace = %d", res.Evaluations, len(res.Trace))
	}
	if res.BestProfile == nil || len(res.BestParams) != 3 {
		t.Fatal("missing best profile/params")
	}
	// The running minimum must be non-increasing and must improve over the
	// first evaluation.
	trace := res.MinEMDTrace()
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[i-1] {
			t.Fatalf("best-so-far increased at %d: %v", i, trace)
		}
	}
	if trace[len(trace)-1] >= res.Trace[0].Error && res.Trace[0].Error > 0.01 {
		t.Fatalf("search never improved: first %g, final %g", res.Trace[0].Error, trace[len(trace)-1])
	}
	if !strings.Contains(log.String(), "iter") {
		t.Fatal("no log output")
	}
}

func TestSearchWithMetricObjective(t *testing.T) {
	gen := smallKVGenerator()
	pr := fastProfiler()
	pr.SkipCurves = true
	res, err := Search(SearchConfig{
		Generator:  gen,
		Objective:  MetricObjective{Metric: profile.MetricCPUUtil, Value: 0.2},
		Profiler:   pr,
		Iterations: 14,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.BestProfile.Mean(profile.MetricCPUUtil)
	if math.Abs(got-0.2) > 0.1 {
		t.Fatalf("metric-targeted search reached util %g, want ~0.2", got)
	}
}

func TestSearchWithBaselineOptimizer(t *testing.T) {
	gen := smallKVGenerator()
	pr := fastProfiler()
	pr.SkipCurves = true
	res, err := Search(SearchConfig{
		Generator:  gen,
		Objective:  MetricObjective{Metric: profile.MetricCPUUtil, Value: 0.4},
		Profiler:   pr,
		Iterations: 6,
		Optimizer:  opt.NewRandomSearch(gen.Space, 3),
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 6 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
}

func TestSearchValidation(t *testing.T) {
	gen := smallKVGenerator()
	pr := fastProfiler()
	obj := MetricObjective{Metric: profile.MetricIPC, Value: 1}
	bad := []SearchConfig{
		{Objective: obj, Profiler: pr, Iterations: 1},
		{Generator: gen, Profiler: pr, Iterations: 1},
		{Generator: gen, Objective: obj, Iterations: 1},
		{Generator: gen, Objective: obj, Profiler: pr, Iterations: 0},
	}
	for i, cfg := range bad {
		if _, err := Search(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	run := func() float64 {
		gen := smallKVGenerator()
		pr := fastProfiler()
		pr.SkipCurves = true
		res, err := Search(SearchConfig{
			Generator:  gen,
			Objective:  MetricObjective{Metric: profile.MetricCPUUtil, Value: 0.6},
			Profiler:   pr,
			Iterations: 8,
			Seed:       42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.BestError
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed searches diverged: %g vs %g", a, b)
	}
}

func TestComponentsMatchTableI(t *testing.T) {
	if len(Components) != 10 {
		t.Fatalf("%d components, want 10", len(Components))
	}
	seen := map[Component]bool{}
	for _, c := range Components {
		if seen[c] {
			t.Fatalf("duplicate component %s", c)
		}
		seen[c] = true
	}
	if !seen[CompIPCCurve] || !seen[CompLLCCurve] {
		t.Fatal("cache-sensitivity curves missing from the error model")
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits
