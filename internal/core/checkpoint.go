package core

// Checkpointing lets a long search survive its process. The optimizer and
// the profiling seeds are deterministic functions of (SearchConfig.Seed,
// Parallel), so the complete search state is captured by the sequence of
// (proposed point, observed error) pairs. Replaying that sequence through a
// fresh optimizer — calling the same batch proposals and Observe calls in
// the same order, but skipping the expensive profiling — reconstructs the
// exact optimizer, RNG, and trace state, bit for bit.

// CheckpointEntry records one search iteration: the normalized proposal and
// what happened when it was evaluated.
type CheckpointEntry struct {
	// Iteration is the global iteration index (0-based, dense: skipped
	// iterations appear too).
	Iteration int `json:"iteration"`
	// U is the proposed point in the normalized unit cube.
	U []float64 `json:"u"`
	// Y is the observed objective value; meaningless when Skipped.
	Y float64 `json:"y"`
	// Skipped marks an evaluation that failed (after the retry allowed by
	// EvalRetrySkip) and was excluded from the optimizer's history.
	Skipped bool `json:"skipped,omitempty"`
	// Retried marks an evaluation whose first profiling attempt failed and
	// whose value came from the perturbed-seed retry.
	Retried bool `json:"retried,omitempty"`
	// Err is the profiling error message for skipped iterations.
	Err string `json:"err,omitempty"`
	// Components is the per-metric error attribution recorded when the
	// objective supports it (see AttributedObjective). Persisting it keeps
	// replayed traces bit-for-bit identical to live ones without
	// re-profiling.
	Components map[string]float64 `json:"components,omitempty"`
}

// Checkpoint is the resumable state of a search: one entry per completed
// iteration, in iteration order.
type Checkpoint struct {
	Entries []CheckpointEntry `json:"entries"`
}

// Best returns the checkpoint's best evaluation: the earliest non-skipped
// entry with the minimum observed error. ok is false when every entry was
// skipped (or there are none). Introspection tools use this to locate the
// best point — and its per-metric Components attribution — without
// replaying the search.
func (c Checkpoint) Best() (best CheckpointEntry, ok bool) {
	for _, e := range c.Entries {
		if e.Skipped {
			continue
		}
		if !ok || e.Y < best.Y {
			best, ok = e, true
		}
	}
	return best, ok
}

// Clone deep-copies the checkpoint so callers can retain it across batches.
func (c Checkpoint) Clone() Checkpoint {
	out := Checkpoint{Entries: make([]CheckpointEntry, len(c.Entries))}
	for i, e := range c.Entries {
		cp := e
		cp.U = append([]float64(nil), e.U...)
		if e.Components != nil {
			cp.Components = make(map[string]float64, len(e.Components))
			for k, v := range e.Components {
				cp.Components[k] = v
			}
		}
		out.Entries[i] = cp
	}
	return out
}

// sameUnitPoint reports whether a replayed proposal matches the live one.
// Proposals are deterministic, so these should be identical up to JSON
// round-tripping (which Go's encoding preserves exactly); the tolerance
// guards against drift from a changed binary, in which case replay stops
// and the search re-evaluates live.
func sameUnitPoint(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d > 1e-12 || d < -1e-12 {
			return false
		}
	}
	return true
}
