package core

import (
	"math"
	"strings"
	"testing"

	"datamime/internal/datagen"
	"datamime/internal/opt"
	"datamime/internal/profile"
	"datamime/internal/workload"
)

// TestSearchPropagatesProfilingErrors: a generator that emits an invalid
// benchmark must fail the search with a useful error, not panic or hang.
func TestSearchPropagatesProfilingErrors(t *testing.T) {
	gen := datagen.Generator{
		Name:  "broken",
		Space: opt.MustSpace(opt.Param{Name: "x", Lo: 0, Hi: 1}),
		Benchmark: func([]float64) workload.Benchmark {
			return workload.Benchmark{Name: "broken"} // no QPS, no factory
		},
	}
	_, err := Search(SearchConfig{
		Generator:  gen,
		Objective:  MetricObjective{Metric: profile.MetricIPC, Value: 1},
		Profiler:   fastProfiler(),
		Iterations: 3,
		Seed:       1,
	})
	if err == nil {
		t.Fatal("broken generator did not fail the search")
	}
	if !strings.Contains(err.Error(), "iteration") {
		t.Fatalf("error lacks iteration context: %v", err)
	}
}

// TestParallelSearchPropagatesErrors: the same under batch evaluation.
func TestParallelSearchPropagatesErrors(t *testing.T) {
	calls := 0
	good := smallKVGenerator()
	gen := datagen.Generator{
		Name:  "flaky",
		Space: good.Space,
		Benchmark: func(x []float64) workload.Benchmark {
			calls++
			if calls == 3 {
				return workload.Benchmark{Name: "flaky"} // third candidate breaks
			}
			return good.Benchmark(x)
		},
	}
	pr := fastProfiler()
	pr.SkipCurves = true
	_, err := Search(SearchConfig{
		Generator:  gen,
		Objective:  MetricObjective{Metric: profile.MetricIPC, Value: 1},
		Profiler:   pr,
		Iterations: 8,
		Parallel:   4,
		Seed:       2,
	})
	if err == nil {
		t.Fatal("flaky generator did not fail the parallel search")
	}
}

// TestBayesOptSurvivesDegenerateObservations: constant and non-finite
// objective values must not wedge the optimizer — it falls back to random
// proposals when the surrogate cannot fit.
func TestBayesOptSurvivesDegenerateObservations(t *testing.T) {
	space := opt.MustSpace(opt.Param{Name: "a", Lo: 0, Hi: 1})
	bo := opt.NewBayesOpt(space, opt.BayesOptConfig{Seed: 3, InitPoints: 3})
	// All-identical observations: zero variance.
	for i := 0; i < 6; i++ {
		x := bo.Next()
		bo.Observe(x, 1.0)
	}
	x := bo.Next()
	if len(x) != 1 || x[0] < 0 || x[0] > 1 {
		t.Fatalf("proposal after constant observations: %v", x)
	}
	// A NaN observation must not poison future proposals.
	bo.Observe(x, math.NaN())
	y := bo.Next()
	if len(y) != 1 || math.IsNaN(y[0]) || y[0] < 0 || y[0] > 1 {
		t.Fatalf("proposal after NaN observation: %v", y)
	}
}

// TestProfilerBoundsRunawayServers: a server so slow that windows barely
// close must still return within the request bound.
func TestProfilerBoundsRunawayServers(t *testing.T) {
	gen := smallKVGenerator()
	b := gen.Benchmark([]float64{15_000, 0.9, 100}) // light load
	pr := fastProfiler()
	pr.SkipCurves = true
	pr.WindowCycles = 1e10 // absurd window: would take forever to close
	pr.MaxRequestsPerRun = 2_000
	p, err := pr.Profile(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	// No windows close, so distributions are empty — degenerate but sane.
	if len(p.Samples[profile.MetricICache]) != 0 {
		t.Fatal("expected no closed windows")
	}
	// The error model tolerates empty candidate distributions.
	target, err := fastProfiler().Profile(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewErrorModel().Distance(target, p)
	if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
		t.Fatalf("distance against empty profile: %g", d)
	}
}
