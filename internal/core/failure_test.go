package core

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"datamime/internal/datagen"
	"datamime/internal/opt"
	"datamime/internal/profile"
	"datamime/internal/workload"
)

// TestSearchPropagatesProfilingErrors: a generator that emits an invalid
// benchmark must fail the search with a useful error, not panic or hang.
func TestSearchPropagatesProfilingErrors(t *testing.T) {
	gen := datagen.Generator{
		Name:  "broken",
		Space: opt.MustSpace(opt.Param{Name: "x", Lo: 0, Hi: 1}),
		Benchmark: func([]float64) workload.Benchmark {
			return workload.Benchmark{Name: "broken"} // no QPS, no factory
		},
	}
	_, err := Search(SearchConfig{
		Generator:  gen,
		Objective:  MetricObjective{Metric: profile.MetricIPC, Value: 1},
		Profiler:   fastProfiler(),
		Iterations: 3,
		Seed:       1,
	})
	if err == nil {
		t.Fatal("broken generator did not fail the search")
	}
	if !strings.Contains(err.Error(), "iteration") {
		t.Fatalf("error lacks iteration context: %v", err)
	}
}

// TestParallelSearchPropagatesErrors: the same under batch evaluation.
func TestParallelSearchPropagatesErrors(t *testing.T) {
	var calls atomic.Int32
	good := smallKVGenerator()
	gen := datagen.Generator{
		Name:  "flaky",
		Space: good.Space,
		Benchmark: func(x []float64) workload.Benchmark {
			if calls.Add(1) == 3 {
				return workload.Benchmark{Name: "flaky"} // third candidate breaks
			}
			return good.Benchmark(x)
		},
	}
	pr := fastProfiler()
	pr.SkipCurves = true
	_, err := Search(SearchConfig{
		Generator:  gen,
		Objective:  MetricObjective{Metric: profile.MetricIPC, Value: 1},
		Profiler:   pr,
		Iterations: 8,
		Parallel:   4,
		Seed:       2,
	})
	if err == nil {
		t.Fatal("flaky generator did not fail the parallel search")
	}
}

// flakyGenerator wraps smallKVGenerator with a factory that emits a broken
// benchmark on the given factory-call numbers (1-based).
func flakyGenerator(breakOn ...int32) datagen.Generator {
	var calls atomic.Int32
	good := smallKVGenerator()
	return datagen.Generator{
		Name:  "flaky",
		Space: good.Space,
		Benchmark: func(x []float64) workload.Benchmark {
			n := calls.Add(1)
			for _, b := range breakOn {
				if n == b {
					return workload.Benchmark{Name: "flaky"} // no QPS, no factory
				}
			}
			return good.Benchmark(x)
		},
	}
}

// TestRetrySkipRecoversOnRetry: under EvalRetrySkip, a transient failure is
// retried with a perturbed seed; when the retry succeeds, the search loses
// nothing and the checkpoint records the retry.
func TestRetrySkipRecoversOnRetry(t *testing.T) {
	pr := fastProfiler()
	pr.SkipCurves = true
	res, err := Search(SearchConfig{
		Generator:   flakyGenerator(3), // iteration 2's first attempt breaks; its retry (call 4) works
		Objective:   MetricObjective{Metric: profile.MetricIPC, Value: 1},
		Profiler:    pr,
		Iterations:  8,
		Seed:        2,
		OnEvalError: EvalRetrySkip,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 8 || res.Skipped != 0 || len(res.Trace) != 8 {
		t.Fatalf("evals %d, skipped %d, trace %d; want 8, 0, 8",
			res.Evaluations, res.Skipped, len(res.Trace))
	}
	if !res.Checkpoint.Entries[2].Retried {
		t.Fatal("checkpoint did not record the retry")
	}
}

// TestRetrySkipRecordsPersistentFailure: when the retry fails too, the
// iteration is skipped and recorded, and the search degrades gracefully
// instead of aborting.
func TestRetrySkipRecordsPersistentFailure(t *testing.T) {
	pr := fastProfiler()
	pr.SkipCurves = true
	res, err := Search(SearchConfig{
		Generator:   flakyGenerator(3, 4), // iteration 2 breaks on both attempts
		Objective:   MetricObjective{Metric: profile.MetricIPC, Value: 1},
		Profiler:    pr,
		Iterations:  8,
		Seed:        2,
		OnEvalError: EvalRetrySkip,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 7 || res.Skipped != 1 || len(res.Trace) != 7 {
		t.Fatalf("evals %d, skipped %d, trace %d; want 7, 1, 7",
			res.Evaluations, res.Skipped, len(res.Trace))
	}
	ent := res.Checkpoint.Entries[2]
	if !ent.Skipped || !ent.Retried || ent.Err == "" {
		t.Fatalf("skip not recorded in checkpoint: %+v", ent)
	}
	// The trace skips iteration 2 but keeps global numbering.
	if res.Trace[2].Iteration != 3 {
		t.Fatalf("trace[2].Iteration = %d, want 3", res.Trace[2].Iteration)
	}
	if res.BestProfile == nil {
		t.Fatal("search with a skip lost its best profile")
	}
}

// TestRetrySkipAllFailures: even a generator that never works finishes the
// budget with everything skipped rather than erroring out.
func TestRetrySkipAllFailures(t *testing.T) {
	gen := datagen.Generator{
		Name:  "broken",
		Space: opt.MustSpace(opt.Param{Name: "x", Lo: 0, Hi: 1}),
		Benchmark: func([]float64) workload.Benchmark {
			return workload.Benchmark{Name: "broken"}
		},
	}
	res, err := Search(SearchConfig{
		Generator:   gen,
		Objective:   MetricObjective{Metric: profile.MetricIPC, Value: 1},
		Profiler:    fastProfiler(),
		Iterations:  5,
		Parallel:    2,
		Seed:        4,
		OnEvalError: EvalRetrySkip,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 0 || res.Skipped != 5 || res.BestParams != nil {
		t.Fatalf("evals %d, skipped %d, best %v; want all skipped",
			res.Evaluations, res.Skipped, res.BestParams)
	}
}

// TestBayesOptSurvivesDegenerateObservations: constant and non-finite
// objective values must not wedge the optimizer — it falls back to random
// proposals when the surrogate cannot fit.
func TestBayesOptSurvivesDegenerateObservations(t *testing.T) {
	space := opt.MustSpace(opt.Param{Name: "a", Lo: 0, Hi: 1})
	bo := opt.NewBayesOpt(space, opt.BayesOptConfig{Seed: 3, InitPoints: 3})
	// All-identical observations: zero variance.
	for i := 0; i < 6; i++ {
		x := bo.Next()
		bo.Observe(x, 1.0)
	}
	x := bo.Next()
	if len(x) != 1 || x[0] < 0 || x[0] > 1 {
		t.Fatalf("proposal after constant observations: %v", x)
	}
	// A NaN observation must not poison future proposals.
	bo.Observe(x, math.NaN())
	y := bo.Next()
	if len(y) != 1 || math.IsNaN(y[0]) || y[0] < 0 || y[0] > 1 {
		t.Fatalf("proposal after NaN observation: %v", y)
	}
}

// TestProfilerBoundsRunawayServers: a server so slow that windows barely
// close must still return within the request bound.
func TestProfilerBoundsRunawayServers(t *testing.T) {
	gen := smallKVGenerator()
	b := gen.Benchmark([]float64{15_000, 0.9, 100}) // light load
	pr := fastProfiler()
	pr.SkipCurves = true
	pr.WindowCycles = 1e10 // absurd window: would take forever to close
	pr.MaxRequestsPerRun = 2_000
	p, err := pr.Profile(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	// No windows close, so distributions are empty — degenerate but sane.
	if len(p.Samples[profile.MetricICache]) != 0 {
		t.Fatal("expected no closed windows")
	}
	// The error model tolerates empty candidate distributions.
	target, err := fastProfiler().Profile(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewErrorModel().Distance(target, p)
	if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
		t.Fatalf("distance against empty profile: %g", d)
	}
}
