package corpus

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testRecord(id, scenario string, best float64) Record {
	return Record{
		ID:         id,
		Scenario:   scenario,
		Target:     "cpu_util=0.15",
		Generator:  "memcached",
		Seed:       1,
		BestError:  best,
		BestIter:   3,
		Iterations: 8,
		Evals:      8,
		FinishedAt: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC),
	}
}

func TestCorpusAddAndReload(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	artifact := []byte(`{"type":"log","msg":"hello"}` + "\n")
	rec, err := c.Add(testRecord("job-1", "scen-a", 0.25), artifact)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ArtifactSHA == "" {
		t.Fatal("Add did not content-address the artifact")
	}
	got, err := c.Artifact(rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(artifact) {
		t.Fatalf("artifact round trip: got %q want %q", got, artifact)
	}
	// Same artifact bytes dedupe to the same content address.
	rec2, err := c.Add(testRecord("job-2", "scen-a", 0.25), artifact)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.ArtifactSHA != rec.ArtifactSHA {
		t.Fatalf("identical artifacts got different addresses: %s vs %s", rec2.ArtifactSHA, rec.ArtifactSHA)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: both records survive, in order.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	recs := c2.Records()
	if len(recs) != 2 || recs[0].ID != "job-1" || recs[1].ID != "job-2" {
		t.Fatalf("reloaded records = %+v", recs)
	}
	if c2.Malformed() != 0 || c2.Compacted() {
		t.Fatalf("clean index reported malformed=%d compacted=%v", c2.Malformed(), c2.Compacted())
	}
}

func TestCorpusToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Add(testRecord(fmt.Sprintf("job-%d", i), "scen-a", 0.2), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	// Simulate a crash mid-append: chop the last line in half.
	idx := filepath.Join(dir, "index.jsonl")
	b, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(idx, b[:len(b)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 2 {
		t.Fatalf("got %d records after truncated tail, want 2", c2.Len())
	}
	if c2.Malformed() != 1 {
		t.Fatalf("malformed = %d, want 1", c2.Malformed())
	}
	if !c2.Compacted() {
		t.Fatal("dirty index was not compacted on open")
	}
	// The compacted file must parse cleanly line by line.
	b, err = os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("compacted index has unparseable line %q: %v", line, err)
		}
	}
	// Appends after compaction still work and survive another reopen.
	if _, err := c2.Add(testRecord("job-3", "scen-a", 0.19), nil); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	c3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if c3.Len() != 3 || c3.Malformed() != 0 {
		t.Fatalf("after repair+append: len=%d malformed=%d", c3.Len(), c3.Malformed())
	}
}

func TestCorpusConcurrentAdds(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			artifact := []byte(fmt.Sprintf(`{"type":"log","msg":"run %d"}`+"\n", i))
			if _, err := c.Add(testRecord(fmt.Sprintf("job-%02d", i), "scen-a", 0.2), artifact); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != n {
		t.Fatalf("len = %d, want %d", c.Len(), n)
	}
	c.Close()

	// Every line must be whole: reopen and require zero malformed.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != n || c2.Malformed() != 0 {
		t.Fatalf("after concurrent adds: len=%d malformed=%d, want %d/0", c2.Len(), c2.Malformed(), n)
	}
	for i := 0; i < n; i++ {
		rec, ok := c2.Find(fmt.Sprintf("job-%02d", i))
		if !ok {
			t.Fatalf("job-%02d missing after reopen", i)
		}
		if rec.ArtifactSHA == "" {
			t.Fatalf("job-%02d lost its artifact address", i)
		}
		if _, err := c2.Artifact(rec); err != nil {
			t.Fatalf("job-%02d artifact unreadable: %v", i, err)
		}
	}
}

func TestCorpusCompactDedupes(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(testRecord("job-1", "scen-a", 0.3), nil); err != nil {
		t.Fatal(err)
	}
	upd := testRecord("job-1", "scen-a", 0.21)
	if _, err := c.Add(upd, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(testRecord("job-2", "scen-a", 0.5), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("after compact: %d records, want 2", len(recs))
	}
	if recs[0].ID != "job-1" || recs[0].BestError != 0.21 {
		t.Fatalf("compact kept %+v, want latest job-1", recs[0])
	}
	// Appends still work after Compact reopened the handle.
	if _, err := c.Add(testRecord("job-3", "scen-b", 0.1), nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 3 || c2.Malformed() != 0 {
		t.Fatalf("after compact+append reopen: len=%d malformed=%d", c2.Len(), c2.Malformed())
	}
}

func TestCorpusSelectAndBaseline(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		rec := testRecord(fmt.Sprintf("job-%d", i), "scen-a", 0.2)
		if i >= 2 {
			rec.Scenario = "scen-b"
			rec.Target = "ipc=1.2"
		}
		rec.FinishedAt = base.Add(time.Duration(i) * time.Hour)
		if _, err := c.Add(rec, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Select(Filter{Scenario: "scen-a"}); len(got) != 2 {
		t.Fatalf("scenario filter: %d, want 2", len(got))
	}
	if got := c.Select(Filter{Target: "ipc=1.2"}); len(got) != 2 {
		t.Fatalf("target filter: %d, want 2", len(got))
	}
	if got := c.Select(Filter{Since: base.Add(90 * time.Minute)}); len(got) != 2 {
		t.Fatalf("since filter: %d, want 2", len(got))
	}
	if got := c.Select(Filter{Until: base.Add(30 * time.Minute)}); len(got) != 1 {
		t.Fatalf("until filter: %d, want 1", len(got))
	}
	if got := c.Select(Filter{Limit: 3}); len(got) != 3 || got[0].ID != "job-1" {
		t.Fatalf("limit filter kept %+v, want most recent 3", got)
	}
	bl, ok := c.Baseline("scen-a", "job-1")
	if !ok || bl.ID != "job-0" {
		t.Fatalf("baseline(scen-a) = %+v ok=%v, want job-0", bl, ok)
	}
	// The run being assessed never baselines itself.
	bl, ok = c.Baseline("scen-a", "job-0")
	if !ok || bl.ID != "job-1" {
		t.Fatalf("baseline excluding job-0 = %+v ok=%v, want job-1", bl, ok)
	}
	if _, ok := c.Baseline("scen-missing", ""); ok {
		t.Fatal("baseline for unknown scenario should not exist")
	}
	if sc := c.Scenarios(); len(sc) != 2 || sc[0] != "scen-a" || sc[1] != "scen-b" {
		t.Fatalf("scenarios = %v", sc)
	}
}

func TestTrajectoryHash(t *testing.T) {
	a := TrajectoryHash([]float64{0.5, 0.25, 0.25})
	b := TrajectoryHash([]float64{0.5, 0.25, 0.25})
	if a == "" || a != b {
		t.Fatalf("identical series hashed %q vs %q", a, b)
	}
	if c := TrajectoryHash([]float64{0.5, 0.25, 0.250000001}); c == a {
		t.Fatal("different series collided")
	}
	// Bit-sensitive: +0 and -0 differ in representation, so they must differ.
	if TrajectoryHash([]float64{0}) == TrajectoryHash([]float64{math.Copysign(0, -1)}) {
		t.Fatal("trajectory hash is not bit-sensitive")
	}
	if TrajectoryHash(nil) != "" {
		t.Fatal("empty trajectory should hash to empty string")
	}
}

func TestAssessVerdicts(t *testing.T) {
	base := testRecord("job-0", "scen-a", 0.25)
	base.TrajectoryHash = TrajectoryHash([]float64{0.5, 0.25})

	if a := Assess(nil, base, 0); a.Verdict != VerdictBaseline {
		t.Fatalf("no baseline: %+v", a)
	}

	same := testRecord("job-1", "scen-a", 0.25)
	same.TrajectoryHash = base.TrajectoryHash
	if a := Assess(&base, same, 0); a.Verdict != VerdictIdentical || !a.TrajectoryMatch {
		t.Fatalf("identical run: %+v", a)
	}

	drift := testRecord("job-2", "scen-a", 0.25)
	drift.TrajectoryHash = TrajectoryHash([]float64{0.4, 0.25})
	if a := Assess(&base, drift, 0); a.Verdict != VerdictNeutral {
		t.Fatalf("same error, new path: %+v", a)
	}

	better := testRecord("job-3", "scen-a", 0.20)
	if a := Assess(&base, better, 0); a.Verdict != VerdictImproved || a.Delta >= 0 {
		t.Fatalf("improved run: %+v", a)
	}

	worse := testRecord("job-4", "scen-a", 0.30)
	a := Assess(&base, worse, 0)
	if !a.Regressed() || a.BaselineID != "job-0" {
		t.Fatalf("regressed run: %+v", a)
	}
	if math.Abs(a.Delta-0.05) > 1e-12 {
		t.Fatalf("delta = %g, want 0.05", a.Delta)
	}

	// Tolerance suppresses sub-threshold wiggle.
	wiggle := testRecord("job-5", "scen-a", 0.25+1e-12)
	if a := Assess(&base, wiggle, 1e-9); a.Verdict == VerdictRegressed {
		t.Fatalf("sub-tolerance wiggle flagged: %+v", a)
	}
}

func TestTrend(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errsIn := []float64{0.30, 0.20, 0.40}
	verdicts := []string{VerdictBaseline, VerdictImproved, VerdictRegressed}
	for i, e := range errsIn {
		rec := testRecord(fmt.Sprintf("job-%d", i), "scen-a", e)
		rec.WallSeconds = float64(10 + i)
		rec.Verdict = verdicts[i]
		if _, err := c.Add(rec, nil); err != nil {
			t.Fatal(err)
		}
	}
	tr := c.Trend("scen-a")
	if tr.Runs != 3 || len(tr.Points) != 3 {
		t.Fatalf("trend = %+v", tr)
	}
	if tr.BestError != 0.20 {
		t.Fatalf("best error = %g, want 0.20", tr.BestError)
	}
	if tr.MedianBestError != 0.30 {
		t.Fatalf("median best error = %g, want 0.30", tr.MedianBestError)
	}
	if tr.MedianWallSeconds != 11 {
		t.Fatalf("median wall = %g, want 11", tr.MedianWallSeconds)
	}
	if tr.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1", tr.Regressions)
	}
	if tr.Points[2].Verdict != VerdictRegressed {
		t.Fatalf("points lost verdicts: %+v", tr.Points)
	}
	if empty := c.Trend("scen-none"); empty.Runs != 0 || len(empty.Points) != 0 {
		t.Fatalf("empty trend = %+v", empty)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %g", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %g", m)
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("empty median should be NaN")
	}
}

func TestHashJSONStable(t *testing.T) {
	type spec struct {
		A int               `json:"a"`
		B string            `json:"b"`
		M map[string]string `json:"m"`
	}
	h1, err := HashJSON(spec{A: 1, B: "x", M: map[string]string{"k1": "v1", "k2": "v2"}})
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := HashJSON(spec{A: 1, B: "x", M: map[string]string{"k2": "v2", "k1": "v1"}})
	if h1 != h2 {
		t.Fatalf("equal values hashed differently: %s vs %s", h1, h2)
	}
	if len(h1) != 16 {
		t.Fatalf("hash length = %d, want 16", len(h1))
	}
	h3, _ := HashJSON(spec{A: 2, B: "x"})
	if h3 == h1 {
		t.Fatal("different values collided")
	}
}
