// Package corpus is the persistent, append-only run index datamimed writes on
// every job completion. It is the longitudinal memory of the service: each
// finished search contributes a summary Record (scenario hash, seed, backend,
// best error, per-component attribution, counts, wall/busy time, fleet stats,
// build version) plus the full JSONL telemetry artifact, content-addressed by
// SHA-256 so identical runs share storage.
//
// On-disk layout under the corpus directory:
//
//	index.jsonl          append-only, one JSON Record per line
//	runs/<sha256>.jsonl  full run artifacts, content-addressed
//
// The index is written with a single O_APPEND write per record, so concurrent
// completions from one process interleave whole lines and a crash can lose at
// most a truncated tail. Open tolerates exactly that: malformed lines are
// counted and skipped (the same contract as inspect.LoadRun), and a dirty
// index — truncated tail or duplicate IDs — is compacted in place via
// tmp+rename before the append handle is opened.
package corpus

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Record is one finished run's summary entry in the corpus index.
type Record struct {
	// ID is the coordinator's job ID (unique per record; later records win
	// on compaction).
	ID string `json:"id"`
	// Scenario is the hash of the semantic job-spec fields (see the service's
	// scenario hashing: bit-identity knobs like backend and profile workers
	// are excluded, the seed is included).
	Scenario string `json:"scenario"`
	// Target is a short human description of what the run searched for.
	Target string `json:"target,omitempty"`
	// Generator is the dataset generator the search tuned.
	Generator string `json:"generator,omitempty"`
	Seed      uint64 `json:"seed"`
	// Backend records where evaluations ran ("local" or "dispatch"); it is
	// informational only and never part of the scenario hash.
	Backend string `json:"backend,omitempty"`
	// Build is the coordinator build that produced the run.
	Build string `json:"build,omitempty"`

	BestError  float64            `json:"best_error"`
	BestIter   int                `json:"best_iter"`
	Components map[string]float64 `json:"components,omitempty"`
	Iterations int                `json:"iterations"`
	Evals      int                `json:"evals"`
	CacheHits  int                `json:"cache_hits"`
	Skipped    int                `json:"skipped"`

	WallSeconds    float64 `json:"wall_seconds,omitempty"`
	BusySeconds    float64 `json:"busy_seconds,omitempty"`
	FleetProcesses int     `json:"fleet_processes,omitempty"`
	RemoteShare    float64 `json:"remote_share,omitempty"`

	// TrajectoryHash fingerprints the best-error-so-far series bit-for-bit
	// (SHA-256 over the IEEE-754 representation of each sample), so two runs
	// can be compared for exact convergence identity without loading their
	// artifacts.
	TrajectoryHash string `json:"trajectory_hash,omitempty"`
	// ArtifactSHA content-addresses the full JSONL artifact under runs/.
	ArtifactSHA string `json:"artifact_sha,omitempty"`

	// Verdict, BaselineID, and BaselineDelta record the watchdog's assessment
	// against the scenario baseline at index time (see Assess).
	Verdict       string  `json:"verdict,omitempty"`
	BaselineID    string  `json:"baseline_id,omitempty"`
	BaselineDelta float64 `json:"baseline_delta,omitempty"`

	// ModelHealth summarizes the run's GP search-health diagnostics (nil for
	// runs without surrogate fits: random/anneal optimizers, pre-diagnostics
	// builds). It lets trends track calibration drift across runs of a
	// scenario without reloading artifacts.
	ModelHealth *ModelHealth `json:"model_health,omitempty"`

	FinishedAt time.Time `json:"finished_at"`
}

// ModelHealth is a run's surrogate-model health rollup: the figures the
// optimizer observatory judges a search by (see inspect.SearchHealth), frozen
// into the index so longitudinal calibration drift is queryable.
type ModelHealth struct {
	// Snapshots counts the per-iteration diagnostics records the run emitted.
	Snapshots int `json:"snapshots"`
	// MeanCoverage1/MeanCoverage2 are the settled-half LOO calibration
	// coverages (nominal 0.683 / 0.954).
	MeanCoverage1 float64 `json:"mean_coverage1"`
	MeanCoverage2 float64 `json:"mean_coverage2"`
	// FinalLogMarginal is the last fit's log evidence.
	FinalLogMarginal float64 `json:"final_log_marginal"`
	// MaxJitterLevel is the worst jitter escalation any fit needed.
	MaxJitterLevel int `json:"max_jitter_level"`
	// Healthy reports whether no search-health verdict flag fired.
	Healthy bool `json:"healthy"`
}

// Filter selects records from the index. Zero fields match everything.
type Filter struct {
	Scenario string    // exact scenario hash
	Target   string    // exact target description
	Since    time.Time // FinishedAt >= Since
	Until    time.Time // FinishedAt <= Until
	// Limit keeps only the most recent N matches (index order; 0 = all).
	Limit int
}

// Corpus is an open run index. All methods are safe for concurrent use within
// one process; cross-process appends rely on O_APPEND whole-line writes.
type Corpus struct {
	dir string

	mu        sync.Mutex
	f         *os.File // index append handle
	records   []Record
	malformed int
	compacted bool
}

// Open loads (or creates) the corpus under dir. Truncated or otherwise
// malformed index lines are counted, skipped, and compacted away; duplicate
// IDs keep the latest record.
func Open(dir string) (*Corpus, error) {
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	c := &Corpus{dir: dir}
	dirty, err := c.load()
	if err != nil {
		return nil, err
	}
	if dirty {
		if err := c.rewriteIndex(); err != nil {
			return nil, err
		}
		c.compacted = true
	}
	f, err := os.OpenFile(c.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	c.f = f
	return c, nil
}

func (c *Corpus) indexPath() string { return filepath.Join(c.dir, "index.jsonl") }

// Dir reports the corpus root directory.
func (c *Corpus) Dir() string { return c.dir }

// load parses index.jsonl into c.records, returning whether the on-disk index
// needs compaction (malformed lines or duplicate IDs).
func (c *Corpus) load() (dirty bool, err error) {
	f, err := os.Open(c.indexPath())
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()

	byID := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.ID == "" {
			c.malformed++
			dirty = true
			continue
		}
		if i, ok := byID[rec.ID]; ok {
			c.records[i] = rec // latest wins
			dirty = true
			continue
		}
		byID[rec.ID] = len(c.records)
		c.records = append(c.records, rec)
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("corpus: reading index: %w", err)
	}
	return dirty, nil
}

// rewriteIndex writes the in-memory records back out atomically (tmp+rename).
func (c *Corpus) rewriteIndex() error {
	tmp := c.indexPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range c.records {
		line, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("corpus: %w", err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("corpus: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("corpus: %w", err)
	}
	if err := os.Rename(tmp, c.indexPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("corpus: %w", err)
	}
	return nil
}

// Close releases the index append handle. The corpus remains readable.
func (c *Corpus) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// Add appends rec to the index and, when artifact is non-empty, stores the
// full run artifact content-addressed under runs/. The returned record has
// ArtifactSHA (and a FinishedAt default) filled in.
func (c *Corpus) Add(rec Record, artifact []byte) (Record, error) {
	if rec.ID == "" {
		return rec, fmt.Errorf("corpus: record has no ID")
	}
	if rec.FinishedAt.IsZero() {
		rec.FinishedAt = time.Now().UTC()
	}
	if len(artifact) > 0 {
		sha, err := c.storeArtifact(artifact)
		if err != nil {
			return rec, err
		}
		rec.ArtifactSHA = sha
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return rec, fmt.Errorf("corpus: %w", err)
	}
	line = append(line, '\n')

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return rec, fmt.Errorf("corpus: closed")
	}
	// One Write call per record: O_APPEND makes whole lines atomic with
	// respect to concurrent appenders, so a reader never sees interleaving.
	if _, err := c.f.Write(line); err != nil {
		return rec, fmt.Errorf("corpus: %w", err)
	}
	c.records = append(c.records, rec)
	return rec, nil
}

// storeArtifact writes the artifact under its content address, skipping the
// write when the same bytes are already stored.
func (c *Corpus) storeArtifact(artifact []byte) (string, error) {
	sum := sha256.Sum256(artifact)
	sha := hex.EncodeToString(sum[:])
	path := filepath.Join(c.dir, "runs", sha+".jsonl")
	if _, err := os.Stat(path); err == nil {
		return sha, nil
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, artifact, 0o644); err != nil {
		return "", fmt.Errorf("corpus: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("corpus: %w", err)
	}
	return sha, nil
}

// Artifact loads the full JSONL artifact of rec.
func (c *Corpus) Artifact(rec Record) ([]byte, error) {
	if rec.ArtifactSHA == "" {
		return nil, fmt.Errorf("corpus: run %s has no stored artifact", rec.ID)
	}
	b, err := os.ReadFile(c.ArtifactPath(rec))
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	return b, nil
}

// ArtifactPath returns the on-disk path of rec's artifact.
func (c *Corpus) ArtifactPath(rec Record) string {
	return filepath.Join(c.dir, "runs", rec.ArtifactSHA+".jsonl")
}

// Len reports the number of indexed records.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Malformed reports how many index lines were skipped as truncated or
// unparseable when the corpus was opened.
func (c *Corpus) Malformed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.malformed
}

// Compacted reports whether Open rewrote a dirty index.
func (c *Corpus) Compacted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compacted
}

// Records returns a copy of every record in index (append) order.
func (c *Corpus) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, len(c.records))
	copy(out, c.records)
	return out
}

// Select returns the records matching f, in index order.
func (c *Corpus) Select(f Filter) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Record
	for _, rec := range c.records {
		if f.Scenario != "" && rec.Scenario != f.Scenario {
			continue
		}
		if f.Target != "" && rec.Target != f.Target {
			continue
		}
		if !f.Since.IsZero() && rec.FinishedAt.Before(f.Since) {
			continue
		}
		if !f.Until.IsZero() && rec.FinishedAt.After(f.Until) {
			continue
		}
		out = append(out, rec)
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Find returns the record with the given job ID.
func (c *Corpus) Find(id string) (Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rec := range c.records {
		if rec.ID == id {
			return rec, true
		}
	}
	return Record{}, false
}

// Baseline returns the earliest indexed record for scenario, skipping the
// record with ID exclude (the run being assessed). The first run of a
// scenario is its reference point; later regressions are judged against it.
func (c *Corpus) Baseline(scenario, exclude string) (Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rec := range c.records {
		if rec.Scenario == scenario && rec.ID != exclude {
			return rec, true
		}
	}
	return Record{}, false
}

// Scenarios returns the distinct scenario hashes in first-seen order.
func (c *Corpus) Scenarios() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, rec := range c.records {
		if !seen[rec.Scenario] {
			seen[rec.Scenario] = true
			out = append(out, rec.Scenario)
		}
	}
	return out
}

// Compact rewrites the index deduplicated (latest record per ID wins) and
// reopens the append handle. Safe to call on a live corpus.
func (c *Corpus) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	byID := make(map[string]int)
	var out []Record
	for _, rec := range c.records {
		if i, ok := byID[rec.ID]; ok {
			out[i] = rec
			continue
		}
		byID[rec.ID] = len(out)
		out = append(out, rec)
	}
	c.records = out
	if err := c.rewriteIndex(); err != nil {
		return err
	}
	if c.f != nil {
		c.f.Close()
		f, err := os.OpenFile(c.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			c.f = nil
			return fmt.Errorf("corpus: %w", err)
		}
		c.f = f
	}
	return nil
}

// TrajectoryHash fingerprints a best-error series bit-for-bit: SHA-256 over
// the big-endian IEEE-754 encoding of each sample. Empty series hash to "".
func TrajectoryHash(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	h := sha256.New()
	var buf [8]byte
	for _, v := range series {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// HashJSON hashes v's canonical JSON encoding (encoding/json sorts map keys
// and emits struct fields in declaration order, so equal values hash equally)
// and returns the first 16 hex characters — short enough for URLs, wide
// enough (64 bits) that collisions are not a practical concern for a run
// index.
func HashJSON(v interface{}) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("corpus: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8]), nil
}

// Median returns the median of vals (mean of the middle pair for even
// lengths); NaN for an empty slice.
func Median(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(vals))
	copy(s, vals)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
