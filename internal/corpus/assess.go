package corpus

import (
	"fmt"
	"time"
)

// Watchdog verdicts for a finished run judged against its scenario baseline.
// The rules (documented in DESIGN §3g): with no prior run of the scenario the
// run IS the baseline; otherwise the best-error delta decides — worse than the
// baseline by more than the tolerance is regressed, better is improved, and
// within tolerance the trajectory hash splits identical (bit-for-bit same
// convergence) from neutral (same destination, different path).
const (
	VerdictBaseline  = "baseline"
	VerdictIdentical = "identical"
	VerdictImproved  = "improved"
	VerdictNeutral   = "neutral"
	VerdictRegressed = "regressed"
)

// DefaultTolerance is the absolute best-error tolerance used when Assess is
// given a non-positive one. It matches inspect.DiffOptions' default: spec
// changes should dominate float noise by many orders of magnitude.
const DefaultTolerance = 1e-9

// Assessment is the watchdog's judgment of one run against its baseline.
type Assessment struct {
	Verdict    string `json:"verdict"`
	BaselineID string `json:"baseline_id,omitempty"`
	// Delta is candidate best error minus baseline best error (positive is
	// worse; zero for a baseline verdict).
	Delta float64 `json:"delta"`
	// TrajectoryMatch reports bit-identical best-error trajectories.
	TrajectoryMatch bool     `json:"trajectory_match"`
	Reasons         []string `json:"reasons,omitempty"`
}

// Regressed reports whether the verdict is a regression.
func (a Assessment) Regressed() bool { return a.Verdict == VerdictRegressed }

// Assess judges candidate against baseline (nil when the scenario has no
// prior run) with the given absolute best-error tolerance (<= 0 uses
// DefaultTolerance).
func Assess(baseline *Record, candidate Record, tol float64) Assessment {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	if baseline == nil {
		return Assessment{
			Verdict: VerdictBaseline,
			Reasons: []string{"first indexed run of this scenario"},
		}
	}
	a := Assessment{
		BaselineID: baseline.ID,
		Delta:      candidate.BestError - baseline.BestError,
		TrajectoryMatch: baseline.TrajectoryHash != "" &&
			baseline.TrajectoryHash == candidate.TrajectoryHash,
	}
	switch {
	case a.Delta > tol:
		a.Verdict = VerdictRegressed
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"best error %g worsened by %g vs baseline %s (%g)",
			candidate.BestError, a.Delta, baseline.ID, baseline.BestError))
	case a.Delta < -tol:
		a.Verdict = VerdictImproved
		a.Reasons = append(a.Reasons, fmt.Sprintf(
			"best error %g improved by %g vs baseline %s (%g)",
			candidate.BestError, -a.Delta, baseline.ID, baseline.BestError))
	case a.TrajectoryMatch:
		a.Verdict = VerdictIdentical
		a.Reasons = append(a.Reasons, "best-error trajectory bit-identical to baseline")
	default:
		a.Verdict = VerdictNeutral
		a.Reasons = append(a.Reasons,
			"best error within tolerance of baseline, trajectory differs")
	}
	return a
}

// TrendPoint is one run's contribution to a scenario's longitudinal series.
type TrendPoint struct {
	ID          string    `json:"id"`
	FinishedAt  time.Time `json:"finished_at"`
	BestError   float64   `json:"best_error"`
	WallSeconds float64   `json:"wall_seconds"`
	Evals       int       `json:"evals"`
	Seed        uint64    `json:"seed"`
	Backend     string    `json:"backend,omitempty"`
	Verdict     string    `json:"verdict,omitempty"`
	// ModelHealth carries the run's GP search-health rollup (nil for runs
	// without surrogate diagnostics), so trend consumers can plot calibration
	// drift beside best error.
	ModelHealth *ModelHealth `json:"model_health,omitempty"`
}

// Trend is the best-error and duration series of one scenario across runs,
// with medians for "vs. corpus median" context.
type Trend struct {
	Scenario          string       `json:"scenario"`
	Target            string       `json:"target,omitempty"`
	Generator         string       `json:"generator,omitempty"`
	Runs              int          `json:"runs"`
	Points            []TrendPoint `json:"points"`
	MedianBestError   float64      `json:"median_best_error"`
	MedianWallSeconds float64      `json:"median_wall_seconds"`
	BestError         float64      `json:"best_error"` // best across all runs
	Regressions       int          `json:"regressions"`
	// MedianCoverage1 is the median 1σ LOO calibration coverage across the
	// runs that carry model health (0 when none do); ModelUnhealthy counts
	// runs whose search-health verdict flagged a problem. Together they make
	// calibration drift visible at the scenario level.
	MedianCoverage1 float64 `json:"median_coverage1,omitempty"`
	ModelUnhealthy  int     `json:"model_unhealthy,omitempty"`
}

// Trend builds the longitudinal series for one scenario from the index, in
// index (completion) order.
func (c *Corpus) Trend(scenario string) Trend {
	recs := c.Select(Filter{Scenario: scenario})
	t := Trend{Scenario: scenario, Runs: len(recs)}
	if len(recs) == 0 {
		return t
	}
	t.Target = recs[0].Target
	t.Generator = recs[0].Generator
	t.BestError = recs[0].BestError
	errs := make([]float64, 0, len(recs))
	walls := make([]float64, 0, len(recs))
	var covs []float64
	for _, rec := range recs {
		t.Points = append(t.Points, TrendPoint{
			ID:          rec.ID,
			FinishedAt:  rec.FinishedAt,
			BestError:   rec.BestError,
			WallSeconds: rec.WallSeconds,
			Evals:       rec.Evals,
			Seed:        rec.Seed,
			Backend:     rec.Backend,
			Verdict:     rec.Verdict,
			ModelHealth: rec.ModelHealth,
		})
		errs = append(errs, rec.BestError)
		walls = append(walls, rec.WallSeconds)
		if rec.BestError < t.BestError {
			t.BestError = rec.BestError
		}
		if rec.Verdict == VerdictRegressed {
			t.Regressions++
		}
		if mh := rec.ModelHealth; mh != nil {
			covs = append(covs, mh.MeanCoverage1)
			if !mh.Healthy {
				t.ModelUnhealthy++
			}
		}
	}
	t.MedianBestError = Median(errs)
	t.MedianWallSeconds = Median(walls)
	if len(covs) > 0 {
		t.MedianCoverage1 = Median(covs)
	}
	return t
}
