package cloning

import (
	"testing"

	"datamime/internal/profile"
	"datamime/internal/sim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

// syntheticProfile builds a profile with chosen metric means.
func syntheticProfile(means map[profile.MetricID]float64) *profile.Profile {
	p := &profile.Profile{
		Benchmark: "synthetic",
		Machine:   "broadwell",
		Samples:   make(map[profile.MetricID][]float64),
	}
	for _, id := range profile.ScalarMetrics {
		v := means[id]
		p.Samples[id] = []float64{v, v, v}
	}
	return p
}

func TestCharacterizeScalesWithTarget(t *testing.T) {
	cold := Characterize(syntheticProfile(map[profile.MetricID]float64{}))
	hot := Characterize(syntheticProfile(map[profile.MetricID]float64{
		profile.MetricICache: 20,
		profile.MetricLLC:    10,
		profile.MetricL1D:    40,
		profile.MetricBranch: 8,
	}))
	if hot.CodeFootprintBytes <= cold.CodeFootprintBytes {
		t.Fatal("ICache MPKI did not grow code footprint")
	}
	if hot.FarFootprintBytes <= cold.FarFootprintBytes {
		t.Fatal("LLC MPKI did not grow the far data footprint")
	}
	if hot.RandomBranchFrac <= cold.RandomBranchFrac {
		t.Fatal("branch MPKI did not raise branch randomness")
	}
	if hot.FarOpsPerKiloInstr <= cold.FarOpsPerKiloInstr {
		t.Fatal("LLC MPKI did not raise far access density")
	}
	if hot.StrideOpsPerKiloInstr <= cold.StrideOpsPerKiloInstr {
		t.Fatal("L1D MPKI did not raise stride density")
	}
}

func TestCharacterizeCaps(t *testing.T) {
	c := Characterize(syntheticProfile(map[profile.MetricID]float64{
		profile.MetricICache: 1e6,
		profile.MetricLLC:    1e6,
		profile.MetricL1D:    1e6,
		profile.MetricBranch: 1e6,
	}))
	if c.CodeFootprintBytes > 1<<20 || c.FarFootprintBytes > 256<<20 {
		t.Fatalf("footprints uncapped: %d / %d", c.CodeFootprintBytes, c.FarFootprintBytes)
	}
	if c.RandomBranchFrac > 1 {
		t.Fatal("branch fraction uncapped")
	}
}

func TestProxyEmitsConfiguredShape(t *testing.T) {
	c := Characteristics{
		CodeFootprintBytes:    64 << 10,
		FarFootprintBytes:     8 << 20,
		BasicBlockInstrs:      12,
		NumBlocks:             32,
		HotOpsPerKiloInstr:    200,
		StrideOpsPerKiloInstr: 60,
		FarOpsPerKiloInstr:    5,
		BranchesPerKiloInstr:  150,
		RandomBranchFrac:      0.2,
	}
	p := NewProxy(c, trace.NewCodeLayout(), 1)
	rng := stats.NewRNG(2)
	rec := trace.NewRecorder()
	p.Handle(rec, rng)
	if rec.Instrs < instrsPerHandle {
		t.Fatalf("burst issued %d instrs", rec.Instrs)
	}
	if rec.Loads == 0 || rec.Stores == 0 || rec.Branches == 0 {
		t.Fatal("proxy missing event kinds")
	}
	// Touches many distinct blocks over a burst.
	if len(rec.DistinctRegions) < 8 {
		t.Fatalf("proxy visited %d blocks", len(rec.DistinctRegions))
	}
}

func TestProxyIsStaticOverTime(t *testing.T) {
	// The baseline's defining flaw: the clone pegs the CPU and its metric
	// distributions are near point masses.
	target := syntheticProfile(map[profile.MetricID]float64{
		profile.MetricICache: 5,
		profile.MetricLLC:    2,
		profile.MetricL1D:    20,
		profile.MetricBranch: 4,
	})
	b := Clone(target, "clone-test")
	pr := profile.New(sim.Broadwell())
	pr.WindowCycles = 150_000
	pr.Windows = 10
	pr.WarmupWindows = 2
	pr.SkipCurves = true
	got, err := pr.Profile(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range got.Samples[profile.MetricCPUUtil] {
		if u < 0.999 {
			t.Fatalf("clone CPU util %g, want pegged at 1", u)
		}
	}
	// IPC variance across windows is tiny relative to its mean.
	ipc := got.Samples[profile.MetricIPC]
	if stats.Mean(ipc) <= 0 {
		t.Fatal("clone has no IPC")
	}
	if cv := stats.Std(ipc) / stats.Mean(ipc); cv > 0.08 {
		t.Fatalf("clone IPC coefficient of variation %g — should be static", cv)
	}
}

func TestCloneTracksFootprintDirection(t *testing.T) {
	// More LLC misses in the target -> bigger proxy data footprint ->
	// more memory bandwidth in the clone. Direction must be preserved even
	// though absolute fidelity is the baseline's weakness.
	run := func(llcMPKI float64) float64 {
		target := syntheticProfile(map[profile.MetricID]float64{profile.MetricLLC: llcMPKI})
		pr := profile.New(sim.Broadwell())
		pr.WindowCycles = 150_000
		pr.Windows = 8
		pr.WarmupWindows = 2
		pr.SkipCurves = true
		got, err := pr.Profile(Clone(target, "c"), 4)
		if err != nil {
			t.Fatal(err)
		}
		return got.Mean(profile.MetricMemBW)
	}
	if run(12) <= run(0.1) {
		t.Fatal("clone memory traffic does not track target LLC MPKI")
	}
}

func TestProxyDeterministic(t *testing.T) {
	c := Characterize(syntheticProfile(map[profile.MetricID]float64{profile.MetricLLC: 3}))
	run := func() int {
		p := NewProxy(c, trace.NewCodeLayout(), 9)
		rng := stats.NewRNG(10)
		rec := trace.NewRecorder()
		for i := 0; i < 5; i++ {
			p.Handle(rec, rng)
		}
		return rec.Instrs
	}
	if run() != run() {
		t.Fatal("same-seed proxies diverged")
	}
}

func TestNewProxyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid characteristics did not panic")
		}
	}()
	NewProxy(Characteristics{}, trace.NewCodeLayout(), 0)
}
