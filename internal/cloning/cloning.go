// Package cloning implements the black-box workload-cloning baseline the
// paper compares against (PerfProx, Panda & John, PACT'17; lineage: Bell &
// John, Joshi et al.). Given a target's performance profile, it derives the
// *average* statistics such techniques capture — instruction footprint,
// basic-block size and transition probabilities, per-level cache miss
// densities, branch behavior — and generates a synthetic proxy program: a
// Markov chain of basic blocks issuing hot, strided, and far memory
// streams calibrated to the target's average miss counts.
//
// The baseline's defining limitations are reproduced faithfully because
// they are inherent to the approach, not to this implementation: the proxy
// is *static* over time (no request arrivals, no phases), so it pegs CPU
// utilization at 1.0 and produces near-point-mass metric distributions
// (Figs. 4 and 8); and because it reproduces average miss *counts* with
// synthetic streams rather than the target's locality structure, its
// cache-sensitivity curves and cross-machine behavior diverge (Figs. 3, 7).
package cloning

import (
	"fmt"

	"datamime/internal/profile"
	"datamime/internal/stats"
	"datamime/internal/trace"
	"datamime/internal/workload"
)

// Characteristics are the aggregate statistics a black-box cloner extracts
// from the target workload. Everything here is an average — the information
// loss relative to full profiles is the point.
type Characteristics struct {
	// CodeFootprintBytes is the estimated instruction working set.
	CodeFootprintBytes int
	// FarFootprintBytes is the far (LLC-overflowing) data region size.
	FarFootprintBytes int
	// BasicBlockInstrs is the mean basic-block length.
	BasicBlockInstrs int
	// NumBlocks is the number of synthetic basic blocks in the proxy's
	// Markov chain.
	NumBlocks int
	// HotOpsPerKiloInstr is the density of cache-resident accesses.
	HotOpsPerKiloInstr float64
	// StrideOpsPerKiloInstr is the density of sequential-stride accesses,
	// calibrated so the fresh lines they touch reproduce the target's L1D
	// miss count.
	StrideOpsPerKiloInstr float64
	// FarOpsPerKiloInstr is the density of random far accesses, calibrated
	// to the target's LLC miss count.
	FarOpsPerKiloInstr float64
	// BranchesPerKiloInstr is the branch density.
	BranchesPerKiloInstr float64
	// RandomBranchFrac is the fraction of branches given data-random
	// outcomes, calibrated against the target's branch MPKI.
	RandomBranchFrac float64
}

// Characterize reduces a target profile to the averages a cloner keeps.
// Each stream density comes from the corresponding per-kilo-instruction
// miss count, the way profiling-based cloners calibrate their synthetic
// streams to per-level miss rates.
func Characterize(p *profile.Profile) Characteristics {
	ic := p.Mean(profile.MetricICache)
	llc := p.Mean(profile.MetricLLC)
	l1d := p.Mean(profile.MetricL1D)
	br := p.Mean(profile.MetricBranch)

	c := Characteristics{
		BasicBlockInstrs:     12,
		NumBlocks:            64,
		BranchesPerKiloInstr: 150,
	}
	// Instruction working set: ~L1I-resident when ICache MPKI is near
	// zero; grows with the miss rate.
	c.CodeFootprintBytes = 16<<10 + int(ic*4096)
	if c.CodeFootprintBytes > 1<<20 {
		c.CodeFootprintBytes = 1 << 20
	}
	// Far region: large enough that random accesses miss the LLC; scaled
	// further with the target's miss rate.
	c.FarFootprintBytes = 32<<20 + int(llc*4)<<20
	if c.FarFootprintBytes > 256<<20 {
		c.FarFootprintBytes = 256 << 20
	}
	// One far access ~= one LLC (and L1) miss.
	c.FarOpsPerKiloInstr = llc
	// A stride walker touches a fresh line every 8 accesses of 8 bytes;
	// each fresh line is one L1D miss. Far accesses also miss L1D, so only
	// the remainder comes from the stride stream.
	l1dFromStride := l1d - llc
	if l1dFromStride < 0 {
		l1dFromStride = 0
	}
	c.StrideOpsPerKiloInstr = 8 * l1dFromStride
	// The rest of the memory ops hit a small hot buffer.
	hot := 300 - c.StrideOpsPerKiloInstr - c.FarOpsPerKiloInstr
	if hot < 20 {
		hot = 20
	}
	c.HotOpsPerKiloInstr = hot
	// Random branches mispredict ~50%; a target of br MPKI needs
	// br/0.5 of its branches per kilo-instruction random.
	c.RandomBranchFrac = stats.Clamp(br/(0.5*c.BranchesPerKiloInstr), 0, 1)
	return c
}

// Proxy is the generated clone: a workload.Server that executes the basic-
// block graph. It has no request structure; each Handle call runs one
// fixed-size burst of the chain, and the driver saturates it.
type Proxy struct {
	chars  Characteristics
	blocks []*trace.CodeRegion
	trans  [][]float64 // cumulative transition probabilities
	state  int

	hotBuf    uint64
	strideCur uint64
	hotCount  int
	// fractional per-block issue accumulators
	accHot, accStride, accFar, accBr float64
}

// instrsPerHandle is the burst size of one proxy iteration.
const instrsPerHandle = 12_000

// Fixed simulated addresses of the proxy's data regions.
const (
	hotBase  = 0x0000000030000000
	farBase  = 0x0000000040000000
	hotBytes = 16 << 10
)

// NewProxy generates the proxy program from the characteristics. The
// Markov transition matrix is drawn deterministically from seed, as
// cloners derive it from profiled transition counts.
func NewProxy(c Characteristics, layout *trace.CodeLayout, seed uint64) *Proxy {
	if c.NumBlocks <= 0 || c.BasicBlockInstrs <= 0 {
		panic(fmt.Sprintf("cloning: invalid characteristics %+v", c))
	}
	rng := stats.NewRNG(stats.HashSeed(seed, "proxy-gen"))
	p := &Proxy{chars: c}
	blockBytes := c.CodeFootprintBytes / c.NumBlocks
	if blockBytes < trace.LineSize {
		blockBytes = trace.LineSize
	}
	for i := 0; i < c.NumBlocks; i++ {
		p.blocks = append(p.blocks, layout.Region(fmt.Sprintf("proxy.bb%03d", i), blockBytes))
	}
	// Transition matrix: skewed toward a few successors, like real CFGs.
	p.trans = make([][]float64, c.NumBlocks)
	for i := range p.trans {
		row := make([]float64, c.NumBlocks)
		var sum float64
		for j := range row {
			w := rng.Float64()
			w = w * w * w // skew
			row[j] = w
			sum += w
		}
		acc := 0.0
		for j := range row {
			acc += row[j] / sum
			row[j] = acc
		}
		p.trans[i] = row
	}
	return p
}

// Name implements workload.Server.
func (p *Proxy) Name() string { return "perfprox" }

// Handle implements workload.Server: execute one burst of the basic-block
// chain with its calibrated memory and branch streams.
func (p *Proxy) Handle(col trace.Collector, rng *stats.RNG) {
	c := p.chars
	perBlock := float64(c.BasicBlockInstrs) / 1000
	foot := uint64(c.FarFootprintBytes)
	issued := 0
	for issued < instrsPerHandle {
		blk := p.blocks[p.state]
		col.Exec(blk, c.BasicBlockInstrs)
		issued += c.BasicBlockInstrs

		p.accHot += c.HotOpsPerKiloInstr * perBlock
		for ; p.accHot >= 1; p.accHot-- {
			addr := hotBase + (rng.Uint64()%hotBytes)&^7
			p.hotCount++
			if p.hotCount%4 == 0 {
				col.Store(addr, 8)
			} else {
				col.Load(addr, 8)
			}
		}
		p.accStride += c.StrideOpsPerKiloInstr * perBlock
		if n := int(p.accStride); n >= 1 {
			// A sequential walker: one sized access covering the next n
			// 8-byte elements, advancing the cursor.
			col.Load(farBase+p.strideCur, 8*n)
			p.strideCur = (p.strideCur + uint64(8*n)) % (64 << 20)
			p.accStride -= float64(n)
		}
		p.accFar += c.FarOpsPerKiloInstr * perBlock
		for ; p.accFar >= 1; p.accFar-- {
			col.Load(farBase+(rng.Uint64()%foot)&^63, 8)
		}
		p.accBr += (c.BranchesPerKiloInstr - 1) * perBlock // -1: block terminator below
		for ; p.accBr >= 1; p.accBr-- {
			taken := true
			if rng.Bool(c.RandomBranchFrac) {
				taken = rng.Bool(0.5)
			}
			col.Branch(blk.Base+uint64(int(p.accBr)%4), taken)
		}

		// Markov transition. The block terminator is modeled as a strongly
		// biased branch: cloners reproduce transition *probabilities*, and
		// the dominant successor makes the terminator well-predicted, so
		// misprediction behavior is carried by the calibrated random
		// stream above (PerfProx matches branch MPKI well for some
		// workloads, §V-A).
		u := rng.Float64()
		row := p.trans[p.state]
		next := len(row) - 1
		for j, cum := range row {
			if u < cum {
				next = j
				break
			}
		}
		col.Branch(blk.Base+7, true)
		p.state = next
	}
}

// Clone runs the full baseline pipeline: characterize the target profile
// and wrap the generated proxy as a benchmark. The offered load saturates
// the core — proxies are plain loops, not servers.
func Clone(target *profile.Profile, name string) workload.Benchmark {
	chars := Characterize(target)
	return workload.Benchmark{
		Name: name,
		QPS:  1e12, // always busy: the proxy has no request structure
		NewServer: func(layout *trace.CodeLayout, seed uint64) workload.Server {
			return NewProxy(chars, layout, seed)
		},
	}
}
