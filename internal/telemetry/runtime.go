package telemetry

import "runtime"

// RegisterRuntimeMetrics adds Go runtime health collectors to reg under
// <prefix>_go_*: goroutine count, heap bytes in use, cumulative GC pause
// time, GC cycle count, and GOMAXPROCS. Values are read at scrape time via
// callback collectors, so an idle registry costs nothing. Both datamimed and
// datamime-worker expose these; the coordinator's federation layer re-exports
// the worker copies per fleet worker, which is what makes memory leaks and
// GC pressure on a remote machine visible from one /metrics endpoint.
func RegisterRuntimeMetrics(reg *Registry, prefix string) {
	reg.NewGaugeFunc(prefix+"_go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.NewGaugeFunc(prefix+"_go_gomaxprocs",
		"GOMAXPROCS: OS threads available for Go code.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	reg.NewGaugeFunc(prefix+"_go_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.NewCounterFunc(prefix+"_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
	reg.NewCounterFunc(prefix+"_go_gc_cycles_total",
		"Completed GC cycles (runtime.MemStats.NumGC).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
}
