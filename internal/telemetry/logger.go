package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// NewLineLogger returns a structured logger that renders each record as one
// deterministic line on w — "msg key=val key=val" with no timestamps or
// levels — so example and CLI output stays reproducible run to run. It
// backs service.Config.Log and cmd/datamime's per-iteration progress lines.
func NewLineLogger(w io.Writer) *slog.Logger {
	return slog.New(&lineHandler{w: w, mu: &sync.Mutex{}})
}

// lineHandler is a minimal slog.Handler writing single plain-text lines.
// Groups are flattened with a dot prefix.
type lineHandler struct {
	mu     *sync.Mutex
	w      io.Writer
	prefix string
	attrs  []slog.Attr
}

func (h *lineHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

func (h *lineHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	b.WriteString(rec.Message)
	for _, a := range h.attrs {
		writeAttr(&b, h.prefix, a)
	}
	rec.Attrs(func(a slog.Attr) bool {
		writeAttr(&b, h.prefix, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

func writeAttr(b *strings.Builder, prefix string, a slog.Attr) {
	if a.Value.Kind() == slog.KindGroup {
		p := prefix + a.Key + "."
		for _, ga := range a.Value.Group() {
			writeAttr(b, p, ga)
		}
		return
	}
	v := a.Value.String()
	b.WriteByte(' ')
	b.WriteString(prefix)
	b.WriteString(a.Key)
	b.WriteByte('=')
	if strings.ContainsAny(v, " \t\"") {
		fmt.Fprintf(b, "%q", v)
	} else {
		b.WriteString(v)
	}
}

func (h *lineHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := *h
	out.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &out
}

func (h *lineHandler) WithGroup(name string) slog.Handler {
	out := *h
	out.prefix = h.prefix + name + "."
	return &out
}
