// Package telemetry is the dependency-free tracing and metrics core behind
// Datamime's observability: a span recorder with monotonic phase timings, a
// bounded flight-recorder ring buffer of recent events, a JSONL run-artifact
// format (see artifact.go), lock-free latency histograms (histogram.go), and
// a deterministic slog-based line logger (logger.go).
//
// Telemetry is off by default and near-zero-cost when disabled: every
// Recorder method is safe on a nil receiver and returns after a single nil
// check without reading the clock or allocating, so instrumented code paths
// (the search loop, the profiler) carry a nil *Recorder with no overhead.
// Telemetry never feeds back into the search: enabling it cannot perturb
// proposals, seeds, or results.
package telemetry

import (
	"log/slog"
	"sync"
	"time"
)

// Canonical phase names emitted by the search pipeline. Span consumers
// (phase histograms, SSE streams) key on these.
const (
	// PhasePropose covers one batch proposal (optimizer.Next/NextBatch).
	PhasePropose = "propose"
	// PhaseGPFit and PhaseAcquisition are the optimizer-internal phases of
	// a Bayesian-optimization proposal, surfaced via opt.TimingReporter.
	PhaseGPFit       = "gp_fit"
	PhaseAcquisition = "acquisition"
	// PhaseGenerate covers dataset generation (Generator.Benchmark).
	PhaseGenerate = "generate"
	// PhaseProfile covers one full candidate measurement (app run + sim).
	PhaseProfile = "profile"
	// PhaseProfileRun and PhaseProfileCurves are the profiler-internal
	// phases: the main counter-window run and the cache-sensitivity sweep.
	PhaseProfileRun    = "profile.run"
	PhaseProfileCurves = "profile.curves"
	// PhaseSimRun is one partition simulation inside a profile (the main
	// run or one way-curve point), emitted per run by the profiler worker
	// pool with AttrWorker/AttrWays attributes — the raw material of the
	// per-worker trace timelines and utilization reports.
	PhaseSimRun = "profile.sim"
	// PhaseBudgetWait is the time one run spent blocked on the shared
	// simulation budget before starting — the contention signal.
	PhaseBudgetWait = "budget.wait"
	// PhaseObserve covers feeding a batch's results back to the optimizer.
	PhaseObserve = "observe"
	// PhaseRemoteEval covers one candidate evaluation dispatched through an
	// eval backend (a remote worker, or the dispatcher's local fallback).
	// Spans carry AttrRemoteWorker/AttrRetries/AttrRemote attributes and get
	// their own per-worker lanes in the trace-event export.
	PhaseRemoteEval = "eval.remote"
	// PhaseWorkerRegister, PhaseWorkerDeregister, and PhaseDispatchRetry are
	// zero-duration fleet-churn markers emitted by the evaluation dispatcher:
	// a worker joining or leaving the fleet, and a failed dispatch attempt
	// being retried elsewhere. PhaseDispatchFallback marks an evaluation
	// falling back to the local backend after exhausting the fleet. All four
	// render as instants on the "fleet" track of the Perfetto export.
	PhaseWorkerRegister   = "worker.register"
	PhaseWorkerDeregister = "worker.deregister"
	PhaseDispatchRetry    = "dispatch.retry"
	PhaseDispatchFallback = "dispatch.fallback"
	// PhaseCacheProbe is a worker-side span covering the evaluation-cache
	// lookup (local LRU, then the coordinator's shared tier) that preceded a
	// dispatched evaluation. It ships back to the coordinator in the
	// /v1/evaluate response envelope with AttrCacheHit/AttrCacheTier attrs.
	PhaseCacheProbe = "cache.probe"
)

// Event types.
const (
	// TypeSpan is a closed span: a phase with a duration.
	TypeSpan = "span"
	// TypeEval is one finished search iteration.
	TypeEval = "eval"
	// TypeLog is a free-form message.
	TypeLog = "log"
	// TypeCorpusRegression is emitted by the coordinator's corpus watchdog
	// when a finished run converges worse than its scenario baseline. It is
	// streamed over SSE and appended to the artifact; consumers that don't
	// know it (inspect.LoadRun, ReplayBestTrace) skip it by design.
	TypeCorpusRegression = "corpus.regression"
	// TypeSearchDiagnostics is one iteration's GP search-health snapshot
	// (opt.Diagnostics flattened into Attrs under the Diag* keys in
	// artifact.go). Emitted once per surrogate-backed proposal, streamed
	// over SSE before `done`, and appended to the artifact; like
	// corpus.regression, consumers that predate it skip it by design.
	TypeSearchDiagnostics = "search.diagnostics"
)

// Event is one telemetry record: a closed span, a finished evaluation, or a
// log message. Events marshal one-per-line into the JSONL run artifact.
// TimeNS is informational wall-clock (UnixNano); DurNS is measured on the
// monotonic clock.
type Event struct {
	Type    string             `json:"type"`
	Job     string             `json:"job,omitempty"`
	Iter    int                `json:"iter,omitempty"`
	Phase   string             `json:"phase,omitempty"`
	DurNS   int64              `json:"dur_ns,omitempty"`
	TimeNS  int64              `json:"time_ns,omitempty"`
	Skipped bool               `json:"skipped,omitempty"`
	Msg     string             `json:"msg,omitempty"`
	Params  []float64          `json:"params,omitempty"`
	Attrs   map[string]float64 `json:"attrs,omitempty"`
}

// Options configures a Recorder.
type Options struct {
	// Capacity bounds the flight-recorder ring (default 512 events).
	Capacity int
	// OnEvent, when non-nil, is called synchronously for every event.
	// Events emitted by one goroutine arrive in emission order; events
	// from concurrent emitters (parallel evaluations) may interleave.
	OnEvent func(Event)
	// Logger, when non-nil, receives every event at Debug level.
	Logger *slog.Logger
}

// Recorder collects spans and events. A nil Recorder is valid and disabled:
// all methods are nil-safe no-ops, so instrumented code needs no branches
// beyond the receiver check the calls already perform.
type Recorder struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	full  bool
	total uint64

	onEvent func(Event)
	logger  *slog.Logger
}

// New builds a Recorder.
func New(opts Options) *Recorder {
	if opts.Capacity <= 0 {
		opts.Capacity = 512
	}
	return &Recorder{
		ring:    make([]Event, opts.Capacity),
		onEvent: opts.OnEvent,
		logger:  opts.Logger,
	}
}

// Enabled reports whether the recorder records (i.e. is non-nil). Guard
// attribute-map construction with it so the disabled path allocates nothing.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit records one event: it enters the ring, the OnEvent sink, and the
// debug logger. Safe on a nil receiver.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	if ev.TimeNS == 0 {
		ev.TimeNS = time.Now().UnixNano()
	}
	r.mu.Lock()
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
	if r.onEvent != nil {
		r.onEvent(ev)
	}
	if r.logger != nil {
		r.logger.Debug("telemetry",
			slog.String("type", ev.Type), slog.String("phase", ev.Phase),
			slog.Int("iter", ev.Iter), slog.Int64("dur_ns", ev.DurNS))
	}
}

// Recent returns the flight-recorder contents, oldest first. The returned
// slice is a copy.
func (r *Recorder) Recent() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.ring[:r.next]...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Total returns the number of events emitted over the recorder's lifetime,
// including ones the ring has since evicted.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Span is an open phase timing started by StartSpan. The zero Span (from a
// nil Recorder) is valid; End on it is a no-op.
type Span struct {
	r     *Recorder
	phase string
	iter  int
	start time.Time
}

// StartSpan opens a span for one phase of one iteration (pass iter 0 when
// there is no iteration context). On a nil receiver it returns the zero
// Span without reading the clock.
func (r *Recorder) StartSpan(phase string, iter int) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, phase: phase, iter: iter, start: time.Now()}
}

// End closes the span, emitting a span event with the monotonic elapsed
// time, and returns that duration. attrs may be nil; when attaching
// attributes, build the map under an Enabled() guard so the disabled path
// does not allocate.
func (s Span) End(attrs map[string]float64) time.Duration {
	if s.r == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.Emit(Event{
		Type:  TypeSpan,
		Iter:  s.iter,
		Phase: s.phase,
		DurNS: d.Nanoseconds(),
		Attrs: attrs,
	})
	return d
}

// RecordSpan emits a span event for an externally timed phase (e.g. the
// optimizer's internal GP-fit time, measured inside internal/opt).
func (r *Recorder) RecordSpan(phase string, iter int, d time.Duration, attrs map[string]float64) {
	if r == nil {
		return
	}
	r.Emit(Event{Type: TypeSpan, Iter: iter, Phase: phase, DurNS: d.Nanoseconds(), Attrs: attrs})
}

// RecordEval emits an evaluation event for one finished search iteration.
func (r *Recorder) RecordEval(iter int, skipped bool, params []float64, attrs map[string]float64) {
	if r == nil {
		return
	}
	r.Emit(Event{Type: TypeEval, Iter: iter, Skipped: skipped, Params: params, Attrs: attrs})
}

// Collector is an unbounded OnEvent sink that retains every event for
// end-of-run export (trace-event JSON, artifact rewriting) — unlike the
// flight-recorder ring, which evicts. Compose its Record method into
// Options.OnEvent, possibly alongside other sinks.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Record appends one event. Safe for concurrent use.
func (c *Collector) Record(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of everything recorded so far, in arrival order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}
