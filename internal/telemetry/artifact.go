package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// The JSONL run artifact is a newline-delimited stream of Event objects:
// one eval event per iteration (in iteration order) interleaved with span
// events. It is self-describing enough for offline analysis — convergence
// plots, phase-latency breakdowns, per-metric EMD attribution — without the
// in-memory Result, and ReplayBestTrace reconstructs the Fig. 10 series
// from it exactly.

// Attribute keys used by eval events in the artifact.
const (
	// AttrError and AttrBestError carry the iteration's objective value
	// and the running minimum (the Fig. 10 series).
	AttrError     = "error"
	AttrBestError = "best_error"
	// AttrCacheHit, AttrRetried, AttrReplayed are 0/1 flags.
	AttrCacheHit = "cache_hit"
	AttrRetried  = "retried"
	AttrReplayed = "replayed"
	// AttrSimCycles is the estimated simulated cycles the evaluation cost.
	AttrSimCycles = "sim_cycles"
	// AttrWorker and AttrWays identify, on PhaseSimRun and PhaseBudgetWait
	// spans, which profiler-pool worker ran the simulation and which LLC
	// way allocation it measured (0 = the full-cache main run).
	AttrWorker = "worker"
	AttrWays   = "ways"
	// AttrRemoteWorker, AttrRetries, and AttrRemote ride on PhaseRemoteEval
	// spans and the fleet-churn instants: the dispatcher-assigned integer ID
	// of the fleet worker involved, how many failed dispatch attempts
	// preceded this result, and whether the evaluation actually ran remotely
	// (0 = the dispatcher's local fallback served it).
	AttrRemoteWorker = "remote_worker"
	AttrRetries      = "retries"
	AttrRemote       = "remote"
	// AttrFleetWorker marks a span that executed on a remote fleet worker
	// and was shipped back in the /v1/evaluate response envelope, carrying
	// the dispatcher-assigned worker ID (-1 = the local fallback backend).
	// The trace exporter routes such spans onto per-worker *process* tracks
	// and the timeline report folds them into fleet-wide statistics.
	AttrFleetWorker = "fleet_worker"
	// AttrWorkerNS rides on PhaseRemoteEval spans: the worker-side
	// evaluation duration, so dispatch overhead (round trip minus remote
	// compute) is recoverable from the artifact alone.
	AttrWorkerNS = "worker_ns"
	// AttrClockOffsetNS and AttrClockErrNS ride on PhaseRemoteEval spans of
	// remotely served evaluations: the estimated worker-clock offset applied
	// when rebasing shipped spans onto the coordinator timeline, and the
	// half-RTT uncertainty of that estimate.
	AttrClockOffsetNS = "clock_offset_ns"
	AttrClockErrNS    = "clock_err_ns"
	// AttrCacheTier rides on PhaseCacheProbe spans next to AttrCacheHit:
	// 0 = miss, 1 = the worker's local LRU served it, 2 = the coordinator's
	// shared tier served it.
	AttrCacheTier = "cache_tier"
	// AttrCholeskyAppends, AttrCholeskyRebuilds, and AttrJitterLevelMax
	// ride on PhaseGPFit spans: how many incremental O(n²) factor appends
	// vs O(n³) refactorization fallbacks the surrogate update needed, and
	// the worst jitter-escalation level any hyperparameter candidate hit
	// (a GP conditioning diagnostic; 0 = well-conditioned).
	AttrCholeskyAppends  = "cholesky_appends"
	AttrCholeskyRebuilds = "cholesky_rebuilds"
	AttrJitterLevelMax   = "jitter_level_max"
	// Diag* keys flatten one opt.Diagnostics snapshot into the Attrs of a
	// TypeSearchDiagnostics event (and a subset onto the matching
	// PhaseGPFit/PhasePropose spans). All values are derived read-only from
	// factorizations the proposal already materialized, so two
	// identically-seeded runs carry bit-equal values.
	DiagLengthScale  = "gp_length_scale"
	DiagNoiseFrac    = "gp_noise_frac"
	DiagSignalVar    = "gp_signal_var"
	DiagLogMarginal  = "gp_log_marginal"
	DiagObservations = "gp_observations"
	DiagJitterLevel  = "gp_jitter_level"
	DiagCondition    = "gp_condition"
	DiagLOORMSE      = "loo_rmse"
	DiagLOOMaxZ      = "loo_max_z"
	DiagCoverage1    = "loo_coverage1"
	DiagCoverage2    = "loo_coverage2"
	DiagCandidates   = "acq_candidates"
	DiagChosenEI     = "acq_chosen_ei"
	DiagPoolMeanEI   = "acq_pool_mean_ei"
	DiagExploitEI    = "acq_exploit_ei"
	DiagExploreEI    = "acq_explore_ei"
	// EMDPrefix prefixes per-component EMD attribution attributes
	// ("emd_l1d_mpki", "emd_ipc_curve", ...).
	EMDPrefix = "emd_"
	// PhaseNSPrefix prefixes per-phase wall-clock attributes on eval
	// events ("phase_generate_ns", "phase_profile_ns").
	PhaseNSPrefix = "phase_"
)

// WriteJSONL writes events to w, one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("telemetry: encoding artifact line %d: %w", i, err)
		}
	}
	return nil
}

// NewJSONLSink returns an OnEvent sink that streams every event to w as a
// JSONL line. Writes are serialized; errors are dropped (telemetry must
// never fail the search).
func NewJSONLSink(w io.Writer) func(Event) {
	enc := json.NewEncoder(w)
	var mu sync.Mutex
	return func(ev Event) {
		mu.Lock()
		_ = enc.Encode(&ev)
		mu.Unlock()
	}
}

// ReplayStats reports what ReplayBestTraceStats consumed.
type ReplayStats struct {
	// Evals counts eval events contributing to the series (skipped
	// iterations excluded).
	Evals int
	// Malformed counts lines that did not parse as JSON events — usually a
	// trailing line truncated by a writer that died mid-flush. Callers that
	// care should warn when this is nonzero.
	Malformed int
}

// ReplayBestTrace reads a JSONL run artifact and reconstructs the
// best-error-so-far series: the best_error attribute of every non-skipped
// eval event, in stream order. Unknown line types are ignored, so artifacts
// may carry extra header or span lines; lines that do not parse as JSON
// (e.g. truncated by a dying writer) are skipped — use
// ReplayBestTraceStats to observe how many.
func ReplayBestTrace(r io.Reader) ([]float64, error) {
	out, _, err := ReplayBestTraceStats(r)
	return out, err
}

// ReplayBestTraceStats is ReplayBestTrace plus consumption statistics.
// Malformed (unparseable) lines are tolerated and counted; a syntactically
// valid eval event missing best_error is still a hard error, because it
// means the artifact convention was broken, not the file truncated.
func ReplayBestTraceStats(r io.Reader) ([]float64, ReplayStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []float64
	var st ReplayStats
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			st.Malformed++
			continue
		}
		if ev.Type != TypeEval || ev.Skipped {
			continue
		}
		best, ok := ev.Attrs[AttrBestError]
		if !ok {
			return nil, st, fmt.Errorf("telemetry: artifact line %d: eval event without %s", line, AttrBestError)
		}
		out = append(out, best)
		st.Evals++
	}
	if err := sc.Err(); err != nil {
		return nil, st, fmt.Errorf("telemetry: reading artifact: %w", err)
	}
	return out, st, nil
}
