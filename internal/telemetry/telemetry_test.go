package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingBufferEvictsOldestFirst(t *testing.T) {
	r := New(Options{Capacity: 4})
	for i := 0; i < 7; i++ {
		r.Emit(Event{Type: TypeSpan, Iter: i})
	}
	if got := r.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	recent := r.Recent()
	if len(recent) != 4 {
		t.Fatalf("Recent holds %d events, want 4", len(recent))
	}
	for i, ev := range recent {
		if want := 3 + i; ev.Iter != want {
			t.Fatalf("Recent[%d].Iter = %d, want %d (oldest first)", i, ev.Iter, want)
		}
	}
}

func TestRecentPartialRing(t *testing.T) {
	r := New(Options{Capacity: 8})
	r.Emit(Event{Type: TypeEval, Iter: 0})
	r.Emit(Event{Type: TypeEval, Iter: 1})
	recent := r.Recent()
	if len(recent) != 2 || recent[0].Iter != 0 || recent[1].Iter != 1 {
		t.Fatalf("partial ring Recent = %+v", recent)
	}
}

func TestSpanEmitsDuration(t *testing.T) {
	var got []Event
	r := New(Options{OnEvent: func(ev Event) { got = append(got, ev) }})
	sp := r.StartSpan(PhasePropose, 3)
	time.Sleep(time.Millisecond)
	d := sp.End(map[string]float64{"batch": 2})
	if d <= 0 {
		t.Fatalf("span duration = %v, want > 0", d)
	}
	if len(got) != 1 {
		t.Fatalf("OnEvent called %d times, want 1", len(got))
	}
	ev := got[0]
	if ev.Type != TypeSpan || ev.Phase != PhasePropose || ev.Iter != 3 {
		t.Fatalf("span event = %+v", ev)
	}
	if ev.DurNS != d.Nanoseconds() {
		t.Fatalf("DurNS = %d, want %d", ev.DurNS, d.Nanoseconds())
	}
	if ev.Attrs["batch"] != 2 {
		t.Fatalf("attrs = %v", ev.Attrs)
	}
	if ev.TimeNS == 0 {
		t.Fatalf("TimeNS not stamped")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Emit(Event{Type: TypeLog})
	r.RecordSpan(PhaseGPFit, 0, time.Second, nil)
	r.RecordEval(0, false, nil, nil)
	if d := r.StartSpan(PhaseProfile, 1).End(nil); d != 0 {
		t.Fatalf("nil span duration = %v, want 0", d)
	}
	if r.Recent() != nil || r.Total() != 0 {
		t.Fatal("nil recorder returned state")
	}
}

// TestDisabledSpanNoAllocs demonstrates the acceptance criterion: the
// disabled telemetry path is a nil check with zero allocations.
func TestDisabledSpanNoAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.StartSpan(PhaseProfile, 7)
		sp.End(nil)
		r.RecordEval(7, false, nil, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan(PhaseProfile, i)
		sp.End(nil)
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	r := New(Options{Capacity: 64})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan(PhaseProfile, i)
		sp.End(nil)
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	r := New(Options{Capacity: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.RecordSpan(PhaseProfile, i, time.Microsecond, nil)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Total(); got != 800 {
		t.Fatalf("Total = %d, want 800", got)
	}
	if got := len(r.Recent()); got != 16 {
		t.Fatalf("Recent = %d events, want 16", got)
	}
}

func TestFloat64Atomic(t *testing.T) {
	var f Float64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := f.Load(); got != 4000 {
		t.Fatalf("Load = %g, want 4000", got)
	}
	f.Store(-1.25)
	if got := f.Load(); got != -1.25 {
		t.Fatalf("Load after Store = %g, want -1.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // +Inf
	snap := h.Snapshot()
	if snap.Count != 4 {
		t.Fatalf("Count = %d, want 4", snap.Count)
	}
	wantCum := []uint64{1, 3, 3, 4}
	for i, want := range wantCum {
		if snap.Cumulative[i] != want {
			t.Fatalf("Cumulative = %v, want %v", snap.Cumulative, wantCum)
		}
	}
	// Cumulative counts must be monotone and end at Count.
	for i := 1; i < len(snap.Cumulative); i++ {
		if snap.Cumulative[i] < snap.Cumulative[i-1] {
			t.Fatalf("Cumulative not monotone: %v", snap.Cumulative)
		}
	}
	if snap.Cumulative[len(snap.Cumulative)-1] != snap.Count {
		t.Fatalf("+Inf bucket %d != Count %d", snap.Cumulative[len(snap.Cumulative)-1], snap.Count)
	}
	wantSum := 0.0005 + 0.005 + 0.005 + 1
	if diff := snap.Sum - wantSum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Sum = %g, want %g", snap.Sum, wantSum)
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec(nil)
	v.Observe(PhasePropose, time.Millisecond)
	v.Observe(PhaseProfile, time.Millisecond)
	v.Observe(PhaseProfile, 2*time.Millisecond)
	labels := v.Labels()
	if len(labels) != 2 || labels[0] != PhaseProfile || labels[1] != PhasePropose {
		t.Fatalf("Labels = %v", labels)
	}
	if got := v.Get(PhaseProfile).Snapshot().Count; got != 2 {
		t.Fatalf("profile count = %d, want 2", got)
	}
	if v.Get("never-observed") != nil {
		t.Fatal("Get on unobserved label returned a histogram")
	}
}

func TestLineLoggerDeterministicOutput(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLineLogger(&buf)
	lg.Info("iter", "n", 3, "err", "0.1234", "params", "qps=10 ratio=0.5")
	lg.Debug("hidden") // below the Info threshold
	lg.WithGroup("job").With("id", "job-1").Info("running")
	got := buf.String()
	want := "iter n=3 err=0.1234 params=\"qps=10 ratio=0.5\"\n" +
		"running job.id=job-1\n"
	if got != want {
		t.Fatalf("log output:\n%q\nwant:\n%q", got, want)
	}
}

func TestJSONLRoundTripReplay(t *testing.T) {
	events := []Event{
		{Type: TypeLog, Msg: "header line"},
		{Type: TypeSpan, Phase: PhasePropose, Iter: 0, DurNS: 100},
		{Type: TypeEval, Iter: 0, Attrs: map[string]float64{AttrError: 0.9, AttrBestError: 0.9}},
		{Type: TypeEval, Iter: 1, Skipped: true},
		{Type: TypeEval, Iter: 2, Attrs: map[string]float64{AttrError: 0.4, AttrBestError: 0.4}},
		{Type: TypeEval, Iter: 3, Attrs: map[string]float64{AttrError: 0.7, AttrBestError: 0.4}},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	trace, err := ReplayBestTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.9, 0.4, 0.4}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestReplayBestTraceRejectsBrokenEval(t *testing.T) {
	// A syntactically valid eval without best_error breaks the artifact
	// convention — that stays a hard error.
	in := strings.NewReader(`{"type":"eval","iter":0}` + "\n")
	if _, err := ReplayBestTrace(in); err == nil {
		t.Fatal("eval event without best_error accepted")
	}
}

// TestReplayBestTraceTruncatedArtifact simulates a writer dying mid-flush:
// the trailing line is cut inside a JSON object. The replay must keep the
// intact prefix and count the loss rather than fail.
func TestReplayBestTraceTruncatedArtifact(t *testing.T) {
	events := []Event{
		{Type: TypeLog, Msg: "header"},
		{Type: TypeEval, Iter: 0, Attrs: map[string]float64{AttrBestError: 0.9}},
		{Type: TypeEval, Iter: 1, Attrs: map[string]float64{AttrBestError: 0.5}},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	// Append a final event and cut it mid-object.
	var tail bytes.Buffer
	if err := WriteJSONL(&tail, []Event{{Type: TypeEval, Iter: 2,
		Attrs: map[string]float64{AttrBestError: 0.3}}}); err != nil {
		t.Fatal(err)
	}
	truncated := full + tail.String()[:tail.Len()/2]

	trace, st, err := ReplayBestTraceStats(strings.NewReader(truncated))
	if err != nil {
		t.Fatalf("truncated artifact should replay: %v", err)
	}
	if fmt.Sprint(trace) != "[0.9 0.5]" {
		t.Fatalf("trace = %v", trace)
	}
	if st.Evals != 2 || st.Malformed != 1 {
		t.Fatalf("stats = %+v, want 2 evals, 1 malformed", st)
	}

	// Non-JSON garbage lines are tolerated the same way.
	trace, st, err = ReplayBestTraceStats(strings.NewReader("not json\n" + full))
	if err != nil || len(trace) != 2 || st.Malformed != 1 {
		t.Fatalf("garbage line: trace=%v stats=%+v err=%v", trace, st, err)
	}
}

func TestJSONLSinkStreams(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	r := New(Options{OnEvent: sink})
	for i := 0; i < 3; i++ {
		r.RecordEval(i, false, nil, map[string]float64{AttrBestError: float64(i)})
	}
	trace, err := ReplayBestTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(trace) != "[0 1 2]" {
		t.Fatalf("trace = %v", trace)
	}
}
