package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// traceFixture builds a small event stream exercising every track type: two
// overlapping eval-lane profiles, two workers with overlapping sim runs on
// worker 0 (forcing an overflow lane), a budget wait, a GP fit with a
// refactorization, and eval instants including a cache hit.
func traceFixture() []Event {
	ms := func(n int64) int64 { return n * int64(time.Millisecond) }
	span := func(phase string, iter int, start, end int64, attrs map[string]float64) Event {
		return Event{Type: TypeSpan, Phase: phase, Iter: iter,
			TimeNS: ms(end), DurNS: ms(end - start), Attrs: attrs}
	}
	return []Event{
		span(PhaseProfile, 0, 0, 30, nil),
		span(PhaseProfile, 1, 10, 40, nil), // overlaps → second eval lane
		span(PhaseSimRun, 0, 0, 10, map[string]float64{AttrWorker: 0, AttrWays: 4}),
		span(PhaseSimRun, 0, 5, 15, map[string]float64{AttrWorker: 0, AttrWays: 8}), // overlap on worker 0 → overflow lane
		span(PhaseSimRun, 1, 12, 22, map[string]float64{AttrWorker: 1, AttrWays: 4}),
		span(PhaseBudgetWait, 1, 11, 12, map[string]float64{AttrWorker: 1}),
		span(PhaseGPFit, 2, 41, 43, map[string]float64{
			AttrCholeskyAppends: 3, AttrCholeskyRebuilds: 1, AttrJitterLevelMax: 2}),
		span(PhaseAcquisition, 2, 43, 45, nil),
		{Type: TypeEval, Iter: 0, TimeNS: ms(31),
			Attrs: map[string]float64{AttrError: 0.5, AttrBestError: 0.5}},
		{Type: TypeEval, Iter: 1, TimeNS: ms(41),
			Attrs: map[string]float64{AttrError: 0.4, AttrBestError: 0.4, AttrCacheHit: 1}},
	}
}

func TestWriteTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, traceFixture()); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Tracks: search, optimizer, eval lane 0+1, worker 0, worker 0 (+1),
	// worker 1.
	if st.Tracks != 7 {
		t.Errorf("Tracks = %d, want 7", st.Tracks)
	}
	if st.WorkerTracks != 2 {
		t.Errorf("WorkerTracks = %d, want 2 (overflow lanes excluded)", st.WorkerTracks)
	}
	// Spans: 2 profile + 3 sim + gp_fit + acquisition (budget.wait renders
	// as an instant). Instants: 2 evals + cache hit + budget wait +
	// cholesky refactorization.
	if st.Spans != 7 {
		t.Errorf("Spans = %d, want 7", st.Spans)
	}
	if st.Instants != 5 {
		t.Errorf("Instants = %d, want 5", st.Instants)
	}
	out := buf.String()
	for _, want := range []string{
		`"eval lane 1"`, `"worker 0 (+1)"`, `"cache hit"`, `"budget wait"`,
		`"cholesky refactorization"`, `"displayTimeUnit":"ms"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}
}

func TestWriteTraceDropsUnstampedEvents(t *testing.T) {
	var buf bytes.Buffer
	events := []Event{
		{Type: TypeEval, Iter: 0}, // synthesized from a checkpoint: no TimeNS
		{Type: TypeLog, Msg: "header"},
	}
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Spans != 0 || st.Instants != 0 {
		t.Errorf("unstamped events leaked into the trace: %+v", st)
	}
	// The drops are counted, not silent: the exporter records them in the
	// trace metadata and the validator reads them back.
	if st.DroppedUnstamped != 2 {
		t.Errorf("DroppedUnstamped = %d, want 2", st.DroppedUnstamped)
	}
	if !strings.Contains(buf.String(), `"dropped_unstamped":2`) {
		t.Error("trace metadata missing the dropped_unstamped count")
	}
}

// TestWriteTraceFleetProcesses: spans tagged with the fleet-worker attribute
// render as separate Perfetto processes — per-worker sim tracks, eval lanes,
// and budget-wait instants — while untagged spans stay on the coordinator's
// pid.
func TestWriteTraceFleetProcesses(t *testing.T) {
	ms := func(n int64) int64 { return n * int64(time.Millisecond) }
	fleet := func(fw float64, extra map[string]float64) map[string]float64 {
		attrs := map[string]float64{AttrFleetWorker: fw}
		for k, v := range extra {
			attrs[k] = v
		}
		return attrs
	}
	events := []Event{
		// Coordinator-local sim span: stays on pid 1.
		{Type: TypeSpan, Phase: PhaseSimRun, TimeNS: ms(10), DurNS: ms(10),
			Attrs: map[string]float64{AttrWorker: 0}},
		// Fleet worker 1: two sim lanes, a budget wait, and a cache probe.
		{Type: TypeSpan, Phase: PhaseSimRun, Iter: 3, TimeNS: ms(20), DurNS: ms(8),
			Attrs: fleet(1, map[string]float64{AttrWorker: 0})},
		{Type: TypeSpan, Phase: PhaseSimRun, Iter: 3, TimeNS: ms(21), DurNS: ms(8),
			Attrs: fleet(1, map[string]float64{AttrWorker: 1})},
		{Type: TypeSpan, Phase: PhaseBudgetWait, Iter: 3, TimeNS: ms(13), DurNS: ms(1),
			Attrs: fleet(1, map[string]float64{AttrWorker: 2})},
		{Type: TypeSpan, Phase: PhaseCacheProbe, Iter: 3, TimeNS: ms(12), DurNS: ms(1),
			Attrs: fleet(1, map[string]float64{AttrCacheHit: 0})},
		// Dispatcher fallback (-1): its shipped spans get their own process.
		{Type: TypeSpan, Phase: PhaseSimRun, Iter: 4, TimeNS: ms(30), DurNS: ms(5),
			Attrs: fleet(-1, map[string]float64{AttrWorker: 0})},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Processes != 3 {
		t.Errorf("Processes = %d, want 3 (datamime + fleet worker 1 + fleet fallback)", st.Processes)
	}
	if st.FleetProcesses != 2 {
		t.Errorf("FleetProcesses = %d, want 2", st.FleetProcesses)
	}
	// 4 fleet-routed spans + 1 local sim + 1 cache probe span = 5 "X"
	// (budget wait renders as an instant).
	if st.Spans != 5 {
		t.Errorf("Spans = %d, want 5", st.Spans)
	}
	out := buf.String()
	for _, want := range []string{
		`"fleet worker 1"`, `"fleet fallback"`, `"budget wait"`, `"cache.probe"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}
}

func TestWriteTraceTimestampsRelativeToBase(t *testing.T) {
	var buf bytes.Buffer
	events := []Event{
		{Type: TypeSpan, Phase: PhaseProfile, TimeNS: 5_000_000, DurNS: 2_000_000},
	}
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	for _, ev := range tf.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		if ev.TS != 0 {
			t.Errorf("span ts = %g µs, want 0 (relative to earliest start)", ev.TS)
		}
		if ev.Dur != 2000 {
			t.Errorf("span dur = %g µs, want 2000", ev.Dur)
		}
	}
}

func TestAssignLanesGreedyColoring(t *testing.T) {
	ivs := []spanInterval{
		{start: 0, end: 10},
		{start: 5, end: 15},  // overlaps lane 0 → lane 1
		{start: 10, end: 20}, // lane 0 free again
		{start: 12, end: 14}, // both lanes busy → lane 2
	}
	lanes := assignLanes(ivs)
	want := []int{0, 1, 0, 2}
	for i := range want {
		if lanes[i] != want[i] {
			t.Errorf("lanes = %v, want %v", lanes, want)
			break
		}
	}
}

func TestValidateTraceRejectsUnnamedTrack(t *testing.T) {
	raw := `{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":42,"ts":0,"dur":1}],"displayTimeUnit":"ms"}`
	if _, err := ValidateTrace(strings.NewReader(raw)); err == nil {
		t.Fatal("trace with an unnamed track validated")
	}
}

func BenchmarkTraceExport(b *testing.B) {
	// A realistic mid-size run: 200 iterations with per-candidate phase
	// spans, two workers' sim runs, and eval instants.
	var events []Event
	ms := func(n int64) int64 { return n * int64(time.Millisecond) }
	for i := 0; i < 200; i++ {
		t0 := int64(i) * 50
		events = append(events,
			Event{Type: TypeSpan, Phase: PhaseGenerate, Iter: i, TimeNS: ms(t0 + 5), DurNS: ms(5)},
			Event{Type: TypeSpan, Phase: PhaseProfile, Iter: i, TimeNS: ms(t0 + 45), DurNS: ms(40)},
			Event{Type: TypeSpan, Phase: PhaseSimRun, Iter: i, TimeNS: ms(t0 + 25), DurNS: ms(18),
				Attrs: map[string]float64{AttrWorker: float64(i % 2), AttrWays: 4}},
			Event{Type: TypeSpan, Phase: PhaseSimRun, Iter: i, TimeNS: ms(t0 + 44), DurNS: ms(18),
				Attrs: map[string]float64{AttrWorker: float64((i + 1) % 2), AttrWays: 8}},
			Event{Type: TypeEval, Iter: i, TimeNS: ms(t0 + 46),
				Attrs: map[string]float64{AttrError: 0.5, AttrBestError: 0.5}},
		)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteTrace(&buf, events); err != nil {
			b.Fatal(err)
		}
	}
}
