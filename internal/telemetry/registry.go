package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registry is a small metrics registry — counters, gauges, and histogram
// families with labels — with deterministic Prometheus text exposition
// (v0.0.4). It replaces ad-hoc atomic counters: instrumented code holds the
// typed handles (Counter, Gauge, ...) returned at registration, and an HTTP
// handler calls WritePrometheus per scrape. Families render sorted by name,
// and samples within a family sorted by label values, so output is stable
// across scrapes and suitable for golden tests.
//
// Naming follows the Prometheus conventions used throughout datamimed:
// a `datamimed_` (or tool-appropriate) prefix, `_total` suffix on counters,
// base units in the name (`_seconds`, `_bytes`, `_cycles`).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Sample is one metric sample produced by a collector callback. Labels are
// values positionally matching the family's registered label names.
type Sample struct {
	Labels []string
	Value  float64
}

type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string

	// Exactly one of the following backs the family.
	scalar  *Float64        // Counter / Gauge
	vec     *labeledVec     // CounterVec / GaugeVec
	collect func() []Sample // *Func and Collector families
	hist    *HistogramVec   // histogram family (single label)
	histLbl string          // that label's name
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic("telemetry: duplicate metric registration: " + f.name)
	}
	r.families[f.name] = f
}

// Counter is a monotonically increasing metric.
type Counter struct{ v Float64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v; negative deltas are dropped (counters are monotonic).
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.v.Add(v)
	}
}

// Value reads the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v Float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adds v (negative to decrease).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// NewCounter registers and returns a label-less counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", scalar: &c.v})
	return c
}

// NewGauge registers and returns a label-less gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: "gauge", scalar: &g.v})
	return g
}

// NewCounterFunc registers a counter whose value is read from fn at scrape
// time — for totals already tracked elsewhere (e.g. an LRU cache's own
// hit counter).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "counter",
		collect: func() []Sample { return []Sample{{Value: fn()}} }})
}

// NewGaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge",
		collect: func() []Sample { return []Sample{{Value: fn()}} }})
}

// NewCollector registers a family whose full sample set (dynamic label
// values included) is produced by fn at scrape time — for label sets that
// come and go, like per-job gauges. typ is "counter" or "gauge"; labels are
// the label names each Sample's Labels values bind to, in order.
func (r *Registry) NewCollector(name, help, typ string, labels []string, fn func() []Sample) {
	r.register(&family{name: name, help: help, typ: typ, labels: labels, collect: fn})
}

// labeledVec stores one counter per label-value tuple, created lazily.
type labeledVec struct {
	mu   sync.Mutex
	m    map[string]*Counter
	keys map[string][]string
}

func (v *labeledVec) get(values []string) *Counter {
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.m[key]
	if c == nil {
		c = &Counter{}
		v.m[key] = c
		v.keys[key] = append([]string(nil), values...)
	}
	return c
}

// CounterVec is a counter family with fixed label names, whose series are
// created lazily per label-value tuple.
type CounterVec struct {
	labels []string
	vec    *labeledVec
}

// With returns the counter for the given label values (positional, matching
// the registered label names).
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %d label values for %d labels", len(values), len(v.labels)))
	}
	return v.vec.get(values)
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{
		labels: append([]string(nil), labels...),
		vec:    &labeledVec{m: make(map[string]*Counter), keys: make(map[string][]string)},
	}
	r.register(&family{name: name, help: help, typ: "counter", labels: v.labels, vec: v.vec})
	return v
}

// NewHistogramVec registers a latency-histogram family keyed by one label
// (nil bounds select DefaultLatencyBounds) and returns the underlying vec;
// observe with vec.Observe(labelValue, duration). The family renders the
// standard _bucket/_sum/_count series, and renders nothing until first
// observation.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := NewHistogramVec(bounds)
	r.register(&family{name: name, help: help, typ: "histogram", hist: v, histLbl: label})
	return v
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format, families sorted by name and samples by label values.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.write(w)
	}
}

func (f *family) write(w io.Writer) {
	switch {
	case f.hist != nil:
		f.writeHistogram(w)
	default:
		samples := f.snapshot()
		if len(samples) == 0 {
			return
		}
		f.header(w)
		for _, s := range samples {
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.Labels), formatValue(s.Value))
		}
	}
}

func (f *family) header(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
}

// snapshot materializes the family's current samples, sorted by label
// values. Scalar families always yield one sample; collector families yield
// whatever fn returns (possibly none).
func (f *family) snapshot() []Sample {
	var samples []Sample
	switch {
	case f.scalar != nil:
		samples = []Sample{{Value: f.scalar.Load()}}
	case f.vec != nil:
		f.vec.mu.Lock()
		for key, c := range f.vec.m {
			samples = append(samples, Sample{Labels: f.vec.keys[key], Value: c.Value()})
		}
		f.vec.mu.Unlock()
	case f.collect != nil:
		samples = f.collect()
	}
	sort.Slice(samples, func(i, j int) bool {
		return strings.Join(samples[i].Labels, "\x00") < strings.Join(samples[j].Labels, "\x00")
	})
	return samples
}

func (f *family) writeHistogram(w io.Writer) {
	labels := f.hist.Labels()
	if len(labels) == 0 {
		return
	}
	f.header(w)
	for _, lv := range labels {
		h := f.hist.Get(lv)
		if h == nil {
			continue
		}
		snap := h.Snapshot()
		for i, b := range snap.Bounds {
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n",
				f.name, f.histLbl, lv, formatValue(b), snap.Cumulative[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", f.name, f.histLbl, lv, snap.Count)
		fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", f.name, f.histLbl, lv, formatValue(snap.Sum))
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", f.name, f.histLbl, lv, snap.Count)
	}
}

// labelString renders `{a="x",b="y"}`, or "" for label-less samples.
func labelString(names, values []string) string {
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		name := "label"
		if i < len(names) {
			name = names[i]
		}
		fmt.Fprintf(&b, "%s=%q", name, v)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus clients expect
// (shortest round-trippable decimal).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ObserveSince is a convenience for timing a code region into a histogram
// family: h.Observe(label, time.Since(start)).
func ObserveSince(h *HistogramVec, label string, start time.Time) {
	h.Observe(label, time.Since(start))
}
