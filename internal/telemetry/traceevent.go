package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Trace-event export: WriteTrace turns a run's event stream into the
// Chrome/Perfetto trace-event JSON object format, loadable in
// https://ui.perfetto.dev or chrome://tracing.
//
// Track layout of the coordinator process (pid 1 "datamime"):
//
//	tid 1      "search"      — propose/observe spans; instant events for
//	                           each finished eval and each cache hit
//	tid 2      "optimizer"   — gp_fit/acquisition spans; instant events
//	                           when a GP fit fell back to a Cholesky
//	                           refactorization
//	tid 3      "fleet"       — instant events for fleet churn (worker
//	                           registrations and deregistrations) and for
//	                           dispatch retries/fallbacks; present only
//	                           when the run dispatched to remote workers
//	tid 10+L   "eval lane L" — per-candidate spans (generate, profile,
//	                           profile.run, profile.curves), greedily
//	                           packed into as few non-overlapping lanes
//	                           as the run's parallelism needed
//	tid 100+   "worker W"    — one track per profiler-pool worker, carrying
//	                           its profile.sim spans; budget-semaphore
//	                           waits appear as instant events. When
//	                           concurrent candidates make one worker's
//	                           spans overlap, extra "(+k)" lanes absorb
//	                           the overflow.
//	tid 10000+ "remote worker W" — one track per remote evaluation worker,
//	                           carrying its eval.remote round-trip spans;
//	                           evaluations that fell back in-process land
//	                           on a "remote fallback" track.
//
// Spans that executed on a remote fleet worker and were shipped back in the
// /v1/evaluate response envelope (marked by AttrFleetWorker, rebased onto
// the coordinator clock before emission) render as separate *processes*:
// pid 100+W "fleet worker W" (pid 99 "fleet fallback" for the local
// fallback backend), each with its own sim-worker tracks, eval lanes, and
// budget-wait instants — one Perfetto file shows coordinator scheduling and
// remote execution side by side.
//
// Timestamps are microseconds from the earliest event in the stream, so
// traces from different runs all start at zero. The exporter is a pure
// function of the event stream: it never touches the search. Events without
// wall-clock stamps (TimeNS == 0, e.g. evals synthesized from a restored
// checkpoint) cannot be placed on a timeline; they are counted in the
// trace's otherData.dropped_unstamped metadata rather than silently lost.

const (
	tracePID          = 1
	traceTIDSearch    = 1
	traceTIDOptimizer = 2
	traceTIDFleet     = 3
	traceTIDEvalBase  = 10
	traceTIDWorker    = 100
	// traceTIDRemote bases the remote-worker lanes high enough that no
	// realistic profiler-pool worker index collides with them.
	traceTIDRemote = 10000
	// workerLaneStride spaces per-worker overflow lanes; lanes beyond it
	// fold into the last one (overlap is legal in the format).
	workerLaneStride = 8
	// traceFleetPIDBase maps fleet worker W to pid traceFleetPIDBase+W; the
	// dispatcher's local fallback (worker ID -1) lands on the pid just below.
	traceFleetPIDBase = 100
)

// traceEvent is one entry of the trace-event JSON array.
type traceEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid,omitempty"`
	TS    float64                `json:"ts"`
	Dur   float64                `json:"dur,omitempty"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent           `json:"traceEvents"`
	DisplayTimeUnit string                 `json:"displayTimeUnit"`
	OtherData       map[string]interface{} `json:"otherData,omitempty"`
}

// spanInterval is a span event with resolved start/end nanoseconds.
type spanInterval struct {
	ev         Event
	start, end int64
}

func spanBounds(ev Event) spanInterval {
	return spanInterval{ev: ev, start: ev.TimeNS - ev.DurNS, end: ev.TimeNS}
}

// fleetProc accumulates the spans shipped back from one fleet worker.
type fleetProc struct {
	sims  map[int][]spanInterval // profiler-pool worker index → profile.sim
	evals []spanInterval         // profile.run/profile.curves/cache.probe/...
	waits []Event                // budget.wait instants
}

// WriteTrace renders events (a run artifact's stream, in any order) as
// trace-event JSON. Events without wall-clock stamps (TimeNS == 0) are
// omitted from the timeline and counted in otherData.dropped_unstamped.
func WriteTrace(w io.Writer, events []Event) error {
	var base int64 = -1
	dropped := 0
	for _, ev := range events {
		if ev.TimeNS == 0 {
			dropped++
			continue
		}
		start := ev.TimeNS
		if ev.Type == TypeSpan {
			start = ev.TimeNS - ev.DurNS
		}
		if base < 0 || start < base {
			base = start
		}
	}
	if base < 0 {
		base = 0
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	var out []traceEvent
	meta := func(pid, tid int, name string, sortIndex int) {
		out = append(out,
			traceEvent{Name: "thread_name", Phase: "M", PID: pid, TID: tid,
				Args: map[string]interface{}{"name": name}},
			traceEvent{Name: "thread_sort_index", Phase: "M", PID: pid, TID: tid,
				Args: map[string]interface{}{"sort_index": sortIndex}},
		)
	}
	process := func(pid int, name string) {
		out = append(out,
			traceEvent{Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]interface{}{"name": name}},
			traceEvent{Name: "process_sort_index", Phase: "M", PID: pid,
				Args: map[string]interface{}{"sort_index": pid}},
		)
	}
	process(tracePID, "datamime")
	meta(tracePID, traceTIDSearch, "search", traceTIDSearch)
	meta(tracePID, traceTIDOptimizer, "optimizer", traceTIDOptimizer)

	span := func(pid, tid int, iv spanInterval, args map[string]interface{}) {
		out = append(out, traceEvent{
			Name: iv.ev.Phase, Phase: "X", PID: pid, TID: tid,
			TS: us(iv.start), Dur: float64(iv.ev.DurNS) / 1e3, Args: args,
		})
	}
	instant := func(pid, tid int, name string, ns int64, args map[string]interface{}) {
		out = append(out, traceEvent{
			Name: name, Phase: "i", PID: pid, TID: tid,
			TS: us(ns), Scope: "t", Args: args,
		})
	}

	var evalSpans []spanInterval
	workerSpans := map[int][]spanInterval{}
	remoteSpans := map[int][]spanInterval{}
	fleetProcs := map[int]*fleetProc{}
	fleetUsed := false
	for _, ev := range events {
		if ev.TimeNS == 0 {
			continue
		}
		switch ev.Type {
		case TypeEval:
			args := map[string]interface{}{"iter": ev.Iter}
			if v, ok := ev.Attrs[AttrError]; ok {
				args["error"] = v
			}
			if v, ok := ev.Attrs[AttrBestError]; ok {
				args["best_error"] = v
			}
			if ev.Skipped {
				args["skipped"] = true
			}
			instant(tracePID, traceTIDSearch, "eval", ev.TimeNS, args)
			if ev.Attrs[AttrCacheHit] > 0 {
				instant(tracePID, traceTIDSearch, "cache hit", ev.TimeNS,
					map[string]interface{}{"iter": ev.Iter})
			}
		case TypeSpan:
			iv := spanBounds(ev)
			if fw, remote := ev.Attrs[AttrFleetWorker]; remote {
				// A span shipped back from a fleet worker: route it to that
				// worker's process rather than the coordinator's tracks.
				fp := fleetProcs[int(fw)]
				if fp == nil {
					fp = &fleetProc{sims: map[int][]spanInterval{}}
					fleetProcs[int(fw)] = fp
				}
				switch ev.Phase {
				case PhaseSimRun:
					wkr := int(ev.Attrs[AttrWorker])
					fp.sims[wkr] = append(fp.sims[wkr], iv)
				case PhaseBudgetWait:
					fp.waits = append(fp.waits, ev)
				default:
					fp.evals = append(fp.evals, iv)
				}
				continue
			}
			switch ev.Phase {
			case PhasePropose, PhaseObserve:
				span(tracePID, traceTIDSearch, iv, spanArgs(ev))
			case PhaseGPFit, PhaseAcquisition:
				span(tracePID, traceTIDOptimizer, iv, spanArgs(ev))
				if ev.Phase == PhaseGPFit && ev.Attrs[AttrCholeskyRebuilds] > 0 {
					instant(tracePID, traceTIDOptimizer, "cholesky refactorization", ev.TimeNS,
						map[string]interface{}{
							"rebuilds":         ev.Attrs[AttrCholeskyRebuilds],
							"jitter_level_max": ev.Attrs[AttrJitterLevelMax],
						})
				}
			case PhaseGenerate, PhaseProfile, PhaseProfileRun, PhaseProfileCurves:
				evalSpans = append(evalSpans, iv)
			case PhaseSimRun:
				wkr := int(ev.Attrs[AttrWorker])
				workerSpans[wkr] = append(workerSpans[wkr], iv)
			case PhaseBudgetWait:
				wkr := int(ev.Attrs[AttrWorker])
				instant(tracePID, traceTIDWorker+wkr*workerLaneStride, "budget wait", iv.start,
					map[string]interface{}{
						"wait_ms": float64(ev.DurNS) / 1e6,
						"worker":  wkr,
						"iter":    ev.Iter,
					})
			case PhaseRemoteEval:
				wkr := int(ev.Attrs[AttrRemoteWorker])
				remoteSpans[wkr] = append(remoteSpans[wkr], iv)
			case PhaseWorkerRegister, PhaseWorkerDeregister,
				PhaseDispatchRetry, PhaseDispatchFallback:
				fleetUsed = true
				instant(tracePID, traceTIDFleet, ev.Phase, ev.TimeNS, spanArgs(ev))
			default:
				// Unknown phases land on the search track so nothing a
				// future instrumentation site emits silently disappears.
				span(tracePID, traceTIDSearch, iv, spanArgs(ev))
			}
		}
	}

	// laneTracks packs intervals into non-overlapping lanes under one pid and
	// emits them with per-lane thread metadata named via nameFor.
	laneTracks := func(pid, tidBase int, ivs []spanInterval, nameFor func(lane int) string) {
		ls := assignLanes(ivs)
		maxL := -1
		for i, iv := range ivs {
			lane := ls[i]
			if lane >= workerLaneStride {
				lane = workerLaneStride - 1
			}
			if lane > maxL {
				maxL = lane
			}
			span(pid, tidBase+lane, iv, spanArgs(iv.ev))
		}
		for l := 0; l <= maxL; l++ {
			meta(pid, tidBase+l, nameFor(l), tidBase+l)
		}
	}

	// Per-candidate spans: greedy interval coloring into "eval lane" tracks.
	lanes := assignLanes(evalSpans)
	maxLane := -1
	for i, iv := range evalSpans {
		if lanes[i] > maxLane {
			maxLane = lanes[i]
		}
		span(tracePID, traceTIDEvalBase+lanes[i], iv, spanArgs(iv.ev))
	}
	for l := 0; l <= maxLane; l++ {
		meta(tracePID, traceTIDEvalBase+l, fmt.Sprintf("eval lane %d", l), traceTIDEvalBase+l)
	}

	// Worker tracks: one per pool worker, overflow lanes per worker when
	// concurrent candidates overlap the same worker index.
	emitWorkerTracks := func(pid int, spans map[int][]spanInterval) {
		workers := make([]int, 0, len(spans))
		for wkr := range spans {
			workers = append(workers, wkr)
		}
		sort.Ints(workers)
		for _, wkr := range workers {
			base := traceTIDWorker + wkr*workerLaneStride
			w := wkr
			laneTracks(pid, base, spans[wkr], func(lane int) string {
				if lane == 0 {
					return fmt.Sprintf("worker %d", w)
				}
				return fmt.Sprintf("worker %d (+%d)", w, lane)
			})
		}
	}
	emitWorkerTracks(tracePID, workerSpans)

	// Remote evaluation lanes: one track per remote worker ID (a dispatched
	// run's eval.remote round trips), with the local-fallback lane (worker
	// ID -1) named distinctly. The fleet track appears only when the run
	// recorded fleet or dispatch activity.
	if fleetUsed {
		meta(tracePID, traceTIDFleet, "fleet", traceTIDFleet)
	}
	remotes := make([]int, 0, len(remoteSpans))
	for wkr := range remoteSpans {
		remotes = append(remotes, wkr)
	}
	sort.Ints(remotes)
	for slot, wkr := range remotes {
		trackBase := traceTIDRemote + slot*workerLaneStride
		name := fmt.Sprintf("remote worker %d", wkr)
		if wkr < 0 {
			name = "remote fallback"
		}
		laneTracks(tracePID, trackBase, remoteSpans[wkr], func(lane int) string {
			if lane == 0 {
				return name
			}
			return fmt.Sprintf("%s (+%d)", name, lane)
		})
	}

	// Fleet worker processes: spans shipped back over the wire, one process
	// per dispatcher worker ID, mirroring the coordinator's internal layout
	// (eval lanes + per-pool-worker sim tracks + budget-wait instants).
	fleetIDs := make([]int, 0, len(fleetProcs))
	for fw := range fleetProcs {
		fleetIDs = append(fleetIDs, fw)
	}
	sort.Ints(fleetIDs)
	for _, fw := range fleetIDs {
		fp := fleetProcs[fw]
		pid := traceFleetPIDBase + fw
		name := fmt.Sprintf("fleet worker %d", fw)
		if fw < 0 {
			name = "fleet fallback"
		}
		process(pid, name)
		laneTracks(pid, traceTIDEvalBase, fp.evals, func(lane int) string {
			return fmt.Sprintf("eval lane %d", lane)
		})
		emitWorkerTracks(pid, fp.sims)
		namedWaitTracks := map[int]bool{}
		for _, ev := range fp.waits {
			wkr := int(ev.Attrs[AttrWorker])
			instant(pid, traceTIDWorker+wkr*workerLaneStride, "budget wait",
				ev.TimeNS-ev.DurNS, map[string]interface{}{
					"wait_ms": float64(ev.DurNS) / 1e6,
					"worker":  wkr,
					"iter":    ev.Iter,
				})
			// An instant needs a named track even if the worker ran no sims.
			if len(fp.sims[wkr]) == 0 && !namedWaitTracks[wkr] {
				namedWaitTracks[wkr] = true
				meta(pid, traceTIDWorker+wkr*workerLaneStride,
					fmt.Sprintf("worker %d", wkr), traceTIDWorker+wkr*workerLaneStride)
			}
		}
	}

	tf := traceFile{TraceEvents: out, DisplayTimeUnit: "ms"}
	if dropped > 0 {
		tf.OtherData = map[string]interface{}{"dropped_unstamped": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// spanArgs copies a span's iteration and attributes into trace args.
func spanArgs(ev Event) map[string]interface{} {
	args := map[string]interface{}{"iter": ev.Iter}
	for k, v := range ev.Attrs {
		args[k] = v
	}
	return args
}

// assignLanes greedily packs possibly-overlapping intervals into lanes:
// each interval takes the first lane whose previous occupant ended at or
// before its start. Processing order is by (start, longest-first) so an
// enclosing span claims its lane before its children; assignment is
// deterministic for a given input. Returns one lane index per input
// interval, in input order.
func assignLanes(ivs []spanInterval) []int {
	order := make([]int, len(ivs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := ivs[order[a]], ivs[order[b]]
		if ia.start != ib.start {
			return ia.start < ib.start
		}
		return ia.end > ib.end
	})
	lanes := make([]int, len(ivs))
	var lastEnd []int64
	for _, idx := range order {
		iv := ivs[idx]
		placed := false
		for l, end := range lastEnd {
			if end <= iv.start {
				lanes[idx] = l
				lastEnd[l] = iv.end
				placed = true
				break
			}
		}
		if !placed {
			lanes[idx] = len(lastEnd)
			lastEnd = append(lastEnd, iv.end)
		}
	}
	return lanes
}

// TraceStats summarizes a validated trace for gating and reporting.
type TraceStats struct {
	// Events is the total trace-event count, metadata included.
	Events int
	// Spans and Instants count "X" and "i" entries.
	Spans    int
	Instants int
	// Tracks counts named thread tracks; WorkerTracks the "worker N" subset
	// and RemoteTracks the "remote worker N" / "remote fallback" subset
	// (overflow "(+k)" lanes excluded from both).
	Tracks       int
	WorkerTracks int
	RemoteTracks int
	// Processes counts named processes; FleetProcesses the "fleet worker N" /
	// "fleet fallback" subset carrying spans shipped from remote workers.
	Processes      int
	FleetProcesses int
	// DroppedUnstamped is the exporter's count of events it could not place
	// on the timeline (no wall-clock stamp), read from the trace metadata.
	DroppedUnstamped int
}

// ValidateTrace parses trace-event JSON (the object form WriteTrace emits)
// and checks structural invariants: every event has a phase type, complete
// events have non-negative timestamps and durations, every referenced
// (pid, tid) track is named by a thread_name metadata event, and every
// referenced pid is named by a process_name metadata event. It is the CI
// timeline and fleet gates' checker.
func ValidateTrace(r io.Reader) (TraceStats, error) {
	var tf traceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return TraceStats{}, fmt.Errorf("telemetry: parsing trace JSON: %w", err)
	}
	var st TraceStats
	st.Events = len(tf.TraceEvents)
	if v, ok := tf.OtherData["dropped_unstamped"].(float64); ok {
		st.DroppedUnstamped = int(v)
	}
	type track struct{ pid, tid int }
	named := map[track]string{}
	procNamed := map[int]string{}
	used := map[track]bool{}
	for i, ev := range tf.TraceEvents {
		switch ev.Phase {
		case "M":
			name, _ := ev.Args["name"].(string)
			switch ev.Name {
			case "thread_name":
				if name == "" {
					return st, fmt.Errorf("telemetry: trace event %d: thread_name without a name", i)
				}
				named[track{ev.PID, ev.TID}] = name
			case "process_name":
				if name == "" {
					return st, fmt.Errorf("telemetry: trace event %d: process_name without a name", i)
				}
				procNamed[ev.PID] = name
			}
		case "X":
			st.Spans++
			if ev.TS < 0 || ev.Dur < 0 {
				return st, fmt.Errorf("telemetry: trace event %d (%s): negative ts or dur", i, ev.Name)
			}
			used[track{ev.PID, ev.TID}] = true
		case "i":
			st.Instants++
			if ev.TS < 0 {
				return st, fmt.Errorf("telemetry: trace event %d (%s): negative ts", i, ev.Name)
			}
			used[track{ev.PID, ev.TID}] = true
		case "":
			return st, fmt.Errorf("telemetry: trace event %d (%s): missing ph", i, ev.Name)
		}
	}
	for tr := range used {
		if _, ok := named[tr]; !ok {
			return st, fmt.Errorf("telemetry: track pid %d tid %d carries events but has no thread_name", tr.pid, tr.tid)
		}
		if _, ok := procNamed[tr.pid]; !ok {
			return st, fmt.Errorf("telemetry: process %d carries events but has no process_name", tr.pid)
		}
	}
	for _, name := range named {
		st.Tracks++
		if containsPlus(name) {
			continue
		}
		var w int
		if n, _ := fmt.Sscanf(name, "worker %d", &w); n == 1 {
			st.WorkerTracks++
		}
		if n, _ := fmt.Sscanf(name, "remote worker %d", &w); n == 1 || name == "remote fallback" {
			st.RemoteTracks++
		}
	}
	for _, name := range procNamed {
		st.Processes++
		var w int
		if n, _ := fmt.Sscanf(name, "fleet worker %d", &w); n == 1 || name == "fleet fallback" {
			st.FleetProcesses++
		}
	}
	return st, nil
}

func containsPlus(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '(' {
			return true
		}
	}
	return false
}
