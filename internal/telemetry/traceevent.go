package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Trace-event export: WriteTrace turns a run's event stream into the
// Chrome/Perfetto trace-event JSON object format, loadable in
// https://ui.perfetto.dev or chrome://tracing.
//
// Track layout (all under pid 1 "datamime"):
//
//	tid 1      "search"      — propose/observe spans; instant events for
//	                           each finished eval and each cache hit
//	tid 2      "optimizer"   — gp_fit/acquisition spans; instant events
//	                           when a GP fit fell back to a Cholesky
//	                           refactorization
//	tid 10+L   "eval lane L" — per-candidate spans (generate, profile,
//	                           profile.run, profile.curves), greedily
//	                           packed into as few non-overlapping lanes
//	                           as the run's parallelism needed
//	tid 3      "fleet"       — instant events for fleet churn (worker
//	                           registrations and deregistrations) and for
//	                           dispatch retries/fallbacks; present only
//	                           when the run dispatched to remote workers
//	tid 10+L   "eval lane L" — per-candidate spans (generate, profile,
//	                           profile.run, profile.curves), greedily
//	                           packed into as few non-overlapping lanes
//	                           as the run's parallelism needed
//	tid 100+   "worker W"    — one track per profiler-pool worker, carrying
//	                           its profile.sim spans; budget-semaphore
//	                           waits appear as instant events. When
//	                           concurrent candidates make one worker's
//	                           spans overlap, extra "(+k)" lanes absorb
//	                           the overflow.
//	tid 10000+ "remote worker W" — one track per remote evaluation worker,
//	                           carrying its eval.remote round-trip spans;
//	                           evaluations that fell back in-process land
//	                           on a "remote fallback" track.
//
// Timestamps are microseconds from the earliest event in the stream, so
// traces from different runs all start at zero. The exporter is a pure
// function of the event stream: it never touches the search.

const (
	tracePID          = 1
	traceTIDSearch    = 1
	traceTIDOptimizer = 2
	traceTIDFleet     = 3
	traceTIDEvalBase  = 10
	traceTIDWorker    = 100
	// traceTIDRemote bases the remote-worker lanes high enough that no
	// realistic profiler-pool worker index collides with them.
	traceTIDRemote = 10000
	// workerLaneStride spaces per-worker overflow lanes; lanes beyond it
	// fold into the last one (overlap is legal in the format).
	workerLaneStride = 8
)

// traceEvent is one entry of the trace-event JSON array.
type traceEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid,omitempty"`
	TS    float64                `json:"ts"`
	Dur   float64                `json:"dur,omitempty"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// spanInterval is a span event with resolved start/end nanoseconds.
type spanInterval struct {
	ev         Event
	start, end int64
}

func spanBounds(ev Event) spanInterval {
	return spanInterval{ev: ev, start: ev.TimeNS - ev.DurNS, end: ev.TimeNS}
}

// WriteTrace renders events (a run artifact's stream, in any order) as
// trace-event JSON. Events without wall-clock stamps (TimeNS == 0, e.g.
// evals synthesized from a restored checkpoint) are dropped — they have no
// place on a timeline.
func WriteTrace(w io.Writer, events []Event) error {
	var base int64 = -1
	for _, ev := range events {
		if ev.TimeNS == 0 {
			continue
		}
		start := ev.TimeNS
		if ev.Type == TypeSpan {
			start = ev.TimeNS - ev.DurNS
		}
		if base < 0 || start < base {
			base = start
		}
	}
	if base < 0 {
		base = 0
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	var out []traceEvent
	meta := func(tid int, name string, sortIndex int) {
		out = append(out,
			traceEvent{Name: "thread_name", Phase: "M", PID: tracePID, TID: tid,
				Args: map[string]interface{}{"name": name}},
			traceEvent{Name: "thread_sort_index", Phase: "M", PID: tracePID, TID: tid,
				Args: map[string]interface{}{"sort_index": sortIndex}},
		)
	}
	out = append(out, traceEvent{Name: "process_name", Phase: "M", PID: tracePID,
		Args: map[string]interface{}{"name": "datamime"}})
	meta(traceTIDSearch, "search", traceTIDSearch)
	meta(traceTIDOptimizer, "optimizer", traceTIDOptimizer)

	span := func(tid int, iv spanInterval, args map[string]interface{}) {
		out = append(out, traceEvent{
			Name: iv.ev.Phase, Phase: "X", PID: tracePID, TID: tid,
			TS: us(iv.start), Dur: float64(iv.ev.DurNS) / 1e3, Args: args,
		})
	}
	instant := func(tid int, name string, ns int64, args map[string]interface{}) {
		out = append(out, traceEvent{
			Name: name, Phase: "i", PID: tracePID, TID: tid,
			TS: us(ns), Scope: "t", Args: args,
		})
	}

	var evalSpans []spanInterval
	workerSpans := map[int][]spanInterval{}
	remoteSpans := map[int][]spanInterval{}
	fleetUsed := false
	for _, ev := range events {
		if ev.TimeNS == 0 {
			continue
		}
		switch ev.Type {
		case TypeEval:
			args := map[string]interface{}{"iter": ev.Iter}
			if v, ok := ev.Attrs[AttrError]; ok {
				args["error"] = v
			}
			if v, ok := ev.Attrs[AttrBestError]; ok {
				args["best_error"] = v
			}
			if ev.Skipped {
				args["skipped"] = true
			}
			instant(traceTIDSearch, "eval", ev.TimeNS, args)
			if ev.Attrs[AttrCacheHit] > 0 {
				instant(traceTIDSearch, "cache hit", ev.TimeNS,
					map[string]interface{}{"iter": ev.Iter})
			}
		case TypeSpan:
			iv := spanBounds(ev)
			switch ev.Phase {
			case PhasePropose, PhaseObserve:
				span(traceTIDSearch, iv, spanArgs(ev))
			case PhaseGPFit, PhaseAcquisition:
				span(traceTIDOptimizer, iv, spanArgs(ev))
				if ev.Phase == PhaseGPFit && ev.Attrs[AttrCholeskyRebuilds] > 0 {
					instant(traceTIDOptimizer, "cholesky refactorization", ev.TimeNS,
						map[string]interface{}{
							"rebuilds":         ev.Attrs[AttrCholeskyRebuilds],
							"jitter_level_max": ev.Attrs[AttrJitterLevelMax],
						})
				}
			case PhaseGenerate, PhaseProfile, PhaseProfileRun, PhaseProfileCurves:
				evalSpans = append(evalSpans, iv)
			case PhaseSimRun:
				wkr := int(ev.Attrs[AttrWorker])
				workerSpans[wkr] = append(workerSpans[wkr], iv)
			case PhaseBudgetWait:
				wkr := int(ev.Attrs[AttrWorker])
				instant(traceTIDWorker+wkr*workerLaneStride, "budget wait", iv.start,
					map[string]interface{}{
						"wait_ms": float64(ev.DurNS) / 1e6,
						"worker":  wkr,
						"iter":    ev.Iter,
					})
			case PhaseRemoteEval:
				wkr := int(ev.Attrs[AttrRemoteWorker])
				remoteSpans[wkr] = append(remoteSpans[wkr], iv)
			case PhaseWorkerRegister, PhaseWorkerDeregister,
				PhaseDispatchRetry, PhaseDispatchFallback:
				fleetUsed = true
				instant(traceTIDFleet, ev.Phase, ev.TimeNS, spanArgs(ev))
			default:
				// Unknown phases land on the search track so nothing a
				// future instrumentation site emits silently disappears.
				span(traceTIDSearch, iv, spanArgs(ev))
			}
		}
	}

	// Per-candidate spans: greedy interval coloring into "eval lane" tracks.
	lanes := assignLanes(evalSpans)
	maxLane := -1
	for i, iv := range evalSpans {
		if lanes[i] > maxLane {
			maxLane = lanes[i]
		}
		span(traceTIDEvalBase+lanes[i], iv, spanArgs(iv.ev))
	}
	for l := 0; l <= maxLane; l++ {
		meta(traceTIDEvalBase+l, fmt.Sprintf("eval lane %d", l), traceTIDEvalBase+l)
	}

	// Worker tracks: one per pool worker, overflow lanes per worker when
	// concurrent candidates overlap the same worker index.
	workers := make([]int, 0, len(workerSpans))
	for wkr := range workerSpans {
		workers = append(workers, wkr)
	}
	sort.Ints(workers)
	for _, wkr := range workers {
		ivs := workerSpans[wkr]
		ls := assignLanes(ivs)
		maxL := 0
		for i, iv := range ivs {
			lane := ls[i]
			if lane >= workerLaneStride {
				lane = workerLaneStride - 1
			}
			if lane > maxL {
				maxL = lane
			}
			span(traceTIDWorker+wkr*workerLaneStride+lane, iv, spanArgs(iv.ev))
		}
		base := traceTIDWorker + wkr*workerLaneStride
		meta(base, fmt.Sprintf("worker %d", wkr), base)
		for l := 1; l <= maxL; l++ {
			meta(base+l, fmt.Sprintf("worker %d (+%d)", wkr, l), base+l)
		}
	}

	// Remote evaluation lanes: one track per remote worker ID (a dispatched
	// run's eval.remote round trips), with the local-fallback lane (worker
	// ID -1) named distinctly. The fleet track appears only when the run
	// recorded fleet or dispatch activity.
	if fleetUsed {
		meta(traceTIDFleet, "fleet", traceTIDFleet)
	}
	remotes := make([]int, 0, len(remoteSpans))
	for wkr := range remoteSpans {
		remotes = append(remotes, wkr)
	}
	sort.Ints(remotes)
	for slot, wkr := range remotes {
		ivs := remoteSpans[wkr]
		ls := assignLanes(ivs)
		maxL := 0
		trackBase := traceTIDRemote + slot*workerLaneStride
		for i, iv := range ivs {
			lane := ls[i]
			if lane >= workerLaneStride {
				lane = workerLaneStride - 1
			}
			if lane > maxL {
				maxL = lane
			}
			span(trackBase+lane, iv, spanArgs(iv.ev))
		}
		name := fmt.Sprintf("remote worker %d", wkr)
		if wkr < 0 {
			name = "remote fallback"
		}
		meta(trackBase, name, trackBase)
		for l := 1; l <= maxL; l++ {
			meta(trackBase+l, fmt.Sprintf("%s (+%d)", name, l), trackBase+l)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// spanArgs copies a span's iteration and attributes into trace args.
func spanArgs(ev Event) map[string]interface{} {
	args := map[string]interface{}{"iter": ev.Iter}
	for k, v := range ev.Attrs {
		args[k] = v
	}
	return args
}

// assignLanes greedily packs possibly-overlapping intervals into lanes:
// each interval takes the first lane whose previous occupant ended at or
// before its start. Processing order is by (start, longest-first) so an
// enclosing span claims its lane before its children; assignment is
// deterministic for a given input. Returns one lane index per input
// interval, in input order.
func assignLanes(ivs []spanInterval) []int {
	order := make([]int, len(ivs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := ivs[order[a]], ivs[order[b]]
		if ia.start != ib.start {
			return ia.start < ib.start
		}
		return ia.end > ib.end
	})
	lanes := make([]int, len(ivs))
	var lastEnd []int64
	for _, idx := range order {
		iv := ivs[idx]
		placed := false
		for l, end := range lastEnd {
			if end <= iv.start {
				lanes[idx] = l
				lastEnd[l] = iv.end
				placed = true
				break
			}
		}
		if !placed {
			lanes[idx] = len(lastEnd)
			lastEnd = append(lastEnd, iv.end)
		}
	}
	return lanes
}

// TraceStats summarizes a validated trace for gating and reporting.
type TraceStats struct {
	// Events is the total trace-event count, metadata included.
	Events int
	// Spans and Instants count "X" and "i" entries.
	Spans    int
	Instants int
	// Tracks counts named thread tracks; WorkerTracks the "worker N" subset
	// and RemoteTracks the "remote worker N" / "remote fallback" subset
	// (overflow "(+k)" lanes excluded from both).
	Tracks       int
	WorkerTracks int
	RemoteTracks int
}

// ValidateTrace parses trace-event JSON (the object form WriteTrace emits)
// and checks structural invariants: every event has a phase type, complete
// events have non-negative timestamps and durations, and every referenced
// track is named by a metadata event. It is the CI timeline gate's checker.
func ValidateTrace(r io.Reader) (TraceStats, error) {
	var tf traceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return TraceStats{}, fmt.Errorf("telemetry: parsing trace JSON: %w", err)
	}
	var st TraceStats
	st.Events = len(tf.TraceEvents)
	named := map[int]string{}
	used := map[int]bool{}
	for i, ev := range tf.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" {
				name, _ := ev.Args["name"].(string)
				if name == "" {
					return st, fmt.Errorf("telemetry: trace event %d: thread_name without a name", i)
				}
				named[ev.TID] = name
			}
		case "X":
			st.Spans++
			if ev.TS < 0 || ev.Dur < 0 {
				return st, fmt.Errorf("telemetry: trace event %d (%s): negative ts or dur", i, ev.Name)
			}
			used[ev.TID] = true
		case "i":
			st.Instants++
			if ev.TS < 0 {
				return st, fmt.Errorf("telemetry: trace event %d (%s): negative ts", i, ev.Name)
			}
			used[ev.TID] = true
		case "":
			return st, fmt.Errorf("telemetry: trace event %d (%s): missing ph", i, ev.Name)
		}
	}
	for tid := range used {
		if _, ok := named[tid]; !ok {
			return st, fmt.Errorf("telemetry: track %d carries events but has no thread_name", tid)
		}
	}
	for _, name := range named {
		st.Tracks++
		if containsPlus(name) {
			continue
		}
		var w int
		if n, _ := fmt.Sscanf(name, "worker %d", &w); n == 1 {
			st.WorkerTracks++
		}
		if n, _ := fmt.Sscanf(name, "remote worker %d", &w); n == 1 || name == "remote fallback" {
			st.RemoteTracks++
		}
	}
	return st, nil
}

func containsPlus(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '(' {
			return true
		}
	}
	return false
}
