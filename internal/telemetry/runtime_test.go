package telemetry

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestRegisterRuntimeMetrics: the runtime collectors expose every family
// under the given prefix with live (nonzero where guaranteed) values.
func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg, "testproc")
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()

	for _, fam := range []string{
		"testproc_go_goroutines",
		"testproc_go_gomaxprocs",
		"testproc_go_heap_alloc_bytes",
		"testproc_go_gc_pause_seconds_total",
		"testproc_go_gc_cycles_total",
	} {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("exposition missing family %s", fam)
		}
	}
	// A running test binary always has at least one goroutine and a heap.
	for _, fam := range []string{"testproc_go_goroutines", "testproc_go_gomaxprocs", "testproc_go_heap_alloc_bytes"} {
		m := regexp.MustCompile(`(?m)^` + fam + ` (\S+)$`).FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("no sample line for %s in:\n%s", fam, out)
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil || v <= 0 {
			t.Errorf("%s = %q, want a positive number", fam, m[1])
		}
	}
}
