package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("demo_evals_total", "Evaluations.")
	c.Add(3)
	g := reg.NewGauge("demo_busy", "Busy workers.")
	g.Set(2)
	reg.NewGaugeFunc("demo_uptime", "Uptime.", func() float64 { return 1.5 })
	vec := reg.NewCounterVec("demo_worker_seconds_total", "Per-worker time.", "worker")
	vec.With("1").Add(0.25)
	vec.With("0").Add(0.5)
	reg.NewCollector("demo_jobs", "Jobs by state.", "gauge", []string{"state"},
		func() []Sample {
			return []Sample{
				{Labels: []string{"running"}, Value: 1},
				{Labels: []string{"queued"}, Value: 4},
			}
		})

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()

	want := `# HELP demo_busy Busy workers.
# TYPE demo_busy gauge
demo_busy 2
# HELP demo_evals_total Evaluations.
# TYPE demo_evals_total counter
demo_evals_total 3
# HELP demo_jobs Jobs by state.
# TYPE demo_jobs gauge
demo_jobs{state="queued"} 4
demo_jobs{state="running"} 1
# HELP demo_uptime Uptime.
# TYPE demo_uptime gauge
demo_uptime 1.5
# HELP demo_worker_seconds_total Per-worker time.
# TYPE demo_worker_seconds_total counter
demo_worker_seconds_total{worker="0"} 0.5
demo_worker_seconds_total{worker="1"} 0.25
`
	if out != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

func TestRegistryHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogramVec("demo_phase_seconds", "Phase latency.", "phase",
		[]float64{0.01, 0.1})
	h.Observe("profile", 5*time.Millisecond)
	h.Observe("profile", 50*time.Millisecond)
	h.Observe("profile", 500*time.Millisecond)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, line := range []string{
		`demo_phase_seconds_bucket{phase="profile",le="0.01"} 1`,
		`demo_phase_seconds_bucket{phase="profile",le="0.1"} 2`,
		`demo_phase_seconds_bucket{phase="profile",le="+Inf"} 3`,
		`demo_phase_seconds_count{phase="profile"} 3`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestRegistryEmptyFamiliesRenderNothing(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounterVec("demo_unused_total", "Never incremented.", "worker")
	reg.NewHistogramVec("demo_unused_seconds", "Never observed.", "phase", nil)
	reg.NewCollector("demo_unused_jobs", "Empty collector.", "gauge", []string{"state"},
		func() []Sample { return nil })
	var b strings.Builder
	reg.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Errorf("empty families rendered output:\n%s", b.String())
	}
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("demo_total", "First.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.NewGauge("demo_total", "Second.")
}

func TestCounterVecArityPanics(t *testing.T) {
	reg := NewRegistry()
	vec := reg.NewCounterVec("demo_total", "Two labels.", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("label arity mismatch did not panic")
		}
	}()
	vec.With("only-one")
}

func TestCounterRejectsNegativeAdd(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("demo_total", "Counter.")
	c.Add(2)
	c.Add(-5)
	if got := c.Value(); got != 2 {
		t.Errorf("Value = %g after negative Add, want 2", got)
	}
}
