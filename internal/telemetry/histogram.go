package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Float64 is an atomic float64 built on uint64 bit patterns: a lock-free
// replacement for mutex-guarded float accumulators on hot paths.
type Float64 struct {
	bits atomic.Uint64
}

// Add atomically adds v.
func (f *Float64) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Load atomically reads the current value.
func (f *Float64) Load() float64 {
	return math.Float64frombits(f.bits.Load())
}

// Store atomically replaces the current value.
func (f *Float64) Store(v float64) {
	f.bits.Store(math.Float64bits(v))
}

// DefaultLatencyBounds are exponential bucket upper bounds in seconds,
// 10 µs to ~21 s doubling, suited to phase latencies from GP fits (µs–ms)
// to full profiling runs (ms–s).
func DefaultLatencyBounds() []float64 {
	bounds := make([]float64, 0, 22)
	for b := 10e-6; b < 30; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Histogram is a fixed-bucket latency histogram with atomic counters: safe
// for concurrent Observe and Snapshot without locks.
type Histogram struct {
	bounds []float64 // ascending upper bounds in seconds; +Inf is implicit
	counts []atomic.Uint64
	sum    Float64
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds (in
// seconds). Nil or empty bounds select DefaultLatencyBounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s) // first bound >= s; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.sum.Add(s)
	h.count.Add(1)
}

// HistogramSnapshot is a consistent-enough point-in-time view for
// exposition: cumulative bucket counts per bound (ending with the +Inf
// bucket equal to Count), total sum of observed seconds, and count.
type HistogramSnapshot struct {
	Bounds     []float64 // upper bounds; the final +Inf is implicit
	Cumulative []uint64  // len(Bounds)+1; last entry is the +Inf bucket
	Sum        float64
	Count      uint64
}

// Snapshot reads the histogram. Concurrent observations may straddle the
// read; the +Inf bucket is forced to the bucket total so the exposition
// stays internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]uint64, len(h.counts)),
		Sum:        h.sum.Load(),
		Count:      h.count.Load(),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		snap.Cumulative[i] = cum
	}
	// Force bucket-total consistency under concurrent writers.
	snap.Count = snap.Cumulative[len(snap.Cumulative)-1]
	return snap
}

// HistogramVec groups histograms by a single label value (e.g. phase name),
// creating them lazily on first observation.
type HistogramVec struct {
	mu     sync.RWMutex
	bounds []float64
	m      map[string]*Histogram
}

// NewHistogramVec builds a vector whose member histograms share bounds
// (nil selects DefaultLatencyBounds).
func NewHistogramVec(bounds []float64) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	return &HistogramVec{
		bounds: append([]float64(nil), bounds...),
		m:      make(map[string]*Histogram),
	}
}

// Observe records one duration under the given label.
func (v *HistogramVec) Observe(label string, d time.Duration) {
	v.mu.RLock()
	h := v.m[label]
	v.mu.RUnlock()
	if h == nil {
		v.mu.Lock()
		h = v.m[label]
		if h == nil {
			h = NewHistogram(v.bounds)
			v.m[label] = h
		}
		v.mu.Unlock()
	}
	h.Observe(d)
}

// Labels returns the observed label values, sorted.
func (v *HistogramVec) Labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.m))
	for l := range v.m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Get returns the histogram for a label, or nil if never observed.
func (v *HistogramVec) Get(label string) *Histogram {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.m[label]
}
