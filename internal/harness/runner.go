package harness

import (
	"fmt"
	"io"
	"sync"

	"datamime/internal/cloning"
	"datamime/internal/core"
	"datamime/internal/profile"
	"datamime/internal/sim"
	"datamime/internal/workload"
)

// Settings control evaluation cost. Full mirrors the paper (200 search
// iterations, dense profiles); Quick keeps every experiment's structure but
// shrinks budgets so the whole evaluation regenerates in minutes.
type Settings struct {
	// Iterations is the search budget per workload (the paper uses 200).
	Iterations int
	// WindowCycles, Windows, WarmupWindows, CurveWindows, CurvePoints feed
	// the profiler.
	WindowCycles  float64
	Windows       int
	WarmupWindows int
	CurveWindows  int
	CurvePoints   int
	// RangePoints is the sweep resolution of Fig. 11 (paper: 15).
	RangePoints int
	// RangeIterations is the per-point search budget of Fig. 11.
	RangeIterations int
	// Parallel evaluates this many search candidates concurrently per
	// batch (parallel Bayesian optimization; 0/1 = the paper's serial
	// loop).
	Parallel int
	// Seed derives all stochastic streams.
	Seed uint64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Full returns the paper-fidelity settings.
func Full() Settings {
	return Settings{
		Iterations:      200,
		WindowCycles:    400_000,
		Windows:         36,
		WarmupWindows:   5,
		CurveWindows:    6,
		CurvePoints:     12,
		RangePoints:     15,
		RangeIterations: 40,
		Parallel:        4,
		Seed:            1,
	}
}

// Quick returns reduced-budget settings for benches and smoke runs: same
// experiment structure, smaller numbers.
func Quick() Settings {
	return Settings{
		Iterations:      36,
		WindowCycles:    200_000,
		Windows:         16,
		WarmupWindows:   3,
		CurveWindows:    3,
		CurvePoints:     6,
		RangePoints:     5,
		RangeIterations: 10,
		Parallel:        4,
		Seed:            1,
	}
}

// Runner executes schemes and caches results, so figures that share
// expensive artifacts (target profiles, searches) reuse them. All methods
// are safe for concurrent use; independent workloads are evaluated in
// parallel by Prepare.
type Runner struct {
	st Settings

	mu       sync.Mutex
	profiles map[string]*profile.Profile
	searches map[string]*core.Result
	locks    map[string]*sync.Mutex
}

// NewRunner builds a runner.
func NewRunner(st Settings) *Runner {
	return &Runner{
		st:       st,
		profiles: make(map[string]*profile.Profile),
		searches: make(map[string]*core.Result),
		locks:    make(map[string]*sync.Mutex),
	}
}

// Settings returns the runner's settings.
func (r *Runner) Settings() Settings { return r.st }

// profiler builds a profiler for the given machine from the settings.
func (r *Runner) profiler(m sim.MachineConfig) *profile.Profiler {
	p := profile.New(m)
	p.WindowCycles = r.st.WindowCycles
	p.Windows = r.st.Windows
	p.WarmupWindows = r.st.WarmupWindows
	p.CurveWindows = r.st.CurveWindows
	p.CurvePoints = r.st.CurvePoints
	return p
}

// keyLock returns a per-key mutex so expensive computations run once even
// under concurrent callers.
func (r *Runner) keyLock(key string) *sync.Mutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.locks[key]
	if !ok {
		l = &sync.Mutex{}
		r.locks[key] = l
	}
	return l
}

// cachedProfile memoizes a profile computation.
func (r *Runner) cachedProfile(key string, compute func() (*profile.Profile, error)) (*profile.Profile, error) {
	lock := r.keyLock(key)
	lock.Lock()
	defer lock.Unlock()
	r.mu.Lock()
	if p, ok := r.profiles[key]; ok {
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()
	p, err := compute()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.profiles[key] = p
	r.mu.Unlock()
	return p, nil
}

// logf writes a progress line when logging is enabled.
func (r *Runner) logf(format string, args ...interface{}) {
	if r.st.Log != nil {
		fmt.Fprintf(r.st.Log, format+"\n", args...)
	}
}

// BenchmarkProfile profiles an arbitrary benchmark on a machine, cached.
func (r *Runner) BenchmarkProfile(b workload.Benchmark, m sim.MachineConfig) (*profile.Profile, error) {
	key := fmt.Sprintf("bench/%s/%s", b.Name, m.Name)
	return r.cachedProfile(key, func() (*profile.Profile, error) {
		r.logf("profiling %s on %s", b.Name, m.Name)
		return r.profiler(m).Profile(b, r.st.Seed)
	})
}

// TargetProfile profiles a workload's hidden target.
func (r *Runner) TargetProfile(w Workload, m sim.MachineConfig) (*profile.Profile, error) {
	return r.BenchmarkProfile(w.Target, m)
}

// PublicProfile profiles the alternative public dataset.
func (r *Runner) PublicProfile(w Workload, m sim.MachineConfig) (*profile.Profile, error) {
	if w.Public == nil {
		return nil, fmt.Errorf("harness: workload %s has no public dataset", w.Name)
	}
	return r.BenchmarkProfile(*w.Public, m)
}

// CloneBenchmark builds the PerfProx-style proxy for a workload. The clone
// is generated from the target's profile on the generation machine
// (Broadwell), like all generated benchmarks in the paper.
func (r *Runner) CloneBenchmark(w Workload) (workload.Benchmark, error) {
	target, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		return workload.Benchmark{}, err
	}
	return cloning.Clone(target, "perfprox-"+w.Name), nil
}

// CloneProfile profiles the PerfProx-style proxy on a machine.
func (r *Runner) CloneProfile(w Workload, m sim.MachineConfig) (*profile.Profile, error) {
	b, err := r.CloneBenchmark(w)
	if err != nil {
		return nil, err
	}
	return r.BenchmarkProfile(b, m)
}

// Search runs (or returns the cached) Datamime search for a workload, with
// an optional error-model override (nil uses the default equal weights).
func (r *Runner) Search(w Workload, model *core.ErrorModel) (*core.Result, error) {
	modelKey := "default"
	if model != nil {
		modelKey = fmt.Sprintf("%v", model.Weights)
	}
	key := fmt.Sprintf("search/%s/%s", w.Name, modelKey)
	lock := r.keyLock(key)
	lock.Lock()
	defer lock.Unlock()
	r.mu.Lock()
	if res, ok := r.searches[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	target, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		return nil, err
	}
	if model == nil {
		model = core.NewErrorModel()
	}
	r.logf("searching %s (%d iterations)", w.Name, r.st.Iterations)
	res, err := core.Search(core.SearchConfig{
		Generator:  w.Generator,
		Objective:  core.NewProfileObjective(target, model),
		Profiler:   r.profiler(sim.Broadwell()),
		Iterations: r.st.Iterations,
		Seed:       r.st.Seed,
		Parallel:   r.st.Parallel,
	})
	if err != nil {
		return nil, err
	}
	r.logf("search %s done: best error %.4f (%s)", w.Name, res.BestError, w.Generator.Space.Values(res.BestParams))
	r.mu.Lock()
	r.searches[key] = res
	r.mu.Unlock()
	return res, nil
}

// DatamimeBenchmark returns the benchmark built from a workload's best
// found dataset parameters.
func (r *Runner) DatamimeBenchmark(w Workload) (workload.Benchmark, error) {
	res, err := r.Search(w, nil)
	if err != nil {
		return workload.Benchmark{}, err
	}
	b := w.Generator.Benchmark(res.BestParams)
	b.Name = "datamime-" + w.Name
	return b, nil
}

// DatamimeProfile profiles the Datamime-generated benchmark on a machine
// (generation always happens on Broadwell; cross-machine profiles validate
// it, as in Fig. 3).
func (r *Runner) DatamimeProfile(w Workload, m sim.MachineConfig) (*profile.Profile, error) {
	b, err := r.DatamimeBenchmark(w)
	if err != nil {
		return nil, err
	}
	return r.BenchmarkProfile(b, m)
}

// Prepare runs the Datamime searches for the given workloads in parallel;
// subsequent figure calls then hit caches. Errors are joined.
func (r *Runner) Prepare(ws []Workload) error {
	var wg sync.WaitGroup
	errs := make([]error, len(ws))
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w Workload) {
			defer wg.Done()
			_, errs[i] = r.Search(w, nil)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
