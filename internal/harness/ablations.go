package harness

import (
	"io"

	"datamime/internal/core"
	"datamime/internal/opt"
	"datamime/internal/profile"
	"datamime/internal/sim"
	"datamime/internal/stats"
)

// AblationOptimizers compares the paper's Bayesian optimizer against random
// search and simulated annealing at an equal evaluation budget on the
// mem-fb search — the empirical backing for §III-C's optimizer choice.
func (r *Runner) AblationOptimizers(out io.Writer) error {
	w, err := WorkloadByName("mem-fb")
	if err != nil {
		return err
	}
	target, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		return err
	}
	model := core.NewErrorModel()
	t := &Table{
		Title:  "Ablation: optimizer choice (mem-fb, equal evaluation budget)",
		Header: []string{"optimizer", "best total EMD", "evaluations"},
	}
	optimizers := []opt.Optimizer{
		opt.NewBayesOpt(w.Generator.Space, opt.BayesOptConfig{Seed: r.st.Seed}),
		opt.NewRandomSearch(w.Generator.Space, r.st.Seed),
		opt.NewAnneal(w.Generator.Space, r.st.Seed, 1.0, 0.92),
	}
	for _, o := range optimizers {
		res, err := core.Search(core.SearchConfig{
			Generator:  w.Generator,
			Objective:  core.NewProfileObjective(target, model),
			Profiler:   r.profiler(sim.Broadwell()),
			Iterations: r.st.Iterations,
			Optimizer:  o,
			Seed:       r.st.Seed,
			Parallel:   r.st.Parallel,
		})
		if err != nil {
			return err
		}
		t.AddRow(o.Name(), fnum(res.BestError), fnum(float64(res.Evaluations)))
	}
	_, err = t.WriteTo(out)
	return err
}

// meanOnlyObjective is the ablated error model: match metric *means* only,
// ignoring distributions and curves — what average-statistics approaches
// optimize.
type meanOnlyObjective struct {
	target *profile.Profile
}

// Evaluate sums the normalized absolute mean errors over the scalar
// metrics.
func (o meanOnlyObjective) Evaluate(cand *profile.Profile) float64 {
	var total float64
	for _, id := range profile.ScalarMetrics {
		tv := o.target.Mean(id)
		cv := cand.Mean(id)
		scale := abs(tv)
		if scale < 1e-9 {
			scale = 1
		}
		total += abs(tv-cv) / scale
	}
	return total / float64(len(profile.ScalarMetrics))
}

// Describe implements core.Objective.
func (o meanOnlyObjective) Describe() string { return "mean-only error model" }

// AblationErrorModel compares the paper's distribution-matching EMD error
// against a mean-only error model: both searches run, then both winners are
// scored by the *distributional* error, showing what matching-averages-only
// leaves on the table.
func (r *Runner) AblationErrorModel(out io.Writer) error {
	w, err := WorkloadByName("mem-fb")
	if err != nil {
		return err
	}
	target, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		return err
	}
	model := core.NewErrorModel()
	run := func(obj core.Objective, seed uint64) (*core.Result, error) {
		return core.Search(core.SearchConfig{
			Generator:  w.Generator,
			Objective:  obj,
			Profiler:   r.profiler(sim.Broadwell()),
			Iterations: r.st.Iterations,
			Seed:       seed,
			Parallel:   r.st.Parallel,
		})
	}
	emdRes, err := run(core.NewProfileObjective(target, model), r.st.Seed)
	if err != nil {
		return err
	}
	meanRes, err := run(meanOnlyObjective{target: target}, r.st.Seed)
	if err != nil {
		return err
	}
	score := func(res *core.Result) (distErr float64, utilEMD float64) {
		d, per := model.Distance(target, res.BestProfile)
		return d, per[core.CompCPUUtil]
	}
	t := &Table{
		Title:  "Ablation: error model (mem-fb) — winners re-scored by distributional error",
		Header: []string{"search objective", "total EMD", "cpu-util EMD"},
	}
	d1, u1 := score(emdRes)
	d2, u2 := score(meanRes)
	t.AddRow("EMD over distributions (paper)", fnum(d1), fnum(u1))
	t.AddRow("means only (ablated)", fnum(d2), fnum(u2))
	_, err = t.WriteTo(out)
	return err
}

// AblationWeights quantifies metric prioritization: the default equal
// weights vs. an IPC-curve-heavy weighting, scored on the IPC-curve and
// LLC-curve components (the img-dnn trade-off of §V-C, on img-dnn itself).
func (r *Runner) AblationWeights(out io.Writer) error {
	w, err := WorkloadByName("img-dnn")
	if err != nil {
		return err
	}
	target, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		return err
	}
	def, err := r.Search(w, nil)
	if err != nil {
		return err
	}
	weighted, err := r.Search(w, core.NewErrorModel().WithWeight(core.CompIPCCurve, 6))
	if err != nil {
		return err
	}
	model := core.NewErrorModel()
	t := &Table{
		Title:  "Ablation: metric weighting (img-dnn)",
		Header: []string{"weights", "IPC-curve err", "LLC-curve err", "IPC rel. err"},
	}
	row := func(name string, res *core.Result) {
		_, per := model.Distance(target, res.BestProfile)
		ipcErr := stats.AbsPercentError(target.Mean(profile.MetricIPC), res.BestProfile.Mean(profile.MetricIPC))
		t.AddRow(name, fnum(per[core.CompIPCCurve]), fnum(per[core.CompLLCCurve]), fpct(ipcErr))
	}
	row("equal (default)", def)
	row("ipc-curve x6", weighted)
	_, err = t.WriteTo(out)
	return err
}

// AblationDistance compares the EMD error statistic against the
// Kolmogorov–Smirnov alternative the paper mentions (§III-C): both drive a
// full mem-fb search, and both winners are re-scored under the paper's EMD
// model for comparability.
func (r *Runner) AblationDistance(out io.Writer) error {
	w, err := WorkloadByName("mem-fb")
	if err != nil {
		return err
	}
	target, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		return err
	}
	emdModel := core.NewErrorModel()
	t := &Table{
		Title:  "Ablation: distribution distance (mem-fb) — winners re-scored by EMD",
		Header: []string{"search statistic", "total EMD", "ipc rel. err"},
	}
	for _, kind := range []core.DistanceKind{core.DistEMD, core.DistKS} {
		res, err := core.Search(core.SearchConfig{
			Generator:  w.Generator,
			Objective:  core.NewProfileObjective(target, emdModel.WithDistance(kind)),
			Profiler:   r.profiler(sim.Broadwell()),
			Iterations: r.st.Iterations,
			Seed:       r.st.Seed,
			Parallel:   r.st.Parallel,
		})
		if err != nil {
			return err
		}
		d, _ := emdModel.Distance(target, res.BestProfile)
		ipcErr := stats.AbsPercentError(target.Mean(profile.MetricIPC), res.BestProfile.Mean(profile.MetricIPC))
		t.AddRow(kind.String(), fnum(d), fpct(ipcErr))
	}
	_, err = t.WriteTo(out)
	return err
}
