package harness

import (
	"strings"
	"testing"
)

// TestFullEvaluationTiny drives every registered experiment end to end at
// minimal budgets. It verifies the complete evaluation pipeline — searches,
// cross-machine profiling, cloning, case studies, range sweeps, ablations,
// and extensions — produces output for each table and figure. The benches
// run the same experiments at Quick budgets; this test is about coverage,
// not numbers.
func TestFullEvaluationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full-evaluation pipeline test")
	}
	st := Settings{
		Iterations:      4,
		WindowCycles:    100_000,
		Windows:         6,
		WarmupWindows:   1,
		CurveWindows:    2,
		CurvePoints:     2,
		RangePoints:     2,
		RangeIterations: 3,
		Parallel:        4,
		Seed:            1,
	}
	r := NewRunner(st)
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var sb strings.Builder
			if err := RunExperiment(r, id, &sb); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if sb.Len() == 0 {
				t.Fatalf("%s produced no output", id)
			}
		})
	}

	// Cross-cutting summaries built on the cached artifacts.
	dm, pp, err := r.IPCErrorSummary()
	if err != nil {
		t.Fatal(err)
	}
	if dm < 0 || pp < 0 {
		t.Fatalf("negative MAPE: %g / %g", dm, pp)
	}
	csDM, csPP, err := r.CaseStudyIPCErrors()
	if err != nil {
		t.Fatal(err)
	}
	if csDM < 0 || csPP < 0 {
		t.Fatalf("negative case-study MAPE: %g / %g", csDM, csPP)
	}
	var sb strings.Builder
	if err := r.ReweightedCaseStudy(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ipc-weighted") {
		t.Fatal("reweighted case study output missing")
	}
	if err := r.Prepare(Workloads()[:2]); err != nil {
		t.Fatal(err)
	}
}
