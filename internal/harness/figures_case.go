package harness

import (
	"fmt"
	"io"

	"datamime/internal/core"
	"datamime/internal/profile"
	"datamime/internal/sim"
)

// Figure9 reproduces Fig. 9: cache-sensitivity curves for the case-study
// targets (masstree, img-dnn), where Datamime's benchmark uses a
// *different* program than the target (memcached and dnn, respectively).
func (r *Runner) Figure9(out io.Writer) error {
	for _, w := range CaseStudyWorkloads() {
		tgt, err := r.TargetProfile(w, sim.Broadwell())
		if err != nil {
			return err
		}
		pp, err := r.CloneProfile(w, sim.Broadwell())
		if err != nil {
			return err
		}
		dm, err := r.DatamimeProfile(w, sim.Broadwell())
		if err != nil {
			return err
		}
		t := &Table{
			Title: fmt.Sprintf("Figure 9 (%s, searched with %s): cache-sensitivity curves",
				w.Name, w.Generator.Name),
			Header: []string{"cache MB",
				"tgt IPC", "pp IPC", "dm IPC",
				"tgt LLC", "pp LLC", "dm LLC"},
		}
		for i := range tgt.Curve {
			if i >= len(pp.Curve) || i >= len(dm.Curve) {
				break
			}
			tc, pc, dc := tgt.Curve[i], pp.Curve[i], dm.Curve[i]
			t.AddRow(fmt.Sprintf("%d", tc.SizeBytes>>20),
				fnum(tc.IPC), fnum(pc.IPC), fnum(dc.IPC),
				fnum(tc.LLCMPKI), fnum(pc.LLCMPKI), fnum(dc.LLCMPKI))
		}
		if _, err := t.WriteTo(out); err != nil {
			return err
		}
	}
	return nil
}

// tableIVMetrics are the rows of Table IV, in the paper's order.
var tableIVMetrics = []struct {
	id    profile.MetricID
	label string
}{
	{profile.MetricIPC, "IPC"},
	{profile.MetricLLC, "LLC MPKI"},
	{profile.MetricCPUUtil, "CPU Util."},
	{profile.MetricBranch, "Branch MPKI"},
	{profile.MetricICache, "ICache MPKI"},
	{profile.MetricL1D, "L1D MPKI"},
	{profile.MetricL2, "L2 MPKI"},
	{profile.MetricITLB, "ITLB MPKI"},
	{profile.MetricDTLB, "DTLB MPKI"},
	{profile.MetricMemBW, "Mem. Bw (GB/s)"},
}

// Table4 reproduces Table IV: every profiled metric for the case-study
// targets under target, PerfProx, and Datamime-with-a-different-program.
func (r *Runner) Table4(out io.Writer) error {
	for _, w := range CaseStudyWorkloads() {
		tgt, err := r.TargetProfile(w, sim.Broadwell())
		if err != nil {
			return err
		}
		pp, err := r.CloneProfile(w, sim.Broadwell())
		if err != nil {
			return err
		}
		dm, err := r.DatamimeProfile(w, sim.Broadwell())
		if err != nil {
			return err
		}
		t := &Table{
			Title:  fmt.Sprintf("Table IV (%s)", w.Name),
			Header: []string{"metric", "target", "perfprox", "datamime (diff. program)"},
		}
		for _, m := range tableIVMetrics {
			t.AddRow(m.label, fnum(tgt.Mean(m.id)), fnum(pp.Mean(m.id)), fnum(dm.Mean(m.id)))
		}
		if _, err := t.WriteTo(out); err != nil {
			return err
		}
	}
	return nil
}

// CaseStudyIPCErrors returns the §V-C headline: IPC MAPE of Datamime
// (with a different program) vs PerfProx across the two case-study targets
// (paper: 8.6% vs 19.4%).
func (r *Runner) CaseStudyIPCErrors() (datamime, perfprox float64, err error) {
	var dmErr, ppErr float64
	n := 0
	for _, w := range CaseStudyWorkloads() {
		tgt, err := r.TargetProfile(w, sim.Broadwell())
		if err != nil {
			return 0, 0, err
		}
		pp, err := r.CloneProfile(w, sim.Broadwell())
		if err != nil {
			return 0, 0, err
		}
		dm, err := r.DatamimeProfile(w, sim.Broadwell())
		if err != nil {
			return 0, 0, err
		}
		tv := tgt.Mean(profile.MetricIPC)
		dmErr += absFrac(tv, dm.Mean(profile.MetricIPC))
		ppErr += absFrac(tv, pp.Mean(profile.MetricIPC))
		n++
	}
	return dmErr / float64(n), ppErr / float64(n), nil
}

// ReweightedCaseStudy reruns the img-dnn search with a higher IPC-curve
// weight, reproducing the §V-C trade-off experiment: the IPC match improves
// at the expense of the LLC MPKI curve.
func (r *Runner) ReweightedCaseStudy(out io.Writer) error {
	w, err := WorkloadByName("img-dnn")
	if err != nil {
		return err
	}
	tgt, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		return err
	}
	def, err := r.Search(w, nil)
	if err != nil {
		return err
	}
	weighted, err := r.Search(w, core.NewErrorModel().WithWeight(core.CompIPCCurve, 6))
	if err != nil {
		return err
	}
	profileOf := func(res *core.Result) (*profile.Profile, error) {
		b := w.Generator.Benchmark(res.BestParams)
		b.Name = fmt.Sprintf("img-dnn-reweighted-%p", res)
		return r.BenchmarkProfile(b, sim.Broadwell())
	}
	dp, err := profileOf(def)
	if err != nil {
		return err
	}
	wp, err := profileOf(weighted)
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Case study (img-dnn): re-weighting the search toward IPC",
		Header: []string{"scheme", "IPC", "IPC err", "LLC MPKI", "LLC err"},
	}
	tIPC, tLLC := tgt.Mean(profile.MetricIPC), tgt.Mean(profile.MetricLLC)
	row := func(name string, p *profile.Profile) {
		t.AddRow(name, fnum(p.Mean(profile.MetricIPC)), fpct(absFrac(tIPC, p.Mean(profile.MetricIPC))),
			fnum(p.Mean(profile.MetricLLC)), fnum(abs(tLLC-p.Mean(profile.MetricLLC))))
	}
	t.AddRow("target", fnum(tIPC), "-", fnum(tLLC), "-")
	row("default weights", dp)
	row("ipc-weighted", wp)
	_, err = t.WriteTo(out)
	return err
}

func absFrac(target, got float64) float64 {
	if target == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	return abs(target-got) / abs(target)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
