package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// WriteTo renders the table. It implements a text layout only — the point
// is regenerating the *numbers* behind each figure, not the artwork.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	b.WriteString("\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// fnum formats a metric value compactly.
func fnum(v float64) string {
	switch {
	case v == 0:
		return "0.00"
	case v < 0.01:
		return fmt.Sprintf("%.4f", v)
	case v < 10:
		return fmt.Sprintf("%.2f", v)
	case v < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// fpct formats a ratio as a percentage.
func fpct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
