package harness

import (
	"io"

	"datamime/internal/datagen"
	"datamime/internal/profile"
	"datamime/internal/sim"
	"datamime/internal/workload"
)

// networkedMemFB returns the multi-machine variant of mem-fb (§V-F): the
// server and load generator on separate machines, so every request crosses
// the simulated kernel network stack. The search generator produces
// networked benchmarks too.
func networkedMemFB() Workload {
	target := memFB()
	target.Name = "mem-fb-net"
	target.Network = true
	gen := datagen.Memcached()
	inner := gen.Benchmark
	gen.Benchmark = func(x []float64) workload.Benchmark {
		b := inner(x)
		b.Network = true
		return b
	}
	return Workload{Name: "mem-fb-net", Target: target, Generator: gen}
}

// fig12Metrics are the key metrics reported in Fig. 12.
var fig12Metrics = []struct {
	id    profile.MetricID
	label string
}{
	{profile.MetricIPC, "IPC"},
	{profile.MetricLLC, "LLC MPKI"},
	{profile.MetricICache, "ICache MPKI"},
	{profile.MetricBranch, "Branch MPKI"},
	{profile.MetricCPUUtil, "CPU Util."},
	{profile.MetricMemBW, "Mem. Bw (GB/s)"},
}

// Figure12 reproduces Fig. 12: key metric averages of the networked mem-fb
// target vs. the Datamime benchmark generated under the same networked
// configuration.
func (r *Runner) Figure12(out io.Writer) error {
	w := networkedMemFB()
	tgt, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		return err
	}
	dm, err := r.DatamimeProfile(w, sim.Broadwell())
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Figure 12: networked mem-fb (server and client on separate machines)",
		Header: []string{"metric", "target", "datamime", "rel. err"},
	}
	for _, m := range fig12Metrics {
		tv, dv := tgt.Mean(m.id), dm.Mean(m.id)
		t.AddRow(m.label, fnum(tv), fnum(dv), fpct(absFrac(tv, dv)))
	}
	_, err = t.WriteTo(out)
	return err
}

// Figure13 reproduces Fig. 13: the IPC and LLC MPKI cache-sensitivity
// curves under the networked configuration.
func (r *Runner) Figure13(out io.Writer) error {
	w := networkedMemFB()
	tgt, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		return err
	}
	dm, err := r.DatamimeProfile(w, sim.Broadwell())
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Figure 13: networked mem-fb cache-sensitivity curves",
		Header: []string{"cache MB", "tgt IPC", "dm IPC", "tgt LLC", "dm LLC"},
	}
	for i := range tgt.Curve {
		if i >= len(dm.Curve) {
			break
		}
		tc, dc := tgt.Curve[i], dm.Curve[i]
		t.AddRow(fnum(float64(tc.SizeBytes>>20)),
			fnum(tc.IPC), fnum(dc.IPC), fnum(tc.LLCMPKI), fnum(dc.LLCMPKI))
	}
	_, err = t.WriteTo(out)
	return err
}
