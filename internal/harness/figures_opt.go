package harness

import (
	"fmt"
	"io"

	"datamime/internal/core"
	"datamime/internal/datagen"
	"datamime/internal/profile"
	"datamime/internal/sim"
)

// Figure10 reproduces Fig. 10: the minimum observed total EMD as a function
// of search iterations, for the five workloads.
func (r *Runner) Figure10(out io.Writer) error {
	t := &Table{
		Title:  "Figure 10: minimum observed total EMD vs. optimizer iteration",
		Header: []string{"iteration"},
	}
	var traces [][]float64
	for _, w := range Workloads() {
		res, err := r.Search(w, nil)
		if err != nil {
			return err
		}
		t.Header = append(t.Header, w.Name)
		traces = append(traces, res.MinEMDTrace())
	}
	n := 0
	for _, tr := range traces {
		if len(tr) > n {
			n = len(tr)
		}
	}
	step := n / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, tr := range traces {
			idx := i
			if idx >= len(tr) {
				idx = len(tr) - 1
			}
			row = append(row, fnum(tr[idx]))
		}
		t.AddRow(row...)
	}
	// Always include the final iteration.
	row := []string{fmt.Sprintf("%d", n)}
	for _, tr := range traces {
		row = append(row, fnum(tr[len(tr)-1]))
	}
	t.AddRow(row...)
	_, err := t.WriteTo(out)
	return err
}

// RangeSweepPoint is one point of Fig. 11's achievable-range sweep.
type RangeSweepPoint struct {
	Asked    float64
	Achieved float64
}

// rangeSweep runs single-metric-targeted searches over evenly spaced asked
// values (Fig. 11's methodology: "we configure Datamime to only match the
// target metric").
func (r *Runner) rangeSweep(g datagen.Generator, metric profile.MetricID, lo, hi float64) ([]RangeSweepPoint, error) {
	points := r.st.RangePoints
	if points < 2 {
		points = 2
	}
	pr := r.profiler(sim.Broadwell())
	pr.SkipCurves = true
	var out []RangeSweepPoint
	for i := 0; i < points; i++ {
		asked := lo + float64(i)*(hi-lo)/float64(points-1)
		res, err := core.Search(core.SearchConfig{
			Generator:  g,
			Objective:  core.MetricObjective{Metric: metric, Value: asked},
			Profiler:   pr,
			Iterations: r.st.RangeIterations,
			Seed:       r.st.Seed + uint64(i)*101,
			Parallel:   r.st.Parallel,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, RangeSweepPoint{Asked: asked, Achieved: res.BestProfile.Mean(metric)})
	}
	return out, nil
}

// fig11Ranges are the asked-value sweep ranges per metric.
var fig11Ranges = map[profile.MetricID][2]float64{
	profile.MetricIPC: {0.25, 3.5},
	profile.MetricLLC: {0.1, 30},
}

// Figure11 reproduces Fig. 11: the achievable IPC and LLC MPKI ranges of
// each dataset generator (asked value vs. achieved value; points on the
// diagonal are achievable).
func (r *Runner) Figure11(out io.Writer) error {
	for _, metric := range []profile.MetricID{profile.MetricIPC, profile.MetricLLC} {
		rg := fig11Ranges[metric]
		t := &Table{
			Title:  fmt.Sprintf("Figure 11: achievable %s range per generator (asked -> achieved)", metric),
			Header: []string{"asked"},
		}
		var sweeps [][]RangeSweepPoint
		for _, g := range datagen.All() {
			t.Header = append(t.Header, g.Name)
			sw, err := r.rangeSweep(g, metric, rg[0], rg[1])
			if err != nil {
				return err
			}
			sweeps = append(sweeps, sw)
		}
		for i := 0; i < len(sweeps[0]); i++ {
			row := []string{fnum(sweeps[0][i].Asked)}
			for _, sw := range sweeps {
				row = append(row, fnum(sw[i].Achieved))
			}
			t.AddRow(row...)
		}
		if _, err := t.WriteTo(out); err != nil {
			return err
		}
	}
	return nil
}
