package harness

import (
	"fmt"
	"io"

	"datamime/internal/profile"
	"datamime/internal/sim"
	"datamime/internal/stats"
)

// schemeProfiles collects the per-scheme profiles of one workload on one
// machine: target, public dataset (may be nil), PerfProx clone, Datamime.
type schemeProfiles struct {
	Target   *profile.Profile
	Public   *profile.Profile
	PerfProx *profile.Profile
	Datamime *profile.Profile
}

// schemes gathers all four scheme profiles for a workload on a machine.
func (r *Runner) schemes(w Workload, m sim.MachineConfig) (schemeProfiles, error) {
	var out schemeProfiles
	var err error
	if out.Target, err = r.TargetProfile(w, m); err != nil {
		return out, err
	}
	if w.Public != nil {
		if out.Public, err = r.PublicProfile(w, m); err != nil {
			return out, err
		}
	}
	if out.PerfProx, err = r.CloneProfile(w, m); err != nil {
		return out, err
	}
	if out.Datamime, err = r.DatamimeProfile(w, m); err != nil {
		return out, err
	}
	return out, nil
}

// Figure1 reproduces Fig. 1: mem-fb IPC and ICache MPKI on Broadwell, and
// IPC on Zen 2, for target vs public dataset vs PerfProx vs Datamime.
func (r *Runner) Figure1(out io.Writer) error {
	w, err := WorkloadByName("mem-fb")
	if err != nil {
		return err
	}
	bw, err := r.schemes(w, sim.Broadwell())
	if err != nil {
		return err
	}
	zen, err := r.schemes(w, sim.Zen2())
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Figure 1: memcached with a production-like (Facebook) dataset",
		Header: []string{"scheme", "IPC (broadwell)", "ICacheMPKI (broadwell)", "IPC (zen2)"},
	}
	row := func(name string, b, z *profile.Profile) {
		t.AddRow(name, fnum(b.Mean(profile.MetricIPC)), fnum(b.Mean(profile.MetricICache)),
			fnum(z.Mean(profile.MetricIPC)))
	}
	row("target", bw.Target, zen.Target)
	row("public-dataset", bw.Public, zen.Public)
	row("perfprox", bw.PerfProx, zen.PerfProx)
	row("datamime", bw.Datamime, zen.Datamime)
	_, err = t.WriteTo(out)
	return err
}

// Figure3 reproduces Fig. 3: IPC of all four schemes across the three
// machines for the five main workloads.
func (r *Runner) Figure3(out io.Writer) error {
	machines := sim.Machines()
	for _, w := range Workloads() {
		t := &Table{
			Title:  fmt.Sprintf("Figure 3 (%s): IPC across microarchitectures", w.Name),
			Header: []string{"scheme", "broadwell", "zen2", "silvermont"},
		}
		rows := map[string][]string{
			"target":         {"target"},
			"public-dataset": {"public-dataset"},
			"perfprox":       {"perfprox"},
			"datamime":       {"datamime"},
		}
		for _, m := range machines {
			sp, err := r.schemes(w, m)
			if err != nil {
				return err
			}
			rows["target"] = append(rows["target"], fnum(sp.Target.Mean(profile.MetricIPC)))
			rows["public-dataset"] = append(rows["public-dataset"], fnum(sp.Public.Mean(profile.MetricIPC)))
			rows["perfprox"] = append(rows["perfprox"], fnum(sp.PerfProx.Mean(profile.MetricIPC)))
			rows["datamime"] = append(rows["datamime"], fnum(sp.Datamime.Mean(profile.MetricIPC)))
		}
		for _, name := range []string{"target", "public-dataset", "perfprox", "datamime"} {
			t.AddRow(rows[name]...)
		}
		if _, err := t.WriteTo(out); err != nil {
			return err
		}
	}
	return nil
}

// ecdfQuantiles renders a distribution row: key quantiles plus, when a
// target distribution is given, the normalized EMD against it.
func ecdfQuantiles(name string, samples, target []float64) []string {
	e := stats.NewECDF(samples)
	row := []string{
		name,
		fnum(e.Quantile(0.10)), fnum(e.Quantile(0.25)), fnum(e.Quantile(0.50)),
		fnum(e.Quantile(0.75)), fnum(e.Quantile(0.90)),
	}
	if target != nil {
		row = append(row, fnum(stats.NormalizedEMD(target, samples)))
	} else {
		row = append(row, "-")
	}
	return row
}

// Figure4 reproduces Fig. 4: the eCDFs of CPU utilization and memory
// bandwidth for mem-fb across target, PerfProx, and Datamime.
func (r *Runner) Figure4(out io.Writer) error {
	w, err := WorkloadByName("mem-fb")
	if err != nil {
		return err
	}
	sp, err := r.schemes(w, sim.Broadwell())
	if err != nil {
		return err
	}
	for _, mt := range []struct {
		id    profile.MetricID
		title string
	}{
		{profile.MetricCPUUtil, "CPU utilization"},
		{profile.MetricMemBW, "memory bandwidth (GB/s)"},
	} {
		t := &Table{
			Title:  fmt.Sprintf("Figure 4: mem-fb eCDF of %s", mt.title),
			Header: []string{"scheme", "p10", "p25", "p50", "p75", "p90", "EMD vs target"},
		}
		tgt := sp.Target.Samples[mt.id]
		t.Rows = append(t.Rows,
			ecdfQuantiles("target", tgt, nil),
			ecdfQuantiles("perfprox", sp.PerfProx.Samples[mt.id], tgt),
			ecdfQuantiles("datamime", sp.Datamime.Samples[mt.id], tgt),
		)
		if _, err := t.WriteTo(out); err != nil {
			return err
		}
	}
	return nil
}

// fig6Metrics are the four metrics of Fig. 6.
var fig6Metrics = []struct {
	id    profile.MetricID
	label string
}{
	{profile.MetricIPC, "IPC"},
	{profile.MetricLLC, "LLC MPKI"},
	{profile.MetricICache, "ICache MPKI"},
	{profile.MetricBranch, "Branch MPKI"},
}

// Figure6 reproduces Fig. 6: per-metric averages of PerfProx and Datamime
// normalized to the target, for the five workloads, plus the headline
// error summary (IPC MAPE, per-metric MAE).
func (r *Runner) Figure6(out io.Writer) error {
	type cell struct{ target, perfprox, datamime float64 }
	values := make(map[string]map[profile.MetricID]cell)
	for _, w := range Workloads() {
		sp, err := r.schemes(w, sim.Broadwell())
		if err != nil {
			return err
		}
		values[w.Name] = make(map[profile.MetricID]cell)
		for _, m := range fig6Metrics {
			values[w.Name][m.id] = cell{
				target:   sp.Target.Mean(m.id),
				perfprox: sp.PerfProx.Mean(m.id),
				datamime: sp.Datamime.Mean(m.id),
			}
		}
	}
	for _, m := range fig6Metrics {
		t := &Table{
			Title:  fmt.Sprintf("Figure 6: %s (absolute, and normalized to target)", m.label),
			Header: []string{"workload", "target", "perfprox", "datamime", "pp/tgt", "dm/tgt"},
		}
		for _, w := range Workloads() {
			c := values[w.Name][m.id]
			t.AddRow(w.Name, fnum(c.target), fnum(c.perfprox), fnum(c.datamime),
				fnum(ratio(c.perfprox, c.target)), fnum(ratio(c.datamime, c.target)))
		}
		if _, err := t.WriteTo(out); err != nil {
			return err
		}
	}

	// Headline summary (§V-A): IPC mean absolute percentage error, and
	// mean absolute error for the other metrics.
	sum := &Table{
		Title:  "Figure 6 summary: error vs target across the five workloads",
		Header: []string{"metric", "perfprox", "datamime"},
	}
	for _, m := range fig6Metrics {
		var tgt, pp, dm []float64
		for _, w := range Workloads() {
			c := values[w.Name][m.id]
			tgt = append(tgt, c.target)
			pp = append(pp, c.perfprox)
			dm = append(dm, c.datamime)
		}
		if m.id == profile.MetricIPC {
			sum.AddRow("IPC MAPE", fpct(stats.MAPE(tgt, pp)), fpct(stats.MAPE(tgt, dm)))
		} else {
			sum.AddRow(m.label+" MAE", fnum(stats.MAE(tgt, pp)), fnum(stats.MAE(tgt, dm)))
		}
	}
	_, err := sum.WriteTo(out)
	return err
}

// IPCErrorSummary returns the headline numbers: Datamime's and PerfProx's
// IPC MAPE across the five workloads (paper: 3.2% vs 42.9%).
func (r *Runner) IPCErrorSummary() (datamime, perfprox float64, err error) {
	var tgt, pp, dm []float64
	for _, w := range Workloads() {
		sp, err := r.schemes(w, sim.Broadwell())
		if err != nil {
			return 0, 0, err
		}
		tgt = append(tgt, sp.Target.Mean(profile.MetricIPC))
		pp = append(pp, sp.PerfProx.Mean(profile.MetricIPC))
		dm = append(dm, sp.Datamime.Mean(profile.MetricIPC))
	}
	return stats.MAPE(tgt, dm), stats.MAPE(tgt, pp), nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 0
	}
	return a / b
}
