package harness

import (
	"io"

	"datamime/internal/core"
	"datamime/internal/datagen"
	"datamime/internal/profile"
	"datamime/internal/sim"
)

// ExtCompression runs the §III-D future-work extension end to end:
// profile the mem-fb target's snapshot compression ratio, then search the
// entropy-extended memcached generator twice — once with the standard
// ten-metric error model (compression unmatched) and once with the
// compression component weighted in — and compare the resulting ratios.
// The paper's motivating use case is evaluating cache/memory compression
// techniques without leaking the target's values.
func (r *Runner) ExtCompression(out io.Writer) error {
	w, err := WorkloadByName("mem-fb")
	if err != nil {
		return err
	}
	target, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		return err
	}

	gen := datagen.MemcachedCompressible()
	pr := r.profiler(sim.Broadwell())
	search := func(model *core.ErrorModel, seed uint64) (*core.Result, error) {
		return core.Search(core.SearchConfig{
			Generator:  gen,
			Objective:  core.NewProfileObjective(target, model),
			Profiler:   pr,
			Iterations: r.st.Iterations,
			Seed:       seed,
			Parallel:   r.st.Parallel,
		})
	}
	plain, err := search(core.NewErrorModel(), r.st.Seed)
	if err != nil {
		return err
	}
	aware, err := search(core.NewErrorModel().WithWeight(core.CompCompression, 2), r.st.Seed)
	if err != nil {
		return err
	}

	t := &Table{
		Title:  "Extension (§III-D): compression-aware dataset generation (mem-fb)",
		Header: []string{"scheme", "compress ratio", "ratio err", "total EMD (10-metric)"},
	}
	model := core.NewErrorModel()
	tgtRatio := target.Mean(profile.MetricCompress)
	row := func(name string, res *core.Result) {
		d, _ := model.Distance(target, res.BestProfile)
		got := res.BestProfile.Mean(profile.MetricCompress)
		t.AddRow(name, fnum(got), fpct(absFrac(tgtRatio, got)), fnum(d))
	}
	t.AddRow("target", fnum(tgtRatio), "-", "-")
	row("datamime (ratio unmatched)", plain)
	row("datamime + compression component", aware)
	_, err = t.WriteTo(out)
	return err
}
