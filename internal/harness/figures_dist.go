package harness

import (
	"fmt"
	"io"

	"datamime/internal/profile"
	"datamime/internal/sim"
)

// Figure7 reproduces Fig. 7: IPC and LLC MPKI curves across cache
// allocations (1 MB increments on Broadwell) for target, PerfProx, and
// Datamime on the five workloads.
func (r *Runner) Figure7(out io.Writer) error {
	for _, w := range Workloads() {
		sp, err := r.schemes(w, sim.Broadwell())
		if err != nil {
			return err
		}
		t := &Table{
			Title: fmt.Sprintf("Figure 7 (%s): cache-sensitivity curves", w.Name),
			Header: []string{"cache MB",
				"tgt IPC", "pp IPC", "dm IPC",
				"tgt LLC", "pp LLC", "dm LLC"},
		}
		for i := range sp.Target.Curve {
			if i >= len(sp.PerfProx.Curve) || i >= len(sp.Datamime.Curve) {
				break
			}
			tc, pc, dc := sp.Target.Curve[i], sp.PerfProx.Curve[i], sp.Datamime.Curve[i]
			t.AddRow(fmt.Sprintf("%d", tc.SizeBytes>>20),
				fnum(tc.IPC), fnum(pc.IPC), fnum(dc.IPC),
				fnum(tc.LLCMPKI), fnum(pc.LLCMPKI), fnum(dc.LLCMPKI))
		}
		if _, err := t.WriteTo(out); err != nil {
			return err
		}
	}
	return nil
}

// fig8Metrics are the six distributions plotted in Fig. 8.
var fig8Metrics = []struct {
	id    profile.MetricID
	label string
}{
	{profile.MetricIPC, "IPC"},
	{profile.MetricCPUUtil, "CPU utilization"},
	{profile.MetricICache, "ICache MPKI"},
	{profile.MetricL2, "L2 MPKI"},
	{profile.MetricBranch, "Branch MPKI"},
	{profile.MetricMemBW, "memory bandwidth (GB/s)"},
}

// Figure8 reproduces Fig. 8: the eCDFs of six key metrics for every
// workload under target, PerfProx, and Datamime.
func (r *Runner) Figure8(out io.Writer) error {
	for _, w := range Workloads() {
		sp, err := r.schemes(w, sim.Broadwell())
		if err != nil {
			return err
		}
		for _, m := range fig8Metrics {
			t := &Table{
				Title:  fmt.Sprintf("Figure 8 (%s): eCDF of %s", w.Name, m.label),
				Header: []string{"scheme", "p10", "p25", "p50", "p75", "p90", "EMD vs target"},
			}
			tgt := sp.Target.Samples[m.id]
			t.Rows = append(t.Rows,
				ecdfQuantiles("target", tgt, nil),
				ecdfQuantiles("perfprox", sp.PerfProx.Samples[m.id], tgt),
				ecdfQuantiles("datamime", sp.Datamime.Samples[m.id], tgt),
			)
			if _, err := t.WriteTo(out); err != nil {
				return err
			}
		}
	}
	return nil
}
