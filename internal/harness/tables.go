package harness

import (
	"fmt"
	"io"

	"datamime/internal/datagen"
	"datamime/internal/sim"
)

// Table1 reproduces Table I: the metrics captured by the Datamime profiler.
func (r *Runner) Table1(out io.Writer) error {
	t := &Table{
		Title:  "Table I: metrics captured by the Datamime profiler",
		Header: []string{"category", "metric"},
	}
	t.AddRow("Instruction Footprint", "Instruction Cache MPKI")
	t.AddRow("", "Instruction TLB MPKI")
	t.AddRow("Data Footprint", "L1 Data Cache MPKI")
	t.AddRow("", "L2 Cache MPKI")
	t.AddRow("", "Data TLB MPKI")
	t.AddRow("Cache Sensitivity", "Last-level Cache MPKI Curve (across cache sizes)")
	t.AddRow("", "IPC Curve (across cache sizes)")
	t.AddRow("Miscellaneous", "Branch MPKI")
	t.AddRow("", "CPU Utilization")
	t.AddRow("", "Memory Bandwidth Usage (GB/s)")
	_, err := t.WriteTo(out)
	return err
}

// Table2 reproduces Table II: the evaluation platforms, read back from the
// live machine configurations so the table always reflects the simulator.
func (r *Runner) Table2(out io.Writer) error {
	t := &Table{
		Title:  "Table II: simulated evaluation platforms",
		Header: []string{"machine", "freq", "width", "L1D", "L2", "LLC", "LLC policy"},
	}
	for _, m := range sim.Machines() {
		llc := "none (L2 is LLC)"
		policy := m.L2.Policy.String()
		if m.L3 != nil {
			llc = fmt.Sprintf("%d MB, %d-way", m.L3.SizeBytes>>20, m.L3.Ways)
			policy = m.L3.Policy.String()
		}
		t.AddRow(m.Name,
			fmt.Sprintf("%.1f GHz", m.FreqGHz),
			fmt.Sprintf("%d", m.Width),
			fmt.Sprintf("%d KB", m.L1D.SizeBytes>>10),
			fmt.Sprintf("%d KB", m.L2.SizeBytes>>10),
			llc, policy)
	}
	_, err := t.WriteTo(out)
	return err
}

// Table3 reproduces Table III: the dataset parameters of each generator,
// read back from the live parameter spaces.
func (r *Runner) Table3(out io.Writer) error {
	t := &Table{
		Title:  "Table III: dataset parameters per workload",
		Header: []string{"workload", "parameter", "range"},
	}
	for _, g := range datagen.All() {
		for i, p := range g.Space.Params {
			name := g.Name
			if i > 0 {
				name = ""
			}
			scale := ""
			if p.Log {
				scale = " (log)"
			}
			if p.Integer {
				scale += " (int)"
			}
			t.AddRow(name, p.Name, fmt.Sprintf("[%g, %g]%s", p.Lo, p.Hi, scale))
		}
	}
	_, err := t.WriteTo(out)
	return err
}
