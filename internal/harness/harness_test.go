package harness

import (
	"strings"
	"testing"

	"datamime/internal/profile"
	"datamime/internal/sim"
)

// tinySettings keep harness tests fast while exercising every code path.
func tinySettings() Settings {
	st := Quick()
	st.Iterations = 8
	st.WindowCycles = 120_000
	st.Windows = 8
	st.WarmupWindows = 2
	st.CurveWindows = 2
	st.CurvePoints = 3
	st.RangePoints = 2
	st.RangeIterations = 4
	return st
}

func TestWorkloadRegistry(t *testing.T) {
	ws := Workloads()
	if len(ws) != 5 {
		t.Fatalf("%d main workloads", len(ws))
	}
	names := []string{"mem-fb", "mem-twtr", "silo", "xapian", "dnn"}
	for i, w := range ws {
		if w.Name != names[i] {
			t.Fatalf("workload %d = %s, want %s", i, w.Name, names[i])
		}
		if err := w.Target.Validate(); err != nil {
			t.Fatalf("%s target: %v", w.Name, err)
		}
		if w.Public == nil {
			t.Fatalf("%s missing public dataset", w.Name)
		}
		if err := w.Public.Validate(); err != nil {
			t.Fatalf("%s public: %v", w.Name, err)
		}
		if w.Generator.Space == nil {
			t.Fatalf("%s missing generator", w.Name)
		}
	}
	cs := CaseStudyWorkloads()
	if len(cs) != 2 || cs[0].Name != "masstree" || cs[1].Name != "img-dnn" {
		t.Fatalf("case studies: %+v", cs)
	}
	// masstree is searched with the memcached generator, img-dnn with dnn.
	if cs[0].Generator.Name != "memcached" || cs[1].Generator.Name != "dnn" {
		t.Fatal("case-study generators must use different programs")
	}
	if _, err := WorkloadByName("mem-fb"); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadByName("masstree"); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload resolved")
	}
}

func TestStaticTables(t *testing.T) {
	r := NewRunner(tinySettings())
	var sb strings.Builder
	if err := r.Table1(&sb); err != nil {
		t.Fatal(err)
	}
	if err := r.Table2(&sb); err != nil {
		t.Fatal(err)
	}
	if err := r.Table3(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Instruction Cache MPKI", "IPC Curve",
		"broadwell", "zen2", "silvermont", "DRRIP",
		"get_ratio", "warehouses", "zipf_skew", "first_chan",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables missing %q:\n%s", want, out)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bbb"}}
	tab.AddRow("x", "1.0")
	tab.AddRow("yyyy", "22")
	var sb strings.Builder
	if _, err := tab.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "yyyy") {
		t.Fatalf("table output:\n%s", out)
	}
	if fnum(0) != "0.00" || fnum(0.001) != "0.0010" || fnum(3.14159) != "3.14" ||
		fnum(42.5) != "42.5" || fnum(12345) != "12345" {
		t.Fatal("fnum formatting broken")
	}
	if fpct(0.123) != "12.3%" {
		t.Fatal("fpct formatting broken")
	}
}

func TestRunnerCachesProfiles(t *testing.T) {
	st := tinySettings()
	r := NewRunner(st)
	w, _ := WorkloadByName("mem-fb")
	p1, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("target profile not cached")
	}
	// Different machines produce different cached entries.
	p3, err := r.TargetProfile(w, sim.Zen2())
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("machine not part of cache key")
	}
}

func TestFigure1SmokeAndSchemeSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("search-backed figure")
	}
	r := NewRunner(tinySettings())
	var sb strings.Builder
	if err := r.Figure1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"target", "public-dataset", "perfprox", "datamime"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 1 missing scheme %q:\n%s", want, out)
		}
	}
	// Scheme sanity on the cached profiles: the clone must peg CPU util,
	// the target must not.
	w, _ := WorkloadByName("mem-fb")
	tgt, err := r.TargetProfile(w, sim.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	clone, err := r.CloneProfile(w, sim.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Mean(profile.MetricCPUUtil) > 0.9 {
		t.Fatalf("target unexpectedly saturated: util %g", tgt.Mean(profile.MetricCPUUtil))
	}
	if clone.Mean(profile.MetricCPUUtil) < 0.99 {
		t.Fatalf("clone not static: util %g", clone.Mean(profile.MetricCPUUtil))
	}
}

func TestFigure10TraceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("search-backed figure")
	}
	st := tinySettings()
	r := NewRunner(st)
	w, _ := WorkloadByName("mem-fb")
	res, err := r.Search(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.MinEMDTrace()
	if len(tr) != st.Iterations {
		t.Fatalf("trace length %d", len(tr))
	}
	for i := 1; i < len(tr); i++ {
		if tr[i] > tr[i-1] {
			t.Fatal("min EMD trace not non-increasing")
		}
	}
	// Search results are cached.
	res2, err := r.Search(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != res2 {
		t.Fatal("search not cached")
	}
}

func TestNetworkedWorkloadConstruction(t *testing.T) {
	w := networkedMemFB()
	if !w.Target.Network {
		t.Fatal("networked target must enable the network stack")
	}
	b := w.Generator.Benchmark(w.Generator.Space.Denormalize(make([]float64, w.Generator.Space.Dim())))
	if !b.Network {
		t.Fatal("networked generator must produce networked benchmarks")
	}
}

func TestExtCompressionExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("search-backed experiment")
	}
	st := tinySettings()
	r := NewRunner(st)
	var sb strings.Builder
	if err := r.ExtCompression(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "compression") || !strings.Contains(out, "target") {
		t.Fatalf("extension output:\n%s", out)
	}
}

func TestExperimentDispatchCoversAllIDs(t *testing.T) {
	// Every registered id must dispatch to *something* (we only execute the
	// static ones here; the rest return promptly or are search-backed and
	// validated by the benches).
	ids := ExperimentIDs()
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate experiment id %s", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"fig1", "fig13", "table4", "ext-compression", "ablation-optimizers"} {
		if !seen[want] {
			t.Fatalf("experiment %s missing from registry", want)
		}
	}
}

func TestSettingsPresets(t *testing.T) {
	full, quick := Full(), Quick()
	if full.Iterations != 200 {
		t.Fatalf("full iterations = %d, want the paper's 200", full.Iterations)
	}
	if quick.Iterations >= full.Iterations || quick.Windows >= full.Windows {
		t.Fatal("quick settings not smaller than full")
	}
	if full.RangePoints != 15 {
		t.Fatalf("full range points = %d, want the paper's 15", full.RangePoints)
	}
}
