package harness

import (
	"fmt"
	"io"
)

// experimentTable maps experiment ids to their runner methods, in the
// paper's order.
var experimentOrder = []string{
	"fig1", "fig3", "fig4",
	"table1", "table2", "table3",
	"fig6", "fig7", "fig8",
	"fig9", "table4",
	"fig10", "fig11", "fig12", "fig13",
	"ablation-optimizers", "ablation-error-model", "ablation-weights",
	"ablation-distance", "ext-compression",
}

// RunExperiment regenerates one table or figure by id into out.
func RunExperiment(r *Runner, id string, out io.Writer) error {
	switch id {
	case "fig1":
		return r.Figure1(out)
	case "fig3":
		return r.Figure3(out)
	case "fig4":
		return r.Figure4(out)
	case "fig6":
		return r.Figure6(out)
	case "fig7":
		return r.Figure7(out)
	case "fig8":
		return r.Figure8(out)
	case "fig9":
		return r.Figure9(out)
	case "fig10":
		return r.Figure10(out)
	case "fig11":
		return r.Figure11(out)
	case "fig12":
		return r.Figure12(out)
	case "fig13":
		return r.Figure13(out)
	case "table1":
		return r.Table1(out)
	case "table2":
		return r.Table2(out)
	case "table3":
		return r.Table3(out)
	case "table4":
		return r.Table4(out)
	case "ablation-optimizers":
		return r.AblationOptimizers(out)
	case "ablation-error-model":
		return r.AblationErrorModel(out)
	case "ablation-weights":
		return r.AblationWeights(out)
	case "ablation-distance":
		return r.AblationDistance(out)
	case "ext-compression":
		return r.ExtCompression(out)
	default:
		return fmt.Errorf("harness: unknown experiment %q (known: %v)", id, experimentOrder)
	}
}

// ExperimentIDs lists every regenerable experiment id in the paper's order.
func ExperimentIDs() []string {
	out := make([]string, len(experimentOrder))
	copy(out, experimentOrder)
	return out
}
