// Package harness wires the full evaluation together: the target workloads
// (with their hidden datasets), the alternative public datasets, the
// PerfProx-style cloning baseline, and Datamime searches — and regenerates
// every table and figure of the paper's evaluation section as formatted
// text. See DESIGN.md's per-experiment index for the mapping.
package harness

import (
	"fmt"

	"datamime/internal/apps/kvstore"
	"datamime/internal/apps/masstree"
	"datamime/internal/apps/nn"
	"datamime/internal/apps/searchidx"
	"datamime/internal/apps/silodb"
	"datamime/internal/datagen"
	"datamime/internal/trace"
	"datamime/internal/workload"
)

// Workload bundles one evaluation target: the hidden target benchmark, the
// alternative public dataset (the red bars of Figs. 1 and 3, when one
// exists), and the dataset generator Datamime searches for it.
type Workload struct {
	// Name is the paper's workload name (mem-fb, mem-twtr, silo, xapian,
	// dnn, masstree, img-dnn).
	Name string
	// Target is the production workload to mimic. Its dataset
	// configuration is hidden from the search.
	Target workload.Benchmark
	// Public is the same application driven with a publicly available
	// dataset; nil for the case-study targets.
	Public *workload.Benchmark
	// Generator is the dataset generator used in the search. For the
	// case-study targets it drives a *different* program than the target
	// (memcached for masstree, dnn for img-dnn — §V-C).
	Generator datagen.Generator
}

// target benchmark constructors; each hides its dataset configuration
// behind a server factory.

func memFB() workload.Benchmark {
	return workload.Benchmark{
		Name: "mem-fb",
		QPS:  kvstore.FacebookQPS,
		NewServer: func(l *trace.CodeLayout, seed uint64) workload.Server {
			return kvstore.New(kvstore.FacebookTarget(), l, seed)
		},
	}
}

func memTwtr() workload.Benchmark {
	return workload.Benchmark{
		Name: "mem-twtr",
		QPS:  kvstore.TwitterQPS,
		NewServer: func(l *trace.CodeLayout, seed uint64) workload.Server {
			return kvstore.New(kvstore.TwitterTarget(), l, seed)
		},
	}
}

func memPublic() workload.Benchmark {
	return workload.Benchmark{
		Name: "mem-public",
		QPS:  kvstore.TailbenchQPS,
		NewServer: func(l *trace.CodeLayout, seed uint64) workload.Server {
			return kvstore.New(kvstore.TailbenchDefault(), l, seed)
		},
	}
}

func siloTarget() workload.Benchmark {
	return workload.Benchmark{
		Name: "silo",
		QPS:  silodb.BiddingQPS,
		NewServer: func(l *trace.CodeLayout, seed uint64) workload.Server {
			return silodb.New(silodb.BiddingTarget(), l, seed)
		},
	}
}

func siloPublic() workload.Benchmark {
	return workload.Benchmark{
		Name: "silo-public",
		QPS:  silodb.TPCCDefaultQPS,
		NewServer: func(l *trace.CodeLayout, seed uint64) workload.Server {
			return silodb.New(silodb.TPCCDefault(), l, seed)
		},
	}
}

func xapianTarget() workload.Benchmark {
	return workload.Benchmark{
		Name: "xapian",
		QPS:  searchidx.WikipediaQPS,
		NewServer: func(l *trace.CodeLayout, seed uint64) workload.Server {
			return searchidx.New(searchidx.WikipediaTarget(), l, seed)
		},
	}
}

func xapianPublic() workload.Benchmark {
	return workload.Benchmark{
		Name: "xapian-public",
		QPS:  searchidx.StackOverflowQPS,
		NewServer: func(l *trace.CodeLayout, seed uint64) workload.Server {
			return searchidx.New(searchidx.StackOverflowDefault(), l, seed)
		},
	}
}

func dnnTarget() workload.Benchmark {
	return workload.Benchmark{
		Name: "dnn",
		QPS:  nn.ResNetQPS,
		NewServer: func(l *trace.CodeLayout, seed uint64) workload.Server {
			return nn.New(nn.ResNet50Target(), l, seed)
		},
	}
}

func dnnPublic() workload.Benchmark {
	return workload.Benchmark{
		Name: "dnn-public",
		QPS:  nn.ShuffleNetQPS,
		NewServer: func(l *trace.CodeLayout, seed uint64) workload.Server {
			return nn.New(nn.ShuffleNetDefault(), l, seed)
		},
	}
}

func masstreeTarget() workload.Benchmark {
	return workload.Benchmark{
		Name: "masstree",
		QPS:  masstree.YCSBQPS,
		NewServer: func(l *trace.CodeLayout, seed uint64) workload.Server {
			return masstree.New(masstree.YCSBTarget(), l, seed)
		},
	}
}

func imgDNNTarget() workload.Benchmark {
	return workload.Benchmark{
		Name: "img-dnn",
		QPS:  nn.AutoencoderQPS,
		NewServer: func(l *trace.CodeLayout, seed uint64) workload.Server {
			return nn.NewAutoencoderServer(l, seed)
		},
	}
}

// Workloads returns the five main evaluation targets, in the paper's order.
func Workloads() []Workload {
	pub := func(b workload.Benchmark) *workload.Benchmark { return &b }
	return []Workload{
		{Name: "mem-fb", Target: memFB(), Public: pub(memPublic()), Generator: datagen.Memcached()},
		{Name: "mem-twtr", Target: memTwtr(), Public: pub(memPublic()), Generator: datagen.Memcached()},
		{Name: "silo", Target: siloTarget(), Public: pub(siloPublic()), Generator: datagen.Silo()},
		{Name: "xapian", Target: xapianTarget(), Public: pub(xapianPublic()), Generator: datagen.Xapian()},
		{Name: "dnn", Target: dnnTarget(), Public: pub(dnnPublic()), Generator: datagen.DNN()},
	}
}

// CaseStudyWorkloads returns the §V-C targets, each paired with a
// generator that drives a *different but functionally similar* program.
func CaseStudyWorkloads() []Workload {
	return []Workload{
		{Name: "masstree", Target: masstreeTarget(), Generator: datagen.Memcached()},
		{Name: "img-dnn", Target: imgDNNTarget(), Generator: datagen.DNN()},
	}
}

// WorkloadByName resolves a workload across both sets.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range CaseStudyWorkloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("harness: unknown workload %q", name)
}
