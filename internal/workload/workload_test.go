package workload

import (
	"math"
	"testing"

	"datamime/internal/apps/kvstore"
	"datamime/internal/sim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

func kvBenchmark(qps float64, network bool) Benchmark {
	return Benchmark{
		Name:    "kv-test",
		QPS:     qps,
		Network: network,
		NewServer: func(layout *trace.CodeLayout, seed uint64) Server {
			cfg := kvstore.Config{
				NumKeys:        3000,
				KeySize:        stats.Normal{Mu: 24, Sigma: 4, Min: 8},
				ValueSize:      stats.Normal{Mu: 256, Sigma: 64, Min: 16},
				GetRatio:       0.9,
				PopularitySkew: 0.8,
			}
			return kvstore.New(cfg, layout, seed)
		},
	}
}

func TestBenchmarkValidate(t *testing.T) {
	good := kvBenchmark(1000, false)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Benchmark{
		{QPS: 100, NewServer: good.NewServer},           // no name
		{Name: "x", NewServer: good.NewServer},          // no QPS
		{Name: "x", QPS: -5, NewServer: good.NewServer}, // bad QPS
		{Name: "x", QPS: 100},                           // no factory
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("bad benchmark %d validated", i)
		}
	}
}

func runKV(t *testing.T, qps float64, network bool, windows int) (*sim.Machine, RunResult) {
	t.Helper()
	b := kvBenchmark(qps, network)
	m := sim.NewMachine(sim.Broadwell(), 200_000)
	layout := trace.NewCodeLayout()
	srv := b.NewServer(layout, 1)
	res := Run(m, b, srv, windows, 42, 0)
	return m, res
}

func TestRunClosesRequestedWindows(t *testing.T) {
	m, res := runKV(t, 50_000, false, 10)
	if res.WindowsClosed < 10 {
		t.Fatalf("closed %d windows, want >= 10", res.WindowsClosed)
	}
	if len(m.Samples()) < 10 {
		t.Fatalf("machine has %d samples", len(m.Samples()))
	}
	if res.Requests == 0 {
		t.Fatal("no requests processed")
	}
}

func TestUtilizationScalesWithQPS(t *testing.T) {
	util := func(qps float64) float64 {
		m, _ := runKV(t, qps, false, 12)
		var samples []float64
		for _, s := range m.Samples() {
			samples = append(samples, s.CPUUtil)
		}
		return stats.Mean(samples)
	}
	low := util(10_000)
	high := util(300_000)
	if low >= high {
		t.Fatalf("utilization did not scale with load: %.3f vs %.3f", low, high)
	}
	if low > 0.6 {
		t.Fatalf("low-QPS utilization = %.3f, want light load", low)
	}
}

func TestAchievedQPSTracksOfferedUnderLightLoad(t *testing.T) {
	_, res := runKV(t, 20_000, false, 15)
	if res.AchievedQPS <= 0 {
		t.Fatal("no achieved QPS")
	}
	ratio := res.AchievedQPS / res.OfferedQPS
	if math.Abs(ratio-1) > 0.25 {
		t.Fatalf("achieved/offered = %.2f under light load", ratio)
	}
}

func TestSaturationCapsThroughput(t *testing.T) {
	// Offer far more load than one core can serve: utilization pegs at ~1
	// and achieved < offered.
	m, res := runKV(t, 5_000_000, false, 12)
	var utils []float64
	for _, s := range m.Samples() {
		utils = append(utils, s.CPUUtil)
	}
	if u := stats.Mean(utils); u < 0.95 {
		t.Fatalf("saturated utilization = %.3f", u)
	}
	if res.AchievedQPS > res.OfferedQPS*0.9 {
		t.Fatalf("achieved %.0f vs offered %.0f under saturation", res.AchievedQPS, res.OfferedQPS)
	}
}

func TestNetworkModeAddsWork(t *testing.T) {
	// At equal QPS, the networked configuration must execute more
	// instructions per request (kernel stack) than shared memory.
	instrPerReq := func(network bool) float64 {
		m, res := runKV(t, 40_000, network, 12)
		var total uint64
		for _, s := range m.Samples() {
			total += s.Instructions
		}
		return float64(total) / float64(res.Requests)
	}
	plain := instrPerReq(false)
	netted := instrPerReq(true)
	if netted <= plain*1.05 {
		t.Fatalf("network stack added no work: %.0f vs %.0f instrs/req", plain, netted)
	}
}

func TestMaxRequestsBoundsRun(t *testing.T) {
	b := kvBenchmark(100, false) // so slow that windows barely close
	m := sim.NewMachine(sim.Broadwell(), 1e12)
	srv := b.NewServer(trace.NewCodeLayout(), 1)
	res := Run(m, b, srv, 1, 42, 500)
	if res.Requests != 500 {
		t.Fatalf("maxRequests not honored: %d", res.Requests)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() RunResult {
		b := kvBenchmark(40_000, false)
		m := sim.NewMachine(sim.Broadwell(), 200_000)
		srv := b.NewServer(trace.NewCodeLayout(), 5)
		return Run(m, b, srv, 8, 77, 0)
	}
	a, bb := run(), run()
	if a.Requests != bb.Requests || a.AchievedQPS != bb.AchievedQPS {
		t.Fatalf("same-seed runs diverged: %+v vs %+v", a, bb)
	}
}

func TestNetworkStackEmitsKernelCode(t *testing.T) {
	ns := NewNetworkStack(trace.NewCodeLayoutAt(0x2000000))
	rec := trace.NewRecorder()
	ns.Receive(rec, 1000)
	ns.Send(rec, 5000)
	if !rec.DistinctRegions["kernel.tcpip"] || !rec.DistinctRegions["kernel.irq"] {
		t.Fatalf("kernel regions missing: %v", rec.DistinctRegions)
	}
	if rec.StoreBytes < 1000 || rec.LoadBytes < 5000 {
		t.Fatalf("socket copies too small: %d in / %d out", rec.StoreBytes, rec.LoadBytes)
	}
}

func TestNetworkStackHandlesDegenerateSizes(t *testing.T) {
	ns := NewNetworkStack(trace.NewCodeLayoutAt(0x2000000))
	rec := trace.NewRecorder()
	ns.Receive(rec, 0)
	ns.Send(rec, -1)
	if rec.Instrs == 0 {
		t.Fatal("degenerate messages still carry protocol work")
	}
}
