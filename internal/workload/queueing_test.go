package workload

import (
	"math"
	"testing"

	"datamime/internal/sim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

// fixedCostServer burns a deterministic number of instructions per request
// so queueing behavior can be checked against M/D/1 theory.
type fixedCostServer struct {
	code   *trace.CodeRegion
	instrs int
}

func (f *fixedCostServer) Name() string { return "fixed" }
func (f *fixedCostServer) Handle(col trace.Collector, _ *stats.RNG) {
	col.Exec(f.code, f.instrs)
}

func fixedBenchmark(qps float64, instrs int) (Benchmark, *fixedCostServer) {
	srv := &fixedCostServer{instrs: instrs}
	b := Benchmark{
		Name: "fixed",
		QPS:  qps,
		NewServer: func(layout *trace.CodeLayout, _ uint64) Server {
			srv.code = layout.Region("fixed.op", 2048)
			return srv
		},
	}
	return b, srv
}

// TestUtilizationMatchesLittleLaw: with deterministic service time S and
// Poisson arrivals at rate λ < 1/S, long-run utilization must approach λ·S.
func TestUtilizationMatchesLittleLaw(t *testing.T) {
	cfg := sim.Broadwell()
	// 40_000 instructions at width 4 ≈ 10_000 busy cycles per request
	// (resident code, no stalls after warmup).
	const instrs = 40_000
	serviceCyc := float64(instrs) * cfg.BaseCPI()
	for _, rho := range []float64{0.2, 0.5, 0.8} {
		qps := rho * cfg.CyclesPerSecond() / serviceCyc
		b, _ := fixedBenchmark(qps, instrs)
		m := sim.NewMachine(cfg, 200_000)
		srv := b.NewServer(trace.NewCodeLayout(), 1)
		Run(m, b, srv, 40, 3, 0)
		var utils []float64
		for _, w := range m.WallSamples() {
			utils = append(utils, w.CPUUtil)
		}
		got := stats.Mean(utils)
		if math.Abs(got-rho) > 0.08 {
			t.Fatalf("rho=%.1f: measured utilization %.3f", rho, got)
		}
	}
}

// TestUtilizationVarianceGrowsWithBurstiness: at equal mean utilization, a
// heavy-tailed service-time mix has a wider utilization distribution than a
// deterministic one — the time-varying behavior Fig. 4 builds on.
func TestUtilizationVarianceGrowsWithBurstiness(t *testing.T) {
	cfg := sim.Broadwell()
	run := func(heavyTail bool) float64 {
		var b Benchmark
		if heavyTail {
			srv := &mixedCostServer{}
			b = Benchmark{
				Name: "mixed",
				QPS:  20_000,
				NewServer: func(layout *trace.CodeLayout, _ uint64) Server {
					srv.code = layout.Region("mixed.op", 2048)
					return srv
				},
			}
		} else {
			b, _ = fixedBenchmark(20_000, 20_000)
		}
		m := sim.NewMachine(cfg, 200_000)
		srv := b.NewServer(trace.NewCodeLayout(), 1)
		Run(m, b, srv, 40, 5, 0)
		var utils []float64
		for _, w := range m.WallSamples() {
			utils = append(utils, w.CPUUtil)
		}
		return stats.Std(utils)
	}
	fixed := run(false)
	heavy := run(true)
	if heavy <= fixed {
		t.Fatalf("heavy-tailed services did not widen the util distribution: %.4f vs %.4f", heavy, fixed)
	}
}

// mixedCostServer serves mostly cheap requests with occasional 50x ones —
// mean cost equal to the 20_000-instruction fixed server.
type mixedCostServer struct {
	code *trace.CodeRegion
	n    int
}

func (s *mixedCostServer) Name() string { return "mixed" }
func (s *mixedCostServer) Handle(col trace.Collector, _ *stats.RNG) {
	s.n++
	if s.n%50 == 0 {
		col.Exec(s.code, 20_000*25+10_000) // rare huge request
	} else {
		col.Exec(s.code, 20_000/2)
	}
}

// TestQueueingDelayUnderBursts: an open-loop server must keep accepting
// (and queueing) requests even above saturation; throughput caps at the
// service rate.
func TestThroughputCapsAtServiceRate(t *testing.T) {
	cfg := sim.Broadwell()
	const instrs = 40_000
	serviceCyc := float64(instrs) * cfg.BaseCPI()
	capacity := cfg.CyclesPerSecond() / serviceCyc
	b, _ := fixedBenchmark(capacity*3, instrs) // 3x overload
	m := sim.NewMachine(cfg, 200_000)
	srv := b.NewServer(trace.NewCodeLayout(), 1)
	res := Run(m, b, srv, 30, 7, 0)
	if res.AchievedQPS > capacity*1.1 {
		t.Fatalf("achieved %.0f QPS above capacity %.0f", res.AchievedQPS, capacity)
	}
	if res.AchievedQPS < capacity*0.8 {
		t.Fatalf("achieved %.0f QPS far below capacity %.0f under overload", res.AchievedQPS, capacity)
	}
}
