// Package workload drives request-driven application substrates against a
// simulated machine: an open-loop load generator with Poisson arrivals (the
// role mutilate and the Tailbench harness play in the paper), a FIFO
// single-worker service model that turns arrival bursts and heavy-tailed
// service times into the CPU-utilization and performance-counter
// distributions Datamime profiles, and an optional kernel network-stack
// model for the multi-machine configuration (§V-F).
package workload

import (
	"fmt"

	"datamime/internal/sim"
	"datamime/internal/stats"
	"datamime/internal/trace"
)

// Server is a request-driven application. Implementations process one
// request per Handle call, emitting their execution events into the
// collector. Handle must be deterministic given the RNG stream.
type Server interface {
	// Name identifies the application.
	Name() string
	// Handle services one request.
	Handle(col trace.Collector, rng *stats.RNG)
}

// Benchmark couples a server factory with its load configuration; it is
// what the profiler runs. NewServer is called once per profiling run so
// every run gets a fresh dataset instance and simulated heap.
type Benchmark struct {
	// Name identifies the benchmark configuration.
	Name string
	// QPS is the offered load in queries per second.
	QPS float64
	// Network enables the simulated kernel network stack per request
	// (client and server on separate machines, §V-F). When false, requests
	// arrive over shared memory as in the Tailbench integrated setup.
	Network bool
	// NewServer builds a fresh server instance. The layout provides the
	// simulated text segment; seed derives the dataset's RNG streams.
	NewServer func(layout *trace.CodeLayout, seed uint64) Server
}

// Validate reports configuration errors.
func (b Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("workload: benchmark without a name")
	}
	if b.QPS <= 0 {
		return fmt.Errorf("workload: benchmark %q needs positive QPS", b.Name)
	}
	if b.NewServer == nil {
		return fmt.Errorf("workload: benchmark %q has no server factory", b.Name)
	}
	return nil
}

// NetworkStack models the per-request kernel networking work of the
// multi-machine configuration: interrupt handling, protocol processing,
// socket buffer copies, and syscall dispatch. It adds instruction footprint
// (kernel code is distinct from application code) and data traffic
// proportional to message sizes.
type NetworkStack struct {
	irq     *trace.CodeRegion
	proto   *trace.CodeRegion
	syscall *trace.CodeRegion
	copyFn  *trace.CodeRegion
	sockBuf uint64
	bufSize int
}

// NewNetworkStack lays out the kernel code and socket buffers. The socket
// buffer lives at a fixed kernel address between the text segment and the
// application heap; every Run builds its own stack for its own Machine, so
// the fixed address is deterministic and collision-free.
func NewNetworkStack(layout *trace.CodeLayout) *NetworkStack {
	const bufSize = 16 << 10
	return &NetworkStack{
		irq:     layout.Region("kernel.irq", 6<<10),
		proto:   layout.Region("kernel.tcpip", 24<<10),
		syscall: layout.Region("kernel.syscall", 8<<10),
		copyFn:  layout.Region("kernel.copy", 2<<10),
		sockBuf: kernelHeapBase,
		bufSize: bufSize,
	}
}

// Receive models packet reception and delivery of a request of the given
// size to user space.
func (n *NetworkStack) Receive(col trace.Collector, size int) {
	col.Exec(n.irq, 400)
	col.Exec(n.proto, 1800)
	col.Exec(n.syscall, 500)
	n.copyBuf(col, size, false)
}

// Send models transmitting a response of the given size.
func (n *NetworkStack) Send(col trace.Collector, size int) {
	col.Exec(n.syscall, 450)
	col.Exec(n.proto, 1500)
	n.copyBuf(col, size, true)
	col.Exec(n.irq, 250)
}

// copyBuf models the user/kernel copy through the socket buffer.
func (n *NetworkStack) copyBuf(col trace.Collector, size int, out bool) {
	if size <= 0 {
		size = 1
	}
	for off := 0; off < size; off += n.bufSize {
		chunk := size - off
		if chunk > n.bufSize {
			chunk = n.bufSize
		}
		if out {
			col.Load(n.sockBuf, chunk)
		} else {
			col.Store(n.sockBuf, chunk)
		}
		col.Branch(n.proto.Base, off+chunk < size)
	}
}

// Warmable is implemented by servers that can pre-touch their resident
// dataset. The profiler warms servers before measuring so runs reflect the
// steady state of a long-running service (the paper profiles production
// servers and Dynaway measures 10 B-cycle intervals; a freshly-constructed
// simulated server would otherwise spend entire measurement windows taking
// cold misses, flattening the cache-sensitivity curves).
type Warmable interface {
	// WarmDataset touches the resident dataset once, emitting the loads
	// into col (typically the machine, filling its caches).
	WarmDataset(col trace.Collector)
}

// Compressible is implemented by servers that can report the compression
// ratio of their resident data snapshot. It backs the compression-aware
// dataset-generation extension the paper sketches as future work (§III-D):
// the profiler records the ratio, and a generator with a value-entropy
// parameter can be searched to match it without ever seeing the data.
type Compressible interface {
	// CompressionRatio estimates original/compressed size of the resident
	// dataset (>= 1; 1 = incompressible).
	CompressionRatio() float64
}

// Sizer is implemented by servers whose request/response sizes the network
// stack should reflect; others fall back to a small fixed message.
type Sizer interface {
	// LastMessageSizes returns the sizes, in bytes, of the most recent
	// request and its response.
	LastMessageSizes() (req, resp int)
}

// RunResult summarizes a driver run.
type RunResult struct {
	Requests      int
	WindowsClosed int
	// OfferedQPS and AchievedQPS compare load to throughput; a saturated
	// server achieves less than offered.
	OfferedQPS  float64
	AchievedQPS float64
}

// Run drives the benchmark on the machine until the machine has closed the
// requested number of counter windows (plus any already closed). Arrivals
// are Poisson at b.QPS; service is FIFO on the machine's single simulated
// core. Returns the run summary.
//
// maxRequests bounds runaway runs (e.g., a mis-parameterized server whose
// requests never fill a window); <= 0 means a generous default.
func Run(m *sim.Machine, b Benchmark, srv Server, windows int, seed uint64, maxRequests int) RunResult {
	if maxRequests <= 0 {
		maxRequests = 4_000_000
	}
	arrivalRNG := stats.NewRNG(stats.HashSeed(seed, "arrivals"))
	reqRNG := stats.NewRNG(stats.HashSeed(seed, "requests"))

	cycPerSec := m.Config().CyclesPerSecond()
	meanGapCyc := cycPerSec / b.QPS

	var net *NetworkStack
	if b.Network {
		net = NewNetworkStack(trace.NewCodeLayoutAt(kernelCodeBase))
	}

	target := len(m.Samples()) + windows
	var arrivalClock float64 // absolute arrival time, cycles
	var serverFree float64   // when the worker becomes free, cycles
	res := RunResult{OfferedQPS: b.QPS}
	startCycles := m.TotalCycles()

	for len(m.Samples()) < target && res.Requests < maxRequests {
		arrivalClock += meanGapCyc * arrivalRNG.ExpFloat64()
		if arrivalClock > serverFree {
			// The worker idles until the next request arrives.
			m.Idle(arrivalClock - serverFree)
			serverFree = arrivalClock
		}
		busyBefore := m.BusyCycles()
		if net != nil {
			req, _ := messageSizes(srv)
			net.Receive(m, req)
		}
		srv.Handle(m, reqRNG)
		if net != nil {
			_, resp := messageSizes(srv)
			net.Send(m, resp)
		}
		serverFree += m.BusyCycles() - busyBefore
		res.Requests++
	}
	res.WindowsClosed = len(m.Samples())
	elapsed := m.TotalCycles() - startCycles
	if elapsed > 0 {
		res.AchievedQPS = float64(res.Requests) / (elapsed / cycPerSec)
	}
	return res
}

// messageSizes extracts request/response sizes from servers that report
// them, defaulting to small control messages.
func messageSizes(srv Server) (req, resp int) {
	if s, ok := srv.(Sizer); ok {
		return s.LastMessageSizes()
	}
	return 64, 64
}

// Simulated kernel address ranges: kernel text and socket buffers sit
// between the application text segment (0x400000) and the application heap
// (0x10000000), so nothing ever shares cache lines across domains.
const (
	kernelCodeBase = 0x0000000002000000
	kernelHeapBase = 0x0000000008000000
)
